(* Core Scheme AST: size, free variables, printing. *)

module A = Tailspace_ast.Ast
module E = Tailspace_expander.Expand

let expr s = E.expression_of_string s
let fv s = A.Iset.elements (A.free_vars (expr s))
let check_fv name s expected = Alcotest.(check (list string)) name expected (fv s)

let test_free_vars_basic () =
  check_fv "var" "x" [ "x" ];
  check_fv "const" "42" [];
  check_fv "lambda closes" "(lambda (x) x)" [];
  check_fv "lambda open" "(lambda (x) (f x y))" [ "f"; "y" ];
  check_fv "rest param bound" "(lambda args args)" [];
  check_fv "dotted rest" "(lambda (a . rest) (cons a rest))" [ "cons" ];
  check_fv "if" "(if a b c)" [ "a"; "b"; "c" ];
  check_fv "set! target free" "(set! x y)" [ "x"; "y" ];
  check_fv "call" "(f (g x))" [ "f"; "g"; "x" ]

let test_free_vars_shadowing () =
  check_fv "inner shadows" "(lambda (x) (lambda (x) x))" [];
  check_fv "let via lambda" "(let ((x 1)) (+ x y))" [ "+"; "y" ];
  check_fv "letrec self not free" "(letrec ((f (lambda (n) (f n)))) f)" [];
  check_fv "named let loop bound"
    "(let loop ((i n)) (if (zero? i) 0 (loop (- i 1))))"
    [ "-"; "n"; "zero?" ]

let test_free_vars_memo_consistency () =
  let e = expr "(lambda (x) (f x (g y)))" in
  let a = A.free_vars e in
  let b = A.free_vars e in
  Alcotest.(check bool) "memoized result stable" true (A.Iset.equal a b);
  Alcotest.(check (list string)) "contents" [ "f"; "g"; "y" ] (A.Iset.elements a)

let test_size () =
  let check name s n = Alcotest.(check int) name n (A.size (expr s)) in
  check "const" "42" 1;
  check "var" "x" 1;
  check "call" "(f x)" 3;
  check "if" "(if a b c)" 4;
  check "lambda" "(lambda (x) x)" 2;
  check "set!" "(set! x 1)" 2

let test_size_positive_monotone () =
  (* |P| grows when a program is embedded in a larger one *)
  let inner = expr "(f x)" in
  let outer = A.If (inner, inner, inner) in
  Alcotest.(check bool) "wrapper larger" true (A.size outer > A.size inner)

let test_equal () =
  let a = expr "(lambda (x) (+ x 1))" in
  let b = expr "(lambda (x) (+ x 1))" in
  let c = expr "(lambda (y) (+ y 1))" in
  Alcotest.(check bool) "structural equal" true (A.equal a b);
  Alcotest.(check bool) "alpha-variants differ" false (A.equal a c)

let test_to_datum_roundtrip () =
  (* printing core syntax and re-expanding is the identity on core *)
  List.iter
    (fun s ->
      let e = expr s in
      let printed = A.to_string e in
      let e' = E.expression_of_string printed in
      Alcotest.(check bool) (s ^ " roundtrips") true (A.equal e e'))
    [
      "(quote a)";
      "(lambda (x y) (if x y (quote #f)))";
      "(set! z (lambda () (quote 1)))";
      "((lambda (x) x) (quote 42))";
      "(lambda args args)";
    ]

let test_const_printing () =
  Alcotest.(check string) "unspecified" "(quote #!unspecified)"
    (A.to_string (A.Quote A.C_unspecified));
  Alcotest.(check string) "undefined" "(quote #!undefined)"
    (A.to_string (A.Quote A.C_undefined));
  Alcotest.(check string) "nil" "(quote ())" (A.to_string (A.Quote A.C_nil))

let test_free_vars_of_list () =
  let es = [ expr "x"; expr "(f y)"; expr "42" ] in
  Alcotest.(check (list string)) "union" [ "f"; "x"; "y" ]
    (A.Iset.elements (A.free_vars_of_list es))

let () =
  Alcotest.run "ast"
    [
      ( "free-vars",
        [
          Alcotest.test_case "basic" `Quick test_free_vars_basic;
          Alcotest.test_case "shadowing" `Quick test_free_vars_shadowing;
          Alcotest.test_case "memo consistency" `Quick test_free_vars_memo_consistency;
          Alcotest.test_case "of list" `Quick test_free_vars_of_list;
        ] );
      ( "size-equal-print",
        [
          Alcotest.test_case "size" `Quick test_size;
          Alcotest.test_case "size monotone" `Quick test_size_positive_monotone;
          Alcotest.test_case "equal" `Quick test_equal;
          Alcotest.test_case "to_datum roundtrip" `Quick test_to_datum_roundtrip;
          Alcotest.test_case "const printing" `Quick test_const_printing;
        ] );
    ]
