test/test_machine.ml: Alcotest List Stdlib String Tailspace_ast Tailspace_bignum Tailspace_core Tailspace_expander
