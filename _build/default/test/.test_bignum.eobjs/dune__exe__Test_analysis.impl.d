test/test_analysis.ml: Alcotest List Tailspace_analysis Tailspace_corpus
