test/test_ast.ml: Alcotest List Tailspace_ast Tailspace_expander
