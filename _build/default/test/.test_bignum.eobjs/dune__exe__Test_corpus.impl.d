test/test_corpus.ml: Alcotest List Option Printexc Printf Stdlib String Tailspace_ast Tailspace_core Tailspace_corpus Tailspace_expander Tailspace_harness
