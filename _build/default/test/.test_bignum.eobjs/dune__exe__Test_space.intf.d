test/test_space.mli:
