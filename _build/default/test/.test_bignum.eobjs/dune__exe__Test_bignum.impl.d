test/test_bignum.ml: Alcotest List QCheck QCheck_alcotest Tailspace_bignum
