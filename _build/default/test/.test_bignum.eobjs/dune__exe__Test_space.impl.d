test/test_space.ml: Alcotest List Printf Tailspace_ast Tailspace_bignum Tailspace_core Tailspace_expander
