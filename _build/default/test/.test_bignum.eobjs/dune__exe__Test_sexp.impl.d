test/test_sexp.ml: Alcotest Array List QCheck QCheck_alcotest Tailspace_bignum Tailspace_sexp
