test/test_equivalence.ml: Alcotest List Printf QCheck QCheck_alcotest String Tailspace_ast Tailspace_bignum Tailspace_core
