test/test_gc.ml: Alcotest Hashtbl List Tailspace_ast Tailspace_bignum Tailspace_core
