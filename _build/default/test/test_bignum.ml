(* Unit and property tests for the bignum substrate. The property tests
   use native ints as the oracle on ranges where native arithmetic is
   exact, plus algebraic laws on genuinely large values. *)

module B = Tailspace_bignum.Bignum

let check_str = Alcotest.(check string)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let bs z = B.to_string z
let bi = B.of_int

(* --- units --- *)

let test_constants () =
  check_str "zero" "0" (bs B.zero);
  check_str "one" "1" (bs B.one);
  check_str "minus-one" "-1" (bs B.minus_one);
  check_bool "zero is zero" true (B.is_zero B.zero);
  check_bool "one not zero" false (B.is_zero B.one)

let test_of_int_roundtrip () =
  List.iter
    (fun n -> check_int (string_of_int n) n (B.to_int_exn (bi n)))
    [ 0; 1; -1; 42; -42; 1 lsl 29; (1 lsl 30) + 7; max_int; -max_int ]

let test_min_int () =
  check_str "min_int prints" (string_of_int min_int) (bs (bi min_int))

let test_of_string () =
  check_str "simple" "12345" (bs (B.of_string "12345"));
  check_str "negative" "-987" (bs (B.of_string "-987"));
  check_str "plus sign" "7" (bs (B.of_string "+7"));
  check_str "leading zeros" "42" (bs (B.of_string "00042"));
  check_str "huge"
    "123456789012345678901234567890123456789"
    (bs (B.of_string "123456789012345678901234567890123456789"))

let test_of_string_errors () =
  let bad s =
    Alcotest.check_raises s (Invalid_argument "Bignum.of_string: empty string")
      (fun () -> ignore (B.of_string s))
  in
  bad "";
  Alcotest.(check bool)
    "junk raises" true
    (match B.of_string "12x3" with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool)
    "bare sign raises" true
    (match B.of_string "-" with exception Invalid_argument _ -> true | _ -> false)

let test_addition_carries () =
  (* crosses the 2^30 limb boundary *)
  let a = B.of_string "1073741823" in
  check_str "limb carry" "1073741824" (bs (B.add a B.one));
  check_str "big sum"
    "2000000000000000000000000000000"
    (bs (B.add (B.of_string "999999999999999999999999999999")
           (B.of_string "1000000000000000000000000000001")))

let test_subtraction_signs () =
  check_str "5-7" "-2" (bs (B.sub (bi 5) (bi 7)));
  check_str "-5-7" "-12" (bs (B.sub (bi (-5)) (bi 7)));
  check_str "borrow" "999999999"
    (bs (B.sub (B.of_string "1000000000000") (B.of_string "999000000001")))

let test_multiplication () =
  check_str "fact 20" "2432902008176640000"
    (bs (List.fold_left (fun acc i -> B.mul acc (bi i)) B.one
           (List.init 20 (fun i -> i + 1))));
  check_str "fact 30" "265252859812191058636308480000000"
    (bs (List.fold_left (fun acc i -> B.mul acc (bi i)) B.one
           (List.init 30 (fun i -> i + 1))));
  check_str "neg * pos" "-6" (bs (B.mul (bi (-2)) (bi 3)));
  check_str "neg * neg" "6" (bs (B.mul (bi (-2)) (bi (-3))));
  check_str "by zero" "0" (bs (B.mul (bi 12345) B.zero))

let test_pow () =
  check_str "2^100" "1267650600228229401496703205376" (bs (B.pow (bi 2) 100));
  check_str "x^0" "1" (bs (B.pow (bi 999) 0));
  check_str "(-2)^3" "-8" (bs (B.pow (bi (-2)) 3));
  Alcotest.check_raises "negative exponent" (Invalid_argument "Bignum.pow")
    (fun () -> ignore (B.pow (bi 2) (-1)))

let test_division () =
  let q, r = B.divmod (B.of_string "10000000000000000000000") (bi 7) in
  check_str "quot" "1428571428571428571428" (bs q);
  check_str "rem" "4" (bs r);
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (B.divmod B.one B.zero))

let test_modulo_signs () =
  (* Scheme: remainder has the dividend's sign, modulo the divisor's. *)
  check_str "rem -7 3" "-1" (bs (B.remainder (bi (-7)) (bi 3)));
  check_str "mod -7 3" "2" (bs (B.modulo (bi (-7)) (bi 3)));
  check_str "rem 7 -3" "1" (bs (B.remainder (bi 7) (bi (-3))));
  check_str "mod 7 -3" "-2" (bs (B.modulo (bi 7) (bi (-3))));
  check_str "mod -7 -3" "-1" (bs (B.modulo (bi (-7)) (bi (-3))))

let test_compare () =
  check_bool "lt" true (B.compare (bi 3) (bi 5) < 0);
  check_bool "gt mag" true
    (B.compare (B.of_string "100000000000000000000") (bi max_int) > 0);
  check_bool "neg lt pos" true (B.compare (bi (-1)) B.zero < 0);
  check_bool "neg order" true (B.compare (bi (-10)) (bi (-2)) < 0);
  check_str "min" "-5" (bs (B.min (bi (-5)) (bi 3)));
  check_str "max" "3" (bs (B.max (bi (-5)) (bi 3)))

let test_bit_length () =
  check_int "bits 0" 0 (B.bit_length B.zero);
  check_int "bits 1" 1 (B.bit_length B.one);
  check_int "bits 255" 8 (B.bit_length (bi 255));
  check_int "bits 256" 9 (B.bit_length (bi 256));
  check_int "bits -256" 9 (B.bit_length (bi (-256)));
  check_int "bits 2^100" 101 (B.bit_length (B.pow (bi 2) 100))

let test_shifts () =
  check_str "1 << 100" (bs (B.pow (bi 2) 100)) (bs (B.shift_left B.one 100));
  check_str "2^100 >> 99" "2" (bs (B.shift_right (B.pow (bi 2) 100) 99));
  check_str "shift right past end" "0" (bs (B.shift_right (bi 5) 10));
  check_str "neg shift" "-4" (bs (B.shift_left (bi (-1)) 2))

let test_to_int_overflow () =
  Alcotest.(check (option int)) "2^80 no fit" None (B.to_int (B.pow (bi 2) 80));
  Alcotest.(check (option int)) "42 fits" (Some 42) (B.to_int (bi 42))

let test_succ_pred () =
  check_str "succ -1" "0" (bs (B.succ B.minus_one));
  check_str "pred 0" "-1" (bs (B.pred B.zero));
  check_str "succ 2^30-1" "1073741824" (bs (B.succ (bi ((1 lsl 30) - 1))))

let test_equal_structural () =
  (* canonical representation: equal numbers are structurally equal *)
  check_bool "sub then add" true
    (B.equal (bi 100) (B.add (B.sub (B.of_string "1000000000000000000000") (B.of_string "999999999999999999900"))
                         B.zero))

(* --- properties --- *)

let small_int = QCheck.int_range (-100000) 100000

let prop_matches_native =
  QCheck.Test.make ~name:"add/sub/mul match native ints" ~count:500
    (QCheck.pair small_int small_int) (fun (a, b) ->
      B.to_int_exn (B.add (bi a) (bi b)) = a + b
      && B.to_int_exn (B.sub (bi a) (bi b)) = a - b
      && B.to_int_exn (B.mul (bi a) (bi b)) = a * b)

let prop_divmod_native =
  QCheck.Test.make ~name:"divmod matches native quot/rem" ~count:500
    (QCheck.pair small_int small_int) (fun (a, b) ->
      QCheck.assume (b <> 0);
      B.to_int_exn (B.quotient (bi a) (bi b)) = a / b
      && B.to_int_exn (B.remainder (bi a) (bi b)) = a mod b)

let big =
  QCheck.map
    (fun (a, b, c) -> B.add (B.mul (bi a) (B.pow (bi 2) 80)) (B.mul (bi b) (bi c)))
    (QCheck.triple small_int small_int small_int)

let prop_ring_laws =
  QCheck.Test.make ~name:"commutativity/associativity/distributivity" ~count:200
    (QCheck.triple big big big) (fun (a, b, c) ->
      B.equal (B.add a b) (B.add b a)
      && B.equal (B.mul a b) (B.mul b a)
      && B.equal (B.add (B.add a b) c) (B.add a (B.add b c))
      && B.equal (B.mul (B.mul a b) c) (B.mul a (B.mul b c))
      && B.equal (B.mul a (B.add b c)) (B.add (B.mul a b) (B.mul a c)))

let prop_divmod_invariant =
  QCheck.Test.make ~name:"a = q*b + r with |r| < |b|, sign(r) = sign(a)"
    ~count:300 (QCheck.pair big big) (fun (a, b) ->
      QCheck.assume (not (B.is_zero b));
      let q, r = B.divmod a b in
      B.equal a (B.add (B.mul q b) r)
      && B.compare (B.abs r) (B.abs b) < 0
      && (B.is_zero r || B.sign r = B.sign a))

let prop_string_roundtrip =
  QCheck.Test.make ~name:"to_string/of_string roundtrip" ~count:300 big
    (fun z -> B.equal z (B.of_string (B.to_string z)))

let prop_compare_total_order =
  QCheck.Test.make ~name:"compare is antisymmetric and transitive-ish"
    ~count:300 (QCheck.triple big big big) (fun (a, b, c) ->
      compare (B.compare a b) (-(B.compare b a)) = 0
      && (not (B.compare a b <= 0 && B.compare b c <= 0) || B.compare a c <= 0))

let prop_shift_is_pow2 =
  QCheck.Test.make ~name:"shift_left = multiply by 2^k" ~count:200
    (QCheck.pair big (QCheck.int_range 0 120)) (fun (z, k) ->
      B.equal (B.shift_left z k) (B.mul z (B.pow (bi 2) k)))

let prop_bit_length_bound =
  QCheck.Test.make ~name:"2^(bits-1) <= |z| < 2^bits" ~count:200 big (fun z ->
      QCheck.assume (not (B.is_zero z));
      let bits = B.bit_length z in
      B.compare (B.abs z) (B.pow (bi 2) bits) < 0
      && B.compare (B.abs z) (B.pow (bi 2) (bits - 1)) >= 0)

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "bignum"
    [
      ( "units",
        [
          Alcotest.test_case "constants" `Quick test_constants;
          Alcotest.test_case "of_int roundtrip" `Quick test_of_int_roundtrip;
          Alcotest.test_case "min_int" `Quick test_min_int;
          Alcotest.test_case "of_string" `Quick test_of_string;
          Alcotest.test_case "of_string errors" `Quick test_of_string_errors;
          Alcotest.test_case "addition carries" `Quick test_addition_carries;
          Alcotest.test_case "subtraction signs" `Quick test_subtraction_signs;
          Alcotest.test_case "multiplication" `Quick test_multiplication;
          Alcotest.test_case "pow" `Quick test_pow;
          Alcotest.test_case "division" `Quick test_division;
          Alcotest.test_case "modulo signs" `Quick test_modulo_signs;
          Alcotest.test_case "compare" `Quick test_compare;
          Alcotest.test_case "bit_length" `Quick test_bit_length;
          Alcotest.test_case "shifts" `Quick test_shifts;
          Alcotest.test_case "to_int overflow" `Quick test_to_int_overflow;
          Alcotest.test_case "succ/pred" `Quick test_succ_pred;
          Alcotest.test_case "canonical equality" `Quick test_equal_structural;
        ] );
      ( "properties",
        q
          [
            prop_matches_native;
            prop_divmod_native;
            prop_ring_laws;
            prop_divmod_invariant;
            prop_string_roundtrip;
            prop_compare_total_order;
            prop_shift_is_pow2;
            prop_bit_length_bound;
          ] );
    ]
