(* Reader and printer tests: R5RS-ish lexical syntax, error reporting,
   and a print/parse roundtrip property over generated datums. *)

module D = Tailspace_sexp.Datum
module R = Tailspace_sexp.Reader
module B = Tailspace_bignum.Bignum

let datum = Alcotest.testable D.pp D.equal

let parse s =
  match R.parse_one s with
  | Ok d -> d
  | Error e -> Alcotest.failf "parse %S: %a" s R.pp_error e

let parse_fails s =
  match R.parse_one s with
  | Ok d -> Alcotest.failf "expected failure for %S, got %a" s D.pp d
  | Error _ -> ()

let check s expected = Alcotest.check datum s expected (parse s)

let test_atoms () =
  check "#t" (D.Bool true);
  check "#f" (D.Bool false);
  check "42" (D.int 42);
  check "-17" (D.int (-17));
  check "+5" (D.int 5);
  check "123456789012345678901234567890"
    (D.Int (B.of_string "123456789012345678901234567890"));
  check "foo" (D.sym "foo");
  check "list->vector" (D.sym "list->vector");
  check "+" (D.sym "+");
  check "-" (D.sym "-");
  check "..." (D.sym "...");
  check "set!" (D.sym "set!");
  check "\"hello\"" (D.Str "hello");
  check "#\\a" (D.Char 'a');
  check "#\\space" (D.Char ' ');
  check "#\\newline" (D.Char '\n');
  check "#!unspecified" (D.sym "#!unspecified")

let test_lists () =
  check "()" D.Nil;
  check "(1 2 3)" (D.list [ D.int 1; D.int 2; D.int 3 ]);
  check "(1 . 2)" (D.Pair (D.int 1, D.int 2));
  check "(1 2 . 3)" (D.Pair (D.int 1, D.Pair (D.int 2, D.int 3)));
  check "(a (b c) d)"
    (D.list [ D.sym "a"; D.list [ D.sym "b"; D.sym "c" ]; D.sym "d" ]);
  check "( 1\n 2 )" (D.list [ D.int 1; D.int 2 ])

let test_vectors () =
  check "#()" (D.Vector [||]);
  check "#(1 a \"s\")" (D.Vector [| D.int 1; D.sym "a"; D.Str "s" |]);
  check "#(#(1) #(2))"
    (D.Vector [| D.Vector [| D.int 1 |]; D.Vector [| D.int 2 |] |])

let test_quote_sugar () =
  check "'x" (D.list [ D.sym "quote"; D.sym "x" ]);
  check "'(1 2)" (D.list [ D.sym "quote"; D.list [ D.int 1; D.int 2 ] ]);
  check "`x" (D.list [ D.sym "quasiquote"; D.sym "x" ]);
  check ",x" (D.list [ D.sym "unquote"; D.sym "x" ]);
  check ",@x" (D.list [ D.sym "unquote-splicing"; D.sym "x" ]);
  check "''x"
    (D.list [ D.sym "quote"; D.list [ D.sym "quote"; D.sym "x" ] ])

let test_strings () =
  check {|"a\"b"|} (D.Str "a\"b");
  check {|"a\\b"|} (D.Str "a\\b");
  check {|"line\nbreak"|} (D.Str "line\nbreak");
  check {|"tab\there"|} (D.Str "tab\there")

let test_comments () =
  check "; a comment\n42" (D.int 42);
  check "#| block |# 42" (D.int 42);
  check "#| nested #| deeper |# still |# 7" (D.int 7);
  check "(1 ; mid-list\n 2)" (D.list [ D.int 1; D.int 2 ]);
  check "#;(skipped datum) 9" (D.int 9)

let test_errors () =
  parse_fails "";
  parse_fails "(";
  parse_fails ")";
  parse_fails "(1 . )";
  parse_fails "(1 . 2 3)";
  parse_fails "\"unterminated";
  parse_fails "#| unterminated";
  parse_fails "#z";
  parse_fails "1 2" (* parse_one rejects trailing input *);
  parse_fails "#\\unknownname"

let test_error_position () =
  match R.parse_one "(1\n  @bad)" with
  | Ok _ -> Alcotest.fail "expected error"
  | Error e ->
      Alcotest.(check int) "line" 2 e.R.line;
      Alcotest.(check bool) "col > 1" true (e.R.col > 1)

let test_parse_all () =
  match R.parse_all "1 2 (3)" with
  | Ok ds -> Alcotest.(check int) "three datums" 3 (List.length ds)
  | Error e -> Alcotest.failf "unexpected: %a" R.pp_error e

let test_printer () =
  let p d = D.to_string d in
  Alcotest.(check string) "dotted" "(1 2 . 3)"
    (p (D.Pair (D.int 1, D.Pair (D.int 2, D.int 3))));
  Alcotest.(check string) "nil" "()" (p D.Nil);
  Alcotest.(check string) "vector" "#(1 2)" (p (D.Vector [| D.int 1; D.int 2 |]));
  Alcotest.(check string) "string escape" "\"a\\\"b\"" (p (D.Str "a\"b"));
  Alcotest.(check string) "char" "#\\space" (p (D.Char ' '))

(* roundtrip property over generated datums *)

let gen_datum =
  let open QCheck.Gen in
  let atom =
    oneof
      [
        map (fun b -> D.Bool b) bool;
        map (fun n -> D.int n) (int_range (-1000000) 1000000);
        map (fun s -> D.Sym ("s" ^ string_of_int s)) (int_range 0 50);
        map (fun s -> D.Str s) (string_size ~gen:(char_range 'a' 'z') (int_range 0 8));
        map (fun c -> D.Char c) (char_range 'a' 'z');
        return D.Nil;
      ]
  in
  let rec go depth =
    if depth = 0 then atom
    else
      frequency
        [
          (3, atom);
          ( 2,
            map2 (fun a b -> D.Pair (a, b)) (go (depth - 1)) (go (depth - 1)) );
          ( 1,
            map
              (fun l -> D.Vector (Array.of_list l))
              (list_size (int_range 0 4) (go (depth - 1))) );
        ]
  in
  go 4

let prop_roundtrip =
  QCheck.Test.make ~name:"print/parse roundtrip" ~count:500
    (QCheck.make ~print:D.to_string gen_datum) (fun d ->
      D.equal d (R.parse_one_exn (D.to_string d)))

let test_to_list () =
  Alcotest.(check bool) "proper" true
    (D.to_list (D.list [ D.int 1 ]) = Some [ D.int 1 ]);
  Alcotest.(check bool) "improper" true
    (D.to_list (D.Pair (D.int 1, D.int 2)) = None);
  Alcotest.(check bool) "atom" true (D.to_list (D.int 1) = None);
  Alcotest.(check bool) "nil" true (D.to_list D.Nil = Some [])

let () =
  Alcotest.run "sexp"
    [
      ( "reader",
        [
          Alcotest.test_case "atoms" `Quick test_atoms;
          Alcotest.test_case "lists" `Quick test_lists;
          Alcotest.test_case "vectors" `Quick test_vectors;
          Alcotest.test_case "quote sugar" `Quick test_quote_sugar;
          Alcotest.test_case "strings" `Quick test_strings;
          Alcotest.test_case "comments" `Quick test_comments;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "error position" `Quick test_error_position;
          Alcotest.test_case "parse_all" `Quick test_parse_all;
        ] );
      ( "printer",
        [
          Alcotest.test_case "printer forms" `Quick test_printer;
          Alcotest.test_case "to_list" `Quick test_to_list;
          QCheck_alcotest.to_alcotest prop_roundtrip;
        ] );
    ]
