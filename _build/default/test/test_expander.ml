(* Expander: every derived form, the §12 constant lowering, body and
   program assembly, and error cases. Where the exact expansion shape
   matters for the space experiments (begin, letrec), the shape itself
   is asserted; elsewhere behavior is checked via the machine in
   test_machine.ml. *)

module A = Tailspace_ast.Ast
module E = Tailspace_expander.Expand
module D = Tailspace_sexp.Datum

let expr s =
  E.reset_gensym ();
  E.expression_of_string s

let prog s =
  E.reset_gensym ();
  E.program_of_string s

let shape name s expected = Alcotest.(check string) name expected (A.to_string (expr s))

let test_constants () =
  shape "int" "42" "(quote 42)";
  shape "bool" "#t" "(quote #t)";
  shape "string" "\"hi\"" "(quote \"hi\")";
  shape "char" "#\\a" "(quote #\\a)";
  shape "symbol quote" "'foo" "(quote foo)";
  shape "empty list" "'()" "(quote ())"

let test_compound_quote_lowering () =
  (* §12: compound constants become allocation calls *)
  shape "quoted list" "'(1 2)"
    "(cons (quote 1) (cons (quote 2) (quote ())))";
  shape "quoted dotted" "'(a . b)" "(cons (quote a) (quote b))";
  shape "quoted vector" "'#(1 2)" "(vector (quote 1) (quote 2))";
  shape "nested" "'((1) 2)"
    "(cons (cons (quote 1) (quote ())) (cons (quote 2) (quote ())))"

let test_if_forms () =
  shape "two-armed" "(if a b c)" "(if a b c)";
  shape "one-armed" "(if a b)" "(if a b (quote #!unspecified))"

let test_lambda_forms () =
  shape "fixed" "(lambda (x y) x)" "(lambda (x y) x)";
  shape "rest only" "(lambda args args)" "(lambda args args)";
  shape "dotted" "(lambda (a . r) r)" "(lambda (a . r) r)";
  shape "multi-body becomes seq" "(lambda (x) (f x) x)"
    "(lambda (x) ((lambda (%seq0) x) (f x)))"

let test_begin_encoding () =
  (* the let-style encoding that the evlis experiments depend on *)
  shape "begin pair" "(begin a b)" "((lambda (%seq0) b) a)";
  shape "begin single" "(begin a)" "a";
  shape "begin empty" "(begin)" "(quote #!unspecified)";
  shape "begin triple" "(begin a b c)"
    "((lambda (%seq1) ((lambda (%seq0) c) b)) a)"

let test_let_family () =
  shape "let" "(let ((x 1) (y 2)) (f x y))"
    "((lambda (x y) (f x y)) (quote 1) (quote 2))";
  shape "let empty bindings" "(let () 5)" "((lambda () (quote 5)))";
  shape "let*" "(let* ((x 1) (y x)) y)"
    "((lambda (x) ((lambda (y) y) x)) (quote 1))";
  shape "letrec" "(letrec ((f (lambda () (f)))) (f))"
    "((lambda (f) ((lambda (%seq0) (f)) (set! f (lambda () (f))))) (quote #!undefined))";
  shape "named let" "(let loop ((i 0)) (loop i))"
    "((lambda (loop) ((lambda (%seq0) (loop (quote 0))) (set! loop (lambda (i) (loop i))))) (quote #!undefined))"

let test_cond () =
  shape "cond basic" "(cond (a 1) (else 2))" "(if a (quote 1) (quote 2))";
  shape "cond no else" "(cond (a 1))" "(if a (quote 1) (quote #!unspecified))";
  shape "cond test only" "(cond (a) (else 2))"
    "((lambda (%cond0) (if %cond0 %cond0 (quote 2))) a)";
  shape "cond arrow" "(cond (a => f) (else 2))"
    "((lambda (%cond0) (if %cond0 (f %cond0) (quote 2))) a)";
  shape "cond multi-body" "(cond (a 1 2))"
    "(if a ((lambda (%seq0) (quote 2)) (quote 1)) (quote #!unspecified))"

let test_and_or () =
  shape "and empty" "(and)" "(quote #t)";
  shape "and single" "(and a)" "a";
  shape "and multi" "(and a b)" "(if a b (quote #f))";
  shape "or empty" "(or)" "(quote #f)";
  shape "or single" "(or a)" "a";
  shape "or multi" "(or a b)" "((lambda (%or0) (if %or0 %or0 b)) a)"

let test_when_unless () =
  shape "when" "(when c a)" "(if c a (quote #!unspecified))";
  shape "unless" "(unless c a)" "(if c (quote #!unspecified) a)"

let test_case () =
  shape "case" "(case x ((1) 'one) (else 'more))"
    "((lambda (%case0) (if (memv %case0 (cons (quote 1) (quote ()))) (quote one) (quote more))) x)"

let test_quasiquote () =
  shape "simple" "`a" "(quote a)";
  shape "unquote" "`(a ,b)" "(cons (quote a) (cons b (quote ())))";
  shape "splicing" "`(,@xs b)" "(append xs (cons (quote b) (quote ())))";
  shape "nested stays quoted" "``,a"
    "(list (quote quasiquote) (list (quote unquote) (quote a)))";
  shape "vector qq" "`#(,x)" "(vector x)"

let test_do_loop () =
  (* behavioral shape: a letrec'd loop procedure *)
  let e = expr "(do ((i 0 (+ i 1))) ((= i 3) 'done))" in
  Alcotest.(check bool) "expands to a call" true
    (match e with A.Call _ -> true | _ -> false)

let test_internal_defines () =
  shape "internal define" "(lambda (x) (define y 1) (+ x y))"
    "(lambda (x) ((lambda (y) ((lambda (%seq0) (+ x y)) (set! y (quote 1)))) (quote #!undefined)))"

let test_program_assembly () =
  let p = prog "(define (f) 1) (define g 2) (f)" in
  Alcotest.(check bool) "program is a call" true
    (match p with A.Call _ -> true | _ -> false);
  (* no trailing expression: last define's name is the program value *)
  let p2 = prog "(define (f n) n)" in
  Alcotest.(check bool) "defaults to last define" true
    (match p2 with A.Call _ -> true | _ -> false)

let test_top_level_define () =
  (match E.top_level_define (Tailspace_sexp.Reader.parse_one_exn "(define (f x) x)") with
  | Some (name, A.Lambda _) -> Alcotest.(check string) "name" "f" name
  | _ -> Alcotest.fail "expected procedure define");
  match E.top_level_define (Tailspace_sexp.Reader.parse_one_exn "(f x)") with
  | None -> ()
  | Some _ -> Alcotest.fail "non-define should be None"

let expand_fails s =
  match E.expression_of_string s with
  | exception E.Expand_error _ -> ()
  | e -> Alcotest.failf "expected Expand_error for %S, got %s" s (A.to_string e)

let test_errors () =
  expand_fails "()";
  expand_fails "(if)";
  expand_fails "(if a)";
  expand_fails "(if a b c d)";
  expand_fails "(lambda (x))";
  expand_fails "(lambda (1) x)";
  expand_fails "(set! 1 2)";
  expand_fails "(set! x)";
  expand_fails "(let ((x)) x)";
  expand_fails "(let ((x 1 2)) x)";
  expand_fails "(quote a b)";
  expand_fails "(unquote x)";
  expand_fails "#(1 2)" (* unquoted vector literal *);
  expand_fails "(cond (else 1) (a 2))" (* else not last *);
  expand_fails "(define x 1)" (* define in expression position *);
  expand_fails "(lambda (x) (define y 1))" (* body without expression *)

let () =
  Alcotest.run "expander"
    [
      ( "forms",
        [
          Alcotest.test_case "constants" `Quick test_constants;
          Alcotest.test_case "quote lowering" `Quick test_compound_quote_lowering;
          Alcotest.test_case "if" `Quick test_if_forms;
          Alcotest.test_case "lambda" `Quick test_lambda_forms;
          Alcotest.test_case "begin encoding" `Quick test_begin_encoding;
          Alcotest.test_case "let family" `Quick test_let_family;
          Alcotest.test_case "cond" `Quick test_cond;
          Alcotest.test_case "and/or" `Quick test_and_or;
          Alcotest.test_case "when/unless" `Quick test_when_unless;
          Alcotest.test_case "case" `Quick test_case;
          Alcotest.test_case "quasiquote" `Quick test_quasiquote;
          Alcotest.test_case "do" `Quick test_do_loop;
          Alcotest.test_case "internal defines" `Quick test_internal_defines;
        ] );
      ( "programs",
        [
          Alcotest.test_case "assembly" `Quick test_program_assembly;
          Alcotest.test_case "top-level define" `Quick test_top_level_define;
          Alcotest.test_case "errors" `Quick test_errors;
        ] );
    ]
