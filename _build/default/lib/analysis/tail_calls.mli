(** Static tail-call analysis (Definitions 1 and 2, Figure 2).

    Definition 1: the body of a lambda expression is a tail expression;
    both arms of a tail [if] are tail expressions; nothing else is.
    Definition 2: a tail call is a tail expression that is a procedure
    call.

    Figure 2 reports, for two compilers' workloads, the static frequency
    of procedure calls, tail calls, and self-tail calls. This module
    recomputes those statistics for any Core Scheme program; the
    experiment harness runs it over the shipped corpus.

    Self-tail calls are detected as in Twobit: a tail call whose operator
    is an identifier currently bound — by an enclosing [lambda] reached
    through a [letrec]-style binding — to the lambda being analyzed. The
    analyzer tracks [(set! f (lambda ...))] and [((lambda (f ...) ...)
    (quote #!undefined) ...)] shapes, which is what the expander emits
    for [define]/[letrec]/named [let], so recursion introduced by any of
    those forms is recognized. Calls whose operator is a lambda
    expression or a known-bound identifier are additionally classified as
    "calls to known procedures" (the last column of Figure 2's
    discussion in §14). *)

type counts = {
  calls : int;  (** all procedure calls *)
  tail_calls : int;  (** calls in tail position *)
  self_tail_calls : int;
      (** tail calls that reenter the procedure they occur in *)
  known_calls : int;
      (** calls whose operator statically resolves to a lambda *)
}

val zero : counts
val add : counts -> counts -> counts

val analyze : Tailspace_ast.Ast.expr -> counts
(** Statistics for one Core Scheme expression. *)

val analyze_source : string -> counts
(** Parse, expand (so derived forms contribute the calls they really
    compile to), and analyze a whole program. *)

val percent : int -> int -> float
(** [percent part whole] in 0..100; 0 when [whole] is 0. *)
