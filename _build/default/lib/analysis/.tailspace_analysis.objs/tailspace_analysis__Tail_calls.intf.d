lib/analysis/tail_calls.mli: Tailspace_ast
