lib/analysis/tail_calls.ml: List Map Option String Tailspace_ast Tailspace_expander
