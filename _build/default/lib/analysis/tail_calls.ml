module Ast = Tailspace_ast.Ast
module Smap = Map.Make (String)

type counts = {
  calls : int;
  tail_calls : int;
  self_tail_calls : int;
  known_calls : int;
}

let zero = { calls = 0; tail_calls = 0; self_tail_calls = 0; known_calls = 0 }

let add a b =
  {
    calls = a.calls + b.calls;
    tail_calls = a.tail_calls + b.tail_calls;
    self_tail_calls = a.self_tail_calls + b.self_tail_calls;
    known_calls = a.known_calls + b.known_calls;
  }

(* Collect [set! x (lambda ...)] bindings in the current scope — the
   shape the expander emits for define/letrec/named let. Inner lambda
   bodies are separate scopes and are not scanned. *)
let rec scan_sets known e =
  match (e : Ast.expr) with
  | Ast.Set (x, Ast.Lambda l) -> Smap.add x l known
  | Ast.Set (_, e0) -> scan_sets known e0
  | Ast.If (e0, e1, e2) -> scan_sets (scan_sets (scan_sets known e0) e1) e2
  | Ast.Call (f, args) -> List.fold_left scan_sets (scan_sets known f) args
  | Ast.Quote _ | Ast.Var _ | Ast.Lambda _ -> known

let shadow known (l : Ast.lambda) =
  let bound = match l.rest with Some r -> r :: l.params | None -> l.params in
  List.fold_left (fun m x -> Smap.remove x m) known bound

(* [self] is the innermost *named* procedure (physical identity);
   immediately-applied lambdas — the expander's encoding of let, begin
   and friends — are transparent: their bodies keep the enclosing
   procedure as self and inherit the call's tail-ness, matching the
   source-level reading of Definition 1. *)
let analyze expr =
  let acc = ref zero in
  let bump f = acc := f !acc in
  let rec walk e ~tail ~known ~self =
    match (e : Ast.expr) with
    | Ast.Quote _ | Ast.Var _ -> ()
    | Ast.Lambda l -> walk_procedure l ~known
    | Ast.If (e0, e1, e2) ->
        walk e0 ~tail:false ~known ~self;
        walk e1 ~tail ~known ~self;
        walk e2 ~tail ~known ~self
    | Ast.Set (_, e0) -> walk e0 ~tail:false ~known ~self
    | Ast.Call (f, args) ->
        let target =
          match f with
          | Ast.Lambda l -> Some l
          | Ast.Var x -> Smap.find_opt x known
          | _ -> None
        in
        bump (fun c ->
            {
              calls = c.calls + 1;
              tail_calls = (c.tail_calls + if tail then 1 else 0);
              self_tail_calls =
                (c.self_tail_calls
                + if tail && Option.is_some target && Option.is_some self
                     && Option.get target == Option.get self
                  then 1
                  else 0);
              known_calls = (c.known_calls + if Option.is_some target then 1 else 0);
            });
        List.iter (fun a -> walk a ~tail:false ~known ~self) args;
        (match f with
        | Ast.Lambda l ->
            (* direct application: a let-like binding form *)
            let known = scan_sets (shadow known l) l.body in
            walk l.body ~tail ~known ~self
        | f -> walk f ~tail:false ~known ~self)
  and walk_procedure l ~known =
    let known = scan_sets (shadow known l) l.body in
    walk l.body ~tail:true ~known ~self:(Some l)
  in
  walk expr ~tail:false ~known:Smap.empty ~self:None;
  !acc

let analyze_source src =
  analyze (Tailspace_expander.Expand.program_of_string src)

let percent part whole =
  if whole = 0 then 0. else 100. *. float_of_int part /. float_of_int whole
