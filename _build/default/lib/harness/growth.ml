type order = Constant | Logarithmic | Linear | Linearithmic | Quadratic

let order_name = function
  | Constant -> "O(1)"
  | Logarithmic -> "O(log N)"
  | Linear -> "O(N)"
  | Linearithmic -> "O(N log N)"
  | Quadratic -> "O(N^2)"

let order_rank = function
  | Constant -> 0
  | Logarithmic -> 1
  | Linear -> 2
  | Linearithmic -> 3
  | Quadratic -> 4

let at_least o1 o2 = order_rank o1 >= order_rank o2

type fit = {
  order : order;
  coefficient : float;
  intercept : float;
  relative_error : float;
}

let basis = function
  | Constant -> fun _ -> 1.
  | Logarithmic -> fun n -> log (n +. 1.)
  | Linear -> fun n -> n
  | Linearithmic -> fun n -> n *. log (n +. 1.)
  | Quadratic -> fun n -> n *. n

(* Least squares for y = a*g(x) + b. For the Constant model g is the
   constant 1, which is collinear with the intercept; fit y = b alone. *)
let fit_model order points =
  let g = basis order in
  let xs = List.map (fun (n, _) -> g (float_of_int n)) points in
  let ys = List.map (fun (_, s) -> float_of_int s) points in
  let len = float_of_int (List.length points) in
  let sum = List.fold_left ( +. ) 0. in
  let sx = sum xs and sy = sum ys in
  let sxx = sum (List.map (fun x -> x *. x) xs) in
  let sxy = sum (List.map2 ( *. ) xs ys) in
  let a, b =
    match order with
    | Constant -> (0., sy /. len)
    | _ ->
        let denom = (len *. sxx) -. (sx *. sx) in
        if abs_float denom < 1e-9 then (0., sy /. len)
        else
          let a = Stdlib.max 0. (((len *. sxy) -. (sx *. sy)) /. denom) in
          (a, (sy -. (a *. sx)) /. len)
  in
  let residuals =
    List.map2 (fun x y -> y -. ((a *. x) +. b)) xs ys
  in
  let rms =
    sqrt (sum (List.map (fun r -> r *. r) residuals) /. len)
  in
  let mean = Stdlib.max 1. (sy /. len) in
  { order; coefficient = a; intercept = b; relative_error = rms /. mean }

(* Prefer the simplest model whose error is within a whisker of the best:
   on noiseless linear data the quadratic model also fits well, and the
   tie must break toward the true (smaller) order. *)
let fit points =
  if List.length points < 3 then
    invalid_arg "Growth.fit: need at least 3 measurements";
  let fits =
    List.map
      (fun o -> fit_model o points)
      [ Constant; Logarithmic; Linear; Linearithmic; Quadratic ]
  in
  let best =
    List.fold_left
      (fun acc f -> if f.relative_error < acc.relative_error then f else acc)
      (List.hd fits) (List.tl fits)
  in
  let threshold = Stdlib.max (best.relative_error *. 1.5) 0.01 in
  List.find (fun f -> f.relative_error <= threshold) fits

let classify points = (fit points).order
