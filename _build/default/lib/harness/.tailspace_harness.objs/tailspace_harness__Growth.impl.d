lib/harness/growth.ml: List Stdlib
