lib/harness/runner.ml: List Option Tailspace_ast Tailspace_bignum Tailspace_core
