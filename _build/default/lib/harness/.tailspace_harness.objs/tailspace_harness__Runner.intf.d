lib/harness/runner.mli: Tailspace_ast Tailspace_core
