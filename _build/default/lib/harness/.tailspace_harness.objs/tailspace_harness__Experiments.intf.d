lib/harness/experiments.mli: Growth Tailspace_analysis Tailspace_core
