lib/harness/growth.mli:
