lib/harness/table.ml: Array Buffer List Printf Stdlib String
