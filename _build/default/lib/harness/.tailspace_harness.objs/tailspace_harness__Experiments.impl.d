lib/harness/experiments.ml: Buffer Growth List Option Printf Runner String Table Tailspace_analysis Tailspace_core Tailspace_corpus Tailspace_engines Tailspace_expander
