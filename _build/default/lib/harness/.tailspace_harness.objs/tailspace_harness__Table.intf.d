lib/harness/table.mli:
