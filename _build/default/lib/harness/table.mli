(** Fixed-width ASCII tables for the experiment reports. *)

val render : header:string list -> string list list -> string
(** Columns sized to their widest cell; numeric-looking cells are
    right-aligned, others left-aligned. The result ends with a
    newline. *)

val section : string -> string
(** A banner line for an experiment heading. *)
