(** Asymptotic-growth fitting for space sweeps.

    The paper's separations are claims about growth orders — "quadratic
    space in one implementation but only linear in the other" (proof of
    Theorem 25). Given measurements [(N, space)] this module picks the
    best-fitting model among the orders the paper distinguishes, by
    least-squares over [space = a*g(N) + b] with [a >= 0] and relative
    residuals. *)

type order = Constant | Logarithmic | Linear | Linearithmic | Quadratic

val order_name : order -> string
(** ["O(1)"], ["O(log N)"], ["O(N)"], ["O(N log N)"], ["O(N^2)"]. *)

type fit = {
  order : order;
  coefficient : float;  (** [a] in [a*g(N) + b] *)
  intercept : float;  (** [b] *)
  relative_error : float;  (** RMS residual / mean value *)
}

val fit : (int * int) list -> fit
(** Best model for the measurements. Requires at least 3 points.
    @raise Invalid_argument otherwise. *)

val classify : (int * int) list -> order

val at_least : order -> order -> bool
(** [at_least o1 o2]: [o1] grows at least as fast as [o2]. *)
