lib/expander/expand.ml: Array Format List Option Printf Tailspace_ast Tailspace_sexp
