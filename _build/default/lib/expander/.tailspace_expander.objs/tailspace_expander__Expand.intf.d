lib/expander/expand.mli: Format Tailspace_ast Tailspace_sexp
