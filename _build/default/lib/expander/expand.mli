(** Macro expansion: full Scheme external syntax -> Core Scheme.

    Implements the lowering the paper assumes ("The external syntax of
    full Scheme can be converted into this internal syntax by expanding
    macros and by replacing vector, string, and list constants ...", §2
    and §12):

    - derived forms: [begin], [let], [let*], [letrec]/[letrec*], named
      [let], [cond] (incl. [=>]), [case], [and], [or], [when], [unless],
      [do], [quasiquote], [delay] (memoizing promises; [force] lives in
      the prelude);
    - [define] (variable and procedure form) at top level and as internal
      definitions, lowered to [letrec*];
    - compound [quote] constants are rewritten into [cons]/[list]/[vector]
      calls, exactly as §12 prescribes for space-measured programs;
    - [begin] becomes [((lambda (t) rest) first)] — the [let]-style
      encoding; this matters for the evlis-tail-recursion experiments
      because it is the argument-evaluation continuation that retains the
      environment.

    Hygiene caveat (documented limitation): keywords are recognized by
    name, so rebinding [if], [let], ... as variables is not supported;
    generated temporaries use the [%] namespace, which source programs
    should avoid. *)

type error = { message : string; form : Tailspace_sexp.Datum.t option }

val pp_error : Format.formatter -> error -> unit

exception Expand_error of error

val expression : Tailspace_sexp.Datum.t -> Tailspace_ast.Ast.expr
(** Expand one expression. @raise Expand_error on malformed input. *)

val program : Tailspace_sexp.Datum.t list -> Tailspace_ast.Ast.expr
(** Expand a whole program: top-level [define]s become a [letrec*] whose
    body is the remaining top-level expressions in order (or a reference
    to the last defined name when there is no trailing expression). This
    matches §12's convention that a program is a single expression.
    @raise Expand_error on malformed input. *)

val program_of_string : string -> Tailspace_ast.Ast.expr
(** Read with {!Tailspace_sexp.Reader} and expand.
    @raise Expand_error and @raise Tailspace_sexp.Reader.Parse_error. *)

val expression_of_string : string -> Tailspace_ast.Ast.expr

val top_level_define : Tailspace_sexp.Datum.t -> (string * Tailspace_ast.Ast.expr) option
(** [Some (name, rhs)] when the form is a top-level [define] (variable or
    procedure form), with the right-hand side expanded; [None] for any
    other form. Used by the machine to install the Scheme-level prelude
    as global bindings. *)

val reset_gensym : unit -> unit
(** Reset the temporary-name counter (test determinism). *)
