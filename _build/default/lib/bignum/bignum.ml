(* Sign-magnitude bignums over base-2^30 limbs, little-endian.
   Invariants: [mag] has no trailing (most-significant) zero limbs, and
   [sign = 0] iff [mag] is empty. Every constructor goes through [make],
   so structural equality coincides with numeric equality. *)

let limb_bits = 30
let base = 1 lsl limb_bits
let limb_mask = base - 1

type t = { sign : int; mag : int array }

let zero = { sign = 0; mag = [||] }

let normalize_mag mag =
  let n = Array.length mag in
  let rec top i = if i >= 0 && mag.(i) = 0 then top (i - 1) else i in
  let hi = top (n - 1) in
  if hi < 0 then [||] else if hi = n - 1 then mag else Array.sub mag 0 (hi + 1)

let make sign mag =
  let mag = normalize_mag mag in
  if Array.length mag = 0 then zero else { sign; mag }

let of_int n =
  if n = 0 then zero
  else
    let sign = if n < 0 then -1 else 1 in
    (* min_int has no positive native counterpart; peel limbs with
       negative arithmetic to stay in range. *)
    let rec limbs acc n =
      if n = 0 then acc
      else limbs ((-(n mod base)) :: acc) (n / base)
    in
    let l = if n < 0 then limbs [] n else limbs [] (-n) in
    make sign (Array.of_list (List.rev l))

let one = of_int 1
let minus_one = of_int (-1)
let sign t = t.sign
let is_zero t = t.sign = 0

let cmp_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)

let compare a b =
  if a.sign <> b.sign then compare a.sign b.sign
  else if a.sign >= 0 then cmp_mag a.mag b.mag
  else cmp_mag b.mag a.mag

let equal a b = compare a b = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

(* |a| + |b| *)
let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let lr = (if la > lb then la else lb) + 1 in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let s =
      (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry
    in
    r.(i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  r

(* |a| - |b|, requires |a| >= |b| *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      r.(i) <- d + base;
      borrow := 1
    end
    else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  r

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then make a.sign (add_mag a.mag b.mag)
  else
    let c = cmp_mag a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then make a.sign (sub_mag a.mag b.mag)
    else make b.sign (sub_mag b.mag a.mag)

let neg a = if a.sign = 0 then a else { a with sign = -a.sign }
let abs a = if a.sign < 0 then neg a else a
let sub a b = add a (neg b)
let succ a = add a one
let pred a = sub a one

(* Schoolbook multiplication. Limbs are < 2^30 so a limb product plus
   carries stays below 2^62, within native-int range. *)
let mul_mag a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make (la + lb) 0 in
  for i = 0 to la - 1 do
    let carry = ref 0 in
    let ai = a.(i) in
    for j = 0 to lb - 1 do
      let acc = r.(i + j) + (ai * b.(j)) + !carry in
      r.(i + j) <- acc land limb_mask;
      carry := acc lsr limb_bits
    done;
    r.(i + lb) <- r.(i + lb) + !carry
  done;
  r

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else make (a.sign * b.sign) (mul_mag a.mag b.mag)

let bit_length_mag mag =
  let n = Array.length mag in
  if n = 0 then 0
  else
    let top = mag.(n - 1) in
    let rec bits acc v = if v = 0 then acc else bits (acc + 1) (v lsr 1) in
    ((n - 1) * limb_bits) + bits 0 top

let bit_length t = bit_length_mag t.mag

let shift_left_mag mag k =
  if Array.length mag = 0 then mag
  else
    let limbs = k / limb_bits and bits = k mod limb_bits in
    let n = Array.length mag in
    let r = Array.make (n + limbs + 1) 0 in
    for i = 0 to n - 1 do
      let v = mag.(i) lsl bits in
      r.(i + limbs) <- r.(i + limbs) lor (v land limb_mask);
      r.(i + limbs + 1) <- v lsr limb_bits
    done;
    r

let shift_right_mag mag k =
  let limbs = k / limb_bits and bits = k mod limb_bits in
  let n = Array.length mag in
  if limbs >= n then [||]
  else begin
    let r = Array.make (n - limbs) 0 in
    for i = 0 to n - limbs - 1 do
      let lo = mag.(i + limbs) lsr bits in
      let hi =
        if bits > 0 && i + limbs + 1 < n then
          (mag.(i + limbs + 1) lsl (limb_bits - bits)) land limb_mask
        else 0
      in
      r.(i) <- lo lor hi
    done;
    r
  end

let shift_left a k =
  if k < 0 then invalid_arg "Bignum.shift_left"
  else if a.sign = 0 || k = 0 then a
  else make a.sign (shift_left_mag a.mag k)

let shift_right a k =
  if k < 0 then invalid_arg "Bignum.shift_right"
  else if a.sign = 0 || k = 0 then a
  else make a.sign (shift_right_mag a.mag k)

(* Magnitude division by shift-and-subtract, one bit at a time from the
   top. O(bits(a) * limbs(a)) — plenty fast for the machine's workloads,
   whose numbers stay small. *)
let divmod_mag a b =
  let c = cmp_mag a b in
  if c < 0 then ([||], a)
  else begin
    let shift = bit_length_mag a - bit_length_mag b in
    let q = Array.make ((shift / limb_bits) + 1) 0 in
    let rem = ref a in
    for k = shift downto 0 do
      let d = normalize_mag (shift_left_mag b k) in
      if cmp_mag !rem d >= 0 then begin
        rem := normalize_mag (sub_mag !rem d);
        q.(k / limb_bits) <- q.(k / limb_bits) lor (1 lsl (k mod limb_bits))
      end
    done;
    (q, !rem)
  end

let divmod a b =
  if b.sign = 0 then raise Division_by_zero
  else if a.sign = 0 then (zero, zero)
  else
    let qm, rm = divmod_mag a.mag b.mag in
    (make (a.sign * b.sign) qm, make a.sign rm)

let quotient a b = fst (divmod a b)
let remainder a b = snd (divmod a b)

let modulo a b =
  let r = remainder a b in
  if r.sign = 0 || r.sign = b.sign then r else add r b

let pow base_v n =
  if n < 0 then invalid_arg "Bignum.pow"
  else
    let rec go acc b n =
      if n = 0 then acc
      else
        let acc = if n land 1 = 1 then mul acc b else acc in
        go acc (mul b b) (n lsr 1)
    in
    go one base_v n

(* Fast paths on small ints, used by decimal conversion. *)
let mul_small_mag mag m =
  let n = Array.length mag in
  let r = Array.make (n + 2) 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let acc = (mag.(i) * m) + !carry in
    r.(i) <- acc land limb_mask;
    carry := acc lsr limb_bits
  done;
  let i = ref n in
  while !carry <> 0 do
    r.(!i) <- !carry land limb_mask;
    carry := !carry lsr limb_bits;
    incr i
  done;
  r

let add_small_mag mag m =
  let n = Array.length mag in
  let r = Array.make (n + 1) 0 in
  Array.blit mag 0 r 0 n;
  let carry = ref m in
  let i = ref 0 in
  while !carry <> 0 do
    let acc = r.(!i) + !carry in
    r.(!i) <- acc land limb_mask;
    carry := acc lsr limb_bits;
    incr i
  done;
  r

(* Divide magnitude by a small positive int; returns quotient mag and the
   int remainder. Limbs < 2^30 and divisors <= 10^9 < 2^30 keep the
   intermediate [acc] below 2^60. *)
let divmod_small_mag mag m =
  let n = Array.length mag in
  let q = Array.make n 0 in
  let rem = ref 0 in
  for i = n - 1 downto 0 do
    let acc = (!rem lsl limb_bits) lor mag.(i) in
    q.(i) <- acc / m;
    rem := acc mod m
  done;
  (q, !rem)

let decimal_chunk = 1_000_000_000 (* largest power of 10 below 2^30 *)

let to_string t =
  if t.sign = 0 then "0"
  else begin
    let buf = Buffer.create 16 in
    let rec chunks mag acc =
      if Array.length (normalize_mag mag) = 0 then acc
      else
        let q, r = divmod_small_mag mag decimal_chunk in
        chunks (normalize_mag q) (r :: acc)
    in
    (match chunks t.mag [] with
    | [] -> assert false
    | first :: rest ->
        Buffer.add_string buf (string_of_int first);
        List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%09d" c)) rest);
    let digits = Buffer.contents buf in
    if t.sign < 0 then "-" ^ digits else digits
  end

let of_string s =
  let len = String.length s in
  if len = 0 then invalid_arg "Bignum.of_string: empty string";
  let sign, start =
    match s.[0] with
    | '-' -> (-1, 1)
    | '+' -> (1, 1)
    | _ -> (1, 0)
  in
  if start >= len then invalid_arg "Bignum.of_string: no digits";
  let mag = ref [||] in
  let i = ref start in
  while !i < len do
    let chunk_len = Stdlib.min 9 (len - !i) in
    let chunk = String.sub s !i chunk_len in
    String.iter
      (fun c ->
        if c < '0' || c > '9' then
          invalid_arg ("Bignum.of_string: bad digit " ^ String.make 1 c))
      chunk;
    let m = int_of_string chunk in
    let scale = int_of_float (10. ** float_of_int chunk_len) in
    mag := add_small_mag (mul_small_mag !mag scale) m;
    i := !i + chunk_len
  done;
  make sign !mag

let to_int t =
  (* 62 bits always fits; anything longer may not. *)
  if bit_length t <= 62 then begin
    let v = ref 0 in
    for i = Array.length t.mag - 1 downto 0 do
      v := (!v lsl limb_bits) lor t.mag.(i)
    done;
    Some (if t.sign < 0 then - !v else !v)
  end
  else None

let to_int_exn t =
  match to_int t with
  | Some n -> n
  | None -> failwith ("Bignum.to_int_exn: too large: " ^ to_string t)

let pp ppf t = Format.pp_print_string ppf (to_string t)

let hash t = Hashtbl.hash (t.sign, t.mag)
