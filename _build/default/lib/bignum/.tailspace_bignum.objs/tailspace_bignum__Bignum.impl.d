lib/bignum/bignum.ml: Array Buffer Format Hashtbl List Printf Stdlib String
