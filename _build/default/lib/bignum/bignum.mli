(** Arbitrary-precision signed integers.

    The space model of Clinger's reference machines charges an exact
    integer [z] a cost of [1 + log2 z] machine words, and Scheme's exact
    arithmetic is unbounded, so the machines cannot be built on native
    [int]s: iterating [(f (- n 1))] from a large [n], or computing
    factorials in the corpus, must neither overflow nor misreport space.
    This module is a self-contained bignum implementation (sign-magnitude,
    base-2{^30} limbs) with exactly the operations the Scheme primitives
    need.

    All functions are pure; values are immutable and canonical (no
    negative zero, no leading zero limbs), so structural equality agrees
    with numeric equality. *)

type t

(** {1 Constants and conversions} *)

val zero : t
val one : t
val minus_one : t

val of_int : int -> t

val to_int : t -> int option
(** [to_int z] is [Some n] when [z] fits in a native [int]. *)

val to_int_exn : t -> int
(** @raise Failure when the value does not fit in a native [int]. *)

val of_string : string -> t
(** Parses an optional sign followed by decimal digits.
    @raise Invalid_argument on malformed input. *)

val to_string : t -> string
(** Decimal rendering, with a leading ['-'] for negative values. *)

val pp : Format.formatter -> t -> unit

(** {1 Predicates and comparisons} *)

val sign : t -> int
(** [-1], [0] or [1]. *)

val is_zero : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val min : t -> t -> t
val max : t -> t -> t

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val succ : t -> t
val pred : t -> t

val divmod : t -> t -> t * t
(** [divmod a b] is truncated division: [(q, r)] with [a = q*b + r],
    [|r| < |b|], and [r] having the sign of [a] (or zero). This is
    Scheme's [quotient]/[remainder] pair.
    @raise Division_by_zero when [b] is zero. *)

val quotient : t -> t -> t
val remainder : t -> t -> t

val modulo : t -> t -> t
(** Scheme's [modulo]: the result has the sign of the divisor. *)

val pow : t -> int -> t
(** [pow base n] for [n >= 0].
    @raise Invalid_argument on a negative exponent. *)

(** {1 Bit-level} *)

val bit_length : t -> int
(** Number of bits in the magnitude; [bit_length zero = 0]. This is the
    quantity the space model uses: [space (NUM:z) = 1 + bit_length z]. *)

val shift_left : t -> int -> t
val shift_right : t -> int -> t
(** Arithmetic shift of the magnitude (both shifts operate on [abs] and
    reattach the sign; they are helpers for division and tests, not
    two's-complement shifts). *)

val hash : t -> int
