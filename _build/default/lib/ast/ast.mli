(** Core Scheme internal syntax (Figure 1 of the paper).

    [E ::= (quote c) | I | L | (if E0 E1 E2) | (set! I E0) | (E0 E1 ...)]
    with [L ::= (lambda (I1 ...) E)].

    The expander ({!Tailspace_expander.Expand}) lowers full Scheme into
    this type; the reference machines interpret it directly. Programs
    measured by the space model contain no compound constants (§12), but
    the constant type is kept rich enough for the standard library. *)

module Iset : Set.S with type elt = string

type ident = string

type const =
  | C_bool of bool
  | C_int of Tailspace_bignum.Bignum.t
  | C_sym of string
  | C_str of string
  | C_char of char
  | C_nil
  | C_unspecified
      (** result of [set!], one-armed [if], etc. Not writable in source. *)
  | C_undefined
      (** initial content of [letrec]-bound locations; a variable
          reference that reads UNDEFINED is stuck (§7). Expander-internal,
          not writable in source. *)

type expr =
  | Quote of const
  | Var of ident
  | Lambda of lambda
  | If of expr * expr * expr
  | Set of ident * expr
  | Call of expr * expr list  (** operator, operands *)

and lambda = {
  params : ident list;
  rest : ident option;  (** rest parameter for variadic procedures *)
  body : expr;
}

val lambda : ?rest:ident -> ident list -> expr -> expr

val equal_const : const -> const -> bool
val equal : expr -> expr -> bool

val size : expr -> int
(** [|P|]: the number of abstract-syntax-tree nodes, the additive term in
    Definition 23's space consumption. *)

val free_vars : expr -> Iset.t
(** Free variables; memoized on physical node identity, so repeated
    queries from the [I_free]/[I_sfs] machines are cheap. *)

val free_vars_lambda : lambda -> Iset.t

val free_vars_of_list : expr list -> Iset.t
(** Union of {!free_vars} over a list (used by the [I_sfs] push rules). *)

val to_datum : expr -> Tailspace_sexp.Datum.t
(** Render back to external syntax (for messages and tests). [C_nil] and
    [C_unspecified] print as [(quote ())] and [#!unspecified]. *)

val pp : Format.formatter -> expr -> unit
val to_string : expr -> string
