lib/ast/ast.ml: Hashtbl List Set String Tailspace_bignum Tailspace_sexp
