lib/ast/ast.mli: Format Set Tailspace_bignum Tailspace_sexp
