module Bignum = Tailspace_bignum.Bignum

type error = { message : string; line : int; col : int }

let pp_error ppf e =
  Format.fprintf ppf "parse error at %d:%d: %s" e.line e.col e.message

exception Parse_error of error

(* A small hand-rolled scanner over the input string; [pos]/[line]/[col]
   track the current position for error reporting. *)
type state = { src : string; mutable pos : int; mutable line : int; mutable col : int }

let make_state src = { src; pos = 0; line = 1; col = 1 }
let at_eof st = st.pos >= String.length st.src
let peek st = if at_eof st then None else Some st.src.[st.pos]

let peek2 st =
  if st.pos + 1 >= String.length st.src then None else Some st.src.[st.pos + 1]

let advance st =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.pos <- st.pos + 1

let fail st message = raise (Parse_error { message; line = st.line; col = st.col })

let is_delimiter = function
  | ' ' | '\t' | '\n' | '\r' | '(' | ')' | '"' | ';' -> true
  | _ -> false

let is_digit c = c >= '0' && c <= '9'

let is_symbol_initial c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  ||
  match c with
  | '!' | '$' | '%' | '&' | '*' | '/' | ':' | '<' | '=' | '>' | '?' | '^'
  | '_' | '~' ->
      true
  | _ -> false

let is_symbol_subsequent c =
  is_symbol_initial c || is_digit c
  || match c with '+' | '-' | '.' | '@' -> true | _ -> false

(* Skip whitespace and comments ([;] to end of line, nesting [#| |#]). *)
let rec skip_atmosphere st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_atmosphere st
  | Some ';' ->
      let rec to_eol () =
        match peek st with
        | Some '\n' | None -> ()
        | Some _ ->
            advance st;
            to_eol ()
      in
      to_eol ();
      skip_atmosphere st
  | Some '#' when peek2 st = Some '|' ->
      advance st;
      advance st;
      let rec block depth =
        match (peek st, peek2 st) with
        | None, _ -> fail st "unterminated block comment"
        | Some '|', Some '#' ->
            advance st;
            advance st;
            if depth > 1 then block (depth - 1)
        | Some '#', Some '|' ->
            advance st;
            advance st;
            block (depth + 1)
        | Some _, _ ->
            advance st;
            block depth
      in
      block 1;
      skip_atmosphere st
  | Some _ | None -> ()

let read_token_while st pred =
  let start = st.pos in
  while (not (at_eof st)) && pred st.src.[st.pos] do
    advance st
  done;
  String.sub st.src start (st.pos - start)

let read_string_literal st =
  advance st (* opening quote *);
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string literal"
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some '"' ->
            Buffer.add_char buf '"';
            advance st;
            go ()
        | Some '\\' ->
            Buffer.add_char buf '\\';
            advance st;
            go ()
        | Some 'n' ->
            Buffer.add_char buf '\n';
            advance st;
            go ()
        | Some 't' ->
            Buffer.add_char buf '\t';
            advance st;
            go ()
        | Some c -> fail st (Printf.sprintf "unknown string escape \\%c" c)
        | None -> fail st "unterminated string escape")
    | Some c ->
        Buffer.add_char buf c;
        advance st;
        go ()
  in
  go ();
  Datum.Str (Buffer.contents buf)

let read_character st =
  (* after "#\\" *)
  match peek st with
  | None -> fail st "unterminated character literal"
  | Some c when (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ->
      let name = read_token_while st (fun c -> not (is_delimiter c)) in
      if String.length name = 1 then Datum.Char name.[0]
      else (
        match String.lowercase_ascii name with
        | "space" -> Datum.Char ' '
        | "newline" -> Datum.Char '\n'
        | "tab" -> Datum.Char '\t'
        | _ -> fail st (Printf.sprintf "unknown character name #\\%s" name))
  | Some c ->
      advance st;
      Datum.Char c

let rec read_datum st =
  skip_atmosphere st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '(' ->
      advance st;
      read_list st
  | Some ')' -> fail st "unexpected )"
  | Some '"' -> read_string_literal st
  | Some '\'' ->
      advance st;
      Datum.list [ Datum.Sym "quote"; read_datum st ]
  | Some '`' ->
      advance st;
      Datum.list [ Datum.Sym "quasiquote"; read_datum st ]
  | Some ',' ->
      advance st;
      if peek st = Some '@' then (
        advance st;
        Datum.list [ Datum.Sym "unquote-splicing"; read_datum st ])
      else Datum.list [ Datum.Sym "unquote"; read_datum st ]
  | Some '#' -> (
      match peek2 st with
      | Some 't' | Some 'f' ->
          advance st;
          let c = Option.get (peek st) in
          advance st;
          (match peek st with
          | Some d when not (is_delimiter d) ->
              fail st "junk after boolean literal"
          | _ -> ());
          Datum.Bool (c = 't')
      | Some '\\' ->
          advance st;
          advance st;
          read_character st
      | Some '(' ->
          advance st;
          advance st;
          read_vector st
      | Some ';' ->
          advance st;
          advance st;
          let _skipped : Datum.t = read_datum st in
          read_datum st
      | Some '!' ->
          (* #!unspecified / #!undefined and friends read as symbols, so
             the Core Scheme pretty-printer's output can be re-read. *)
          let tok = read_token_while st (fun c -> not (is_delimiter c)) in
          Datum.Sym tok
      | _ -> fail st "unknown # syntax")
  | Some c when is_digit c -> read_number_or_symbol st
  | Some ('+' | '-') -> read_number_or_symbol st
  | Some '.' -> read_number_or_symbol st
  | Some c when is_symbol_initial c ->
      let tok = read_token_while st (fun c -> not (is_delimiter c)) in
      Datum.Sym tok
  | Some c -> fail st (Printf.sprintf "unexpected character %C" c)

and read_number_or_symbol st =
  let tok = read_token_while st (fun c -> not (is_delimiter c)) in
  let is_number =
    let digits_from i =
      i < String.length tok
      &&
      let rec go j = j >= String.length tok || (is_digit tok.[j] && go (j + 1)) in
      go i
    in
    match tok.[0] with
    | '0' .. '9' -> digits_from 0
    | '+' | '-' -> digits_from 1
    | _ -> false
  in
  if is_number then Datum.Int (Bignum.of_string tok)
  else if tok = "+" || tok = "-" || tok = "..." then Datum.Sym tok
  else if
    String.length tok > 0
    && (is_symbol_initial tok.[0])
    && String.for_all is_symbol_subsequent tok
  then Datum.Sym tok
  else fail st (Printf.sprintf "malformed token %S" tok)

and read_list st =
  skip_atmosphere st;
  match peek st with
  | None -> fail st "unterminated list"
  | Some ')' ->
      advance st;
      Datum.Nil
  | Some '.' when (match peek2 st with Some c -> is_delimiter c | None -> true)
    ->
      advance st;
      let tail = read_datum st in
      skip_atmosphere st;
      (match peek st with
      | Some ')' ->
          advance st;
          tail
      | _ -> fail st "expected ) after dotted tail")
  | Some _ ->
      let head = read_datum st in
      Datum.Pair (head, read_list st)

and read_vector st =
  let rec elements acc =
    skip_atmosphere st;
    match peek st with
    | None -> fail st "unterminated vector"
    | Some ')' ->
        advance st;
        List.rev acc
    | Some _ -> elements (read_datum st :: acc)
  in
  Datum.Vector (Array.of_list (elements []))

let parse_all_exn src =
  let st = make_state src in
  let rec go acc =
    skip_atmosphere st;
    if at_eof st then List.rev acc else go (read_datum st :: acc)
  in
  go []

let parse_one_exn src =
  let st = make_state src in
  let d = read_datum st in
  skip_atmosphere st;
  if at_eof st then d else fail st "trailing input after datum"

let wrap f src = try Ok (f src) with Parse_error e -> Error e
let parse_all src = wrap parse_all_exn src
let parse_one src = wrap parse_one_exn src
