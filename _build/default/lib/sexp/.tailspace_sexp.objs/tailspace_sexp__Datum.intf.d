lib/sexp/datum.mli: Format Tailspace_bignum
