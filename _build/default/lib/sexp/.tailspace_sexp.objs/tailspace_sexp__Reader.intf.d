lib/sexp/reader.mli: Datum Format
