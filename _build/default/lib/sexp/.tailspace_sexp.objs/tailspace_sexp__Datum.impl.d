lib/sexp/datum.ml: Array Buffer Format List String Tailspace_bignum
