lib/sexp/reader.ml: Array Buffer Datum Format List Option Printf String Tailspace_bignum
