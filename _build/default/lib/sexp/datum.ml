module Bignum = Tailspace_bignum.Bignum

type t =
  | Bool of bool
  | Int of Bignum.t
  | Sym of string
  | Str of string
  | Char of char
  | Nil
  | Pair of t * t
  | Vector of t array

let rec equal a b =
  match (a, b) with
  | Bool x, Bool y -> x = y
  | Int x, Int y -> Bignum.equal x y
  | Sym x, Sym y -> String.equal x y
  | Str x, Str y -> String.equal x y
  | Char x, Char y -> x = y
  | Nil, Nil -> true
  | Pair (a1, d1), Pair (a2, d2) -> equal a1 a2 && equal d1 d2
  | Vector x, Vector y ->
      Array.length x = Array.length y
      && (let rec go i =
            i >= Array.length x || (equal x.(i) y.(i) && go (i + 1))
          in
          go 0)
  | (Bool _ | Int _ | Sym _ | Str _ | Char _ | Nil | Pair _ | Vector _), _ ->
      false

let list ds = List.fold_right (fun d acc -> Pair (d, acc)) ds Nil

let to_list d =
  let rec go acc = function
    | Nil -> Some (List.rev acc)
    | Pair (a, rest) -> go (a :: acc) rest
    | Bool _ | Int _ | Sym _ | Str _ | Char _ | Vector _ -> None
  in
  go [] d

let sym s = Sym s
let int n = Int (Bignum.of_int n)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let pp_char ppf c =
  match c with
  | ' ' -> Format.pp_print_string ppf "#\\space"
  | '\n' -> Format.pp_print_string ppf "#\\newline"
  | '\t' -> Format.pp_print_string ppf "#\\tab"
  | c -> Format.fprintf ppf "#\\%c" c

let rec pp ppf d =
  match d with
  | Bool true -> Format.pp_print_string ppf "#t"
  | Bool false -> Format.pp_print_string ppf "#f"
  | Int z -> Bignum.pp ppf z
  | Sym s -> Format.pp_print_string ppf s
  | Str s -> Format.fprintf ppf "\"%s\"" (escape_string s)
  | Char c -> pp_char ppf c
  | Nil -> Format.pp_print_string ppf "()"
  | Pair _ -> pp_pair ppf d
  | Vector elts ->
      Format.pp_print_string ppf "#(";
      Array.iteri
        (fun i e ->
          if i > 0 then Format.pp_print_char ppf ' ';
          pp ppf e)
        elts;
      Format.pp_print_char ppf ')'

and pp_pair ppf d =
  Format.pp_print_char ppf '(';
  let rec go first d =
    match d with
    | Nil -> ()
    | Pair (a, rest) ->
        if not first then Format.pp_print_char ppf ' ';
        pp ppf a;
        go false rest
    | tail ->
        Format.pp_print_string ppf " . ";
        pp ppf tail
  in
  go true d;
  Format.pp_print_char ppf ')'

let to_string d = Format.asprintf "%a" pp d
