(** Reader: Scheme external syntax -> {!Datum.t}.

    Handles the R5RS lexical conventions needed by the corpus: symbols,
    exact integers (arbitrary precision), [#t]/[#f], characters, strings
    with escapes, proper and dotted lists, vectors [#(...)], the
    [' ` , ,@] abbreviations, line comments [;], block comments
    [#| ... |#] (nesting), and datum comments [#;]. *)

type error = { message : string; line : int; col : int }

val pp_error : Format.formatter -> error -> unit

exception Parse_error of error

val parse_all : string -> (Datum.t list, error) result
(** All datums in the input, in order. *)

val parse_one : string -> (Datum.t, error) result
(** Exactly one datum; trailing non-whitespace is an error. *)

val parse_all_exn : string -> Datum.t list
(** @raise Parse_error on malformed input. *)

val parse_one_exn : string -> Datum.t
(** @raise Parse_error on malformed input. *)
