(** External representation of Scheme data (R5RS-style datums).

    A datum is what the reader produces and what [quote] wraps; the
    expander lowers datums into Core Scheme expressions, and the machine
    never sees this type at run time. *)

type t =
  | Bool of bool
  | Int of Tailspace_bignum.Bignum.t
  | Sym of string
  | Str of string
  | Char of char
  | Nil  (** the empty list [()] *)
  | Pair of t * t
  | Vector of t array

val equal : t -> t -> bool

val list : t list -> t
(** [list [d1; ...; dn]] is the proper list [(d1 ... dn)]. *)

val to_list : t -> t list option
(** Inverse of {!list}: [Some elements] when the datum is a proper
    list, [None] otherwise (improper tails, atoms). *)

val sym : string -> t
val int : int -> t

val pp : Format.formatter -> t -> unit
(** [write]-style rendering: strings quoted and escaped, characters in
    [#\x] notation. *)

val to_string : t -> string
