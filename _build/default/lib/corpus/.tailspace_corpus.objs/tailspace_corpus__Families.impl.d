lib/corpus/families.ml: Buffer Printf
