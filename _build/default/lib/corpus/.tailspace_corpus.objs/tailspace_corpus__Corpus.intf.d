lib/corpus/corpus.mli: Tailspace_ast
