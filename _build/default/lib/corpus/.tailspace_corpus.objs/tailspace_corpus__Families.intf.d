lib/corpus/families.mli:
