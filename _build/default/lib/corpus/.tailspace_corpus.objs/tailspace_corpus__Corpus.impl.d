lib/corpus/corpus.ml: Hashtbl List String Tailspace_ast Tailspace_expander
