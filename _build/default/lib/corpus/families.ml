(* The proof-of-Theorem-25 programs, verbatim from the paper (§12's
   program convention: each evaluates to a procedure of one argument). *)

let separator_stack_gc =
  {|
(define (f n)
  (let ((v (make-vector n)))
    (if (zero? n)
        0
        (f (- n 1)))))
f
|}

let separator_gc_tail =
  {|
(define (f n) (if (zero? n) 0 (f (- n 1))))
f
|}

let separator_tail_evlis =
  {|
(define (f n)
  (define (g)
    (begin (f (- n 1))
           (lambda () n)))
  (let ((v (make-vector n)))
    (if (zero? n)
        0
        ((g)))))
f
|}

let separator_evlis_sfs =
  {|
(define (f n)
  (let ((v (make-vector n)))
    (if (zero? n)
        0
        ((lambda ()
           (begin (f (- n 1)) n))))))
f
|}

let separators =
  [
    ("stack/gc", separator_stack_gc);
    ("gc/tail", separator_gc_tail);
    ("tail/evlis", separator_tail_evlis);
    ("evlis/sfs", separator_evlis_sfs);
  ]

(* Theorem 26's P_k: E_{0,k} is the thunk-building loop, and each
   E_{j,k} wraps E_{j-1,k} in (let ((xj (- n j))) ...). *)
let pk_program k =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "(define (f n)\n";
  for j = k downto 1 do
    Buffer.add_string buf (Printf.sprintf "(let ((x%d (- n %d)))\n" j j)
  done;
  Buffer.add_string buf "(let ((x0 n))\n";
  Buffer.add_string buf
    {|(define (loop i thunks)
  (if (zero? i)
      ((list-ref thunks (random (length thunks))))
      (loop (- i 1)
            (cons (lambda () (list i|};
  for j = 0 to k do
    Buffer.add_string buf (Printf.sprintf " x%d" j)
  done;
  Buffer.add_string buf {|))
                  thunks))))
(loop n '())|};
  for _ = 0 to k do
    Buffer.add_char buf ')'
  done;
  Buffer.add_string buf ")\nf\n";
  Buffer.contents buf

(* §4: find-leftmost over explicit spines. The tree is data, so its O(N)
   store cost appears under every variant; the *_build programs isolate
   it so the harness can report the traversal overhead alone. *)

let find_leftmost_header =
  {|
(define (find-leftmost predicate? tree fail)
  (if (leaf? tree)
      (if (predicate? tree)
          tree
          (fail))
      (let ((continuation
             (lambda ()
               (find-leftmost predicate? (right-child tree) fail))))
        (find-leftmost predicate? (left-child tree) continuation))))
(define (leaf? t) (not (pair? t)))
(define (left-child t) (car t))
(define (right-child t) (cdr t))
(define (right-spine n)
  (if (zero? n) 0 (cons 0 (right-spine (- n 1)))))
(define (left-spine n)
  (if (zero? n) 0 (cons (left-spine (- n 1)) 0)))
(define (never? leaf) #f)
|}

let find_leftmost_right_traverse =
  find_leftmost_header
  ^ {|
(lambda (n)
  (find-leftmost never? (right-spine n) (lambda () 'not-found)))
|}

let find_leftmost_right_build =
  find_leftmost_header
  ^ {|
(lambda (n)
  (if (pair? (right-spine n)) 'built 'empty))
|}

let find_leftmost_left_traverse =
  find_leftmost_header
  ^ {|
(lambda (n)
  (find-leftmost never? (left-spine n) (lambda () 'not-found)))
|}

let find_leftmost_left_build =
  find_leftmost_header
  ^ {|
(lambda (n)
  (if (pair? (left-spine n)) 'built 'empty))
|}

let cps_loop =
  {|
(define (loop-cps i acc k)
  (if (zero? i)
      (k acc)
      (loop-cps (- i 1) (+ acc i) k)))
(lambda (n) (loop-cps n 0 (lambda (x) x)))
|}
