(** Parameterized program families from the paper's proofs.

    Each value is (or generates) full-Scheme source following §12's
    program convention; the harness applies the resulting procedure to
    [(quote N)] and measures space as a function of N. *)

(** {1 Theorem 25: the four separating programs} *)

val separator_stack_gc : string
(** [(define (f n) (let ((v (make-vector n))) (if (zero? n) 0 (f (- n 1)))))]
    — quadratic under [I_stack] (each frame pins its vector until
    return), linear under [I_gc] (O(N log N) with bignums). Shows
    [O(S_stack) ⊅ O(S_gc)]. *)

val separator_gc_tail : string
(** [(define (f n) (if (zero? n) 0 (f (- n 1))))] — linear under [I_gc]
    (a frame per call), O(log N) under [I_tail]. Shows
    [O(S_gc) ⊅ O(S_tail)]. *)

val separator_tail_evlis : string
(** The [(define (g) (begin (f (- n 1)) (lambda () n)))] program —
    quadratic under [I_tail] and [I_free] (the argument-evaluation
    continuation retains the environment binding the vector), linear
    under [I_evlis]/[I_sfs]. Shows [O(S_tail) ⊅ O(S_evlis)],
    [O(S_free) ⊅ O(S_evlis)], [O(S_free) ⊅ O(S_sfs)]. *)

val separator_evlis_sfs : string
(** The [((lambda () (begin (f (- n 1)) n)))] program — quadratic under
    [I_evlis] and [I_tail] (the closure captures the whole environment,
    pinning the vector), linear under [I_free]/[I_sfs]. Shows
    [O(S_tail) ⊅ O(S_free)], [O(S_evlis) ⊅ O(S_free)],
    [O(S_evlis) ⊅ O(S_sfs)]. *)

val separators : (string * string) list
(** All four, with short names. *)

(** {1 Theorem 26: flat versus linked environments} *)

val pk_program : int -> string
(** [pk_program k] is the paper's [P_k]: [k+1] nested [let]s binding
    [x0..xk], and a loop building [n] thunks each closing over all of
    them. With [k = N], [U_tail(P_N, N)] is O(N log N) — the thunks
    share one linked environment — while [S_sfs(P_N, N)] is O(N²): flat
    closures copy [k+2] bindings each. *)

(** {1 §4: find-leftmost} *)

val find_leftmost_right_traverse : string
(** Input N builds a right-leaning spine of depth N (every left child a
    leaf, none satisfying) and traverses it. §4: the traversal's space is
    independent of the number of right edges under [I_tail] — each
    failure continuation dies as the next is born — but grows linearly
    under [I_gc]/[I_stack]. *)

val find_leftmost_right_build : string
(** Builds the same spine and returns without traversing; subtracting its
    peak isolates the traversal overhead (the tree itself is O(N) data in
    every variant). *)

val find_leftmost_left_traverse : string
(** Input N builds a left-leaning spine of depth N: the pending failure
    continuations chain, so even [I_tail] needs space proportional to
    the left depth. *)

val find_leftmost_left_build : string
(** Build-only control for the left spine. *)

(** {1 §1/§4: continuation-passing style} *)

val cps_loop : string
(** Pure CPS iteration; bounded space under [I_tail], linear under
    [I_gc]. *)
