(** The Scheme program corpus.

    Every entry follows §12's convention: the program text evaluates to a
    procedure of one argument, which the harness applies to [(quote N)].
    [checks] are (input, expected answer) pairs used by the test suite;
    answers are in {!Tailspace_core.Answer.to_string} syntax.

    The corpus plays the role of the benchmark suites that Figure 2's
    compilers were instrumented with (we do not have lcc's or Twobit's
    inputs — documented substitution), and provides the workloads for the
    Theorem 24 pointwise-inequality experiment and the Corollary 20
    answer-agreement experiment. *)

type entry = {
  name : string;
  description : string;
  source : string;
  checks : (int * string) list;
  slow : bool;  (** exclude from exhaustive all-variant sweeps *)
}

val all : entry list
val find : string -> entry option
val names : unit -> string list

val program : entry -> Tailspace_ast.Ast.expr
(** Expanded Core Scheme program (cached). *)
