module Env = Types.Env

(* Visitor-based tracing. Environments are traced as overlay-plus-base,
   with each distinct base (physically) traced once per collection: every
   run-time environment shares the single global base, so the hundred-odd
   global bindings cost O(1) per frame instead of O(globals). A shadowed
   base binding is still traced, which can pin a dead global cell — a
   few words of documented overcount, never affecting fresh locations. *)
type tracer = {
  seen : (Types.loc, unit) Hashtbl.t;
  mutable bases : Env.t list;
  store : Store.t;
}

let make_tracer store = { seen = Hashtbl.create 64; bases = []; store }

let rec visit tr l =
  if not (Hashtbl.mem tr.seen l) then begin
    Hashtbl.add tr.seen l ();
    match Store.find_opt tr.store l with
    | None -> ()
    | Some v -> trace_value tr v
  end

and trace_value tr (v : Types.value) =
  match v with
  | Bool _ | Int _ | Sym _ | Str _ | Char _ | Nil | Unspecified | Undefined
  | Primop _ ->
      ()
  | Pair (a, d) ->
      visit tr a;
      visit tr d
  | Vector locs -> Array.iter (visit tr) locs
  | Closure (tag, _, env) ->
      visit tr tag;
      trace_env tr env
  | Escape (tag, k) ->
      visit tr tag;
      trace_cont tr k

and trace_env tr env =
  Env.iter_overlay (fun _ l -> visit tr l) env;
  if Env.has_base env && not (List.exists (Env.base_eq env) tr.bases) then begin
    tr.bases <- env :: tr.bases;
    Env.iter_base (fun _ l -> visit tr l) env
  end

and trace_cont tr (k : Types.cont) =
  match k with
  | Halt -> ()
  | Select { env; next; _ } | Assign { env; next; _ } | Return { env; next; _ }
    ->
      trace_env tr env;
      trace_cont tr next
  | Push { evaluated; env; next; _ } ->
      trace_env tr env;
      List.iter (fun (_, v) -> trace_value tr v) evaluated;
      trace_cont tr next
  | Call { vals; next; _ } ->
      List.iter (trace_value tr) vals;
      trace_cont tr next
  | Return_stack { dels; env; next; _ } ->
      (* The deletion set counts as an occurrence (§8): stack-allocated
         locations live until their frame returns, even when garbage. *)
      List.iter (visit tr) dels;
      trace_env tr env;
      trace_cont tr next

let reachable ~roots store =
  let tr = make_tracer store in
  List.iter (visit tr) roots;
  tr.seen

let live_set ~control_locs ~env ~cont store =
  let tr = make_tracer store in
  List.iter (visit tr) control_locs;
  trace_env tr env;
  trace_cont tr cont;
  tr.seen

let collect ~control_locs ~env ~cont store =
  let live = live_set ~control_locs ~env ~cont store in
  let dead =
    Store.fold
      (fun l _ acc -> if Hashtbl.mem live l then acc else l :: acc)
      store []
  in
  (Store.remove_all store dead, List.length dead)

(* One-level occurrence check for the I_stack return rule. Candidates
   are locations freshly allocated by a call, so they can never appear
   in a global base (built before the run); only overlays are scanned. *)
let occurs_in_retained ~candidates ~control_locs ~env ~cont ~retained =
  let hit : (Types.loc, unit) Hashtbl.t = Hashtbl.create 8 in
  let check l = if Hashtbl.mem candidates l then Hashtbl.replace hit l () in
  let check_env env = Env.iter_overlay (fun _ l -> check l) env in
  let rec check_value (v : Types.value) =
    match v with
    | Bool _ | Int _ | Sym _ | Str _ | Char _ | Nil | Unspecified | Undefined
    | Primop _ ->
        ()
    | Pair (a, d) ->
        check a;
        check d
    | Vector locs -> Array.iter check locs
    | Closure (tag, _, env) ->
        check tag;
        check_env env
    | Escape (tag, k) ->
        check tag;
        check_cont k
  and check_cont (k : Types.cont) =
    match k with
    | Halt -> ()
    | Select { env; next; _ }
    | Assign { env; next; _ }
    | Return { env; next; _ } ->
        check_env env;
        check_cont next
    | Push { evaluated; env; next; _ } ->
        check_env env;
        List.iter (fun (_, v) -> check_value v) evaluated;
        check_cont next
    | Call { vals; next; _ } ->
        List.iter check_value vals;
        check_cont next
    | Return_stack { dels; env; next; _ } ->
        List.iter check dels;
        check_env env;
        check_cont next
  in
  List.iter check control_locs;
  check_env env;
  check_cont cont;
  Store.iter (fun _ v -> check_value v) retained;
  hit
