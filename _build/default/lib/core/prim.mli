(** Standard primitive procedures.

    The paper leaves primitive rules unspecified ("These core rules must
    be supplemented by additional rules, mainly for primitive
    procedures"). Here a primitive application is a single transition:
    given the store and the argument values it produces a new store and a
    result value, never creating a continuation — so primitives are
    space-neutral apart from what they allocate, in every machine
    variant.

    [apply] and [call-with-current-continuation] are bound in the initial
    environment but intercepted by {!Machine}, since they manipulate the
    continuation itself. *)

exception Prim_error of string
(** Raised by a primitive on a domain error; the machine reports the
    computation as stuck. *)

type ctx = {
  output : Buffer.t;  (** [display]/[write]/[newline] sink *)
  mutable rng : int;  (** deterministic LCG state for [random] *)
}

val make_ctx : ?seed:int -> unit -> ctx

type fn = ctx -> Store.t -> Types.value list -> Store.t * Types.value

val find : string -> fn option
(** Look up a primitive's transition function by name. *)

val names : unit -> string list
(** All primitive names, including the machine-level ones. *)

val initial_bindings : unit -> (string * Types.value) list
(** The [(name, PRIMOP)] pairs for the initial environment [rho_0] /
    store [sigma_0] (§12). *)

(** {1 Helpers shared with the machine and tests} *)

val eqv : Types.value -> Types.value -> bool
(** [eqv?]: numbers and characters by value, pairs/vectors/procedures by
    location identity, strings structurally (our strings are immutable
    and have no store identity — documented deviation). *)

val list_to_values : Store.t -> Types.value -> Types.value list option
(** Flatten a store-allocated proper list; [None] if improper/cyclic
    (bounded by store size). *)

val values_to_list : Store.t -> Types.value list -> Store.t * Types.value
(** Allocate a fresh proper list holding the given values. *)
