module Datum = Tailspace_sexp.Datum

type style = Display | Write

let render ~style ~fuel store v =
  let buf = Buffer.create 64 in
  let budget = ref fuel in
  let out s =
    if !budget > 0 then begin
      decr budget;
      Buffer.add_string buf s
    end
  in
  let deref l =
    match Store.find_opt store l with
    | Some v -> v
    | None -> Types.Undefined
  in
  let rec emit v =
    if !budget > 0 then
      match (v : Types.value) with
      | Bool true -> out "#t"
      | Bool false -> out "#f"
      | Int z -> out (Types.Bignum.to_string z)
      | Sym s -> out s
      | Str s -> (
          match style with
          | Display -> out s
          | Write -> out (Format.asprintf "%a" Datum.pp (Datum.Str s)))
      | Char c -> (
          match style with
          | Display -> out (String.make 1 c)
          | Write -> out (Format.asprintf "%a" Datum.pp (Datum.Char c)))
      | Nil -> out "()"
      | Unspecified -> out "#!unspecified"
      | Undefined -> out "#!undefined"
      | Closure _ | Escape _ | Primop _ -> out "#<PROC>"
      | Vector locs ->
          out "#(";
          Array.iteri
            (fun i l ->
              if i > 0 then out " ";
              emit (deref l))
            locs;
          out ")"
      | Pair (a, d) ->
          out "(";
          emit (deref a);
          emit_tail (deref d);
          out ")"
  and emit_tail v =
    if !budget > 0 then
      match (v : Types.value) with
      | Nil -> ()
      | Pair (a, d) ->
          out " ";
          emit (deref a);
          emit_tail (deref d)
      | v ->
          out " . ";
          emit v
  in
  emit v;
  if !budget <= 0 then Buffer.add_string buf "...";
  Buffer.contents buf

let to_string ?(fuel = 10_000) store v = render ~style:Write ~fuel store v
let display store v = render ~style:Display ~fuel:10_000 store v
let write store v = render ~style:Write ~fuel:10_000 store v
