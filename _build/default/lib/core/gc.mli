(** The garbage collection rule (§7): locations not reachable from the
    configuration's value/expression, environment and continuation may be
    removed from the active store.

    A space-efficient computation (Definition 21) applies this rule
    whenever it is applicable, i.e. runs with a fully collected store.
    The machine achieves the same measured peaks lazily; see
    {!Machine}.

    Tracing is visitor-based, and each distinct environment base (see
    {!Env}) is traced once per collection, so a collection costs
    O(live + frames + overlay bindings), independent of how many
    environments share the global bindings. *)

val reachable :
  roots:Types.loc list -> Store.t -> (Types.loc, unit) Hashtbl.t
(** Transitive closure of the points-to relation through the store,
    starting from explicit root locations. *)

val collect :
  control_locs:Types.loc list ->
  env:Types.Env.t ->
  cont:Types.cont ->
  Store.t ->
  Store.t * int
(** Remove every location unreachable from the configuration; returns
    the collected store and the number of locations reclaimed. *)

val occurs_in_retained :
  candidates:(Types.loc, unit) Hashtbl.t ->
  control_locs:Types.loc list ->
  env:Types.Env.t ->
  cont:Types.cont ->
  retained:Store.t ->
  (Types.loc, unit) Hashtbl.t
(** Support for the [I_stack] return rule's side condition: which of
    [candidates] occur (syntactically, one level deep per store cell)
    within the value, environment, continuation, or any retained store
    cell. [retained] must already exclude the cells being deleted.
    Candidates are assumed to be run-time allocations, so environment
    bases (prelude-time bindings) are not scanned. *)
