(** The observable answer of a final configuration (Definition 11).

    [answer(v, sigma)] renders booleans as [#t]/[#f], exact integers in
    decimal, symbols by name, vectors as [#(...)] (dereferencing element
    locations through the store), every procedure value — closure, escape
    or primitive — as [#<PROC>], and lists element-wise. Definition 11
    allows the output to be infinite (cyclic data); rendering is fuel-
    bounded and emits ["..."] when the fuel runs out, which keeps answers
    comparable across machines without diverging. *)

val to_string : ?fuel:int -> Store.t -> Types.value -> string
(** [fuel] bounds the number of emitted tokens (default 10_000). *)

val display : Store.t -> Types.value -> string
(** Like {!to_string} but strings and characters render raw, as Scheme's
    [display] does; used by the [display] primitive. *)

val write : Store.t -> Types.value -> string
(** Strings quoted and escaped, characters in [#\x] notation (Scheme's
    [write]); {!to_string} uses this convention. *)
