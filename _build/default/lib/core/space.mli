(** The linked-environment space model (Figure 8, §13).

    In the linked model each binding — a pair of an identifier and a
    location — is counted {e once per configuration}, no matter how many
    environments (the register, saved continuation environments, closure
    environments anywhere in the configuration or store) contain it;
    environments are shared rather than copied. Everything else is
    charged as in the flat model, except that closures cost 1 word plus
    their (shared) bindings and each continuation frame costs its
    non-environment overhead.

    This yields the [U_X] space consumption functions; Theorem 26 shows
    [O(U_tail)] and [O(U_evlis)] are incomparable with [O(S_free)] and
    [O(S_sfs)], which experiment E4 reproduces. *)

val linked_config_space :
  control:[ `Expr of Tailspace_ast.Ast.expr | `Value of Types.value ] ->
  env:Types.Env.t ->
  cont:Types.cont ->
  store:Store.t ->
  int
(** The linked space of a configuration. The store should be fully
    garbage collected first, since Definition 21 measures space-efficient
    computations only. *)
