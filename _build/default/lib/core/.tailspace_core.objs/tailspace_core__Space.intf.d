lib/core/space.mli: Store Tailspace_ast Types
