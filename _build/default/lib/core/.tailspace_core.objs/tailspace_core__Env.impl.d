lib/core/env.ml: List Map String Tailspace_ast
