lib/core/prim.mli: Buffer Store Types
