lib/core/store.ml: Int List Map Types
