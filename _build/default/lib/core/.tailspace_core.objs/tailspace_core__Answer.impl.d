lib/core/answer.ml: Array Buffer Format Store String Tailspace_sexp Types
