lib/core/types.mli: Env Tailspace_ast Tailspace_bignum
