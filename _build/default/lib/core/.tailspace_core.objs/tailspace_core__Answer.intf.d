lib/core/answer.mli: Store Types
