lib/core/machine.mli: Result Store Tailspace_ast Types
