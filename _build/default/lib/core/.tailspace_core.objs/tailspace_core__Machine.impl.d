lib/core/machine.ml: Answer Array Buffer Env Gc Hashtbl Int List Prim Printf Space Stdlib Store String Tailspace_ast Tailspace_expander Tailspace_sexp Types
