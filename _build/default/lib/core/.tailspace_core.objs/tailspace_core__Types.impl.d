lib/core/types.ml: Array Env List String Tailspace_ast Tailspace_bignum
