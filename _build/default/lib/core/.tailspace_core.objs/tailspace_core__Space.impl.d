lib/core/space.ml: Hashtbl List Store Types
