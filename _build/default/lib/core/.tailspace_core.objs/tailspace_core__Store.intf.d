lib/core/store.mli: Types
