lib/core/env.mli: Tailspace_ast
