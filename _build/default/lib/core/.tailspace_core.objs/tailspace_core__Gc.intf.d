lib/core/gc.mli: Hashtbl Store Types
