lib/core/prim.ml: Answer Array Buffer Char Format Hashtbl List Store String Tailspace_bignum Types
