lib/core/gc.ml: Array Hashtbl List Store Types
