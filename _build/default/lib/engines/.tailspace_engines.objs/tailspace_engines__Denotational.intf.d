lib/engines/denotational.mli: Tailspace_ast Tailspace_core
