lib/engines/denotational.ml: Format Hashtbl List Tailspace_ast Tailspace_core
