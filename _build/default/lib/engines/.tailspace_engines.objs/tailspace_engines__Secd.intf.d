lib/engines/secd.mli: Tailspace_ast
