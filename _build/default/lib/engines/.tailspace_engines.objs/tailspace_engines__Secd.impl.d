lib/engines/secd.ml: Array Buffer Format Hashtbl List Obj Option Stdlib String Tailspace_ast Tailspace_bignum Tailspace_sexp
