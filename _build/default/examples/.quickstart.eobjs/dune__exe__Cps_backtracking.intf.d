examples/cps_backtracking.mli:
