examples/quickstart.ml: Printf Tailspace_core
