examples/space_hierarchy.mli:
