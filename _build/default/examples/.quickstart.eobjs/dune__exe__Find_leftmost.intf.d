examples/find_leftmost.mli:
