examples/quickstart.mli:
