(* schemesim — run Scheme programs on the paper's reference machines.

   subcommands:
     run         evaluate a file or expression on a chosen variant,
                 reporting the answer and the measured space consumption
     analyze     static tail-call statistics (Figure 2) for a file
     corpus      list the shipped corpus, or run one entry
     report      print the paper-reproduction experiment tables *)

open Cmdliner
module M = Tailspace_core.Machine
module Expand = Tailspace_expander.Expand
module Reader = Tailspace_sexp.Reader
module TC = Tailspace_analysis.Tail_calls
module X = Tailspace_harness.Experiments
module R = Tailspace_harness.Runner
module Corpus = Tailspace_corpus.Corpus

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ------------------------------------------------------------------ *)
(* shared options                                                      *)

let variant_conv =
  let parse s =
    match M.variant_of_name s with
    | Some v -> Ok v
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown variant %S (expected %s)" s
               (String.concat "|" (List.map M.variant_name M.all_variants))))
  in
  Arg.conv (parse, fun ppf v -> Format.pp_print_string ppf (M.variant_name v))

let variant_arg =
  let doc =
    "Reference machine: tail (properly tail recursive, default), gc \
     (improper), stack (Algol-like deletion), evlis, free, or sfs \
     (safe-for-space)."
  in
  Arg.(value & opt variant_conv M.Tail & info [ "v"; "variant" ] ~docv:"VARIANT" ~doc)

let perm_arg =
  let cv =
    let parse = function
      | "ltr" -> Ok M.Left_to_right
      | "rtl" -> Ok M.Right_to_left
      | s -> (
          match int_of_string_opt s with
          | Some seed -> Ok (M.Seeded seed)
          | None -> Error (`Msg "expected ltr, rtl, or an integer seed"))
    in
    let print ppf = function
      | M.Left_to_right -> Format.pp_print_string ppf "ltr"
      | M.Right_to_left -> Format.pp_print_string ppf "rtl"
      | M.Seeded s -> Format.fprintf ppf "%d" s
    in
    Arg.conv (parse, print)
  in
  let doc = "Argument evaluation order: ltr, rtl, or an integer seed." in
  Arg.(value & opt cv M.Left_to_right & info [ "perm" ] ~docv:"ORDER" ~doc)

let stack_policy_arg =
  let cv =
    let parse = function
      | "algol" -> Ok M.Algol
      | "safe" -> Ok M.Safe_deletion
      | _ -> Error (`Msg "expected algol or safe")
    in
    let print ppf = function
      | M.Algol -> Format.pp_print_string ppf "algol"
      | M.Safe_deletion -> Format.pp_print_string ppf "safe"
    in
    Arg.conv (parse, print)
  in
  let doc =
    "I_stack deletion policy: algol (delete everything, stuck on dangling \
     pointers) or safe (delete the maximal safe subset, default)."
  in
  Arg.(value & opt cv M.Safe_deletion & info [ "stack-policy" ] ~docv:"POLICY" ~doc)

let fuel_arg =
  let doc = "Maximum number of machine steps." in
  Arg.(value & opt int 20_000_000 & info [ "fuel" ] ~docv:"STEPS" ~doc)

let linked_arg =
  let doc = "Also measure the linked-environment space model (Figure 8)." in
  Arg.(value & flag & info [ "linked" ] ~doc)

let trace_arg =
  let doc = "Print a one-line description of the first $(docv) machine steps." in
  Arg.(value & opt int 0 & info [ "trace" ] ~docv:"STEPS" ~doc)

let profile_arg =
  let doc = "Write a step,space CSV profile of the run to $(docv)." in
  Arg.(value & opt (some string) None & info [ "profile" ] ~docv:"FILE" ~doc)

(* ------------------------------------------------------------------ *)
(* run                                                                 *)

let run_cmd =
  let file_arg =
    let doc = "Scheme source file (use - for stdin)." in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let expr_arg =
    let doc = "Evaluate an inline program instead of a file." in
    Arg.(value & opt (some string) None & info [ "e"; "expr" ] ~docv:"PROGRAM" ~doc)
  in
  let input_arg =
    let doc =
      "Treat the program as §12's procedure-of-one-argument and apply it to \
       this integer."
    in
    Arg.(value & opt (some int) None & info [ "n"; "input" ] ~docv:"N" ~doc)
  in
  let run file expr input variant perm stack_policy fuel linked trace_steps
      profile =
    let source =
      match (file, expr) with
      | _, Some e -> Ok e
      | Some "-", None -> Ok (In_channel.input_all stdin)
      | Some f, None -> (
          try Ok (read_file f) with Sys_error m -> Error m)
      | None, None -> Error "expected a FILE argument or --expr"
    in
    match source with
    | Error m ->
        Format.eprintf "schemesim: %s@." m;
        exit 2
    | Ok source -> (
        match
          let program = Expand.program_of_string source in
          let t = M.create ~variant ~perm ~stack_policy () in
          let trace =
            if trace_steps <= 0 then None
            else
              Some
                (fun step description ->
                  if step < trace_steps then
                    Format.printf "; %6d %s@." step description)
          in
          let profile_channel = Option.map open_out profile in
          let on_step =
            Option.map
              (fun oc ~steps ~space -> Printf.fprintf oc "%d,%d\n" steps space)
              profile_channel
          in
          let result =
            Fun.protect
              ~finally:(fun () -> Option.iter close_out profile_channel)
              (fun () ->
                match input with
                | Some n ->
                    M.run_program ~fuel ~measure_linked:linked ?on_step ?trace t
                      ~program ~input:(R.input_expr n)
                | None ->
                    M.run ~fuel ~measure_linked:linked ?on_step ?trace t program)
          in
          (result, Tailspace_ast.Ast.size program)
        with
        | exception Reader.Parse_error e ->
            Format.eprintf "schemesim: %a@." Reader.pp_error e;
            exit 1
        | exception Expand.Expand_error e ->
            Format.eprintf "schemesim: %a@." Expand.pp_error e;
            exit 1
        | result, _psize ->
            if result.M.output <> "" then print_string result.M.output;
            (match result.M.outcome with
            | M.Done { answer; _ } -> Format.printf "%s@." answer
            | M.Stuck m ->
                Format.printf "stuck: %s@." m
            | M.Out_of_fuel -> Format.printf "out of fuel@.");
            Format.printf
              "; variant=%s steps=%d |P|=%d peak=%d S=|P|+peak=%d gc-runs=%d@."
              (M.variant_name variant) result.M.steps result.M.program_size
              result.M.peak_space
              (M.space_consumption result)
              result.M.gc_runs;
            (match result.M.peak_linked with
            | Some u -> Format.printf "; linked peak U=%d@." (u + result.M.program_size)
            | None -> ());
            (match result.M.outcome with M.Done _ -> () | _ -> exit 1))
  in
  let doc = "Run a Scheme program on a reference machine and measure space." in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run $ file_arg $ expr_arg $ input_arg $ variant_arg $ perm_arg
      $ stack_policy_arg $ fuel_arg $ linked_arg $ trace_arg $ profile_arg)

(* ------------------------------------------------------------------ *)
(* analyze                                                             *)

let analyze_cmd =
  let file_arg =
    let doc = "Scheme source file." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)
  in
  let analyze file =
    match TC.analyze_source (read_file file) with
    | exception Reader.Parse_error e ->
        Format.eprintf "schemesim: %a@." Reader.pp_error e;
        exit 1
    | exception Expand.Expand_error e ->
        Format.eprintf "schemesim: %a@." Expand.pp_error e;
        exit 1
    | c ->
        Format.printf "calls:           %d@." c.TC.calls;
        Format.printf "tail calls:      %d (%.1f%%)@." c.TC.tail_calls
          (TC.percent c.TC.tail_calls c.TC.calls);
        Format.printf "self-tail calls: %d (%.1f%%)@." c.TC.self_tail_calls
          (TC.percent c.TC.self_tail_calls c.TC.calls);
        Format.printf "known calls:     %d (%.1f%%)@." c.TC.known_calls
          (TC.percent c.TC.known_calls c.TC.calls)
  in
  let doc = "Static tail-call statistics (the Figure 2 measurement)." in
  Cmd.v (Cmd.info "analyze" ~doc) Term.(const analyze $ file_arg)

(* ------------------------------------------------------------------ *)
(* corpus                                                              *)

let corpus_cmd =
  let name_arg =
    let doc = "Corpus entry to run (omit to list all entries)." in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"NAME" ~doc)
  in
  let n_arg =
    let doc = "Input N for the chosen entry." in
    Arg.(value & opt (some int) None & info [ "n" ] ~docv:"N" ~doc)
  in
  let corpus name n variant =
    match name with
    | None ->
        List.iter
          (fun (e : Corpus.entry) ->
            Format.printf "%-18s %s@." e.Corpus.name e.Corpus.description)
          Corpus.all
    | Some name -> (
        match Corpus.find name with
        | None ->
            Format.eprintf "schemesim: unknown corpus entry %S@." name;
            exit 2
        | Some e ->
            let n =
              match (n, e.Corpus.checks) with
              | Some n, _ -> n
              | None, (n, _) :: _ -> n
              | None, [] -> 0
            in
            let m =
              R.run_once ~variant ~program:(Corpus.program e) ~n ()
            in
            (match m.R.status with
            | R.Answer a -> Format.printf "%s@." a
            | R.Stuck msg -> Format.printf "stuck: %s@." msg
            | R.Fuel -> Format.printf "out of fuel@.");
            Format.printf "; %s(%d) under %s: S=%d steps=%d@." name n
              (M.variant_name variant) m.R.space m.R.steps)
  in
  let doc = "List or run the shipped Scheme corpus." in
  Cmd.v (Cmd.info "corpus" ~doc) Term.(const corpus $ name_arg $ n_arg $ variant_arg)

(* ------------------------------------------------------------------ *)
(* report                                                              *)

let report_cmd =
  let which_arg =
    let doc =
      "Experiment to reproduce: fig2, thm24, thm25, thm26, sec4, cor20, cps, \
       ablation, sanity, or all (default)."
    in
    Arg.(value & pos 0 string "all" & info [] ~docv:"EXPERIMENT" ~doc)
  in
  let report which =
    let table =
      match which with
      | "fig2" -> Ok (X.Fig2.render (X.Fig2.run ()))
      | "thm25" -> Ok (X.Thm25.render (X.Thm25.run ()))
      | "thm24" -> Ok (X.Thm24.render (X.Thm24.run ()))
      | "thm26" -> Ok (X.Thm26.render (X.Thm26.run ()))
      | "sec4" -> Ok (X.Sec4.render (X.Sec4.run ()))
      | "cor20" -> Ok (X.Cor20.render (X.Cor20.run ()))
      | "cps" -> Ok (X.Cps.render (X.Cps.run ()))
      | "ablation" -> Ok (X.Ablation.render (X.Ablation.run ()))
      | "sanity" -> Ok (X.Sanity.render (X.Sanity.run ()))
      | "all" -> Ok (X.render_all ())
      | other -> Error other
    in
    match table with
    | Ok s -> print_string s
    | Error other ->
        Format.eprintf "schemesim: unknown experiment %S@." other;
        exit 2
  in
  let doc = "Print the paper-reproduction tables (see DESIGN.md)." in
  Cmd.v (Cmd.info "report" ~doc) Term.(const report $ which_arg)

let () =
  let doc =
    "reference implementations for 'Proper Tail Recursion and Space \
     Efficiency' (Clinger, PLDI 1998)"
  in
  let info = Cmd.info "schemesim" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ run_cmd; analyze_cmd; corpus_cmd; report_cmd ]))
