(* The benchmark executable does two jobs:

   1. Reproduce the paper: print every experiment table (E1-E7, mapped
      to the paper's figures and theorems in DESIGN.md). These are
      *space* measurements — the paper's claims are about asymptotic
      space, so this report is the real artifact.

   2. Wall-clock benchmarks (Bechamel): one [Test.make] per experiment
      table, timing a representative slice of each, plus a throughput
      comparison of the six machine variants. The paper makes no timing
      claims; this section is an engineering sanity check that the
      reference machines are usable. *)

open Bechamel
open Toolkit
module M = Tailspace_core.Machine
module X = Tailspace_harness.Experiments
module R = Tailspace_harness.Runner
module Corpus = Tailspace_corpus.Corpus
module Families = Tailspace_corpus.Families
module Expand = Tailspace_expander.Expand

(* ------------------------------------------------------------------ *)
(* Timing benches                                                      *)

let stage_run_with config program n =
  (* machine creation is hoisted out of the timed closure *)
  let t = M.create_with config in
  Staged.stage (fun () ->
      ignore (M.exec_program t ~program ~input:(R.input_expr n)))

let stage_run ~variant program n =
  stage_run_with (M.Config.make ~variant ()) program n

let variant_benches =
  let program = Corpus.program (Option.get (Corpus.find "fib-naive")) in
  List.map
    (fun variant ->
      Test.make
        ~name:(M.variant_name variant)
        (stage_run ~variant program 10))
    M.all_variants

let experiment_benches =
  let sep = Expand.program_of_string Families.separator_stack_gc in
  let pk = Expand.program_of_string (Families.pk_program 8) in
  let right = Expand.program_of_string Families.find_leftmost_right_traverse in
  let cps = Expand.program_of_string Families.cps_loop in
  let countdown = Corpus.program (Option.get (Corpus.find "countdown")) in
  [
    Test.make ~name:"fig2.analyze-corpus"
      (Staged.stage (fun () -> ignore (X.Fig2.run ())));
    Test.make ~name:"thm25.separator-stack"
      (stage_run ~variant:M.Stack sep 12);
    Test.make ~name:"thm24.chain-countdown"
      (let machines =
         List.map
           (fun v -> M.create_with (M.Config.make ~variant:v ()))
           M.all_variants
       in
       Staged.stage (fun () ->
           List.iter
             (fun t ->
               ignore
                 (M.exec_program t ~program:countdown ~input:(R.input_expr 20)))
             machines));
    Test.make ~name:"thm26.pk-linked"
      (let t = M.create_with (M.Config.make ~variant:M.Tail ()) in
       let opts =
         M.Run_opts.make
           ~measure:[ Tailspace_core.Space_model.Flat; Tailspace_core.Space_model.Linked ]
           ()
       in
       Staged.stage (fun () ->
           ignore
             (M.exec_program ~opts t ~program:pk ~input:(R.input_expr 8))));
    Test.make ~name:"sec4.find-leftmost"
      (stage_run ~variant:M.Tail right 32);
    Test.make ~name:"cor20.all-variants"
      (let machines =
         List.map
           (fun v -> M.create_with (M.Config.make ~variant:v ()))
           M.all_variants
       in
       let program = Corpus.program (Option.get (Corpus.find "even-odd")) in
       Staged.stage (fun () ->
           List.iter
             (fun t ->
               ignore (M.exec_program t ~program ~input:(R.input_expr 30)))
             machines));
    Test.make ~name:"cps.tail" (stage_run ~variant:M.Tail cps 64);
    Test.make ~name:"ablation.literal-gc"
      (let t =
         M.create_with
           (M.Config.make ~variant:M.Gc ~return_env:M.Register_env ())
       in
       Staged.stage (fun () ->
           ignore (M.exec_program t ~program:sep ~input:(R.input_expr 12))));
    Test.make ~name:"sanity.secd"
      (let program = Corpus.program (Option.get (Corpus.find "countdown")) in
       Staged.stage (fun () ->
           ignore
             (Tailspace_engines.Secd.run_program ~program
                ~input:(R.input_expr 64) ())));
  ]

(* Telemetry overhead: the same run bare, with counters only, and with
   a full event sink + profile — the disabled case must stay within
   noise of the seed (the hot path is one is-None branch per step). *)
let telemetry_benches =
  let module Tel = Tailspace_telemetry.Telemetry in
  let program = Corpus.program (Option.get (Corpus.find "countdown")) in
  let t = M.create_with (M.Config.make ~variant:M.Tail ()) in
  let input = R.input_expr 500 in
  [
    Test.make ~name:"off"
      (Staged.stage (fun () -> ignore (M.exec_program t ~program ~input)));
    Test.make ~name:"counters"
      (Staged.stage (fun () ->
           let opts = M.Run_opts.make ~telemetry:(Tel.create ()) () in
           ignore (M.exec_program ~opts t ~program ~input)));
    Test.make ~name:"events+profile"
      (Staged.stage (fun () ->
           let tl =
             Tel.create
               ~sink:(fun _ -> ())
               ~profile:(Tel.Profile.create ~stride:16 ())
               ()
           in
           let opts = M.Run_opts.make ~telemetry:tl () in
           ignore (M.exec_program ~opts t ~program ~input)));
  ]

(* The annotation pass exists to make the I_sfs/I_free restriction sets
   a table lookup instead of a per-push free-variable traversal; this
   group times the same run with the pass on and off, on the variants
   that consult the sets every push. The paired names make the speedup
   visible in the report. *)
let annot_benches =
  let sfs_heavy = Expand.program_of_string Families.separator_evlis_sfs in
  (* a many-argument iteration: every call pushes arity-many frames, so
     the per-push suffix unions the pass precomputes dominate the
     unannotated step loop *)
  let manyarg =
    Expand.program_of_string
      {|
(define (f a b c d e g h) (if (zero? a) 0 (f (- a 1) b c d e g h)))
(lambda (n) (f n 1 2 3 4 5 6))
|}
  in
  List.concat_map
    (fun (vname, variant) ->
      [
        Test.make
          ~name:(vname ^ ".separator.annot")
          (stage_run_with (M.Config.make ~variant ()) sfs_heavy 48);
        Test.make
          ~name:(vname ^ ".separator.no-annot")
          (stage_run_with
             (M.Config.make ~variant ~annotate:false ())
             sfs_heavy 48);
        Test.make
          ~name:(vname ^ ".manyarg.annot")
          (stage_run_with (M.Config.make ~variant ()) manyarg 2000);
        Test.make
          ~name:(vname ^ ".manyarg.no-annot")
          (stage_run_with
             (M.Config.make ~variant ~annotate:false ())
             manyarg 2000);
      ])
    [ ("sfs", M.Sfs); ("free", M.Free) ]

(* The execution tiers head-to-head on the same (program, input): the
   Tail stepper, the instrumented VM (same accounting, so it should sit
   within noise of the stepper), the fast VM end-to-end (compile +
   prelude + run), the fast VM with compilation hoisted out (the pure
   dispatch-loop cost), and the SECD engine for reference. *)
let vm_benches =
  let module Vm = Tailspace_vm.Vm in
  let module Ast = Tailspace_ast.Ast in
  let entry name = Corpus.program (Option.get (Corpus.find name)) in
  let tiers name program n =
    [
      Test.make ~name:(name ^ ".stepper")
        (stage_run ~variant:M.Tail program n);
      Test.make
        ~name:(name ^ ".vm-instrumented")
        (let config = M.Config.make ~engine:M.Vm () in
         Staged.stage (fun () ->
             ignore (Vm.exec_program config ~program ~input:(R.input_expr n))));
      Test.make ~name:(name ^ ".vm-fast")
        (let config = M.Config.make ~engine:M.Vm_fast () in
         Staged.stage (fun () ->
             ignore (Vm.exec_program config ~program ~input:(R.input_expr n))));
      Test.make
        ~name:(name ^ ".vm-fast-precompiled")
        (let compiled = Vm.compile (Ast.Call (program, [ R.input_expr n ])) in
         Staged.stage (fun () -> ignore (Vm.run_fast compiled)));
      Test.make ~name:(name ^ ".secd")
        (Staged.stage (fun () ->
             ignore
               (Tailspace_engines.Secd.run_program ~program
                  ~input:(R.input_expr n) ())));
    ]
  in
  tiers "countdown" (entry "countdown") 2000
  @ tiers "fib-naive" (entry "fib-naive") 15
  @ tiers "even-odd" (entry "even-odd") 2000

(* The bignum layer head-to-head: schoolbook vs the shipped Karatsuba
   hybrid on dense operands bracketing the tuned threshold, classic vs
   divide-and-conquer decimal conversion, and the fixnum tag on/off on
   a small-int loop. `schemesim bignumbench` is the tuning tool (it
   locates the crossover and writes BENCH_bignum.json); this group just
   keeps the layer visible in the standing report. *)
let bignum_benches =
  let module B = Tailspace_bignum.Bignum in
  let dense n = B.pred (B.shift_left B.one (30 * n)) in
  let mul_pair name n =
    let a = dense n and b = B.pred (dense n) in
    [
      Test.make
        ~name:(Printf.sprintf "mul%d.school" name)
        (Staged.stage (fun () -> ignore (B.Internal.mul_schoolbook a b)));
      Test.make
        ~name:(Printf.sprintf "mul%d.shipped" name)
        (Staged.stage (fun () -> ignore (B.mul a b)));
    ]
  in
  let big = dense 400 in
  let digits = B.to_string big in
  let sum_loop () =
    let rec go i acc =
      if i = 0 then acc else go (i - 1) (B.add acc (B.of_int i))
    in
    ignore (go 20_000 B.zero)
  in
  mul_pair 48 48 @ mul_pair 192 192
  @ [
      Test.make ~name:"to_string.classic"
        (Staged.stage (fun () -> ignore (B.Internal.to_string_classic big)));
      Test.make ~name:"to_string.dc"
        (Staged.stage (fun () -> ignore (B.to_string big)));
      Test.make ~name:"of_string.classic"
        (Staged.stage (fun () -> ignore (B.Internal.of_string_classic digits)));
      Test.make ~name:"of_string.dc"
        (Staged.stage (fun () -> ignore (B.of_string digits)));
      Test.make ~name:"sumloop.fixnums"
        (Staged.stage (fun () ->
             B.set_fixnums true;
             sum_loop ()));
      Test.make ~name:"sumloop.limbs"
        (Staged.stage (fun () ->
             B.set_fixnums false;
             Fun.protect ~finally:(fun () -> B.set_fixnums true) sum_loop));
    ]

let run_benches () =
  let tests =
    Test.make_grouped ~name:"bench"
      [
        Test.make_grouped ~name:"experiments" experiment_benches;
        Test.make_grouped ~name:"variants" variant_benches;
        Test.make_grouped ~name:"telemetry" telemetry_benches;
        Test.make_grouped ~name:"annot" annot_benches;
        Test.make_grouped ~name:"vm" vm_benches;
        Test.make_grouped ~name:"bignum" bignum_benches;
      ]
  in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let time_ns =
        match Analyze.OLS.estimates ols with Some [ t ] -> t | _ -> nan
      in
      let r2 = Option.value ~default:nan (Analyze.OLS.r_square ols) in
      rows := (name, time_ns, r2) :: !rows)
    results;
  let rows = List.sort compare !rows in
  print_string
    (Tailspace_harness.Table.section "Wall-clock timings (Bechamel, OLS fit)");
  print_string
    (Tailspace_harness.Table.render
       ~header:[ "bench"; "time/run"; "r^2" ]
       (List.map
          (fun (name, ns, r2) ->
            let time =
              if Float.is_nan ns then "-"
              else if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
              else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
              else Printf.sprintf "%.1f us" (ns /. 1e3)
            in
            [ name; time; Printf.sprintf "%.3f" r2 ])
          rows))

(* --jobs N on the command line sets the worker-domain count for the
   experiment tables (default: cores minus one). The tables themselves
   are byte-identical whatever the value; only the timing section below
   is wall-clock sensitive, and it always runs serially. *)
let jobs_from_argv () =
  let rec scan = function
    | "--jobs" :: v :: _ | "-j" :: v :: _ -> int_of_string_opt v
    | _ :: rest -> scan rest
    | [] -> None
  in
  scan (Array.to_list Sys.argv)

let () =
  print_endline
    "Proper Tail Recursion and Space Efficiency (Clinger, PLDI 1998)";
  print_endline
    "reproduction report: every table below regenerates a paper claim;";
  print_endline "see DESIGN.md for the experiment index and EXPERIMENTS.md";
  print_endline "for the paper-vs-measured record.";
  print_string
    (Tailspace_parallel.Pool.with_pool ?jobs:(jobs_from_argv ()) (fun pool ->
         X.render_all ?pool ()));
  print_newline ();
  run_benches ()
