(* The space-model vocabulary type and the cross-model laws.

   - Unit: name/of_name and JSON codecs round-trip, [normalize] is
     canonical and always includes Flat, [names] is the stable cache
     key, [to_bits] scales words to bits.
   - QCheck: on random (corpus entry, variant, input) the measured raw
     peaks obey the pointwise model laws — [U <= S] (deduplication
     only removes words), [Log >= U] (a pointer costs at least one
     bit), and [Log <= word_bits * S] (a pointer never costs more than
     a word).
   - Shims: the deprecated [Machine.run*] entry points are exact
     wrappers over [exec*] with [Run_opts] — same outcome, steps, and
     peaks list. The waiver module below is the only place in the tree
     allowed to call them: everywhere else warning 3 (deprecated) is
     fatal, which is the compile-time audit that no in-tree caller is
     left on the old API. *)

module SM = Tailspace_core.Space_model
module M = Tailspace_core.Machine
module R = Tailspace_harness.Runner
module Corpus = Tailspace_corpus.Corpus

let model_t =
  Alcotest.testable
    (fun ppf m -> Format.pp_print_string ppf (SM.name m))
    SM.equal

(* --- vocabulary ---------------------------------------------------- *)

let test_names_roundtrip () =
  List.iter
    (fun m ->
      Alcotest.(check (option model_t))
        (SM.name m ^ " round-trips") (Some m)
        (SM.of_name (SM.name m)))
    SM.all;
  Alcotest.(check (option model_t)) "unknown name" None (SM.of_name "phlat")

let test_normalize () =
  Alcotest.(check (list model_t)) "empty means flat" [ SM.Flat ]
    (SM.normalize []);
  Alcotest.(check (list model_t))
    "sorted, deduplicated, flat added"
    [ SM.Flat; SM.Linked; SM.Log ]
    (SM.normalize [ SM.Log; SM.Linked; SM.Log ]);
  Alcotest.(check string) "cache key" "flat+linked+log"
    (SM.names [ SM.Log; SM.Linked ]);
  Alcotest.(check string) "flat-only cache key" "flat" (SM.names [])

let test_to_bits () =
  Alcotest.(check int) "flat words scale" (3 * SM.word_bits)
    (SM.to_bits SM.Flat 3);
  Alcotest.(check int) "linked words scale" (5 * SM.word_bits)
    (SM.to_bits SM.Linked 5);
  Alcotest.(check int) "log already in bits" 7 (SM.to_bits SM.Log 7)

let test_json_roundtrip () =
  List.iter
    (fun m ->
      match SM.of_json (SM.to_json m) with
      | Ok m' -> Alcotest.check model_t (SM.name m ^ " json") m m'
      | Error e -> Alcotest.failf "%s: %s" (SM.name m) e)
    SM.all;
  (match SM.list_of_json (SM.list_to_json [ SM.Log ]) with
  | Ok ms ->
      Alcotest.(check (list model_t))
        "list json normalizes" [ SM.Flat; SM.Log ] ms
  | Error e -> Alcotest.fail e);
  match SM.list_of_json (Tailspace_telemetry.Telemetry.Json.Str "log") with
  | Ok _ -> Alcotest.fail "a bare string is not a model list"
  | Error _ -> ()

(* --- the pointwise laws, property-checked -------------------------- *)

let fast_entries =
  Corpus.all
  |> List.filter (fun (e : Corpus.entry) ->
         (not e.Corpus.slow) && e.Corpus.checks <> [])

let prop_model_laws =
  QCheck.Test.make ~count:60
    ~name:"peak laws: U <= S, U <= Log <= word_bits * S"
    QCheck.(
      triple
        (int_bound (List.length fast_entries - 1))
        (int_bound (List.length M.all_variants - 1))
        (int_range 1 8))
    (fun (ei, vi, n) ->
      let e = List.nth fast_entries ei in
      let variant = List.nth M.all_variants vi in
      let opts =
        M.Run_opts.make ~fuel:2_000_000
          ~measure:[ SM.Flat; SM.Linked; SM.Log ]
          ()
      in
      let m =
        R.run_once ~opts
          ~config:(M.Config.make ~variant ())
          ~program:(Corpus.program e) ~n ()
      in
      match (R.peak_linked m, R.peak_log m) with
      | Some u, Some l ->
          let s = R.peak_space m in
          u <= s && u <= l && l <= SM.word_bits * s
      | _ -> false)

(* --- the deprecated shims ------------------------------------------ *)

(* The one sanctioned call site of the old API (see the header note). *)
module Old_api = struct
  [@@@warning "-3"]

  let run_string ?measure_linked t src = M.run_string ?measure_linked t src

  let run_program ?measure_linked t ~program ~input =
    M.run_program ?measure_linked t ~program ~input
end

let check_same what (old_r : M.result) (new_r : M.result) =
  (let outcome = function
     | M.Done { answer; _ } -> "done:" ^ answer
     | M.Stuck m -> "stuck:" ^ m
     | M.Aborted _ -> "aborted"
   in
   Alcotest.(check string)
     (what ^ " outcome") (outcome new_r.M.outcome) (outcome old_r.M.outcome));
  Alcotest.(check int) (what ^ " steps") new_r.M.steps old_r.M.steps;
  Alcotest.(check (list (pair model_t int)))
    (what ^ " peaks") new_r.M.peaks old_r.M.peaks

let countdown_src = "(define (f n) (if (zero? n) 'done (f (- n 1)))) (f 25)"

let test_shims_agree () =
  let fresh () = M.create_with M.Config.default in
  (* measure_linked:true maps to [Flat; Linked] *)
  let old_r = Old_api.run_string ~measure_linked:true (fresh ()) countdown_src in
  let new_r =
    M.exec_string
      ~opts:(M.Run_opts.make ~measure:[ SM.Flat; SM.Linked ] ())
      (fresh ()) countdown_src
  in
  check_same "linked shim" old_r new_r;
  (* the default maps to [Flat] only *)
  let old_d = Old_api.run_string (fresh ()) countdown_src in
  let new_d = M.exec_string (fresh ()) countdown_src in
  check_same "default shim" old_d new_d;
  match new_d.M.peaks with
  | [ (SM.Flat, _) ] -> ()
  | _ -> Alcotest.fail "the default measures the flat model only"

let test_shim_program () =
  let program =
    Tailspace_expander.Expand.program_of_string
      "(define (f n) (if (zero? n) 'done (f (- n 1)))) f"
  in
  let input = Tailspace_ast.Ast.Quote (Tailspace_ast.Ast.C_int (Tailspace_bignum.Bignum.of_int 25)) in
  let old_r =
    Old_api.run_program ~measure_linked:true
      (M.create_with M.Config.default)
      ~program ~input
  in
  let new_r =
    M.exec_program
      ~opts:(M.Run_opts.make ~measure:[ SM.Linked ] ())
      (M.create_with M.Config.default)
      ~program ~input
  in
  check_same "run_program shim" old_r new_r

let () =
  Alcotest.run "space_model"
    [
      ( "vocabulary",
        [
          Alcotest.test_case "names round-trip" `Quick test_names_roundtrip;
          Alcotest.test_case "normalize" `Quick test_normalize;
          Alcotest.test_case "to_bits" `Quick test_to_bits;
          Alcotest.test_case "json codecs" `Quick test_json_roundtrip;
        ] );
      ("laws", [ QCheck_alcotest.to_alcotest prop_model_laws ]);
      ( "shims",
        [
          Alcotest.test_case "run_string = exec_string" `Quick test_shims_agree;
          Alcotest.test_case "run_program = exec_program" `Quick
            test_shim_program;
        ] );
    ]
