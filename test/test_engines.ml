(* The alternative implementations of lib/engines: the tail-recursive
   SECD machine (compiler + runtime) and the denotational evaluator.
   Their answers must agree with the reference machines (the §16
   relation); the SECD machine's space behavior must match its
   proper/classic configuration. *)

module S = Tailspace_engines.Secd
module D = Tailspace_engines.Denotational
module M = Tailspace_core.Machine
module A = Tailspace_ast.Ast
module E = Tailspace_expander.Expand
module B = Tailspace_bignum.Bignum
module Corpus = Tailspace_corpus.Corpus
module Families = Tailspace_corpus.Families

let input n = A.Quote (A.C_int (B.of_int n))

let secd_answer ?(proper = true) src n =
  let program = E.program_of_string src in
  let r = S.run_program ~proper_tail_calls:proper ~program ~input:(input n) () in
  match r.S.outcome with
  | S.Done a -> a
  | S.Error m -> "error: " ^ m
  | S.Aborted _ -> "fuel"

let reference_answer src n =
  let t = M.create_with M.Config.default in
  let program = E.program_of_string src in
  match (M.exec_program t ~program ~input:(input n)).M.outcome with
  | M.Done { answer; _ } -> answer
  | M.Stuck m -> "error: " ^ m
  | M.Aborted _ -> "fuel"

(* --- SECD compiler --- *)

let test_compile_shapes () =
  let code = S.compile (E.expression_of_string "(lambda (x) x)") in
  (match code with
  | [ S.IClosure { nparams = 1; variadic = false; body } ] ->
      Alcotest.(check bool) "body is local+return" true
        (body = [ S.ILocal (0, 0); S.IReturn ])
  | _ -> Alcotest.fail "unexpected compilation");
  let code = S.compile (E.expression_of_string "(f x)") in
  Alcotest.(check bool) "globals resolved by name" true
    (code = [ S.IGlobal "f"; S.IGlobal "x"; S.IApply 1 ])

let test_compile_lexical_addressing () =
  let code =
    S.compile (E.expression_of_string "(lambda (a b) (lambda (c) (g a c)))")
  in
  match code with
  | [ S.IClosure { body = [ S.IClosure { body; _ }; S.IReturn ]; _ } ] ->
      Alcotest.(check bool) "outer var at depth 1, inner at 0" true
        (body
        = [ S.IGlobal "g"; S.ILocal (1, 0); S.ILocal (0, 0); S.ITailApply 2 ])
  | _ -> Alcotest.fail "unexpected compilation"

let test_compile_tail_positions () =
  let rec has_instr p code =
    List.exists
      (fun i ->
        p i
        ||
        match i with
        | S.ISel (a, b) | S.ISelTail (a, b) -> has_instr p a || has_instr p b
        | S.IClosure { body; _ } -> has_instr p body
        | _ -> false)
      code
  in
  let code =
    S.compile (E.expression_of_string "(lambda (n) (if (zero? n) 0 (f n)))")
  in
  Alcotest.(check bool) "tail call compiled as ITailApply" true
    (has_instr (function S.ITailApply _ -> true | _ -> false) code);
  let classic =
    S.compile ~proper_tail_calls:false
      (E.expression_of_string "(lambda (n) (if (zero? n) 0 (f n)))")
  in
  Alcotest.(check bool) "classic mode has no ITailApply" false
    (has_instr (function S.ITailApply _ -> true | _ -> false) classic);
  (* non-tail calls stay IApply even in proper mode *)
  let code2 = S.compile (E.expression_of_string "(lambda (n) (+ 1 (f n)))") in
  Alcotest.(check bool) "operand call is IApply" true
    (has_instr (function S.IApply 1 -> true | _ -> false) code2)

(* --- SECD evaluation --- *)

let check_secd name src n expected =
  Alcotest.(check string) name expected (secd_answer src n)

let test_secd_answers () =
  check_secd "countdown" Families.separator_gc_tail 50 "0";
  check_secd "cps loop" Families.cps_loop 100 "5050";
  check_secd "fact"
    "(define (fact n) (if (zero? n) 1 (* n (fact (- n 1))))) fact" 20
    "2432902008176640000";
  check_secd "fib"
    "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))) fib" 15
    "610";
  check_secd "vectors"
    "(define (f n) (let ((v (make-vector n 0))) (vector-set! v 2 'x) \
     (vector-ref v 2))) f"
    5 "x";
  check_secd "lists" "(define (f n) (list n (cons n '()) (zero? n))) f" 3
    "(3 (3) #f)";
  check_secd "mutation"
    "(define (f n) (let ((p (cons 1 2))) (set-cdr! p n) p)) f" 9 "(1 . 9)";
  check_secd "find-leftmost" Families.find_leftmost_right_traverse 20
    "not-found";
  check_secd "variadic"
    "(define (f . xs) xs) (lambda (n) (f n n n))" 2 "(2 2 2)";
  check_secd "letrec via define"
    "(define (e? n) (if (zero? n) #t (o? (- n 1))))
     (define (o? n) (if (zero? n) #f (e? (- n 1))))
     e?"
    11 "#f"

let test_secd_matches_reference () =
  List.iter
    (fun (src, n) ->
      Alcotest.(check string)
        (Printf.sprintf "agrees at n=%d" n)
        (reference_answer src n) (secd_answer src n))
    [
      (Families.separator_stack_gc, 10);
      (Families.separator_gc_tail, 25);
      (Families.cps_loop, 40);
      ("(define (h n) (hanoi n)) (define (hanoi n) (if (zero? n) 0 (+ (hanoi (- n 1)) (+ 1 (hanoi (- n 1)))))) hanoi", 8);
      ("(lambda (n) ((lambda (x y) (- x y)) (* n n) n))", 7);
    ]

let test_secd_errors () =
  let got = secd_answer "(lambda (n) (car n))" 5 in
  Alcotest.(check bool) "car of number errors" true
    (String.length got > 6 && String.sub got 0 6 = "error:");
  let got = secd_answer "(lambda (n) (undefined-global n))" 1 in
  Alcotest.(check bool) "unbound global" true
    (String.length got > 6 && String.sub got 0 6 = "error:");
  let got = secd_answer "(lambda (n) ((lambda (a b) a) n))" 1 in
  Alcotest.(check bool) "arity" true
    (String.length got > 6 && String.sub got 0 6 = "error:")

let secd_peak ?(proper = true) src n =
  let program = E.program_of_string src in
  let r = S.run_program ~proper_tail_calls:proper ~program ~input:(input n) () in
  match r.S.outcome with
  | S.Done _ -> r.S.peak_words
  | _ -> Alcotest.fail "secd run failed"

let test_secd_tail_recursion_space () =
  (* proper: bounded (up to the log-size counter); classic: grows *)
  let p100 = secd_peak Families.separator_gc_tail 100 in
  let p1600 = secd_peak Families.separator_gc_tail 1600 in
  Alcotest.(check bool)
    (Printf.sprintf "proper stays flat (%d vs %d)" p100 p1600)
    true
    (p1600 < p100 + 32);
  let c100 = secd_peak ~proper:false Families.separator_gc_tail 100 in
  let c1600 = secd_peak ~proper:false Families.separator_gc_tail 1600 in
  Alcotest.(check bool)
    (Printf.sprintf "classic grows ~16x (%d vs %d)" c100 c1600)
    true
    (c1600 > 8 * c100)

let test_secd_join_points () =
  (* non-tail conditionals must restore control correctly *)
  check_secd "nested non-tail ifs"
    "(lambda (n) (+ (if (zero? n) 10 20) (if (zero? n) 1 2)))" 0 "11";
  check_secd "if in operand position"
    "(lambda (n) (* (if (< n 5) 2 3) (+ n 1)))" 7 "24"

(* --- denotational evaluator --- *)

let deno_answer src =
  match D.eval (E.program_of_string src) with
  | D.Done a -> a
  | D.Error m -> "error: " ^ m
  | D.Aborted _ -> "fuel"

let test_denotational_basics () =
  Alcotest.(check string) "arith" "7" (deno_answer "(+ 1 (* 2 3))");
  Alcotest.(check string) "closures" "9"
    (deno_answer "(define (adder n) (lambda (x) (+ x n))) ((adder 4) 5)");
  Alcotest.(check string) "callcc" "42"
    (deno_answer "(+ 1 (call/cc (lambda (k) (k 41) 99)))");
  Alcotest.(check string) "apply" "10" (deno_answer "(apply + 1 2 '(3 4))");
  Alcotest.(check string) "state" "3"
    (deno_answer
       "(define n 0) (define (bump) (set! n (+ n 1))) (bump) (bump) (bump) n");
  Alcotest.(check string) "deep tail loop survives" "done"
    (deno_answer "(define (loop n) (if (zero? n) 'done (loop (- n 1)))) (loop 300000)")

let test_denotational_matches_corpus () =
  (* §16: every answer computed by the denotational semantics is
     computed by the reference implementations *)
  Corpus.all
  |> List.filter (fun (e : Corpus.entry) -> not e.Corpus.slow)
  |> List.iter (fun (e : Corpus.entry) ->
         match e.Corpus.checks with
         | (n, expected) :: _ -> (
             match
               D.eval_program ~program:(Corpus.program e) ~input:(input n) ()
             with
             | D.Done a ->
                 Alcotest.(check string)
                   (Printf.sprintf "%s(%d)" e.Corpus.name n)
                   expected a
             | D.Error m -> Alcotest.failf "%s: %s" e.Corpus.name m
             | D.Aborted r ->
                 Alcotest.failf "%s: aborted: %s" e.Corpus.name
                   (Tailspace_resilience.Resilience.abort_reason_message r))
         | [] -> ())

let gen_expr =
  (* closed, terminating programs; mirror of test_equivalence's shape *)
  let open QCheck.Gen in
  let const = map (fun n -> A.Quote (A.C_int (B.of_int n))) (int_range (-20) 20) in
  let var env =
    if env = [] then const
    else map (fun i -> A.Var (List.nth env (i mod List.length env))) (int_range 0 50)
  in
  let fresh = map (fun i -> Printf.sprintf "w%d" i) (int_range 0 500) in
  let rec go env depth =
    if depth = 0 then oneof [ const; var env ]
    else
      let sub = go env (depth - 1) in
      frequency
        [
          (2, const);
          (2, var env);
          ( 3,
            map3
              (fun op a b -> A.Call (A.Var op, [ a; b ]))
              (oneofl [ "+"; "-"; "*" ])
              sub sub );
          ( 2,
            map3 (fun a b c -> A.If (A.Call (A.Var "zero?", [ a ]), b, c)) sub sub sub );
          ( 2,
            fresh >>= fun x ->
            map2
              (fun init body ->
                A.Call (A.Lambda { params = [ x ]; rest = None; body }, [ init ]))
              sub
              (go (x :: env) (depth - 1)) );
          (1, map2 (fun a b -> A.Call (A.Var "cons", [ a; b ])) sub sub);
        ]
  in
  go [] 4

let arb = QCheck.make ~print:A.to_string gen_expr

let prop_three_implementations_agree =
  QCheck.Test.make ~name:"machine = SECD = denotational on random programs"
    ~count:150 arb (fun e ->
      let m = M.create_with M.Config.default in
      let machine =
        match (M.exec m e).M.outcome with
        | M.Done { answer; _ } -> answer
        | _ -> "fail"
      in
      let secd =
        match (S.run e).S.outcome with S.Done a -> a | _ -> "fail"
      in
      let deno =
        match D.eval e with
        | D.Done a -> a
        | D.Error _ | D.Aborted _ -> "fail"
      in
      String.equal machine secd && String.equal machine deno)

let () =
  Alcotest.run "engines"
    [
      ( "secd-compiler",
        [
          Alcotest.test_case "shapes" `Quick test_compile_shapes;
          Alcotest.test_case "lexical addressing" `Quick test_compile_lexical_addressing;
          Alcotest.test_case "tail positions" `Quick test_compile_tail_positions;
        ] );
      ( "secd-runtime",
        [
          Alcotest.test_case "answers" `Quick test_secd_answers;
          Alcotest.test_case "matches reference" `Quick test_secd_matches_reference;
          Alcotest.test_case "errors" `Quick test_secd_errors;
          Alcotest.test_case "tail recursion space" `Quick test_secd_tail_recursion_space;
          Alcotest.test_case "join points" `Quick test_secd_join_points;
        ] );
      ( "denotational",
        [
          Alcotest.test_case "basics" `Quick test_denotational_basics;
          Alcotest.test_case "corpus agreement" `Slow test_denotational_matches_corpus;
          QCheck_alcotest.to_alcotest prop_three_implementations_agree;
        ] );
    ]
