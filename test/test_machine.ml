(* The reference machines: answers, variant-specific rules, stuck
   states, call/cc, apply, nondeterminism policies, output, fuel. *)

module M = Tailspace_core.Machine
module T = Tailspace_core.Types
module E = Tailspace_expander.Expand
module Res = Tailspace_resilience.Resilience

let answer ?(variant = M.Tail) ?perm ?stack_policy ?fuel src =
  let t = M.create_with (M.Config.make ~variant ?perm ?stack_policy ()) in
  let opts =
    match fuel with
    | Some fuel -> M.Run_opts.make ~fuel ()
    | None -> M.Run_opts.default
  in
  match (M.exec_string ~opts t src).M.outcome with
  | M.Done { answer; _ } -> answer
  | M.Stuck m -> "stuck: " ^ m
  | M.Aborted { reason; _ } ->
      "aborted: " ^ Tailspace_resilience.Resilience.abort_reason_message reason

let check ?variant ?perm ?stack_policy name src expected =
  Alcotest.(check string) name expected (answer ?variant ?perm ?stack_policy src)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let check_stuck ?variant ?stack_policy name src fragment =
  let got = answer ?variant ?stack_policy src in
  if not (contains got "stuck:" && contains got fragment) then
    Alcotest.failf "%s: expected stuck containing %S, got %S" name fragment got

let test_basics () =
  check "arith" "(+ 1 (* 2 3))" "7";
  check "nested" "(- 10 (quotient 7 2))" "7";
  check "booleans" "(if #f 'a 'b)" "b";
  check "only #f is false" "(if 0 'a 'b)" "a";
  check "empty list truthy" "(if '() 'a 'b)" "a";
  check "string answer" "\"hi\"" "\"hi\"";
  check "char answer" "#\\x" "#\\x";
  check "unspecified set!" "(define x 1) (set! x 2) x" "2"

let test_closures () =
  check "identity" "((lambda (x) x) 5)" "5";
  check "higher order" "((lambda (f) (f (f 3))) (lambda (x) (* x x)))" "81";
  check "closure captures" "(define (adder n) (lambda (x) (+ x n))) ((adder 4) 5)" "9";
  check "counter via set!"
    "(define (make) (let ((n 0)) (lambda () (set! n (+ n 1)) n)))
     (define c (make)) (c) (c) (c)"
    "3";
  check "procedures print opaquely" "(lambda (x) x)" "#<PROC>"

let test_recursion () =
  check "fact" "(define (fact n) (if (zero? n) 1 (* n (fact (- n 1))))) (fact 12)" "479001600";
  check "mutual"
    "(define (e? n) (if (zero? n) #t (o? (- n 1))))
     (define (o? n) (if (zero? n) #f (e? (- n 1))))
     (e? 17)"
    "#f";
  check "deep tail loop" "(define (loop n) (if (zero? n) 'ok (loop (- n 1)))) (loop 50000)" "ok"

let test_data () =
  check "list building" "(list 1 2 3)" "(1 2 3)";
  check "improper" "(cons 1 2)" "(1 . 2)";
  check "vector" "(vector 1 'a #t)" "#(1 a #t)";
  check "mutation" "(define p (cons 1 2)) (set-car! p 'x) p" "(x . 2)";
  check "vector mutation" "(define v (make-vector 2 0)) (vector-set! v 1 9) v" "#(0 9)";
  check "nested data" "(list (vector 1) (cons 'a '()))" "(#(1) (a))"

let test_cyclic_answer_is_finite () =
  (* Definition 11 allows infinite answers; rendering is fuel-bounded *)
  let a = answer "(define p (cons 1 2)) (set-cdr! p p) p" in
  Alcotest.(check bool) "bounded output" true (String.length a < 100_000);
  Alcotest.(check bool) "marked truncated" true
    (String.length a > 3 && String.sub a (String.length a - 3) 3 = "...")

let test_letrec_semantics () =
  check "letrec ok" "(letrec ((f (lambda (n) (if (zero? n) 'done (f (- n 1)))))) (f 3))" "done";
  check_stuck "premature access" "(letrec ((x (+ x 1))) x)" "before initialization";
  check "define sees later define"
    "(define (f) (g)) (define (g) 'late) (f)" "late"

let test_stuck_states () =
  check_stuck "unbound" "undefined-variable" "unbound variable";
  check_stuck "call number" "(5 1)" "non-procedure";
  check_stuck "arity over" "((lambda (x) x) 1 2)" "arity";
  check_stuck "arity under" "((lambda (x y) x) 1)" "arity";
  check_stuck "car of atom" "(car 5)" "expected pair";
  check_stuck "vector oob" "(vector-ref (vector 1) 3)" "out of range";
  check_stuck "div zero" "(quotient 1 0)" "division by zero";
  check_stuck "set! unbound" "(set! nowhere 1)" "unbound";
  check_stuck "error prim" "(error \"boom\")" "boom";
  check_stuck "apply improper" "(apply + 1)" "proper list"

let test_variadic () =
  check "rest all" "((lambda args args) 1 2 3)" "(1 2 3)";
  check "rest empty" "((lambda (a . r) r) 1)" "()";
  check "rest some" "((lambda (a . r) (cons a r)) 1 2 3)" "(1 2 3)";
  check_stuck "rest under" "((lambda (a b . r) r) 1)" "arity"

let test_apply () =
  check "apply basic" "(apply + '(1 2 3))" "6";
  check "apply spread" "(apply + 1 2 '(3 4))" "10";
  check "apply closure" "(apply (lambda (a b) (- a b)) '(10 4))" "6";
  check "apply apply" "(apply apply (list + '(1 2)))" "3"

let test_call_cc () =
  check "no escape" "(call/cc (lambda (k) 42))" "42";
  check "escape" "(+ 1 (call/cc (lambda (k) (k 10) 999)))" "11";
  check "escape skips work" "(call/cc (lambda (k) (+ 1 (k 'jumped))))" "jumped";
  check "long name" "(call-with-current-continuation (lambda (k) (k 1)))" "1";
  check "stored continuation"
    "(define saved #f)
     (define result (+ 1 (call/cc (lambda (k) (set! saved k) 1))))
     (if saved
         (let ((k saved))
           (set! saved #f)
           (k 41))
         result)"
    "42";
  check_stuck "continuation arity" "(call/cc (lambda (k) (k 1 2)))" "1 value"

let test_output () =
  let t = M.create_with M.Config.default in
  let r =
    M.exec_string t "(display 'hello) (newline) (display (list 1 2)) 'done"
  in
  (match r.M.outcome with
  | M.Done { answer; _ } -> Alcotest.(check string) "answer" "done" answer
  | _ -> Alcotest.fail "expected Done");
  Alcotest.(check string) "output" "hello\n(1 2)" r.M.output

let test_display_vs_write () =
  let t = M.create_with M.Config.default in
  let r = M.exec_string t "(display \"a\\nb\") (write \"a\\nb\") 0" in
  Alcotest.(check string) "display raw, write escaped" "a\nb\"a\\nb\"" r.M.output

let test_fuel () =
  let t = M.create_with M.Config.default in
  let r =
    M.exec_string
      ~opts:(M.Run_opts.make ~fuel:100 ())
      t "(define (spin) (spin)) (spin)"
  in
  (match r.M.outcome with
  | M.Aborted { reason = Res.Out_of_fuel { limit }; steps; _ } ->
      Alcotest.(check int) "abort carries the limit" 100 limit;
      Alcotest.(check int) "stopped at the limit" 100 steps
  | _ -> Alcotest.fail "expected Aborted (Out_of_fuel)");
  Alcotest.(check int) "result steps" 100 r.M.steps

(* The [`Approximate] policy only collects once tracked space overshoots
   the running peak by 12.5% plus 64 words, so its reported peak may
   undershoot the [`Exact] sup by at most that much — and never
   overshoots it (collections cannot raise live space). *)
let test_approximate_gc_bound () =
  let src =
    "(define (build n) (if (zero? n) '() (cons n (build (- n 1))))) (build 200)"
  in
  let peak policy =
    let t = M.create_with M.Config.default in
    let r =
      M.exec_string ~opts:(M.Run_opts.make ~gc_policy:policy ()) t src
    in
    match r.M.outcome with
    | M.Done _ -> M.peak_space r
    | _ -> Alcotest.fail "build run failed"
  in
  let exact = peak `Exact and approx = peak `Approximate in
  Alcotest.(check bool)
    (Printf.sprintf "approx %d never above exact %d" approx exact)
    true (approx <= exact);
  Alcotest.(check bool)
    (Printf.sprintf "approx %d within 12.5%%+64 of exact %d" approx exact)
    true
    (approx >= exact - (exact / 8) - 64)

let test_perm_policies () =
  (* order-insensitive program: same answer under every policy *)
  let src = "(define (f a b c) (- a (quotient b c))) (f 10 9 3)" in
  check "ltr" src "7";
  check ~perm:M.Right_to_left "rtl" src "7";
  check ~perm:(M.Seeded 7) "seeded" src "7";
  (* order-sensitive program exposes the chosen permutation *)
  let effects =
    "(define order '())
     (define (note! x) (set! order (cons x order)) x)
     (+ (note! 1) (note! 2))
     (reverse order)"
  in
  check "ltr order" effects "(1 2)";
  check ~perm:M.Right_to_left "rtl order" effects "(2 1)"

let test_stack_policies () =
  (* A closure over a stack-allocated variable escapes: Algol deletion
     would dangle (stuck); Safe_deletion keeps the binding. *)
  let escaping = "(define (make n) (lambda () n)) ((make 5))" in
  check ~variant:M.Stack ~stack_policy:M.Safe_deletion "safe deletion" escaping "5";
  check_stuck ~variant:M.Stack ~stack_policy:M.Algol "algol dangles" escaping
    "dangling";
  (* Algol-like code works under the Algol policy when no closure
     outlives its frame. Note that even (define (g x) ...) makes the
     resulting closure capture its own letrec binding, so the Algol
     policy rejects programs whose *value* is a defined procedure —
     the deletion strategy really is that restrictive (§5). *)
  check ~variant:M.Stack ~stack_policy:M.Algol "algol ok on non-escaping"
    "((lambda (x) (* 2 x)) 3)" "6";
  check_stuck ~variant:M.Stack ~stack_policy:M.Algol
    "algol rejects escaping define" "(define (g x) (* 2 x)) g" "dangling"

let test_variant_answers_each () =
  List.iter
    (fun v ->
      check ~variant:v
        (M.variant_name v ^ " computes fact")
        "(define (fact n) (if (zero? n) 1 (* n (fact (- n 1))))) (fact 6)" "720")
    M.all_variants

let test_eval_and_define_global () =
  let t = M.create_with M.Config.default in
  (match M.define_global t "double" (E.expression_of_string "(lambda (x) (* 2 x))") with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  (match M.eval_global t (E.expression_of_string "(double 21)") with
  | Ok (T.Int z, _) ->
      Alcotest.(check string) "global usable" "42" (Tailspace_bignum.Bignum.to_string z)
  | Ok _ -> Alcotest.fail "expected number"
  | Error m -> Alcotest.fail m);
  (* recursive global *)
  (match
     M.define_global t "count"
       (E.expression_of_string "(lambda (n) (if (zero? n) 'zero (count (- n 1))))")
   with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  match M.eval_global t (E.expression_of_string "(count 5)") with
  | Ok (T.Sym s, _) -> Alcotest.(check string) "recursion" "zero" s
  | _ -> Alcotest.fail "expected symbol"

let test_run_program_convention () =
  let t = M.create_with M.Config.default in
  let program = E.program_of_string "(define (f n) (* n n)) f" in
  let input = Tailspace_ast.Ast.(Quote (C_int (Tailspace_bignum.Bignum.of_int 9))) in
  match (M.exec_program t ~program ~input).M.outcome with
  | M.Done { answer; _ } -> Alcotest.(check string) "squares" "81" answer
  | _ -> Alcotest.fail "expected Done"

let test_promises () =
  check "delay is lazy"
    "(define p (delay (error \"should not run\"))) 0" "0";
  check "force computes" "(force (delay (* 6 7)))" "42";
  check "force memoizes"
    "(define count 0)
     (define p (delay (begin (set! count (+ count 1)) count)))
     (force p) (force p) (force p)"
    "1";
  check "promises are values"
    "(define p (delay 10)) (list (force p) (force p))" "(10 10)"

(* The deprecated create/run_string + on_step/trace surface is kept as
   a shim over Config/Run_opts and telemetry until its removal (noted in
   DESIGN.md); this test exercises the shim deliberately. *)
module Legacy_shims = struct
  [@@@alert "-deprecated"]
  [@@@warning "-3"]

  let test_hooks () =
    let t = M.create () in
    let steps_seen = ref 0 in
    let max_space = ref 0 in
    let traced = ref [] in
    let r =
      M.run_string
        ~on_step:(fun ~steps:_ ~space ->
          incr steps_seen;
          max_space := Stdlib.max !max_space space)
        ~trace:(fun _ line -> traced := line :: !traced)
        t "(+ 1 2)"
    in
    Alcotest.(check bool) "hook per step" true (!steps_seen >= r.M.steps);
    Alcotest.(check bool)
      "profile sees the peak" true
      (!max_space >= M.peak_space r);
    Alcotest.(check bool)
      "trace nonempty" true
      (List.length !traced >= r.M.steps);
    Alcotest.(check bool) "trace mentions control" true
      (List.exists
         (fun l -> String.length l > 2 && (l.[0] = 'E' || l.[0] = 'V'))
         !traced)
end

let test_random_deterministic () =
  let one () = answer "(list (random 10) (random 10) (random 10))" in
  Alcotest.(check string) "same seed, same stream" (one ()) (one ())

let test_prelude_procedures () =
  check "length" "(length '(a b c))" "3";
  check "append" "(append '(1 2) '(3) '(4 5))" "(1 2 3 4 5)";
  check "reverse" "(reverse '(1 2 3))" "(3 2 1)";
  check "map" "(map (lambda (x) (* x x)) '(1 2 3))" "(1 4 9)";
  check "filter" "(filter odd? '(1 2 3 4 5))" "(1 3 5)";
  check "fold-left" "(fold-left - 0 '(1 2 3))" "-6";
  check "fold-right" "(fold-right cons '() '(1 2))" "(1 2)";
  check "assq" "(assq 'b '((a 1) (b 2)))" "(b 2)";
  check "member" "(member '(1) '((0) (1) (2)))" "((1) (2))";
  check "memv" "(memv 2 '(1 2 3))" "(2 3)";
  check "list-tail" "(list-tail '(a b c d) 2)" "(c d)";
  check "list->vector" "(list->vector '(1 2))" "#(1 2)";
  check "vector->list" "(vector->list (vector 'a 'b))" "(a b)";
  check "gcd" "(gcd 12 18 30)" "6";
  check "list?" "(list? '(1 2))" "#t";
  check "list? improper" "(list? (cons 1 2))" "#f";
  check "for-each"
    "(define acc 0) (for-each (lambda (x) (set! acc (+ acc x))) '(1 2 3)) acc" "6"

let test_equivalence_predicates () =
  check "eqv? numbers" "(eqv? 100000000000000000000 100000000000000000000)" "#t";
  check "eqv? symbols" "(eqv? 'a 'a)" "#t";
  check "eqv? distinct pairs" "(eqv? (cons 1 2) (cons 1 2))" "#f";
  check "eqv? same pair" "(let ((p (cons 1 2))) (eqv? p p))" "#t";
  check "equal? deep" "(equal? (list 1 (vector 2 3)) (list 1 (vector 2 3)))" "#t";
  check "equal? differs" "(equal? '(1 2) '(1 3))" "#f";
  check "eq? procedures" "(let ((f (lambda (x) x))) (eq? f f))" "#t";
  check "eq? distinct closures" "(eq? (lambda (x) x) (lambda (x) x))" "#f"

let () =
  Alcotest.run "machine"
    [
      ( "evaluation",
        [
          Alcotest.test_case "basics" `Quick test_basics;
          Alcotest.test_case "closures" `Quick test_closures;
          Alcotest.test_case "recursion" `Quick test_recursion;
          Alcotest.test_case "data" `Quick test_data;
          Alcotest.test_case "cyclic answers finite" `Quick test_cyclic_answer_is_finite;
          Alcotest.test_case "letrec" `Quick test_letrec_semantics;
          Alcotest.test_case "variadic" `Quick test_variadic;
          Alcotest.test_case "apply" `Quick test_apply;
          Alcotest.test_case "call/cc" `Quick test_call_cc;
          Alcotest.test_case "prelude" `Quick test_prelude_procedures;
          Alcotest.test_case "eqv/equal" `Quick test_equivalence_predicates;
        ] );
      ( "machinery",
        [
          Alcotest.test_case "stuck states" `Quick test_stuck_states;
          Alcotest.test_case "output" `Quick test_output;
          Alcotest.test_case "display vs write" `Quick test_display_vs_write;
          Alcotest.test_case "fuel" `Quick test_fuel;
          Alcotest.test_case "approximate gc bound" `Quick
            test_approximate_gc_bound;
          Alcotest.test_case "perm policies" `Quick test_perm_policies;
          Alcotest.test_case "stack policies" `Quick test_stack_policies;
          Alcotest.test_case "all variants run" `Quick test_variant_answers_each;
          Alcotest.test_case "globals" `Quick test_eval_and_define_global;
          Alcotest.test_case "run_program" `Quick test_run_program_convention;
          Alcotest.test_case "random deterministic" `Quick test_random_deterministic;
          Alcotest.test_case "promises" `Quick test_promises;
          Alcotest.test_case "profiling hooks (legacy shims)" `Quick
            Legacy_shims.test_hooks;
        ] );
    ]
