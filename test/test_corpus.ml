(* Corpus integrity: every program parses, expands, and produces its
   expected answers; the parameterized families behave as documented. *)

module C = Tailspace_corpus.Corpus
module F = Tailspace_corpus.Families
module M = Tailspace_core.Machine
module E = Tailspace_expander.Expand
module R = Tailspace_harness.Runner

let test_all_parse_and_expand () =
  List.iter
    (fun (e : C.entry) ->
      match C.program e with
      | _ -> ()
      | exception exn ->
          Alcotest.failf "%s failed to expand: %s" e.C.name (Printexc.to_string exn))
    C.all

let test_names_unique () =
  let names = C.names () in
  let sorted = List.sort_uniq compare names in
  Alcotest.(check int) "no duplicates" (List.length names) (List.length sorted)

let test_find () =
  Alcotest.(check bool) "find hit" true (Option.is_some (C.find "countdown"));
  Alcotest.(check bool) "find miss" true (Option.is_none (C.find "nonesuch"))

let run_check variant (e : C.entry) (n, expected) =
  let m = R.run_once ~config:(M.Config.make ~variant ()) ~program:(C.program e) ~n () in
  match m.R.status with
  | R.Answer a ->
      Alcotest.(check string)
        (Printf.sprintf "%s(%d) under %s" e.C.name n (M.variant_name variant))
        expected a
  | R.Stuck msg -> Alcotest.failf "%s(%d): stuck: %s" e.C.name n msg
  | R.Aborted reason ->
      Alcotest.failf "%s(%d): aborted: %s" e.C.name n
        (Tailspace_resilience.Resilience.abort_reason_message reason)

let test_checks_tail () =
  List.iter (fun (e : C.entry) -> List.iter (run_check M.Tail e) e.C.checks) C.all

let test_checks_sfs_fast_entries () =
  (* spot-check the most aggressive variant on the fast corpus *)
  C.all
  |> List.filter (fun (e : C.entry) -> not e.C.slow)
  |> List.iter (fun (e : C.entry) ->
         match e.C.checks with
         | check :: _ -> run_check M.Sfs e check
         | [] -> ())

let test_every_entry_is_unary_procedure () =
  (* §12's convention: the program evaluates to a procedure of one
     argument — checked by actually applying it *)
  List.iter
    (fun (e : C.entry) ->
      match e.C.checks with
      | (n, _) :: _ ->
          let m = R.run_once ~config:(M.Config.make ~variant:M.Tail ()) ~program:(C.program e) ~n () in
          (match m.R.status with
          | R.Answer _ -> ()
          | R.Stuck msg -> Alcotest.failf "%s not runnable: %s" e.C.name msg
          | R.Aborted _ -> Alcotest.failf "%s starved" e.C.name)
      | [] -> Alcotest.failf "%s has no checks" e.C.name)
    C.all

(* --- families --- *)

let test_separators_answer () =
  (* the first two separators count down to 0; the last two return the
     top-level n through the trailing thunk *)
  let expected = function
    | "stack/gc" | "gc/tail" -> "0"
    | "tail/evlis" | "evlis/sfs" -> "6"
    | other -> Alcotest.failf "unknown separator %s" other
  in
  List.iter
    (fun (name, src) ->
      let program = E.program_of_string src in
      List.iter
        (fun variant ->
          let m = R.run_once ~config:(M.Config.make ~variant ()) ~program ~n:6 () in
          match m.R.status with
          | R.Answer a ->
              Alcotest.(check string)
                (name ^ " " ^ M.variant_name variant)
                (expected name) a
          | R.Stuck msg -> Alcotest.failf "%s stuck: %s" name msg
          | R.Aborted _ -> Alcotest.failf "%s starved" name)
        M.all_variants)
    F.separators

let test_pk_program_generates () =
  List.iter
    (fun k ->
      let program = E.program_of_string (F.pk_program k) in
      let m = R.run_once ~config:(M.Config.make ~variant:M.Tail ()) ~program ~n:(Stdlib.max 1 k) () in
      match m.R.status with
      | R.Answer a ->
          (* the chosen thunk returns (list i x0 ... xk) with i = 1..n *)
          Alcotest.(check bool)
            (Printf.sprintf "P_%d returns a list" k)
            true
            (String.length a > 0 && a.[0] = '(')
      | R.Stuck msg -> Alcotest.failf "P_%d stuck: %s" k msg
      | R.Aborted _ -> Alcotest.failf "P_%d starved" k)
    [ 1; 3; 8 ]

let test_pk_size_grows () =
  let size k = Tailspace_ast.Ast.size (E.program_of_string (F.pk_program k)) in
  Alcotest.(check bool) "|P_k| grows with k" true (size 10 > size 2)

let test_find_leftmost_family_answers () =
  let run src n =
    let m =
      R.run_once ~config:(M.Config.make ~variant:M.Tail ())
        ~program:(E.program_of_string src) ~n ()
    in
    match m.R.status with
    | R.Answer a -> a
    | R.Stuck msg -> "stuck: " ^ msg
    | R.Aborted _ -> "fuel"
  in
  Alcotest.(check string) "right traverse fails overall" "not-found"
    (run F.find_leftmost_right_traverse 10);
  Alcotest.(check string) "left traverse fails overall" "not-found"
    (run F.find_leftmost_left_traverse 10);
  Alcotest.(check string) "right build" "built" (run F.find_leftmost_right_build 10);
  Alcotest.(check string) "left build" "built" (run F.find_leftmost_left_build 10)

let test_cps_loop_answer () =
  let program = E.program_of_string F.cps_loop in
  let m = R.run_once ~config:(M.Config.make ~variant:M.Tail ()) ~program ~n:100 () in
  match m.R.status with
  | R.Answer a -> Alcotest.(check string) "gauss sum" "5050" a
  | _ -> Alcotest.fail "cps loop failed"

let () =
  Alcotest.run "corpus"
    [
      ( "entries",
        [
          Alcotest.test_case "parse and expand" `Quick test_all_parse_and_expand;
          Alcotest.test_case "names unique" `Quick test_names_unique;
          Alcotest.test_case "find" `Quick test_find;
          Alcotest.test_case "unary convention" `Quick test_every_entry_is_unary_procedure;
          Alcotest.test_case "checks under I_tail" `Slow test_checks_tail;
          Alcotest.test_case "checks under I_sfs" `Quick test_checks_sfs_fast_entries;
        ] );
      ( "families",
        [
          Alcotest.test_case "separators behave everywhere" `Quick
            test_separators_answer;
          Alcotest.test_case "P_k generates and runs" `Quick test_pk_program_generates;
          Alcotest.test_case "P_k size grows" `Quick test_pk_size_grows;
          Alcotest.test_case "find-leftmost family" `Quick
            test_find_leftmost_family_answers;
          Alcotest.test_case "cps loop" `Quick test_cps_loop_answer;
        ] );
    ]
