(* The resource governor, fault injection, and the sweep supervisor:
   every way a run can end must be a structured outcome — never an
   escaped exception, never an unbounded loop — and adversarial GC
   schedules must change neither answers nor [`Exact] peaks. *)

module M = Tailspace_core.Machine
module E = Tailspace_expander.Expand
module R = Tailspace_harness.Runner
module Table = Tailspace_harness.Table
module Oracle = Tailspace_harness.Oracle
module Corpus = Tailspace_corpus.Corpus
module Res = Tailspace_resilience.Resilience

let spin = "(define (spin n) (spin n)) spin"

let build =
  "(define (build n) (if (zero? n) '() (cons n (build (- n 1))))) build"

let countdown = "(define (count n) (if (zero? n) 0 (count (- n 1)))) count"

let run ?budget ?fault ?(src = spin) ?(n = 1) ?(variant = M.Tail) () =
  let t = M.create_with (M.Config.make ~variant ()) in
  M.exec_program
    ~opts:(M.Run_opts.make ?budget ?fault ())
    t
    ~program:(E.program_of_string src)
    ~input:(R.input_expr n)

let abort_reason (r : M.result) =
  match r.M.outcome with
  | M.Aborted { reason; _ } -> Some reason
  | _ -> None

(* --- each budget limit produces its own abort reason --- *)

let test_fuel_budget () =
  let budget = Res.Budget.make ~fuel:50 () in
  match abort_reason (run ~budget ()) with
  | Some (Res.Out_of_fuel { limit }) ->
      Alcotest.(check int) "limit" 50 limit
  | _ -> Alcotest.fail "expected Out_of_fuel"

let test_space_budget () =
  let budget = Res.Budget.make ~space_words:4000 () in
  match abort_reason (run ~budget ~src:build ~n:100_000 ()) with
  | Some (Res.Space_exceeded { budget = b; live }) ->
      Alcotest.(check int) "budget echoed" 4000 b;
      Alcotest.(check bool) "live above budget" true (live > b)
  | _ -> Alcotest.fail "expected Space_exceeded"

let test_deadline () =
  (* a zero timeout must abort deterministically on the first check *)
  let budget = Res.Budget.make ~timeout_s:0. () in
  match abort_reason (run ~budget ()) with
  | Some (Res.Deadline_exceeded _) -> ()
  | _ -> Alcotest.fail "expected Deadline_exceeded"

let test_output_cap () =
  let budget = Res.Budget.make ~output_bytes:3 () in
  let src = "(define (f n) (begin (display \"hello world\") (f n))) f" in
  match abort_reason (run ~budget ~src ()) with
  | Some (Res.Output_exceeded { cap; written }) ->
      Alcotest.(check int) "cap" 3 cap;
      Alcotest.(check bool) "wrote past the cap" true (written > cap)
  | _ -> Alcotest.fail "expected Output_exceeded"

let test_fail_alloc () =
  let fault = Res.Fault.make ~fail_alloc:5 () in
  match abort_reason (run ~fault ~src:build ~n:1000 ()) with
  | Some (Res.Injected_fault _) -> ()
  | _ -> Alcotest.fail "expected Injected_fault"

let test_fuel_drop () =
  let fault = Res.Fault.make ~fuel_drop:(10, 5) () in
  match run ~fault () with
  | { M.outcome = M.Aborted { reason = Res.Out_of_fuel { limit }; _ }; steps; _ } ->
      Alcotest.(check int) "capped at drop step + remaining" 15 limit;
      Alcotest.(check int) "stopped there" 15 steps
  | _ -> Alcotest.fail "expected Out_of_fuel at the dropped limit"

(* --- forced collections are invisible to answers and [`Exact] peaks --- *)

let test_forced_gc_invariance () =
  let program = E.program_of_string build in
  List.iter
    (fun variant ->
      let config = M.Config.make ~variant () in
      let base = R.run_once ~config ~program ~n:50 () in
      List.iter
        (fun fault ->
          let m =
            R.run_once ~opts:(M.Run_opts.make ~fault ()) ~config ~program
              ~n:50 ()
          in
          (match (base.R.status, m.R.status) with
          | R.Answer a, R.Answer b ->
              Alcotest.(check string)
                (M.variant_name variant ^ " answer under forced gc") a b
          | _ -> Alcotest.fail "both runs should answer");
          Alcotest.(check int)
            (M.variant_name variant ^ " exact peak under forced gc")
            (R.peak_space base) (R.peak_space m))
        [
          Res.Fault.make ~gc_every:1 ();
          Res.Fault.make ~gc_every:7 ();
          Res.Fault.make ~gc_seed:3 ();
        ])
    M.all_variants

let test_oracle_small () =
  let programs =
    [
      ("build", E.program_of_string build, 30);
      ("countdown", E.program_of_string countdown, 40);
    ]
  in
  let report = Oracle.run ~programs () in
  Alcotest.(check bool) "oracle ok" true report.Oracle.ok;
  Alcotest.(check bool)
    "algol dangling reachable" true report.Oracle.algol_stuck_on_demand;
  Alcotest.(check bool)
    "annotation invariance holds" true report.Oracle.annot_invariant;
  Alcotest.(check (list string))
    "no annotation mismatches" [] report.Oracle.annot_failures;
  Alcotest.(check bool)
    "render mentions OK" true
    (String.length (Oracle.render report) > 0)

(* --- property: tiny budgets and hostile faults never escape --- *)

let fast_entries =
  List.filter (fun (e : Corpus.entry) -> not e.Corpus.slow) Corpus.all

let prop_budgets_never_escape =
  QCheck.Test.make ~name:"corpus under tiny budgets yields structured outcomes"
    ~count:120
    QCheck.(
      quad (int_bound (List.length fast_entries - 1)) (int_bound 5)
        (int_bound 400) (int_bound 3))
    (fun (ei, vi, fuel, plan_idx) ->
      let entry = List.nth fast_entries ei in
      let variant = List.nth M.all_variants vi in
      let n =
        match entry.Corpus.checks with (n, _) :: _ -> n | [] -> 3
      in
      let budget =
        Res.Budget.make ~fuel:(1 + fuel) ~space_words:(50 + fuel)
          ~output_bytes:8 ()
      in
      let fault =
        match plan_idx with
        | 0 -> Res.Fault.none
        | 1 -> Res.Fault.make ~gc_seed:fuel ()
        | 2 -> Res.Fault.make ~fail_alloc:(1 + (fuel mod 20)) ()
        | _ -> Res.Fault.make ~fuel_drop:(fuel, 3) ()
      in
      match
        R.run_once
          ~opts:(M.Run_opts.make ~budget ~fault ())
          ~config:(M.Config.make ~variant ())
          ~program:(Corpus.program entry) ~n ()
      with
      | (_ : R.measurement) -> true
      | exception e ->
          QCheck.Test.fail_reportf "%s/%s escaped: %s" entry.Corpus.name
            (M.variant_name variant) (Printexc.to_string e))

(* --- the sweep supervisor --- *)

let test_supervisor_partial_table () =
  (* diverges for n >= 10: the supervisor must return a full table with
     a per-point abort reason, not die *)
  let src = "(define (f n) (if (< n 10) n (f n))) f" in
  let s =
    R.sweep_supervised ~initial_fuel:2_000 ~max_attempts:2 ~fuel_cap:10_000
      ~config:(M.Config.make ~variant:M.Tail ())
      ~program:(E.program_of_string src)
      ~ns:[ 1; 2; 99 ] ()
  in
  Alcotest.(check int) "all points present" 3 (List.length s.R.points);
  Alcotest.(check int) "two answered" 2 s.R.answered;
  Alcotest.(check int) "one degraded" 1 s.R.degraded;
  let bad = List.nth s.R.points 2 in
  (match bad.R.measurement.R.status with
  | R.Aborted (Res.Out_of_fuel _) -> ()
  | _ -> Alcotest.fail "diverging point should be out of fuel");
  Alcotest.(check bool) "degradation note present" true (bad.R.note <> None);
  (* the table renderer accepts the partial result *)
  let table = Table.supervised s in
  Alcotest.(check bool) "table renders" true (String.length table > 0)

let test_supervisor_escalation () =
  (* needs more steps than the first attempt's fuel; escalation finds it *)
  let s =
    R.sweep_supervised ~initial_fuel:100 ~max_attempts:6
      ~config:(M.Config.make ~variant:M.Tail ())
      ~program:(E.program_of_string countdown)
      ~ns:[ 500 ] ()
  in
  match s.R.points with
  | [ p ] ->
      (match p.R.measurement.R.status with
      | R.Answer a -> Alcotest.(check string) "answer" "0" a
      | _ -> Alcotest.fail "escalation should reach an answer");
      Alcotest.(check bool) "took more than one attempt" true (p.R.attempts > 1);
      Alcotest.(check bool) "note says so" true (p.R.note <> None)
  | _ -> Alcotest.fail "one point expected"

(* --- taxonomy codecs --- *)

let test_reason_codec () =
  List.iter
    (fun r ->
      let name = Res.abort_reason_name r in
      match Res.abort_reason_of_name name with
      | Some r' ->
          Alcotest.(check string)
            ("round trip " ^ name) name
            (Res.abort_reason_name r')
      | None -> Alcotest.failf "tag %s did not parse" name)
    [
      Res.Out_of_fuel { limit = 1 };
      Res.Space_exceeded { budget = 1; live = 2 };
      Res.Deadline_exceeded { timeout_s = 0.1 };
      Res.Output_exceeded { cap = 1; written = 2 };
      Res.Injected_fault "x";
      Res.Crashed "y";
    ]

(* --- the injectable clock --- *)

(* A Guard deadline must fire from the fake clock alone: no sleeping,
   and advancing the fake past the deadline is sufficient and
   necessary. *)
let test_fake_clock_deadline () =
  let t = ref 1000. in
  Res.Clock.with_source
    (fun () -> !t)
    (fun () ->
      let guard = Res.Guard.start (Res.Budget.make ~timeout_s:5. ()) in
      Alcotest.(check bool)
        "no abort before the deadline" true
        (Res.Guard.check guard ~steps:1 ~output_bytes:0 = None);
      (* stay just under; the check throttle reads the clock every 256
         calls, so drive well past that *)
      t := 1004.9;
      for i = 2 to 600 do
        match Res.Guard.check guard ~steps:i ~output_bytes:0 with
        | None -> ()
        | Some r ->
            Alcotest.failf "premature abort: %s" (Res.abort_reason_name r)
      done;
      t := 1005.1;
      let fired = ref None in
      (try
         for i = 601 to 1200 do
           match Res.Guard.check guard ~steps:i ~output_bytes:0 with
           | Some r ->
               fired := Some r;
               raise Exit
           | None -> ()
         done
       with Exit -> ());
      match !fired with
      | Some (Res.Deadline_exceeded _) -> ()
      | Some r -> Alcotest.failf "wrong reason: %s" (Res.abort_reason_name r)
      | None -> Alcotest.fail "deadline never fired on the fake clock");
  Alcotest.(check bool)
    "with_source restored the real clock" true
    (Res.Clock.now () > 1_000_000.)

let test_backoff_deterministic () =
  let next6 seed =
    let b = Res.Backoff.make ~seed () in
    let acc = ref [] in
    for _ = 1 to 6 do
      acc := Res.Backoff.next b :: !acc
    done;
    (b, List.rev !acc)
  in
  let a, xs = next6 42 in
  let _, ys = next6 42 in
  Alcotest.(check (list (float 0.))) "same seed, same schedule" xs ys;
  let _, zs = next6 43 in
  Alcotest.(check bool) "different seed, different jitter" true (xs <> zs);
  Alcotest.(check int) "attempts counted" 6 (Res.Backoff.attempt a);
  List.iteri
    (fun i d ->
      let raw = 0.05 *. (2. ** float_of_int i) in
      let lo = Float.min 5. (raw /. 2.) and hi = Float.min 5. raw in
      Alcotest.(check bool)
        (Printf.sprintf "delay %d in [%.3f, %.3f]" i lo hi)
        true
        (d >= lo && d <= hi))
    xs

let test_budget_clamp () =
  let limit = Res.Budget.make ~fuel:100 ~timeout_s:1. () in
  let below = Res.Budget.clamp ~limit (Res.Budget.make ~fuel:50 ~space_words:10 ()) in
  Alcotest.(check (option int)) "client may ask for less" (Some 50) below.Res.Budget.fuel;
  Alcotest.(check (option int)) "client limits survive" (Some 10) below.Res.Budget.space_words;
  Alcotest.(check bool) "policy timeout applies" true
    (below.Res.Budget.timeout_s = Some 1.);
  let above = Res.Budget.clamp ~limit (Res.Budget.make ~fuel:1_000_000 ()) in
  Alcotest.(check (option int)) "never more than policy" (Some 100) above.Res.Budget.fuel;
  let unlimited = Res.Budget.clamp ~limit Res.Budget.unlimited in
  Alcotest.(check (option int)) "unlimited never beats a set limit" (Some 100)
    unlimited.Res.Budget.fuel

let () =
  Alcotest.run "resilience"
    [
      ( "governor",
        [
          Alcotest.test_case "fuel budget" `Quick test_fuel_budget;
          Alcotest.test_case "space budget" `Quick test_space_budget;
          Alcotest.test_case "deadline" `Quick test_deadline;
          Alcotest.test_case "output cap" `Quick test_output_cap;
        ] );
      ( "faults",
        [
          Alcotest.test_case "fail alloc" `Quick test_fail_alloc;
          Alcotest.test_case "fuel drop" `Quick test_fuel_drop;
          Alcotest.test_case "forced gc invariance" `Quick
            test_forced_gc_invariance;
          Alcotest.test_case "oracle (small)" `Quick test_oracle_small;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "partial table" `Quick
            test_supervisor_partial_table;
          Alcotest.test_case "fuel escalation" `Quick
            test_supervisor_escalation;
        ] );
      ( "taxonomy",
        [ Alcotest.test_case "reason codec" `Quick test_reason_codec ] );
      ( "clock",
        [
          Alcotest.test_case "fake-clock deadline" `Quick
            test_fake_clock_deadline;
          Alcotest.test_case "backoff deterministic" `Quick
            test_backoff_deterministic;
          Alcotest.test_case "budget clamp" `Quick test_budget_clamp;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_budgets_never_escape ] );
    ]
