(* The garbage-collection rule: reachability through the store, the
   once-per-base optimization's transparency, Return_stack pinning, and
   the I_stack occurs-check. *)

module T = Tailspace_core.Types
module Env = Tailspace_core.Types.Env
module Store = Tailspace_core.Store
module Gc = Tailspace_core.Gc
module M = Tailspace_core.Machine

let check_int = Alcotest.(check int)

let lam body = { Tailspace_ast.Ast.params = []; rest = None; body }
let unit_body = Tailspace_ast.Ast.Quote Tailspace_ast.Ast.C_nil

let test_collect_unreachable () =
  let s = Store.empty in
  let s, live = Store.alloc s T.Nil in
  let s, dead = Store.alloc s (T.Sym "garbage") in
  let env = Env.add "x" live Env.empty in
  let s', n = Gc.collect ~control_locs:[] ~env ~cont:T.Halt s in
  check_int "one reclaimed" 1 n;
  Alcotest.(check bool) "live kept" true (Store.mem s' live);
  Alcotest.(check bool) "dead gone" false (Store.mem s' dead)

let test_collect_transitive () =
  let s = Store.empty in
  let s, inner = Store.alloc s (T.Sym "deep") in
  let s, a = Store.alloc s (T.Int Tailspace_bignum.Bignum.zero) in
  let s, d = Store.alloc s T.Nil in
  let s, pair_cell = Store.alloc s (T.Pair (a, d)) in
  let s = Store.set s d (T.Vector [| inner |]) in
  let env = Env.add "p" pair_cell Env.empty in
  let s', n = Gc.collect ~control_locs:[] ~env ~cont:T.Halt s in
  check_int "nothing reclaimed" 0 n;
  Alcotest.(check bool) "inner reachable via vector in cdr" true (Store.mem s' inner)

let test_collect_through_closure_env () =
  let s = Store.empty in
  let s, captured = Store.alloc s (T.Sym "kept") in
  let s, tag = Store.alloc s T.Unspecified in
  let env = Env.add "x" captured Env.empty in
  let closure = T.Closure (tag, lam unit_body, env) in
  let s, home = Store.alloc s closure in
  let roots_env = Env.add "f" home Env.empty in
  let s', n = Gc.collect ~control_locs:[] ~env:roots_env ~cont:T.Halt s in
  check_int "none reclaimed" 0 n;
  Alcotest.(check bool) "captured kept" true (Store.mem s' captured)

let test_collect_through_cont () =
  let s = Store.empty in
  let s, in_frame = Store.alloc s (T.Sym "frame-held") in
  let s, loose = Store.alloc s (T.Sym "loose") in
  let frame_env = Env.add "y" in_frame Env.empty in
  let k = T.select ~e1:unit_body ~e2:unit_body ~env:frame_env ~next:T.Halt () in
  let s', n = Gc.collect ~control_locs:[] ~env:Env.empty ~cont:k s in
  check_int "loose reclaimed" 1 n;
  Alcotest.(check bool) "frame binding kept" true (Store.mem s' in_frame);
  Alcotest.(check bool) "loose gone" false (Store.mem s' loose)

let test_collect_through_escape () =
  let s = Store.empty in
  let s, held = Store.alloc s (T.Sym "held") in
  let s, tag = Store.alloc s T.Unspecified in
  let k = T.assign ~id:"x" ~env:(Env.add "x" held Env.empty) ~next:T.Halt () in
  let escape = T.Escape (tag, k) in
  let s, home = Store.alloc s escape in
  let s', n =
    Gc.collect ~control_locs:[ home ] ~env:Env.empty ~cont:T.Halt s
  in
  check_int "none reclaimed" 0 n;
  Alcotest.(check bool) "held via captured continuation" true (Store.mem s' held)

let test_return_stack_pins_deletions () =
  (* §8: the deletion set extends the lifetime of garbage to that of
     Algol-like stack allocation — A counts as an occurrence. *)
  let s = Store.empty in
  let s, pinned = Store.alloc s (T.Sym "garbage-but-pinned") in
  let k = T.return_stack ~dels:[ pinned ] ~env:Env.empty ~next:T.Halt () in
  let s', n = Gc.collect ~control_locs:[] ~env:Env.empty ~cont:k s in
  check_int "nothing reclaimed" 0 n;
  Alcotest.(check bool) "pinned" true (Store.mem s' pinned)

let test_rebased_env_roots () =
  (* the once-per-base optimization must not lose roots *)
  let s = Store.empty in
  let s, a = Store.alloc s (T.Sym "a") in
  let s, b = Store.alloc s (T.Sym "b") in
  let base = Env.rebase (Env.add_list [ ("a", a); ("b", b) ] Env.empty) in
  let e1 = Env.add "x" a base in
  let k = T.select ~e1:unit_body ~e2:unit_body ~env:e1 ~next:T.Halt () in
  let s', n = Gc.collect ~control_locs:[] ~env:base ~cont:k s in
  check_int "none reclaimed" 0 n;
  Alcotest.(check bool) "b survives via shared base" true (Store.mem s' b)

let table_of locs =
  let h = Hashtbl.create 4 in
  List.iter (fun l -> Hashtbl.replace h l ()) locs;
  h

let test_occurs_check () =
  let s = Store.empty in
  let s, target = Store.alloc s (T.Sym "t") in
  let s, other = Store.alloc s (T.Sym "o") in
  let s, referencing = Store.alloc s (T.Pair (target, other)) in
  ignore referencing;
  let retained = Store.remove_all s [ target ] in
  (* target occurs in the retained pair cell *)
  let hits =
    Gc.occurs_in_retained ~candidates:(table_of [ target ]) ~control_locs:[]
      ~env:Env.empty ~cont:T.Halt ~retained
  in
  check_int "found via store" 1 (Hashtbl.length hits);
  (* but not when the referencing cell is also deleted *)
  let retained2 = Store.remove_all s [ target; referencing ] in
  let hits2 =
    Gc.occurs_in_retained ~candidates:(table_of [ target ]) ~control_locs:[]
      ~env:Env.empty ~cont:T.Halt ~retained:retained2
  in
  check_int "no occurrence" 0 (Hashtbl.length hits2)

let test_occurs_via_env_and_value () =
  let s = Store.empty in
  let s, target = Store.alloc s (T.Sym "t") in
  let env = Env.add "x" target Env.empty in
  let hits =
    Gc.occurs_in_retained ~candidates:(table_of [ target ]) ~control_locs:[]
      ~env ~cont:T.Halt ~retained:(Store.remove_all s [ target ])
  in
  check_int "found via env" 1 (Hashtbl.length hits);
  let hits2 =
    Gc.occurs_in_retained ~candidates:(table_of [ target ])
      ~control_locs:[ target ] ~env:Env.empty ~cont:T.Halt
      ~retained:(Store.remove_all s [ target ])
  in
  check_int "found via control value" 1 (Hashtbl.length hits2)

let test_gc_does_not_change_answers () =
  (* linked measurement forces a collection at every step; answers and
     flat peaks must match the lazy schedule *)
  List.iter
    (fun src ->
      let t = M.create_with M.Config.default in
      let lazy_r = M.exec_string t src in
      let eager_r =
        M.exec_string
          ~opts:
            (M.Run_opts.make
               ~measure:
                 [ Tailspace_core.Space_model.Flat;
                   Tailspace_core.Space_model.Linked ]
               ())
          t src
      in
      match (lazy_r.M.outcome, eager_r.M.outcome) with
      | M.Done { answer = a1; _ }, M.Done { answer = a2; _ } ->
          Alcotest.(check string) "answers agree" a1 a2;
          Alcotest.(check int) "flat peaks agree" (M.peak_space lazy_r)
            (M.peak_space eager_r)
      | _ -> Alcotest.fail "expected Done")
    [
      "(define (f n) (if (zero? n) 'ok (f (- n 1)))) (f 40)";
      "(length (map (lambda (x) (cons x x)) '(1 2 3 4 5)))";
      "(define v (make-vector 5 0)) (vector-set! v 3 'x) (vector-ref v 3)";
    ]

let test_gc_counts_reported () =
  let t = M.create_with M.Config.default in
  let r =
    M.exec_string t
      "(define (churn n) (if (zero? n) 'ok (churn (- n 1)))) (churn 2000)"
  in
  Alcotest.(check bool) "collector ran" true (r.M.gc_runs > 0)

let () =
  Alcotest.run "gc"
    [
      ( "reachability",
        [
          Alcotest.test_case "unreachable collected" `Quick test_collect_unreachable;
          Alcotest.test_case "transitive" `Quick test_collect_transitive;
          Alcotest.test_case "closure env" `Quick test_collect_through_closure_env;
          Alcotest.test_case "continuation" `Quick test_collect_through_cont;
          Alcotest.test_case "escape" `Quick test_collect_through_escape;
          Alcotest.test_case "return_stack pins" `Quick test_return_stack_pins_deletions;
          Alcotest.test_case "rebased roots" `Quick test_rebased_env_roots;
        ] );
      ( "occurs-check",
        [
          Alcotest.test_case "via store" `Quick test_occurs_check;
          Alcotest.test_case "via env/value" `Quick test_occurs_via_env_and_value;
        ] );
      ( "integration",
        [
          Alcotest.test_case "schedule-independent" `Quick test_gc_does_not_change_answers;
          Alcotest.test_case "gc runs counted" `Quick test_gc_counts_reported;
        ] );
    ]
