(* The bytecode VM tier (lib/vm).

   - Golden: the instruction stream for a tail-recursive countdown loop
     is pinned, and its self-call must read [TAILCALL] — no frame push,
     the callee reuses the caller's frame — while the exit branch ends
     in [CONST done; RETURN].
   - QCheck: compilation is total on generated closed programs and the
     fast tier's answers agree with the instrumented tier's and the
     Tail stepper's.
   - Bit-compatibility: on corpus programs the instrumented tier's
     steps, peak space, linked peaks, GC runs, and output are identical
     to [Machine.run]'s, across evaluation-order permutations.
   - The fast tier rejects configurations whose accounting it compiles
     out. *)

module A = Tailspace_ast.Ast
module M = Tailspace_core.Machine
module SM = Tailspace_core.Space_model
module B = Tailspace_bignum.Bignum
module E = Tailspace_expander.Expand
module Vm = Tailspace_vm.Vm
module Corpus = Tailspace_corpus.Corpus

let input n = A.Quote (A.C_int (B.of_int n))

let vm_exec ?opts engine cfg program n =
  Vm.exec_program ?opts
    { cfg with M.Config.engine }
    ~program ~input:(input n)

let vm_answer ?opts engine cfg program n =
  match (vm_exec ?opts engine cfg program n).Vm.outcome with
  | Vm.Done a -> a
  | Vm.Stuck m -> "error: " ^ m
  | Vm.Aborted _ -> "fuel"

let stepper_result ?opts cfg program n =
  let t = M.create_with cfg in
  M.exec_program ?opts t ~program ~input:(input n)

let stepper_answer ?opts cfg program n =
  match (stepper_result ?opts cfg program n).M.outcome with
  | M.Done { answer; _ } -> answer
  | M.Stuck m -> "error: " ^ m
  | M.Aborted _ -> "fuel"

(* --- golden: the countdown loop's instruction stream --- *)

let countdown_src =
  "(lambda (n)\n\
  \  (letrec ((loop (lambda (k) (if (zero? k) 'done (loop (- k 1))))))\n\
  \    (loop n)))"

let countdown_golden =
  "main:\n\
  \   0  CLOSURE T0\n\
  \   1  CONST 3\n\
  \   2  CALL 1\n\
  \   3  HALT\n\
   template T0 (lambda/1):\n\
  \   4  CLOSURE T1\n\
  \   5  CONST #!undefined\n\
  \   6  TAILCALL 1\n\
   template T1 (lambda/1):\n\
  \   7  CLOSURE T2\n\
  \   8  CLOSURE T3         ; loop\n\
  \   9  SETLOCAL 0.0       ; loop\n\
  \  10  TAILCALL 1\n\
   template T2 (lambda/1):\n\
  \  11  LOCAL 1.0          ; loop\n\
  \  12  LOCAL 2.0          ; n\n\
  \  13  TAILCALL 1\n\
   template T3 (loop/1):\n\
  \  14  GLOBAL zero?\n\
  \  15  LOCAL 0.0          ; k\n\
  \  16  CALL 1\n\
  \  17  JUMPIFFALSE 20\n\
  \  18  CONST done\n\
  \  19  RETURN\n\
  \  20  LOCAL 1.0          ; loop\n\
  \  21  GLOBAL -\n\
  \  22  LOCAL 0.0          ; k\n\
  \  23  CONST 1\n\
  \  24  CALL 2\n\
  \  25  TAILCALL 1\n"

let test_golden_disassembly () =
  let program = E.program_of_string countdown_src in
  let c = Vm.compile (A.Call (program, [ input 3 ])) in
  Alcotest.(check string) "instruction stream" countdown_golden
    (Vm.disassemble c);
  (* The same stream must come out when tail positions are read from the
     PR 5 annotation table instead of derived structurally. *)
  let annot = Tailspace_analysis.Annot.create () in
  let c' = Vm.compile ~annot (A.Call (program, [ input 3 ])) in
  Alcotest.(check string) "annot-driven stream identical" countdown_golden
    (Vm.disassemble c')

let test_frame_reuse_depth () =
  (* A million tail iterations: with frame reuse this runs in constant
     frame-stack space; a frame-pushing compiler would need a million
     frames. *)
  let program = E.program_of_string countdown_src in
  Alcotest.(check string)
    "deep countdown" "done"
    (vm_answer M.Vm_fast M.Config.default program 1_000_000)

(* --- QCheck: totality + answer agreement on generated programs --- *)

let gen_expr =
  let open QCheck.Gen in
  let const =
    map (fun n -> A.Quote (A.C_int (B.of_int n))) (int_range (-50) 50)
  in
  let var env =
    if env = [] then const
    else
      map
        (fun i -> A.Var (List.nth env (i mod List.length env)))
        (int_range 0 100)
  in
  let fresh = map (fun i -> Printf.sprintf "v%d" i) (int_range 0 1000) in
  let rec go env depth =
    if depth = 0 then oneof [ const; var env ]
    else
      let sub = go env (depth - 1) in
      frequency
        [
          (2, const);
          (2, var env);
          ( 3,
            map3
              (fun op a b -> A.Call (A.Var op, [ a; b ]))
              (oneofl [ "+"; "-"; "*" ])
              sub sub );
          ( 2,
            map3
              (fun a b c -> A.If (A.Call (A.Var "zero?", [ a ]), b, c))
              sub sub sub );
          ( 2,
            fresh >>= fun x ->
            map2
              (fun init body ->
                A.Call (A.Lambda { params = [ x ]; rest = None; body }, [ init ]))
              sub
              (go (x :: env) (depth - 1)) );
          (1, map2 (fun a b -> A.Call (A.Var "cons", [ a; b ])) sub sub);
          ( 1,
            fresh >>= fun x ->
            map2
              (fun arg body ->
                A.Call
                  ( A.Var "apply",
                    [
                      A.Lambda { params = [ x ]; rest = None; body };
                      A.Call (A.Var "list", [ arg ]);
                    ] ))
              sub
              (go (x :: env) (depth - 1)) );
        ]
  in
  QCheck.Gen.sized_size (QCheck.Gen.int_range 1 4) (fun d ->
      go [] (min d 4))

let arb_expr = QCheck.make ~print:A.to_string gen_expr

let prop_vm_agrees =
  QCheck.Test.make
    ~name:"fast and instrumented tiers agree with the Tail stepper" ~count:150
    arb_expr (fun body ->
      let program = A.Lambda { A.params = [ "input" ]; rest = None; body } in
      (* Totality: compilation succeeds and yields a nonempty stream. *)
      let c = Vm.compile (A.Call (program, [ input 0 ])) in
      if Array.length (Vm.main_code c) = 0 then false
      else
        let reference = stepper_answer M.Config.default program 0 in
        String.equal reference (vm_answer M.Vm M.Config.default program 0)
        && String.equal reference (vm_answer M.Vm_fast M.Config.default program 0))

(* --- corpus: answers agree, instrumented is bit-compatible --- *)

let corpus_programs =
  List.filter_map
    (fun (e : Corpus.entry) ->
      match e.checks with
      | (n, expected) :: _ -> Some (e.name, Corpus.program e, n, expected)
      | [] -> None)
    Corpus.all

let test_corpus_answers () =
  List.iter
    (fun (name, program, n, expected) ->
      Alcotest.(check string)
        (name ^ " fast") expected
        (vm_answer M.Vm_fast M.Config.default program n);
      Alcotest.(check string)
        (name ^ " instrumented") expected
        (vm_answer M.Vm M.Config.default program n))
    corpus_programs

let test_instrumented_bit_compat () =
  let opts = M.Run_opts.make ~measure:[ SM.Flat; SM.Linked; SM.Log ] () in
  List.iter
    (fun perm ->
      let cfg = { M.Config.default with M.Config.perm } in
      List.iter
        (fun (name, program, n, _) ->
          let sr = stepper_result ~opts cfg program n in
          let ir = vm_exec ~opts M.Vm cfg program n in
          Alcotest.(check int) (name ^ " steps") sr.M.steps ir.Vm.steps;
          Alcotest.(check int)
            (name ^ " peak") (M.peak_space sr) (Vm.peak_space ir);
          Alcotest.(check (option int))
            (name ^ " linked") (M.peak_linked sr) (Vm.peak_linked ir);
          Alcotest.(check (option int))
            (name ^ " log") (M.peak_log sr) (Vm.peak_log ir);
          Alcotest.(check int) (name ^ " gc runs") sr.M.gc_runs ir.Vm.gc_runs;
          Alcotest.(check string) (name ^ " output") sr.M.output ir.Vm.output)
        corpus_programs)
    [ M.Left_to_right; M.Right_to_left; M.Seeded 42 ]

let test_fast_rejects_accounting () =
  let program = E.program_of_string countdown_src in
  let check_rejects what cfg opts =
    Alcotest.check_raises what
      (Invalid_argument
         (match what with
         | "rtl" -> "Vm: the fast VM tier evaluates left-to-right only"
         | "linked" ->
             "Vm: linked- and log-space measurement requires the instrumented \
              tier"
         | _ -> assert false))
      (fun () ->
        ignore (Vm.exec_program ?opts cfg ~program ~input:(input 1)))
  in
  check_rejects "rtl"
    {
      M.Config.default with
      M.Config.engine = M.Vm_fast;
      M.Config.perm = M.Right_to_left;
    }
    None;
  check_rejects "linked"
    { M.Config.default with M.Config.engine = M.Vm_fast }
    (Some (M.Run_opts.make ~measure:[ SM.Flat; SM.Linked ] ()))

let () =
  Alcotest.run "vm"
    [
      ( "compiler",
        [
          Alcotest.test_case "golden countdown disassembly" `Quick
            test_golden_disassembly;
          QCheck_alcotest.to_alcotest prop_vm_agrees;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "frame reuse at depth 1e6" `Quick
            test_frame_reuse_depth;
          Alcotest.test_case "corpus answers" `Quick test_corpus_answers;
          Alcotest.test_case "fast tier rejects accounting configs" `Quick
            test_fast_rejects_accounting;
        ] );
      ( "bit-compat",
        [
          Alcotest.test_case "instrumented = stepper (all perms, linked)"
            `Slow test_instrumented_bit_compat;
        ] );
    ]
