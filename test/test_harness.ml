(* Harness: growth fitting on synthetic data, table rendering, the
   runner, and smoke runs of the experiment drivers at reduced sizes. *)

module G = Tailspace_harness.Growth
module T = Tailspace_harness.Table
module R = Tailspace_harness.Runner
module X = Tailspace_harness.Experiments
module M = Tailspace_core.Machine
module E = Tailspace_expander.Expand

let synth f ns = List.map (fun n -> (n, f n)) ns
let ns = [ 8; 16; 32; 64; 128; 256 ]

let check_order name f expected =
  Alcotest.(check string) name
    (G.order_name expected)
    (G.order_name (G.classify (synth f ns)))

let test_classify_constant () = check_order "constant" (fun _ -> 3000) G.Constant

let test_classify_log () =
  check_order "log" (fun n -> 500 + (40 * int_of_float (log (float_of_int n)))) G.Logarithmic

let test_classify_linear () = check_order "linear" (fun n -> 1000 + (17 * n)) G.Linear

let test_classify_linearithmic () =
  check_order "n log n"
    (fun n -> 200 + int_of_float (7.0 *. float_of_int n *. log (float_of_int n)))
    G.Linearithmic

let test_classify_quadratic () =
  check_order "quadratic" (fun n -> 100 + (3 * n * n)) G.Quadratic

let test_fit_params () =
  let f = G.fit (synth (fun n -> 50 + (7 * n)) ns) in
  Alcotest.(check bool) "slope near 7" true (abs_float (f.G.coefficient -. 7.) < 0.5);
  Alcotest.(check bool) "intercept near 50" true (abs_float (f.G.intercept -. 50.) < 20.)

let test_fit_prefers_simpler () =
  (* noiseless linear data also fits the quadratic model; the simpler
     order must win the tie *)
  let f = G.fit (synth (fun n -> 10 * n) ns) in
  Alcotest.(check string) "linear not quadratic" "O(N)" (G.order_name f.G.order)

let test_fit_requires_points () =
  Alcotest.check_raises "too few"
    (Invalid_argument "Growth.fit: need at least 3 measurements") (fun () ->
      ignore (G.fit [ (1, 1); (2, 2) ]))

let test_at_least () =
  Alcotest.(check bool) "quad >= linear" true (G.at_least G.Quadratic G.Linear);
  Alcotest.(check bool) "log < linear" false (G.at_least G.Logarithmic G.Linear);
  Alcotest.(check bool) "reflexive" true (G.at_least G.Linear G.Linear)

let test_table_render () =
  let s = T.render ~header:[ "name"; "n" ] [ [ "alpha"; "12" ]; [ "b"; "3" ] ] in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "4 lines + trailing" 5 (List.length lines);
  Alcotest.(check string) "numbers right-aligned" "alpha  12" (List.nth lines 2);
  Alcotest.(check string) "short name padded" "b       3" (List.nth lines 3)

let test_runner_sweep () =
  let program = E.program_of_string "(define (f n) (* n n)) f" in
  let ms = R.sweep ~config:(M.Config.make ~variant:M.Tail ()) ~program ~ns:[ 2; 3; 4 ] () in
  Alcotest.(check int) "three runs" 3 (List.length ms);
  Alcotest.(check bool) "all answered" true (R.all_answered ms);
  let answers =
    List.map (fun m -> match m.R.status with R.Answer a -> a | _ -> "?") ms
  in
  Alcotest.(check (list string)) "squares" [ "4"; "9"; "16" ] answers;
  Alcotest.(check int) "spaces extracted" 3 (List.length (R.spaces ms))

let test_runner_stuck_excluded () =
  let program = E.program_of_string "(define (f n) (car n)) f" in
  let ms = R.sweep ~config:(M.Config.make ~variant:M.Tail ()) ~program ~ns:[ 1; 2 ] () in
  Alcotest.(check bool) "not all answered" false (R.all_answered ms);
  Alcotest.(check int) "spaces empty" 0 (List.length (R.spaces ms))

(* --- experiment drivers at reduced scale --- *)

let test_fig2_runs () =
  let rows = X.Fig2.run () in
  Alcotest.(check bool) "covers corpus" true
    (List.length rows = List.length Tailspace_corpus.Corpus.all);
  let total = X.Fig2.total rows in
  Alcotest.(check bool) "nonzero calls" true (total.X.Tail_calls.calls > 0);
  Alcotest.(check bool) "renders" true (String.length (X.Fig2.render rows) > 100)

let test_thm25_reduced () =
  let sweeps = X.Thm25.run ~ns:[ 10; 20; 40 ] () in
  Alcotest.(check int) "four separators" 4 (List.length sweeps);
  List.iter
    (fun s ->
      List.iter
        (fun (c : X.Thm25.cell) ->
          Alcotest.(check bool)
            (s.X.Thm25.separator ^ " " ^ M.variant_name c.X.Thm25.variant
           ^ " all ran")
            true
            (List.length c.X.Thm25.spaces = 3))
        s.X.Thm25.cells)
    sweeps;
  Alcotest.(check bool) "renders" true (String.length (X.Thm25.render sweeps) > 200)

let test_thm25_claims_full () =
  (* the paper's separations at full default sizes *)
  let sweeps = X.Thm25.run () in
  List.iter
    (fun (claim, ok) -> Alcotest.(check bool) claim true ok)
    (X.Thm25.claims sweeps)

let test_thm24_chain () =
  let rows = X.Thm24.run () in
  Alcotest.(check bool) "nonempty" true (List.length rows > 10);
  List.iter
    (fun (r : X.Thm24.row) ->
      Alcotest.(check bool) (r.X.Thm24.name ^ " chain") true r.X.Thm24.chain_ok)
    rows

let test_thm26_shape () =
  let result = X.Thm26.run ~ns:[ 6; 9; 14; 20 ] () in
  (* flat sfs must overtake linked tail as N grows *)
  let last = List.nth result.X.Thm26.rows 3 in
  let first = List.hd result.X.Thm26.rows in
  let ratio (r : X.Thm26.row) =
    float_of_int r.X.Thm26.s_sfs /. float_of_int r.X.Thm26.u_tail
  in
  Alcotest.(check bool) "S_sfs/U_tail grows" true (ratio last > ratio first);
  Alcotest.(check bool) "renders" true (String.length (X.Thm26.render result) > 100)

let test_cor20_agreement () =
  let rows = X.Cor20.run () in
  List.iter
    (fun (r : X.Cor20.row) ->
      Alcotest.(check bool) (r.X.Cor20.name ^ " agrees") true r.X.Cor20.agree)
    rows

let test_cps_shapes () =
  let r = X.Cps.run ~ns:[ 16; 32; 64; 128 ] () in
  let order = function
    | Some (f : G.fit) -> f.G.order
    | None -> Alcotest.fail "CPS sweep starved: no fit"
  in
  Alcotest.(check string) "tail bounded" "O(1)"
    (G.order_name (order r.X.Cps.tail_fit));
  Alcotest.(check bool) "gc at least linear" true
    (G.at_least (order r.X.Cps.gc_fit) G.Linear)

let test_ablation_choices_matter () =
  (* E8: the faithful readings separate; the literal readings do not *)
  let r = X.Ablation.run () in
  Alcotest.(check bool) "stack/gc separates (faithful)" true
    (r.X.Ablation.stack_gc_divergence_faithful >= 1.4);
  Alcotest.(check bool) "stack/gc collapses (literal)" true
    (r.X.Ablation.stack_gc_divergence_literal <= 1.1);
  Alcotest.(check bool) "tail/evlis separates (faithful)" true
    (r.X.Ablation.tail_evlis_divergence_faithful >= 1.4);
  Alcotest.(check bool) "tail/evlis collapses (literal)" true
    (r.X.Ablation.tail_evlis_divergence_literal <= 1.1)

let test_sec4_shapes () =
  let rows = X.Sec4.run ~ns:[ 16; 32; 64 ] () in
  let find spine variant =
    List.find
      (fun (r : X.Sec4.row) -> r.X.Sec4.spine = spine && r.X.Sec4.variant = variant)
      rows
  in
  let spread (r : X.Sec4.row) =
    let ds = List.map snd r.X.Sec4.deltas in
    List.fold_left Stdlib.max min_int ds - List.fold_left Stdlib.min max_int ds
  in
  (* right spine: traversal overhead flat under I_tail, growing under I_gc *)
  Alcotest.(check bool) "tail flat" true (spread (find "right" M.Tail) < 50);
  Alcotest.(check bool) "gc grows" true (spread (find "right" M.Gc) > 1000);
  (* left spine grows even under I_tail *)
  Alcotest.(check bool) "left tail grows" true (spread (find "left" M.Tail) > 500)

let () =
  Alcotest.run "harness"
    [
      ( "growth",
        [
          Alcotest.test_case "constant" `Quick test_classify_constant;
          Alcotest.test_case "logarithmic" `Quick test_classify_log;
          Alcotest.test_case "linear" `Quick test_classify_linear;
          Alcotest.test_case "linearithmic" `Quick test_classify_linearithmic;
          Alcotest.test_case "quadratic" `Quick test_classify_quadratic;
          Alcotest.test_case "fit parameters" `Quick test_fit_params;
          Alcotest.test_case "prefers simpler" `Quick test_fit_prefers_simpler;
          Alcotest.test_case "needs 3 points" `Quick test_fit_requires_points;
          Alcotest.test_case "at_least" `Quick test_at_least;
        ] );
      ( "infrastructure",
        [
          Alcotest.test_case "table" `Quick test_table_render;
          Alcotest.test_case "sweep" `Quick test_runner_sweep;
          Alcotest.test_case "stuck excluded" `Quick test_runner_stuck_excluded;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "fig2" `Quick test_fig2_runs;
          Alcotest.test_case "thm25 reduced" `Quick test_thm25_reduced;
          Alcotest.test_case "thm25 claims (full size)" `Slow test_thm25_claims_full;
          Alcotest.test_case "thm24 chain" `Slow test_thm24_chain;
          Alcotest.test_case "thm26 shape" `Quick test_thm26_shape;
          Alcotest.test_case "cor20 agreement" `Slow test_cor20_agreement;
          Alcotest.test_case "cps shapes" `Quick test_cps_shapes;
          Alcotest.test_case "sec4 shapes" `Quick test_sec4_shapes;
          Alcotest.test_case "ablation (E8)" `Quick test_ablation_choices_matter;
        ] );
    ]
