(* The parallel measurement engine: the domain pool's ordering and
   failure contract, the result cache, sweep determinism across job
   counts (tables must be byte-identical), cache-warm replay, the
   profile downsampler's alignment invariant, summary merging, and the
   fault-plan periodic-GC fencepost. *)

module M = Tailspace_core.Machine
module Tel = Tailspace_telemetry.Telemetry
module Res = Tailspace_resilience.Resilience
module Pool = Tailspace_parallel.Pool
module Cache = Tailspace_parallel.Cache
module R = Tailspace_harness.Runner
module X = Tailspace_harness.Experiments
module G = Tailspace_harness.Growth
module Expand = Tailspace_expander.Expand
module Json = Tel.Json

let with_test_pool ~jobs f =
  let pool = Pool.create ~jobs () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

(* ------------------------------------------------------------------ *)
(* the pool *)

let test_pool_map_order () =
  with_test_pool ~jobs:4 @@ fun pool ->
  let xs = List.init 100 Fun.id in
  Alcotest.(check (list int))
    "results in submission order"
    (List.map (fun x -> x * x) xs)
    (Pool.map ~pool (fun x -> x * x) xs);
  (* the pool is reusable across maps *)
  Alcotest.(check (list string))
    "second map on the same pool" [ "0"; "1"; "2" ]
    (Pool.map ~pool string_of_int [ 0; 1; 2 ])

let test_pool_earliest_exception () =
  with_test_pool ~jobs:3 @@ fun pool ->
  match
    Pool.map ~pool
      (fun x -> if x mod 2 = 1 then failwith (string_of_int x) else x)
      [ 0; 1; 2; 3; 4 ]
  with
  | _ -> Alcotest.fail "expected the map to raise"
  | exception Failure msg ->
      Alcotest.(check string) "earliest failed item wins" "1" msg

let test_pool_shutdown () =
  let pool = Pool.create ~jobs:2 () in
  Alcotest.(check int) "jobs" 2 (Pool.jobs pool);
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *);
  (match Pool.map ~pool Fun.id [ 1 ] with
  | _ -> Alcotest.fail "map on a shut-down pool must raise"
  | exception Invalid_argument _ -> ());
  Alcotest.(check (list int))
    "with_pool jobs:1 takes the serial path" [ 2; 4 ]
    (Pool.with_pool ~jobs:1 (fun pool ->
         Alcotest.(check bool) "no pool spawned" true (pool = None);
         Pool.map ?pool (fun x -> 2 * x) [ 1; 2 ]))

(* After a batch fails, the remaining queued thunks must be discarded
   without running — a poison request must not make the pool grind
   through (or re-crash on) everything queued behind it — and the
   workers must come back reusable. With one worker the schedule is
   deterministic: item 0 fails, so items 1..99 are discarded. *)
let test_pool_poisoned_batch_discards () =
  with_test_pool ~jobs:1 @@ fun pool ->
  let ran = Atomic.make 0 in
  (match
     Pool.map ~pool
       (fun x ->
         if x = 0 then failwith "poison"
         else begin
           Atomic.incr ran;
           x
         end)
       (List.init 100 Fun.id)
   with
  | _ -> Alcotest.fail "expected the map to raise"
  | exception Failure msg ->
      Alcotest.(check string) "the poison item's failure" "poison" msg);
  Alcotest.(check int) "discarded thunks never ran" 0 (Atomic.get ran);
  Alcotest.(check (list int))
    "workers reusable after a poisoned batch" [ 2; 4; 6 ]
    (Pool.map ~pool (fun x -> 2 * x) [ 1; 2; 3 ])

let test_pool_submit_await () =
  with_test_pool ~jobs:2 @@ fun pool ->
  let handles =
    List.init 10 (fun i -> Pool.submit pool (fun () -> i * i))
  in
  Alcotest.(check (list int))
    "await returns each result"
    (List.init 10 (fun i -> i * i))
    (List.map Pool.await handles);
  let failing = Pool.submit pool (fun () -> failwith "boom") in
  (match Pool.await failing with
  | _ -> Alcotest.fail "await must re-raise the task's exception"
  | exception Failure msg -> Alcotest.(check string) "message" "boom" msg);
  (* one task failing poisons nothing else *)
  Alcotest.(check int) "pool still serves" 7 (Pool.await (Pool.submit pool (fun () -> 7)))

let test_pool_submit_after_shutdown () =
  let pool = Pool.create ~jobs:1 () in
  Pool.shutdown pool;
  match Pool.submit pool (fun () -> 1) with
  | _ -> Alcotest.fail "submit on a shut-down pool must raise"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* the cache *)

let tmp_dir () = Filename.temp_file "tailspace-cache" "" |> fun f ->
  Sys.remove f;
  f

let test_cache_roundtrip () =
  let c = Cache.create () in
  let k = Cache.key [ "a"; "b" ] in
  Alcotest.(check bool) "miss on empty" true (Cache.find c k = None);
  Cache.store c k (Json.Int 42);
  Alcotest.(check bool) "hit after store" true (Cache.find c k = Some (Json.Int 42));
  Alcotest.(check int) "hits" 1 (Cache.hits c);
  Alcotest.(check int) "misses" 1 (Cache.misses c);
  Alcotest.(check int) "size" 1 (Cache.size c)

let test_cache_keys_unambiguous () =
  (* length-prefixed parts: moving a boundary must change the key *)
  Alcotest.(check bool) "ab|c <> a|bc" false
    (Cache.key [ "ab"; "c" ] = Cache.key [ "a"; "bc" ]);
  Alcotest.(check bool) "order matters" false
    (Cache.key [ "x"; "y" ] = Cache.key [ "y"; "x" ]);
  Alcotest.(check string) "stable" (Cache.key [ "x" ]) (Cache.key [ "x" ])

let test_cache_persists () =
  let dir = tmp_dir () in
  let k = Cache.key [ "persisted" ] in
  let c1 = Cache.create ~dir () in
  Cache.store c1 k (Json.Obj [ ("v", Json.Str "x") ]);
  (* a second instance over the same directory sees the entry *)
  let c2 = Cache.create ~dir () in
  Alcotest.(check bool) "disk hit" true
    (Cache.find c2 k = Some (Json.Obj [ ("v", Json.Str "x") ]));
  (* a corrupt entry is a miss, not an error *)
  let k_bad = Cache.key [ "corrupt" ] in
  Out_channel.with_open_bin
    (Filename.concat dir (k_bad ^ ".json"))
    (fun oc -> output_string oc "{not json");
  Alcotest.(check bool) "corrupt entry is a miss" true
    (Cache.find c2 k_bad = None)

(* ------------------------------------------------------------------ *)
(* sweeps: parallel = serial, cache-warm = cold *)

let countdown =
  Expand.program_of_string
    "(define (count n) (if (zero? n) 'ok (count (- n 1)))) count"

let test_sweep_parallel_equals_serial () =
  let ns = [ 10; 20; 40; 80 ] in
  let tail = M.Config.make ~variant:M.Tail () in
  let serial = R.sweep ~config:tail ~program:countdown ~ns () in
  with_test_pool ~jobs:4 @@ fun pool ->
  let parallel = R.sweep ~pool ~config:tail ~program:countdown ~ns () in
  Alcotest.(check bool) "identical measurement lists" true (serial = parallel);
  let s_serial = R.sweep_supervised ~config:tail ~program:countdown ~ns () in
  let s_parallel =
    R.sweep_supervised ~pool ~config:tail ~program:countdown ~ns ()
  in
  Alcotest.(check bool) "identical supervised sweeps" true
    (s_serial = s_parallel)

let test_sweep_cache_warm () =
  let dir = tmp_dir () in
  let cache = Cache.create ~dir () in
  let ns = [ 10; 20; 40 ] in
  let sweep () =
    R.sweep ~cache ~cache_source:"test:countdown"
      ~config:(M.Config.make ~variant:M.Tail ())
      ~program:countdown ~ns ~collect_telemetry:true ()
  in
  let cold = sweep () in
  Alcotest.(check int) "cold misses" 3 (Cache.misses cache);
  Alcotest.(check int) "cold hits" 0 (Cache.hits cache);
  let warm = sweep () in
  Alcotest.(check int) "warm hits" 3 (Cache.hits cache);
  Alcotest.(check int) "warm misses" 3 (Cache.misses cache);
  Alcotest.(check bool) "warm equals cold" true (cold = warm);
  (* a second process (fresh cache over the same directory) also replays *)
  let cache2 = Cache.create ~dir () in
  let replay =
    R.sweep ~cache:cache2 ~cache_source:"test:countdown"
      ~config:(M.Config.make ~variant:M.Tail ())
      ~program:countdown ~ns ~collect_telemetry:true ()
  in
  Alcotest.(check int) "disk hits" 3 (Cache.hits cache2);
  Alcotest.(check bool) "disk replay equals cold" true (cold = replay);
  (* a different configuration does not alias *)
  let _ =
    R.sweep ~cache:cache2 ~cache_source:"test:countdown"
      ~config:(M.Config.make ~variant:M.Gc ())
      ~program:countdown ~ns ~collect_telemetry:true ()
  in
  Alcotest.(check int) "other variant misses" 3 (Cache.misses cache2)

let test_measurement_json_roundtrip () =
  let gc = M.Config.make ~variant:M.Gc () in
  let ms =
    R.sweep ~config:gc ~program:countdown ~ns:[ 12 ] ~collect_telemetry:true ()
  in
  let aborted =
    R.sweep
      ~opts:(M.Run_opts.make ~fuel:10 ())
      ~config:gc ~program:countdown ~ns:[ 1000 ] ()
  in
  List.iter
    (fun (m : R.measurement) ->
      match R.measurement_of_json (R.measurement_to_json m) with
      | Ok m' -> Alcotest.(check bool) "round-trips" true (m = m')
      | Error e -> Alcotest.failf "decode failed: %s" e)
    (ms @ aborted)

(* ------------------------------------------------------------------ *)
(* experiment tables byte-identical across job counts *)

let test_tables_jobs_invariant () =
  let ns = [ 8; 16; 24 ] in
  let thm25_serial = X.Thm25.render (X.Thm25.run ~ns ()) in
  let thm26_serial = X.Thm26.render (X.Thm26.run ~ns ()) in
  with_test_pool ~jobs:4 @@ fun pool ->
  Alcotest.(check string) "thm25 table" thm25_serial
    (X.Thm25.render (X.Thm25.run ~pool ~ns ()));
  Alcotest.(check string) "thm26 table" thm26_serial
    (X.Thm26.render (X.Thm26.run ~pool ~ns ()))

(* ------------------------------------------------------------------ *)
(* starved sweeps degrade the table instead of raising *)

let test_starved_fits_degrade () =
  (* a fuel budget too small for any point to answer: every fit is None
     and the tables still render *)
  let budget = Res.Budget.make ~fuel:5 () in
  let thm26 = X.Thm26.run ~ns:[ 8; 12; 18 ] ~budget () in
  Alcotest.(check bool) "thm26 u_tail fit degrades" true
    (thm26.X.Thm26.u_tail_fit = None);
  Alcotest.(check bool) "thm26 s_sfs fit degrades" true
    (thm26.X.Thm26.s_sfs_fit = None);
  Alcotest.(check bool) "thm26 renders" true
    (String.length (X.Thm26.render thm26) > 50);
  let cps = X.Cps.run ~ns:[ 16; 32; 64 ] ~budget () in
  Alcotest.(check bool) "cps fits degrade" true
    (cps.X.Cps.tail_fit = None && cps.X.Cps.gc_fit = None);
  Alcotest.(check bool) "cps renders" true
    (String.length (X.Cps.render cps) > 50);
  (* Thm25 under the same starvation: cells lose their fits but the
     sweep still renders *)
  let sweeps = X.Thm25.run ~ns:[ 8; 12; 18 ] ~budget () in
  Alcotest.(check bool) "thm25 renders under starvation" true
    (String.length (X.Thm25.render sweeps) > 50)

(* ------------------------------------------------------------------ *)
(* profile downsampler invariant (QCheck) *)

let test_profile_invariant =
  QCheck.Test.make ~count:200 ~name:"profile samples aligned and increasing"
    QCheck.(
      triple (int_range 2 9) (int_range 1 4) (int_range 1 400))
    (fun (max_samples, stride, total_steps) ->
      let p = Tel.Profile.create ~stride ~max_samples () in
      for step = 0 to total_steps - 1 do
        Tel.Profile.sample p ~step ~space:(step + 7)
      done;
      let samples = Tel.Profile.samples p in
      let steps = List.map fst samples in
      let final_stride = Tel.Profile.stride p in
      List.length samples <= max_samples
      && List.for_all (fun s -> s mod final_stride = 0) steps
      && (let rec increasing = function
            | a :: (b :: _ as rest) -> a < b && increasing rest
            | _ -> true
          in
          increasing steps)
      && List.for_all (fun (s, sp) -> sp = s + 7) samples)

(* ------------------------------------------------------------------ *)
(* summary merging *)

let test_merge_summaries () =
  let summarize src =
    let t = M.create_with M.Config.default in
    let tl = Tel.create () in
    ignore (M.exec_string ~opts:(M.Run_opts.make ~telemetry:tl ()) t src);
    Tel.summary tl
  in
  let a = summarize "(list 1 2 3)" in
  let b = summarize "((lambda (f) (f 1)) (lambda (x) x))" in
  let m = Tel.merge_summaries [ a; b ] in
  Alcotest.(check int) "steps sum" (a.Tel.steps + b.Tel.steps) m.Tel.steps;
  Alcotest.(check int) "alloc words sum"
    (a.Tel.alloc_words + b.Tel.alloc_words)
    m.Tel.alloc_words;
  Alcotest.(check int) "peak is max"
    (max a.Tel.peak_space b.Tel.peak_space)
    m.Tel.peak_space;
  Alcotest.(check int) "depth is max"
    (max a.Tel.max_cont_depth b.Tel.max_cont_depth)
    m.Tel.max_cont_depth;
  let count kind s =
    match List.assoc_opt kind s.Tel.allocations with Some c -> c | None -> 0
  in
  List.iter
    (fun kind ->
      Alcotest.(check int)
        (Tel.alloc_kind_name kind ^ " allocations sum")
        (count kind a + count kind b) (count kind m))
    Tel.all_alloc_kinds;
  Alcotest.(check bool) "empty merges to zero" true
    (Tel.merge_summaries [] = Tel.merge_summaries []);
  Alcotest.(check int) "zero steps" 0 (Tel.merge_summaries []).Tel.steps;
  let stuck = { a with Tel.stuck = Some "first" } in
  let stuck2 = { b with Tel.stuck = Some "second" } in
  Alcotest.(check bool) "first stuck wins" true
    ((Tel.merge_summaries [ stuck; stuck2 ]).Tel.stuck = Some "first")

(* ------------------------------------------------------------------ *)
(* fault-plan fenceposts *)

let test_gc_every_fencepost () =
  (* gc_every:5 over steps 0..24 fires at 5,10,15,20 — exactly 4 times,
     never at step 0 *)
  let cursor = Res.Fault.start (Res.Fault.make ~gc_every:5 ()) in
  let fired = ref [] in
  for step = 0 to 24 do
    if Res.Fault.force_gc cursor ~step then fired := step :: !fired
  done;
  Alcotest.(check (list int)) "fires at k, 2k, ..." [ 5; 10; 15; 20 ]
    (List.rev !fired)

let test_gc_seed_zero_not_degenerate () =
  (* seed 0 must normalize to a nonzero LCG state and still produce a
     schedule (roughly one step in eight) *)
  let fires seed =
    let cursor = Res.Fault.start (Res.Fault.make ~gc_seed:seed ()) in
    let n = ref 0 in
    for step = 0 to 799 do
      if Res.Fault.force_gc cursor ~step then incr n
    done;
    !n
  in
  Alcotest.(check bool) "seed 0 fires" true (fires 0 > 10);
  Alcotest.(check bool) "seed 7 fires" true (fires 7 > 10)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map preserves order" `Quick test_pool_map_order;
          Alcotest.test_case "earliest exception wins" `Quick
            test_pool_earliest_exception;
          Alcotest.test_case "shutdown" `Quick test_pool_shutdown;
          Alcotest.test_case "poisoned batch discards" `Quick
            test_pool_poisoned_batch_discards;
          Alcotest.test_case "submit/await" `Quick test_pool_submit_await;
          Alcotest.test_case "submit after shutdown" `Quick
            test_pool_submit_after_shutdown;
        ] );
      ( "cache",
        [
          Alcotest.test_case "roundtrip" `Quick test_cache_roundtrip;
          Alcotest.test_case "keys unambiguous" `Quick
            test_cache_keys_unambiguous;
          Alcotest.test_case "persists to disk" `Quick test_cache_persists;
        ] );
      ( "sweeps",
        [
          Alcotest.test_case "parallel = serial" `Quick
            test_sweep_parallel_equals_serial;
          Alcotest.test_case "cache-warm replay" `Quick test_sweep_cache_warm;
          Alcotest.test_case "measurement json roundtrip" `Quick
            test_measurement_json_roundtrip;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "tables byte-identical across jobs" `Slow
            test_tables_jobs_invariant;
          Alcotest.test_case "starved fits degrade" `Quick
            test_starved_fits_degrade;
        ] );
      ( "telemetry",
        [
          QCheck_alcotest.to_alcotest test_profile_invariant;
          Alcotest.test_case "merge summaries" `Quick test_merge_summaries;
        ] );
      ( "faults",
        [
          Alcotest.test_case "gc_every fencepost" `Quick
            test_gc_every_fencepost;
          Alcotest.test_case "gc_seed 0 not degenerate" `Quick
            test_gc_seed_zero_not_degenerate;
        ] );
    ]
