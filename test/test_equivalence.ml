(* Property-based checks of Corollary 20 (all reference implementations
   compute the same answers) and Theorem 24 (the pointwise space
   hierarchy) over randomly generated closed Core Scheme programs, plus
   permutation-independence for effect-free programs.

   The generator produces terminating programs by construction: no
   recursion, depth-bounded, no set!. *)

module A = Tailspace_ast.Ast
module M = Tailspace_core.Machine
module B = Tailspace_bignum.Bignum

let gen_expr =
  let open QCheck.Gen in
  let const = map (fun n -> A.Quote (A.C_int (B.of_int n))) (int_range (-50) 50) in
  let var env = if env = [] then const else map (fun i -> A.Var (List.nth env (i mod List.length env))) (int_range 0 100) in
  let fresh = map (fun i -> Printf.sprintf "v%d" i) (int_range 0 1000) in
  let rec go env depth =
    if depth = 0 then oneof [ const; var env ]
    else
      let sub = go env (depth - 1) in
      frequency
        [
          (2, const);
          (2, var env);
          ( 3,
            map3
              (fun op a b -> A.Call (A.Var op, [ a; b ]))
              (oneofl [ "+"; "-"; "*" ])
              sub sub );
          ( 2,
            map3
              (fun a b c -> A.If (A.Call (A.Var "zero?", [ a ]), b, c))
              sub sub sub );
          ( 2,
            fresh >>= fun x ->
            map2
              (fun init body ->
                A.Call (A.Lambda { params = [ x ]; rest = None; body }, [ init ]))
              sub
              (go (x :: env) (depth - 1)) );
          ( 1,
            map2 (fun a b -> A.Call (A.Var "cons", [ a; b ])) sub sub );
          ( 1,
            map2
              (fun a b ->
                A.Call (A.Var "car", [ A.Call (A.Var "cons", [ a; b ]) ]))
              sub sub );
          ( 1,
            fresh >>= fun x ->
            map2
              (fun arg body ->
                A.Call
                  ( A.Var "apply",
                    [
                      A.Lambda { params = [ x ]; rest = None; body };
                      A.Call (A.Var "list", [ arg ]);
                    ] ))
              sub
              (go (x :: env) (depth - 1)) );
        ]
  in
  go [] 4

let arb_expr = QCheck.make ~print:A.to_string gen_expr

let run_variant ?(perm = M.Left_to_right) variant e =
  let t = M.create_with (M.Config.make ~variant ~perm ()) in
  let r = M.exec ~opts:(M.Run_opts.make ~fuel:2_000_000 ()) t e in
  (r.M.outcome, M.space_consumption r)

let answer_of = function
  | M.Done { answer; _ } -> answer
  | M.Stuck m -> "stuck: " ^ m
  | M.Aborted _ -> "fuel"

let prop_corollary20 =
  QCheck.Test.make ~name:"all six variants compute the same answer" ~count:150
    arb_expr (fun e ->
      let reference = answer_of (fst (run_variant M.Tail e)) in
      List.for_all
        (fun v -> String.equal reference (answer_of (fst (run_variant v e))))
        M.all_variants)

let prop_theorem24 =
  QCheck.Test.make ~name:"pointwise space hierarchy on random programs"
    ~count:100 arb_expr (fun e ->
      let s v =
        match run_variant v e with
        | M.Done _, space -> Some space
        | _ -> None
      in
      match (s M.Tail, s M.Gc, s M.Stack, s M.Evlis, s M.Free, s M.Sfs) with
      | Some tail, Some gc, Some stack, Some evlis, Some free, Some sfs ->
          tail <= gc && gc <= stack && sfs <= evlis && evlis <= tail
          && sfs <= free && free <= tail
      | _ -> QCheck.assume_fail ())

let prop_permutation_independent =
  QCheck.Test.make
    ~name:"effect-free programs: same answer under any argument order"
    ~count:100 arb_expr (fun e ->
      (* Stuck programs are excluded: which of several errors is hit
         first legitimately depends on the permutation. Completed
         computations must agree. *)
      match fst (run_variant M.Tail e) with
      | M.Done { answer = reference; _ } ->
          List.for_all
            (fun perm ->
              String.equal reference
                (answer_of (fst (run_variant ~perm M.Tail e))))
            [ M.Right_to_left; M.Seeded 1; M.Seeded 99 ]
      | _ -> QCheck.assume_fail ())

let prop_deterministic =
  QCheck.Test.make ~name:"repeated runs are identical" ~count:50 arb_expr
    (fun e ->
      let o1, s1 = run_variant M.Gc e in
      let o2, s2 = run_variant M.Gc e in
      String.equal (answer_of o1) (answer_of o2) && s1 = s2)

let () =
  Alcotest.run "equivalence"
    [
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_corollary20;
            prop_theorem24;
            prop_permutation_independent;
            prop_deterministic;
          ] );
    ]
