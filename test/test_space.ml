(* The space models of Figures 7 and 8: exact unit values, incremental
   store accounting, continuation size caching, the measured S_X
   hierarchy, and flat-vs-linked relationships. *)

module T = Tailspace_core.Types
module Env = Tailspace_core.Types.Env
module Store = Tailspace_core.Store
module Space = Tailspace_core.Space
module SM = Tailspace_core.Space_model
module M = Tailspace_core.Machine
module A = Tailspace_ast.Ast
module B = Tailspace_bignum.Bignum
module E = Tailspace_expander.Expand

let check_int = Alcotest.(check int)

(* --- Figure 7: space of values --- *)

let test_value_space_atoms () =
  check_int "bool" 1 (T.value_space (T.Bool true));
  check_int "symbol" 1 (T.value_space (T.Sym "hello"));
  check_int "char" 1 (T.value_space (T.Char 'x'));
  check_int "nil" 1 (T.value_space T.Nil);
  check_int "unspecified" 1 (T.value_space T.Unspecified);
  check_int "primop" 1 (T.value_space (T.Primop "car"))

let test_value_space_numbers () =
  (* space(NUM:z) = 1 + log2 z for positive exact integers *)
  check_int "zero" 1 (T.value_space (T.Int B.zero));
  check_int "one" 2 (T.value_space (T.Int B.one));
  check_int "1024" 12 (T.value_space (T.Int (B.of_int 1024)));
  check_int "negative mirrors" 12 (T.value_space (T.Int (B.of_int (-1024))));
  check_int "2^100" 102 (T.value_space (T.Int (B.pow (B.of_int 2) 100)))

let test_value_space_structures () =
  check_int "pair" 3 (T.value_space (T.Pair (0, 1)));
  check_int "vector" 6 (T.value_space (T.Vector [| 0; 1; 2; 3; 4 |]));
  check_int "empty vector" 1 (T.value_space (T.Vector [||]));
  check_int "string" 6 (T.value_space (T.Str "hello"));
  let env = Env.add_list [ ("a", 0); ("b", 1); ("c", 2) ] Env.empty in
  let lam = { A.params = [ "x" ]; rest = None; body = A.Var "x" } in
  check_int "closure 1+|dom|" 4 (T.value_space (T.Closure (9, lam, env)))

(* --- Figure 7: space of continuations, cached --- *)

let test_cont_space () =
  let env2 = Env.add_list [ ("a", 0); ("b", 1) ] Env.empty in
  let e = A.Var "x" in
  check_int "halt" 1 (T.cont_space T.Halt);
  let sel = T.select ~e1:e ~e2:e ~env:env2 ~next:T.Halt () in
  check_int "select 1+|dom|+halt" 4 (T.cont_space sel);
  let asn = T.assign ~id:"a" ~env:env2 ~next:sel () in
  (* 1 + |dom|(2) + select(4) *)
  check_int "assign chains" 7 (T.cont_space asn);
  let psh =
    T.push ~pending:0 ~remaining:[ (1, e); (2, e) ]
      ~evaluated:[ (0, T.Bool true) ] ~env:env2 ~next:T.Halt ()
  in
  (* 1 + m(2) + n(1) + |dom|(2) + halt(1) *)
  check_int "push" 7 (T.cont_space psh);
  let cal = T.call ~vals:[ T.Nil; T.Nil; T.Nil ] ~next:T.Halt () in
  check_int "call 1+m+halt" 5 (T.cont_space cal);
  check_int "return" 4 (T.cont_space (T.return_gc ~env:env2 ~next:T.Halt ()));
  check_int "return_stack" 4
    (T.cont_space (T.return_stack ~dels:[ 5 ] ~env:env2 ~next:T.Halt ()));
  (* escapes carry their continuation's space *)
  check_int "escape" 8 (T.value_space (T.Escape (7, asn)))

(* --- store accounting --- *)

let test_store_tracking () =
  let s = Store.empty in
  check_int "empty" 0 (Store.space s);
  let s, l1 = Store.alloc s (T.Int (B.of_int 1024)) in
  check_int "alloc adds 1+space" 13 (Store.space s);
  let s, _l2 = Store.alloc s T.Nil in
  check_int "second cell" 15 (Store.space s);
  let s = Store.set s l1 T.Nil in
  check_int "overwrite adjusts" 4 (Store.space s);
  let s = Store.remove_all s [ l1 ] in
  check_int "removal subtracts" 2 (Store.space s);
  check_int "cardinal" 1 (Store.cardinal s)

let test_store_set_unallocated () =
  Alcotest.check_raises "set unallocated"
    (Invalid_argument "Store.set: unallocated location") (fun () ->
      ignore (Store.set Store.empty 99 T.Nil))

let test_env_cardinal () =
  let e = Env.empty in
  check_int "empty" 0 (Env.cardinal e);
  let e = Env.add "x" 0 e in
  let e = Env.add "y" 1 e in
  check_int "two" 2 (Env.cardinal e);
  let e = Env.add "x" 2 e in
  check_int "rebind same dom" 2 (Env.cardinal e);
  let r = Env.restrict e (A.Iset.singleton "y") in
  check_int "restrict" 1 (Env.cardinal r);
  Alcotest.(check (option int)) "restrict keeps" (Some 1) (Env.find_opt "y" r);
  Alcotest.(check (option int)) "restrict drops" None (Env.find_opt "x" r)

let test_env_rebase_transparent () =
  let e = Env.add_list [ ("a", 1); ("b", 2) ] Env.empty in
  let r = Env.rebase e in
  check_int "same cardinal" (Env.cardinal e) (Env.cardinal r);
  Alcotest.(check (option int)) "lookup a" (Some 1) (Env.find_opt "a" r);
  let r2 = Env.add "a" 9 r in
  Alcotest.(check (option int)) "overlay shadows base" (Some 9) (Env.find_opt "a" r2);
  check_int "shadowing keeps |dom|" 2 (Env.cardinal r2);
  (* shadow-aware iteration sees each identifier once *)
  let seen = ref [] in
  Env.iter (fun x l -> seen := (x, l) :: !seen) r2;
  Alcotest.(check int) "two bindings" 2 (List.length !seen);
  Alcotest.(check bool) "a maps to 9" true (List.mem ("a", 9) !seen)

(* --- linked model (Figure 8) --- *)

let test_linked_counts_shared_bindings_once () =
  let env = Env.add_list [ ("a", 0); ("b", 1); ("c", 2) ] Env.empty in
  let lam = { A.params = []; rest = None; body = A.Quote (A.C_int B.zero) } in
  let store = Store.empty in
  let store, t1 = Store.alloc store T.Unspecified in
  let store, t2 = Store.alloc store T.Unspecified in
  let store, _c1 = Store.alloc store (T.Closure (t1, lam, env)) in
  let store, _c2 = Store.alloc store (T.Closure (t2, lam, env)) in
  let linked =
    Space.linked_config_space ~control:(`Expr (A.Var "x")) ~env:Env.empty
      ~cont:T.Halt ~store
  in
  (* words: halt(1) + 4 cells (1 each) + 2 tags (1 each) + 2 closures
     (1 each) = 9; bindings: the 3 shared ones counted once *)
  check_int "shared env once" 12 linked;
  (* flat counts the environment per closure: store space is
     4 cells + tags 2*1 + closures 2*(1+3) = 4 + 2 + 8 = 14 *)
  check_int "flat copies" 14 (Store.space store)

let test_linked_leq_flat_on_runs () =
  (* U_X <= S_X pointwise (§13), checked on real measured runs *)
  List.iter
    (fun (variant, src) ->
      let t = M.create_with (M.Config.make ~variant ()) in
      let r =
        M.exec_string
          ~opts:(M.Run_opts.make ~measure:[ SM.Flat; SM.Linked ] ())
          t src
      in
      match (r.M.outcome, M.peak_linked r) with
      | M.Done _, Some u ->
          Alcotest.(check bool)
            (M.variant_name variant ^ " U <= S")
            true
            (u <= M.peak_space r)
      | _ -> Alcotest.fail "expected measured Done")
    [
      (M.Tail, "(define (f n) (if (zero? n) 0 (f (- n 1)))) (f 30)");
      (M.Gc, "(define (f n) (if (zero? n) 0 (f (- n 1)))) (f 30)");
      (M.Tail, "(map (lambda (x) (lambda () x)) '(1 2 3 4))");
      (M.Evlis, "(let ((v (make-vector 10))) (vector-length v))");
    ]

(* --- measured hierarchy --- *)

let space_of variant src =
  let t = M.create_with (M.Config.make ~variant ()) in
  let r = M.exec_string t src in
  match r.M.outcome with
  | M.Done _ -> M.space_consumption r
  | M.Stuck m -> Alcotest.failf "stuck: %s" m
  | M.Aborted { reason; _ } ->
      Alcotest.failf "aborted: %s"
        (Tailspace_resilience.Resilience.abort_reason_message reason)

let test_theorem24_chain_samples () =
  List.iter
    (fun src ->
      let s v = space_of v src in
      let tail = s M.Tail
      and gc = s M.Gc
      and stack = s M.Stack
      and evlis = s M.Evlis
      and free = s M.Free
      and sfs = s M.Sfs in
      Alcotest.(check bool) "tail<=gc" true (tail <= gc);
      Alcotest.(check bool) "gc<=stack" true (gc <= stack);
      Alcotest.(check bool) "sfs<=evlis" true (sfs <= evlis);
      Alcotest.(check bool) "evlis<=tail" true (evlis <= tail);
      Alcotest.(check bool) "sfs<=free" true (sfs <= free);
      Alcotest.(check bool) "free<=tail" true (free <= tail))
    [
      "(define (f n) (if (zero? n) 0 (f (- n 1)))) (f 25)";
      "(define (sum l) (if (null? l) 0 (+ (car l) (sum (cdr l))))) (sum '(1 2 3 4))";
      "(map (lambda (x) (* x x)) '(1 2 3))";
      "(call/cc (lambda (k) (k 1)))";
    ]

let test_space_consumption_includes_program_size () =
  let t = M.create_with M.Config.default in
  let e = E.expression_of_string "(+ 1 2)" in
  let r = M.exec t e in
  Alcotest.(check int) "|P|" (A.size e) r.M.program_size;
  Alcotest.(check int) "S = |P| + peak" (r.M.program_size + M.peak_space r)
    (M.space_consumption r)

let test_proper_tail_recursion_constant_space () =
  (* the defining property: iteration in constant space under I_tail *)
  let s n =
    space_of M.Tail
      (Printf.sprintf "(define (loop n) (if (zero? n) 'ok (loop (- n 1)))) (loop %d)" n)
  in
  let s100 = s 100 and s10000 = s 10000 in
  Alcotest.(check bool)
    (Printf.sprintf "S(10000)=%d within 2%% of S(100)=%d" s10000 s100)
    true
    (float_of_int s10000 <= 1.02 *. float_of_int s100)

let test_improper_linear_space () =
  let s n =
    space_of M.Gc
      (Printf.sprintf "(define (loop n) (if (zero? n) 'ok (loop (- n 1)))) (loop %d)" n)
  in
  let s100 = s 100 and s400 = s 400 in
  Alcotest.(check bool) "gc grows ~4x" true
    (float_of_int s400 >= 2.5 *. float_of_int s100)

let test_exact_vs_approximate_policy () =
  let t = M.create_with M.Config.default in
  let src = "(define (build n) (if (zero? n) '() (cons n (build (- n 1))))) (length (build 50))" in
  let exact = M.exec_string ~opts:(M.Run_opts.make ~gc_policy:`Exact ()) t src in
  let approx =
    M.exec_string ~opts:(M.Run_opts.make ~gc_policy:`Approximate ()) t src
  in
  Alcotest.(check bool) "approx is a lower bound" true
    (M.peak_space approx <= M.peak_space exact);
  Alcotest.(check bool) "within documented slack" true
    (float_of_int (M.peak_space exact)
    <= (1.125 *. float_of_int (M.peak_space approx)) +. 200.)

let () =
  Alcotest.run "space"
    [
      ( "figure7",
        [
          Alcotest.test_case "atoms" `Quick test_value_space_atoms;
          Alcotest.test_case "numbers" `Quick test_value_space_numbers;
          Alcotest.test_case "structures" `Quick test_value_space_structures;
          Alcotest.test_case "continuations" `Quick test_cont_space;
        ] );
      ( "store-env",
        [
          Alcotest.test_case "store tracking" `Quick test_store_tracking;
          Alcotest.test_case "store set errors" `Quick test_store_set_unallocated;
          Alcotest.test_case "env cardinal" `Quick test_env_cardinal;
          Alcotest.test_case "env rebase" `Quick test_env_rebase_transparent;
        ] );
      ( "figure8",
        [
          Alcotest.test_case "shared bindings once" `Quick
            test_linked_counts_shared_bindings_once;
          Alcotest.test_case "U <= S" `Quick test_linked_leq_flat_on_runs;
        ] );
      ( "hierarchy",
        [
          Alcotest.test_case "theorem 24 samples" `Quick test_theorem24_chain_samples;
          Alcotest.test_case "S includes |P|" `Quick
            test_space_consumption_includes_program_size;
          Alcotest.test_case "tail: constant-space loop" `Quick
            test_proper_tail_recursion_constant_space;
          Alcotest.test_case "gc: linear-space loop" `Quick test_improper_linear_space;
          Alcotest.test_case "gc policies" `Quick test_exact_vs_approximate_policy;
        ] );
    ]
