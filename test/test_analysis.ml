(* Static tail-call analysis (Definitions 1-2, Figure 2). *)

module TC = Tailspace_analysis.Tail_calls

let counts src = TC.analyze_source src

let check name src ~calls ~tail ~self =
  let c = counts src in
  Alcotest.(check int) (name ^ ": calls") calls c.TC.calls;
  Alcotest.(check int) (name ^ ": tail") tail c.TC.tail_calls;
  Alcotest.(check int) (name ^ ": self") self c.TC.self_tail_calls

(* Note: program assembly adds two bookkeeping calls per top-level
   define corpus (the letrec lambda application and one seq step), and
   one of them is in tail position; counts below include them. *)

let test_simple_loop () =
  (* loop body: (zero? n) non-tail, (- n 1) non-tail, (loop ...) tail+self;
     wrapper: letrec call + seq call (one counted tail) *)
  check "countdown" "(define (loop n) (if (zero? n) 0 (loop (- n 1)))) loop"
    ~calls:5 ~tail:1 ~self:1

let test_non_tail_recursion () =
  (* (fact (- n 1)) sits under *, so it is not a tail call *)
  check "fact" "(define (fact n) (if (zero? n) 1 (* n (fact (- n 1))))) fact"
    ~calls:6 ~tail:1 ~self:0

let test_find_leftmost () =
  (* the paper's §4 example: three source tail calls, one of them a
     self-tail call; the let and define encodings add calls *)
  let src =
    "(define (find-leftmost predicate? tree fail)
       (if (leaf? tree)
           (if (predicate? tree) tree (fail))
           (let ((continuation
                  (lambda () (find-leftmost predicate? (right-child tree) fail))))
             (find-leftmost predicate? (left-child tree) continuation))))
     find-leftmost"
  in
  let c = counts src in
  Alcotest.(check int) "self-tail = 1 (the last call)" 1 c.TC.self_tail_calls;
  Alcotest.(check bool) "tail calls > self-tail calls" true
    (c.TC.tail_calls > c.TC.self_tail_calls);
  (* the lambda-wrapped find-leftmost call is a tail call of the
     continuation closure, not of find-leftmost itself *)
  Alcotest.(check int) "call count" 10 c.TC.calls

let test_mutual_recursion_not_self () =
  let c =
    counts
      "(define (e? n) (if (zero? n) #t (o? (- n 1))))
       (define (o? n) (if (zero? n) #f (e? (- n 1))))
       e?"
  in
  Alcotest.(check int) "mutual tail calls" 2 c.TC.tail_calls;
  Alcotest.(check int) "no self-tail" 0 c.TC.self_tail_calls

let test_if_arms_are_tail () =
  let c =
    counts "(define (f x) (if (p x) (g x) (h x))) f"
  in
  (* (p x) non-tail; (g x) and (h x) tail *)
  Alcotest.(check int) "two tail arms" 2 c.TC.tail_calls

let test_operands_not_tail () =
  let c = counts "(define (f x) (g (h x) (k x))) f" in
  (* (g ...) tail; (h x), (k x) operands *)
  Alcotest.(check int) "one tail" 1 c.TC.tail_calls;
  Alcotest.(check int) "three source calls + 2 wrapper" 5 c.TC.calls

let test_let_transparent_for_self () =
  (* a self call under a let binding form is still a self-tail call *)
  let c =
    counts
      "(define (f n) (let ((m (- n 1))) (if (zero? m) 0 (f m)))) f"
  in
  Alcotest.(check int) "self through let" 1 c.TC.self_tail_calls

let test_lambda_breaks_self () =
  (* a tail call to f from inside an escaping lambda is not self for f *)
  let c = counts "(define (f n) (lambda () (f n))) f" in
  Alcotest.(check int) "not self" 0 c.TC.self_tail_calls;
  Alcotest.(check int) "but tail (in the inner lambda)" 1 c.TC.tail_calls

let test_known_calls () =
  let c = counts "(define (f x) x) (f ((lambda (y) y) 1))" in
  (* f known (defined), literal lambda known, letrec/seq wrappers known *)
  Alcotest.(check bool) "knowns found" true (c.TC.known_calls >= 3)

let test_set_rebinding_tracked () =
  let c =
    counts
      "(define (f n) (if (zero? n) 0 (f (- n 1))))
       f"
  in
  Alcotest.(check int) "define via set! recognized" 1 c.TC.self_tail_calls

let test_cond_expansion_tail_positions () =
  (* cond arms are tail positions *)
  let c =
    counts
      "(define (classify n)
         (cond ((zero? n) (zero-case))
               ((odd? n) (odd-case n))
               (else (classify (- n 2)))))
       classify"
  in
  Alcotest.(check int) "three tail arms" 3 c.TC.tail_calls;
  Alcotest.(check int) "else self-tail" 1 c.TC.self_tail_calls

let test_and_or_tail_shape () =
  (* (and a (f)) puts (f) in tail position; (or (f) b) does not *)
  let c1 = counts "(define (f x) (and (p x) (f (- x 1)))) f" in
  Alcotest.(check int) "and last is self-tail" 1 c1.TC.self_tail_calls;
  let c2 = counts "(define (f x) (or (f (- x 1)) (p x))) f" in
  Alcotest.(check int) "or head not tail" 0 c2.TC.self_tail_calls

let test_percent () =
  Alcotest.(check (float 0.001)) "50%" 50.0 (TC.percent 1 2);
  Alcotest.(check (float 0.001)) "0 of 0" 0.0 (TC.percent 0 0)

let test_totals_add () =
  let a = counts "(f x)" and b = counts "(g y)" in
  let t = TC.add a b in
  Alcotest.(check int) "sums calls" (a.TC.calls + b.TC.calls) t.TC.calls;
  Alcotest.(check int) "sums tails" (a.TC.tail_calls + b.TC.tail_calls) t.TC.tail_calls

let test_corpus_wide_claim () =
  (* Figure 2's point: tail calls are much more common than self-tail
     calls. Verified over our corpus as a whole. *)
  let total =
    List.fold_left
      (fun acc (e : Tailspace_corpus.Corpus.entry) ->
        TC.add acc (TC.analyze (Tailspace_corpus.Corpus.program e)))
      TC.zero Tailspace_corpus.Corpus.all
  in
  Alcotest.(check bool) "tail >= 3x self-tail" true
    (total.TC.tail_calls >= 3 * total.TC.self_tail_calls);
  Alcotest.(check bool) "tail calls are a sizable fraction" true
    (TC.percent total.TC.tail_calls total.TC.calls > 15.)

(* --- the static annotation pass (Annot) --- *)

module An = Tailspace_analysis.Annot
module A = Tailspace_ast.Ast
module B = Tailspace_bignum.Bignum
module M = Tailspace_core.Machine
module R = Tailspace_harness.Runner
module Pool = Tailspace_parallel.Pool
module S = Tailspace_engines.Secd
module E = Tailspace_expander.Expand
module Json = Tailspace_telemetry.Telemetry.Json

(* possibly-open expressions: free variables are the interesting case,
   so unlike test_engines' generator this one deliberately produces
   unbound identifiers alongside lambda-bound ones *)
let gen_annot_expr =
  let open QCheck.Gen in
  let const =
    map (fun n -> A.Quote (A.C_int (B.of_int n))) (int_range (-9) 9)
  in
  let free = map (fun v -> A.Var v) (oneofl [ "a"; "b"; "c"; "d" ]) in
  let bound env =
    if env = [] then free
    else
      map
        (fun i -> A.Var (List.nth env (i mod List.length env)))
        (int_range 0 50)
  in
  let fresh = map (fun i -> Printf.sprintf "x%d" i) (int_range 0 6) in
  let rec go env depth =
    if depth = 0 then oneof [ const; free; bound env ]
    else
      let sub = go env (depth - 1) in
      frequency
        [
          (2, const);
          (2, free);
          (2, bound env);
          ( 3,
            map2
              (fun f args -> A.Call (f, args))
              sub
              (list_size (int_range 0 3) sub) );
          (2, map3 (fun a b c -> A.If (a, b, c)) sub sub sub);
          (1, fresh >>= fun x -> map (fun e -> A.Set (x, e)) sub);
          ( 3,
            fresh >>= fun x ->
            map
              (fun body -> A.Lambda { params = [ x ]; rest = None; body })
              (go (x :: env) (depth - 1)) );
        ]
  in
  go [] 5

let arb_annot = QCheck.make ~print:A.to_string gen_annot_expr

let iter_subterms f e =
  let rec go e =
    f e;
    match e with
    | A.Quote _ | A.Var _ -> ()
    | A.Lambda { body; _ } -> go body
    | A.If (e0, e1, e2) ->
        go e0;
        go e1;
        go e2
    | A.Set (_, e0) -> go e0
    | A.Call (e0, es) ->
        go e0;
        List.iter go es
  in
  go e

(* Every recorded subterm's precomputed set has exactly the elements the
   reference computation assigns it. *)
let prop_fv_agrees =
  QCheck.Test.make ~name:"Annot.free_vars = Ast.free_vars on every subterm"
    ~count:300 arb_annot (fun e ->
      let t = An.create () in
      An.record t e;
      let ok = ref true in
      iter_subterms
        (fun sub ->
          match An.free_vars t sub with
          | None -> ok := false
          | Some s -> if not (A.Iset.equal s (A.free_vars sub)) then ok := false)
        e;
      !ok)

(* Hash-consing: interning a freshly built structurally-equal set must
   return the physically identical representative the pass stored, so
   the machines' set comparisons are O(1) pointer tests. *)
let prop_interned_shared =
  QCheck.Test.make ~name:"interned free-variable sets physically shared"
    ~count:300 arb_annot (fun e ->
      let t = An.create () in
      An.record t e;
      let ok = ref true in
      iter_subterms
        (fun sub ->
          match An.free_vars t sub with
          | None -> ok := false
          | Some s ->
              (* rebuild the set from scratch to defeat Ast's memoizer *)
              let fresh = A.Iset.of_list (A.Iset.elements (A.free_vars sub)) in
              if not (An.intern t fresh == s) then ok := false)
        e;
      (* recording is idempotent: a second pass over the same (physically
         identical) tree adds no nodes and interns no new sets *)
      let nodes = An.nodes t and sets = An.distinct_sets t in
      An.record t e;
      if An.nodes t <> nodes || An.distinct_sets t <> sets then ok := false;
      !ok)

(* The SECD compiler must emit the same instruction stream whether tail
   positions come from the table or the structural recursion. *)
let prop_secd_compile_equal =
  QCheck.Test.make ~name:"SECD compile unchanged by annotations" ~count:300
    arb_annot (fun e ->
      let t = An.create () in
      An.record t e;
      S.compile e = S.compile ~annot:t e)

(* The end-to-end invariance the oracle enforces, at the sweep level:
   annotated and unannotated measurements serialize byte-identically,
   serially and through a 4-domain pool. *)
let test_annot_sweep_identical () =
  let program =
    E.program_of_string
      "(define (count n) (if (zero? n) 0 (count (- n 1)))) count"
  in
  let ns = [ 3; 9; 27 ] in
  let serialize ms =
    String.concat "\n"
      (List.map (fun m -> Json.to_string (R.measurement_to_json m)) ms)
  in
  List.iter
    (fun variant ->
      let sweep ?pool annotate =
        serialize
          (R.sweep ?pool
             ~config:(M.Config.make ~variant ~annotate ())
             ~program ~ns ())
      in
      let name = M.variant_name variant in
      let baseline = sweep true in
      Alcotest.(check string)
        (name ^ ": jobs=1 annotated = unannotated")
        baseline (sweep false);
      Pool.with_pool ~jobs:4 (fun pool ->
          Alcotest.(check string)
            (name ^ ": jobs=4 annotated")
            baseline (sweep ?pool true);
          Alcotest.(check string)
            (name ^ ": jobs=4 unannotated")
            baseline (sweep ?pool false)))
    [ M.Sfs; M.Free; M.Tail ]

let () =
  Alcotest.run "analysis"
    [
      ( "definitions",
        [
          Alcotest.test_case "simple loop" `Quick test_simple_loop;
          Alcotest.test_case "non-tail recursion" `Quick test_non_tail_recursion;
          Alcotest.test_case "find-leftmost (paper §4)" `Quick test_find_leftmost;
          Alcotest.test_case "mutual recursion" `Quick test_mutual_recursion_not_self;
          Alcotest.test_case "if arms" `Quick test_if_arms_are_tail;
          Alcotest.test_case "operands" `Quick test_operands_not_tail;
          Alcotest.test_case "let transparent" `Quick test_let_transparent_for_self;
          Alcotest.test_case "lambda breaks self" `Quick test_lambda_breaks_self;
          Alcotest.test_case "known calls" `Quick test_known_calls;
          Alcotest.test_case "set! tracking" `Quick test_set_rebinding_tracked;
          Alcotest.test_case "cond arms" `Quick test_cond_expansion_tail_positions;
          Alcotest.test_case "and/or shape" `Quick test_and_or_tail_shape;
        ] );
      ( "aggregation",
        [
          Alcotest.test_case "percent" `Quick test_percent;
          Alcotest.test_case "totals" `Quick test_totals_add;
          Alcotest.test_case "figure 2 shape over corpus" `Quick test_corpus_wide_claim;
        ] );
      ( "annotation-pass",
        [
          QCheck_alcotest.to_alcotest prop_fv_agrees;
          QCheck_alcotest.to_alcotest prop_interned_shared;
          QCheck_alcotest.to_alcotest prop_secd_compile_equal;
          Alcotest.test_case "sweeps byte-identical, jobs 1 and 4" `Quick
            test_annot_sweep_identical;
        ] );
    ]
