(* Unit and property tests for the bignum substrate. The property tests
   use native ints as the oracle on ranges where native arithmetic is
   exact, plus algebraic laws on genuinely large values. *)

module B = Tailspace_bignum.Bignum

let check_str = Alcotest.(check string)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let bs z = B.to_string z
let bi = B.of_int

(* --- units --- *)

let test_constants () =
  check_str "zero" "0" (bs B.zero);
  check_str "one" "1" (bs B.one);
  check_str "minus-one" "-1" (bs B.minus_one);
  check_bool "zero is zero" true (B.is_zero B.zero);
  check_bool "one not zero" false (B.is_zero B.one)

let test_of_int_roundtrip () =
  List.iter
    (fun n -> check_int (string_of_int n) n (B.to_int_exn (bi n)))
    [ 0; 1; -1; 42; -42; 1 lsl 29; (1 lsl 30) + 7; max_int; -max_int ]

let test_min_int () =
  check_str "min_int prints" (string_of_int min_int) (bs (bi min_int))

let test_of_string () =
  check_str "simple" "12345" (bs (B.of_string "12345"));
  check_str "negative" "-987" (bs (B.of_string "-987"));
  check_str "plus sign" "7" (bs (B.of_string "+7"));
  check_str "leading zeros" "42" (bs (B.of_string "00042"));
  check_str "huge"
    "123456789012345678901234567890123456789"
    (bs (B.of_string "123456789012345678901234567890123456789"))

let test_of_string_errors () =
  let bad s =
    Alcotest.check_raises s (Invalid_argument "Bignum.of_string: empty string")
      (fun () -> ignore (B.of_string s))
  in
  bad "";
  Alcotest.(check bool)
    "junk raises" true
    (match B.of_string "12x3" with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool)
    "bare sign raises" true
    (match B.of_string "-" with exception Invalid_argument _ -> true | _ -> false)

let test_addition_carries () =
  (* crosses the 2^30 limb boundary *)
  let a = B.of_string "1073741823" in
  check_str "limb carry" "1073741824" (bs (B.add a B.one));
  check_str "big sum"
    "2000000000000000000000000000000"
    (bs (B.add (B.of_string "999999999999999999999999999999")
           (B.of_string "1000000000000000000000000000001")))

let test_subtraction_signs () =
  check_str "5-7" "-2" (bs (B.sub (bi 5) (bi 7)));
  check_str "-5-7" "-12" (bs (B.sub (bi (-5)) (bi 7)));
  check_str "borrow" "999999999"
    (bs (B.sub (B.of_string "1000000000000") (B.of_string "999000000001")))

let test_multiplication () =
  check_str "fact 20" "2432902008176640000"
    (bs (List.fold_left (fun acc i -> B.mul acc (bi i)) B.one
           (List.init 20 (fun i -> i + 1))));
  check_str "fact 30" "265252859812191058636308480000000"
    (bs (List.fold_left (fun acc i -> B.mul acc (bi i)) B.one
           (List.init 30 (fun i -> i + 1))));
  check_str "neg * pos" "-6" (bs (B.mul (bi (-2)) (bi 3)));
  check_str "neg * neg" "6" (bs (B.mul (bi (-2)) (bi (-3))));
  check_str "by zero" "0" (bs (B.mul (bi 12345) B.zero))

let test_pow () =
  check_str "2^100" "1267650600228229401496703205376" (bs (B.pow (bi 2) 100));
  check_str "x^0" "1" (bs (B.pow (bi 999) 0));
  check_str "(-2)^3" "-8" (bs (B.pow (bi (-2)) 3));
  Alcotest.check_raises "negative exponent" (Invalid_argument "Bignum.pow")
    (fun () -> ignore (B.pow (bi 2) (-1)))

let test_division () =
  let q, r = B.divmod (B.of_string "10000000000000000000000") (bi 7) in
  check_str "quot" "1428571428571428571428" (bs q);
  check_str "rem" "4" (bs r);
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (B.divmod B.one B.zero))

let test_modulo_signs () =
  (* Scheme: remainder has the dividend's sign, modulo the divisor's. *)
  check_str "rem -7 3" "-1" (bs (B.remainder (bi (-7)) (bi 3)));
  check_str "mod -7 3" "2" (bs (B.modulo (bi (-7)) (bi 3)));
  check_str "rem 7 -3" "1" (bs (B.remainder (bi 7) (bi (-3))));
  check_str "mod 7 -3" "-2" (bs (B.modulo (bi 7) (bi (-3))));
  check_str "mod -7 -3" "-1" (bs (B.modulo (bi (-7)) (bi (-3))))

let test_compare () =
  check_bool "lt" true (B.compare (bi 3) (bi 5) < 0);
  check_bool "gt mag" true
    (B.compare (B.of_string "100000000000000000000") (bi max_int) > 0);
  check_bool "neg lt pos" true (B.compare (bi (-1)) B.zero < 0);
  check_bool "neg order" true (B.compare (bi (-10)) (bi (-2)) < 0);
  check_str "min" "-5" (bs (B.min (bi (-5)) (bi 3)));
  check_str "max" "3" (bs (B.max (bi (-5)) (bi 3)))

let test_bit_length () =
  check_int "bits 0" 0 (B.bit_length B.zero);
  check_int "bits 1" 1 (B.bit_length B.one);
  check_int "bits 255" 8 (B.bit_length (bi 255));
  check_int "bits 256" 9 (B.bit_length (bi 256));
  check_int "bits -256" 9 (B.bit_length (bi (-256)));
  check_int "bits 2^100" 101 (B.bit_length (B.pow (bi 2) 100))

let test_shifts () =
  check_str "1 << 100" (bs (B.pow (bi 2) 100)) (bs (B.shift_left B.one 100));
  check_str "2^100 >> 99" "2" (bs (B.shift_right (B.pow (bi 2) 100) 99));
  check_str "shift right past end" "0" (bs (B.shift_right (bi 5) 10));
  check_str "neg shift" "-4" (bs (B.shift_left (bi (-1)) 2))

let test_to_int_overflow () =
  Alcotest.(check (option int)) "2^80 no fit" None (B.to_int (B.pow (bi 2) 80));
  Alcotest.(check (option int)) "42 fits" (Some 42) (B.to_int (bi 42))

let test_succ_pred () =
  check_str "succ -1" "0" (bs (B.succ B.minus_one));
  check_str "pred 0" "-1" (bs (B.pred B.zero));
  check_str "succ 2^30-1" "1073741824" (bs (B.succ (bi ((1 lsl 30) - 1))))

let test_equal_structural () =
  (* canonical representation: equal numbers are structurally equal *)
  check_bool "sub then add" true
    (B.equal (bi 100) (B.add (B.sub (B.of_string "1000000000000000000000") (B.of_string "999999999999999999900"))
                         B.zero))

let test_min_int_roundtrip () =
  (* |min_int| = 2^62 is the one 63-bit magnitude that fits a native
     int; the old 62-bit guard in to_int rejected it *)
  Alcotest.(check (option int))
    "of_int min_int |> to_int" (Some min_int)
    (B.to_int (bi min_int));
  check_int "to_int_exn min_int" min_int (B.to_int_exn (bi min_int));
  Alcotest.(check (option int))
    "min_int - 1 does not fit" None
    (B.to_int (B.pred (bi min_int)));
  Alcotest.(check (option int))
    "|min_int| positive does not fit" None
    (B.to_int (B.abs (bi min_int)))

let test_is_even () =
  List.iter
    (fun n ->
      check_bool (string_of_int n) (n mod 2 = 0) (B.is_even (bi n)))
    [ 0; 1; 2; -1; -2; 7; -7; max_int; min_int ];
  check_bool "big even" true
    (B.is_even (B.mul (B.pow (bi 10) 40) (bi 2)));
  check_bool "big odd" false
    (B.is_even (B.succ (B.mul (B.pow (bi 10) 40) (bi 2))))

let test_hash_high_limbs () =
  (* values differing only in high limbs must hash apart (the old
     Hashtbl.hash sampled a bounded prefix of the limb array) *)
  let x = B.shift_left B.one 900 in
  let y = B.shift_left B.one 930 in
  check_bool "2^900 vs 2^930" true (B.hash x <> B.hash y);
  check_bool "sign matters" true (B.hash x <> B.hash (B.neg x))

let test_fixnum_representation () =
  check_bool "small is tagged" true (B.is_fixnum (bi 42));
  check_bool "2^100 is limbs" false (B.is_fixnum (B.pow (bi 2) 100));
  B.set_fixnums false;
  Fun.protect
    ~finally:(fun () -> B.set_fixnums true)
    (fun () ->
      let z = B.of_string "12345678901234567890" in
      B.set_fixnums true;
      let z' = B.of_string "12345678901234567890" in
      (* mixed representations of the same number are indistinguishable *)
      check_bool "equal across reprs" true (B.equal z z');
      check_int "hash across reprs" (B.hash z) (B.hash z');
      check_str "print across reprs" (bs z) (bs z');
      check_int "bit_length across reprs" (B.bit_length z) (B.bit_length z'))

(* Temporarily force the sub-quadratic paths to engage at tiny sizes so
   QCheck inputs cross every threshold, restoring the tuned defaults
   afterwards. *)
let with_thresholds f =
  let k = !B.Internal.karatsuba_threshold
  and ts = !B.Internal.to_string_dc_threshold
  and os = !B.Internal.of_string_dc_threshold in
  B.Internal.karatsuba_threshold := 4;
  B.Internal.to_string_dc_threshold := 2;
  B.Internal.of_string_dc_threshold := 24;
  Fun.protect
    ~finally:(fun () ->
      B.Internal.karatsuba_threshold := k;
      B.Internal.to_string_dc_threshold := ts;
      B.Internal.of_string_dc_threshold := os)
    f

(* --- properties --- *)

let small_int = QCheck.int_range (-100000) 100000

let prop_matches_native =
  QCheck.Test.make ~name:"add/sub/mul match native ints" ~count:500
    (QCheck.pair small_int small_int) (fun (a, b) ->
      B.to_int_exn (B.add (bi a) (bi b)) = a + b
      && B.to_int_exn (B.sub (bi a) (bi b)) = a - b
      && B.to_int_exn (B.mul (bi a) (bi b)) = a * b)

let prop_divmod_native =
  QCheck.Test.make ~name:"divmod matches native quot/rem" ~count:500
    (QCheck.pair small_int small_int) (fun (a, b) ->
      QCheck.assume (b <> 0);
      B.to_int_exn (B.quotient (bi a) (bi b)) = a / b
      && B.to_int_exn (B.remainder (bi a) (bi b)) = a mod b)

let big =
  QCheck.map
    (fun (a, b, c) -> B.add (B.mul (bi a) (B.pow (bi 2) 80)) (B.mul (bi b) (bi c)))
    (QCheck.triple small_int small_int small_int)

let prop_ring_laws =
  QCheck.Test.make ~name:"commutativity/associativity/distributivity" ~count:200
    (QCheck.triple big big big) (fun (a, b, c) ->
      B.equal (B.add a b) (B.add b a)
      && B.equal (B.mul a b) (B.mul b a)
      && B.equal (B.add (B.add a b) c) (B.add a (B.add b c))
      && B.equal (B.mul (B.mul a b) c) (B.mul a (B.mul b c))
      && B.equal (B.mul a (B.add b c)) (B.add (B.mul a b) (B.mul a c)))

let prop_divmod_invariant =
  QCheck.Test.make ~name:"a = q*b + r with |r| < |b|, sign(r) = sign(a)"
    ~count:300 (QCheck.pair big big) (fun (a, b) ->
      QCheck.assume (not (B.is_zero b));
      let q, r = B.divmod a b in
      B.equal a (B.add (B.mul q b) r)
      && B.compare (B.abs r) (B.abs b) < 0
      && (B.is_zero r || B.sign r = B.sign a))

let prop_string_roundtrip =
  QCheck.Test.make ~name:"to_string/of_string roundtrip" ~count:300 big
    (fun z -> B.equal z (B.of_string (B.to_string z)))

let prop_compare_total_order =
  QCheck.Test.make ~name:"compare is antisymmetric and transitive-ish"
    ~count:300 (QCheck.triple big big big) (fun (a, b, c) ->
      compare (B.compare a b) (-(B.compare b a)) = 0
      && (not (B.compare a b <= 0 && B.compare b c <= 0) || B.compare a c <= 0))

let prop_shift_is_pow2 =
  QCheck.Test.make ~name:"shift_left = multiply by 2^k" ~count:200
    (QCheck.pair big (QCheck.int_range 0 120)) (fun (z, k) ->
      B.equal (B.shift_left z k) (B.mul z (B.pow (bi 2) k)))

let prop_bit_length_bound =
  QCheck.Test.make ~name:"2^(bits-1) <= |z| < 2^bits" ~count:200 big (fun z ->
      QCheck.assume (not (B.is_zero z));
      let bits = B.bit_length z in
      B.compare (B.abs z) (B.pow (bi 2) bits) < 0
      && B.compare (B.abs z) (B.pow (bi 2) (bits - 1)) >= 0)

(* --- differential properties: the sub-quadratic paths vs schoolbook --- *)

(* decimal strings up to ~360 digits: with the lowered thresholds these
   land on both sides of every split (Karatsuba, Algorithm D, d&c
   conversion), including the base cases *)
let huge =
  QCheck.make
    ~print:(fun s -> s)
    QCheck.Gen.(
      let* neg = bool in
      let* len = int_range 1 360 in
      let* first = int_range 1 9 in
      let* rest =
        string_size (return (len - 1)) ~gen:(map (fun d -> Char.chr (48 + d)) (int_bound 9))
      in
      return ((if neg then "-" else "") ^ string_of_int first ^ rest))

let prop_karatsuba_vs_schoolbook =
  QCheck.Test.make ~name:"karatsuba = schoolbook across the threshold"
    ~count:200 (QCheck.pair huge huge) (fun (sa, sb) ->
      with_thresholds (fun () ->
          let a = B.of_string sa and b = B.of_string sb in
          B.equal (B.mul a b) (B.Internal.mul_schoolbook a b)))

let prop_knuth_vs_schoolbook =
  QCheck.Test.make ~name:"algorithm D = schoolbook division, same contract"
    ~count:200 (QCheck.pair huge huge) (fun (sa, sb) ->
      with_thresholds (fun () ->
          let a = B.of_string sa and b = B.of_string sb in
          QCheck.assume (not (B.is_zero b));
          let q, r = B.divmod a b in
          let q', r' = B.Internal.divmod_schoolbook a b in
          B.equal q q' && B.equal r r'
          && B.equal a (B.add (B.mul q b) r)
          && B.compare (B.abs r) (B.abs b) < 0))

let prop_dc_conversion_vs_classic =
  QCheck.Test.make ~name:"d&c decimal conversion = classic, both directions"
    ~count:200 huge (fun s ->
      with_thresholds (fun () ->
          let z = B.of_string s in
          String.equal (B.to_string z) (B.Internal.to_string_classic z)
          && B.equal z (B.Internal.of_string_classic s)
          && B.equal z (B.of_string (B.to_string z))))

let prop_fixnum_invisible =
  QCheck.Test.make ~name:"fixnums on/off produce equal observables"
    ~count:200 (QCheck.pair huge huge) (fun (sa, sb) ->
      let run () =
        let a = B.of_string sa and b = B.of_string sb in
        let q, r =
          if B.is_zero b then (B.zero, B.zero) else B.divmod a b
        in
        (B.add a b, B.mul a b, q, r, B.hash a, B.to_string a, B.bit_length a)
      in
      let s1, m1, q1, r1, h1, t1, l1 = run () in
      B.set_fixnums false;
      let s2, m2, q2, r2, h2, t2, l2 =
        Fun.protect ~finally:(fun () -> B.set_fixnums true) run
      in
      B.equal s1 s2 && B.equal m1 m2 && B.equal q1 q2 && B.equal r1 r2
      && h1 = h2 && String.equal t1 t2 && l1 = l2)

let prop_is_even_matches_modulo =
  QCheck.Test.make ~name:"is_even = (modulo z 2 = 0), negatives included"
    ~count:300 huge (fun s ->
      let z = B.of_string s in
      B.is_even z = B.is_zero (B.modulo z (bi 2)))

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "bignum"
    [
      ( "units",
        [
          Alcotest.test_case "constants" `Quick test_constants;
          Alcotest.test_case "of_int roundtrip" `Quick test_of_int_roundtrip;
          Alcotest.test_case "min_int" `Quick test_min_int;
          Alcotest.test_case "of_string" `Quick test_of_string;
          Alcotest.test_case "of_string errors" `Quick test_of_string_errors;
          Alcotest.test_case "addition carries" `Quick test_addition_carries;
          Alcotest.test_case "subtraction signs" `Quick test_subtraction_signs;
          Alcotest.test_case "multiplication" `Quick test_multiplication;
          Alcotest.test_case "pow" `Quick test_pow;
          Alcotest.test_case "division" `Quick test_division;
          Alcotest.test_case "modulo signs" `Quick test_modulo_signs;
          Alcotest.test_case "compare" `Quick test_compare;
          Alcotest.test_case "bit_length" `Quick test_bit_length;
          Alcotest.test_case "shifts" `Quick test_shifts;
          Alcotest.test_case "to_int overflow" `Quick test_to_int_overflow;
          Alcotest.test_case "succ/pred" `Quick test_succ_pred;
          Alcotest.test_case "canonical equality" `Quick test_equal_structural;
          Alcotest.test_case "min_int roundtrip" `Quick test_min_int_roundtrip;
          Alcotest.test_case "is_even" `Quick test_is_even;
          Alcotest.test_case "hash high limbs" `Quick test_hash_high_limbs;
          Alcotest.test_case "fixnum representation" `Quick
            test_fixnum_representation;
        ] );
      ( "properties",
        q
          [
            prop_matches_native;
            prop_divmod_native;
            prop_ring_laws;
            prop_divmod_invariant;
            prop_string_roundtrip;
            prop_compare_total_order;
            prop_shift_is_pow2;
            prop_bit_length_bound;
          ] );
      ( "differential",
        q
          [
            prop_karatsuba_vs_schoolbook;
            prop_knuth_vs_schoolbook;
            prop_dc_conversion_vs_classic;
            prop_fixnum_invisible;
            prop_is_even_matches_modulo;
          ] );
    ]
