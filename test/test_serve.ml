(* The evaluation service: the framing layer against a hostile peer
   (truncated frames, oversized headers, garbage bytes, slow-loris),
   token buckets and fair admission on an explicit clock, the request
   codec, and an end-to-end daemon over a Unix socket surviving a
   poison mix. *)

module Json = Tailspace_telemetry.Telemetry.Json
module Res = Tailspace_resilience.Resilience
module Protocol = Tailspace_serve.Protocol
module Admission = Tailspace_serve.Admission
module Server = Tailspace_serve.Server

(* ------------------------------------------------------------------ *)
(* framing *)

let with_pair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let write_all fd s =
  let n = Unix.write_substring fd s 0 (String.length s) in
  Alcotest.(check int) "short write in test rig" (String.length s) n

let header len =
  let b = Bytes.create 4 in
  Bytes.set_int32_be b 0 (Int32.of_int len);
  Bytes.to_string b

let test_frame_roundtrip () =
  with_pair @@ fun a b ->
  let json =
    Json.Obj
      [ ("op", Json.Str "evaluate"); ("n", Json.Int 42); ("x", Json.Null) ]
  in
  Protocol.write_frame a json;
  match Protocol.read_frame b with
  | Ok j -> Alcotest.(check string) "roundtrip" (Json.to_string json) (Json.to_string j)
  | Error e -> Alcotest.failf "read failed: %s" (Protocol.read_error_message e)

let test_frame_clean_close () =
  with_pair @@ fun a b ->
  Unix.close a;
  match Protocol.read_frame b with
  | Error Protocol.Closed -> ()
  | Ok _ -> Alcotest.fail "expected Closed"
  | Error e -> Alcotest.failf "wrong error: %s" (Protocol.read_error_message e)

let test_frame_truncated () =
  with_pair @@ fun a b ->
  write_all a (header 100);
  write_all a "only ten b";
  Unix.close a;
  match Protocol.read_frame b with
  | Error Protocol.Truncated -> ()
  | Ok _ -> Alcotest.fail "expected Truncated"
  | Error e -> Alcotest.failf "wrong error: %s" (Protocol.read_error_message e)

let test_frame_oversized () =
  with_pair @@ fun a b ->
  write_all a (header (100 * 1024 * 1024));
  (match Protocol.read_frame ~max_frame:(1 lsl 20) b with
  | Error (Protocol.Oversized n) ->
      Alcotest.(check int) "declared length" (100 * 1024 * 1024) n
  | Ok _ -> Alcotest.fail "expected Oversized"
  | Error e -> Alcotest.failf "wrong error: %s" (Protocol.read_error_message e));
  (* a zero-length header is equally malformed *)
  with_pair @@ fun a b ->
  write_all a (header 0);
  match Protocol.read_frame b with
  | Error (Protocol.Oversized _) -> ()
  | Ok _ -> Alcotest.fail "expected Oversized on length 0"
  | Error e -> Alcotest.failf "wrong error: %s" (Protocol.read_error_message e)

let test_frame_garbage_payload () =
  with_pair @@ fun a b ->
  write_all a (header 7);
  write_all a "\x00\xffgarb)";
  match Protocol.read_frame b with
  | Error (Protocol.Bad_json _) -> ()
  | Ok _ -> Alcotest.fail "expected Bad_json"
  | Error e -> Alcotest.failf "wrong error: %s" (Protocol.read_error_message e)

let test_frame_slow_loris () =
  with_pair @@ fun a b ->
  (* a frame that starts but never finishes must time out on the
     frame clock, not hang *)
  write_all a (header 64);
  write_all a "{\"half\":";
  let t0 = Unix.gettimeofday () in
  match Protocol.read_frame ~frame_timeout_s:0.3 b with
  | Error Protocol.Timed_out ->
      Alcotest.(check bool)
        "gave up promptly" true
        (Unix.gettimeofday () -. t0 < 2.)
  | Ok _ -> Alcotest.fail "expected Timed_out"
  | Error e -> Alcotest.failf "wrong error: %s" (Protocol.read_error_message e)

let test_frame_give_up () =
  with_pair @@ fun _a b ->
  (* an idle connection wakes up when the give-up predicate fires (the
     server's drain signal), without any bytes arriving *)
  let t0 = Unix.gettimeofday () in
  match
    Protocol.read_frame ~give_up:(fun () -> Unix.gettimeofday () -. t0 > 0.15) b
  with
  | Error Protocol.Idle_closed -> ()
  | Ok _ -> Alcotest.fail "expected Idle_closed"
  | Error e -> Alcotest.failf "wrong error: %s" (Protocol.read_error_message e)

(* random bytes at the framing layer: always a typed error or a valid
   frame, never an exception *)
let prop_frame_never_raises =
  QCheck.Test.make ~name:"read_frame total on garbage" ~count:60
    QCheck.(string_of_size (Gen.int_range 0 64))
    (fun junk ->
      with_pair (fun a b ->
          (try write_all a junk with _ -> ());
          Unix.close a;
          match Protocol.read_frame ~frame_timeout_s:0.2 b with
          | Ok _ | Error _ -> true))

(* ------------------------------------------------------------------ *)
(* admission on an explicit clock *)

let test_bucket () =
  let b = Admission.Bucket.create ~rate:1. ~burst:2. ~now:100. in
  Alcotest.(check bool) "take 1" true (Admission.Bucket.try_take b ~now:100. = Ok ());
  Alcotest.(check bool) "take 2" true (Admission.Bucket.try_take b ~now:100. = Ok ());
  (match Admission.Bucket.try_take b ~now:100. with
  | Error retry ->
      Alcotest.(check bool)
        (Printf.sprintf "retry hint %.2fs ~ 1s" retry)
        true
        (retry > 0.9 && retry <= 1.0)
  | Ok () -> Alcotest.fail "burst exhausted, take must fail");
  (* one fake second refills one token; no sleeping anywhere *)
  Alcotest.(check bool)
    "refilled after 1s" true
    (Admission.Bucket.try_take b ~now:101. = Ok ());
  (* non-positive rate disables the quota *)
  let free = Admission.Bucket.create ~rate:0. ~burst:0. ~now:0. in
  Alcotest.(check bool) "rate 0 never rejects" true
    (Admission.Bucket.try_take free ~now:0. = Ok ())

let test_admission_shed_and_fairness () =
  let q = Admission.create ~capacity:4 ~tenant_rate:0. () in
  let offer tenant item =
    Admission.offer q ~now:0. ~tenant item
  in
  Alcotest.(check bool) "a1" true (offer "a" "a1" = Ok ());
  Alcotest.(check bool) "a2" true (offer "a" "a2" = Ok ());
  Alcotest.(check bool) "a3" true (offer "a" "a3" = Ok ());
  Alcotest.(check bool) "b1" true (offer "b" "b1" = Ok ());
  (match offer "c" "c1" with
  | Error (Admission.Queue_full { depth; capacity; _ }) ->
      Alcotest.(check int) "depth" 4 depth;
      Alcotest.(check int) "capacity" 4 capacity
  | _ -> Alcotest.fail "expected Queue_full at capacity");
  Alcotest.(check int) "depth" 4 (Admission.depth q);
  (* round-robin: b's single request is served second, not behind all
     of a's backlog *)
  let order = List.init 4 (fun _ -> Option.get (Admission.take q)) in
  Alcotest.(check (list string)) "fair drain" [ "a1"; "b1"; "a2"; "a3" ] order;
  Admission.close q;
  Alcotest.(check bool) "take after close+drain" true (Admission.take q = None);
  match offer "a" "late" with
  | Error Admission.Closing -> ()
  | _ -> Alcotest.fail "offer after close must be Closing"

let test_admission_quota () =
  let q = Admission.create ~capacity:100 ~tenant_rate:1. ~tenant_burst:1. () in
  Alcotest.(check bool) "first admitted" true
    (Admission.offer q ~now:50. ~tenant:"t" 1 = Ok ());
  (match Admission.offer q ~now:50. ~tenant:"t" 2 with
  | Error (Admission.Over_quota { retry_after_s }) ->
      Alcotest.(check bool) "retry hint positive" true (retry_after_s > 0.)
  | _ -> Alcotest.fail "expected Over_quota");
  (* other tenants are unaffected *)
  Alcotest.(check bool) "other tenant fine" true
    (Admission.offer q ~now:50. ~tenant:"u" 3 = Ok ());
  Alcotest.(check bool) "refilled on the fake clock" true
    (Admission.offer q ~now:51.5 ~tenant:"t" 4 = Ok ())

(* ------------------------------------------------------------------ *)
(* request codec *)

let test_request_codec () =
  let ok =
    Json.Obj
      [
        ("id", Json.Int 7);
        ("op", Json.Str "evaluate");
        ("tenant", Json.Str "alice");
        ("program", Json.Str "(define (f n) n) f");
        ("n", Json.Int 3);
        ("budget", Json.Obj [ ("fuel", Json.Int 100) ]);
      ]
  in
  (match Protocol.request_of_json ok with
  | Ok req ->
      Alcotest.(check string) "tenant" "alice" req.Protocol.tenant;
      (match req.Protocol.work with
      | Some (Protocol.Evaluate { n; _ }) -> Alcotest.(check int) "n" 3 n
      | _ -> Alcotest.fail "expected Evaluate work");
      Alcotest.(check (option int))
        "budget fuel" (Some 100) req.Protocol.budget.Res.Budget.fuel;
      (* the codec round-trips through its own inverse *)
      let again = Protocol.request_to_json req in
      (match Protocol.request_of_json again with
      | Ok req' -> Alcotest.(check string) "tenant roundtrip" "alice" req'.Protocol.tenant
      | Error m -> Alcotest.failf "re-parse failed: %s" m)
  | Error m -> Alcotest.failf "valid request rejected: %s" m);
  (match Protocol.request_of_json (Json.Obj [ ("op", Json.Str "explode") ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown op must be rejected");
  match
    Protocol.request_of_json
      (Json.Obj [ ("op", Json.Str "evaluate"); ("program", Json.Int 3) ])
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-string program must be rejected"

(* ------------------------------------------------------------------ *)
(* the daemon, end to end *)

let tmp_socket () =
  let path = Filename.temp_file "tailspace-serve" ".sock" in
  Sys.remove path;
  path

let with_server ?config f =
  let ep = Protocol.Unix_domain (tmp_socket ()) in
  let server = Server.create ?config ep in
  let outcome = ref None in
  let thread = Thread.create (fun () -> outcome := Some (Server.run server)) () in
  Fun.protect
    ~finally:(fun () ->
      Server.shutdown server;
      Thread.join thread)
    (fun () -> f server ep);
  !outcome

let rpc fd json =
  Protocol.write_frame fd json;
  match Protocol.read_frame fd with
  | Ok j -> (
      match Protocol.reply_of_json j with
      | Ok r -> r
      | Error m -> Alcotest.failf "malformed reply: %s" m)
  | Error e -> Alcotest.failf "no reply: %s" (Protocol.read_error_message e)

let eval_req ?(budget = []) ~id program n =
  Json.Obj
    [
      ("id", Json.Str id);
      ("op", Json.Str "evaluate");
      ("program", Json.Str program);
      ("n", Json.Int n);
      ("budget", Json.Obj budget);
    ]

let test_server_end_to_end () =
  let config = { Server.default_config with Server.jobs = 2 } in
  let outcome =
    with_server ~config @@ fun _server ep ->
    let fd = Protocol.connect ep in
    Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ())
    @@ fun () ->
    (* a healthy program *)
    let r =
      rpc fd
        (eval_req ~id:"ok" "(define (f n) (if (zero? n) 'done (f (- n 1)))) f"
           200)
    in
    Alcotest.(check int) "healthy status" 0 r.Protocol.r_status;
    Alcotest.(check (option string)) "answer" (Some "done") r.Protocol.r_answer;
    (* poison: a fuel burner comes back typed, on the same connection *)
    let r =
      rpc fd
        (eval_req ~id:"burn"
           ~budget:[ ("fuel", Json.Int 1000) ]
           "(define (spin n) (spin n)) spin" 0)
    in
    Alcotest.(check int) "poison status" 1 r.Protocol.r_status;
    Alcotest.(check (option string))
      "typed abort" (Some "out-of-fuel") r.Protocol.r_abort_tag;
    (* poison: a stuck program *)
    let r = rpc fd (eval_req ~id:"stuck" "(define (bad n) (car n)) bad" 5) in
    Alcotest.(check int) "stuck status" 1 r.Protocol.r_status;
    Alcotest.(check string) "stuck outcome" "stuck" r.Protocol.r_outcome;
    (* poison: an unparsable source is the client's fault *)
    let r = rpc fd (eval_req ~id:"garb" "((" 1) in
    Alcotest.(check int) "parse error status" 2 r.Protocol.r_status;
    (* the daemon is still alive and healthy after all of it *)
    let r =
      rpc fd (Json.Obj [ ("id", Json.Str "h"); ("op", Json.Str "health") ])
    in
    Alcotest.(check int) "health after poison" 0 r.Protocol.r_status;
    Alcotest.(check string) "health outcome" "ok" r.Protocol.r_outcome
  in
  Alcotest.(check bool) "drained cleanly" true (outcome = Some Server.Drained)

let test_server_protocol_error_then_close () =
  let outcome =
    with_server @@ fun _server ep ->
    let fd = Protocol.connect ep in
    Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ())
    @@ fun () ->
    (* garbage payload: the daemon answers a typed protocol error and
       closes; it does not crash *)
    write_all fd (header 5);
    write_all fd ")))))";
    (match Protocol.read_frame fd with
    | Ok j -> (
        match Protocol.reply_of_json j with
        | Ok r ->
            Alcotest.(check int) "protocol error status" 2 r.Protocol.r_status;
            Alcotest.(check string)
              "protocol error outcome" "protocol-error" r.Protocol.r_outcome
        | Error m -> Alcotest.failf "malformed protocol error: %s" m)
    | Error e ->
        Alcotest.failf "expected a protocol error response, got %s"
          (Protocol.read_error_message e));
    (* the daemon dropped this connection; a fresh one still works *)
    (match Protocol.read_frame ~frame_timeout_s:2. fd with
    | Error (Protocol.Closed | Protocol.Truncated) -> ()
    | Ok _ -> Alcotest.fail "connection should be closed after protocol error"
    | Error e -> Alcotest.failf "unexpected: %s" (Protocol.read_error_message e));
    let fd2 = Protocol.connect ep in
    Fun.protect ~finally:(fun () -> try Unix.close fd2 with _ -> ())
    @@ fun () ->
    let r =
      rpc fd2 (Json.Obj [ ("id", Json.Str "h"); ("op", Json.Str "health") ])
    in
    Alcotest.(check int) "fresh connection healthy" 0 r.Protocol.r_status
  in
  Alcotest.(check bool) "drained cleanly" true (outcome = Some Server.Drained)

let test_server_rejects_when_closing () =
  let outcome =
    with_server @@ fun server ep ->
    let fd = Protocol.connect ep in
    Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ())
    @@ fun () ->
    Server.shutdown server;
    (* a request racing the drain gets a structured rejection — or, if
       the reader already shut the connection, a clean close; never a
       raw crash or a hang *)
    match Protocol.write_frame fd (eval_req ~id:"late" "(define (f n) n) f" 1) with
    | exception (Unix.Unix_error _ | Sys_error _) -> ()
    | () -> (
        match Protocol.read_frame ~frame_timeout_s:5. fd with
        | Error (Protocol.Closed | Protocol.Truncated | Protocol.Idle_closed)
          ->
            ()
        | Error e ->
            Alcotest.failf "unexpected read error: %s"
              (Protocol.read_error_message e)
        | Ok j -> (
            match Protocol.reply_of_json j with
            | Ok r ->
                Alcotest.(check int) "rejected status" 2 r.Protocol.r_status;
                Alcotest.(check string)
                  "rejected outcome" "rejected" r.Protocol.r_outcome
            | Error m -> Alcotest.failf "malformed rejection: %s" m))
  in
  Alcotest.(check bool) "drained cleanly" true (outcome = Some Server.Drained)

let () =
  Alcotest.run "serve"
    [
      ( "framing",
        [
          Alcotest.test_case "roundtrip" `Quick test_frame_roundtrip;
          Alcotest.test_case "clean close" `Quick test_frame_clean_close;
          Alcotest.test_case "truncated" `Quick test_frame_truncated;
          Alcotest.test_case "oversized" `Quick test_frame_oversized;
          Alcotest.test_case "garbage payload" `Quick
            test_frame_garbage_payload;
          Alcotest.test_case "slow loris" `Quick test_frame_slow_loris;
          Alcotest.test_case "give up" `Quick test_frame_give_up;
          QCheck_alcotest.to_alcotest prop_frame_never_raises;
        ] );
      ( "admission",
        [
          Alcotest.test_case "token bucket" `Quick test_bucket;
          Alcotest.test_case "shed + fair drain" `Quick
            test_admission_shed_and_fairness;
          Alcotest.test_case "per-tenant quota" `Quick test_admission_quota;
        ] );
      ( "codec", [ Alcotest.test_case "request" `Quick test_request_codec ] );
      ( "daemon",
        [
          Alcotest.test_case "end to end with poison" `Quick
            test_server_end_to_end;
          Alcotest.test_case "protocol error then close" `Quick
            test_server_protocol_error_then_close;
          Alcotest.test_case "rejects while draining" `Quick
            test_server_rejects_when_closing;
        ] );
    ]
