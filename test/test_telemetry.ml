(* The telemetry layer: counter/result agreement across all six
   variants, deterministic exact counts on fixed programs, the stuck
   ring buffer, JSON round-trips, the legacy shims, profile
   downsampling, and the alternative engines' instrumentation. *)

module M = Tailspace_core.Machine
module Tel = Tailspace_telemetry.Telemetry
module Expand = Tailspace_expander.Expand
module Secd = Tailspace_engines.Secd
module Den = Tailspace_engines.Denotational
module R = Tailspace_harness.Runner
module Table = Tailspace_harness.Table

let run ?(variant = M.Tail) ?stack_policy ?(ring = 0) ?sink ?profile src =
  let t = M.create_with (M.Config.make ~variant ?stack_policy ()) in
  let tl = Tel.create ?sink ~ring ?profile () in
  let r = M.exec_string ~opts:(M.Run_opts.make ~telemetry:tl ()) t src in
  (r, tl)

let count_25 =
  "(define (count n) (if (zero? n) 'ok (count (- n 1)))) (count 25)"

(* Counters must agree with the result record, on every variant. *)
let test_counters_match_result () =
  List.iter
    (fun variant ->
      let name = M.variant_name variant in
      let r, tl = run ~variant count_25 in
      (match r.M.outcome with
      | M.Done { answer; _ } -> Alcotest.(check string) (name ^ " answer") "ok" answer
      | _ -> Alcotest.failf "%s: expected Done" name);
      Alcotest.(check int) (name ^ " steps") r.M.steps (Tel.steps tl);
      Alcotest.(check int) (name ^ " gc runs") r.M.gc_runs (Tel.gc_runs tl);
      Alcotest.(check int) (name ^ " peak") (M.peak_space r) (Tel.peak_space tl);
      let s = Tel.summary tl in
      Alcotest.(check int) (name ^ " summary steps") r.M.steps s.Tel.steps;
      Alcotest.(check int) (name ^ " summary gc") r.M.gc_runs s.Tel.gc_runs;
      Alcotest.(check int) (name ^ " summary peak") (M.peak_space r) s.Tel.peak_space)
    M.all_variants

(* Two runs of the same deterministic program produce identical
   summaries, field for field. *)
let test_deterministic () =
  List.iter
    (fun variant ->
      let _, tl1 = run ~variant count_25 in
      let _, tl2 = run ~variant count_25 in
      if Tel.summary tl1 <> Tel.summary tl2 then
        Alcotest.failf "%s: summaries differ between identical runs"
          (M.variant_name variant))
    M.all_variants

(* Exact counts on small fixed programs (I_tail). Step counts are the
   machine's actual transition counts; allocation counts classify the
   *cell contents* installed by [Store.alloc] — a 3-list is 6 cells:
   three ints (the cars), two pairs (the inner cdrs), one nil. *)
let test_exact_counts () =
  let steps src = Tel.steps (snd (run src)) in
  Alcotest.(check int) "'done steps" 2 (steps "'done");
  Alcotest.(check int) "(+ 1 2) steps" 9 (steps "(+ 1 2)");
  Alcotest.(check int) "apply steps" 14
    (steps "((lambda (f) (f 1)) (lambda (x) x))");
  let _, tl = run "(list 1 2 3)" in
  Alcotest.(check int) "list ints" 3 (Tel.alloc_count tl Tel.K_int);
  Alcotest.(check int) "list pairs" 2 (Tel.alloc_count tl Tel.K_pair);
  Alcotest.(check int) "list nil" 1 (Tel.alloc_count tl Tel.K_atom);
  Alcotest.(check int) "list vectors" 0 (Tel.alloc_count tl Tel.K_vector);
  let _, tl = run "((lambda (f) (f 1)) (lambda (x) x))" in
  Alcotest.(check int) "bound closure" 1 (Tel.alloc_count tl Tel.K_closure);
  Alcotest.(check int) "bound int" 1 (Tel.alloc_count tl Tel.K_int)

(* Continuation depth: the improper machine's depth grows with the
   recursion, the proper one's stays flat. *)
let test_cont_depth () =
  let deep = "(define (count n) (if (zero? n) 'ok (count (- n 1)))) (count 40)" in
  let _, tail_tl = run ~variant:M.Tail deep in
  let _, gc_tl = run ~variant:M.Gc deep in
  if Tel.max_cont_depth tail_tl >= 10 then
    Alcotest.failf "tail machine depth grew: %d" (Tel.max_cont_depth tail_tl);
  if Tel.max_cont_depth gc_tl < 40 then
    Alcotest.failf "gc machine depth did not grow: %d"
      (Tel.max_cont_depth gc_tl);
  let s = Tel.summary gc_tl in
  Alcotest.(check int) "pushes = pops" s.Tel.cont_pushes s.Tel.cont_pops

(* The ring buffer holds the last K configurations when an I_stack run
   under the Algol policy hits a dangling pointer. *)
let test_ring_on_stuck () =
  let r, tl =
    run ~variant:M.Stack ~stack_policy:M.Algol ~ring:8
      "(define (make n) (lambda () n)) ((make 5))"
  in
  (match r.M.outcome with
  | M.Stuck m ->
      if not (String.length m > 0) then Alcotest.fail "empty stuck message"
  | _ -> Alcotest.fail "expected a stuck outcome");
  let trace = Tel.ring_contents tl in
  let len = List.length trace in
  if len = 0 || len > 8 then Alcotest.failf "ring length %d not in 1..8" len;
  let rec increasing = function
    | (s1, _) :: ((s2, _) :: _ as rest) -> s1 < s2 && increasing rest
    | _ -> true
  in
  if not (increasing trace) then Alcotest.fail "ring steps not increasing";
  (* the last entry is the configuration no rule applied to; the step
     counter was not advanced past it *)
  let last_step = fst (List.nth trace (len - 1)) in
  Alcotest.(check int) "ring ends at the stuck step" r.M.steps last_step;
  match (Tel.summary tl).Tel.stuck with
  | Some _ -> ()
  | None -> Alcotest.fail "summary did not record the stuck message"

(* summary -> JSON -> text -> JSON -> summary is the identity. *)
let test_summary_roundtrip () =
  let check_roundtrip name tl =
    let s = Tel.summary tl in
    let text = Tel.Json.to_string (Tel.summary_to_json s) in
    match Tel.Json.of_string text with
    | Error m -> Alcotest.failf "%s: emitted JSON does not parse: %s" name m
    | Ok j -> (
        match Tel.summary_of_json j with
        | Error m -> Alcotest.failf "%s: summary_of_json failed: %s" name m
        | Ok s' ->
            if s <> s' then Alcotest.failf "%s: round-trip changed the summary" name)
  in
  check_roundtrip "done run" (snd (run count_25));
  check_roundtrip "stuck run"
    (snd
       (run ~variant:M.Stack ~stack_policy:M.Algol ~ring:4
          "(define (make n) (lambda () n)) ((make 5))"))

let test_json_parser () =
  let ok text expected =
    match Tel.Json.of_string text with
    | Ok j -> Alcotest.(check string) text expected (Tel.Json.to_string j)
    | Error m -> Alcotest.failf "%S did not parse: %s" text m
  in
  ok {|{"a": [1, -2.5, true, null, "x\ny"]}|}
    {|{"a":[1,-2.5,true,null,"x\ny"]}|};
  ok {| [ ] |} {|[]|};
  ok {|"\u0041\u00e9"|} "\"A\xc3\xa9\"";
  match Tel.Json.of_string {|{"a":1,}|} with
  | Ok _ -> Alcotest.fail "trailing comma accepted"
  | Error _ -> ()

(* on_step and trace are deprecated shims over the telemetry
   observation point (kept until the removal noted in DESIGN.md): they
   must see exactly the Step events / ring descriptions. This test
   exercises the deprecated surface deliberately. *)
module Legacy_shims = struct
  [@@@alert "-deprecated"]
  [@@@warning "-3"]

  let test_shims () =
    let src = count_25 in
    let events = ref [] in
    let sink = function
      | Tel.Step { step; space; _ } -> events := (step, space) :: !events
      | _ -> ()
    in
    let steps_seen = ref [] in
    let t = M.create () in
    let tl = Tel.create ~sink () in
    let _ =
      M.run_string ~telemetry:tl
        ~on_step:(fun ~steps ~space ->
          steps_seen := (steps, space) :: !steps_seen)
        t src
    in
    Alcotest.(check (list (pair int int)))
      "on_step sees the Step events" (List.rev !events) (List.rev !steps_seen);
    (* trace sees the same descriptions the ring records *)
    let traced = ref [] in
    let t = M.create ~variant:M.Stack ~stack_policy:M.Algol () in
    let tl = Tel.create ~ring:1000 () in
    let _ =
      M.run_string ~telemetry:tl
        ~trace:(fun step d -> traced := (step, d) :: !traced)
        t "(define (make n) (lambda () n)) ((make 5))"
    in
    Alcotest.(check (list (pair int string)))
      "trace sees the ring descriptions" (Tel.ring_contents tl)
      (List.rev !traced)
end

(* The profile recorder downsamples by doubling its stride once the
   sample buffer fills, so memory stays bounded. *)
let test_profile_downsampling () =
  let p = Tel.Profile.create ~stride:1 ~max_samples:8 () in
  for i = 0 to 99 do
    Tel.Profile.sample p ~step:i ~space:(1000 + i)
  done;
  let samples = Tel.Profile.samples p in
  let n = List.length samples in
  if n = 0 || n > 8 then Alcotest.failf "%d samples, wanted 1..8" n;
  if Tel.Profile.stride p <= 1 then Alcotest.fail "stride did not grow";
  List.iter
    (fun (step, space) ->
      Alcotest.(check int) "space tracks step" (1000 + step) space)
    samples;
  let csv = Tel.Profile.to_csv p in
  if not (String.length csv > 10 && String.sub csv 0 11 = "step,space\n") then
    Alcotest.failf "bad csv header: %s" csv

let expand src = Expand.program_of_string src

(* The SECD machine reports the same counters through telemetry. *)
let test_secd_telemetry () =
  let tl = Tel.create () in
  let r = Secd.run ~telemetry:tl (expand count_25) in
  (match r.Secd.outcome with
  | Secd.Done a -> Alcotest.(check string) "secd answer" "ok" a
  | _ -> Alcotest.fail "secd: expected Done");
  Alcotest.(check int) "secd steps" r.Secd.steps (Tel.steps tl);
  Alcotest.(check int) "secd peak" r.Secd.peak_words (Tel.peak_space tl)

(* The denotational evaluator counts allocations through the shared
   store observer. *)
let test_denotational_telemetry () =
  let tl = Tel.create () in
  (match Den.eval ~telemetry:tl (expand "(list 1 2 3)") with
  | Den.Done a -> Alcotest.(check string) "den answer" "(1 2 3)" a
  | Den.Error m -> Alcotest.failf "den error: %s" m
  | Den.Aborted r ->
      Alcotest.failf "den aborted: %s"
        (Tailspace_resilience.Resilience.abort_reason_message r));
  Alcotest.(check int) "den pairs" 2 (Tel.alloc_count tl Tel.K_pair);
  Alcotest.(check int) "den ints" 3 (Tel.alloc_count tl Tel.K_int);
  if Tel.steps tl = 0 then Alcotest.fail "den spent no budget"

(* The harness surfaces gc_runs/peak_space always and the full summary
   on demand; the table renders the new columns. *)
let test_harness_telemetry () =
  let program = expand "(lambda (n) n)" in
  let config = M.Config.make ~variant:M.Tail () in
  let m = R.run_once ~config ~program ~n:7 () in
  Alcotest.(check bool) "summary off by default" true (m.R.summary = None);
  let m = R.run_once ~collect_telemetry:true ~config ~program ~n:7 () in
  (match m.R.summary with
  | None -> Alcotest.fail "collect_telemetry did not produce a summary"
  | Some s ->
      Alcotest.(check int) "harness steps" m.R.steps s.Tel.steps;
      Alcotest.(check int) "harness gc" m.R.gc_runs s.Tel.gc_runs;
      Alcotest.(check int) "harness peak" (R.peak_space m) s.Tel.peak_space);
  let table = Table.measurements [ m ] in
  List.iter
    (fun needle ->
      let found =
        let nl = String.length needle and hl = String.length table in
        let rec go i =
          i + nl <= hl && (String.sub table i nl = needle || go (i + 1))
        in
        go 0
      in
      if not found then Alcotest.failf "table missing %S:\n%s" needle table)
    [ "gc-runs"; "peak"; "S=|P|+peak" ]

let () =
  Alcotest.run "telemetry"
    [
      ( "machines",
        [
          Alcotest.test_case "counters match result" `Quick
            test_counters_match_result;
          Alcotest.test_case "deterministic summaries" `Quick test_deterministic;
          Alcotest.test_case "exact counts" `Quick test_exact_counts;
          Alcotest.test_case "continuation depth" `Quick test_cont_depth;
          Alcotest.test_case "ring buffer on stuck" `Quick test_ring_on_stuck;
        ] );
      ( "json",
        [
          Alcotest.test_case "summary round-trip" `Quick test_summary_roundtrip;
          Alcotest.test_case "parser" `Quick test_json_parser;
        ] );
      ( "plumbing",
        [
          Alcotest.test_case "legacy shims" `Quick Legacy_shims.test_shims;
          Alcotest.test_case "profile downsampling" `Quick
            test_profile_downsampling;
          Alcotest.test_case "secd" `Quick test_secd_telemetry;
          Alcotest.test_case "denotational" `Quick test_denotational_telemetry;
          Alcotest.test_case "harness" `Quick test_harness_telemetry;
        ] );
    ]
