(* The space-provenance profiler: golden per-site censuses for the
   countdown and append families on I_tail vs I_stack (exact word
   counts pinned — the census is deterministic), plus the QCheck
   invariant that per-site live words sum exactly to the measured peak
   under the flat, linked, and log measures. *)

module M = Tailspace_core.Machine
module SM = Tailspace_core.Space_model
module Census = Tailspace_core.Census
module P = Tailspace_provenance.Provenance
module R = Tailspace_harness.Runner
module Corpus = Tailspace_corpus.Corpus

let corpus_program name =
  match Corpus.find name with
  | Some e -> Corpus.program e
  | None -> Alcotest.failf "corpus entry %S missing" name

(* One profiled run: the censuses and the raw per-model peaks they
   must sum to — the measurement's [peaks] carry the store peaks with
   no |P| term, exactly what the censuses decompose. *)
let all_models = [ SM.Flat; SM.Linked; SM.Log ]

let profile ?(engine = M.Stepper) ~variant name n =
  let program = corpus_program name in
  let census = Census.create () in
  let opts =
    M.Run_opts.make ~fuel:2_000_000 ~measure:all_models ~provenance:census ()
  in
  let m =
    R.run_once ~opts ~config:(M.Config.make ~engine ~variant ()) ~program ~n ()
  in
  let flat = Census.flat_census census ~peak:(R.peak_space m) in
  let linked =
    match R.peak_linked m with
    | Some u -> Census.linked_census census ~peak:u
    | None -> None
  in
  let log =
    match R.peak_log m with
    | Some l -> Census.log_census census ~peak:l
    | None -> None
  in
  (m, flat, linked, log)

let rows_of (c : P.t) =
  List.map (fun (r : P.row) -> (r.P.site, P.phase_name r.P.phase, r.P.words)) c.P.rows

let row_t = Alcotest.(triple int string int)

let check_census what expected = function
  | None -> Alcotest.failf "%s: no census was stashed" what
  | Some c ->
      Alcotest.check (Alcotest.list row_t) what expected (rows_of c);
      Alcotest.(check int) (what ^ ": rows sum to peak") c.P.peak (P.total c)

(* --- golden censuses ---------------------------------------------- *)

let test_golden_countdown_tail () =
  let _, flat, linked, log = profile ~variant:M.Tail "countdown" 10 in
  check_census "countdown/tail flat"
    [
      (-1, "globals", 2793);
      (548, "frame", 102);
      (-1, "control", 101);
      (547, "frame", 101);
      (552, "frame", 101);
      (-1, "register-env", 100);
      (534, "closure", 2);
      (546, "closure", 2);
      (550, "rib", 2);
      (-1, "halt", 1);
    ]
    flat;
  check_census "countdown/tail linked"
    [
      (-1, "globals", 357);
      (552, "rib", 7);
      (-1, "control", 5);
      (543, "frame", 3);
      (550, "rib", 3);
      (544, "frame", 2);
      (546, "closure", 2);
      (-1, "halt", 1);
    ]
    linked;
  check_census "countdown/tail log"
    [
      (-1, "globals", 2856);
      (552, "rib", 56);
      (-1, "control", 40);
      (543, "frame", 24);
      (550, "rib", 24);
      (544, "frame", 16);
      (546, "closure", 16);
      (-1, "halt", 8);
    ]
    log

let test_golden_countdown_stack () =
  let _, flat, linked, _ = profile ~variant:M.Stack "countdown" 10 in
  check_census "countdown/stack flat"
    [
      (-1, "globals", 2793);
      (544, "frame", 1010);
      (537, "frame", 103);
      (545, "frame", 102);
      (550, "rib", 102);
      (-1, "register-env", 101);
      (552, "frame", 101);
      (544, "rib", 45);
      (552, "rib", 6);
      (546, "closure", 2);
      (-1, "control", 1);
      (-1, "halt", 1);
    ]
    flat;
  check_census "countdown/stack linked"
    [
      (-1, "globals", 357);
      (544, "rib", 44);
      (544, "frame", 11);
      (552, "rib", 6);
      (543, "frame", 3);
      (550, "rib", 3);
      (-1, "control", 2);
      (546, "closure", 2);
      (-1, "halt", 1);
      (552, "frame", 1);
    ]
    linked

let test_golden_append_tail () =
  let _, flat, _, log = profile ~variant:M.Tail "append" 6 in
  check_census "append/tail flat"
    [
      (-1, "globals", 2793);
      (561, "frame", 642);
      (587, "rib", 315);
      (543, "frame", 108);
      (544, "frame", 107);
      (559, "frame", 107);
      (560, "frame", 106);
      (-1, "register-env", 104);
      (561, "bignum", 26);
      (560, "rib", 21);
      (561, "pair", 20);
      (542, "rib", 5);
      (589, "rib", 5);
      (-1, "control", 2);
      (545, "closure", 2);
      (561, "atom", 2);
      (563, "closure", 2);
      (565, "rib", 2);
      (583, "closure", 2);
      (585, "rib", 2);
      (-1, "halt", 1);
    ]
    flat;
  check_census "append/tail log"
    [
      (-1, "globals", 2856);
      (580, "rib", 464);
      (561, "bignum", 416);
      (561, "pair", 320);
      (581, "frame", 144);
      (543, "rib", 80);
      (587, "rib", 72);
      (589, "rib", 48);
      (561, "atom", 32);
      (565, "rib", 24);
      (585, "rib", 24);
      (544, "frame", 16);
      (545, "closure", 16);
      (563, "closure", 16);
      (569, "frame", 16);
      (583, "closure", 16);
      (-1, "control", 8);
      (-1, "halt", 8);
      (582, "frame", 8);
    ]
    log

let test_golden_append_stack () =
  let _, flat, _, _ = profile ~variant:M.Stack "append" 6 in
  check_census "append/stack flat"
    [
      (-1, "globals", 2793);
      (561, "frame", 642);
      (560, "frame", 624);
      (587, "rib", 315);
      (543, "frame", 108);
      (544, "frame", 107);
      (551, "frame", 106);
      (562, "frame", 105);
      (589, "frame", 105);
      (-1, "register-env", 104);
      (542, "frame", 104);
      (561, "bignum", 26);
      (560, "rib", 23);
      (561, "pair", 20);
      (542, "rib", 5);
      (589, "rib", 5);
      (545, "closure", 2);
      (561, "atom", 2);
      (563, "closure", 2);
      (565, "rib", 2);
      (583, "closure", 2);
      (585, "rib", 2);
      (-1, "control", 1);
      (-1, "halt", 1);
    ]
    flat

(* The non-tail accumulation shows up as continuation-frame words on
   the recursive call sites; diffing I_tail against I_stack must
   surface frame rows that only I_stack carries. *)
let test_diff_surfaces_stack_frames () =
  let _, fa, _, _ = profile ~variant:M.Tail "append" 6 in
  let _, fb, _, _ = profile ~variant:M.Stack "append" 6 in
  match (fa, fb) with
  | Some ca, Some cb ->
      let deltas = P.diff ca cb in
      let stack_only_frames =
        List.filter
          (fun (d : P.delta) ->
            d.P.dphase = P.P_frame && d.P.words_a = 0 && d.P.words_b > 0)
          deltas
      in
      Alcotest.(check bool)
        "I_stack carries frame sites I_tail reclaims" true
        (stack_only_frames <> []);
      (* deltas are sorted by decreasing |delta| *)
      let abs_deltas =
        List.map (fun (d : P.delta) -> abs (d.P.words_b - d.P.words_a)) deltas
      in
      Alcotest.(check bool)
        "deltas sorted" true
        (List.sort (fun a b -> compare b a) abs_deltas = abs_deltas)
  | _ -> Alcotest.fail "censuses missing"

(* Stepper and instrumented VM produce identical censuses (modulo the
   advisory labels, which embed gensym'd names). *)
let test_vm_census_agrees () =
  List.iter
    (fun (name, n) ->
      let _, sf, sl, sg = profile ~engine:M.Stepper ~variant:M.Tail name n in
      let _, vf, vl, vg = profile ~engine:M.Vm ~variant:M.Tail name n in
      let strip = function
        | Some c -> P.Json.to_string (P.to_json ~with_labels:false c)
        | None -> "<none>"
      in
      Alcotest.(check string) (name ^ ": flat") (strip sf) (strip vf);
      Alcotest.(check string) (name ^ ": linked") (strip sl) (strip vl);
      Alcotest.(check string) (name ^ ": log") (strip sg) (strip vg))
    [ ("countdown", 10); ("append", 6) ]

(* --- the sum-to-total invariant, property-checked ------------------ *)

let fast_entries =
  Corpus.all
  |> List.filter (fun (e : Corpus.entry) -> (not e.Corpus.slow) && e.Corpus.checks <> [])

let prop_census_sums_to_peak =
  QCheck.Test.make ~count:40 ~name:"census sums to measured peak (all measures)"
    QCheck.(
      triple
        (int_bound (List.length fast_entries - 1))
        (int_bound (List.length M.all_variants - 1))
        (int_range 1 8))
    (fun (ei, vi, n) ->
      let e = List.nth fast_entries ei in
      let variant = List.nth M.all_variants vi in
      let census = Census.create () in
      let opts =
        M.Run_opts.make ~fuel:2_000_000 ~measure:all_models
          ~provenance:census ()
      in
      let m =
        R.run_once ~opts
          ~config:(M.Config.make ~variant ())
          ~program:(Corpus.program e) ~n ()
      in
      let flat_ok =
        match Census.flat_census census ~peak:(R.peak_space m) with
        | None -> m.R.steps = 0
        | Some c ->
            P.total c = c.P.peak
            && c.P.peak = R.peak_space m
            && List.fold_left
                 (fun a (s : P.stack) -> a + s.P.swords)
                 0 c.P.stacks
               = c.P.peak
      in
      let heavy_ok census_of peak_of =
        match peak_of m with
        | None -> false
        | Some p -> (
            match census_of census ~peak:p with
            | None -> m.R.steps = 0
            | Some c -> P.total c = c.P.peak && c.P.peak = p)
      in
      flat_ok
      && heavy_ok Census.linked_census R.peak_linked
      && heavy_ok Census.log_census R.peak_log)

let () =
  Alcotest.run "provenance"
    [
      ( "golden",
        [
          Alcotest.test_case "countdown I_tail" `Quick test_golden_countdown_tail;
          Alcotest.test_case "countdown I_stack" `Quick
            test_golden_countdown_stack;
          Alcotest.test_case "append I_tail" `Quick test_golden_append_tail;
          Alcotest.test_case "append I_stack" `Quick test_golden_append_stack;
        ] );
      ( "diff",
        [
          Alcotest.test_case "tail vs stack frames" `Quick
            test_diff_surfaces_stack_frames;
        ] );
      ( "engines",
        [ Alcotest.test_case "stepper = vm" `Quick test_vm_census_agrees ] );
      ( "invariant", [ QCheck_alcotest.to_alcotest prop_census_sums_to_peak ] );
    ]
