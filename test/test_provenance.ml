(* The space-provenance profiler: golden per-site censuses for the
   countdown and append families on I_tail vs I_stack (exact word
   counts pinned — the census is deterministic), plus the QCheck
   invariant that per-site live words sum exactly to the measured peak
   under both the flat and linked measures. *)

module M = Tailspace_core.Machine
module Census = Tailspace_core.Census
module P = Tailspace_provenance.Provenance
module R = Tailspace_harness.Runner
module Corpus = Tailspace_corpus.Corpus

let corpus_program name =
  match Corpus.find name with
  | Some e -> Corpus.program e
  | None -> Alcotest.failf "corpus entry %S missing" name

(* One profiled run: the censuses and the raw peaks they must sum to.
   [peak_space] is the raw flat peak; the linked measurement folds |P|
   in and must shed it. *)
let profile ?(engine = M.Stepper) ~variant name n =
  let program = corpus_program name in
  let census = Census.create () in
  let opts =
    M.Run_opts.make ~fuel:2_000_000 ~measure_linked:true ~provenance:census ()
  in
  let m =
    R.run_once ~opts ~config:(M.Config.make ~engine ~variant ()) ~program ~n ()
  in
  let psize = m.R.space - m.R.peak_space in
  let flat = Census.flat_census census ~peak:m.R.peak_space in
  let linked =
    match m.R.linked with
    | Some l -> Census.linked_census census ~peak:(l - psize)
    | None -> None
  in
  (m, flat, linked)

let rows_of (c : P.t) =
  List.map (fun (r : P.row) -> (r.P.site, P.phase_name r.P.phase, r.P.words)) c.P.rows

let row_t = Alcotest.(triple int string int)

let check_census what expected = function
  | None -> Alcotest.failf "%s: no census was stashed" what
  | Some c ->
      Alcotest.check (Alcotest.list row_t) what expected (rows_of c);
      Alcotest.(check int) (what ^ ": rows sum to peak") c.P.peak (P.total c)

(* --- golden censuses ---------------------------------------------- *)

let test_golden_countdown_tail () =
  let _, flat, linked = profile ~variant:M.Tail "countdown" 10 in
  check_census "countdown/tail flat"
    [
      (-1, "globals", 2793);
      (548, "frame", 102);
      (-1, "control", 101);
      (547, "frame", 101);
      (552, "frame", 101);
      (-1, "register-env", 100);
      (534, "closure", 2);
      (546, "closure", 2);
      (550, "rib", 2);
      (-1, "halt", 1);
    ]
    flat;
  check_census "countdown/tail linked"
    [
      (-1, "globals", 357);
      (552, "rib", 7);
      (-1, "control", 5);
      (543, "frame", 3);
      (550, "rib", 3);
      (544, "frame", 2);
      (546, "closure", 2);
      (-1, "halt", 1);
    ]
    linked

let test_golden_countdown_stack () =
  let _, flat, linked = profile ~variant:M.Stack "countdown" 10 in
  check_census "countdown/stack flat"
    [
      (-1, "globals", 2793);
      (544, "frame", 1010);
      (537, "frame", 103);
      (545, "frame", 102);
      (550, "rib", 102);
      (-1, "register-env", 101);
      (552, "frame", 101);
      (544, "rib", 45);
      (552, "rib", 6);
      (546, "closure", 2);
      (-1, "control", 1);
      (-1, "halt", 1);
    ]
    flat;
  check_census "countdown/stack linked"
    [
      (-1, "globals", 357);
      (544, "rib", 44);
      (544, "frame", 11);
      (552, "rib", 6);
      (543, "frame", 3);
      (550, "rib", 3);
      (-1, "control", 2);
      (546, "closure", 2);
      (-1, "halt", 1);
      (552, "frame", 1);
    ]
    linked

let test_golden_append_tail () =
  let _, flat, _ = profile ~variant:M.Tail "append" 6 in
  check_census "append/tail flat"
    [
      (-1, "globals", 2793);
      (561, "frame", 642);
      (587, "rib", 315);
      (543, "frame", 108);
      (544, "frame", 107);
      (559, "frame", 107);
      (560, "frame", 106);
      (-1, "register-env", 104);
      (561, "bignum", 26);
      (560, "rib", 21);
      (561, "pair", 20);
      (542, "rib", 5);
      (589, "rib", 5);
      (-1, "control", 2);
      (545, "closure", 2);
      (561, "atom", 2);
      (563, "closure", 2);
      (565, "rib", 2);
      (583, "closure", 2);
      (585, "rib", 2);
      (-1, "halt", 1);
    ]
    flat

let test_golden_append_stack () =
  let _, flat, _ = profile ~variant:M.Stack "append" 6 in
  check_census "append/stack flat"
    [
      (-1, "globals", 2793);
      (561, "frame", 642);
      (560, "frame", 624);
      (587, "rib", 315);
      (543, "frame", 108);
      (544, "frame", 107);
      (551, "frame", 106);
      (562, "frame", 105);
      (589, "frame", 105);
      (-1, "register-env", 104);
      (542, "frame", 104);
      (561, "bignum", 26);
      (560, "rib", 23);
      (561, "pair", 20);
      (542, "rib", 5);
      (589, "rib", 5);
      (545, "closure", 2);
      (561, "atom", 2);
      (563, "closure", 2);
      (565, "rib", 2);
      (583, "closure", 2);
      (585, "rib", 2);
      (-1, "control", 1);
      (-1, "halt", 1);
    ]
    flat

(* The non-tail accumulation shows up as continuation-frame words on
   the recursive call sites; diffing I_tail against I_stack must
   surface frame rows that only I_stack carries. *)
let test_diff_surfaces_stack_frames () =
  let _, fa, _ = profile ~variant:M.Tail "append" 6 in
  let _, fb, _ = profile ~variant:M.Stack "append" 6 in
  match (fa, fb) with
  | Some ca, Some cb ->
      let deltas = P.diff ca cb in
      let stack_only_frames =
        List.filter
          (fun (d : P.delta) ->
            d.P.dphase = P.P_frame && d.P.words_a = 0 && d.P.words_b > 0)
          deltas
      in
      Alcotest.(check bool)
        "I_stack carries frame sites I_tail reclaims" true
        (stack_only_frames <> []);
      (* deltas are sorted by decreasing |delta| *)
      let abs_deltas =
        List.map (fun (d : P.delta) -> abs (d.P.words_b - d.P.words_a)) deltas
      in
      Alcotest.(check bool)
        "deltas sorted" true
        (List.sort (fun a b -> compare b a) abs_deltas = abs_deltas)
  | _ -> Alcotest.fail "censuses missing"

(* Stepper and instrumented VM produce identical censuses (modulo the
   advisory labels, which embed gensym'd names). *)
let test_vm_census_agrees () =
  List.iter
    (fun (name, n) ->
      let _, sf, sl = profile ~engine:M.Stepper ~variant:M.Tail name n in
      let _, vf, vl = profile ~engine:M.Vm ~variant:M.Tail name n in
      let strip = function
        | Some c -> P.Json.to_string (P.to_json ~with_labels:false c)
        | None -> "<none>"
      in
      Alcotest.(check string) (name ^ ": flat") (strip sf) (strip vf);
      Alcotest.(check string) (name ^ ": linked") (strip sl) (strip vl))
    [ ("countdown", 10); ("append", 6) ]

(* --- the sum-to-total invariant, property-checked ------------------ *)

let fast_entries =
  Corpus.all
  |> List.filter (fun (e : Corpus.entry) -> (not e.Corpus.slow) && e.Corpus.checks <> [])

let prop_census_sums_to_peak =
  QCheck.Test.make ~count:40 ~name:"census sums to measured peak (both measures)"
    QCheck.(
      triple
        (int_bound (List.length fast_entries - 1))
        (int_bound (List.length M.all_variants - 1))
        (int_range 1 8))
    (fun (ei, vi, n) ->
      let e = List.nth fast_entries ei in
      let variant = List.nth M.all_variants vi in
      let census = Census.create () in
      let opts =
        M.Run_opts.make ~fuel:2_000_000 ~measure_linked:true
          ~provenance:census ()
      in
      let m =
        R.run_once ~opts
          ~config:(M.Config.make ~variant ())
          ~program:(Corpus.program e) ~n ()
      in
      let psize = m.R.space - m.R.peak_space in
      let flat_ok =
        match Census.flat_census census ~peak:m.R.peak_space with
        | None -> m.R.steps = 0
        | Some c ->
            P.total c = c.P.peak
            && c.P.peak = m.R.peak_space
            && List.fold_left
                 (fun a (s : P.stack) -> a + s.P.swords)
                 0 c.P.stacks
               = c.P.peak
      in
      let linked_ok =
        match m.R.linked with
        | None -> false
        | Some l -> (
            match Census.linked_census census ~peak:(l - psize) with
            | None -> m.R.steps = 0
            | Some c -> P.total c = c.P.peak && c.P.peak = l - psize)
      in
      flat_ok && linked_ok)

let () =
  Alcotest.run "provenance"
    [
      ( "golden",
        [
          Alcotest.test_case "countdown I_tail" `Quick test_golden_countdown_tail;
          Alcotest.test_case "countdown I_stack" `Quick
            test_golden_countdown_stack;
          Alcotest.test_case "append I_tail" `Quick test_golden_append_tail;
          Alcotest.test_case "append I_stack" `Quick test_golden_append_stack;
        ] );
      ( "diff",
        [
          Alcotest.test_case "tail vs stack frames" `Quick
            test_diff_surfaces_stack_frames;
        ] );
      ( "engines",
        [ Alcotest.test_case "stepper = vm" `Quick test_vm_census_agrees ] );
      ( "invariant", [ QCheck_alcotest.to_alcotest prop_census_sums_to_peak ] );
    ]
