(* schemesim — run Scheme programs on the paper's reference machines.

   subcommands:
     run         evaluate a file or expression on a chosen variant,
                 reporting the answer and the measured space consumption
     profile     run with full telemetry: JSON summary + CSV space profile
     bench       sweep a program over several inputs, tabulating space
     analyze     static tail-call statistics (Figure 2) for a file
     corpus      list the shipped corpus, or run one entry
     report      print the paper-reproduction experiment tables *)

open Cmdliner
module M = Tailspace_core.Machine
module Expand = Tailspace_expander.Expand
module Reader = Tailspace_sexp.Reader
module TC = Tailspace_analysis.Tail_calls
module X = Tailspace_harness.Experiments
module R = Tailspace_harness.Runner
module Table = Tailspace_harness.Table
module Corpus = Tailspace_corpus.Corpus
module Tel = Tailspace_telemetry.Telemetry
module Json = Tailspace_telemetry.Telemetry.Json

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

(* JSON pieces shared by [run --json], [profile], and [bench --json]. *)

let outcome_name = function
  | M.Done _ -> "done"
  | M.Stuck _ -> "stuck"
  | M.Out_of_fuel -> "out-of-fuel"

let stuck_trace_json tl =
  Json.List
    (List.map
       (fun (step, config) ->
         Json.Obj [ ("step", Json.Int step); ("config", Json.Str config) ])
       (Tel.ring_contents tl))

(* The summary object: run-level facts first, then the telemetry
   summary's fields spliced in at top level (steps, gc_runs,
   allocations, max_cont_depth, peak_space, peak_linked, ...), then the
   ring-buffer trace when the run got stuck. *)
let result_json ~program_name ~variant (result : M.result) tl =
  let summary_fields =
    match Tel.summary_to_json (Tel.summary tl) with
    | Json.Obj fields -> fields
    | _ -> []
  in
  let answer =
    match result.M.outcome with
    | M.Done { answer; _ } -> Json.Str answer
    | _ -> Json.Null
  in
  let error =
    match result.M.outcome with M.Stuck m -> Json.Str m | _ -> Json.Null
  in
  Json.Obj
    ([
       ("program", Json.Str program_name);
       ("variant", Json.Str (M.variant_name variant));
       ("outcome", Json.Str (outcome_name result.M.outcome));
       ("answer", answer);
       ("error", error);
       ("program_size", Json.Int result.M.program_size);
       ("space_consumption", Json.Int (M.space_consumption result));
     ]
    @ summary_fields
    @
    match result.M.outcome with
    | M.Stuck _ -> [ ("stuck_trace", stuck_trace_json tl) ]
    | _ -> [])

let print_stuck_trace tl =
  match Tel.ring_contents tl with
  | [] -> ()
  | trace ->
      Format.printf "; last %d configurations before the stuck state:@."
        (List.length trace);
      List.iter
        (fun (step, config) -> Format.printf ";   %6d %s@." step config)
        trace

(* ------------------------------------------------------------------ *)
(* shared options                                                      *)

let variant_conv =
  let parse s =
    match M.variant_of_name s with
    | Some v -> Ok v
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown variant %S (expected %s)" s
               (String.concat "|" (List.map M.variant_name M.all_variants))))
  in
  Arg.conv (parse, fun ppf v -> Format.pp_print_string ppf (M.variant_name v))

let variant_arg =
  let doc =
    "Reference machine: tail (properly tail recursive, default), gc \
     (improper), stack (Algol-like deletion), evlis, free, or sfs \
     (safe-for-space)."
  in
  Arg.(value & opt variant_conv M.Tail & info [ "v"; "variant" ] ~docv:"VARIANT" ~doc)

let perm_arg =
  let cv =
    let parse = function
      | "ltr" -> Ok M.Left_to_right
      | "rtl" -> Ok M.Right_to_left
      | s -> (
          match int_of_string_opt s with
          | Some seed -> Ok (M.Seeded seed)
          | None -> Error (`Msg "expected ltr, rtl, or an integer seed"))
    in
    let print ppf = function
      | M.Left_to_right -> Format.pp_print_string ppf "ltr"
      | M.Right_to_left -> Format.pp_print_string ppf "rtl"
      | M.Seeded s -> Format.fprintf ppf "%d" s
    in
    Arg.conv (parse, print)
  in
  let doc = "Argument evaluation order: ltr, rtl, or an integer seed." in
  Arg.(value & opt cv M.Left_to_right & info [ "perm" ] ~docv:"ORDER" ~doc)

let stack_policy_arg =
  let cv =
    let parse = function
      | "algol" -> Ok M.Algol
      | "safe" -> Ok M.Safe_deletion
      | _ -> Error (`Msg "expected algol or safe")
    in
    let print ppf = function
      | M.Algol -> Format.pp_print_string ppf "algol"
      | M.Safe_deletion -> Format.pp_print_string ppf "safe"
    in
    Arg.conv (parse, print)
  in
  let doc =
    "I_stack deletion policy: algol (delete everything, stuck on dangling \
     pointers) or safe (delete the maximal safe subset, default)."
  in
  Arg.(value & opt cv M.Safe_deletion & info [ "stack-policy" ] ~docv:"POLICY" ~doc)

let fuel_arg =
  let doc = "Maximum number of machine steps." in
  Arg.(value & opt int 20_000_000 & info [ "fuel" ] ~docv:"STEPS" ~doc)

let linked_arg =
  let doc = "Also measure the linked-environment space model (Figure 8)." in
  Arg.(value & flag & info [ "linked" ] ~doc)

let trace_arg =
  let doc = "Print a one-line description of the first $(docv) machine steps." in
  Arg.(value & opt int 0 & info [ "trace" ] ~docv:"STEPS" ~doc)

let profile_arg =
  let doc = "Write a step,space CSV profile of the run to $(docv)." in
  Arg.(value & opt (some string) None & info [ "profile" ] ~docv:"FILE" ~doc)

(* ------------------------------------------------------------------ *)
(* run / profile shared plumbing                                       *)

let file_pos_arg =
  let doc = "Scheme source file (use - for stdin)." in
  Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)

let expr_arg =
  let doc = "Evaluate an inline program instead of a file." in
  Arg.(value & opt (some string) None & info [ "e"; "expr" ] ~docv:"PROGRAM" ~doc)

let input_arg =
  let doc =
    "Treat the program as §12's procedure-of-one-argument and apply it to \
     this integer."
  in
  Arg.(value & opt (some int) None & info [ "n"; "input" ] ~docv:"N" ~doc)

(* (display name, source text) or an error message. *)
let load_source file expr =
  match (file, expr) with
  | _, Some e -> Ok ("<expr>", e)
  | Some "-", None -> Ok ("<stdin>", In_channel.input_all stdin)
  | Some f, None -> ( try Ok (f, read_file f) with Sys_error m -> Error m)
  | None, None -> Error "expected a FILE argument or --expr"

let with_program file expr k =
  match load_source file expr with
  | Error m ->
      Format.eprintf "schemesim: %s@." m;
      exit 2
  | Ok (name, source) -> (
      match Expand.program_of_string source with
      | exception Reader.Parse_error e ->
          Format.eprintf "schemesim: %a@." Reader.pp_error e;
          exit 1
      | exception Expand.Expand_error e ->
          Format.eprintf "schemesim: %a@." Expand.pp_error e;
          exit 1
      | program -> k name program)

(* ------------------------------------------------------------------ *)
(* run                                                                 *)

let run_cmd =
  let json_arg =
    let doc =
      "Print a single JSON object (answer, space, telemetry summary, and the \
       ring-buffer trace when stuck) instead of the plain-text report."
    in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let ring_arg =
    let doc =
      "Keep the last $(docv) configurations in a ring buffer, dumped when the \
       machine gets stuck (0 disables the per-step description cost)."
    in
    Arg.(value & opt int 16 & info [ "ring" ] ~docv:"K" ~doc)
  in
  let run file expr input variant perm stack_policy fuel linked trace_steps
      profile json ring =
    with_program file expr @@ fun program_name program ->
    let t = M.create ~variant ~perm ~stack_policy () in
    let telemetry = Tel.create ~ring () in
    let trace =
      if trace_steps <= 0 then None
      else
        Some
          (fun step description ->
            if step < trace_steps then
              Format.printf "; %6d %s@." step description)
    in
    let profile_channel = Option.map open_out profile in
    let on_step =
      Option.map
        (fun oc ~steps ~space -> Printf.fprintf oc "%d,%d\n" steps space)
        profile_channel
    in
    let result =
      Fun.protect
        ~finally:(fun () -> Option.iter close_out profile_channel)
        (fun () ->
          match input with
          | Some n ->
              M.run_program ~fuel ~measure_linked:linked ~telemetry ?on_step
                ?trace t ~program ~input:(R.input_expr n)
          | None ->
              M.run ~fuel ~measure_linked:linked ~telemetry ?on_step ?trace t
                program)
    in
    if json then
      print_endline
        (Json.to_string (result_json ~program_name ~variant result telemetry))
    else begin
      if result.M.output <> "" then print_string result.M.output;
      (match result.M.outcome with
      | M.Done { answer; _ } -> Format.printf "%s@." answer
      | M.Stuck m ->
          Format.printf "stuck: %s@." m;
          print_stuck_trace telemetry
      | M.Out_of_fuel -> Format.printf "out of fuel@.");
      Format.printf
        "; variant=%s steps=%d |P|=%d peak=%d S=|P|+peak=%d gc-runs=%d@."
        (M.variant_name variant) result.M.steps result.M.program_size
        result.M.peak_space
        (M.space_consumption result)
        result.M.gc_runs;
      match result.M.peak_linked with
      | Some u -> Format.printf "; linked peak U=%d@." (u + result.M.program_size)
      | None -> ()
    end;
    match result.M.outcome with M.Done _ -> () | _ -> exit 1
  in
  let doc = "Run a Scheme program on a reference machine and measure space." in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run $ file_pos_arg $ expr_arg $ input_arg $ variant_arg $ perm_arg
      $ stack_policy_arg $ fuel_arg $ linked_arg $ trace_arg $ profile_arg
      $ json_arg $ ring_arg)

(* ------------------------------------------------------------------ *)
(* profile                                                             *)

let profile_cmd =
  let csv_arg =
    let doc =
      "Write the step,space CSV profile to $(docv) (default: the source \
       basename with a .space.csv suffix)."
    in
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc)
  in
  let stride_arg =
    let doc =
      "Sample the space profile every $(docv) steps (the stride doubles \
       automatically if the sample buffer fills)."
    in
    Arg.(value & opt int 1 & info [ "stride" ] ~docv:"STEPS" ~doc)
  in
  let events_arg =
    let doc =
      "Also stream every telemetry event (steps, continuation pushes/pops, \
       allocations, collections) to $(docv) as JSON lines."
    in
    Arg.(value & opt (some string) None & info [ "events" ] ~docv:"FILE" ~doc)
  in
  let profile file expr input variant perm stack_policy fuel linked csv stride
      events =
    with_program file expr @@ fun program_name program ->
    let t = M.create ~variant ~perm ~stack_policy () in
    let prof = Tel.Profile.create ~stride () in
    let events_channel = Option.map open_out events in
    let sink =
      Option.map
        (fun oc ->
          Tel.jsonl_sink (fun line ->
              output_string oc line;
              output_char oc '\n'))
        events_channel
    in
    let telemetry = Tel.create ?sink ~ring:16 ~profile:prof () in
    let result =
      Fun.protect
        ~finally:(fun () -> Option.iter close_out events_channel)
        (fun () ->
          match input with
          | Some n ->
              M.run_program ~fuel ~measure_linked:linked ~telemetry t ~program
                ~input:(R.input_expr n)
          | None -> M.run ~fuel ~measure_linked:linked ~telemetry t program)
    in
    let csv_path =
      match csv with
      | Some p -> p
      | None ->
          let base =
            match file with
            | Some f when f <> "-" ->
                Filename.remove_extension (Filename.basename f)
            | _ -> "profile"
          in
          base ^ ".space.csv"
    in
    write_file csv_path (Tel.Profile.to_csv prof);
    if result.M.output <> "" then prerr_string result.M.output;
    print_endline
      (Json.to_string (result_json ~program_name ~variant result telemetry));
    Format.eprintf "; space profile (%d samples, stride %d) -> %s@."
      (List.length (Tel.Profile.samples prof))
      (Tel.Profile.stride prof) csv_path;
    match result.M.outcome with M.Done _ -> () | _ -> exit 1
  in
  let doc =
    "Run with full telemetry: a JSON summary on stdout and a space-over-time \
     CSV profile on disk."
  in
  Cmd.v (Cmd.info "profile" ~doc)
    Term.(
      const profile $ file_pos_arg $ expr_arg $ input_arg $ variant_arg
      $ perm_arg $ stack_policy_arg $ fuel_arg $ linked_arg $ csv_arg
      $ stride_arg $ events_arg)

(* ------------------------------------------------------------------ *)
(* bench                                                               *)

let bench_cmd =
  let ns_arg =
    let doc = "Comma-separated input sizes to sweep." in
    Arg.(value & opt (list int) [ 10; 100; 1000 ] & info [ "ns" ] ~docv:"N,..." ~doc)
  in
  let json_arg =
    let doc =
      "Print the sweep as a JSON array (one object per input, telemetry \
       summary included) instead of an ASCII table."
    in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let measurement_json name variant (m : R.measurement) =
    Json.Obj
      ([
         ("program", Json.Str name);
         ("variant", Json.Str (M.variant_name variant));
         ("n", Json.Int m.R.n);
         ("space_consumption", Json.Int m.R.space);
         ( "linked_space_consumption",
           match m.R.linked with Some u -> Json.Int u | None -> Json.Null );
         ( "status",
           Json.Str
             (match m.R.status with
             | R.Answer _ -> "done"
             | R.Stuck _ -> "stuck"
             | R.Fuel -> "out-of-fuel") );
         ( "answer",
           match m.R.status with
           | R.Answer a -> Json.Str a
           | _ -> Json.Null );
       ]
      @
      match m.R.summary with
      | Some s -> (
          match Tel.summary_to_json s with Json.Obj fs -> fs | _ -> [])
      | None -> [])
  in
  let bench file expr name_opt ns variant perm stack_policy fuel linked json =
    let name, program =
      match name_opt with
      | Some entry_name -> (
          match Corpus.find entry_name with
          | None ->
              Format.eprintf "schemesim: unknown corpus entry %S@." entry_name;
              exit 2
          | Some e -> (entry_name, Corpus.program e))
      | None -> (
          match load_source file expr with
          | Error m ->
              Format.eprintf "schemesim: %s@." m;
              exit 2
          | Ok (name, source) -> (
              match Expand.program_of_string source with
              | exception Reader.Parse_error e ->
                  Format.eprintf "schemesim: %a@." Reader.pp_error e;
                  exit 1
              | exception Expand.Expand_error e ->
                  Format.eprintf "schemesim: %a@." Expand.pp_error e;
                  exit 1
              | program -> (name, program)))
    in
    let ms =
      R.sweep ~fuel ~measure_linked:linked ~collect_telemetry:true ~perm
        ~stack_policy ~variant ~program ~ns ()
    in
    if json then
      print_endline
        (Json.to_string
           (Json.List (List.map (measurement_json name variant) ms)))
    else begin
      Format.printf "%s(n) under %s:@." name (M.variant_name variant);
      print_string (Table.measurements ms)
    end
  in
  let corpus_name_arg =
    let doc = "Sweep a shipped corpus entry instead of a file." in
    Arg.(value & opt (some string) None & info [ "corpus" ] ~docv:"NAME" ~doc)
  in
  let doc =
    "Sweep a program over several inputs, reporting space consumption, GC \
     activity, and telemetry per input."
  in
  Cmd.v (Cmd.info "bench" ~doc)
    Term.(
      const bench $ file_pos_arg $ expr_arg $ corpus_name_arg $ ns_arg
      $ variant_arg $ perm_arg $ stack_policy_arg $ fuel_arg $ linked_arg
      $ json_arg)

(* ------------------------------------------------------------------ *)
(* analyze                                                             *)

let analyze_cmd =
  let file_arg =
    let doc = "Scheme source file." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)
  in
  let analyze file =
    match TC.analyze_source (read_file file) with
    | exception Reader.Parse_error e ->
        Format.eprintf "schemesim: %a@." Reader.pp_error e;
        exit 1
    | exception Expand.Expand_error e ->
        Format.eprintf "schemesim: %a@." Expand.pp_error e;
        exit 1
    | c ->
        Format.printf "calls:           %d@." c.TC.calls;
        Format.printf "tail calls:      %d (%.1f%%)@." c.TC.tail_calls
          (TC.percent c.TC.tail_calls c.TC.calls);
        Format.printf "self-tail calls: %d (%.1f%%)@." c.TC.self_tail_calls
          (TC.percent c.TC.self_tail_calls c.TC.calls);
        Format.printf "known calls:     %d (%.1f%%)@." c.TC.known_calls
          (TC.percent c.TC.known_calls c.TC.calls)
  in
  let doc = "Static tail-call statistics (the Figure 2 measurement)." in
  Cmd.v (Cmd.info "analyze" ~doc) Term.(const analyze $ file_arg)

(* ------------------------------------------------------------------ *)
(* corpus                                                              *)

let corpus_cmd =
  let name_arg =
    let doc = "Corpus entry to run (omit to list all entries)." in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"NAME" ~doc)
  in
  let n_arg =
    let doc = "Input N for the chosen entry." in
    Arg.(value & opt (some int) None & info [ "n" ] ~docv:"N" ~doc)
  in
  let corpus name n variant =
    match name with
    | None ->
        List.iter
          (fun (e : Corpus.entry) ->
            Format.printf "%-18s %s@." e.Corpus.name e.Corpus.description)
          Corpus.all
    | Some name -> (
        match Corpus.find name with
        | None ->
            Format.eprintf "schemesim: unknown corpus entry %S@." name;
            exit 2
        | Some e ->
            let n =
              match (n, e.Corpus.checks) with
              | Some n, _ -> n
              | None, (n, _) :: _ -> n
              | None, [] -> 0
            in
            let m =
              R.run_once ~variant ~program:(Corpus.program e) ~n ()
            in
            (match m.R.status with
            | R.Answer a -> Format.printf "%s@." a
            | R.Stuck msg -> Format.printf "stuck: %s@." msg
            | R.Fuel -> Format.printf "out of fuel@.");
            Format.printf "; %s(%d) under %s: S=%d steps=%d@." name n
              (M.variant_name variant) m.R.space m.R.steps)
  in
  let doc = "List or run the shipped Scheme corpus." in
  Cmd.v (Cmd.info "corpus" ~doc) Term.(const corpus $ name_arg $ n_arg $ variant_arg)

(* ------------------------------------------------------------------ *)
(* report                                                              *)

let report_cmd =
  let which_arg =
    let doc =
      "Experiment to reproduce: fig2, thm24, thm25, thm26, sec4, cor20, cps, \
       ablation, sanity, or all (default)."
    in
    Arg.(value & pos 0 string "all" & info [] ~docv:"EXPERIMENT" ~doc)
  in
  let report which =
    let table =
      match which with
      | "fig2" -> Ok (X.Fig2.render (X.Fig2.run ()))
      | "thm25" -> Ok (X.Thm25.render (X.Thm25.run ()))
      | "thm24" -> Ok (X.Thm24.render (X.Thm24.run ()))
      | "thm26" -> Ok (X.Thm26.render (X.Thm26.run ()))
      | "sec4" -> Ok (X.Sec4.render (X.Sec4.run ()))
      | "cor20" -> Ok (X.Cor20.render (X.Cor20.run ()))
      | "cps" -> Ok (X.Cps.render (X.Cps.run ()))
      | "ablation" -> Ok (X.Ablation.render (X.Ablation.run ()))
      | "sanity" -> Ok (X.Sanity.render (X.Sanity.run ()))
      | "all" -> Ok (X.render_all ())
      | other -> Error other
    in
    match table with
    | Ok s -> print_string s
    | Error other ->
        Format.eprintf "schemesim: unknown experiment %S@." other;
        exit 2
  in
  let doc = "Print the paper-reproduction tables (see DESIGN.md)." in
  Cmd.v (Cmd.info "report" ~doc) Term.(const report $ which_arg)

let () =
  let doc =
    "reference implementations for 'Proper Tail Recursion and Space \
     Efficiency' (Clinger, PLDI 1998)"
  in
  let info = Cmd.info "schemesim" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ run_cmd; profile_cmd; bench_cmd; analyze_cmd; corpus_cmd; report_cmd ]))
