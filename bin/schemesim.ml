(* schemesim — run Scheme programs on the paper's reference machines.

   subcommands:
     run         evaluate a file or expression on a chosen variant,
                 reporting the answer and the measured space consumption
     profile     run with full telemetry: JSON summary + CSV space profile
     bench       sweep a program over several inputs, tabulating space
     analyze     static tail-call statistics (Figure 2) for a file
     corpus      list the shipped corpus, or run one entry
     report      print the paper-reproduction experiment tables
     faults      fault-injection matrix + differential oracle (JSON)
     spaceprof   space-provenance profiler: per-site heap census at the
                 peak, flamegraph export, and per-variant census diffs
     serve       evaluation-as-a-service daemon: length-prefixed JSON
                 over TCP or Unix sockets, admission control, per-tenant
                 quotas, graceful SIGTERM drain
     loadgen     seeded closed-loop load generator (with poison mix)
                 against a running serve daemon
     bignumbench Karatsuba/schoolbook crossover, decimal-conversion and
                 fixnum fast-path timings (BENCH_bignum.json)

   exit codes (uniform across subcommands, documented in README):
     0  the program ran to completion (Done)
     1  program-level failure: stuck, aborted by the resource governor,
        a failed sweep point, or a failed oracle check
     2  usage error: bad flags, unreadable/unparsable source, unknown
        corpus entry or experiment *)

open Cmdliner
module M = Tailspace_core.Machine
module SM = Tailspace_core.Space_model
module Expand = Tailspace_expander.Expand
module Reader = Tailspace_sexp.Reader
module TC = Tailspace_analysis.Tail_calls
module X = Tailspace_harness.Experiments
module R = Tailspace_harness.Runner
module Table = Tailspace_harness.Table
module Corpus = Tailspace_corpus.Corpus
module Tel = Tailspace_telemetry.Telemetry
module Json = Tailspace_telemetry.Telemetry.Json
module Res = Tailspace_resilience.Resilience
module Oracle = Tailspace_harness.Oracle
module Families = Tailspace_corpus.Families
module Pool = Tailspace_parallel.Pool
module Mcache = Tailspace_parallel.Cache
module Vm = Tailspace_vm.Vm
module Ast = Tailspace_ast.Ast
module Census = Tailspace_core.Census
module Prov = Tailspace_provenance.Provenance
module Bignum = Tailspace_bignum.Bignum

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

(* JSON pieces shared by [run --json], [profile], and [bench --json]. *)

let peaks_json peaks =
  Json.Obj (List.map (fun (m, p) -> (SM.name m, Json.Int p)) peaks)

let outcome_name = function
  | M.Done _ -> "done"
  | M.Stuck _ -> "stuck"
  | M.Aborted _ -> "aborted"

let stuck_trace_json tl =
  Json.List
    (List.map
       (fun (step, config) ->
         Json.Obj [ ("step", Json.Int step); ("config", Json.Str config) ])
       (Tel.ring_contents tl))

(* The summary object: run-level facts first, then the telemetry
   summary's fields spliced in at top level (steps, gc_runs,
   allocations, max_cont_depth, peak_space, peak_linked, ...), then the
   ring-buffer trace when the run got stuck. *)
let result_json ~program_name ~variant (result : M.result) tl =
  let summary_fields =
    match Tel.summary_to_json (Tel.summary tl) with
    | Json.Obj fields -> fields
    | _ -> []
  in
  let answer =
    match result.M.outcome with
    | M.Done { answer; _ } -> Json.Str answer
    | _ -> Json.Null
  in
  let error =
    match result.M.outcome with
    | M.Stuck m -> Json.Str m
    | M.Aborted { reason; _ } -> Json.Str (Res.abort_reason_message reason)
    | M.Done _ -> Json.Null
  in
  let abort =
    match result.M.outcome with
    | M.Aborted { reason; _ } -> Res.abort_reason_to_json reason
    | _ -> Json.Null
  in
  Json.Obj
    ([
       ("program", Json.Str program_name);
       ("variant", Json.Str (M.variant_name variant));
       ("outcome", Json.Str (outcome_name result.M.outcome));
       ("exit_code",
        Json.Int (match result.M.outcome with M.Done _ -> 0 | _ -> 1));
       ("answer", answer);
       ("error", error);
       ("abort", abort);
       ("program_size", Json.Int result.M.program_size);
       ("space_consumption", Json.Int (M.space_consumption result));
       ("peaks", peaks_json result.M.peaks);
     ]
    @ summary_fields
    @
    match result.M.outcome with
    | M.Stuck _ -> [ ("stuck_trace", stuck_trace_json tl) ]
    | _ -> [])

let print_stuck_trace tl =
  match Tel.ring_contents tl with
  | [] -> ()
  | trace ->
      Format.printf "; last %d configurations before the stuck state:@."
        (List.length trace);
      List.iter
        (fun (step, config) -> Format.printf ";   %6d %s@." step config)
        trace

(* ------------------------------------------------------------------ *)
(* shared options                                                      *)

let variant_conv =
  let parse s =
    match M.variant_of_name s with
    | Some v -> Ok v
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown variant %S (expected %s)" s
               (String.concat "|" (List.map M.variant_name M.all_variants))))
  in
  Arg.conv (parse, fun ppf v -> Format.pp_print_string ppf (M.variant_name v))

let variant_arg =
  let doc =
    "Reference machine: tail (properly tail recursive, default), gc \
     (improper), stack (Algol-like deletion), evlis, free, or sfs \
     (safe-for-space)."
  in
  Arg.(value & opt variant_conv M.Tail & info [ "v"; "variant" ] ~docv:"VARIANT" ~doc)

let perm_arg =
  let cv =
    let parse = function
      | "ltr" -> Ok M.Left_to_right
      | "rtl" -> Ok M.Right_to_left
      | s -> (
          match int_of_string_opt s with
          | Some seed -> Ok (M.Seeded seed)
          | None -> Error (`Msg "expected ltr, rtl, or an integer seed"))
    in
    let print ppf = function
      | M.Left_to_right -> Format.pp_print_string ppf "ltr"
      | M.Right_to_left -> Format.pp_print_string ppf "rtl"
      | M.Seeded s -> Format.fprintf ppf "%d" s
    in
    Arg.conv (parse, print)
  in
  let doc = "Argument evaluation order: ltr, rtl, or an integer seed." in
  Arg.(value & opt cv M.Left_to_right & info [ "perm" ] ~docv:"ORDER" ~doc)

let stack_policy_arg =
  let cv =
    let parse = function
      | "algol" -> Ok M.Algol
      | "safe" -> Ok M.Safe_deletion
      | _ -> Error (`Msg "expected algol or safe")
    in
    let print ppf = function
      | M.Algol -> Format.pp_print_string ppf "algol"
      | M.Safe_deletion -> Format.pp_print_string ppf "safe"
    in
    Arg.conv (parse, print)
  in
  let doc =
    "I_stack deletion policy: algol (delete everything, stuck on dangling \
     pointers) or safe (delete the maximal safe subset, default)."
  in
  Arg.(value & opt cv M.Safe_deletion & info [ "stack-policy" ] ~docv:"POLICY" ~doc)

let engine_arg =
  let cv =
    let parse s =
      match M.engine_of_name s with
      | Some e -> Ok e
      | None ->
          Error
            (`Msg
              (Printf.sprintf "unknown engine %S (expected %s)" s
                 (String.concat "|" (List.map M.engine_name M.all_engines))))
    in
    Arg.conv (parse, fun ppf e -> Format.pp_print_string ppf (M.engine_name e))
  in
  let doc =
    "Execution tier: stepper (the AST-walking reference machines, default), \
     vm (the instrumented bytecode VM — bit-compatible measurements, Tail \
     variant only), or vm-fast (the bytecode VM with accounting compiled \
     out: answers only, much faster)."
  in
  Arg.(value & opt cv M.Stepper & info [ "engine" ] ~docv:"ENGINE" ~doc)

let vm_fast_arg =
  let doc = "Shorthand for --engine vm-fast." in
  Arg.(value & flag & info [ "vm-fast" ] ~doc)

(* The VM tiers refuse configurations whose accounting they cannot
   honor; surface that as a usage error (exit 2) before running. *)
let resolve_engine ~engine ~vm_fast ~variant ~perm ~measure =
  let engine = if vm_fast then M.Vm_fast else engine in
  let usage m =
    Format.eprintf "schemesim: %s@." m;
    exit 2
  in
  (match engine with
  | M.Stepper -> ()
  | M.Vm ->
      if variant <> M.Tail then
        usage "--engine vm supports only the tail variant (-v tail)"
  | M.Vm_fast ->
      if variant <> M.Tail then
        usage "--engine vm-fast supports only the tail variant (-v tail)";
      if perm <> M.Left_to_right then
        usage "--engine vm-fast evaluates left-to-right only (--perm ltr)";
      if SM.normalize measure <> [ SM.Flat ] then
        usage
          "--engine vm-fast measures only the flat model (drop \
           --linked/--model)");
  engine

let fuel_arg =
  let doc = "Maximum number of machine steps." in
  Arg.(value & opt int 20_000_000 & info [ "fuel" ] ~docv:"STEPS" ~doc)

let timeout_arg =
  let doc =
    "Wall-clock deadline in seconds; exceeding it aborts the run with a \
     structured 'deadline' outcome."
  in
  Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECONDS" ~doc)

let space_budget_arg =
  let doc =
    "Maximum live flat space in words (Definition 21); the machine collects \
     before judging, so only genuinely live data counts."
  in
  Arg.(
    value & opt (some int) None & info [ "space-budget" ] ~docv:"WORDS" ~doc)

let output_cap_arg =
  let doc = "Maximum bytes the program may write with display/write." in
  Arg.(value & opt (some int) None & info [ "output-cap" ] ~docv:"BYTES" ~doc)

let make_budget ?timeout_s ?space_words ?output_bytes () =
  Res.Budget.make ?timeout_s ?space_words ?output_bytes ()

let linked_arg =
  let doc =
    "Also measure the linked-environment space model (Figure 8); shorthand \
     for --model linked."
  in
  Arg.(value & flag & info [ "linked" ] ~doc)

let model_conv =
  let parse s =
    match SM.of_name (String.lowercase_ascii (String.trim s)) with
    | Some m -> Ok m
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown space model %S (expected %s)" s
               (String.concat "|" (List.map SM.name SM.all))))
  in
  Arg.conv (parse, fun ppf m -> Format.pp_print_string ppf (SM.name m))

let model_arg =
  let doc =
    "Extra space models to measure, comma-separated: flat (Figure 7, always \
     measured), linked (Figure 8's dedup'd bindings), log (pointer-size \
     accounting — every linked unit at ceil(log2 |store|) bits). Composes \
     with --linked."
  in
  Arg.(value & opt (list model_conv) [] & info [ "model" ] ~docv:"MODELS" ~doc)

(* The measure list a command runs under: --model's list plus the
   --linked shorthand, normalized (Flat always present, canonical
   order). *)
let measure_of ~linked ~models =
  SM.normalize (models @ if linked then [ SM.Linked ] else [])

(* "; linked peak U=..." / "; log peak Log=..." footer lines of the
   plain-text reports, one per heavy model measured. Definition 23
   charges the program term too: |P| words, or word-size bits under
   Log. *)
let print_heavy_peaks ~program_size peaks =
  List.iter
    (fun ((model : SM.t), p) ->
      match model with
      | SM.Flat -> ()
      | SM.Linked -> Format.printf "; linked peak U=%d@." (p + program_size)
      | SM.Log ->
          Format.printf "; log peak Log=%d bits@."
            (p + (SM.word_bits * program_size)))
    peaks

let no_annot_arg =
  let doc =
    "Disable the static annotation pass (precomputed per-node free-variable \
     sets and tail positions) and fall back to on-the-fly free-variable \
     computation. Observables are identical either way (oracle-checked); \
     this is the escape hatch for benchmarking the pass itself."
  in
  Arg.(value & flag & info [ "no-annot" ] ~doc)

let trace_arg =
  let doc = "Print a one-line description of the first $(docv) machine steps." in
  Arg.(value & opt int 0 & info [ "trace" ] ~docv:"STEPS" ~doc)

let profile_arg =
  let doc = "Write a step,space CSV profile of the run to $(docv)." in
  Arg.(value & opt (some string) None & info [ "profile" ] ~docv:"FILE" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the measurement sweep (default: available cores minus \
     one; 1 forces the serial path). Sweep points are independent, so the \
     output is byte-identical whatever the value."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

(* ------------------------------------------------------------------ *)
(* run / profile shared plumbing                                       *)

let file_pos_arg =
  let doc = "Scheme source file (use - for stdin)." in
  Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)

let expr_arg =
  let doc = "Evaluate an inline program instead of a file." in
  Arg.(value & opt (some string) None & info [ "e"; "expr" ] ~docv:"PROGRAM" ~doc)

let input_arg =
  let doc =
    "Treat the program as §12's procedure-of-one-argument and apply it to \
     this integer."
  in
  Arg.(value & opt (some int) None & info [ "n"; "input" ] ~docv:"N" ~doc)

(* (display name, source text) or an error message. *)
let load_source file expr =
  match (file, expr) with
  | _, Some e -> Ok ("<expr>", e)
  | Some "-", None -> Ok ("<stdin>", In_channel.input_all stdin)
  | Some f, None -> ( try Ok (f, read_file f) with Sys_error m -> Error m)
  | None, None -> Error "expected a FILE argument or --expr"

let with_program file expr k =
  match load_source file expr with
  | Error m ->
      Format.eprintf "schemesim: %s@." m;
      exit 2
  | Ok (name, source) -> (
      match Expand.program_of_string source with
      | exception Reader.Parse_error e ->
          Format.eprintf "schemesim: %a@." Reader.pp_error e;
          exit 2
      | exception Expand.Expand_error e ->
          Format.eprintf "schemesim: %a@." Expand.pp_error e;
          exit 2
      | program -> k name program)

(* ------------------------------------------------------------------ *)
(* run                                                                 *)

let run_cmd =
  let json_arg =
    let doc =
      "Print a single JSON object (answer, space, telemetry summary, and the \
       ring-buffer trace when stuck) instead of the plain-text report."
    in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let ring_arg =
    let doc =
      "Keep the last $(docv) configurations in a ring buffer, dumped when the \
       machine gets stuck (0 disables the per-step description cost)."
    in
    Arg.(value & opt int 16 & info [ "ring" ] ~docv:"K" ~doc)
  in
  let run file expr input variant perm stack_policy no_annot engine vm_fast
      fuel timeout space_budget output_cap linked models trace_steps profile
      json ring =
    with_program file expr @@ fun program_name program ->
    let measure = measure_of ~linked ~models in
    let engine = resolve_engine ~engine ~vm_fast ~variant ~perm ~measure in
    let budget =
      make_budget ?timeout_s:timeout ?space_words:space_budget
        ?output_bytes:output_cap ()
    in
    (match engine with
    | M.Stepper -> ()
    | _ ->
        if trace_steps > 0 then begin
          Format.eprintf
            "schemesim: --trace requires the stepper engine (the VM does not \
             describe per-step configurations)@.";
          exit 2
        end;
        if input = None then begin
          Format.eprintf
            "schemesim: --engine %s requires --input N (the VM runs §12's \
             procedure-of-one-argument convention)@."
            (M.engine_name engine);
          exit 2
        end);
    if engine <> M.Stepper then begin
      let config =
        M.Config.make ~engine ~variant ~perm ~stack_policy
          ~annotate:(not no_annot) ()
      in
      let profile_channel = Option.map open_out profile in
      let sink =
        Option.map
          (fun oc -> function
            | Tel.Step { step; space; _ } ->
                Printf.fprintf oc "%d,%d\n" step space
            | _ -> ())
          profile_channel
      in
      let telemetry = Tel.create ?sink ~ring () in
      let opts = M.Run_opts.make ~fuel ~budget ~measure ~telemetry () in
      let n = Option.get input in
      let r =
        Fun.protect
          ~finally:(fun () -> Option.iter close_out profile_channel)
          (fun () -> Vm.exec_program ~opts config ~program ~input:(R.input_expr n))
      in
      let space = r.Vm.program_size + Vm.peak_space r in
      if json then
        print_endline
          (Json.to_string
             (Json.Obj
                [
                  ("program", Json.Str program_name);
                  ("engine", Json.Str (M.engine_name engine));
                  ("variant", Json.Str (M.variant_name variant));
                  ( "outcome",
                    Json.Str
                      (match r.Vm.outcome with
                      | Vm.Done _ -> "done"
                      | Vm.Stuck _ -> "stuck"
                      | Vm.Aborted _ -> "aborted") );
                  ( "exit_code",
                    Json.Int
                      (match r.Vm.outcome with Vm.Done _ -> 0 | _ -> 1) );
                  ( "answer",
                    match r.Vm.outcome with
                    | Vm.Done a -> Json.Str a
                    | _ -> Json.Null );
                  ( "error",
                    match r.Vm.outcome with
                    | Vm.Stuck m -> Json.Str m
                    | Vm.Aborted reason ->
                        Json.Str (Res.abort_reason_message reason)
                    | Vm.Done _ -> Json.Null );
                  ( "abort",
                    match r.Vm.outcome with
                    | Vm.Aborted reason -> Res.abort_reason_to_json reason
                    | _ -> Json.Null );
                  ("program_size", Json.Int r.Vm.program_size);
                  ("space_consumption", Json.Int space);
                  ("steps", Json.Int r.Vm.steps);
                  ("peak_space", Json.Int (Vm.peak_space r));
                  ("gc_runs", Json.Int r.Vm.gc_runs);
                  ("peaks", peaks_json r.Vm.peaks);
                ]))
      else begin
        if r.Vm.output <> "" then print_string r.Vm.output;
        (match r.Vm.outcome with
        | Vm.Done answer -> Format.printf "%s@." answer
        | Vm.Stuck m -> Format.printf "stuck: %s@." m
        | Vm.Aborted reason ->
            Format.printf "aborted: %s@." (Res.abort_reason_message reason));
        Format.printf
          "; engine=%s variant=%s steps=%d |P|=%d peak=%d S=|P|+peak=%d \
           gc-runs=%d@."
          (M.engine_name engine) (M.variant_name variant) r.Vm.steps
          r.Vm.program_size (Vm.peak_space r) space r.Vm.gc_runs;
        print_heavy_peaks ~program_size:r.Vm.program_size r.Vm.peaks
      end;
      match r.Vm.outcome with Vm.Done _ -> exit 0 | _ -> exit 1
    end;
    let t =
      M.create_with
        (M.Config.make ~variant ~perm ~stack_policy ~annotate:(not no_annot) ())
    in
    let config_sink =
      if trace_steps <= 0 then None
      else
        Some
          (fun step description ->
            if step < trace_steps then
              Format.printf "; %6d %s@." step description)
    in
    let profile_channel = Option.map open_out profile in
    (* the step,space CSV profile is fed from the telemetry Step events,
       which the machine emits once per transition *)
    let sink =
      Option.map
        (fun oc -> function
          | Tel.Step { step; space; _ } -> Printf.fprintf oc "%d,%d\n" step space
          | _ -> ())
        profile_channel
    in
    let telemetry = Tel.create ?sink ?config_sink ~ring () in
    let opts = M.Run_opts.make ~fuel ~budget ~measure ~telemetry () in
    let result =
      Fun.protect
        ~finally:(fun () -> Option.iter close_out profile_channel)
        (fun () ->
          match input with
          | Some n -> M.exec_program ~opts t ~program ~input:(R.input_expr n)
          | None -> M.exec ~opts t program)
    in
    if json then
      print_endline
        (Json.to_string (result_json ~program_name ~variant result telemetry))
    else begin
      if result.M.output <> "" then print_string result.M.output;
      (match result.M.outcome with
      | M.Done { answer; _ } -> Format.printf "%s@." answer
      | M.Stuck m ->
          Format.printf "stuck: %s@." m;
          print_stuck_trace telemetry
      | M.Aborted { reason; _ } ->
          Format.printf "aborted: %s@." (Res.abort_reason_message reason));
      Format.printf
        "; variant=%s steps=%d |P|=%d peak=%d S=|P|+peak=%d gc-runs=%d@."
        (M.variant_name variant) result.M.steps result.M.program_size
        (M.peak_space result)
        (M.space_consumption result)
        result.M.gc_runs;
      print_heavy_peaks ~program_size:result.M.program_size result.M.peaks
    end;
    match result.M.outcome with M.Done _ -> () | _ -> exit 1
  in
  let doc = "Run a Scheme program on a reference machine and measure space." in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run $ file_pos_arg $ expr_arg $ input_arg $ variant_arg $ perm_arg
      $ stack_policy_arg $ no_annot_arg $ engine_arg $ vm_fast_arg $ fuel_arg
      $ timeout_arg $ space_budget_arg $ output_cap_arg $ linked_arg
      $ model_arg $ trace_arg $ profile_arg $ json_arg $ ring_arg)

(* ------------------------------------------------------------------ *)
(* profile                                                             *)

let profile_cmd =
  let csv_arg =
    let doc =
      "Write the step,space CSV profile to $(docv) (default: the source \
       basename with a .space.csv suffix)."
    in
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc)
  in
  let stride_arg =
    let doc =
      "Sample the space profile every $(docv) steps (the stride doubles \
       automatically if the sample buffer fills)."
    in
    Arg.(value & opt int 1 & info [ "stride" ] ~docv:"STEPS" ~doc)
  in
  let events_arg =
    let doc =
      "Also stream every telemetry event (steps, continuation pushes/pops, \
       allocations, collections) to $(docv) as JSON lines."
    in
    Arg.(value & opt (some string) None & info [ "events" ] ~docv:"FILE" ~doc)
  in
  let profile file expr input variant perm stack_policy no_annot fuel timeout
      space_budget output_cap linked models csv stride events =
    with_program file expr @@ fun program_name program ->
    let measure = measure_of ~linked ~models in
    let budget =
      make_budget ?timeout_s:timeout ?space_words:space_budget
        ?output_bytes:output_cap ()
    in
    let t =
      M.create_with
        (M.Config.make ~variant ~perm ~stack_policy ~annotate:(not no_annot) ())
    in
    let prof = Tel.Profile.create ~stride () in
    let events_channel = Option.map open_out events in
    let sink =
      Option.map
        (fun oc ->
          Tel.jsonl_sink (fun line ->
              output_string oc line;
              output_char oc '\n'))
        events_channel
    in
    let telemetry = Tel.create ?sink ~ring:16 ~profile:prof () in
    let opts = M.Run_opts.make ~fuel ~budget ~measure ~telemetry () in
    let result =
      Fun.protect
        ~finally:(fun () -> Option.iter close_out events_channel)
        (fun () ->
          match input with
          | Some n -> M.exec_program ~opts t ~program ~input:(R.input_expr n)
          | None -> M.exec ~opts t program)
    in
    let csv_path =
      match csv with
      | Some p -> p
      | None ->
          let base =
            match file with
            | Some f when f <> "-" ->
                Filename.remove_extension (Filename.basename f)
            | _ -> "profile"
          in
          base ^ ".space.csv"
    in
    write_file csv_path (Tel.Profile.to_csv prof);
    if result.M.output <> "" then prerr_string result.M.output;
    print_endline
      (Json.to_string (result_json ~program_name ~variant result telemetry));
    Format.eprintf "; space profile (%d samples, stride %d) -> %s@."
      (List.length (Tel.Profile.samples prof))
      (Tel.Profile.stride prof) csv_path;
    match result.M.outcome with M.Done _ -> () | _ -> exit 1
  in
  let doc =
    "Run with full telemetry: a JSON summary on stdout and a space-over-time \
     CSV profile on disk."
  in
  Cmd.v (Cmd.info "profile" ~doc)
    Term.(
      const profile $ file_pos_arg $ expr_arg $ input_arg $ variant_arg
      $ perm_arg $ stack_policy_arg $ no_annot_arg $ fuel_arg $ timeout_arg
      $ space_budget_arg $ output_cap_arg $ linked_arg $ model_arg $ csv_arg
      $ stride_arg $ events_arg)

(* ------------------------------------------------------------------ *)
(* bench                                                               *)

(* [bench --compare OLD NEW] gates on regressions between two baseline
   files written by [--baseline-out]. Wall-clock gets a noise band
   (machines differ, CI is noisy); space columns are deterministic word
   counts, so their default band is zero — any growth is a regression,
   as is a point whose status degrades from [done] or disappears. *)
let compare_baselines ~wall_band ~space_band old_path new_path =
  let load path =
    match Json.of_string (read_file path) with
    | Ok j -> j
    | Error m ->
        Format.eprintf "schemesim: %s: %s@." path m;
        exit 2
    | exception Sys_error m ->
        Format.eprintf "schemesim: %s@." m;
        exit 2
  in
  let old_j = load old_path and new_j = load new_path in
  let num name j =
    match Json.member name j with
    | Some (Json.Float f) -> Some f
    | Some (Json.Int i) -> Some (float_of_int i)
    | _ -> None
  in
  let int_of name j =
    match Json.member name j with Some (Json.Int i) -> Some i | _ -> None
  in
  let str_of name j =
    match Json.member name j with Some (Json.Str s) -> Some s | _ -> None
  in
  let points j =
    match Json.member "points" j with Some (Json.List l) -> l | _ -> []
  in
  let regressions = ref [] in
  let reg fmt =
    Printf.ksprintf (fun s -> regressions := s :: !regressions) fmt
  in
  (match (num "wall_s" old_j, num "wall_s" new_j) with
  | Some ow, Some nw ->
      if nw > ow *. (1. +. wall_band) then
        reg "wall-clock regression: %.3fs -> %.3fs (+%.0f%% > %.0f%% band)" ow
          nw
          ((nw /. ow -. 1.) *. 100.)
          (wall_band *. 100.)
  | _ -> ());
  (* serve-aware keys (BENCH_serve.json from `schemesim loadgen`):
     throughput may not drop and tail latency may not grow beyond the
     wall-clock noise band — both are timing-derived, so they share it *)
  (match (num "throughput_rps" old_j, num "throughput_rps" new_j) with
  | Some o, Some n when n < o *. (1. -. wall_band) ->
      reg "throughput regression: %.1f -> %.1f rps (-%.0f%% > %.0f%% band)" o
        n
        ((1. -. (n /. o)) *. 100.)
        (wall_band *. 100.)
  | _ -> ());
  (let p99 j =
     match Json.member "latency_ms" j with
     | Some lat -> num "p99" lat
     | None -> None
   in
   match (p99 old_j, p99 new_j) with
   | Some o, Some n when n > o *. (1. +. wall_band) ->
       reg "p99 latency regression: %.2fms -> %.2fms (+%.0f%% > %.0f%% band)"
         o n
         (((n /. o) -. 1.) *. 100.)
         (wall_band *. 100.)
   | _ -> ());
  List.iter
    (fun op ->
      match int_of "n" op with
      | None -> ()
      | Some n -> (
          match
            List.find_opt (fun np -> int_of "n" np = Some n) (points new_j)
          with
          | None -> reg "point n=%d missing from %s" n new_path
          | Some np ->
              (match (str_of "status" op, str_of "status" np) with
              | Some "done", Some s when s <> "done" ->
                  reg "point n=%d status degraded: done -> %s" n s
              | _ -> ());
              List.iter
                (fun field ->
                  match (int_of field op, int_of field np) with
                  | Some o, Some nn
                    when float_of_int nn
                         > float_of_int o *. (1. +. space_band) ->
                      reg "point n=%d %s regression: %s -> %s (%+.1f%% > %.0f%% band)"
                        n field (Prov.humanize_words o)
                        (Prov.humanize_words nn)
                        (Prov.percent_delta ~from:o ~to_:nn)
                        (space_band *. 100.)
                  | _ -> ())
                [ "peak_space"; "space" ];
              (* per-model peaks: gate every model measured in BOTH
                 baselines; a model present only on one side is a
                 measurement-set change, not a regression *)
              let peaks j =
                match Json.member "peaks" j with
                | Some (Json.Obj fs) -> fs
                | _ -> []
              in
              List.iter
                (fun (model, ov) ->
                  match (ov, List.assoc_opt model (peaks np)) with
                  | Json.Int o, Some (Json.Int nn)
                    when float_of_int nn > float_of_int o *. (1. +. space_band)
                    ->
                      reg
                        "point n=%d peak[%s] regression: %d -> %d (%+.1f%% > \
                         %.0f%% band)"
                        n model o nn
                        (Prov.percent_delta ~from:o ~to_:nn)
                        (space_band *. 100.)
                  | _ -> ())
                (peaks op)))
    (points old_j);
  match List.rev !regressions with
  | [] ->
      Format.printf "bench compare: %s vs %s: no regressions@." old_path
        new_path;
      exit 0
  | rs ->
      Format.printf "bench compare: %s vs %s: %d regression(s)@." old_path
        new_path (List.length rs);
      List.iter (fun r -> Format.printf "  REGRESSION %s@." r) rs;
      exit 1

let bench_cmd =
  let ns_arg =
    let doc = "Comma-separated input sizes to sweep." in
    Arg.(value & opt (list int) [ 10; 100; 1000 ] & info [ "ns" ] ~docv:"N,..." ~doc)
  in
  let json_arg =
    let doc =
      "Print the sweep as a JSON array (one object per input, telemetry \
       summary included) instead of an ASCII table."
    in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let keep_going_arg =
    let doc =
      "Crash-proof sweep: retry starved points with escalating fuel, keep \
       going past failed points, and report the partial table with per-point \
       abort reasons and notes."
    in
    Arg.(value & flag & info [ "keep-going" ] ~doc)
  in
  let status_json (s : R.status) =
    match s with
    | R.Answer _ -> Json.Str "done"
    | R.Stuck _ -> Json.Str "stuck"
    | R.Aborted r -> Json.Str ("aborted:" ^ Res.abort_reason_name r)
  in
  let measurement_json name variant (m : R.measurement) =
    Json.Obj
      ([
         ("program", Json.Str name);
         ("variant", Json.Str (M.variant_name variant));
         ("n", Json.Int m.R.n);
         ("space_consumption", Json.Int m.R.space);
         ("peaks", peaks_json m.R.peaks);
         ( "space_consumption_by_model",
           Json.Obj
             (List.filter_map
                (fun model ->
                  Option.map
                    (fun c -> (SM.name model, Json.Int c))
                    (R.consumption m model))
                SM.all) );
         ("status", status_json m.R.status);
         ( "abort",
           match m.R.status with
           | R.Aborted r -> Res.abort_reason_to_json r
           | _ -> Json.Null );
         ( "answer",
           match m.R.status with
           | R.Answer a -> Json.Str a
           | _ -> Json.Null );
       ]
      @
      match m.R.summary with
      | Some s -> (
          match Tel.summary_to_json s with Json.Obj fs -> fs | _ -> [])
      | None -> [])
  in
  let bench file expr name_opt ns variant perm stack_policy no_annot engine
      vm_fast fuel timeout space_budget output_cap linked models json
      keep_going jobs cache_dir baseline_out compare new_pos wall_band
      space_band =
    if compare then begin
      match (file, new_pos) with
      | Some old_path, Some new_path ->
          compare_baselines ~wall_band ~space_band old_path new_path
      | _ ->
          Format.eprintf
            "schemesim: bench --compare expects two baseline files: bench \
             --compare OLD NEW@.";
          exit 2
    end;
    let measure = measure_of ~linked ~models in
    let engine = resolve_engine ~engine ~vm_fast ~variant ~perm ~measure in
    (* [cache_source] is the program's identity in the cache key: the
       corpus tag, or the source text itself for files and inline
       expressions — editing the program invalidates its entries. *)
    let name, cache_source, program =
      match name_opt with
      | Some entry_name -> (
          match Corpus.find entry_name with
          | None ->
              Format.eprintf "schemesim: unknown corpus entry %S@." entry_name;
              exit 2
          | Some e -> (entry_name, "corpus:" ^ entry_name, Corpus.program e))
      | None -> (
          match load_source file expr with
          | Error m ->
              Format.eprintf "schemesim: %s@." m;
              exit 2
          | Ok (name, source) -> (
              match Expand.program_of_string source with
              | exception Reader.Parse_error e ->
                  Format.eprintf "schemesim: %a@." Reader.pp_error e;
                  exit 2
              | exception Expand.Expand_error e ->
                  Format.eprintf "schemesim: %a@." Expand.pp_error e;
                  exit 2
              | program -> (name, "source:" ^ source, program)))
    in
    let budget =
      make_budget ?timeout_s:timeout ?space_words:space_budget
        ?output_bytes:output_cap ()
    in
    let cache = Option.map (fun dir -> Mcache.create ~dir ()) cache_dir in
    let cache_source = Option.map (fun _ -> cache_source) cache in
    let started = Res.Clock.now () in
    let config =
      M.Config.make ~engine ~variant ~perm ~stack_policy
        ~annotate:(not no_annot) ()
    in
    let outcome =
      Pool.with_pool ?jobs (fun pool ->
          if keep_going then
            `Supervised
              (R.sweep_supervised ?pool ?cache ?cache_source
                 ~opts:
                   (M.Run_opts.make
                      ~budget:{ budget with Res.Budget.fuel = Some fuel }
                      ~measure ())
                 ~collect_telemetry:true ~config ~program ~ns ())
          else
            `Plain
              (R.sweep ?pool ?cache ?cache_source
                 ~opts:(M.Run_opts.make ~fuel ~budget ~measure ())
                 ~collect_telemetry:true ~config ~program ~ns ()))
    in
    let wall_s = Res.Clock.now () -. started in
    (match cache with
    | Some c ->
        Format.eprintf "; cache: %d hits, %d misses@." (Mcache.hits c)
          (Mcache.misses c)
    | None -> ());
    (match baseline_out with
    | None -> ()
    | Some path ->
        let ms =
          match outcome with
          | `Plain ms -> ms
          | `Supervised s ->
              List.map (fun (p : R.supervised_point) -> p.R.measurement)
                s.R.points
        in
        let merged =
          Tel.merge_summaries
            (List.filter_map (fun (m : R.measurement) -> m.R.summary) ms)
        in
        let baseline =
          Json.Obj
            [
              ("program", Json.Str name);
              ("variant", Json.Str (M.variant_name variant));
              ("ns", Json.List (List.map (fun n -> Json.Int n) ns));
              ( "jobs",
                Json.Int
                  (match jobs with Some j -> max 1 j | None -> Pool.default_jobs ())
              );
              ("wall_s", Json.Float wall_s);
              ( "cache",
                match cache with
                | Some c ->
                    Json.Obj
                      [
                        ("hits", Json.Int (Mcache.hits c));
                        ("misses", Json.Int (Mcache.misses c));
                      ]
                | None -> Json.Null );
              ( "points",
                Json.List
                  (List.map
                     (fun (m : R.measurement) ->
                       Json.Obj
                         [
                           ("n", Json.Int m.R.n);
                           ("space", Json.Int m.R.space);
                           ("peak_space", Json.Int (R.peak_space m));
                           ("peaks", peaks_json m.R.peaks);
                           ("steps", Json.Int m.R.steps);
                           ("status", status_json m.R.status);
                         ])
                     ms) );
              ("telemetry", Tel.summary_to_json merged);
            ]
        in
        write_file path (Json.to_string baseline);
        Format.eprintf "; baseline -> %s@." path);
    let failed =
      match outcome with
      | `Supervised s ->
        if json then
          print_endline
            (Json.to_string
               (Json.Obj
                  [
                    ("program", Json.Str name);
                    ("variant", Json.Str (M.variant_name variant));
                    ("answered", Json.Int s.R.answered);
                    ("degraded", Json.Int s.R.degraded);
                    ("status",
                     Json.Str (if s.R.degraded = 0 then "done" else "degraded"));
                    ( "points",
                      Json.List
                        (List.map
                           (fun (p : R.supervised_point) ->
                             Json.Obj
                               [
                                 ( "measurement",
                                   measurement_json name variant
                                     p.R.measurement );
                                 ("attempts", Json.Int p.R.attempts);
                                 ( "note",
                                   match p.R.note with
                                   | Some n -> Json.Str n
                                   | None -> Json.Null );
                               ])
                           s.R.points) );
                  ]))
        else begin
          Format.printf "%s(n) under %s (supervised):@." name
            (M.variant_name variant);
          print_string (Table.supervised s)
        end;
        s.R.degraded > 0
      | `Plain ms ->
        if json then
          print_endline
            (Json.to_string
               (Json.List (List.map (measurement_json name variant) ms)))
        else begin
          Format.printf "%s(n) under %s:@." name (M.variant_name variant);
          print_string (Table.measurements ms)
        end;
        not (R.all_answered ms)
    in
    if failed then exit 1
  in
  let cache_dir_arg =
    let doc =
      "Cache measured points as JSON files under $(docv) (created if \
       missing); a re-run with the same program and configuration replays \
       cached points instead of measuring them."
    in
    Arg.(value & opt (some string) None & info [ "cache" ] ~docv:"DIR" ~doc)
  in
  let baseline_out_arg =
    let doc =
      "Write a machine-readable baseline (deterministic per-point results \
       plus wall-clock, job count, cache statistics, and merged telemetry) \
       to $(docv)."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "baseline-out" ] ~docv:"FILE" ~doc)
  in
  let corpus_name_arg =
    let doc = "Sweep a shipped corpus entry instead of a file." in
    Arg.(value & opt (some string) None & info [ "corpus" ] ~docv:"NAME" ~doc)
  in
  let compare_arg =
    let doc =
      "Compare two baseline files written by --baseline-out instead of \
       sweeping: bench --compare OLD NEW. Exits 1 on a wall-clock regression \
       beyond --wall-band, any peak-space/space growth beyond --space-band, \
       a degraded point status, or a missing point."
    in
    Arg.(value & flag & info [ "compare" ] ~doc)
  in
  let new_pos_arg =
    let doc = "The NEW baseline file (with --compare)." in
    Arg.(value & pos 1 (some string) None & info [] ~docv:"NEW" ~doc)
  in
  let wall_band_arg =
    let doc =
      "Allowed fractional wall-clock growth before --compare reports a \
       regression (0.5 = new may be up to 50% slower; wall time is noisy)."
    in
    Arg.(value & opt float 0.5 & info [ "wall-band" ] ~docv:"FRAC" ~doc)
  in
  let space_band_arg =
    let doc =
      "Allowed fractional space growth before --compare reports a regression \
       (default 0: space is a deterministic word count, any growth fails)."
    in
    Arg.(value & opt float 0.0 & info [ "space-band" ] ~docv:"FRAC" ~doc)
  in
  let doc =
    "Sweep a program over several inputs, reporting space consumption, GC \
     activity, and telemetry per input; or compare two baselines \
     (--compare)."
  in
  Cmd.v (Cmd.info "bench" ~doc)
    Term.(
      const bench $ file_pos_arg $ expr_arg $ corpus_name_arg $ ns_arg
      $ variant_arg $ perm_arg $ stack_policy_arg $ no_annot_arg $ engine_arg
      $ vm_fast_arg $ fuel_arg $ timeout_arg $ space_budget_arg
      $ output_cap_arg $ linked_arg $ model_arg $ json_arg $ keep_going_arg
      $ jobs_arg $ cache_dir_arg $ baseline_out_arg $ compare_arg $ new_pos_arg
      $ wall_band_arg $ space_band_arg)

(* ------------------------------------------------------------------ *)
(* vmbench                                                             *)

(* Wall-clock comparison of the execution tiers on loop/arith-heavy
   corpus families, emitting the committed BENCH_vm.json format and
   optionally gating on the fast tier's speedup over the stepper. Each
   timing is the best of [reps] runs of the full engine path (for the
   VM tiers that includes compilation — the honest end-to-end cost). *)
let vmbench_cmd =
  let default_families =
    [
      ("countdown", 100_000);
      ("even-odd", 50_000);
      ("fib-naive", 21);
      ("nqueens", 6);
      ("find-leftmost", 64);
      ("ack", 7);
    ]
  in
  let out_arg =
    let doc = "Write the per-family results as JSON to $(docv)." in
    Arg.(value & opt string "BENCH_vm.json" & info [ "out" ] ~docv:"FILE" ~doc)
  in
  let reps_arg =
    let doc = "Timing repetitions per (family, engine); best-of wins." in
    Arg.(value & opt int 3 & info [ "reps" ] ~docv:"K" ~doc)
  in
  let check_speedup_arg =
    let doc =
      "Fail (exit 1) unless at least --min-families families reach this \
       fast-tier speedup over the stepper."
    in
    Arg.(
      value
      & opt (some float) None
      & info [ "check-speedup" ] ~docv:"FACTOR" ~doc)
  in
  let min_families_arg =
    let doc = "How many families must reach --check-speedup." in
    Arg.(value & opt int 2 & info [ "min-families" ] ~docv:"K" ~doc)
  in
  let families_arg =
    let doc =
      "Families to measure, as NAME=N corpus entries (default: the shipped \
       loop/arith-heavy set)."
    in
    let cv =
      let parse s =
        match String.index_opt s '=' with
        | Some i -> (
            let name = String.sub s 0 i in
            match
              int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1))
            with
            | Some n -> Ok (name, n)
            | None -> Error (`Msg "expected NAME=N"))
        | None -> Error (`Msg "expected NAME=N")
      in
      Arg.conv
        (parse, fun ppf (name, n) -> Format.fprintf ppf "%s=%d" name n)
    in
    Arg.(
      value & opt_all cv default_families & info [ "family" ] ~docv:"NAME=N" ~doc)
  in
  let vmbench out reps check_speedup min_families families fuel =
    let time_best f =
      let rec go best k =
        if k = 0 then best
        else begin
          let t0 = Res.Clock.now () in
          let r = f () in
          let dt = Res.Clock.now () -. t0 in
          go (match best with Some (bt, _) when bt <= dt -> best | _ -> Some (dt, r)) (k - 1)
        end
      in
      match go None (max 1 reps) with
      | Some (dt, r) -> (dt, r)
      | None -> assert false
    in
    let opts = M.Run_opts.make ~fuel () in
    let rows =
      List.map
        (fun (name, n) ->
          match Corpus.find name with
          | None ->
              Format.eprintf "schemesim: unknown corpus entry %S@." name;
              exit 2
          | Some e ->
              let program = Corpus.program e in
              let point engine =
                time_best (fun () ->
                    R.run_once ~opts
                      ~config:(M.Config.make ~engine ())
                      ~program ~n ())
              in
              let stepper_s, sm = point M.Stepper in
              let vm_s, im = point M.Vm in
              let fast_s, fm = point M.Vm_fast in
              let status (m : R.measurement) =
                match m.R.status with
                | R.Answer a -> "answer:" ^ a
                | R.Stuck s -> "stuck:" ^ s
                | R.Aborted r -> "aborted:" ^ Res.abort_reason_name r
              in
              let answers_agree =
                String.equal (status sm) (status im)
                && String.equal (status sm) (status fm)
              in
              let speedup = stepper_s /. Float.max fast_s 1e-9 in
              (name, n, stepper_s, vm_s, fast_s, speedup, sm, im, answers_agree))
        families
    in
    let json =
      Json.Obj
        [
          ("tool", Json.Str "schemesim vmbench");
          ("reps", Json.Int reps);
          ( "families",
            Json.List
              (List.map
                 (fun (name, n, ss, vs, fs, sp, sm, im, agree) ->
                   Json.Obj
                     [
                       ("name", Json.Str name);
                       ("n", Json.Int n);
                       ("stepper_s", Json.Float ss);
                       ("vm_s", Json.Float vs);
                       ("vm_fast_s", Json.Float fs);
                       ("speedup_fast", Json.Float sp);
                       ("steps", Json.Int sm.R.steps);
                       ("peak_space", Json.Int (R.peak_space sm));
                       ("vm_steps", Json.Int im.R.steps);
                       ("vm_peak_space", Json.Int (R.peak_space im));
                       ("answers_agree", Json.Bool agree);
                     ])
                 rows) );
        ]
    in
    write_file out (Json.to_string json);
    Format.printf "%-15s %8s %12s %12s %12s %9s %s@." "family" "n" "stepper"
      "vm" "vm-fast" "speedup" "agree";
    List.iter
      (fun (name, n, ss, vs, fs, sp, _, _, agree) ->
        Format.printf "%-15s %8d %10.3f s %10.3f s %10.4f s %8.1fx %s@." name n
          ss vs fs sp
          (if agree then "yes" else "NO"))
      rows;
    Format.printf "; results -> %s@." out;
    let disagreements =
      List.filter (fun (_, _, _, _, _, _, _, _, agree) -> not agree) rows
    in
    if disagreements <> [] then begin
      Format.printf "vmbench: FAILED (engine answers disagree)@.";
      exit 1
    end;
    match check_speedup with
    | None -> ()
    | Some target ->
        let at =
          List.length
            (List.filter (fun (_, _, _, _, _, sp, _, _, _) -> sp >= target) rows)
        in
        if at >= min_families then
          Format.printf "vmbench: OK (%d/%d families at >=%.0fx)@." at
            (List.length rows) target
        else begin
          Format.printf "vmbench: FAILED (only %d families at >=%.0fx, need %d)@."
            at target min_families;
          exit 1
        end
  in
  let doc =
    "Time the execution tiers (stepper, instrumented VM, fast VM) on \
     loop/arith-heavy corpus families, write BENCH_vm.json, and optionally \
     gate on the fast tier's speedup."
  in
  Cmd.v (Cmd.info "vmbench" ~doc)
    Term.(
      const vmbench $ out_arg $ reps_arg $ check_speedup_arg $ min_families_arg
      $ families_arg $ fuel_arg)

(* ------------------------------------------------------------------ *)
(* bignumbench                                                         *)

(* Crossover-threshold benchmark for the bignum layer, in the spirit of
   GMP's gmp-mparam.h tuning tables: time schoolbook multiplication
   against the Karatsuba path across a ladder of limb sizes to locate
   where the O(n^1.585) split starts paying, plus divide-and-conquer vs
   classic decimal conversion, a fixnum-tag on/off A/B on a small-int
   loop, and a power workload (repeated balanced squarings — the shape
   Karatsuba likes best). Emits the committed BENCH_bignum.json with a
   top-level [wall_s] and a [points] table so the existing
   `bench --compare` noise bands gate it in CI. *)
let bignumbench_cmd =
  let default_sizes = [ 8; 12; 16; 24; 32; 48; 64; 96; 128; 192; 256; 384; 512 ] in
  let out_arg =
    let doc = "Write the crossover results as JSON to $(docv)." in
    Arg.(
      value & opt string "BENCH_bignum.json" & info [ "out" ] ~docv:"FILE" ~doc)
  in
  let reps_arg =
    let doc = "Timing repetitions per point; best-of wins." in
    Arg.(value & opt int 3 & info [ "reps" ] ~docv:"K" ~doc)
  in
  let check_crossover_arg =
    let doc =
      "Fail (exit 1) unless Karatsuba beats schoolbook at every measured \
       size at least twice the shipped threshold (and the differential \
       products agree)."
    in
    Arg.(value & flag & info [ "check-crossover" ] ~doc)
  in
  let sizes_arg =
    let doc = "Limb sizes to measure (default: the shipped ladder)." in
    Arg.(
      value & opt (list int) default_sizes & info [ "sizes" ] ~docv:"N,.." ~doc)
  in
  let bignumbench out reps check_crossover sizes =
    let started = Res.Clock.now () in
    let time_best iters f =
      let rec go best k =
        if k = 0 then best
        else begin
          let t0 = Res.Clock.now () in
          for _ = 1 to iters do
            ignore (Sys.opaque_identity (f ()))
          done;
          let dt = (Res.Clock.now () -. t0) /. float_of_int iters in
          go (match best with Some b when b <= dt -> best | _ -> Some dt) (k - 1)
        end
      in
      match go None (max 1 reps) with Some dt -> dt | None -> assert false
    in
    let shipped_threshold = !Bignum.Internal.karatsuba_threshold in
    let with_threshold t f =
      let saved = !Bignum.Internal.karatsuba_threshold in
      Bignum.Internal.karatsuba_threshold := t;
      Fun.protect
        ~finally:(fun () -> Bignum.Internal.karatsuba_threshold := saved)
        f
    in
    (* dense n-limb operands: 2^(30n) - 1 and a shifted variant *)
    let dense n = Bignum.pred (Bignum.shift_left Bignum.one (30 * n)) in
    let agree = ref true in
    let points =
      List.map
        (fun n ->
          let a = dense n and b = Bignum.pred (dense n) in
          let iters = max 1 (200_000 / (n * n)) in
          let school_s =
            time_best iters (fun () -> Bignum.Internal.mul_schoolbook a b)
          in
          (* Karatsuba forced at this size: splitting at n/2 makes the
             top level divide while the halves fall back to schoolbook —
             the marginal cost of one split, which is what locates the
             crossover. *)
          let kara_s =
            with_threshold
              (max 2 (n / 2))
              (fun () -> time_best iters (fun () -> Bignum.mul a b))
          in
          let shipped_s = time_best iters (fun () -> Bignum.mul a b) in
          if
            not
              (Bignum.equal (Bignum.Internal.mul_schoolbook a b)
                 (with_threshold (max 2 (n / 2)) (fun () -> Bignum.mul a b)))
          then agree := false;
          (n, school_s, kara_s, shipped_s, school_s /. Float.max kara_s 1e-12))
        sizes
    in
    let crossover =
      List.fold_left
        (fun acc (n, _, _, _, sp) ->
          match acc with Some _ -> acc | None -> if sp > 1.0 then Some n else None)
        None points
    in
    (* decimal conversion: a ~1200-limb dense operand (~10.8k digits) *)
    let conv_limbs = 1200 in
    let big = dense conv_limbs in
    let digits = Bignum.to_string big in
    if not (String.equal digits (Bignum.Internal.to_string_classic big)) then
      agree := false;
    if not (Bignum.equal (Bignum.of_string digits) (Bignum.Internal.of_string_classic digits))
    then agree := false;
    let to_classic_s =
      time_best 1 (fun () -> Bignum.Internal.to_string_classic big)
    in
    let to_dc_s = time_best 1 (fun () -> Bignum.to_string big) in
    let of_classic_s =
      time_best 1 (fun () -> Bignum.Internal.of_string_classic digits)
    in
    let of_dc_s = time_best 1 (fun () -> Bignum.of_string digits) in
    (* power workload: balanced squarings of a growing operand *)
    let pow_base = Bignum.of_string "1234567890123456789" in
    let pow_exp = 600 in
    let pow_school_s =
      with_threshold max_int (fun () ->
          time_best 1 (fun () -> Bignum.pow pow_base pow_exp))
    in
    let pow_kara_s = time_best 1 (fun () -> Bignum.pow pow_base pow_exp) in
    if
      not
        (Bignum.equal (Bignum.pow pow_base pow_exp)
           (with_threshold max_int (fun () -> Bignum.pow pow_base pow_exp)))
    then agree := false;
    (* fixnum A/B: a small-int accumulation loop entirely in tag range *)
    let fix_n = 200_000 in
    let sum_loop () =
      let rec go i acc =
        if i = 0 then acc else go (i - 1) (Bignum.add acc (Bignum.of_int i))
      in
      go fix_n Bignum.zero
    in
    let with_fixnums enabled f =
      let saved = Bignum.fixnums_enabled () in
      Bignum.set_fixnums enabled;
      Fun.protect ~finally:(fun () -> Bignum.set_fixnums saved) f
    in
    let fix_on_s = with_fixnums true (fun () -> time_best 1 sum_loop) in
    let fix_off_s = with_fixnums false (fun () -> time_best 1 sum_loop) in
    if
      not
        (Bignum.equal
           (with_fixnums true sum_loop)
           (with_fixnums false sum_loop))
    then agree := false;
    let wall_s = Res.Clock.now () -. started in
    let json =
      Json.Obj
        [
          ("tool", Json.Str "schemesim bignumbench");
          ("reps", Json.Int reps);
          ("wall_s", Json.Float wall_s);
          ("karatsuba_threshold", Json.Int shipped_threshold);
          ( "crossover_limbs",
            match crossover with Some n -> Json.Int n | None -> Json.Null );
          ("answers_agree", Json.Bool !agree);
          ( "points",
            Json.List
              (List.map
                 (fun (n, ss, ks, hs, sp) ->
                   Json.Obj
                     [
                       ("n", Json.Int n);
                       ("status", Json.Str "done");
                       ("school_mul_s", Json.Float ss);
                       ("karatsuba_mul_s", Json.Float ks);
                       ("shipped_mul_s", Json.Float hs);
                       ("speedup", Json.Float sp);
                     ])
                 points) );
          ( "conversion",
            Json.Obj
              [
                ("limbs", Json.Int conv_limbs);
                ("digits", Json.Int (String.length digits));
                ("to_string_classic_s", Json.Float to_classic_s);
                ("to_string_dc_s", Json.Float to_dc_s);
                ( "to_string_speedup",
                  Json.Float (to_classic_s /. Float.max to_dc_s 1e-12) );
                ("of_string_classic_s", Json.Float of_classic_s);
                ("of_string_dc_s", Json.Float of_dc_s);
                ( "of_string_speedup",
                  Json.Float (of_classic_s /. Float.max of_dc_s 1e-12) );
              ] );
          ( "pow",
            Json.Obj
              [
                ("base_digits", Json.Int 19);
                ("exponent", Json.Int pow_exp);
                ("school_s", Json.Float pow_school_s);
                ("karatsuba_s", Json.Float pow_kara_s);
                ( "speedup",
                  Json.Float (pow_school_s /. Float.max pow_kara_s 1e-12) );
              ] );
          ( "fixnum",
            Json.Obj
              [
                ("adds", Json.Int fix_n);
                ("fixnums_on_s", Json.Float fix_on_s);
                ("fixnums_off_s", Json.Float fix_off_s);
                ( "speedup",
                  Json.Float (fix_off_s /. Float.max fix_on_s 1e-12) );
              ] );
        ]
    in
    write_file out (Json.to_string json);
    Format.printf "%-8s %14s %14s %14s %9s@." "limbs" "schoolbook" "karatsuba"
      "shipped" "speedup";
    List.iter
      (fun (n, ss, ks, hs, sp) ->
        Format.printf "%-8d %12.2f us %12.2f us %12.2f us %8.2fx@." n
          (ss *. 1e6) (ks *. 1e6) (hs *. 1e6) sp)
      points;
    (match crossover with
    | Some n -> Format.printf "crossover at ~%d limbs (shipped threshold %d)@." n shipped_threshold
    | None -> Format.printf "no crossover located in the measured sizes@.");
    Format.printf
      "to_string %4.1fx, of_string %4.1fx, pow %4.1fx, fixnums %4.1fx; \
       results -> %s@."
      (to_classic_s /. Float.max to_dc_s 1e-12)
      (of_classic_s /. Float.max of_dc_s 1e-12)
      (pow_school_s /. Float.max pow_kara_s 1e-12)
      (fix_off_s /. Float.max fix_on_s 1e-12)
      out;
    if not !agree then begin
      Format.printf "bignumbench: FAILED (differential paths disagree)@.";
      exit 1
    end;
    if check_crossover then begin
      let above =
        List.filter (fun (n, _, _, _, _) -> n >= 2 * shipped_threshold) points
      in
      (* gate on the shipped hybrid — the path users actually hit — not
         the forced single split used to locate the crossover *)
      let losing =
        List.filter (fun (_, ss, _, hs, _) -> ss /. hs <= 1.0) above
      in
      let pow_sp = pow_school_s /. Float.max pow_kara_s 1e-12 in
      if above <> [] && losing = [] && pow_sp > 1.0 then
        Format.printf "bignumbench: OK (karatsuba wins at all %d sizes >= %d \
                       limbs; pow %4.1fx)@."
          (List.length above) (2 * shipped_threshold) pow_sp
      else begin
        Format.printf
          "bignumbench: FAILED (%d/%d sizes above %d limbs lose to \
           schoolbook; pow %4.1fx)@."
          (List.length losing) (List.length above)
          (2 * shipped_threshold) pow_sp;
        exit 1
      end
    end
  in
  let doc =
    "Locate the Karatsuba/schoolbook crossover (gmp-mparam style), time \
     divide-and-conquer vs classic decimal conversion, the fixnum fast \
     path, and a power workload; write BENCH_bignum.json and optionally \
     gate on Karatsuba beating schoolbook above the shipped threshold."
  in
  Cmd.v (Cmd.info "bignumbench" ~doc)
    Term.(
      const bignumbench $ out_arg $ reps_arg $ check_crossover_arg $ sizes_arg)

(* ------------------------------------------------------------------ *)
(* analyze                                                             *)

let analyze_cmd =
  let file_arg =
    let doc = "Scheme source file." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)
  in
  let analyze file =
    match TC.analyze_source (read_file file) with
    | exception Reader.Parse_error e ->
        Format.eprintf "schemesim: %a@." Reader.pp_error e;
        exit 2
    | exception Expand.Expand_error e ->
        Format.eprintf "schemesim: %a@." Expand.pp_error e;
        exit 2
    | c ->
        Format.printf "calls:           %d@." c.TC.calls;
        Format.printf "tail calls:      %d (%.1f%%)@." c.TC.tail_calls
          (TC.percent c.TC.tail_calls c.TC.calls);
        Format.printf "self-tail calls: %d (%.1f%%)@." c.TC.self_tail_calls
          (TC.percent c.TC.self_tail_calls c.TC.calls);
        Format.printf "known calls:     %d (%.1f%%)@." c.TC.known_calls
          (TC.percent c.TC.known_calls c.TC.calls)
  in
  let doc = "Static tail-call statistics (the Figure 2 measurement)." in
  Cmd.v (Cmd.info "analyze" ~doc) Term.(const analyze $ file_arg)

(* ------------------------------------------------------------------ *)
(* corpus                                                              *)

let corpus_cmd =
  let name_arg =
    let doc = "Corpus entry to run (omit to list all entries)." in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"NAME" ~doc)
  in
  let n_arg =
    let doc = "Input N for the chosen entry." in
    Arg.(value & opt (some int) None & info [ "n" ] ~docv:"N" ~doc)
  in
  let corpus name n variant =
    match name with
    | None ->
        List.iter
          (fun (e : Corpus.entry) ->
            Format.printf "%-18s %s@." e.Corpus.name e.Corpus.description)
          Corpus.all
    | Some name -> (
        match Corpus.find name with
        | None ->
            Format.eprintf "schemesim: unknown corpus entry %S@." name;
            exit 2
        | Some e ->
            let n =
              match (n, e.Corpus.checks) with
              | Some n, _ -> n
              | None, (n, _) :: _ -> n
              | None, [] -> 0
            in
            let m =
              R.run_once
                ~config:(M.Config.make ~variant ())
                ~program:(Corpus.program e) ~n ()
            in
            (match m.R.status with
            | R.Answer a -> Format.printf "%s@." a
            | R.Stuck msg -> Format.printf "stuck: %s@." msg
            | R.Aborted r ->
                Format.printf "aborted: %s@." (Res.abort_reason_message r));
            Format.printf "; %s(%d) under %s: S=%d steps=%d@." name n
              (M.variant_name variant) m.R.space m.R.steps;
            match m.R.status with R.Answer _ -> () | _ -> exit 1)
  in
  let doc = "List or run the shipped Scheme corpus." in
  Cmd.v (Cmd.info "corpus" ~doc) Term.(const corpus $ name_arg $ n_arg $ variant_arg)

(* ------------------------------------------------------------------ *)
(* report                                                              *)

let report_cmd =
  let which_arg =
    let doc =
      "Experiment to reproduce: fig2, thm24, thm25, thm26, sec4, cor20, cps, \
       ablation, sanity, loghier, or all (default)."
    in
    Arg.(value & pos 0 string "all" & info [] ~docv:"EXPERIMENT" ~doc)
  in
  let report which jobs engine =
    (* The instrumented VM's sweeps are bit-compatible with the
       stepper's (oracle-checked), so [--engine vm] changes only the
       wall-clock; the fast tier compiles the space columns out and is
       refused. *)
    (match engine with
    | M.Stepper | M.Vm -> ()
    | M.Vm_fast ->
        Format.eprintf
          "schemesim: report --engine vm-fast has no space columns (the fast \
           tier compiles accounting out); use stepper or vm@.";
        exit 2);
    let table =
      Pool.with_pool ?jobs (fun pool ->
          match which with
          | "fig2" -> Ok (X.Fig2.render (X.Fig2.run ()))
          | "thm25" -> Ok (X.Thm25.render (X.Thm25.run ?pool ~engine ()))
          | "thm24" -> Ok (X.Thm24.render (X.Thm24.run ?pool ~engine ()))
          | "thm26" -> Ok (X.Thm26.render (X.Thm26.run ?pool ~engine ()))
          | "sec4" -> Ok (X.Sec4.render (X.Sec4.run ?pool ~engine ()))
          | "cor20" -> Ok (X.Cor20.render (X.Cor20.run ?pool ~engine ()))
          | "cps" -> Ok (X.Cps.render (X.Cps.run ?pool ~engine ()))
          | "ablation" -> Ok (X.Ablation.render (X.Ablation.run ?pool ~engine ()))
          | "sanity" -> Ok (X.Sanity.render (X.Sanity.run ?pool ()))
          | "loghier" -> Ok (X.LogHier.render (X.LogHier.run ?pool ~engine ()))
          | "all" -> Ok (X.render_all ?pool ~engine ())
          | other -> Error other)
    in
    match table with
    | Ok s -> print_string s
    | Error other ->
        Format.eprintf "schemesim: unknown experiment %S@." other;
        exit 2
  in
  let doc = "Print the paper-reproduction tables (see DESIGN.md)." in
  Cmd.v (Cmd.info "report" ~doc)
    Term.(const report $ which_arg $ jobs_arg $ engine_arg)

(* ------------------------------------------------------------------ *)
(* faults                                                              *)

let faults_cmd =
  let json_arg =
    let doc = "Print the matrix and oracle report as one JSON object." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let n_arg =
    let doc = "Input N for the separating programs." in
    Arg.(value & opt int 12 & info [ "n" ] ~docv:"N" ~doc)
  in
  let fuel_arg =
    let doc = "Fuel bound for each matrix run." in
    Arg.(value & opt int 2_000_000 & info [ "fuel" ] ~docv:"STEPS" ~doc)
  in
  let matrix_plans =
    [
      Res.Fault.none;
      Res.Fault.make ~label:"gc-every-1" ~gc_every:1 ();
      Res.Fault.make ~label:"gc-seed-7" ~gc_seed:7 ();
      Res.Fault.make ~label:"fail-alloc-100" ~fail_alloc:100 ();
      Res.Fault.make ~label:"fuel-drop-500+50" ~fuel_drop:(500, 50) ();
    ]
  in
  let faults json n fuel =
    (* every (separator, variant, plan) cell must end in a structured
       outcome — the run may answer, get stuck, or abort, but it must
       not escape as an exception or hang past the fuel bound *)
    let matrix =
      List.concat_map
        (fun (family, source) ->
          let program = Expand.program_of_string source in
          List.concat_map
            (fun variant ->
              List.map
                (fun plan ->
                  let cell =
                    match
                      R.run_once
                        ~opts:(M.Run_opts.make ~fuel ~fault:plan ())
                        ~config:(M.Config.make ~variant ())
                        ~program ~n ()
                    with
                    | m ->
                        let status =
                          match m.R.status with
                          | R.Answer a -> "answer:" ^ a
                          | R.Stuck s -> "stuck:" ^ s
                          | R.Aborted r ->
                              "aborted:" ^ Res.abort_reason_name r
                        in
                        (status, m.R.steps, R.peak_space m, true)
                    | exception e ->
                        ("escaped:" ^ Printexc.to_string e, 0, 0, false)
                  in
                  (family, variant, plan, cell))
                matrix_plans)
            M.all_variants)
        Families.separators
    in
    let matrix_ok =
      List.for_all (fun (_, _, _, (_, _, _, structured)) -> structured) matrix
    in
    let oracle = Oracle.run ~fuel () in
    let ok = matrix_ok && oracle.Oracle.ok in
    if json then
      print_endline
        (Json.to_string
           (Json.Obj
              [
                ("ok", Json.Bool ok);
                ("matrix_ok", Json.Bool matrix_ok);
                ( "matrix",
                  Json.List
                    (List.map
                       (fun (family, variant, plan, (status, steps, peak, _)) ->
                         Json.Obj
                           [
                             ("family", Json.Str family);
                             ("variant", Json.Str (M.variant_name variant));
                             ("plan", Json.Str (Res.Fault.label plan));
                             ("status", Json.Str status);
                             ("steps", Json.Int steps);
                             ("peak", Json.Int peak);
                           ])
                       matrix) );
                ("oracle", Oracle.to_json oracle);
              ]))
    else begin
      Format.printf
        "fault matrix: %d cells (%d families x %d variants x %d plans), %s@."
        (List.length matrix)
        (List.length Families.separators)
        (List.length M.all_variants)
        (List.length matrix_plans)
        (if matrix_ok then "all structured" else "ESCAPED EXCEPTIONS");
      List.iter
        (fun (family, variant, plan, (status, _, _, structured)) ->
          if not structured then
            Format.printf "  ESCAPE %s/%s/%s: %s@." family
              (M.variant_name variant) (Res.Fault.label plan) status)
        matrix;
      print_string (Oracle.render oracle)
    end;
    if not ok then exit 1
  in
  let doc =
    "Run the fault-injection matrix (Theorem 25's separating programs under \
     adversarial fault plans on all six variants) and the differential \
     oracle, reporting structured outcomes."
  in
  Cmd.v (Cmd.info "faults" ~doc) Term.(const faults $ json_arg $ n_arg $ fuel_arg)

(* ------------------------------------------------------------------ *)
(* spaceprof                                                           *)

(* The space-provenance profiler: run once with a census attached, then
   decompose the measured peak into per-allocation-site live words. The
   census is rebuilt from the exact peak configuration, so its rows sum
   to the telemetry peak by construction — the sum is still re-checked
   here and a mismatch is a reportable bug (exit 1), never silently
   truncated output. *)
let spaceprof_cmd =
  let corpus_name_arg =
    let doc = "Profile a shipped corpus entry instead of a file." in
    Arg.(value & opt (some string) None & info [ "corpus" ] ~docv:"NAME" ~doc)
  in
  let json_arg =
    let doc =
      "Print the census as one JSON object (rows, flamegraph stacks, and \
       labels; the linked and log censuses too with --linked / --model) \
       instead of tables."
    in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let flamegraph_arg =
    let doc =
      "Write collapsed-stack lines (site;site;... words) to $(docv) — the \
       input format of flamegraph.pl and speedscope. Lines sum exactly to \
       the flat peak."
    in
    Arg.(
      value & opt (some string) None & info [ "flamegraph" ] ~docv:"FILE" ~doc)
  in
  let diff_arg =
    let doc =
      "Profile the program under two variants and print the per-site word \
       delta table (largest absolute delta first) instead of a single \
       census: --diff tail,stack surfaces where I_stack parks the words \
       I_tail reclaims."
    in
    Arg.(
      value
      & opt (some (pair variant_conv variant_conv)) None
      & info [ "diff" ] ~docv:"VARIANT_A,VARIANT_B" ~doc)
  in
  let top_arg =
    let doc = "Show only the $(docv) largest rows per table (0 = all)." in
    Arg.(value & opt int 0 & info [ "top" ] ~docv:"K" ~doc)
  in
  let spaceprof file expr corpus_name input variant engine vm_fast fuel linked
      models json flamegraph diff top =
    let measure = measure_of ~linked ~models in
    let name, program =
      match corpus_name with
      | Some entry_name -> (
          match Corpus.find entry_name with
          | None ->
              Format.eprintf "schemesim: unknown corpus entry %S@." entry_name;
              exit 2
          | Some e -> (entry_name, Corpus.program e))
      | None ->
          with_program file expr (fun name program -> (name, program))
    in
    let n =
      match (input, corpus_name) with
      | Some n, _ -> n
      | None, Some entry_name -> (
          match Corpus.find entry_name with
          | Some { Corpus.checks = (n, _) :: _; _ } -> n
          | _ ->
              Format.eprintf
                "schemesim: corpus entry %S has no default input; pass \
                 --input N@."
                entry_name;
              exit 2)
      | None, None ->
          Format.eprintf
            "schemesim: spaceprof needs --input N (the program runs under \
             §12's procedure-of-one-argument convention)@.";
          exit 2
    in
    let engine =
      resolve_engine ~engine ~vm_fast ~variant ~perm:M.Left_to_right ~measure
    in
    if engine = M.Vm_fast then begin
      Format.eprintf
        "schemesim: the fast tier compiles accounting out and cannot carry a \
         census; use --engine stepper or vm@.";
      exit 2
    end;
    (* One profiled run: census attached through Run_opts, raw per-model
       peaks recovered from the measurement's [peaks] list (no |P| term
       — the census decomposes the store peak, not the consumption). *)
    let census_run variant =
      if engine = M.Vm && variant <> M.Tail then begin
        Format.eprintf
          "schemesim: --engine vm profiles only the tail variant; --diff \
           with other variants needs the stepper@.";
        exit 2
      end;
      let census = Census.create () in
      let opts = M.Run_opts.make ~fuel ~measure ~provenance:census () in
      let m =
        R.run_once ~opts ~config:(M.Config.make ~engine ~variant ()) ~program
          ~n ()
      in
      let flat = Census.flat_census census ~peak:(R.peak_space m) in
      let linked_c =
        match R.peak_linked m with
        | Some u -> Census.linked_census census ~peak:u
        | None -> None
      in
      let log_c =
        match R.peak_log m with
        | Some l -> Census.log_census census ~peak:l
        | None -> None
      in
      (m, flat, linked_c, log_c)
    in
    let check_sums what = function
      | None -> ()
      | Some (c : Prov.t) ->
          let rows = Prov.total c in
          if rows <> c.Prov.peak then begin
            Format.eprintf
              "schemesim: INTERNAL %s census rows sum to %d, peak is %d@."
              what rows c.Prov.peak;
            exit 1
          end;
          let stack_sum =
            List.fold_left (fun a (s : Prov.stack) -> a + s.Prov.swords) 0
              c.Prov.stacks
          in
          if c.Prov.stacks <> [] && stack_sum <> c.Prov.peak then begin
            Format.eprintf
              "schemesim: INTERNAL %s flamegraph stacks sum to %d, peak is \
               %d@."
              what stack_sum c.Prov.peak;
            exit 1
          end
    in
    let status_line variant (m : R.measurement) =
      Format.printf "; %s(%d) under %s (%s): S=%d peak=%d steps=%d%s%s@." name
        n
        (M.variant_name variant) (M.engine_name engine) m.R.space
        (R.peak_space m) m.R.steps
        (match R.consumption m SM.Linked with
        | Some u -> Printf.sprintf " U=%d" u
        | None -> "")
        (match R.consumption m SM.Log with
        | Some l -> Printf.sprintf " Log=%d bits" l
        | None -> "")
    in
    let failed (m : R.measurement) =
      match m.R.status with
      | R.Answer _ -> false
      | R.Stuck msg ->
          Format.eprintf "schemesim: run got stuck: %s@." msg;
          true
      | R.Aborted r ->
          Format.eprintf "schemesim: run aborted: %s@."
            (Res.abort_reason_message r);
          true
    in
    let truncate_rows (c : Prov.t) =
      if top <= 0 then c
      else
        {
          c with
          Prov.rows =
            List.filteri (fun i (_ : Prov.row) -> i < top) c.Prov.rows;
        }
    in
    match diff with
    | Some (va, vb) ->
        let ma, fa, la, ga = census_run va and mb, fb, lb, gb = census_run vb in
        check_sums (M.variant_name va) fa;
        check_sums (M.variant_name vb) fb;
        check_sums (M.variant_name va ^ " linked") la;
        check_sums (M.variant_name vb ^ " linked") lb;
        check_sums (M.variant_name va ^ " log") ga;
        check_sums (M.variant_name vb ^ " log") gb;
        (match (fa, fb) with
        | Some ca, Some cb ->
            let deltas = Prov.diff ca cb in
            let deltas =
              if top <= 0 then deltas
              else List.filteri (fun i (_ : Prov.delta) -> i < top) deltas
            in
            if json then
              print_endline
                (Json.to_string
                   (Json.Obj
                      [
                        ("program", Json.Str name);
                        ("n", Json.Int n);
                        ("variant_a", Json.Str (M.variant_name va));
                        ("variant_b", Json.Str (M.variant_name vb));
                        ("census_a", Prov.to_json ca);
                        ("census_b", Prov.to_json cb);
                        ( "deltas",
                          Json.List
                            (List.map
                               (fun (d : Prov.delta) ->
                                 Json.Obj
                                   [
                                     ("site", Json.Int d.Prov.dsite);
                                     ( "phase",
                                       Json.Str (Prov.phase_name d.Prov.dphase)
                                     );
                                     ("words_a", Json.Int d.Prov.words_a);
                                     ("words_b", Json.Int d.Prov.words_b);
                                     ("label", Json.Str d.Prov.dlabel);
                                   ])
                               deltas) );
                      ]))
            else begin
              status_line va ma;
              status_line vb mb;
              Format.printf "peak: %s under %s vs %s under %s (%+.1f%%)@."
                (Prov.humanize_words ca.Prov.peak)
                (M.variant_name va)
                (Prov.humanize_words cb.Prov.peak)
                (M.variant_name vb)
                (Prov.percent_delta ~from:ca.Prov.peak ~to_:cb.Prov.peak);
              print_string
                (Table.census_diff ~label_a:(M.variant_name va)
                   ~label_b:(M.variant_name vb) deltas)
            end
        | _ ->
            Format.eprintf
              "schemesim: no peak census (did both runs take a step?)@.";
            exit 1);
        if failed ma || failed mb then exit 1
    | None ->
        let m, flat, linked_c, log_c = census_run variant in
        check_sums "flat" flat;
        check_sums "linked" linked_c;
        check_sums "log" log_c;
        (match flamegraph with
        | None -> ()
        | Some path -> (
            match flat with
            | Some c ->
                write_file path
                  (String.concat "\n" (Prov.flamegraph_lines c) ^ "\n");
                Format.eprintf "; flamegraph (%d stacks) -> %s@."
                  (List.length c.Prov.stacks) path
            | None ->
                Format.eprintf
                  "schemesim: no peak census to export (did the run take a \
                   step?)@.";
                exit 1));
        if json then
          print_endline
            (Json.to_string
               (Json.Obj
                  [
                    ("program", Json.Str name);
                    ("n", Json.Int n);
                    ("variant", Json.Str (M.variant_name variant));
                    ("engine", Json.Str (M.engine_name engine));
                    ( "status",
                      Json.Str
                        (match m.R.status with
                        | R.Answer a -> "answer:" ^ a
                        | R.Stuck s -> "stuck:" ^ s
                        | R.Aborted r -> "aborted:" ^ Res.abort_reason_name r)
                    );
                    ("space_consumption", Json.Int m.R.space);
                    ("peak_space", Json.Int (R.peak_space m));
                    ("peaks", peaks_json m.R.peaks);
                    ("steps", Json.Int m.R.steps);
                    ( "flat",
                      match flat with
                      | Some c -> Prov.to_json c
                      | None -> Json.Null );
                    ( "linked",
                      match linked_c with
                      | Some c -> Prov.to_json c
                      | None -> Json.Null );
                    ( "log",
                      match log_c with
                      | Some c -> Prov.to_json c
                      | None -> Json.Null );
                  ]))
        else begin
          status_line variant m;
          (match flat with
          | Some c -> print_string (Table.census (truncate_rows c))
          | None ->
              Format.eprintf
                "schemesim: no peak census (did the run take a step?)@.";
              exit 1);
          List.iter
            (fun c ->
              print_newline ();
              print_string (Table.census (truncate_rows c)))
            (List.filter_map Fun.id [ linked_c; log_c ])
        end;
        if failed m then exit 1
  in
  let doc =
    "Space-provenance profiler: attribute every live word at the measured \
     peak to the allocation site that produced it (per-site heap census), \
     export collapsed-stack flamegraphs, and diff censuses across machine \
     variants."
  in
  Cmd.v (Cmd.info "spaceprof" ~doc)
    Term.(
      const spaceprof $ file_pos_arg $ expr_arg $ corpus_name_arg $ input_arg
      $ variant_arg $ engine_arg $ vm_fast_arg $ fuel_arg $ linked_arg
      $ model_arg $ json_arg $ flamegraph_arg $ diff_arg $ top_arg)

(* ------------------------------------------------------------------ *)
(* serve / loadgen                                                     *)

module Server = Tailspace_serve.Server
module Sproto = Tailspace_serve.Protocol
module Loadgen = Tailspace_serve.Loadgen

let host_arg =
  let doc = "Address to bind or connect to." in
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc)

let port_arg =
  let doc = "TCP port (0 asks the kernel for an ephemeral port)." in
  Arg.(value & opt int 7464 & info [ "port" ] ~docv:"PORT" ~doc)

let socket_arg =
  let doc = "Serve on a Unix-domain socket at $(docv) instead of TCP." in
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let endpoint_of ~host ~port ~socket =
  match socket with
  | Some path -> Sproto.Unix_domain path
  | None -> Sproto.Tcp (host, port)

let serve_cmd =
  let jobs_arg =
    let doc = "Worker domains (default: the machine's core count)." in
    Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"N" ~doc)
  in
  let queue_arg =
    let doc = "Admission queue capacity; beyond it requests are shed." in
    Arg.(value & opt int 256 & info [ "queue" ] ~docv:"N" ~doc)
  in
  let rate_arg =
    let doc =
      "Per-tenant token-bucket refill rate, requests/second (0 disables \
       quotas)."
    in
    Arg.(value & opt float 50. & info [ "tenant-rate" ] ~docv:"RPS" ~doc)
  in
  let burst_arg =
    let doc = "Per-tenant token-bucket burst." in
    Arg.(value & opt float 100. & info [ "tenant-burst" ] ~docv:"N" ~doc)
  in
  let drain_arg =
    let doc =
      "Graceful-shutdown deadline: seconds to finish queued and in-flight \
       work after SIGTERM before forcing exit."
    in
    Arg.(value & opt float 30. & info [ "drain-timeout" ] ~docv:"SECONDS" ~doc)
  in
  let max_fuel_arg =
    let doc = "Server-side ceiling on any request's fuel budget." in
    Arg.(value & opt int 5_000_000 & info [ "max-fuel" ] ~docv:"STEPS" ~doc)
  in
  let max_timeout_arg =
    let doc = "Server-side ceiling on any request's wall-clock budget." in
    Arg.(value & opt float 10. & info [ "max-timeout" ] ~docv:"SECONDS" ~doc)
  in
  let serve port host socket jobs queue rate burst drain max_fuel max_timeout =
    let ep = endpoint_of ~host ~port ~socket in
    let config =
      {
        Server.default_config with
        Server.jobs =
          Option.value ~default:Server.default_config.Server.jobs jobs;
        Server.queue_capacity = queue;
        Server.tenant_rate = rate;
        Server.tenant_burst = burst;
        Server.drain_timeout_s = drain;
        Server.policy =
          {
            Server.default_policy with
            Server.max_fuel;
            Server.max_timeout_s = max_timeout;
          };
      }
    in
    let t =
      try Server.create ~config ep
      with Unix.Unix_error (e, _, _) ->
        Format.eprintf "schemesim serve: cannot bind %s: %s@."
          (Sproto.endpoint_name ep) (Unix.error_message e);
        exit 2
    in
    (* OCaml signal handlers run at safepoints on the main thread; the
       accept loop's select wakes with EINTR and re-polls the flag *)
    let stop _ = Server.shutdown t in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
    Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
    (match Server.port t with
    | Some p -> Format.printf "schemesim serve: listening on %s:%d@." host p
    | None ->
        Format.printf "schemesim serve: listening on %s@."
          (Sproto.endpoint_name ep));
    (* parent scripts scrape the port from this line *)
    Format.print_flush ();
    match Server.run t with
    | Server.Drained ->
        Format.printf "schemesim serve: drained cleanly@.";
        exit 0
    | Server.Forced ->
        Format.eprintf
          "schemesim serve: drain deadline passed; forced shutdown@.";
        exit 1
  in
  let doc =
    "Run the evaluation service: a fault-tolerant daemon that evaluates, \
     sweeps, and censuses programs over the length-prefixed JSON protocol, \
     with admission control, per-tenant quotas, and graceful SIGTERM drain."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const serve $ port_arg $ host_arg $ socket_arg $ jobs_arg $ queue_arg
      $ rate_arg $ burst_arg $ drain_arg $ max_fuel_arg $ max_timeout_arg)

let loadgen_cmd =
  let clients_arg =
    let doc = "Concurrent closed-loop clients." in
    Arg.(value & opt int 4 & info [ "clients" ] ~docv:"N" ~doc)
  in
  let requests_arg =
    let doc = "Requests each client issues." in
    Arg.(value & opt int 25 & info [ "requests" ] ~docv:"N" ~doc)
  in
  let poison_arg =
    let doc =
      "Percentage of requests drawn from the poison mix (fuel burners, \
       space blow-ups, deadline busters, output floods, stuck states, \
       unparsable sources)."
    in
    Arg.(value & opt int 20 & info [ "poison" ] ~docv:"PCT" ~doc)
  in
  let seed_arg =
    let doc = "Workload seed: same seed, same request sequence." in
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let retries_arg =
    let doc = "Retry budget per rejected request (seeded backoff)." in
    Arg.(value & opt int 3 & info [ "retries" ] ~docv:"N" ~doc)
  in
  let out_arg =
    let doc = "Also write the JSON report to $(docv)." in
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc)
  in
  let loadgen port host socket clients requests poison seed retries out =
    if poison < 0 || poison > 100 then begin
      Format.eprintf "schemesim loadgen: --poison must be in 0..100@.";
      exit 2
    end;
    let ep = endpoint_of ~host ~port ~socket in
    let report =
      try
        Loadgen.run ~clients ~requests_per_client:requests ~poison_pct:poison
          ~seed ~max_retries:retries ep
      with Unix.Unix_error (e, _, _) ->
        Format.eprintf "schemesim loadgen: cannot reach %s: %s@."
          (Sproto.endpoint_name ep) (Unix.error_message e);
        exit 2
    in
    let json = Json.to_string (Loadgen.report_to_json report) in
    (match out with Some path -> write_file path (json ^ "\n") | None -> ());
    print_endline json;
    (* clean run: every request answered with a typed response and no
       connection reset by the server *)
    if report.Loadgen.unanswered > 0 || report.Loadgen.resets > 0 then exit 1
    else exit 0
  in
  let doc =
    "Drive a running evaluation service with a seeded closed-loop workload \
     (including poison programs) and report latency percentiles and the \
     outcome-taxonomy histogram as JSON."
  in
  Cmd.v (Cmd.info "loadgen" ~doc)
    Term.(
      const loadgen $ port_arg $ host_arg $ socket_arg $ clients_arg
      $ requests_arg $ poison_arg $ seed_arg $ retries_arg $ out_arg)

let () =
  let doc =
    "reference implementations for 'Proper Tail Recursion and Space \
     Efficiency' (Clinger, PLDI 1998)"
  in
  let info = Cmd.info "schemesim" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            run_cmd;
            profile_cmd;
            bench_cmd;
            vmbench_cmd;
            bignumbench_cmd;
            analyze_cmd;
            corpus_cmd;
            report_cmd;
            faults_cmd;
            spaceprof_cmd;
            serve_cmd;
            loadgen_cmd;
          ]))
