(* Quickstart: evaluate Scheme on a reference machine and read off the
   space consumption that the paper's Definition 23 assigns to the run.

       dune exec examples/quickstart.exe *)

module Machine = Tailspace_core.Machine

let () =
  (* A machine is a semantics variant plus policies for the paper's
     nondeterminism, bundled in a Config. The default is I_tail: the
     properly tail recursive reference implementation of §7. *)
  let machine = Machine.create_with Machine.Config.default in

  (* Full Scheme goes in; the expander lowers it to Core Scheme. *)
  let result =
    Machine.exec_string machine
      {|
        (define (sum-to n acc)
          (if (zero? n) acc (sum-to (- n 1) (+ acc n))))
        (sum-to 1000 0)
      |}
  in

  (match result.Machine.outcome with
  | Machine.Done { answer; _ } -> Printf.printf "answer: %s\n" answer
  | Machine.Stuck reason -> Printf.printf "stuck: %s\n" reason
  | Machine.Aborted { reason; _ } ->
      Printf.printf "aborted: %s\n"
        (Tailspace_resilience.Resilience.abort_reason_message reason));

  Printf.printf "steps:  %d\n" result.Machine.steps;
  Printf.printf "|P|:    %d AST nodes\n" result.Machine.program_size;
  Printf.printf "peak:   %d words (sup of space(C_i), Figure 7)\n"
    (Machine.peak_space result);
  Printf.printf "S(P):   %d words (|P| + peak, Definition 23)\n"
    (Machine.space_consumption result);

  (* The same loop under the improperly tail recursive machine I_gc
     pushes a return frame for every call, so its peak grows with n. *)
  let improper =
    Machine.create_with (Machine.Config.make ~variant:Machine.Gc ())
  in
  let r2 =
    Machine.exec_string improper
      {|
        (define (sum-to n acc)
          (if (zero? n) acc (sum-to (- n 1) (+ acc n))))
        (sum-to 1000 0)
      |}
  in
  Printf.printf "\nthe same program under I_gc peaks at %d words —\n"
    (Machine.peak_space r2);
  Printf.printf "%.1fx the properly tail recursive peak, and growing with n.\n"
    (float_of_int (Machine.peak_space r2)
    /. float_of_int (Machine.peak_space result))
