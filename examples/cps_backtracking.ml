(* Continuation-passing style is the paper's motivating workload (§1):
   "Common idioms, notably continuation-passing style, would quickly run
   out of stack space if tail calls were to consume space."

   This example is a backtracking constraint solver written in pure CPS
   — success and failure continuations, no procedure ever returns. With
   an impossible target it explores the whole 2^n search tree. In pure
   CPS *every* call is a tail call, so:

   - under I_tail the live space is the pending-continuation chain,
     proportional to the search *depth* (n);
   - under I_gc every call still pushes a frame and nothing ever
     returns, so the space is proportional to the *total number of
     calls* — exponential in n.

       dune exec examples/cps_backtracking.exe *)

module Machine = Tailspace_core.Machine
module Runner = Tailspace_harness.Runner
module Expand = Tailspace_expander.Expand

(* subset-sum, CPS all the way down: (solve items target sk fk) calls
   sk with the chosen subset or fk with no arguments. *)
let solver =
  {|
(define (iota n) (if (zero? n) '() (cons n (iota (- n 1)))))
(define (sum lst) (fold-left + 0 lst))
(define (solve items target sk fk)
  (cond ((zero? target) (sk '()))
        ((null? items) (fk))
        (else
         (solve (cdr items)
                (- target (car items))
                (lambda (subset) (sk (cons (car items) subset)))
                (lambda ()
                  (solve (cdr items) target sk fk))))))
(lambda (n)
  (let ((items (iota n)))
    ;; impossible target: forces exhaustive exploration of all 2^n paths
    (solve items
           (+ 1 (sum items))
           (lambda (subset) subset)
           (lambda () 'impossible))))
|}

let () =
  let program = Expand.program_of_string solver in
  let show variant n =
    let m =
      Runner.run_once
        ~opts:(Machine.Run_opts.make ~gc_policy:`Approximate ())
        ~config:(Machine.Config.make ~variant ())
        ~program ~n ()
    in
    match m.Runner.status with
    | Runner.Answer a ->
        Printf.printf "  %-5s n=%-2d (%7d steps) -> %-10s S=%d words\n"
          (Machine.variant_name variant) n m.Runner.steps a m.Runner.space
    | Runner.Stuck msg -> Printf.printf "  stuck: %s\n" msg
    | Runner.Aborted r ->
        Printf.printf "  aborted: %s\n"
          (Tailspace_resilience.Resilience.abort_reason_message r)
  in
  print_endline "exhaustive CPS subset-sum search over {1..n}, impossible target:";
  print_endline "";
  print_endline "properly tail recursive (I_tail) — space follows search DEPTH:";
  List.iter (show Machine.Tail) [ 6; 8; 10; 12 ];
  print_newline ();
  print_endline "improperly tail recursive (I_gc) — space follows TOTAL CALLS:";
  List.iter (show Machine.Gc) [ 6; 8; 10; 12 ];
  print_newline ();
  print_endline "each +2 in n quadruples the search tree; I_gc's space tracks";
  print_endline "it (nothing ever returns, so no frame is ever popped) while";
  print_endline "I_tail grows only with the O(n) continuation chain. This is";
  print_endline "why the Scheme standard makes proper tail recursion a";
  print_endline "conformance requirement rather than an optimization."
