(* The space-complexity hierarchy of Figure 6, in miniature.

   Runs the four separating programs from the proof of Theorem 25 on all
   six reference machines and prints S_X(P, N) side by side, so you can
   watch each inclusion in

       O(S_sfs) < O(S_evlis), O(S_free) < O(S_tail) < O(S_gc) < O(S_stack)

   become strict on the program built to separate it.

       dune exec examples/space_hierarchy.exe *)

module Machine = Tailspace_core.Machine
module Runner = Tailspace_harness.Runner
module Families = Tailspace_corpus.Families
module Table = Tailspace_harness.Table
module Expand = Tailspace_expander.Expand

let ns = [ 16; 32; 64 ]

let () =
  List.iter
    (fun (name, source) ->
      Printf.printf "separating program %s:\n%s\n" name (String.trim source);
      let program = Expand.program_of_string source in
      let rows =
        List.map
          (fun variant ->
            let ms =
              Runner.sweep
                ~opts:(Machine.Run_opts.make ~gc_policy:`Approximate ())
                ~config:(Machine.Config.make ~variant ())
                ~program ~ns ()
            in
            Machine.variant_name variant
            :: List.map
                 (fun (m : Runner.measurement) ->
                   match m.Runner.status with
                   | Runner.Answer _ -> string_of_int m.Runner.space
                   | Runner.Stuck _ -> "stuck"
                   | Runner.Aborted _ -> "aborted")
                 ms)
          Machine.all_variants
      in
      print_newline ();
      print_string
        (Table.render ~header:("S_X(P,N), X=" :: List.map string_of_int ns) rows);
      print_newline ())
    Families.separators;
  print_endline "the full-size sweep with fitted growth orders is printed by";
  print_endline "`dune exec bench/main.exe` (experiment E2)."
