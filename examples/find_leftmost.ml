(* The paper's §4 example. find-leftmost searches a binary tree for the
   leftmost satisfying leaf, passing an explicit failure continuation.
   The paper's claim: its space is proportional to the maximal number of
   *left* edges on any root-to-leaf path and independent of the number
   of *right* edges — but only under proper tail recursion, because the
   failure continuations are invoked by tail calls.

       dune exec examples/find_leftmost.exe *)

module Machine = Tailspace_core.Machine
module Runner = Tailspace_harness.Runner
module Families = Tailspace_corpus.Families
module Expand = Tailspace_expander.Expand

let traversal_overhead variant spine_traverse spine_build n =
  let measure program =
    let m =
      Runner.run_once
        ~config:(Machine.Config.make ~variant ())
        ~program:(Expand.program_of_string program)
        ~n ()
    in
    match m.Runner.status with
    | Runner.Answer _ -> m.Runner.space
    | Runner.Stuck msg -> failwith ("stuck: " ^ msg)
    | Runner.Aborted r ->
        failwith (Tailspace_resilience.Resilience.abort_reason_message r)
  in
  measure spine_traverse - measure spine_build

let () =
  print_endline "traversal overhead of find-leftmost, net of the tree data";
  print_endline "(S_traverse - S_build, in words)\n";
  Printf.printf "%-22s %10s %10s %10s\n" "" "N=50" "N=100" "N=200";
  List.iter
    (fun (label, variant, traverse, build) ->
      Printf.printf "%-22s" label;
      List.iter
        (fun n ->
          Printf.printf " %10d" (traversal_overhead variant traverse build n))
        [ 50; 100; 200 ];
      print_newline ())
    [
      ( "right spine, I_tail",
        Machine.Tail,
        Families.find_leftmost_right_traverse,
        Families.find_leftmost_right_build );
      ( "right spine, I_gc",
        Machine.Gc,
        Families.find_leftmost_right_traverse,
        Families.find_leftmost_right_build );
      ( "left spine,  I_tail",
        Machine.Tail,
        Families.find_leftmost_left_traverse,
        Families.find_leftmost_left_build );
      ( "left spine,  I_gc",
        Machine.Gc,
        Families.find_leftmost_left_traverse,
        Families.find_leftmost_left_build );
    ];
  print_newline ();
  print_endline "reading: under I_tail the right-spine row is flat — each";
  print_endline "failure continuation dies as the next is created, so the";
  print_endline "search runs in constant control space no matter how many";
  print_endline "right edges the tree has. Under I_gc every (tail) call";
  print_endline "still pushes a frame, so the same search grows linearly.";
  print_endline "Left edges genuinely chain continuations: the left-spine";
  print_endline "rows grow under every variant, exactly as §4 predicts."
