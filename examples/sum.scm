; Iterative sum of 1..n through an accumulator: every recursive call is
; a tail call, so the properly tail recursive machines run it in
; constant space while the improper ones grow a continuation per step.
(define (sum i acc)
  (if (= i 0) acc (sum (- i 1) (+ acc i))))
(sum 1000 0)
