module Machine = Tailspace_core.Machine
module Space_model = Tailspace_core.Space_model
module Tail_calls = Tailspace_analysis.Tail_calls
module Corpus = Tailspace_corpus.Corpus
module Families = Tailspace_corpus.Families
module Expand = Tailspace_expander.Expand
module Pool = Tailspace_parallel.Pool

let expand = Expand.program_of_string
let pct = Tail_calls.percent

(* Parallel discipline, shared by every experiment below: programs are
   expanded in the driver, the flattened leaf measurements fan out over
   the pool (each on a fresh machine, see Runner), and the results are
   regrouped in submission order — so tables are byte-identical whatever
   the job count. Tasks never touch the pool themselves. *)

let fit_or_none points =
  if List.length points >= 3 then Some (Growth.fit points) else None

(* The bytecode VM implements only I_tail, so an [engine] selection
   applies to Tail-variant sweep points and leaves every other variant
   on the stepper — exactly the points where the tiers are
   bit-compatible (oracle-checked, [vm_invariant]), so tables are
   byte-identical. With no explicit selection, Tail-variant points
   default to the instrumented VM: same table, less wall-clock. *)
let engine_for engine variant =
  match (engine, variant) with
  | Some _, Machine.Tail -> engine
  | None, Machine.Tail -> Some Machine.Vm
  | _ -> None

let variant_column variants = List.map Machine.variant_name variants

(* ------------------------------------------------------------------ *)

module Fig2 = struct
  type row = { name : string; counts : Tail_calls.counts }

  let run () =
    List.map
      (fun (e : Corpus.entry) ->
        { name = e.name; counts = Tail_calls.analyze (Corpus.program e) })
      Corpus.all

  let total rows =
    List.fold_left
      (fun acc r -> Tail_calls.add acc r.counts)
      Tail_calls.zero rows

  let render rows =
    let line name (c : Tail_calls.counts) =
      [
        name;
        string_of_int c.calls;
        string_of_int c.tail_calls;
        Printf.sprintf "%.1f%%" (pct c.tail_calls c.calls);
        string_of_int c.self_tail_calls;
        Printf.sprintf "%.1f%%" (pct c.self_tail_calls c.calls);
        Printf.sprintf "%.1f%%" (pct c.known_calls c.calls);
      ]
    in
    let rows' = List.map (fun r -> line r.name r.counts) rows in
    let total_row = line "TOTAL" (total rows) in
    Table.section "E1 / Figure 2: static frequency of tail calls (corpus)"
    ^ Table.render
        ~header:
          [ "program"; "calls"; "tail"; "tail%"; "self-tail"; "self%"; "known%" ]
        (rows' @ [ total_row ])
end

(* ------------------------------------------------------------------ *)

module Thm25 = struct
  type cell = {
    variant : Machine.variant;
    spaces : (int * int) list;
    fit : Growth.fit option;
  }

  type sweep = { separator : string; ns : int list; cells : cell list }

  let default_ns = [ 20; 40; 80; 160 ]

  let run ?pool ?engine ?(ns = default_ns) ?budget () =
    let programs =
      List.map (fun (name, source) -> (name, expand source)) Families.separators
    in
    let leaves =
      List.concat_map
        (fun (name, program) ->
          List.concat_map
            (fun variant -> List.map (fun n -> (name, program, variant, n)) ns)
            Machine.all_variants)
        programs
    in
    let measured =
      Pool.map ?pool
        (fun (_, program, variant, n) ->
          Runner.run_once
            ~opts:(Machine.Run_opts.make ?budget ~gc_policy:`Approximate ())
            ~config:(Machine.Config.make ?engine:(engine_for engine variant) ~variant ())
            ~program ~n ())
        leaves
    in
    let tagged = List.combine leaves measured in
    List.map
      (fun (name, _) ->
        let cells =
          List.map
            (fun variant ->
              let ms =
                List.filter_map
                  (fun ((name', _, v, _), m) ->
                    if String.equal name' name && v = variant then Some m
                    else None)
                  tagged
              in
              let spaces = Runner.spaces ms in
              { variant; spaces; fit = fit_or_none spaces })
            Machine.all_variants
        in
        { separator = name; ns; cells })
      programs

  let order_of sweep variant =
    match List.find_opt (fun c -> c.variant = variant) sweep.cells with
    | Some { fit = Some f; _ } -> Some f.Growth.order
    | _ -> None

  (* Each of Theorem 25's "O(S_X) not included in O(S_Y)" claims is
     operationalized directly: S_X(P, N) / S_Y(P, N) must diverge as N
     grows. The ratio of ratios between the largest and smallest N is
     required to exceed a threshold — robust against the additive
     constants (the initial environment) that make absolute order
     fitting noisy at feasible N. *)
  let divergence sweep x y =
    let spaces_of v =
      match List.find_opt (fun c -> c.variant = v) sweep.cells with
      | Some c -> c.spaces
      | None -> []
    in
    let sx = spaces_of x and sy = spaces_of y in
    let ratio n =
      match (List.assoc_opt n sx, List.assoc_opt n sy) with
      | Some a, Some b when b > 0 -> Some (float_of_int a /. float_of_int b)
      | _ -> None
    in
    match (ratio (List.hd sweep.ns), ratio (List.nth sweep.ns (List.length sweep.ns - 1))) with
    | Some lo, Some hi when lo > 0. -> hi /. lo
    | _ -> 0.

  let claims sweeps =
    let find name = List.find (fun s -> s.separator = name) sweeps in
    let diverges s x y = divergence s x y >= 1.4 in
    let s1 = find "stack/gc"
    and s2 = find "gc/tail"
    and s3 = find "tail/evlis"
    and s4 = find "evlis/sfs" in
    [
      ("stack/gc: S_stack diverges from S_gc", diverges s1 Machine.Stack Machine.Gc);
      ("gc/tail: S_gc diverges from S_tail", diverges s2 Machine.Gc Machine.Tail);
      ( "gc/tail: S_tail bounded",
        match List.find_opt (fun c -> c.variant = Machine.Tail) s2.cells with
        | Some { spaces = (_, s0) :: rest; _ } ->
            List.for_all (fun (_, s) -> float_of_int s <= 1.2 *. float_of_int s0) rest
        | _ -> false );
      ("tail/evlis: S_tail diverges from S_evlis", diverges s3 Machine.Tail Machine.Evlis);
      ("tail/evlis: S_free diverges from S_evlis", diverges s3 Machine.Free Machine.Evlis);
      ("tail/evlis: S_free diverges from S_sfs", diverges s3 Machine.Free Machine.Sfs);
      ("evlis/sfs: S_tail diverges from S_free", diverges s4 Machine.Tail Machine.Free);
      ("evlis/sfs: S_evlis diverges from S_free", diverges s4 Machine.Evlis Machine.Free);
      ("evlis/sfs: S_evlis diverges from S_sfs", diverges s4 Machine.Evlis Machine.Sfs);
    ]

  let render sweeps =
    let buf = Buffer.create 1024 in
    Buffer.add_string buf
      (Table.section
         "E2 / Theorem 25 + Figure 6: separating programs, S_X(P, N) by \
          variant");
    List.iter
      (fun sweep ->
        Buffer.add_string buf (Printf.sprintf "\nseparator %s:\n" sweep.separator);
        let header =
          "variant" :: List.map string_of_int sweep.ns @ [ "fitted" ]
        in
        let rows =
          List.map
            (fun c ->
              Machine.variant_name c.variant
              :: List.map
                   (fun n ->
                     match List.assoc_opt n c.spaces with
                     | Some s -> string_of_int s
                     | None -> "stuck")
                   sweep.ns
              @ [
                  (match c.fit with
                  | Some f -> Growth.order_name f.Growth.order
                  | None -> "-");
                ])
            sweep.cells
        in
        Buffer.add_string buf (Table.render ~header rows))
      sweeps;
    Buffer.add_string buf "\npaper claims:\n";
    List.iter
      (fun (claim, ok) ->
        Buffer.add_string buf
          (Printf.sprintf "  [%s] %s\n" (if ok then "ok" else "FAIL") claim))
      (claims sweeps);
    Buffer.contents buf
end

(* ------------------------------------------------------------------ *)

module Thm24 = struct
  type row = {
    name : string;
    n : int;
    s : (Machine.variant * int) list;
    chain_ok : bool;
  }

  let chain_holds s =
    let v x = List.assoc x s in
    v Machine.Tail <= v Machine.Gc
    && v Machine.Gc <= v Machine.Stack
    && v Machine.Sfs <= v Machine.Evlis
    && v Machine.Evlis <= v Machine.Tail
    && v Machine.Sfs <= v Machine.Free
    && v Machine.Free <= v Machine.Tail

  let run ?pool ?engine ?(include_slow = false) () =
    let entries =
      Corpus.all
      |> List.filter (fun (e : Corpus.entry) -> include_slow || not e.slow)
      |> List.filter_map (fun (e : Corpus.entry) ->
             match e.checks with
             | [] -> None
             | (n, _) :: _ -> Some (e.name, n, Corpus.program e))
    in
    let leaves =
      List.concat_map
        (fun (name, n, program) ->
          List.map (fun v -> (name, n, program, v)) Machine.all_variants)
        entries
    in
    let measured =
      Pool.map ?pool
        (fun (_, n, program, variant) ->
          let m =
            Runner.run_once
              ~config:
                (Machine.Config.make ?engine:(engine_for engine variant)
                   ~variant ())
              ~program ~n ()
          in
          m.Runner.space)
        leaves
    in
    let tagged = List.combine leaves measured in
    List.map
      (fun (name, n, _) ->
        let s =
          List.filter_map
            (fun ((name', _, _, v), space) ->
              if String.equal name' name then Some (v, space) else None)
            tagged
        in
        { name; n; s; chain_ok = chain_holds s })
      entries

  let render rows =
    Table.section
      "E3 / Theorem 24: pointwise S_sfs <= {S_evlis, S_free} <= S_tail <= \
       S_gc <= S_stack"
    ^ Table.render
        ~header:("program" :: "N" :: variant_column Machine.all_variants @ [ "chain" ])
        (List.map
           (fun r ->
             r.name :: string_of_int r.n
             :: List.map (fun v -> string_of_int (List.assoc v r.s)) Machine.all_variants
             @ [ (if r.chain_ok then "ok" else "VIOLATED") ])
           rows)
end

(* ------------------------------------------------------------------ *)

module Thm26 = struct
  type row = { n : int; u_tail : int; s_tail : int; s_sfs : int }

  type result = {
    rows : row list;
    u_tail_fit : Growth.fit option;
    s_sfs_fit : Growth.fit option;
  }

  let default_ns = [ 8; 12; 18; 27; 40 ]

  let space_of (m : Runner.measurement) = m.Runner.space

  let answered (m : Runner.measurement) =
    match m.Runner.status with Runner.Answer _ -> true | _ -> false

  let run ?pool ?engine ?(ns = default_ns) ?budget () =
    let tasks = List.map (fun n -> (n, expand (Families.pk_program n))) ns in
    let measured =
      Pool.map ?pool
        (fun (n, program) ->
          let tail_m =
            Runner.run_once
              ~opts:
                (Machine.Run_opts.make ?budget
                   ~measure:[ Space_model.Flat; Space_model.Linked ] ())
              ~config:
                (Machine.Config.make
                   ?engine:(engine_for engine Machine.Tail)
                   ~variant:Machine.Tail ())
              ~program ~n ()
          in
          let sfs_m =
            Runner.run_once
              ~opts:(Machine.Run_opts.make ?budget ())
              ~config:(Machine.Config.make ~variant:Machine.Sfs ())
              ~program ~n ()
          in
          (n, tail_m, sfs_m))
        tasks
    in
    let rows =
      List.map
        (fun (n, tail_m, sfs_m) ->
          {
            n;
            u_tail =
              Option.value ~default:0
                (Runner.consumption tail_m Space_model.Linked);
            s_tail = space_of tail_m;
            s_sfs = space_of sfs_m;
          })
        measured
    in
    (* Fits run over the points that actually answered: a starved sweep
       (tight budget, small ns) degrades to fit [None] and a rendered
       table instead of Growth.fit's Invalid_argument. *)
    let u_points =
      List.filter_map
        (fun (n, tail_m, _) ->
          if answered tail_m then
            Option.map
              (fun l -> (n, l))
              (Runner.consumption tail_m Space_model.Linked)
          else None)
        measured
    in
    let s_points =
      List.filter_map
        (fun (n, _, sfs_m) ->
          if answered sfs_m then Some (n, space_of sfs_m) else None)
        measured
    in
    { rows; u_tail_fit = fit_or_none u_points; s_sfs_fit = fit_or_none s_points }

  let fit_name = function
    | Some f -> Growth.order_name f.Growth.order
    | None -> "-"

  let render result =
    Table.section
      "E4 / Theorem 26 + Figure 8: flat vs linked environments on P_N"
    ^ Table.render
        ~header:[ "N"; "U_tail(P_N,N)"; "S_tail(P_N,N)"; "S_sfs(P_N,N)" ]
        (List.map
           (fun r ->
             [
               string_of_int r.n;
               string_of_int r.u_tail;
               string_of_int r.s_tail;
               string_of_int r.s_sfs;
             ])
           result.rows)
    ^ Printf.sprintf "U_tail fits %s; S_sfs fits %s  (paper: O(N log N) vs O(N^2))\n"
        (fit_name result.u_tail_fit) (fit_name result.s_sfs_fit)
end

(* ------------------------------------------------------------------ *)

module Sec4 = struct
  type row = {
    spine : string;
    variant : Machine.variant;
    deltas : (int * int) list;
    fit : Growth.fit option;
  }

  let default_ns = [ 24; 48; 96; 192 ]

  let run ?pool ?engine ?(ns = default_ns) () =
    let programs =
      [
        ( "right",
          expand Families.find_leftmost_right_traverse,
          expand Families.find_leftmost_right_build );
        ( "left",
          expand Families.find_leftmost_left_traverse,
          expand Families.find_leftmost_left_build );
      ]
    in
    List.concat_map
      (fun (spine, traverse, build) ->
        List.map
          (fun variant ->
            let config =
              Machine.Config.make ?engine:(engine_for engine variant) ~variant ()
            in
            let tm = Runner.sweep ?pool ~config ~program:traverse ~ns () in
            let bm = Runner.sweep ?pool ~config ~program:build ~ns () in
            let deltas =
              List.filter_map
                (fun n ->
                  match
                    ( List.assoc_opt n (Runner.spaces tm),
                      List.assoc_opt n (Runner.spaces bm) )
                  with
                  | Some t, Some b -> Some (n, t - b)
                  | _ -> None)
                ns
            in
            { spine; variant; deltas; fit = fit_or_none deltas })
          [ Machine.Tail; Machine.Gc; Machine.Stack ])
      programs

  let render rows =
    Table.section
      "E5 / §4: find-leftmost traversal overhead (S_traverse - S_build)"
    ^ Table.render
        ~header:
          ("spine" :: "variant"
          :: List.map string_of_int
               (match rows with r :: _ -> List.map fst r.deltas | [] -> [])
          @ [ "fitted" ])
        (List.map
           (fun r ->
             r.spine
             :: Machine.variant_name r.variant
             :: List.map (fun (_, d) -> string_of_int d) r.deltas
             @ [
                 (match r.fit with
                 | Some f -> Growth.order_name f.Growth.order
                 | None -> "-");
               ])
           rows)
    ^ "paper: right spine is O(1) under I_tail but grows under I_gc/I_stack;\n\
       left spine grows under every variant.\n"
end

(* ------------------------------------------------------------------ *)

module Cor20 = struct
  type row = {
    name : string;
    n : int;
    answers : (Machine.variant * string) list;
    agree : bool;
  }

  let run ?pool ?engine ?(include_slow = false) () =
    let entries =
      Corpus.all
      |> List.filter (fun (e : Corpus.entry) -> include_slow || not e.slow)
      |> List.filter_map (fun (e : Corpus.entry) ->
             match e.checks with
             | [] -> None
             | (n, _) :: _ -> Some (e.name, n, Corpus.program e))
    in
    let leaves =
      List.concat_map
        (fun (name, n, program) ->
          List.map (fun v -> (name, n, program, v)) Machine.all_variants)
        entries
    in
    let measured =
      Pool.map ?pool
        (fun (_, n, program, variant) ->
          let m =
            Runner.run_once
              ~config:
                (Machine.Config.make ?engine:(engine_for engine variant)
                   ~variant ())
              ~program ~n ()
          in
          match m.Runner.status with
          | Runner.Answer a -> a
          | Runner.Stuck s -> "stuck: " ^ s
          | Runner.Aborted r -> Runner.Resilience.abort_reason_name r)
        leaves
    in
    let tagged = List.combine leaves measured in
    List.map
      (fun (name, n, _) ->
        let answers =
          List.filter_map
            (fun ((name', _, _, v), text) ->
              if String.equal name' name then Some (v, text) else None)
            tagged
        in
        let agree =
          match answers with
          | (_, first) :: rest ->
              List.for_all (fun (_, a) -> String.equal a first) rest
          | [] -> true
        in
        { name; n; answers; agree })
      entries

  let render rows =
    Table.section
      "E6 / Corollary 20: all reference implementations compute the same \
       answers"
    ^ Table.render
        ~header:[ "program"; "N"; "answer (I_tail)"; "all 6 agree" ]
        (List.map
           (fun r ->
             let answer = List.assoc Machine.Tail r.answers in
             let shown =
               if String.length answer > 32 then String.sub answer 0 29 ^ "..."
               else answer
             in
             [
               r.name;
               string_of_int r.n;
               shown;
               (if r.agree then "yes" else "NO");
             ])
           rows)
end

(* ------------------------------------------------------------------ *)

module Cps = struct
  type result = {
    ns : int list;
    tail : (int * int) list;
    gc : (int * int) list;
    tail_fit : Growth.fit option;
    gc_fit : Growth.fit option;
  }

  let default_ns = [ 32; 64; 128; 256 ]

  let run ?pool ?engine ?(ns = default_ns) ?budget () =
    let program = expand Families.cps_loop in
    let opts = Machine.Run_opts.make ?budget () in
    let tail =
      Runner.spaces
        (Runner.sweep ?pool ~opts
           ~config:
             (Machine.Config.make
                ?engine:(engine_for engine Machine.Tail)
                ~variant:Machine.Tail ())
           ~program ~ns ())
    in
    let gc =
      Runner.spaces
        (Runner.sweep ?pool ~opts
           ~config:(Machine.Config.make ~variant:Machine.Gc ())
           ~program ~ns ())
    in
    (* [Runner.spaces] keeps only answered points, so a starved sweep
       can leave fewer than three: fit [None] rather than raise. *)
    { ns; tail; gc; tail_fit = fit_or_none tail; gc_fit = fit_or_none gc }

  let render r =
    let cell spaces n =
      match List.assoc_opt n spaces with
      | Some s -> string_of_int s
      | None -> "-"
    in
    let fit_name = function
      | Some f -> Growth.order_name f.Growth.order
      | None -> "-"
    in
    Table.section "E7 / §1: pure CPS needs bounded space only if properly tail recursive"
    ^ Table.render
        ~header:("variant" :: List.map string_of_int r.ns @ [ "fitted" ])
        [
          ("tail" :: List.map (cell r.tail) r.ns) @ [ fit_name r.tail_fit ];
          ("gc" :: List.map (cell r.gc) r.ns) @ [ fit_name r.gc_fit ];
        ]
end

(* ------------------------------------------------------------------ *)

module Ablation = struct
  type sweep = { label : string; spaces : (int * int) list }

  type result = {
    ns : int list;
    return_env_rows : sweep list;
    evlis_rows : sweep list;
    stack_gc_divergence_faithful : float;
    stack_gc_divergence_literal : float;
    tail_evlis_divergence_faithful : float;
    tail_evlis_divergence_literal : float;
  }

  let default_ns = [ 20; 40; 80; 160 ]

  (* how much the ratio of two sweeps grows from the smallest N to the
     largest: > 1 means the first grows strictly faster *)
  let divergence ns a b =
    let ratio n =
      match (List.assoc_opt n a.spaces, List.assoc_opt n b.spaces) with
      | Some x, Some y when y > 0 -> Some (float_of_int x /. float_of_int y)
      | _ -> None
    in
    match (ratio (List.hd ns), ratio (List.nth ns (List.length ns - 1))) with
    | Some lo, Some hi when lo > 0. -> hi /. lo
    | _ -> 0.

  let run ?pool ?engine ?(ns = default_ns) () =
    let sweep ?return_env ?evlis_drop_at_creation ~variant label source =
      let program = expand source in
      let ms =
        Runner.sweep ?pool
          ~opts:(Machine.Run_opts.make ~gc_policy:`Approximate ())
          ~config:
            (Machine.Config.make ?engine:(engine_for engine variant) ?return_env
               ?evlis_drop_at_creation ~variant ())
          ~program ~ns ()
      in
      { label; spaces = Runner.spaces ms }
    in
    let gc_f =
      sweep ~variant:Machine.Gc "gc, closure-env frames (faithful)"
        Families.separator_stack_gc
    and stack_f =
      sweep ~variant:Machine.Stack "stack, closure-env frames (faithful)"
        Families.separator_stack_gc
    and gc_l =
      sweep ~return_env:Machine.Register_env ~variant:Machine.Gc
        "gc, register-env frames (literal)" Families.separator_stack_gc
    and stack_l =
      sweep ~return_env:Machine.Register_env ~variant:Machine.Stack
        "stack, register-env frames (literal)" Families.separator_stack_gc
    in
    let tail_e =
      sweep ~variant:Machine.Tail "tail (unaffected)"
        Families.separator_tail_evlis
    and evlis_f =
      sweep ~variant:Machine.Evlis "evlis, drop at creation (faithful)"
        Families.separator_tail_evlis
    and evlis_l =
      sweep ~evlis_drop_at_creation:false ~variant:Machine.Evlis
        "evlis, printed rules only (literal)" Families.separator_tail_evlis
    in
    {
      ns;
      return_env_rows = [ gc_f; stack_f; gc_l; stack_l ];
      evlis_rows = [ tail_e; evlis_f; evlis_l ];
      stack_gc_divergence_faithful = divergence ns stack_f gc_f;
      stack_gc_divergence_literal = divergence ns stack_l gc_l;
      tail_evlis_divergence_faithful = divergence ns tail_e evlis_f;
      tail_evlis_divergence_literal = divergence ns tail_e evlis_l;
    }

  let render r =
    let table rows =
      Table.render
        ~header:("S(P,N)" :: List.map string_of_int r.ns)
        (List.map
           (fun s ->
             s.label
             :: List.map
                  (fun n ->
                    match List.assoc_opt n s.spaces with
                    | Some v -> string_of_int v
                    | None -> "stuck")
                  r.ns)
           rows)
    in
    Table.section
      "E8 / ablation: literal readings of two ambiguous rules break Theorem 25"
    ^ "
return frames (separator stack/gc):
"
    ^ table r.return_env_rows
    ^ Printf.sprintf
        "S_stack/S_gc divergence: %.2f faithful vs %.2f literal — the\n\
         separation needs frames that do not capture the caller's\n\
         register environment.\n"
        r.stack_gc_divergence_faithful r.stack_gc_divergence_literal
    ^ "
evlis and nullary calls (separator tail/evlis):
"
    ^ table r.evlis_rows
    ^ Printf.sprintf
        "S_tail/S_evlis divergence: %.2f faithful vs %.2f literal — evlis\n\
         must drop the environment when a frame is created with no\n\
         remaining subexpressions.\n"
        r.tail_evlis_divergence_faithful r.tail_evlis_divergence_literal
end

(* ------------------------------------------------------------------ *)

module Sanity = struct
  module Secd = Tailspace_engines.Secd

  type cell = {
    program : string;
    engine_order : Growth.order;
    tail_order : Growth.order;
    ok : bool;
  }

  type row = {
    engine : string;
    cells : cell list;
    properly_tail_recursive : bool;
  }

  type result = { ns : int list; rows : row list }

  let default_ns = [ 32; 64; 128; 256 ]

  (* iteration-shaped programs the SECD subset can run (no prelude, no
     call/cc) whose S_tail is bounded, so any frame leak shows up as
     divergence *)
  let battery =
    [
      ("countdown", Families.separator_gc_tail);
      ("cps-loop", Families.cps_loop);
      ( "even-odd",
        "(define (e? n) (if (zero? n) #t (o? (- n 1))))
         (define (o? n) (if (zero? n) #f (e? (- n 1))))
         e?" );
      ("find-leftmost (right spine)", Families.find_leftmost_right_traverse);
    ]

  let secd_engine ~proper name =
    ( name,
      fun ~program ~n ->
        let r = Secd.run_program ~proper_tail_calls:proper ~program ~input:(Runner.input_expr n) () in
        match r.Secd.outcome with
        | Secd.Done _ -> Some r.Secd.peak_words
        | Secd.Error _ | Secd.Aborted _ -> None )

  let machine_engine variant name =
    ( name,
      fun ~program ~n ->
        let m =
          Runner.run_once
            ~config:(Machine.Config.make ~variant ())
            ~program ~n ()
        in
        match m.Runner.status with
        | Runner.Answer _ -> Some m.Runner.space
        | _ -> None )

  let engines =
    [
      secd_engine ~proper:true "secd (tail-recursive)";
      secd_engine ~proper:false "secd (classic)";
      machine_engine Machine.Gc "reference I_gc (control)";
    ]

  let run ?pool ?(ns = default_ns) () =
    let programs =
      List.map (fun (name, src) -> (name, expand src)) battery
    in
    let tail_spaces =
      List.map
        (fun (name, program) ->
          ( name,
            Runner.spaces
              (Runner.sweep ?pool
                 ~config:(Machine.Config.make ~variant:Machine.Tail ())
                 ~program ~ns ()) ))
        programs
    in
    let rows =
      List.map
        (fun (engine, run_engine) ->
          let cells =
            List.map
              (fun (name, program) ->
                let tails = List.assoc name tail_spaces in
                let engine_points =
                  List.combine ns
                    (Pool.map ?pool (fun n -> run_engine ~program ~n) ns)
                  |> List.filter_map (fun (n, e) ->
                         Option.map (fun e -> (n, e)) e)
                in
                if List.length engine_points >= 3 && List.length tails >= 3
                then begin
                  let engine_order = Growth.classify engine_points in
                  let tail_order = Growth.classify tails in
                  {
                    program = name;
                    engine_order;
                    tail_order;
                    (* up-to-logarithmic slack: the bignum loop counter
                       costs 1 + log2 N words, visible over the engine's
                       small constant but hidden under the reference
                       machine's initial-store constant — the same
                       caveat Theorem 25's proof notes for unlimited
                       precision arithmetic *)
                    ok =
                      engine_order = tail_order
                      || (not (Growth.at_least engine_order tail_order))
                      || not (Growth.at_least engine_order Growth.Linear);
                  }
                end
                else
                  (* a run failed: flag conservatively *)
                  {
                    program = name;
                    engine_order = Growth.Quadratic;
                    tail_order = Growth.Constant;
                    ok = false;
                  })
              programs
          in
          {
            engine;
            cells;
            properly_tail_recursive = List.for_all (fun c -> c.ok) cells;
          })
        engines
    in
    { ns; rows }

  let render r =
    Table.section
      "E9 / \xc2\xa714 sanity check: which implementations are properly tail recursive?"
    ^ Table.render
        ~header:
          ("implementation"
          :: List.map (fun (name, _) -> name) battery
          @ [ "verdict" ])
        (List.map
           (fun row ->
             row.engine
             :: List.map
                  (fun c ->
                    Printf.sprintf "%s vs %s"
                      (Growth.order_name c.engine_order)
                      (Growth.order_name c.tail_order))
                  row.cells
             @ [
                 (if row.properly_tail_recursive then "properly tail recursive"
                  else "SPACE LEAK");
               ])
           r.rows)
    ^ "cells: fitted growth of the implementation's live space vs S_tail's.\n"
    ^ "An implementation is flagged when it grows strictly faster than S_tail\n"
    ^ "on some program (Definition 5). The tail-recursive SECD machine passes;\n"
    ^ "the classic SECD machine and I_gc leak a frame per call, as \xc2\xa714 expects.\n"
end

(* ------------------------------------------------------------------ *)

module LogHier = struct
  (* Theorems 24/25/26 are stated for the flat and linked models; the
     logarithmic model re-prices every linked unit at ceil(log2 |store|)
     bits, a factor that itself grows with the live store. This
     experiment re-runs each separation with all three models measured
     and reports, per strict inclusion, whether the divergence survives
     the re-pricing: a pointer-size factor of O(log S) cannot close a
     polynomial gap, but it can (and does, on the N log N families)
     shift where feasible-N divergence ratios land. *)

  type pair = {
    separation : string;  (** separator family name, "x/y" *)
    flat_div : float;  (** divergence of S_x / S_y, smallest to largest N *)
    log_div : float;  (** the same ratio-of-ratios under Log *)
    survives : bool;  (** [log_div >= threshold] *)
  }

  type result = {
    ns : int list;
    pairs : pair list;
    chain_rows : (string * bool) list;
        (** Theorem 24's pointwise chain re-checked on Log consumption *)
    pk_ns : int list;
    thm26_flat_div : float;  (** S_sfs against U_tail on P_N (the paper's) *)
    thm26_log_div : float;  (** S_sfs against Log_tail *)
    thm26_survives : bool;
  }

  let threshold = 1.4
  let default_ns = Thm25.default_ns

  let divergence ns xs ys =
    let ratio n =
      match (List.assoc_opt n xs, List.assoc_opt n ys) with
      | Some a, Some b when b > 0 -> Some (float_of_int a /. float_of_int b)
      | _ -> None
    in
    match
      (ratio (List.hd ns), ratio (List.nth ns (List.length ns - 1)))
    with
    | Some lo, Some hi when lo > 0. -> hi /. lo
    | _ -> 0.

  (* Each separator family with the pair of variants its strict
     inclusion compares (Theorem 25's four adjacent separations). *)
  let separations =
    [
      ("stack/gc", Machine.Stack, Machine.Gc);
      ("gc/tail", Machine.Gc, Machine.Tail);
      ("tail/evlis", Machine.Tail, Machine.Evlis);
      ("evlis/sfs", Machine.Evlis, Machine.Sfs);
    ]

  let all_models = [ Space_model.Flat; Space_model.Linked; Space_model.Log ]

  let run ?pool ?engine ?(ns = default_ns) ?budget () =
    let opts = Machine.Run_opts.make ?budget ~measure:all_models () in
    (* Only the two variants each inclusion compares are measured: the
       per-step linked walk the heavy models force makes a full
       six-variant sweep needlessly slow here. *)
    let leaves =
      List.concat_map
        (fun (sep, x, y) ->
          let program = expand (List.assoc sep Families.separators) in
          List.concat_map
            (fun variant -> List.map (fun n -> (sep, program, variant, n)) ns)
            [ x; y ])
        separations
    in
    let measured =
      Pool.map ?pool
        (fun (_, program, variant, n) ->
          Runner.run_once ~opts
            ~config:
              (Machine.Config.make
                 ?engine:(engine_for engine variant)
                 ~variant ())
            ~program ~n ())
        leaves
    in
    let tagged = List.combine leaves measured in
    let spaces_of model sep variant =
      Runner.spaces_for model
        (List.filter_map
           (fun ((sep', _, v, _), m) ->
             if String.equal sep' sep && v = variant then Some m else None)
           tagged)
    in
    let pairs =
      List.map
        (fun (sep, x, y) ->
          let div model =
            divergence ns (spaces_of model sep x) (spaces_of model sep y)
          in
          let log_div = div Space_model.Log in
          {
            separation = sep;
            flat_div = div Space_model.Flat;
            log_div;
            survives = log_div >= threshold;
          })
        separations
    in
    (* Theorem 24's chain, re-checked pointwise on Log consumption. It
       is not implied by the flat chain: the pointer-size factor is a
       function of each variant's own store, so two variants' log
       figures are scaled by different factors. *)
    let chain_entries =
      List.filter_map
        (fun name ->
          match Corpus.find name with
          | Some e -> (
              match e.Corpus.checks with
              | (n, _) :: _ -> Some (e.Corpus.name, n, Corpus.program e)
              | [] -> None)
          | None -> None)
        [ "countdown"; "fib-iter"; "even-odd" ]
    in
    let chain_leaves =
      List.concat_map
        (fun (name, n, program) ->
          List.map (fun v -> (name, n, program, v)) Machine.all_variants)
        chain_entries
    in
    let chain_measured =
      Pool.map ?pool
        (fun (_, n, program, variant) ->
          let m =
            Runner.run_once ~opts
              ~config:
                (Machine.Config.make
                   ?engine:(engine_for engine variant)
                   ~variant ())
              ~program ~n ()
          in
          Option.value ~default:0 (Runner.consumption m Space_model.Log))
        chain_leaves
    in
    let chain_tagged = List.combine chain_leaves chain_measured in
    let chain_rows =
      List.map
        (fun (name, _, _) ->
          let s =
            List.filter_map
              (fun ((name', _, _, v), l) ->
                if String.equal name' name then Some (v, l) else None)
              chain_tagged
          in
          (name, Thm24.chain_holds s))
        chain_entries
    in
    (* Theorem 26 on P_N: the paper separates flat S_sfs from linked
       U_tail; under the log model the tail side is re-priced to
       Log_tail (bit-units — the ratio-of-ratios cancels the unit). *)
    let pk_ns = Thm26.default_ns in
    let pk =
      Pool.map ?pool
        (fun (n, program) ->
          let tail_m =
            Runner.run_once ~opts
              ~config:
                (Machine.Config.make
                   ?engine:(engine_for engine Machine.Tail)
                   ~variant:Machine.Tail ())
              ~program ~n ()
          in
          let sfs_m =
            Runner.run_once ~opts
              ~config:(Machine.Config.make ~variant:Machine.Sfs ())
              ~program ~n ()
          in
          (tail_m, sfs_m))
        (List.map (fun n -> (n, expand (Families.pk_program n))) pk_ns)
    in
    let tails = List.map fst pk and sfss = List.map snd pk in
    let thm26_flat_div =
      divergence pk_ns (Runner.spaces sfss)
        (Runner.spaces_for Space_model.Linked tails)
    in
    let thm26_log_div =
      divergence pk_ns (Runner.spaces sfss)
        (Runner.spaces_for Space_model.Log tails)
    in
    {
      ns;
      pairs;
      chain_rows;
      pk_ns;
      thm26_flat_div;
      thm26_log_div;
      thm26_survives = thm26_log_div >= threshold;
    }

  let render r =
    let fmt = Printf.sprintf "%.2f" in
    Table.section
      "E10 / log model: the space hierarchy under pointer-size accounting"
    ^ Table.render
        ~header:[ "separation"; "flat div"; "log div"; "under Log" ]
        (List.map
           (fun p ->
             [
               p.separation;
               fmt p.flat_div;
               fmt p.log_div;
               (if p.survives then "survives" else "COLLAPSES");
             ])
           r.pairs
        @ [
            [
              "thm26 sfs(flat)/tail";
              fmt r.thm26_flat_div;
              fmt r.thm26_log_div;
              (if r.thm26_survives then "survives" else "COLLAPSES");
            ];
          ])
    ^ Printf.sprintf "Theorem 24 chain on Log consumption: %s\n"
        (String.concat ", "
           (List.map
              (fun (name, ok) ->
                Printf.sprintf "%s %s" name (if ok then "ok" else "VIOLATED"))
              r.chain_rows))
    ^ "div: ratio of S_x/S_y between the smallest and largest N (>= 1.4\n\
       counts as divergence). Log re-prices every linked unit at\n\
       ceil(log2 |store|) bits, so a polynomial separation survives while\n\
       the factor only shifts the ratios.\n"
end

(* ------------------------------------------------------------------ *)

(* [engine] selects the measuring engine where bit-compatibility
   suffices — the instrumented bytecode VM's Tail-variant step counts
   and peaks are identical to the stepper's (oracle-checked) — so the
   tables are byte-identical and only the wall-clock changes. E1 is
   static and E9 compares engines itself; both ignore the selection. *)
let render_all ?pool ?engine () =
  String.concat ""
    [
      Fig2.render (Fig2.run ());
      Thm25.render (Thm25.run ?pool ?engine ());
      Thm24.render (Thm24.run ?pool ?engine ());
      Thm26.render (Thm26.run ?pool ?engine ());
      Sec4.render (Sec4.run ?pool ?engine ());
      Cor20.render (Cor20.run ?pool ?engine ());
      Cps.render (Cps.run ?pool ?engine ());
      Ablation.render (Ablation.run ?pool ?engine ());
      Sanity.render (Sanity.run ?pool ());
      LogHier.render (LogHier.run ?pool ?engine ());
    ]
