module Machine = Tailspace_core.Machine
module Space_model = Tailspace_core.Space_model
module Census = Tailspace_core.Census
module Expand = Tailspace_expander.Expand
module Corpus = Tailspace_corpus.Corpus
module Families = Tailspace_corpus.Families
module Resilience = Tailspace_resilience.Resilience
module Json = Tailspace_telemetry.Telemetry.Json
module Bignum = Tailspace_bignum.Bignum
module P = Tailspace_provenance.Provenance

(* Corollary 20 says the observable answer is independent of the
   machine variant; the lazy-collection argument behind Definition 21
   says the [`Exact] peak is the sup of live space and therefore
   independent of the collection schedule. The oracle re-checks both
   under adversarial schedules: for each (program, variant), a baseline
   run is compared against runs whose fault plans force collections at
   hostile times. Forced collections may only add [gc_runs]; they must
   change neither the answer nor the [`Exact] peak. *)

type check = {
  family : string;
  n : int;
  variant : Machine.variant;
  plan : string;
  answer_agrees : bool;
  peak_stable : bool;
  baseline_status : string;
  status : string;
  baseline_peak : int;
  peak : int;
}

type report = {
  checks : check list;
  cross_variant_agree : bool;
  algol_stuck_on_demand : bool;
  annot_invariant : bool;
  annot_failures : string list;
  vm_invariant : bool;
  vm_failures : string list;
  census_invariant : bool;
  census_failures : string list;
  fixnum_invariant : bool;
  fixnum_failures : string list;
  log_invariant : bool;
  log_failures : string list;
  ok : bool;
}

let status_text (m : Runner.measurement) =
  match m.Runner.status with
  | Runner.Answer a -> "answer:" ^ a
  | Runner.Stuck s -> "stuck:" ^ s
  | Runner.Aborted r -> "aborted:" ^ Resilience.abort_reason_name r

let adversarial_plans =
  [
    Resilience.Fault.make ~label:"gc-every-1" ~gc_every:1 ();
    Resilience.Fault.make ~label:"gc-every-3" ~gc_every:3 ();
    Resilience.Fault.make ~label:"gc-seed-1" ~gc_seed:1 ();
    Resilience.Fault.make ~label:"gc-seed-42" ~gc_seed:42 ();
  ]

let default_programs () =
  let expand src = Expand.program_of_string src in
  List.map (fun (name, src) -> (name, expand src, 12)) Families.separators
  @ List.filter_map
      (fun name ->
        match Corpus.find name with
        | Some e -> (
            match e.Corpus.checks with
            | (n, _) :: _ -> Some (e.Corpus.name, Corpus.program e, n)
            | [] -> None)
        | None -> None)
      [ "countdown"; "fib-iter"; "even-odd" ]

let check_point ~fuel ~family ~program ~n variant =
  let config = Machine.Config.make ~variant () in
  let baseline =
    Runner.run_once ~opts:(Machine.Run_opts.make ~fuel ()) ~config ~program ~n
      ()
  in
  List.map
    (fun plan ->
      let m =
        Runner.run_once
          ~opts:(Machine.Run_opts.make ~fuel ~fault:plan ())
          ~config ~program ~n ()
      in
      {
        family;
        n;
        variant;
        plan = Resilience.Fault.label plan;
        answer_agrees =
          (match (baseline.Runner.status, m.Runner.status) with
          | Runner.Answer a, Runner.Answer b -> String.equal a b
          | Runner.Stuck _, Runner.Stuck _ -> true
          | a, b -> a = b);
        peak_stable = Runner.peak_space baseline = Runner.peak_space m;
        baseline_status = status_text baseline;
        status = status_text m;
        baseline_peak = Runner.peak_space baseline;
        peak = Runner.peak_space m;
      })
    adversarial_plans

(* [I_stack] under the Algol deletion policy reports a dangling pointer
   when a closure escapes the call that allocated its free variables —
   the stuck state §8 builds the stack/gc separation on. The oracle
   exercises it on demand so the failure path stays reachable. *)
let algol_dangling () =
  let program =
    Expand.program_of_string "(define (make n) (lambda (ignored) n)) (define (go n) ((make n) 0)) go"
  in
  let m =
    Runner.run_once
      ~config:
        (Machine.Config.make ~variant:Machine.Stack
           ~stack_policy:Machine.Algol ())
      ~program ~n:5 ()
  in
  match m.Runner.status with Runner.Stuck _ -> true | _ -> false

let cross_variant ~fuel programs =
  List.for_all
    (fun (_, program, n) ->
      let answers =
        List.map
          (fun variant ->
            status_text
              (Runner.run_once
                 ~opts:(Machine.Run_opts.make ~fuel ())
                 ~config:(Machine.Config.make ~variant ())
                 ~program ~n ()))
          Machine.all_variants
      in
      match answers with
      | first :: rest -> List.for_all (String.equal first) rest
      | [] -> true)
    programs

(* The static annotation pass changes {e when} free variables are
   computed, never {e what} a rule produces: annotated and unannotated
   runs of the same (program, input, variant) must agree exactly on the
   observable status, the step count, and the measured peak. *)
let annot_agreement ~fuel programs =
  List.concat_map
    (fun (family, program, n) ->
      List.filter_map
        (fun variant ->
          let opts = Machine.Run_opts.make ~fuel () in
          let on =
            Runner.run_once ~opts
              ~config:(Machine.Config.make ~variant ~annotate:true ())
              ~program ~n ()
          in
          let off =
            Runner.run_once ~opts
              ~config:(Machine.Config.make ~variant ~annotate:false ())
              ~program ~n ()
          in
          if
            String.equal (status_text on) (status_text off)
            && Runner.peak_space on = Runner.peak_space off
            && on.Runner.steps = off.Runner.steps
          then None
          else
            Some
              (Printf.sprintf
                 "%s n=%d %s: annotated %s steps=%d peak=%d vs unannotated %s \
                  steps=%d peak=%d"
                 family n
                 (Machine.variant_name variant)
                 (status_text on) on.Runner.steps (Runner.peak_space on)
                 (status_text off) off.Runner.steps (Runner.peak_space off)))
        Machine.all_variants)
    programs

(* The bytecode VM is the seventh engine: on every corpus entry (at its
   first checked input) both tiers must produce the stepper's answer,
   and the instrumented tier must be bit-compatible with the Tail
   stepper — identical step counts, peaks, and GC runs, not merely the
   same answer. Entries not marked [slow] are additionally compared
   against all six variants (whose answers Corollary 20 makes
   interchangeable). *)
let vm_agreement ~fuel () =
  List.concat_map
    (fun (e : Corpus.entry) ->
      match e.Corpus.checks with
      | [] -> []
      | (n, _) :: _ ->
          let program = Corpus.program e in
          let opts = Machine.Run_opts.make ~fuel () in
          let point engine variant =
            Runner.run_once ~opts
              ~config:(Machine.Config.make ~engine ~variant ())
              ~program ~n ()
          in
          let tail = point Machine.Stepper Machine.Tail in
          let inst = point Machine.Vm Machine.Tail in
          let fast = point Machine.Vm_fast Machine.Tail in
          let fails = ref [] in
          let add fmt =
            Printf.ksprintf
              (fun s -> fails := Printf.sprintf "%s n=%d: %s" e.Corpus.name n s :: !fails)
              fmt
          in
          if not (String.equal (status_text inst) (status_text tail)) then
            add "instrumented VM %s vs stepper %s" (status_text inst)
              (status_text tail);
          if inst.Runner.steps <> tail.Runner.steps then
            add "instrumented VM steps %d vs stepper %d" inst.Runner.steps
              tail.Runner.steps;
          if Runner.peak_space inst <> Runner.peak_space tail then
            add "instrumented VM peak %d vs stepper %d" (Runner.peak_space inst)
              (Runner.peak_space tail);
          if inst.Runner.gc_runs <> tail.Runner.gc_runs then
            add "instrumented VM gc_runs %d vs stepper %d" inst.Runner.gc_runs
              tail.Runner.gc_runs;
          if not (String.equal (status_text fast) (status_text tail)) then
            add "fast VM %s vs stepper %s" (status_text fast)
              (status_text tail);
          if not e.Corpus.slow then
            List.iter
              (fun variant ->
                if variant <> Machine.Tail then begin
                  let m = point Machine.Stepper variant in
                  if not (String.equal (status_text m) (status_text fast)) then
                    add "fast VM %s vs %s stepper %s" (status_text fast)
                      (Machine.variant_name variant) (status_text m)
                end)
              Machine.all_variants;
          List.rev !fails)
    Corpus.all

(* The provenance layer claims two invariants strong enough to check
   differentially: every census sums exactly to the measured peak (flat
   and linked, all six variants — [Provenance.total] telescopes back to
   the figure telemetry reported), and the instrumented VM's censuses
   are configuration-identical to the Tail stepper's. Labels are
   stripped before the cross-engine comparison: the two engines expand
   the program separately, so gensym'd names differ while site ids and
   structure agree. *)
let census_agreement ~fuel () =
  let fails = ref [] in
  let add fmt = Printf.ksprintf (fun s -> fails := s :: !fails) fmt in
  let censuses engine variant program n =
    let census = Census.create () in
    let opts =
      Machine.Run_opts.make ~fuel
        ~measure:[ Space_model.Flat; Space_model.Linked; Space_model.Log ]
        ~provenance:census ()
    in
    let m =
      Runner.run_once ~opts
        ~config:(Machine.Config.make ~engine ~variant ())
        ~program ~n ()
    in
    (* [Runner.consumption] folds the program size in; the census peaks
       are the raw per-model machine figures. *)
    let raw model = Option.value (Runner.peak_of m model) ~default:0 in
    ( Census.flat_census census ~peak:(raw Space_model.Flat),
      Census.linked_census census ~peak:(raw Space_model.Linked),
      Census.log_census census ~peak:(raw Space_model.Log) )
  in
  let check_sums name variant (c : P.t option) what =
    match c with
    | None -> add "%s %s: no %s census captured" name variant what
    | Some c ->
        if P.total c <> c.P.peak then
          add "%s %s: %s census sums to %d, telemetry peak %d" name variant
            what (P.total c) c.P.peak;
        let stack_sum =
          List.fold_left (fun acc (s : P.stack) -> acc + s.P.swords) 0 c.P.stacks
        in
        if c.P.stacks <> [] && stack_sum <> c.P.peak then
          add "%s %s: %s flamegraph stacks sum to %d, peak %d" name variant
            what stack_sum c.P.peak
  in
  let stripped c = Json.to_string (P.to_json ~with_labels:false c) in
  List.iter
    (fun name ->
      match Corpus.find name with
      | None -> add "census: corpus entry %s missing" name
      | Some e ->
          let n = match e.Corpus.checks with (n, _) :: _ -> n | [] -> 0 in
          let program = Corpus.program e in
          List.iter
            (fun variant ->
              let v = Machine.variant_name variant in
              let flat, linked, log = censuses Machine.Stepper variant program n in
              check_sums name v flat "flat";
              check_sums name v linked "linked";
              check_sums name v log "log")
            Machine.all_variants;
          let sf, sl, sg = censuses Machine.Stepper Machine.Tail program n in
          let vf, vl, vg = censuses Machine.Vm Machine.Tail program n in
          let agree what a b =
            match (a, b) with
            | Some a, Some b ->
                if not (String.equal (stripped a) (stripped b)) then
                  add "%s: %s census differs between stepper and VM" name what
            | None, None -> ()
            | _ -> add "%s: %s census captured on one engine only" name what
          in
          agree "flat" sf vf;
          agree "linked" sl vl;
          agree "log" sg vg)
    [ "countdown"; "append" ];
  List.rev !fails

(* The space model charges an exact integer by its magnitude
   ([1 + bit_length z]), never by its representation, so toggling the
   bignum fixnum fast path must be observationally invisible: same
   status, same step count, same measured peak, on every variant and
   every engine. Run the differential A/B with the tag on and off —
   six variants under the stepper, plus both VM tiers on [Tail] — over
   the default programs and the factorial entry (whose intermediates
   cross the fixnum/limb promotion boundary both ways). *)
let fixnum_agreement ~fuel programs =
  let programs =
    programs
    @ List.filter_map
        (fun name ->
          match Corpus.find name with
          | Some e -> (
              match List.rev e.Corpus.checks with
              | (n, _) :: _ -> Some (e.Corpus.name, Corpus.program e, n)
              | [] -> None)
          | None -> None)
        [ "fact" ]
  in
  let engines =
    List.map (fun v -> (Machine.Stepper, v)) Machine.all_variants
    @ [ (Machine.Vm, Machine.Tail); (Machine.Vm_fast, Machine.Tail) ]
  in
  let restore = Bignum.fixnums_enabled () in
  Fun.protect
    ~finally:(fun () -> Bignum.set_fixnums restore)
    (fun () ->
      List.concat_map
        (fun (family, program, n) ->
          List.filter_map
            (fun (engine, variant) ->
              let opts = Machine.Run_opts.make ~fuel () in
              let config = Machine.Config.make ~engine ~variant () in
              let point enabled =
                Bignum.set_fixnums enabled;
                Runner.run_once ~opts ~config ~program ~n ()
              in
              let on = point true in
              let off = point false in
              (* The fast tier compiles accounting out: steps and peaks
                 are not reported there, so compare observable status
                 only (as [vm_agreement] does). *)
              let accounted = engine <> Machine.Vm_fast in
              if
                String.equal (status_text on) (status_text off)
                && ((not accounted)
                   || on.Runner.steps = off.Runner.steps
                      && Runner.peak_space on = Runner.peak_space off)
              then None
              else
                Some
                  (Printf.sprintf
                     "%s n=%d %s/%s: fixnums on %s steps=%d peak=%d vs off %s \
                      steps=%d peak=%d"
                     family n
                     (Machine.engine_name engine)
                     (Machine.variant_name variant)
                     (status_text on) on.Runner.steps (Runner.peak_space on)
                     (status_text off) off.Runner.steps (Runner.peak_space off)))
            engines)
        programs)

(* The logarithmic model charges every linked unit at the pointer size
   of the measured store, so three pointwise bounds tie the models
   together at every configuration and therefore at the peaks:
   [U_X <= S_X] (the §13 dedup argument), [U_X <= Log_X] (a pointer is
   at least one bit), and [Log_X <= 64·S_X] (pointer size never exceeds
   the machine word). The oracle re-measures every default program on
   all six variants under all three models and checks the laws; on
   [Tail] it additionally demands the instrumented VM report a peaks
   list bit-identical to the stepper's. *)
let log_agreement ~fuel programs =
  let measure = [ Space_model.Flat; Space_model.Linked; Space_model.Log ] in
  let fails = ref [] in
  let add fmt = Printf.ksprintf (fun s -> fails := s :: !fails) fmt in
  List.iter
    (fun (family, program, n) ->
      let point engine variant =
        Runner.run_once
          ~opts:(Machine.Run_opts.make ~fuel ~measure ())
          ~config:(Machine.Config.make ~engine ~variant ())
          ~program ~n ()
      in
      List.iter
        (fun variant ->
          let v = Machine.variant_name variant in
          let m = point Machine.Stepper variant in
          let s = Runner.peak_space m in
          match (Runner.peak_linked m, Runner.peak_log m) with
          | Some u, Some l ->
              if u > s then
                add "%s n=%d %s: linked peak %d exceeds flat peak %d" family n
                  v u s;
              if l < u then
                add "%s n=%d %s: log peak %d below linked peak %d" family n v
                  l u;
              if l > Space_model.word_bits * s then
                add "%s n=%d %s: log peak %d exceeds %d * flat peak %d" family
                  n v l Space_model.word_bits s
          | _ -> add "%s n=%d %s: linked/log peaks not measured" family n v)
        Machine.all_variants;
      let tail = point Machine.Stepper Machine.Tail in
      let inst = point Machine.Vm Machine.Tail in
      if tail.Runner.peaks <> inst.Runner.peaks then
        add "%s n=%d: instrumented VM peaks differ from Tail stepper's" family
          n)
    programs;
  List.rev !fails

let run ?(fuel = 2_000_000) ?programs () =
  let programs =
    match programs with Some ps -> ps | None -> default_programs ()
  in
  let checks =
    List.concat_map
      (fun (family, program, n) ->
        List.concat_map
          (fun variant -> check_point ~fuel ~family ~program ~n variant)
          Machine.all_variants)
      programs
  in
  let cross_variant_agree = cross_variant ~fuel programs in
  let algol_stuck_on_demand = algol_dangling () in
  let annot_failures = annot_agreement ~fuel programs in
  let annot_invariant = annot_failures = [] in
  let vm_failures = vm_agreement ~fuel () in
  let vm_invariant = vm_failures = [] in
  let census_failures = census_agreement ~fuel () in
  let census_invariant = census_failures = [] in
  let fixnum_failures = fixnum_agreement ~fuel programs in
  let fixnum_invariant = fixnum_failures = [] in
  let log_failures = log_agreement ~fuel programs in
  let log_invariant = log_failures = [] in
  let ok =
    cross_variant_agree && algol_stuck_on_demand && annot_invariant
    && vm_invariant && census_invariant && fixnum_invariant && log_invariant
    && List.for_all (fun c -> c.answer_agrees && c.peak_stable) checks
  in
  {
    checks;
    cross_variant_agree;
    algol_stuck_on_demand;
    annot_invariant;
    annot_failures;
    vm_invariant;
    vm_failures;
    census_invariant;
    census_failures;
    fixnum_invariant;
    fixnum_failures;
    log_invariant;
    log_failures;
    ok;
  }

let failures r =
  List.filter (fun c -> not (c.answer_agrees && c.peak_stable)) r.checks

let render r =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "differential oracle: %d checks, cross-variant agreement %s, algol \
        dangling-pointer stuck state %s, annotation invariance %s, bytecode \
        VM agreement %s, census invariance %s, fixnum invariance %s, \
        log-model laws %s\n"
       (List.length r.checks)
       (if r.cross_variant_agree then "ok" else "FAILED")
       (if r.algol_stuck_on_demand then "reachable" else "NOT REACHABLE")
       (if r.annot_invariant then "ok" else "FAILED")
       (if r.vm_invariant then "ok" else "FAILED")
       (if r.census_invariant then "ok" else "FAILED")
       (if r.fixnum_invariant then "ok" else "FAILED")
       (if r.log_invariant then "ok" else "FAILED"));
  List.iter
    (fun f -> Buffer.add_string buf (Printf.sprintf "ANNOT MISMATCH %s\n" f))
    r.annot_failures;
  List.iter
    (fun f -> Buffer.add_string buf (Printf.sprintf "VM MISMATCH %s\n" f))
    r.vm_failures;
  List.iter
    (fun f -> Buffer.add_string buf (Printf.sprintf "CENSUS MISMATCH %s\n" f))
    r.census_failures;
  List.iter
    (fun f -> Buffer.add_string buf (Printf.sprintf "FIXNUM MISMATCH %s\n" f))
    r.fixnum_failures;
  List.iter
    (fun f -> Buffer.add_string buf (Printf.sprintf "LOG MISMATCH %s\n" f))
    r.log_failures;
  (match failures r with
  | [] -> Buffer.add_string buf "all adversarial schedules agree with baseline\n"
  | fs ->
      List.iter
        (fun c ->
          Buffer.add_string buf
            (Printf.sprintf
               "MISMATCH %s n=%d %s plan=%s: %s vs %s, peak %d vs %d\n" c.family
               c.n
               (Machine.variant_name c.variant)
               c.plan c.baseline_status c.status c.baseline_peak c.peak))
        fs);
  Buffer.add_string buf (if r.ok then "oracle: OK\n" else "oracle: FAILED\n");
  Buffer.contents buf

let check_to_json c =
  Json.Obj
    [
      ("family", Json.Str c.family);
      ("n", Json.Int c.n);
      ("variant", Json.Str (Machine.variant_name c.variant));
      ("plan", Json.Str c.plan);
      ("answer_agrees", Json.Bool c.answer_agrees);
      ("peak_stable", Json.Bool c.peak_stable);
      ("baseline_status", Json.Str c.baseline_status);
      ("status", Json.Str c.status);
      ("baseline_peak", Json.Int c.baseline_peak);
      ("peak", Json.Int c.peak);
    ]

let to_json r =
  Json.Obj
    [
      ("ok", Json.Bool r.ok);
      ("cross_variant_agree", Json.Bool r.cross_variant_agree);
      ("algol_stuck_on_demand", Json.Bool r.algol_stuck_on_demand);
      ("annot_invariant", Json.Bool r.annot_invariant);
      ( "annot_failures",
        Json.List (List.map (fun s -> Json.Str s) r.annot_failures) );
      ("vm_invariant", Json.Bool r.vm_invariant);
      ("vm_failures", Json.List (List.map (fun s -> Json.Str s) r.vm_failures));
      ("census_invariant", Json.Bool r.census_invariant);
      ( "census_failures",
        Json.List (List.map (fun s -> Json.Str s) r.census_failures) );
      ("fixnum_invariant", Json.Bool r.fixnum_invariant);
      ( "fixnum_failures",
        Json.List (List.map (fun s -> Json.Str s) r.fixnum_failures) );
      ("log_invariant", Json.Bool r.log_invariant);
      ("log_failures", Json.List (List.map (fun s -> Json.Str s) r.log_failures));
      ("checks", Json.Int (List.length r.checks));
      ("failures", Json.List (List.map check_to_json (failures r)));
    ]
