(** Fixed-width ASCII tables for the experiment reports. *)

val render : header:string list -> string list list -> string
(** Columns sized to their widest cell; numeric-looking cells are
    right-aligned, others left-aligned. The result ends with a
    newline. *)

val section : string -> string
(** A banner line for an experiment heading. *)

val measurements : Runner.measurement list -> string
(** A sweep's measurements as a table: input, space consumption, peak,
    GC runs, steps, linked peak (when measured), and the answer — the
    fields the sweep driver used to discard. *)

val supervised : Runner.supervised -> string
(** A supervised sweep as a partial table: every requested point gets a
    row, failed ones carry their abort reason and degradation note; a
    trailing line summarizes answered/degraded counts. *)

val census : Tailspace_provenance.Provenance.t -> string
(** A heap census as a table: one row per (site, phase), words, share
    of the peak, store cells, the site's source label, and the roots
    that retain it. *)

val census_diff :
  label_a:string ->
  label_b:string ->
  Tailspace_provenance.Provenance.delta list ->
  string
(** A per-site census comparison (the [spaceprof --diff] view):
    absolute and relative word deltas between two variants, largest
    absolute delta first. *)
