let is_numeric s =
  s <> ""
  && String.for_all
       (function '0' .. '9' | '.' | '-' | '+' | '%' | 'e' -> true | _ -> false)
       s

let render ~header rows =
  let all = header :: rows in
  let columns =
    List.fold_left (fun acc row -> Stdlib.max acc (List.length row)) 0 all
  in
  let widths = Array.make columns 0 in
  List.iter
    (List.iteri (fun i cell ->
         widths.(i) <- Stdlib.max widths.(i) (String.length cell)))
    all;
  let buf = Buffer.create 256 in
  let pad i cell =
    let w = widths.(i) in
    let s = String.length cell in
    if s >= w then cell
    else if is_numeric cell then String.make (w - s) ' ' ^ cell
    else cell ^ String.make (w - s) ' '
  in
  let emit_row row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad i cell))
      row;
    Buffer.add_char buf '\n'
  in
  emit_row header;
  Buffer.add_string buf
    (String.concat "  "
       (Array.to_list (Array.map (fun w -> String.make w '-') widths)));
  Buffer.add_char buf '\n';
  List.iter emit_row rows;
  Buffer.contents buf

let section title =
  let bar = String.make (String.length title + 4) '=' in
  Printf.sprintf "\n%s\n| %s |\n%s\n" bar title bar

let measurements ms =
  let status_text (m : Runner.measurement) =
    match m.Runner.status with
    | Runner.Answer a ->
        if String.length a > 24 then String.sub a 0 21 ^ "..." else a
    | Runner.Stuck _ -> "stuck"
    | Runner.Aborted r -> Runner.Resilience.abort_reason_name r
  in
  (* A model gets a column if *any* point measured it; points that did
     not (mixed sweeps, crashed points) render "-" rather than failing. *)
  let module SM = Tailspace_core.Space_model in
  let has model =
    List.exists
      (fun (m : Runner.measurement) -> Runner.consumption m model <> None)
      ms
  in
  let has_linked = has SM.Linked and has_log = has SM.Log in
  let model_cell m model =
    match Runner.consumption m model with
    | Some c -> string_of_int c
    | None -> "-"
  in
  let header =
    [ "n"; "S=|P|+peak"; "peak"; "gc-runs"; "steps" ]
    @ (if has_linked then [ "U (linked)" ] else [])
    @ (if has_log then [ "L (log bits)" ] else [])
    @ [ "answer" ]
  in
  let row (m : Runner.measurement) =
    [
      string_of_int m.Runner.n;
      string_of_int m.Runner.space;
      string_of_int (Runner.peak_space m);
      string_of_int m.Runner.gc_runs;
      string_of_int m.Runner.steps;
    ]
    @ (if has_linked then [ model_cell m SM.Linked ] else [])
    @ (if has_log then [ model_cell m SM.Log ] else [])
    @ [ status_text m ]
  in
  render ~header (List.map row ms)

let supervised (s : Runner.supervised) =
  let header =
    [ "n"; "S=|P|+peak"; "peak"; "steps"; "attempts"; "status"; "note" ]
  in
  let row (p : Runner.supervised_point) =
    let m = p.Runner.measurement in
    let status =
      match m.Runner.status with
      | Runner.Answer a ->
          if String.length a > 24 then String.sub a 0 21 ^ "..." else a
      | Runner.Stuck _ -> "stuck"
      | Runner.Aborted r -> Runner.Resilience.abort_reason_name r
    in
    [
      string_of_int m.Runner.n;
      string_of_int m.Runner.space;
      string_of_int (Runner.peak_space m);
      string_of_int m.Runner.steps;
      string_of_int p.Runner.attempts;
      status;
      Option.value p.Runner.note ~default:"";
    ]
  in
  render ~header (List.map row s.Runner.points)
  ^ Printf.sprintf "%d/%d answered%s\n" s.Runner.answered
      (List.length s.Runner.points)
      (if s.Runner.degraded = 0 then ""
       else Printf.sprintf ", %d degraded" s.Runner.degraded)

module P = Tailspace_provenance.Provenance

let census (c : P.t) =
  let pct words =
    if c.P.peak = 0 then "-"
    else Printf.sprintf "%.1f%%" (100. *. float_of_int words /. float_of_int c.P.peak)
  in
  let retainers (r : P.row) =
    match r.P.retained_by with
    | [] -> ""
    | roots ->
        String.concat ","
          (List.map (fun (s, ph) -> P.label_of c s ph) roots)
  in
  let row (r : P.row) =
    [
      (if r.P.site >= 0 then string_of_int r.P.site else "-");
      P.phase_name r.P.phase;
      string_of_int r.P.words;
      pct r.P.words;
      (if r.P.cells > 0 then string_of_int r.P.cells else "-");
      P.label_of c r.P.site r.P.phase;
      retainers r;
    ]
  in
  Printf.sprintf "%s census: peak %s\n"
    (P.measure_name c.P.measure)
    (P.humanize_words c.P.peak)
  ^ render
      ~header:[ "site"; "phase"; "words"; "peak%"; "cells"; "label"; "retained-by" ]
      (List.map row c.P.rows)

let census_diff ~label_a ~label_b (deltas : P.delta list) =
  let row (d : P.delta) =
    let delta = d.P.words_b - d.P.words_a in
    let rel =
      if d.P.words_a = 0 then (if d.P.words_b = 0 then "0%" else "new")
      else
        Printf.sprintf "%+.1f%%" (P.percent_delta ~from:d.P.words_a ~to_:d.P.words_b)
    in
    [
      (if d.P.dsite >= 0 then string_of_int d.P.dsite else "-");
      P.phase_name d.P.dphase;
      string_of_int d.P.words_a;
      string_of_int d.P.words_b;
      Printf.sprintf "%+d" delta;
      rel;
      d.P.dlabel;
    ]
  in
  render
    ~header:[ "site"; "phase"; label_a; label_b; "delta"; "rel"; "label" ]
    (List.map row deltas)
