(** The paper's evaluation, experiment by experiment.

    Each experiment exposes a [run] returning structured data — the test
    suite asserts the paper's claims on it — and a [render] producing the
    table that [bench/main.exe] prints. The experiment ids match
    DESIGN.md's per-experiment index. *)

module Machine = Tailspace_core.Machine
module Tail_calls = Tailspace_analysis.Tail_calls
module Pool = Tailspace_parallel.Pool

(** Every measuring experiment takes an optional [pool]; its leaf
    measurements (one per sweep point, each on a fresh machine) then fan
    out over the worker domains and are re-joined in submission order,
    so the structured results — and hence the rendered tables — are
    byte-identical with and without a pool. Program expansion always
    happens in the calling domain. *)

(** {1 E1 — Figure 2: static frequency of tail calls} *)
module Fig2 : sig
  type row = { name : string; counts : Tail_calls.counts }

  val run : unit -> row list
  (** Statistics over the whole corpus, plus a total row computed by the
      caller via {!total}. *)

  val total : row list -> Tail_calls.counts
  val render : row list -> string
end

(** {1 E2 — Theorem 25 / Figure 6: the proper-inclusion separations} *)
module Thm25 : sig
  type cell = {
    variant : Machine.variant;
    spaces : (int * int) list;  (** (N, S) for successful runs *)
    fit : Growth.fit option;  (** [None] when runs got stuck or starved *)
  }

  type sweep = { separator : string; ns : int list; cells : cell list }

  val run :
    ?pool:Pool.t ->
    ?engine:Machine.engine ->
    ?ns:int list ->
    ?budget:Tailspace_resilience.Resilience.Budget.t ->
    unit ->
    sweep list
  (** One sweep per separating program, all six variants each. When a
      [budget] is given every point runs under it; points the governor
      aborts simply drop out of [spaces] (and the fit), so a partial
      sweep still renders. *)

  val order_of : sweep -> Machine.variant -> Growth.order option

  val claims : sweep list -> (string * bool) list
  (** The paper's growth claims ("stack/gc: quadratic under stack",
      ...), each evaluated against the fits. *)

  val render : sweep list -> string
end

(** {1 E3 — Theorem 24: pointwise inequalities} *)
module Thm24 : sig
  type row = {
    name : string;
    n : int;
    s : (Machine.variant * int) list;  (** S_X per variant *)
    chain_ok : bool;
        (** S_tail <= S_gc <= S_stack, S_sfs <= S_evlis <= S_tail,
            S_sfs <= S_free <= S_tail *)
  }

  val run :
    ?pool:Pool.t -> ?engine:Machine.engine -> ?include_slow:bool -> unit -> row list

  val render : row list -> string
end

(** {1 E4 — Theorem 26 / §13: flat versus linked environments} *)
module Thm26 : sig
  type row = {
    n : int;
    u_tail : int;  (** U_tail(P_N, N): linked model on I_tail *)
    s_tail : int;  (** S_tail(P_N, N): flat model on I_tail *)
    s_sfs : int;  (** S_sfs(P_N, N) *)
  }

  type result = {
    rows : row list;
    u_tail_fit : Growth.fit option;
        (** [None] when fewer than three points answered — a starved
            sweep degrades the table instead of raising *)
    s_sfs_fit : Growth.fit option;
  }

  val run :
    ?pool:Pool.t ->
    ?engine:Machine.engine ->
    ?ns:int list ->
    ?budget:Tailspace_resilience.Resilience.Budget.t ->
    unit ->
    result

  val render : result -> string
end

(** {1 E5 — §4: find-leftmost} *)
module Sec4 : sig
  type row = {
    spine : string;  (** "right" or "left" *)
    variant : Machine.variant;
    deltas : (int * int) list;
        (** (N, S_traverse - S_build): traversal overhead net of the
            tree data *)
    fit : Growth.fit option;
  }

  val run : ?pool:Pool.t -> ?engine:Machine.engine -> ?ns:int list -> unit -> row list
  val render : row list -> string
end

(** {1 E6 — Corollary 20: all machines compute the same answers} *)
module Cor20 : sig
  type row = {
    name : string;
    n : int;
    answers : (Machine.variant * string) list;  (** answer or stuck text *)
    agree : bool;
  }

  val run :
    ?pool:Pool.t -> ?engine:Machine.engine -> ?include_slow:bool -> unit -> row list

  val render : row list -> string
end

(** {1 E7 — §1/§4: continuation-passing style runs in bounded space} *)
module Cps : sig
  type result = {
    ns : int list;
    tail : (int * int) list;
    gc : (int * int) list;
    tail_fit : Growth.fit option;
        (** [None] when fewer than three points answered *)
    gc_fit : Growth.fit option;
  }

  val run :
    ?pool:Pool.t ->
    ?engine:Machine.engine ->
    ?ns:int list ->
    ?budget:Tailspace_resilience.Resilience.Budget.t ->
    unit ->
    result

  val render : result -> string
end

(** {1 E8 — ablations of the disambiguation choices (DESIGN.md)} *)
module Ablation : sig
  type sweep = {
    label : string;
    spaces : (int * int) list;  (** (N, S) *)
  }

  type result = {
    ns : int list;
    return_env_rows : sweep list;
        (** separator 1 under I_gc/I_stack, faithful vs literal frames *)
    evlis_rows : sweep list;
        (** separator 3 under I_tail/I_evlis, with and without the
            drop-at-creation rule *)
    stack_gc_divergence_faithful : float;
    stack_gc_divergence_literal : float;
    tail_evlis_divergence_faithful : float;
    tail_evlis_divergence_literal : float;
  }

  val run : ?pool:Pool.t -> ?engine:Machine.engine -> ?ns:int list -> unit -> result
  val render : result -> string
end

(** {1 E9 — §14 sanity check: classifying real implementations} *)
module Sanity : sig
  (** §14 observes that the formal definition should coincide with the
      community's judgement of which implementations are properly tail
      recursive. This experiment applies Definition 5 empirically to two
      executable implementations that are {e not} reference machines —
      the tail-recursive SECD machine and the classic SECD machine
      (lib/engines) — plus the reference [I_gc] as a known-improper
      control: an implementation passes iff its live space stays within
      a constant factor of [S_tail] across a battery of programs. *)

  type cell = {
    program : string;
    engine_order : Growth.order;
        (** fitted growth of the implementation's live space *)
    tail_order : Growth.order;  (** fitted growth of [S_tail] *)
    ok : bool;
        (** the implementation does not grow strictly faster than
            [S_tail] on this program, up to a logarithmic slack for the
            bignum loop counter *)
  }

  type row = {
    engine : string;
    cells : cell list;
    properly_tail_recursive : bool;  (** all cells ok *)
  }

  type result = { ns : int list; rows : row list }

  val run : ?pool:Pool.t -> ?ns:int list -> unit -> result
  val render : result -> string
end

(** {1 E10 — the space hierarchy under the logarithmic model} *)
module LogHier : sig
  (** Re-runs the Theorem 24/25/26 separations with all three space
      models measured and reports which strict inclusions survive
      pointer-size (log) accounting — the [Space_model.Log] measure
      re-prices every linked unit at [ceil(log2 |store|)] bits, a
      factor that grows with the live store. *)

  type pair = {
    separation : string;  (** separator family name, ["x/y"] *)
    flat_div : float;
        (** divergence ratio of [S_x / S_y] between the smallest and
            largest N *)
    log_div : float;  (** the same ratio-of-ratios under [Log] *)
    survives : bool;  (** [log_div >= threshold] *)
  }

  type result = {
    ns : int list;
    pairs : pair list;  (** Theorem 25's four adjacent separations *)
    chain_rows : (string * bool) list;
        (** Theorem 24's pointwise chain re-checked on Log consumption
            per corpus program — not implied by the flat chain, since
            each variant's figures are scaled by its own store's
            pointer size *)
    pk_ns : int list;
    thm26_flat_div : float;
        (** Theorem 26's own separation: [S_sfs] against [U_tail] on
            [P_N] *)
    thm26_log_div : float;  (** [S_sfs] against [Log_tail] *)
    thm26_survives : bool;
  }

  val threshold : float
  (** Minimum divergence ratio that counts as a separation (1.4, the
      same bar Thm25's claims use). *)

  val run :
    ?pool:Pool.t ->
    ?engine:Machine.engine ->
    ?ns:int list ->
    ?budget:Tailspace_resilience.Resilience.Budget.t ->
    unit ->
    result

  val render : result -> string
end

val render_all : ?pool:Pool.t -> ?engine:Machine.engine -> unit -> string
(** Every experiment's table, in order — the paper-reproduction report
    that [bench/main.exe] prints. [engine] selects the measuring engine
    where bit-compatibility suffices: the instrumented bytecode VM
    implements only [I_tail], so the selection applies to Tail-variant
    sweep points — where its step counts and peaks are identical to the
    stepper's (oracle-checked) — and every other variant stays on the
    stepper, keeping the tables byte-identical with only the wall-clock
    changing. With no explicit selection, Tail-variant points default
    to the instrumented VM. E1 (static analysis) and E9 (which compares
    implementations itself) ignore the selection. *)
