module Machine = Tailspace_core.Machine
module Ast = Tailspace_ast.Ast
module Bignum = Tailspace_bignum.Bignum
module Telemetry = Tailspace_telemetry.Telemetry
module Resilience = Tailspace_resilience.Resilience

type status =
  | Answer of string
  | Stuck of string
  | Aborted of Resilience.abort_reason

type measurement = {
  n : int;
  space : int;
  linked : int option;
  steps : int;
  status : status;
  gc_runs : int;
  peak_space : int;
  summary : Telemetry.summary option;
}

let input_expr n = Ast.Quote (Ast.C_int (Bignum.of_int n))

let measure_with machine ?fuel ?budget ?fault ?measure_linked ?gc_policy
    ?(collect_telemetry = false) ~program ~n () =
  let telemetry = if collect_telemetry then Some (Telemetry.create ()) else None in
  let r =
    Machine.run_program ?fuel ?budget ?fault ?measure_linked ?gc_policy
      ?telemetry machine ~program ~input:(input_expr n)
  in
  let status =
    match r.Machine.outcome with
    | Machine.Done { answer; _ } -> Answer answer
    | Machine.Stuck m -> Stuck m
    | Machine.Aborted { reason; _ } -> Aborted reason
  in
  {
    n;
    space = Machine.space_consumption r;
    linked =
      Option.map (fun l -> l + r.Machine.program_size) r.Machine.peak_linked;
    steps = r.Machine.steps;
    status;
    gc_runs = r.Machine.gc_runs;
    peak_space = r.Machine.peak_space;
    summary = Option.map Telemetry.summary telemetry;
  }

let run_once ?fuel ?budget ?fault ?measure_linked ?gc_policy ?collect_telemetry
    ?perm ?stack_policy ?return_env ?evlis_drop_at_creation ~variant ~program ~n
    () =
  let machine =
    Machine.create ~variant ?perm ?stack_policy ?return_env
      ?evlis_drop_at_creation ()
  in
  measure_with machine ?fuel ?budget ?fault ?measure_linked ?gc_policy
    ?collect_telemetry ~program ~n ()

let sweep ?fuel ?budget ?fault ?measure_linked ?gc_policy ?collect_telemetry
    ?perm ?stack_policy ?return_env ?evlis_drop_at_creation ~variant ~program
    ~ns () =
  let machine =
    Machine.create ~variant ?perm ?stack_policy ?return_env
      ?evlis_drop_at_creation ()
  in
  List.map
    (fun n ->
      measure_with machine ?fuel ?budget ?fault ?measure_linked ?gc_policy
        ?collect_telemetry ~program ~n ())
    ns

(* {2 The crash-proof sweep supervisor} *)

type supervised_point = {
  measurement : measurement;
  attempts : int;
  note : string option;
}

type supervised = {
  points : supervised_point list;
  answered : int;
  degraded : int;
}

let crashed_measurement n message =
  {
    n;
    space = 0;
    linked = None;
    steps = 0;
    status = Aborted (Resilience.Crashed message);
    gc_runs = 0;
    peak_space = 0;
    summary = None;
  }

let sweep_supervised ?(budget = Resilience.Budget.unlimited) ?fault
    ?measure_linked ?gc_policy ?collect_telemetry ?perm ?stack_policy
    ?return_env ?evlis_drop_at_creation ?(max_attempts = 3) ?(fuel_factor = 4)
    ?(fuel_cap = 50_000_000) ?(initial_fuel = 1_000_000) ~variant ~program ~ns
    () =
  let machine =
    Machine.create ~variant ?perm ?stack_policy ?return_env
      ?evlis_drop_at_creation ()
  in
  let start_fuel =
    min fuel_cap (Option.value budget.Resilience.Budget.fuel ~default:initial_fuel)
  in
  let supervise n =
    let rec attempt k fuel =
      let budget = { budget with Resilience.Budget.fuel = Some fuel } in
      let m =
        match
          measure_with machine ~budget ?fault ?measure_linked ?gc_policy
            ?collect_telemetry ~program ~n ()
        with
        | m -> m
        | exception e -> crashed_measurement n (Printexc.to_string e)
      in
      match m.status with
      | Aborted (Resilience.Out_of_fuel _)
        when k < max_attempts && fuel < fuel_cap ->
          attempt (k + 1) (min fuel_cap (fuel * fuel_factor))
      | Answer _ ->
          let note =
            if k = 1 then None
            else Some (Printf.sprintf "succeeded on attempt %d (fuel %d)" k fuel)
          in
          { measurement = m; attempts = k; note }
      | status ->
          let what =
            match status with
            | Aborted r -> Resilience.abort_reason_message r
            | Stuck msg -> "stuck: " ^ msg
            | Answer _ -> assert false
          in
          let note =
            if k = 1 then Some what
            else Some (Printf.sprintf "gave up after %d attempts: %s" k what)
          in
          { measurement = m; attempts = k; note }
    in
    attempt 1 start_fuel
  in
  let points = List.map supervise ns in
  let answered =
    List.length
      (List.filter
         (fun p -> match p.measurement.status with Answer _ -> true | _ -> false)
         points)
  in
  { points; answered; degraded = List.length points - answered }

let spaces ms =
  List.filter_map
    (fun m -> match m.status with Answer _ -> Some (m.n, m.space) | _ -> None)
    ms

let linked_spaces ms =
  List.filter_map
    (fun m ->
      match (m.status, m.linked) with
      | Answer _, Some l -> Some (m.n, l)
      | _ -> None)
    ms

let all_answered ms =
  List.for_all (fun m -> match m.status with Answer _ -> true | _ -> false) ms
