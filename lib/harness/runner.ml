module Machine = Tailspace_core.Machine
module Ast = Tailspace_ast.Ast
module Bignum = Tailspace_bignum.Bignum
module Telemetry = Tailspace_telemetry.Telemetry

type status = Answer of string | Stuck of string | Fuel

type measurement = {
  n : int;
  space : int;
  linked : int option;
  steps : int;
  status : status;
  gc_runs : int;
  peak_space : int;
  summary : Telemetry.summary option;
}

let input_expr n = Ast.Quote (Ast.C_int (Bignum.of_int n))

let measure_with machine ?fuel ?measure_linked ?gc_policy
    ?(collect_telemetry = false) ~program ~n () =
  let telemetry = if collect_telemetry then Some (Telemetry.create ()) else None in
  let r =
    Machine.run_program ?fuel ?measure_linked ?gc_policy ?telemetry machine
      ~program ~input:(input_expr n)
  in
  let status =
    match r.Machine.outcome with
    | Machine.Done { answer; _ } -> Answer answer
    | Machine.Stuck m -> Stuck m
    | Machine.Out_of_fuel -> Fuel
  in
  {
    n;
    space = Machine.space_consumption r;
    linked =
      Option.map (fun l -> l + r.Machine.program_size) r.Machine.peak_linked;
    steps = r.Machine.steps;
    status;
    gc_runs = r.Machine.gc_runs;
    peak_space = r.Machine.peak_space;
    summary = Option.map Telemetry.summary telemetry;
  }

let run_once ?fuel ?measure_linked ?gc_policy ?collect_telemetry ?perm
    ?stack_policy ?return_env ?evlis_drop_at_creation ~variant ~program ~n () =
  let machine =
    Machine.create ~variant ?perm ?stack_policy ?return_env
      ?evlis_drop_at_creation ()
  in
  measure_with machine ?fuel ?measure_linked ?gc_policy ?collect_telemetry
    ~program ~n ()

let sweep ?fuel ?measure_linked ?gc_policy ?collect_telemetry ?perm
    ?stack_policy ?return_env ?evlis_drop_at_creation ~variant ~program ~ns () =
  let machine =
    Machine.create ~variant ?perm ?stack_policy ?return_env
      ?evlis_drop_at_creation ()
  in
  List.map
    (fun n ->
      measure_with machine ?fuel ?measure_linked ?gc_policy ?collect_telemetry
        ~program ~n ())
    ns

let spaces ms =
  List.filter_map
    (fun m -> match m.status with Answer _ -> Some (m.n, m.space) | _ -> None)
    ms

let linked_spaces ms =
  List.filter_map
    (fun m ->
      match (m.status, m.linked) with
      | Answer _, Some l -> Some (m.n, l)
      | _ -> None)
    ms

let all_answered ms =
  List.for_all (fun m -> match m.status with Answer _ -> true | _ -> false) ms
