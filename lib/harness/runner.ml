module Machine = Tailspace_core.Machine
module Space_model = Tailspace_core.Space_model
module Ast = Tailspace_ast.Ast
module Bignum = Tailspace_bignum.Bignum
module Telemetry = Tailspace_telemetry.Telemetry
module Resilience = Tailspace_resilience.Resilience
module Pool = Tailspace_parallel.Pool
module Cache = Tailspace_parallel.Cache
module Vm = Tailspace_vm.Vm
module Json = Telemetry.Json

type status =
  | Answer of string
  | Stuck of string
  | Aborted of Resilience.abort_reason

type measurement = {
  n : int;
  space : int;
  peaks : (Space_model.t * int) list;
  steps : int;
  status : status;
  gc_runs : int;
  summary : Telemetry.summary option;
}

let peak_of m model =
  List.find_map
    (fun (mm, p) -> if Space_model.equal mm model then Some p else None)
    m.peaks

let peak_space m = Option.value (peak_of m Space_model.Flat) ~default:0
let peak_linked m = peak_of m Space_model.Linked
let peak_log m = peak_of m Space_model.Log

(* The per-model space-consumption headline, Definition 23 style: the
   raw peak plus the [|P|] program term in the model's own unit — one
   word per AST node for the word models, [word_bits] bits per node for
   the log model. *)
let consumption m model =
  let psize = m.space - peak_space m in
  match (model : Space_model.t) with
  | Space_model.Flat -> (
      match peak_of m Space_model.Flat with
      | Some _ -> Some m.space
      | None -> None)
  | Space_model.Linked -> Option.map (fun p -> p + psize) (peak_linked m)
  | Space_model.Log ->
      Option.map (fun p -> p + (Space_model.word_bits * psize)) (peak_log m)


let input_expr n = Ast.Quote (Ast.C_int (Bignum.of_int n))

let measure_with machine ?(opts = Machine.Run_opts.default)
    ?(collect_telemetry = false) ~program ~n () =
  (* [collect_telemetry] attaches a fresh telemetry instance per point
     (never shared through [opts]), so cached and parallel sweeps stay
     deterministic. *)
  let telemetry =
    if collect_telemetry then Some (Telemetry.create ())
    else opts.Machine.Run_opts.telemetry
  in
  let opts = { opts with Machine.Run_opts.telemetry } in
  let r = Machine.exec_program ~opts machine ~program ~input:(input_expr n) in
  let status =
    match r.Machine.outcome with
    | Machine.Done { answer; _ } -> Answer answer
    | Machine.Stuck m -> Stuck m
    | Machine.Aborted { reason; _ } -> Aborted reason
  in
  {
    n;
    space = Machine.space_consumption r;
    peaks = r.Machine.peaks;
    steps = r.Machine.steps;
    status;
    gc_runs = r.Machine.gc_runs;
    summary =
      (if collect_telemetry then Option.map Telemetry.summary telemetry
       else None);
  }

(* The VM tiers report the same measurement shape as the stepper; in
   fast mode the space columns are 0/absent by construction (the tier
   compiles the accounting out), which downstream selectors like
   [spaces] happily carry. *)
let measure_vm config ?(opts = Machine.Run_opts.default)
    ?(collect_telemetry = false) ~program ~n () =
  let telemetry =
    if collect_telemetry then Some (Telemetry.create ())
    else opts.Machine.Run_opts.telemetry
  in
  let opts = { opts with Machine.Run_opts.telemetry } in
  let r = Vm.exec_program ~opts config ~program ~input:(input_expr n) in
  let status =
    match r.Vm.outcome with
    | Vm.Done answer -> Answer answer
    | Vm.Stuck m -> Stuck m
    | Vm.Aborted reason -> Aborted reason
  in
  {
    n;
    space = r.Vm.program_size + Vm.peak_space r;
    peaks = r.Vm.peaks;
    steps = r.Vm.steps;
    status;
    gc_runs = r.Vm.gc_runs;
    summary =
      (if collect_telemetry then Option.map Telemetry.summary telemetry
       else None);
  }

let run_once ?opts ?collect_telemetry ?(config = Machine.Config.default)
    ~program ~n () =
  match config.Machine.Config.engine with
  | Machine.Stepper ->
      let machine = Machine.create_with config in
      measure_with machine ?opts ?collect_telemetry ~program ~n ()
  | Machine.Vm | Machine.Vm_fast ->
      measure_vm config ?opts ?collect_telemetry ~program ~n ()

(* {2 Measurement codecs}

   A cached measurement must round-trip exactly, including the abort
   reason and the telemetry summary, so a cache-warm sweep is
   indistinguishable from a cold one. *)

let status_to_json = function
  | Answer a -> Json.Obj [ ("kind", Json.Str "answer"); ("value", Json.Str a) ]
  | Stuck m -> Json.Obj [ ("kind", Json.Str "stuck"); ("message", Json.Str m) ]
  | Aborted r ->
      Json.Obj
        [
          ("kind", Json.Str "aborted");
          ("reason", Resilience.abort_reason_to_json r);
        ]

let str_field name json =
  match Json.member name json with
  | Some (Json.Str s) -> Ok s
  | _ -> Error (Printf.sprintf "missing string field %S" name)

let int_field name json =
  match Json.member name json with
  | Some (Json.Int i) -> Ok i
  | _ -> Error (Printf.sprintf "missing integer field %S" name)

let ( let* ) = Result.bind

let status_of_json json =
  let* kind = str_field "kind" json in
  match kind with
  | "answer" ->
      let* v = str_field "value" json in
      Ok (Answer v)
  | "stuck" ->
      let* m = str_field "message" json in
      Ok (Stuck m)
  | "aborted" -> (
      match Json.member "reason" json with
      | Some r ->
          Result.map (fun r -> Aborted r) (Resilience.abort_reason_of_json r)
      | None -> Error "status: missing field \"reason\"")
  | k -> Error (Printf.sprintf "status: unknown kind %S" k)

(* Unmeasured models are *omitted* from the peaks object — never
   emitted as null — so partial supervised sweeps degrade gracefully
   on re-read instead of tripping a strict decoder. *)
let peaks_to_json peaks =
  Json.Obj
    (List.map (fun (m, p) -> (Space_model.name m, Json.Int p)) peaks)

let peaks_of_json json =
  match json with
  | Json.Obj fields ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | (name, Json.Int p) :: rest -> (
            match Space_model.of_name name with
            | Some m -> go ((m, p) :: acc) rest
            | None -> Error (Printf.sprintf "peaks: unknown model %S" name))
        | (name, _) :: _ ->
            Error (Printf.sprintf "peaks: field %S must be an integer" name)
      in
      go [] fields
  | _ -> Error "peaks: expected an object"

let measurement_to_json m =
  Json.Obj
    [
      ("n", Json.Int m.n);
      ("space", Json.Int m.space);
      ("peaks", peaks_to_json m.peaks);
      ("steps", Json.Int m.steps);
      ("status", status_to_json m.status);
      ("gc_runs", Json.Int m.gc_runs);
      ( "summary",
        match m.summary with
        | Some s -> Telemetry.summary_to_json s
        | None -> Json.Null );
    ]

let measurement_of_json json =
  let* n = int_field "n" json in
  let* space = int_field "space" json in
  let* steps = int_field "steps" json in
  let* gc_runs = int_field "gc_runs" json in
  let* peaks =
    match Json.member "peaks" json with
    | Some p -> peaks_of_json p
    | None -> Ok []
  in
  let* status =
    match Json.member "status" json with
    | Some s -> status_of_json s
    | None -> Error "measurement: missing field \"status\""
  in
  let* summary =
    match Json.member "summary" json with
    | Some Json.Null | None -> Ok None
    | Some s -> Result.map Option.some (Telemetry.summary_of_json s)
  in
  Ok { n; space; peaks; steps; status; gc_runs; summary }

(* {2 Cache keys}

   Everything that can change a measurement goes into the key: the
   program identity supplied by the caller ([cache_source] — source
   text, or a corpus tag), the machine configuration, the governor
   budget, the fault plan, and the input. The leading version tag
   invalidates old entries whenever the codec or the semantics of a
   part changes. *)

let point_key ~source ?(opts = Machine.Run_opts.default)
    ?(collect_telemetry = false) ~config ~extra ~n () =
  let opt f = function Some v -> f v | None -> "default" in
  Cache.key
    ([
       (* v4: [measure_linked : bool] became the [Space_model] list and
          the measurement codec grew the per-model [peaks] object; old
          v3 entries (boolean key part, [linked]/[peak_space] fields)
          simply miss and recompute. *)
       "tailspace-measurement-v4";
       source;
       (* The machine part of the key is the canonical serialized
          config, so anything that can change a machine's behavior —
          including the annotation toggle and the seed — is keyed. *)
       Json.to_string (Machine.Config.to_json config);
       string_of_int opts.Machine.Run_opts.fuel;
       opt
         (fun b -> Json.to_string (Resilience.Budget.to_json b))
         opts.Machine.Run_opts.budget;
       opt
         (fun f -> Json.to_string (Resilience.Fault.to_json f))
         opts.Machine.Run_opts.fault;
       Space_model.names opts.Machine.Run_opts.measure;
       (match opts.Machine.Run_opts.gc_policy with
       | `Exact -> "exact"
       | `Approximate -> "approximate");
       string_of_bool collect_telemetry;
       string_of_int n;
     ]
    @ extra)

(* Probe the cache for every input, compute only the misses (fanned out
   on the pool when given), then store the fresh results and reassemble
   the table in input order. Cache traffic stays on the calling domain;
   workers only ever run the pure task. *)
let through_cache ~cache ~key ~decode ~encode ~task ?pool ns =
  let probed =
    List.map
      (fun n ->
        let hit =
          Option.bind (Cache.find cache (key n)) (fun j ->
              Result.to_option (decode j))
        in
        (n, hit))
      ns
  in
  let missing = List.filter_map (fun (n, h) -> if h = None then Some n else None) probed in
  let fresh = ref (Pool.map ?pool task missing) in
  List.map
    (fun (n, hit) ->
      match hit with
      | Some v -> v
      | None -> (
          match !fresh with
          | v :: rest ->
              fresh := rest;
              Cache.store cache (key n) (encode v);
              v
          | [] -> assert false))
    probed

let sweep ?pool ?cache ?cache_source ?opts ?collect_telemetry
    ?(config = Machine.Config.default) ~program ~ns () =
  (* Each point runs on a fresh machine so results depend only on the
     point itself — not on sweep order, job count, or RNG state carried
     over from earlier inputs. This is what makes parallel sweeps
     byte-identical to serial ones. *)
  let task n = run_once ?opts ?collect_telemetry ~config ~program ~n () in
  match (cache, cache_source) with
  | Some cache, Some source ->
      let key n =
        point_key ~source ?opts ?collect_telemetry ~config ~extra:[] ~n ()
      in
      through_cache ~cache ~key ~decode:measurement_of_json
        ~encode:measurement_to_json ~task ?pool ns
  | _ -> Pool.map ?pool task ns

(* {2 The crash-proof sweep supervisor} *)

type supervised_point = {
  measurement : measurement;
  attempts : int;
  note : string option;
}

type supervised = {
  points : supervised_point list;
  answered : int;
  degraded : int;
}

let crashed_measurement n message =
  {
    n;
    space = 0;
    peaks = [];
    steps = 0;
    status = Aborted (Resilience.Crashed message);
    gc_runs = 0;
    summary = None;
  }

let supervised_point_to_json p =
  Json.Obj
    [
      ("measurement", measurement_to_json p.measurement);
      ("attempts", Json.Int p.attempts);
      ("note", match p.note with Some s -> Json.Str s | None -> Json.Null);
    ]

let supervised_point_of_json json =
  let* measurement =
    match Json.member "measurement" json with
    | Some m -> measurement_of_json m
    | None -> Error "supervised_point: missing field \"measurement\""
  in
  let* attempts = int_field "attempts" json in
  let note =
    match Json.member "note" json with Some (Json.Str s) -> Some s | _ -> None
  in
  Ok { measurement; attempts; note }

let sweep_supervised ?pool ?cache ?cache_source
    ?(opts = Machine.Run_opts.default) ?collect_telemetry
    ?(config = Machine.Config.default) ?(max_attempts = 3) ?(fuel_factor = 4)
    ?(fuel_cap = 50_000_000) ?(initial_fuel = 1_000_000) ~program ~ns () =
  let base_budget =
    Option.value opts.Machine.Run_opts.budget
      ~default:Resilience.Budget.unlimited
  in
  let start_fuel =
    min fuel_cap
      (Option.value base_budget.Resilience.Budget.fuel ~default:initial_fuel)
  in
  let supervise n =
    let rec attempt k fuel =
      let opts =
        {
          opts with
          Machine.Run_opts.budget =
            Some { base_budget with Resilience.Budget.fuel = Some fuel };
        }
      in
      (* A fresh machine per attempt: retries differ only in their fuel,
         and points are independent of each other and of ordering. *)
      let m =
        match run_once ~opts ?collect_telemetry ~config ~program ~n () with
        | m -> m
        | exception e -> crashed_measurement n (Printexc.to_string e)
      in
      match m.status with
      | Aborted (Resilience.Out_of_fuel _)
        when k < max_attempts && fuel < fuel_cap ->
          attempt (k + 1) (min fuel_cap (fuel * fuel_factor))
      | Answer _ ->
          let note =
            if k = 1 then None
            else Some (Printf.sprintf "succeeded on attempt %d (fuel %d)" k fuel)
          in
          { measurement = m; attempts = k; note }
      | status ->
          let what =
            match status with
            | Aborted r -> Resilience.abort_reason_message r
            | Stuck msg -> "stuck: " ^ msg
            | Answer _ -> assert false
          in
          let note =
            if k = 1 then Some what
            else Some (Printf.sprintf "gave up after %d attempts: %s" k what)
          in
          { measurement = m; attempts = k; note }
    in
    attempt 1 start_fuel
  in
  let points =
    match (cache, cache_source) with
    | Some cache, Some source ->
        let key n =
          point_key ~source ~opts ?collect_telemetry ~config
            ~extra:
              [
                "supervised";
                string_of_int max_attempts;
                string_of_int fuel_factor;
                string_of_int fuel_cap;
                string_of_int initial_fuel;
              ]
            ~n ()
        in
        through_cache ~cache ~key ~decode:supervised_point_of_json
          ~encode:supervised_point_to_json ~task:supervise ?pool ns
    | _ -> Pool.map ?pool supervise ns
  in
  let answered =
    List.length
      (List.filter
         (fun p -> match p.measurement.status with Answer _ -> true | _ -> false)
         points)
  in
  { points; answered; degraded = List.length points - answered }

let spaces ms =
  List.filter_map
    (fun m -> match m.status with Answer _ -> Some (m.n, m.space) | _ -> None)
    ms

(* Per-model selector: answered points where the model was actually
   measured; anything else is omitted, so a sweep whose points were
   measured under different model lists (e.g. a supervised sweep with
   crashed points) degrades to the points that have the data. *)
let spaces_for model ms =
  List.filter_map
    (fun m ->
      match (m.status, consumption m model) with
      | Answer _, Some c -> Some (m.n, c)
      | _ -> None)
    ms

let linked_spaces ms = spaces_for Space_model.Linked ms
let log_spaces ms = spaces_for Space_model.Log ms

let all_answered ms =
  List.for_all (fun m -> match m.status with Answer _ -> true | _ -> false) ms
