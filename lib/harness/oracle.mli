(** The differential fault-injection oracle.

    Re-checks Corollary 20 (the observable answer is independent of the
    machine variant) and the schedule-independence of the [`Exact] peak
    (Definition 21's space is the sup of live space, which forced
    collections cannot change) under adversarial GC schedules, and
    exercises [I_stack]'s Algol dangling-pointer stuck state on
    demand.

    The oracle also checks the static annotation pass differentially:
    annotated and unannotated machines must produce identical answers,
    peak space, and step counts across all six variants — the pass may
    only change {e when} free-variable sets are computed, never what a
    rule observes. *)

module Machine = Tailspace_core.Machine
module Resilience = Tailspace_resilience.Resilience
module Json = Tailspace_telemetry.Telemetry.Json

type check = {
  family : string;
  n : int;
  variant : Machine.variant;
  plan : string;  (** the adversarial fault plan's label *)
  answer_agrees : bool;
  peak_stable : bool;  (** [`Exact] peak identical to the baseline run *)
  baseline_status : string;
  status : string;
  baseline_peak : int;
  peak : int;
}

type report = {
  checks : check list;
  cross_variant_agree : bool;
      (** all six variants produce the same observable status per
          program (Corollary 20) *)
  algol_stuck_on_demand : bool;
      (** the [I_stack]/Algol dangling-pointer stuck state is reachable
          when asked for *)
  annot_invariant : bool;
      (** annotated and unannotated runs agree exactly on status, step
          count, and peak space for every (program, variant) *)
  annot_failures : string list;
      (** human-readable description of each annotation disagreement *)
  vm_invariant : bool;
      (** the bytecode VM agrees as a seventh engine on the full
          corpus: both tiers produce the stepper's answers everywhere
          (fast-tier answers are also checked against all six variants
          on non-slow entries), and the instrumented tier's step
          counts, peaks, and GC runs are identical to the Tail
          stepper's *)
  vm_failures : string list;
      (** human-readable description of each VM disagreement *)
  census_invariant : bool;
      (** heap censuses are sound: per-site live words sum exactly to
          the measured peak under the flat, linked, and log measures on
          all six variants, flamegraph stacks partition the flat peak,
          and the stepper and instrumented VM produce identical
          censuses (modulo display labels) *)
  census_failures : string list;
      (** human-readable description of each census disagreement *)
  fixnum_invariant : bool;
      (** toggling the bignum fixnum fast path is observationally
          invisible: status, step count, and peak space are bit-identical
          with fixnums on and off for every (program, variant) under the
          stepper and for both VM tiers on [Tail] (the fast tier, whose
          accounting is compiled out, is held to status only) — the
          space charge is a function of magnitude, not representation *)
  fixnum_failures : string list;
      (** human-readable description of each fixnum disagreement *)
  log_invariant : bool;
      (** the three space models obey their pointwise scaling laws at
          the peaks on every (program, variant):
          [linked <= flat], [linked <= log], and
          [log <= word_bits * flat]; and on [Tail] the instrumented
          VM's per-model peaks list is bit-identical to the stepper's *)
  log_failures : string list;
      (** human-readable description of each log-model violation *)
  ok : bool;
}

val adversarial_plans : Resilience.Fault.plan list
(** The hostile GC schedules each (program, variant) is re-run under:
    collect before every step, every third step, and two seeded
    pseudorandom schedules. *)

val run :
  ?fuel:int ->
  ?programs:(string * Tailspace_ast.Ast.expr * int) list ->
  unit ->
  report
(** Run the oracle. Default programs: the four Theorem 25 separating
    families at n=12 plus three fast corpus entries at their first
    checked input. [fuel] (default 2M) bounds each individual run. *)

val failures : report -> check list

val render : report -> string
(** Human-readable report; ends with [oracle: OK] or [oracle: FAILED]. *)

val to_json : report -> Json.t
(** [{"ok", "cross_variant_agree", "algol_stuck_on_demand",
    "annot_invariant", "annot_failures", "vm_invariant", "vm_failures",
    "census_invariant", "census_failures", "fixnum_invariant",
    "fixnum_failures", "log_invariant", "log_failures", "checks",
    "failures"}]. *)
