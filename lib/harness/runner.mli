(** Measurement driver: run (program, input N, machine variant) and
    collect Definition 23's space consumption. *)

module Machine = Tailspace_core.Machine
module Space_model = Tailspace_core.Space_model
module Telemetry = Tailspace_telemetry.Telemetry
module Resilience = Tailspace_resilience.Resilience
module Pool = Tailspace_parallel.Pool
module Cache = Tailspace_parallel.Cache

type status =
  | Answer of string
  | Stuck of string
  | Aborted of Resilience.abort_reason
      (** the resource governor ended the run; the old [Fuel] status is
          now [Aborted (Out_of_fuel _)] *)

type measurement = {
  n : int;
  space : int;  (** [S_X(P, N)] = [|P|] + peak, flat model *)
  peaks : (Space_model.t * int) list;
      (** measured peak per requested model (without the [|P|] term),
          in {!Space_model.all} order; models that were not requested
          for this point are simply absent *)
  steps : int;
  status : status;
  gc_runs : int;  (** collections that actually freed something *)
  summary : Telemetry.summary option;
      (** full telemetry summary when [collect_telemetry] was set *)
}

val peak_of : measurement -> Space_model.t -> int option
(** The measured peak under one model, [None] when it was not
    requested for this point. *)

val peak_space : measurement -> int
(** The flat peak alone, without the [|P|] term ([0] on the fast VM
    tier, which compiles accounting out). *)

val peak_linked : measurement -> int option
val peak_log : measurement -> int option

val consumption : measurement -> Space_model.t -> int option
(** Definition 23's consumption under one model, program term included:
    [Flat] gives [space] itself; [Linked] gives [U_X] = linked peak +
    [|P|]; [Log] gives the log peak + [64·|P|] (the static program is
    charged at full machine words). [None] when the model was not
    measured. *)

val input_expr : int -> Tailspace_ast.Ast.expr
(** [(quote N)]. *)

val run_once :
  ?opts:Machine.Run_opts.t ->
  ?collect_telemetry:bool ->
  ?config:Machine.Config.t ->
  program:Tailspace_ast.Ast.expr ->
  n:int ->
  unit ->
  measurement
(** Build a fresh engine from [config] (default
    {!Machine.Config.default}) and measure one (program, input) point
    under [opts] (default {!Machine.Run_opts.default}). The engine is
    [config.engine]: the classic stepper, the instrumented bytecode VM
    (identical measurements by construction), or the fast VM, whose
    space columns are [0]/absent — the tier compiles accounting out.
    [collect_telemetry] (default [false]) attaches a fresh telemetry
    instance to the run — overriding any instance in [opts], which must
    not be shared across cached or parallel points — and stores its
    summary in the measurement. *)

val status_to_json : status -> Telemetry.Json.t
val status_of_json : Telemetry.Json.t -> (status, string) result

val measurement_to_json : measurement -> Telemetry.Json.t

val measurement_of_json : Telemetry.Json.t -> (measurement, string) result
(** Exact inverse of {!measurement_to_json}, abort reasons and telemetry
    summaries included — what the result cache stores per sweep point. *)

val sweep :
  ?pool:Pool.t ->
  ?cache:Cache.t ->
  ?cache_source:string ->
  ?opts:Machine.Run_opts.t ->
  ?collect_telemetry:bool ->
  ?config:Machine.Config.t ->
  program:Tailspace_ast.Ast.expr ->
  ns:int list ->
  unit ->
  measurement list
(** Every input runs on a fresh machine instance, so each point is
    exactly {!run_once} of that input: results are independent of sweep
    order, of the [pool]'s job count, and of machine state (notably the
    RNG) left behind by earlier inputs. With a [pool], points are
    measured concurrently and returned in input order — the table is
    byte-identical to the serial one. With [cache] and [cache_source]
    (the program's identity: its source text, or a corpus tag), points
    already measured under the same configuration are replayed from the
    cache and only the misses run; the cache is touched only from the
    calling domain. Cache keys embed the canonical
    {!Machine.Config.to_json} serialization and the canonical
    {!Space_model.names} of the requested measure list (version tag
    [tailspace-measurement-v4]), so any knob that can change a
    measurement — including the annotation toggle — is keyed. *)

(** {1 The crash-proof sweep supervisor}

    A sweep over a family built to blow up space will hit its limits;
    the supervisor turns every way a point can fail into a row of the
    partial table instead of a dead process. *)

type supervised_point = {
  measurement : measurement;  (** the last attempt's measurement *)
  attempts : int;
  note : string option;
      (** degradation note: why the point failed, or that it needed
          retries — [None] for a clean first-attempt answer *)
}

type supervised = {
  points : supervised_point list;  (** one per requested input, in order *)
  answered : int;
  degraded : int;  (** points whose final status is not [Answer] *)
}

val supervised_point_to_json : supervised_point -> Telemetry.Json.t

val supervised_point_of_json :
  Telemetry.Json.t -> (supervised_point, string) result

val sweep_supervised :
  ?pool:Pool.t ->
  ?cache:Cache.t ->
  ?cache_source:string ->
  ?opts:Machine.Run_opts.t ->
  ?collect_telemetry:bool ->
  ?config:Machine.Config.t ->
  ?max_attempts:int ->
  ?fuel_factor:int ->
  ?fuel_cap:int ->
  ?initial_fuel:int ->
  program:Tailspace_ast.Ast.expr ->
  ns:int list ->
  unit ->
  supervised
(** Run every input under [opts]'s budget. A point that runs out of fuel
    is retried with the fuel multiplied by [fuel_factor] (default 4), up
    to [max_attempts] (default 3) attempts or the [fuel_cap] (default
    50M steps) — capped exponential backoff. Other aborts (space budget,
    deadline, output cap, injected fault) are terminal for the point:
    more fuel cannot help. Exceptions escaping a run are caught and
    recorded as [Aborted (Crashed _)]. The first attempt's fuel is
    [opts.budget]'s fuel when set, else [initial_fuel] (default 1M
    steps); [opts.fuel] is ignored (the supervisor owns the fuel
    schedule). Always returns the full table: failed points carry their
    abort reason in the measurement status and a human note.

    Points run on fresh machines (one per attempt) and are independent,
    so [pool], [cache], and [cache_source] behave exactly as in {!sweep};
    the supervision parameters are part of the cache key. *)

val spaces : measurement list -> (int * int) list
(** [(n, space)] pairs of the successful measurements. *)

val spaces_for : Space_model.t -> measurement list -> (int * int) list
(** [(n, consumption)] pairs of the successful measurements under one
    model. Points that did not measure the model are omitted (not
    errors): a partially-measured supervised sweep degrades to the
    points that have the data. *)

val linked_spaces : measurement list -> (int * int) list
(** [spaces_for Linked]. *)

val log_spaces : measurement list -> (int * int) list
(** [spaces_for Log]. *)

val all_answered : measurement list -> bool
