(** Measurement driver: run (program, input N, machine variant) and
    collect Definition 23's space consumption. *)

module Machine = Tailspace_core.Machine
module Telemetry = Tailspace_telemetry.Telemetry

type status = Answer of string | Stuck of string | Fuel

type measurement = {
  n : int;
  space : int;  (** [S_X(P, N)] = [|P|] + peak, flat model *)
  linked : int option;  (** [U_X(P, N)] when requested *)
  steps : int;
  status : status;
  gc_runs : int;  (** collections that actually freed something *)
  peak_space : int;  (** the peak alone, without the [|P|] term *)
  summary : Telemetry.summary option;
      (** full telemetry summary when [collect_telemetry] was set *)
}

val input_expr : int -> Tailspace_ast.Ast.expr
(** [(quote N)]. *)

val run_once :
  ?fuel:int ->
  ?measure_linked:bool ->
  ?gc_policy:[ `Exact | `Approximate ] ->
  ?collect_telemetry:bool ->
  ?perm:Machine.perm_policy ->
  ?stack_policy:Machine.stack_policy ->
  ?return_env:Machine.return_env ->
  ?evlis_drop_at_creation:bool ->
  variant:Machine.variant ->
  program:Tailspace_ast.Ast.expr ->
  n:int ->
  unit ->
  measurement
(** [collect_telemetry] (default [false]) attaches a fresh telemetry
    instance to the run and stores its summary in the measurement. *)

val sweep :
  ?fuel:int ->
  ?measure_linked:bool ->
  ?gc_policy:[ `Exact | `Approximate ] ->
  ?collect_telemetry:bool ->
  ?perm:Machine.perm_policy ->
  ?stack_policy:Machine.stack_policy ->
  ?return_env:Machine.return_env ->
  ?evlis_drop_at_creation:bool ->
  variant:Machine.variant ->
  program:Tailspace_ast.Ast.expr ->
  ns:int list ->
  unit ->
  measurement list
(** One machine instance reused across the inputs; with
    [collect_telemetry], each input still gets its own telemetry, so
    summaries are per-measurement. *)

val spaces : measurement list -> (int * int) list
(** [(n, space)] pairs of the successful measurements. *)

val linked_spaces : measurement list -> (int * int) list

val all_answered : measurement list -> bool
