(** A denotational-style evaluator for Core Scheme.

    §16: "The reference implementations described here can be related to
    the denotational semantics of Scheme by proving that every answer
    that is computed by the denotational semantics is computed by the
    reference implementations." This module provides the executable half
    of that relation: a direct transcription of the standard
    continuation-semantics equations

      E[(quote c)] rho kappa sigma    = kappa c sigma
      E[I] rho kappa sigma            = kappa (sigma (rho I)) sigma
      E[L] rho kappa sigma            = kappa (closure L rho) sigma'
      E[(if e0 e1 e2)] rho kappa      = E[e0] rho (test kappa)
      E[(set! i e0)] rho kappa        = E[e0] rho (assign i kappa)
      E[(e0 e1 ...)] rho kappa        = E[e0] rho (evargs ... (apply kappa))

    with expression continuations as OCaml functions, over the same
    value/store domain as the reference machines ({!Tailspace_core}), so
    answers are directly comparable. Escape procedures are modelled with
    a table from escape tags to captured OCaml continuations, giving
    upward-escaping [call/cc] (re-entrant continuations captured by a
    finished evaluation are not supported — a documented restriction of
    the functional encoding).

    The test suite checks answer agreement with all six reference
    machines over the corpus and over randomly generated programs —
    the empirical counterpart of §16's proposed theorem. *)

type outcome =
  | Done of string
  | Error of string
  | Aborted of Tailspace_resilience.Resilience.abort_reason
      (** the resource governor stopped the evaluation; continuation
          invocations play the step role, so fuel bounds those. The old
          ["out of fuel"] error is now [Aborted (Out_of_fuel _)]. *)

val eval :
  ?machine:Tailspace_core.Machine.t ->
  ?budget:Tailspace_resilience.Resilience.Budget.t ->
  ?telemetry:Tailspace_telemetry.Telemetry.t ->
  Tailspace_ast.Ast.expr ->
  outcome
(** Evaluate under the standard initial environment. A [machine] may be
    supplied to reuse its initial environment/store (it is not stepped);
    otherwise a fresh default one is created. [budget]'s fuel and
    deadline are enforced per continuation invocation (default fuel 50
    million spends; there is no per-step space walk here, so a space
    budget is ignored). [telemetry] counts allocations by kind through
    the shared store observer and records errors as stuck events; there
    are no machine steps, so the step counter reports continuation
    invocations (the fuel spent). *)

val eval_program :
  ?machine:Tailspace_core.Machine.t ->
  ?budget:Tailspace_resilience.Resilience.Budget.t ->
  ?telemetry:Tailspace_telemetry.Telemetry.t ->
  program:Tailspace_ast.Ast.expr ->
  input:Tailspace_ast.Ast.expr ->
  unit ->
  outcome
(** §12's convention: evaluates [(program input)]. *)
