(** A tail-recursive SECD machine — a {e real} implementation, not a
    reference semantics.

    §16 of the paper proposes proving concrete implementations properly
    tail recursive against the formal definition; the paper also cites
    Ramsdell's tail recursive SECD machine as such an implementation.
    This module is that experiment's subject: a compiler from Core
    Scheme to SECD code (lexical addressing, flat mutable frames, OCaml
    heap for data) and a stack machine with two application rules:

    - [ITailApply]: the callee reuses the caller's dump entry — the
      tail-recursive SECD machine;
    - compiling every call as [IApply] (dump pushed unconditionally)
      recovers the classic SECD machine, which is {e not} properly tail
      recursive.

    The machine reports a measured peak of live words (physical-identity
    walk over stack, environment, dump and reachable data, with shared
    structure counted once — what an actual implementation's memory
    looks like), so experiment E9 can test Definition 5 empirically:
    the tail-recursive variant's space stays within a constant factor of
    [S_tail], the classic variant's diverges.

    Supported language: Core Scheme as produced by the expander, minus
    [call/cc] (escapes are a feature of the reference machines' explicit
    continuations; the SECD subset is documented in DESIGN.md). *)

type outcome =
  | Done of string  (** rendered answer, same conventions as {!Tailspace_core.Answer} *)
  | Error of string
  | Aborted of Tailspace_resilience.Resilience.abort_reason
      (** the resource governor stopped the run (fuel, space budget,
          deadline). The old [Out_of_fuel] outcome is now
          [Aborted (Out_of_fuel _)]. *)

type result = { outcome : outcome; steps : int; peak_words : int }

val run :
  ?fuel:int ->
  ?budget:Tailspace_resilience.Resilience.Budget.t ->
  ?proper_tail_calls:bool ->
  ?telemetry:Tailspace_telemetry.Telemetry.t ->
  ?annot:Tailspace_analysis.Annot.t ->
  Tailspace_ast.Ast.expr ->
  result
(** Compile and run an expression. [proper_tail_calls] defaults to
    [true]; [false] selects the classic SECD application rule.
    [budget] is enforced against this machine's own step counter and
    live-word walk (the space budget bounds [peak_words]; there is no
    output channel, so the output cap never fires). [telemetry] observes
    the run with the same step events as the reference machines: the
    dump depth plays the continuation-depth role, the measured live
    words the space role (there is no store, so store-size and
    allocation channels stay zero). [annot] serves the compiler's
    tail-position decisions from a precomputed table (see {!compile});
    the emitted code, and hence the run, is identical without it.
    Default fuel: 20 million instructions. *)

val run_program :
  ?fuel:int ->
  ?budget:Tailspace_resilience.Resilience.Budget.t ->
  ?proper_tail_calls:bool ->
  ?telemetry:Tailspace_telemetry.Telemetry.t ->
  ?annot:Tailspace_analysis.Annot.t ->
  program:Tailspace_ast.Ast.expr ->
  input:Tailspace_ast.Ast.expr ->
  unit ->
  result
(** §12's convention: runs [(program input)]. *)

(** {1 Compiler internals (exposed for tests)} *)

type instr =
  | IConst of Tailspace_ast.Ast.const
  | ILocal of int * int  (** frame depth, slot *)
  | IGlobal of string
  | IClosure of template
  | ISel of code * code  (** non-tail conditional; pushes a join point *)
  | ISelTail of code * code  (** tail conditional; no dump traffic *)
  | IJoin
  | ISetLocal of int * int
  | ISetGlobal of string
  | IApply of int  (** pushes a dump frame *)
  | ITailApply of int  (** reuses the caller's dump frame *)
  | IReturn

and code = instr list

and template = { nparams : int; variadic : bool; body : code }

val compile :
  ?proper_tail_calls:bool ->
  ?annot:Tailspace_analysis.Annot.t ->
  Tailspace_ast.Ast.expr ->
  code
(** Compile a closed expression (free identifiers become globals). With
    [annot], tail positions are decided by the precomputed
    {!Tailspace_analysis.Annot.tail_status} table lookup instead of the
    structural recursion scheme; nodes marked [Both] (physically shared
    across positions) fall back to the structural answer, so the emitted
    instruction stream is identical with and without [annot] (asserted
    in the tests). *)
