module Ast = Tailspace_ast.Ast
module Bignum = Tailspace_bignum.Bignum
module Telemetry = Tailspace_telemetry.Telemetry
module Resilience = Tailspace_resilience.Resilience
module Annot = Tailspace_analysis.Annot

(* ------------------------------------------------------------------ *)
(* Code                                                                *)

type instr =
  | IConst of Ast.const
  | ILocal of int * int
  | IGlobal of string
  | IClosure of template
  | ISel of code * code
  | ISelTail of code * code
  | IJoin
  | ISetLocal of int * int
  | ISetGlobal of string
  | IApply of int
  | ITailApply of int
  | IReturn

and code = instr list

and template = { nparams : int; variadic : bool; body : code }

(* ------------------------------------------------------------------ *)
(* Compiler: lexical addressing against a compile-time environment of
   name frames; anything unresolved is a global.                       *)

let compile ?(proper_tail_calls = true) ?annot expr =
  (* With an annotation table the tail/non-tail decision is a table
     lookup instead of a structural recursion scheme; nodes the pass
     marked [Both] (physically shared across positions) or never saw
     fall back to the structural answer, so the emitted code is
     identical either way (asserted in the tests). *)
  (match annot with Some a -> Annot.record a expr | None -> ());
  let resolve_tail e structural =
    match annot with
    | None -> structural
    | Some a -> (
        match Annot.tail_status a e with
        | Some Annot.Tail -> true
        | Some Annot.Nontail -> false
        | Some Annot.Both | None -> structural)
  in
  let index_of x names =
    let rec go i = function
      | [] -> None
      | n :: rest -> if String.equal n x then Some i else go (i + 1) rest
    in
    go 0 names
  in
  let resolve cenv x =
    let rec frames d = function
      | [] -> None
      | names :: rest -> (
          match index_of x names with
          | Some i -> Some (d, i)
          | None -> frames (d + 1) rest)
    in
    frames 0 cenv
  in
  let rec comp ~tail e cenv =
    let tail = resolve_tail e tail in
    match (e : Ast.expr) with
    | Ast.If (e0, e1, e2) ->
        if tail then
          comp ~tail:false e0 cenv
          @ [ ISelTail (comp ~tail:true e1 cenv, comp ~tail:true e2 cenv) ]
        else
          comp ~tail:false e0 cenv
          @ [
              ISel
                ( comp ~tail:false e1 cenv @ [ IJoin ],
                  comp ~tail:false e2 cenv @ [ IJoin ] );
            ]
    | Ast.Call (f, args) ->
        (* A tail call with [proper_tail_calls = false] compiles to the
           classic [IApply]; the callee's implicit return at end-of-code
           plays the [IReturn]. *)
        let apply =
          if tail && proper_tail_calls then ITailApply (List.length args)
          else IApply (List.length args)
        in
        comp ~tail:false f cenv
        @ List.concat_map (fun a -> comp ~tail:false a cenv) args
        @ [ apply ]
    | Ast.Quote _ | Ast.Var _ | Ast.Lambda _ | Ast.Set _ ->
        let base =
          match e with
          | Ast.Quote c -> [ IConst c ]
          | Ast.Var x -> (
              match resolve cenv x with
              | Some (d, i) -> [ ILocal (d, i) ]
              | None -> [ IGlobal x ])
          | Ast.Lambda l -> [ IClosure (template l cenv) ]
          | Ast.Set (x, e0) -> (
              comp ~tail:false e0 cenv
              @
              match resolve cenv x with
              | Some (d, i) -> [ ISetLocal (d, i) ]
              | None -> [ ISetGlobal x ])
          | Ast.If _ | Ast.Call _ -> assert false
        in
        if tail then base @ [ IReturn ] else base
  and template (l : Ast.lambda) cenv =
    let names =
      match l.rest with Some r -> l.params @ [ r ] | None -> l.params
    in
    {
      nparams = List.length l.params;
      variadic = Option.is_some l.rest;
      body = comp ~tail:true l.body (names :: cenv);
    }
  in
  comp ~tail:false expr []

(* ------------------------------------------------------------------ *)
(* Runtime values: OCaml-heap data, mutable in place — this engine is a
   realistic implementation, not a store semantics.                    *)

type value =
  | Int of Bignum.t
  | Bool of bool
  | Sym of string
  | Str of string
  | Char of char
  | Nil
  | Unspecified
  | Undefined
  | Pair of cell
  | Vector of value array
  | Closure of closure
  | Prim of string

and cell = { mutable car : value; mutable cdr : value }
and closure = { template : template; env : env }
and env = value array list

exception Secd_error of string

let err fmt = Format.kasprintf (fun m -> raise (Secd_error m)) fmt

let value_of_const (c : Ast.const) =
  match c with
  | Ast.C_bool b -> Bool b
  | Ast.C_int z -> Int z
  | Ast.C_sym s -> Sym s
  | Ast.C_str s -> Str s
  | Ast.C_char c -> Char c
  | Ast.C_nil -> Nil
  | Ast.C_unspecified -> Unspecified
  | Ast.C_undefined -> Undefined

let rec list_of_values = function
  | [] -> Nil
  | v :: rest -> Pair { car = v; cdr = list_of_values rest }

(* ------------------------------------------------------------------ *)
(* Primitives (the subset the corpus battery needs)                    *)

let eqv a b =
  match (a, b) with
  | Int x, Int y -> Bignum.equal x y
  | Bool x, Bool y -> x = y
  | Sym x, Sym y -> String.equal x y
  | Str x, Str y -> String.equal x y
  | Char x, Char y -> x = y
  | Nil, Nil | Unspecified, Unspecified | Undefined, Undefined -> true
  | Pair x, Pair y -> x == y
  | Vector x, Vector y -> x == y
  | Closure x, Closure y -> x == y
  | Prim x, Prim y -> String.equal x y
  | _, _ -> false

let want_int name = function Int z -> z | _ -> err "%s: expected number" name

let want_index name = function
  | Int z -> (
      match Bignum.to_int z with
      | Some n -> n
      | None -> err "%s: index too large" name)
  | _ -> err "%s: expected number" name

let want_pair name = function Pair c -> c | _ -> err "%s: expected pair" name

let chain name cmp args =
  let rec go = function
    | a :: (b :: _ as rest) ->
        cmp (want_int name a) (want_int name b) && go rest
    | _ -> true
  in
  if List.length args < 2 then err "%s: expected at least 2 arguments" name;
  Bool (go args)

let prim_apply name args =
  match (name, args) with
  | "+", args ->
      Int (List.fold_left (fun acc v -> Bignum.add acc (want_int "+" v)) Bignum.zero args)
  | "*", args ->
      Int (List.fold_left (fun acc v -> Bignum.mul acc (want_int "*" v)) Bignum.one args)
  | "-", [ a ] -> Int (Bignum.neg (want_int "-" a))
  | "-", a :: rest ->
      Int (List.fold_left (fun acc v -> Bignum.sub acc (want_int "-" v)) (want_int "-" a) rest)
  | "quotient", [ a; b ] -> Int (Bignum.quotient (want_int "quotient" a) (want_int "quotient" b))
  | "remainder", [ a; b ] -> Int (Bignum.remainder (want_int "remainder" a) (want_int "remainder" b))
  | "modulo", [ a; b ] -> Int (Bignum.modulo (want_int "modulo" a) (want_int "modulo" b))
  | "abs", [ a ] -> Int (Bignum.abs (want_int "abs" a))
  | "=", args -> chain "=" (fun a b -> Bignum.compare a b = 0) args
  | "<", args -> chain "<" (fun a b -> Bignum.compare a b < 0) args
  | ">", args -> chain ">" (fun a b -> Bignum.compare a b > 0) args
  | "<=", args -> chain "<=" (fun a b -> Bignum.compare a b <= 0) args
  | ">=", args -> chain ">=" (fun a b -> Bignum.compare a b >= 0) args
  | "zero?", [ a ] -> Bool (Bignum.is_zero (want_int "zero?" a))
  | "not", [ a ] -> Bool (a = Bool false)
  | "eq?", [ a; b ] | "eqv?", [ a; b ] -> Bool (eqv a b)
  | "pair?", [ a ] -> Bool (match a with Pair _ -> true | _ -> false)
  | "null?", [ a ] -> Bool (a = Nil)
  | "procedure?", [ a ] ->
      Bool (match a with Closure _ | Prim _ -> true | _ -> false)
  | "cons", [ a; d ] -> Pair { car = a; cdr = d }
  | "car", [ p ] -> (want_pair "car" p).car
  | "cdr", [ p ] -> (want_pair "cdr" p).cdr
  | "set-car!", [ p; v ] ->
      (want_pair "set-car!" p).car <- v;
      Unspecified
  | "set-cdr!", [ p; v ] ->
      (want_pair "set-cdr!" p).cdr <- v;
      Unspecified
  | "list", args -> list_of_values args
  | "make-vector", [ n ] -> Vector (Array.make (want_index "make-vector" n) Unspecified)
  | "make-vector", [ n; fill ] -> Vector (Array.make (want_index "make-vector" n) fill)
  | "vector", args -> Vector (Array.of_list args)
  | "vector-length", [ Vector a ] -> Int (Bignum.of_int (Array.length a))
  | "vector-ref", [ Vector a; i ] ->
      let i = want_index "vector-ref" i in
      if i < 0 || i >= Array.length a then err "vector-ref: out of range";
      a.(i)
  | "vector-set!", [ Vector a; i; v ] ->
      let i = want_index "vector-set!" i in
      if i < 0 || i >= Array.length a then err "vector-set!: out of range";
      a.(i) <- v;
      Unspecified
  | "error", parts ->
      err "error: %s"
        (String.concat " "
           (List.map (function Str s -> s | Sym s -> s | _ -> "?") parts))
  | name, _ -> err "%s: unknown primitive or bad arguments" name

let prim_names =
  [
    "+"; "*"; "-"; "quotient"; "remainder"; "modulo"; "abs"; "="; "<"; ">";
    "<="; ">="; "zero?"; "not"; "eq?"; "eqv?"; "pair?"; "null?"; "procedure?";
    "cons"; "car"; "cdr"; "set-car!"; "set-cdr!"; "list"; "make-vector";
    "vector"; "vector-length"; "vector-ref"; "vector-set!"; "error";
  ]

(* ------------------------------------------------------------------ *)
(* Machine state                                                       *)

type dump_entry =
  | DFrame of value list * env * code
  | DJoin of code

type state = {
  mutable s : value list;
  mutable e : env;
  mutable c : code;
  mutable d : dump_entry list;
  globals : (string, value) Hashtbl.t;
}

(* ------------------------------------------------------------------ *)
(* Live-space measurement: physical-identity walk, shared structure
   counted once — actual memory, in the same word units as Figure 7.   *)

module Ptbl = Hashtbl.Make (struct
  type t = Obj.t

  let equal = ( == )
  let hash = Hashtbl.hash
end)

let live_words st =
  let seen : unit Ptbl.t = Ptbl.create 64 in
  let once obj = if Ptbl.mem seen obj then false else (Ptbl.add seen obj (); true) in
  let total = ref 0 in
  let add n = total := !total + n in
  let rec value v =
    match v with
    | Int z -> add (1 + Bignum.bit_length z)
    | Str s -> add (1 + String.length s)
    | Bool _ | Sym _ | Char _ | Nil | Unspecified | Undefined | Prim _ -> add 1
    | Pair cell ->
        if once (Obj.repr cell) then begin
          add 3;
          value cell.car;
          value cell.cdr
        end
    | Vector arr ->
        if once (Obj.repr arr) then begin
          add (1 + Array.length arr);
          Array.iter value arr
        end
    | Closure clo ->
        if once (Obj.repr clo) then begin
          add 2 (* code pointer + environment pointer *);
          envir clo.env
        end
  and envir e =
    List.iter
      (fun frame ->
        if once (Obj.repr frame) then begin
          add (1 + Array.length frame);
          Array.iter value frame
        end)
      e
  in
  let dump_entry = function
    | DFrame (s, e, _) ->
        add 3;
        List.iter (fun v -> add 1; value v) s;
        envir e
    | DJoin _ -> add 1
  in
  List.iter (fun v -> add 1; value v) st.s;
  envir st.e;
  List.iter dump_entry st.d;
  Hashtbl.iter (fun _ v -> add 1; value v) st.globals;
  !total

(* ------------------------------------------------------------------ *)
(* Answers (rendered with the same conventions as Core.Answer)         *)

let render v =
  let buf = Buffer.create 32 in
  let fuel = ref 10_000 in
  let out s = if !fuel > 0 then (decr fuel; Buffer.add_string buf s) in
  let rec emit v =
    if !fuel > 0 then
      match v with
      | Bool true -> out "#t"
      | Bool false -> out "#f"
      | Int z -> out (Bignum.to_string z)
      | Sym s -> out s
      | Str s ->
          out (Format.asprintf "%a" Tailspace_sexp.Datum.pp (Tailspace_sexp.Datum.Str s))
      | Char c ->
          out (Format.asprintf "%a" Tailspace_sexp.Datum.pp (Tailspace_sexp.Datum.Char c))
      | Nil -> out "()"
      | Unspecified -> out "#!unspecified"
      | Undefined -> out "#!undefined"
      | Closure _ | Prim _ -> out "#<PROC>"
      | Vector arr ->
          out "#(";
          Array.iteri
            (fun i x ->
              if i > 0 then out " ";
              emit x)
            arr;
          out ")"
      | Pair cell ->
          out "(";
          emit cell.car;
          tail cell.cdr;
          out ")"
  and tail = function
    | Nil -> ()
    | Pair cell ->
        out " ";
        emit cell.car;
        tail cell.cdr
    | v ->
        out " . ";
        emit v
  in
  emit v;
  if !fuel <= 0 then Buffer.add_string buf "...";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)

type outcome =
  | Done of string
  | Error of string
  | Aborted of Resilience.abort_reason

type result = { outcome : outcome; steps : int; peak_words : int }

let pop st = match st.s with v :: rest -> st.s <- rest; v | [] -> err "stack underflow"

let pop_n st n =
  let rec go n acc = if n = 0 then acc else go (n - 1) (pop st :: acc) in
  go n []

let frame_lookup st depth slot =
  match List.nth_opt st.e depth with
  | Some frame when slot < Array.length frame -> frame.(slot)
  | _ -> err "bad lexical address %d/%d" depth slot

let do_return st result =
  match st.d with
  | DFrame (s0, e0, c0) :: rest ->
      st.s <- result :: s0;
      st.e <- e0;
      st.c <- c0;
      st.d <- rest;
      None
  | DJoin _ :: _ -> err "return through a join point (compiler bug)"
  | [] -> Some result

let enter_closure st clo args ~push_frame =
  let t = clo.template in
  let n = List.length args in
  let ok = if t.variadic then n >= t.nparams else n = t.nparams in
  if not ok then
    err "arity: procedure expects %s%d arguments, got %d"
      (if t.variadic then "at least " else "")
      t.nparams n;
  let size = t.nparams + if t.variadic then 1 else 0 in
  let frame = Array.make size Undefined in
  let rec fill i = function
    | args when i = t.nparams ->
        if t.variadic then frame.(i) <- list_of_values args
        else assert (args = [])
    | arg :: rest ->
        frame.(i) <- arg;
        fill (i + 1) rest
    | [] -> assert false
  in
  if size > 0 then fill 0 args;
  if push_frame then st.d <- DFrame (st.s, st.e, st.c) :: st.d;
  st.s <- [];
  st.e <- frame :: clo.env;
  st.c <- t.body

(* returns Some answer when the program halts *)
let exec_instr st instr =
  match instr with
  | IConst c ->
      st.s <- value_of_const c :: st.s;
      None
  | ILocal (d, i) -> (
      match frame_lookup st d i with
      | Undefined -> err "letrec variable used before initialization"
      | v ->
          st.s <- v :: st.s;
          None)
  | IGlobal x -> (
      match Hashtbl.find_opt st.globals x with
      | Some v ->
          st.s <- v :: st.s;
          None
      | None -> err "unbound global: %s" x)
  | IClosure t ->
      st.s <- Closure { template = t; env = st.e } :: st.s;
      None
  | ISel (c1, c2) ->
      let v = pop st in
      st.d <- DJoin st.c :: st.d;
      st.c <- (if v = Bool false then c2 else c1);
      None
  | ISelTail (c1, c2) ->
      let v = pop st in
      st.c <- (if v = Bool false then c2 else c1);
      None
  | IJoin -> (
      match st.d with
      | DJoin c0 :: rest ->
          st.c <- c0;
          st.d <- rest;
          None
      | _ -> err "join without a join point (compiler bug)")
  | ISetLocal (d, i) -> (
      let v = pop st in
      match List.nth_opt st.e d with
      | Some frame when i < Array.length frame ->
          frame.(i) <- v;
          st.s <- Unspecified :: st.s;
          None
      | _ -> err "bad lexical address %d/%d" d i)
  | ISetGlobal x ->
      let v = pop st in
      if not (Hashtbl.mem st.globals x) then err "set!: unbound global %s" x;
      Hashtbl.replace st.globals x v;
      st.s <- Unspecified :: st.s;
      None
  | IApply n | ITailApply n -> (
      let tail = match instr with ITailApply _ -> true | _ -> false in
      let args = pop_n st n in
      let f = pop st in
      match f with
      | Closure clo ->
          enter_closure st clo args ~push_frame:(not tail);
          None
      | Prim name ->
          let result = prim_apply name args in
          if tail then do_return st result
          else begin
            st.s <- result :: st.s;
            None
          end
      | v -> err "attempt to call a non-procedure (%s)" (render v))
  | IReturn -> do_return st (pop st)

let run ?(fuel = 20_000_000) ?budget ?(proper_tail_calls = true) ?telemetry
    ?annot expr =
  let budget = Option.value budget ~default:Resilience.Budget.unlimited in
  let guard = Resilience.Guard.start ~default_fuel:fuel budget in
  let code = compile ~proper_tail_calls ?annot expr in
  let globals = Hashtbl.create 64 in
  List.iter (fun name -> Hashtbl.replace globals name (Prim name)) prim_names;
  let st = { s = []; e = []; c = code; d = []; globals } in
  let peak = ref 0 in
  let steps = ref 0 in
  let measure () =
    let words = live_words st in
    peak := Stdlib.max !peak words;
    match telemetry with
    | Some tl ->
        (* the dump plays the continuation's role; there is no store, so
           the store-cells channel is unused *)
        Telemetry.record_step tl ~step:!steps ~space:words
          ~cont_depth:(List.length st.d) ~store_cells:0
    | None -> ()
  in
  let finish outcome =
    (match telemetry with
    | Some tl ->
        Telemetry.note_steps tl !steps;
        Telemetry.note_peak tl !peak;
        (match outcome with
        | Error m -> Telemetry.record_stuck tl ~step:!steps ~message:m
        | Done _ | Aborted _ -> ())
    | None -> ());
    { outcome; steps = !steps; peak_words = !peak }
  in
  let rec loop () =
    measure ();
    (* [measure] just walked the genuinely live words, so the peak is an
       exact live figure — no collect-first step is needed here *)
    match
      match Resilience.Guard.space_budget guard with
      | Some b when !peak > b ->
          Some (Resilience.Space_exceeded { budget = b; live = !peak })
      | _ -> Resilience.Guard.check guard ~steps:!steps ~output_bytes:0
    with
    | Some reason -> finish (Aborted reason)
    | None ->
    (
      match st.c with
      | [] -> (
          (* implicit return at the end of a code sequence *)
          match do_return st (pop st) with
          | Some answer -> finish (Done (render answer))
          | None ->
              incr steps;
              loop ())
      | instr :: rest -> (
          st.c <- rest;
          incr steps;
          match exec_instr st instr with
          | Some answer -> finish (Done (render answer))
          | None -> loop ()))
  in
  try loop () with Secd_error m -> finish (Error m)

let run_program ?fuel ?budget ?proper_tail_calls ?telemetry ?annot ~program
    ~input () =
  run ?fuel ?budget ?proper_tail_calls ?telemetry ?annot
    (Ast.Call (program, [ input ]))
