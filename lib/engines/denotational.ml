module T = Tailspace_core.Types
module Env = Tailspace_core.Types.Env
module Store = Tailspace_core.Store
module Prim = Tailspace_core.Prim
module Answer = Tailspace_core.Answer
module Machine = Tailspace_core.Machine
module Ast = Tailspace_ast.Ast

module Resilience = Tailspace_resilience.Resilience

type outcome =
  | Done of string
  | Error of string
  | Aborted of Resilience.abort_reason

exception Deno_error of string
exception Deno_abort of Resilience.abort_reason

let fail fmt = Format.kasprintf (fun m -> raise (Deno_error m)) fmt

(* The semantic domains. An expression continuation consumes an
   expressed value and a store and produces the final answer; the whole
   evaluation is written so that every continuation invocation is an
   OCaml tail call, so control context lives on the OCaml heap as
   closures — exactly the structure of the semantics. *)
type answer = T.value * Store.t
type kont = T.value -> Store.t -> answer

type state = {
  escapes : (T.loc, kont) Hashtbl.t;
      (* captured continuations, keyed by the escape's tag location *)
  ctx : Prim.ctx;
  guard : Resilience.Guard.t;
  mutable spent : int;
}

let evaluate st expr env0 store0 =
  let spend () =
    st.spent <- st.spent + 1;
    match
      Resilience.Guard.check st.guard ~steps:st.spent ~output_bytes:0
    with
    | Some reason -> raise (Deno_abort reason)
    | None -> ()
  in
  let rec ev e (rho : Env.t) (kappa : kont) sigma : answer =
    spend ();
    match (e : Ast.expr) with
    | Ast.Quote c -> kappa (T.value_of_const c) sigma
    | Ast.Var i -> (
        match Env.find_opt i rho with
        | None -> fail "unbound variable: %s" i
        | Some l -> (
            match Store.find_opt sigma l with
            | None -> fail "%s: dangling location" i
            | Some T.Undefined ->
                fail "%s: letrec variable used before initialization" i
            | Some v -> kappa v sigma))
    | Ast.Lambda lam ->
        let sigma, tag = Store.alloc sigma T.Unspecified in
        kappa (T.Closure (tag, lam, rho)) sigma
    | Ast.If (e0, e1, e2) ->
        ev e0 rho
          (fun v sigma ->
            if v = T.Bool false then ev e2 rho kappa sigma
            else ev e1 rho kappa sigma)
          sigma
    | Ast.Set (i, e0) ->
        ev e0 rho
          (fun v sigma ->
            match Env.find_opt i rho with
            | None -> fail "set!: unbound variable %s" i
            | Some l -> kappa T.Unspecified (Store.set sigma l v))
          sigma
    | Ast.Call (f, args) ->
        ev_list (f :: args) rho
          (fun vs sigma ->
            match vs with
            | operator :: operands -> apply operator operands kappa sigma
            | [] -> assert false)
          sigma
  and ev_list exprs rho (kappa : T.value list -> Store.t -> answer) sigma =
    match exprs with
    | [] -> kappa [] sigma
    | e :: rest ->
        ev e rho
          (fun v sigma -> ev_list rest rho (fun vs s -> kappa (v :: vs) s) sigma)
          sigma
  and apply operator operands kappa sigma =
    spend ();
    match operator with
    | T.Closure (_, lam, captured) ->
        let np = List.length lam.Ast.params in
        let nv = List.length operands in
        let ok = match lam.Ast.rest with None -> nv = np | Some _ -> nv >= np in
        if not ok then fail "arity: expected %d arguments, got %d" np nv;
        let rec take k = function
          | rest when k = 0 -> ([], rest)
          | v :: vs ->
              let direct, extra = take (k - 1) vs in
              (v :: direct, extra)
          | [] -> assert false
        in
        let direct, extra = take np operands in
        let sigma, plocs = Store.alloc_many sigma direct in
        let sigma, bindings =
          match lam.Ast.rest with
          | None -> (sigma, List.combine lam.Ast.params plocs)
          | Some r ->
              let sigma, lst = Prim.values_to_list sigma extra in
              let sigma, rl = Store.alloc sigma lst in
              (sigma, List.combine lam.Ast.params plocs @ [ (r, rl) ])
        in
        ev lam.Ast.body (Env.add_list bindings captured) kappa sigma
    | T.Escape (tag, _) -> (
        match (operands, Hashtbl.find_opt st.escapes tag) with
        | [ v ], Some saved -> saved v sigma
        | [ _ ], None -> fail "stale escape procedure"
        | vs, _ -> fail "continuation expects 1 value, got %d" (List.length vs))
    | T.Primop ("call-with-current-continuation" | "call/cc") -> (
        match operands with
        | [ f ] ->
            let sigma, tag = Store.alloc sigma T.Unspecified in
            Hashtbl.replace st.escapes tag kappa;
            apply f [ T.Escape (tag, T.Halt) ] kappa sigma
        | _ -> fail "call/cc: expected exactly 1 argument")
    | T.Primop "apply" -> (
        match operands with
        | f :: (_ :: _ as rest) -> (
            let middle, last =
              let r = List.rev rest in
              (List.rev (List.tl r), List.hd r)
            in
            match Prim.list_to_values sigma last with
            | Some flattened -> apply f (middle @ flattened) kappa sigma
            | None -> fail "apply: last argument is not a proper list")
        | _ -> fail "apply: expected a procedure and an argument list")
    | T.Primop name -> (
        match Prim.find name with
        | None -> fail "unknown primitive: %s" name
        | Some fn -> (
            match fn st.ctx sigma operands with
            | sigma, v -> kappa v sigma
            | exception Prim.Prim_error m -> fail "%s" m))
    | v -> fail "attempt to call a non-procedure (%s)" (T.tag_of_value v)
  in
  ev expr env0 (fun v sigma -> (v, sigma)) store0

module Telemetry = Tailspace_telemetry.Telemetry

let eval ?machine ?budget ?telemetry expr =
  (* Annotations are N/A here: denotational closures capture the whole
     rho, so there is no free-variable restriction to precompute. *)
  let machine =
    match machine with
    | Some m -> m
    | None -> Machine.create_with Machine.Config.default
  in
  let env0, store0 = Machine.initial machine in
  let guard =
    Resilience.Guard.start ~default_fuel:50_000_000
      (Option.value budget ~default:Resilience.Budget.unlimited)
  in
  let st =
    { escapes = Hashtbl.create 8; ctx = Prim.make_ctx (); guard; spent = 0 }
  in
  (* There are no machine steps here — continuation invocations spend
     the budget — so allocation events carry the spend count as their
     step, and the summary's step counter is the total spend. *)
  let spent () = st.spent in
  let store0 =
    match telemetry with
    | None -> store0
    | Some tl ->
        Store.with_observer store0
          (Some
             (fun v ->
               Telemetry.record_alloc tl ~step:(spent ())
                 ~kind:(Machine.alloc_kind_of_value v)
                 ~words:(1 + T.value_space v)))
  in
  let finish outcome =
    (match telemetry with
    | Some tl -> (
        Telemetry.note_steps tl (spent ());
        match outcome with
        | Error m -> Telemetry.record_stuck tl ~step:(spent ()) ~message:m
        | Done _ | Aborted _ -> ())
    | None -> ());
    outcome
  in
  match evaluate st expr env0 store0 with
  | v, sigma ->
      (match telemetry with
      | Some tl -> Telemetry.note_peak tl (T.value_space v + Store.space sigma)
      | None -> ());
      finish (Done (Answer.to_string sigma v))
  | exception Deno_error m -> finish (Error m)
  | exception Prim.Prim_error m -> finish (Error m)
  | exception Deno_abort r -> finish (Aborted r)

let eval_program ?machine ?budget ?telemetry ~program ~input () =
  eval ?machine ?budget ?telemetry (Ast.Call (program, [ input ]))
