(** Static program annotations: one O(|P|) pre-pass over an expanded
    program computing, per AST node, everything the reference machines
    otherwise recompute inside the step loop.

    The [I_free]/[I_sfs] rules (§10) restrict environments by
    free-variable sets, and the [I_sfs] push rule restricts to the union
    of the free variables of the call's not-yet-evaluated
    subexpressions. Without this pass the machine recomputes those sets
    by syntax traversal on a hot path; with it, every set is a table
    lookup of a {e hash-consed} [Iset.t] — one allocation per distinct
    set for the whole program, and O(1) physical comparison.

    The pass never changes what a machine observes: it changes {e when}
    free variables are computed, not {e what} any rule produces, so
    answers, step counts, and the measured peaks are identical with and
    without it (the differential oracle re-checks this; see
    DESIGN.md, "Static annotation pass").

    Tail positions follow the machine-level reading of the paper's
    Definition 1: tail positions exist only {e inside lambda bodies} —
    the body of a lambda is in tail position, the branches of an [if]
    inherit the position of the [if], and everything else (including the
    whole program, [if] conditions, [set!] right-hand sides, and call
    operator/operands) is not. This deliberately differs from
    {!Tail_calls}, whose source-level statistics treat immediately
    applied lambdas as transparent. *)

module Ast = Tailspace_ast.Ast
module Iset = Ast.Iset

(** A node's tail position. Physical sharing can put one node in both
    positions (e.g. a subterm reused by the expander); such nodes are
    [Both] and consumers must fall back to their structural context. *)
type tail_status = Tail | Nontail | Both

(** Precomputed restriction sets for one call site [(e_0 e_1 ... e_k)].
    [elems.(i)] is the interned free-variable set of the i-th
    subexpression ([e_0] is the operator). For the two deterministic
    evaluation orders the per-frame [I_sfs] restriction sets are
    precomputed as immutable shared lists, so pushing an argument frame
    allocates nothing:

    - [ltr_first] is FV of subexpressions 1..k (the set the first frame
      of a left-to-right evaluation is restricted to) and [ltr_rest] the
      sets for each subsequent frame, aligned with the machine's
      [remaining] list. [rtl_first]/[rtl_rest] are the same for
      right-to-left order.

    Seeded (shuffled) orders use {!seeded_sets} over [elems]. *)
type call_info = {
  elems : Iset.t array;
  ltr_first : Iset.t;
  ltr_rest : Iset.t list;
  rtl_first : Iset.t;
  rtl_rest : Iset.t list;
}

type info = {
  fv : Iset.t;  (** interned free variables of the node *)
  tail : tail_status;
  call : call_info option;  (** [Some] exactly on [Call] nodes *)
  branch : Iset.t option;
      (** on [If] nodes: interned FV(e1) ∪ FV(e2), the [I_sfs]
          restriction for the select frame *)
}

type t

val create : unit -> t

val record : t -> Ast.expr -> unit
(** Annotate [e] and every subterm. Incremental and idempotent: nodes
    already annotated (by physical identity) are skipped, so recording a
    program that shares structure with earlier recordings costs only the
    new nodes. The root is recorded in non-tail position. *)

val find : t -> Ast.expr -> info option
(** Table lookup by physical node identity; [None] for nodes never
    recorded (callers fall back to the dynamic computation). *)

val free_vars : t -> Ast.expr -> Iset.t option
val tail_status : t -> Ast.expr -> tail_status option

val site_id : t -> Ast.expr -> int option
(** The node's stable site id, assigned in table-insertion order
    starting at 0. Two tables that {!record} the same programs in the
    same order assign identical ids (independent of gensym'd names),
    which is what lets the provenance layer compare per-site censuses
    across execution engines. *)

val site_expr : t -> int -> Ast.expr option
(** Inverse of {!site_id}: the node a site id names (for labels and
    stuck-trace spans). *)

val seeded_sets : call_info -> int list -> Iset.t * Iset.t list
(** [seeded_sets ci rest_indices]: the [I_sfs] restriction sets for a
    shuffled evaluation order whose not-yet-evaluated subexpression
    indices are [rest_indices], in evaluation order. Returns the set for
    the frame created now and the sets for each subsequent frame (the
    analogue of [ltr_first, ltr_rest] for an arbitrary order), built by
    one O(length) right-fold over the interned per-element sets. *)

val intern : t -> Iset.t -> Iset.t
(** Hash-cons a set: the canonical physically-shared representative of
    any set with these elements. *)

val nodes : t -> int
(** Annotated AST nodes. *)

val distinct_sets : t -> int
(** Interned free-variable sets — the allocation count the hash-consing
    bounds. *)
