module Ast = Tailspace_ast.Ast
module Iset = Ast.Iset

type tail_status = Tail | Nontail | Both

type call_info = {
  elems : Iset.t array;
  ltr_first : Iset.t;
  ltr_rest : Iset.t list;
  rtl_first : Iset.t;
  rtl_rest : Iset.t list;
}

(* [seen_tail]/[seen_nontail] track which polarities a node has been
   visited under; [tail] is derived from them. A node flips to [Both] at
   most once, so each node is walked at most twice and the whole pass
   stays O(|P|). *)
type node = {
  fv : Iset.t;
  mutable tail : tail_status;
  mutable seen_tail : bool;
  mutable seen_nontail : bool;
  call : call_info option;
  branch : Iset.t option;
  site : int;
      (* stable node id, assigned in table-insertion (post-)order: two
         machines that record the same programs in the same order agree
         on every id even when gensym'd identifier names differ — the
         provenance layer's cross-engine census key *)
}

type info = {
  fv : Iset.t;
  tail : tail_status;
  call : call_info option;
  branch : Iset.t option;
}

(* Keyed by physical identity: the expander never rebuilds equal nodes
   it could share, and structural keys would conflate distinct
   occurrences whose tail positions differ. *)
module Node_table = Hashtbl.Make (struct
  type t = Ast.expr

  let equal = ( == )
  let hash = Hashtbl.hash
end)

type t = {
  table : node Node_table.t;
  interned : (string, Iset.t) Hashtbl.t;
  sites : (int, Ast.expr) Hashtbl.t;  (* site id -> the node it names *)
  mutable next_site : int;
}

let create () =
  {
    table = Node_table.create 256;
    interned = Hashtbl.create 64;
    sites = Hashtbl.create 256;
    next_site = 0;
  }

let intern t s =
  let key = String.concat "\x00" (Iset.elements s) in
  match Hashtbl.find_opt t.interned key with
  | Some canonical -> canonical
  | None ->
      Hashtbl.add t.interned key s;
      s

(* Restriction sets for one call: [sets.(k)] = FV of subexpressions
   [k..n-1] for suffixes, [0..k-1] for prefixes; both have the empty set
   at the degenerate index so the frame created for the last pending
   subexpression is restricted to nothing. *)
let make_call_info t elems =
  let n = Array.length elems in
  let suffix = Array.make (n + 1) Iset.empty in
  for k = n - 1 downto 0 do
    suffix.(k) <- intern t (Iset.union elems.(k) suffix.(k + 1))
  done;
  let prefix = Array.make (n + 1) Iset.empty in
  for k = 1 to n do
    prefix.(k) <- intern t (Iset.union prefix.(k - 1) elems.(k - 1))
  done;
  (* Left-to-right evaluates indices [0; 1; ...]: when index [k] becomes
     pending the frame keeps FV of the still-unevaluated suffix
     [k+1..n-1]. Right-to-left evaluates [n-1; n-2; ...] and keeps the
     prefix [0..n-k-2]. The [_rest] lists line up with the machine's
     [remaining] list: one set per later frame, ending in the empty
     set. *)
  {
    elems;
    ltr_first = suffix.(1);
    ltr_rest = List.init (n - 1) (fun k -> suffix.(k + 2));
    rtl_first = prefix.(n - 1);
    rtl_rest = List.init (n - 1) (fun k -> prefix.(n - 2 - k));
  }

let seeded_sets ci rest_indices =
  let rec build = function
    | [] -> (Iset.empty, [])
    | i :: rest ->
        let after, sets = build rest in
        (Iset.union ci.elems.(i) after, after :: sets)
  in
  build rest_indices

let rec walk t ~tail e =
  match Node_table.find_opt t.table e with
  | Some node ->
      let fresh = if tail then not node.seen_tail else not node.seen_nontail in
      if fresh then begin
        if tail then node.seen_tail <- true else node.seen_nontail <- true;
        if node.seen_tail && node.seen_nontail then node.tail <- Both;
        (* The new polarity must reach the subtree: children whose
           position depends on this node's may flip to [Both]. *)
        walk_children t ~tail e
      end
  | None ->
      walk_children t ~tail e;
      let fv_of child =
        match Node_table.find_opt t.table child with
        | Some n -> n.fv
        | None -> assert false
      in
      let fv =
        intern t
          (match e with
          | Ast.Quote _ -> Iset.empty
          | Ast.Var x -> Iset.singleton x
          | Ast.Lambda { params; rest; body } ->
              let bound =
                match rest with Some r -> r :: params | None -> params
              in
              Iset.diff (fv_of body) (Iset.of_list bound)
          | Ast.If (e0, e1, e2) ->
              Iset.union (fv_of e0) (Iset.union (fv_of e1) (fv_of e2))
          | Ast.Set (x, e0) -> Iset.add x (fv_of e0)
          | Ast.Call (f, args) ->
              List.fold_left
                (fun acc a -> Iset.union acc (fv_of a))
                (fv_of f) args)
      in
      let branch =
        match e with
        | Ast.If (_, e1, e2) ->
            Some (intern t (Iset.union (fv_of e1) (fv_of e2)))
        | _ -> None
      in
      let call =
        match e with
        | Ast.Call (f, args) ->
            let elems = Array.of_list (List.map fv_of (f :: args)) in
            Some (make_call_info t elems)
        | _ -> None
      in
      let site = t.next_site in
      t.next_site <- site + 1;
      Hashtbl.add t.sites site e;
      Node_table.add t.table e
        {
          fv;
          tail = (if tail then Tail else Nontail);
          seen_tail = tail;
          seen_nontail = not tail;
          call;
          branch;
          site;
        }

and walk_children t ~tail e =
  match e with
  | Ast.Quote _ | Ast.Var _ -> ()
  | Ast.Lambda { body; _ } -> walk t ~tail:true body
  | Ast.If (e0, e1, e2) ->
      walk t ~tail:false e0;
      walk t ~tail e1;
      walk t ~tail e2
  | Ast.Set (_, e0) -> walk t ~tail:false e0
  | Ast.Call (f, args) ->
      walk t ~tail:false f;
      List.iter (walk t ~tail:false) args

let record t e = walk t ~tail:false e

let find t e =
  match Node_table.find_opt t.table e with
  | None -> None
  | Some { fv; tail; call; branch; _ } -> Some { fv; tail; call; branch }

let free_vars t e =
  match Node_table.find_opt t.table e with
  | None -> None
  | Some n -> Some n.fv

let tail_status t e =
  match Node_table.find_opt t.table e with
  | None -> None
  | Some n -> Some n.tail

let site_id t e =
  match Node_table.find_opt t.table e with
  | None -> None
  | Some n -> Some n.site

let site_expr t site = Hashtbl.find_opt t.sites site

let nodes t = Node_table.length t.table
let distinct_sets t = Hashtbl.length t.interned
