module Json = Tailspace_telemetry.Telemetry.Json
module Tel = Tailspace_telemetry.Telemetry
module Res = Tailspace_resilience.Resilience
module Pool = Tailspace_parallel.Pool
module M = Tailspace_core.Machine
module SM = Tailspace_core.Space_model
module R = Tailspace_harness.Runner
module Census = Tailspace_core.Census
module Expand = Tailspace_expander.Expand
module Reader = Tailspace_sexp.Reader
module Prov = Tailspace_provenance.Provenance

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)

type policy = {
  max_fuel : int;
  max_timeout_s : float;
  max_space_words : int;
  max_output_bytes : int;
  max_sweep_points : int;
}

let default_policy =
  {
    max_fuel = 5_000_000;
    max_timeout_s = 10.;
    max_space_words = 50_000_000;
    max_output_bytes = 1 lsl 20;
    max_sweep_points = 32;
  }

type config = {
  jobs : int;
  queue_capacity : int;
  tenant_rate : float;
  tenant_burst : float;
  max_frame : int;
  frame_timeout_s : float;
  drain_timeout_s : float;
  policy : policy;
  now : unit -> float;
}

let default_config =
  {
    jobs = Pool.default_jobs ();
    queue_capacity = 256;
    tenant_rate = 50.;
    tenant_burst = 100.;
    max_frame = 1 lsl 20;
    frame_timeout_s = 10.;
    drain_timeout_s = 30.;
    policy = default_policy;
    now = Res.Clock.now;
  }

(* ------------------------------------------------------------------ *)
(* Connections                                                         *)

type conn = {
  fd : Unix.file_descr;
  wmutex : Mutex.t;  (* serializes response frames *)
  cmutex : Mutex.t;  (* guards [alive]/[inflight]/[closed] *)
  mutable alive : bool;  (* writes still allowed *)
  mutable closed : bool;  (* fd actually closed *)
  mutable inflight : int;  (* admitted requests not yet responded *)
}

type job = {
  j_conn : conn;
  j_id : Json.t;
  j_tenant : string;
  j_work : Protocol.work;
  j_config : M.Config.t;
  j_measure : SM.t list;
  j_budget : Res.Budget.t;
}

type outcome = Drained | Forced

type t = {
  cfg : config;
  ep : Protocol.endpoint;
  listen_fd : Unix.file_descr;
  stopping : bool Atomic.t;
  queue : job Admission.t;
  pool : Pool.t;
  counters : Tel.Counters.t;
  smutex : Mutex.t;  (* guards [merged], [inflight_jobs], [conns] *)
  slot_free : Condition.t;
  mutable merged : Tel.summary;
  mutable inflight_jobs : int;
  mutable dispatcher_done : bool;
  mutable conns : conn list;
  started_at : float;
}

(* Tenant names come off the wire; bound what they can do to the
   counter group and the bucket table. *)
let sanitize_tenant name =
  let ok =
    String.length name > 0
    && String.length name <= 24
    && String.for_all
         (function
           | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> true
           | _ -> false)
         name
  in
  if ok then name else "other"

let create ?(config = default_config) ep =
  (* a peer that disappears mid-write must surface as EPIPE, not kill
     the process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let listen_fd = Protocol.listen ep in
  {
    cfg = config;
    ep;
    listen_fd;
    stopping = Atomic.make false;
    queue =
      Admission.create ~capacity:config.queue_capacity
        ~tenant_rate:config.tenant_rate ~tenant_burst:config.tenant_burst ();
    pool = Pool.create ~jobs:config.jobs ();
    counters = Tel.Counters.create ();
    smutex = Mutex.create ();
    slot_free = Condition.create ();
    merged = Tel.merge_summaries [];
    inflight_jobs = 0;
    dispatcher_done = false;
    conns = [];
    started_at = config.now ();
  }

let port t = Protocol.bound_port t.listen_fd
let endpoint t = t.ep
let shutdown t = Atomic.set t.stopping true
let is_stopping t = Atomic.get t.stopping

(* ------------------------------------------------------------------ *)
(* Responding                                                          *)

let send t conn json =
  Mutex.lock conn.wmutex;
  let sent =
    Mutex.lock conn.cmutex;
    let alive = conn.alive in
    Mutex.unlock conn.cmutex;
    if not alive then false
    else
      try
        Protocol.write_frame conn.fd json;
        true
      with Unix.Unix_error _ | Sys_error _ ->
        Mutex.lock conn.cmutex;
        conn.alive <- false;
        Mutex.unlock conn.cmutex;
        false
  in
  Mutex.unlock conn.wmutex;
  if not sent then Tel.Counters.incr t.counters "write_failures";
  sent

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)

let policy_budget p =
  Res.Budget.make ~fuel:p.max_fuel ~timeout_s:p.max_timeout_s
    ~space_words:p.max_space_words ~output_bytes:p.max_output_bytes ()

(* Per-model figures live under "peaks" (raw peaks) and
   "space_consumption_by_model" (|P| folded in, per Definition 23);
   models the point did not measure are omitted from both objects, not
   emitted as null, so partially-measured sweeps degrade cleanly on the
   client. The flat headline fields stay for compatibility. *)
let measurement_fields (m : R.measurement) =
  let by_model f =
    Json.Obj
      (List.filter_map
         (fun model ->
           Option.map (fun v -> (SM.name model, Json.Int v)) (f model))
         SM.all)
  in
  [
    ("steps", Json.Int m.R.steps);
    ("space_consumption", Json.Int m.R.space);
    ("peak_space", Json.Int (R.peak_space m));
    ("gc_runs", Json.Int m.R.gc_runs);
    ("peaks", by_model (R.peak_of m));
    ("space_consumption_by_model", by_model (R.consumption m));
  ]

let status_of_measurement (m : R.measurement) =
  match m.R.status with
  | R.Answer a ->
      ( 0,
        "done",
        [ ("answer", Json.Str a); ("error", Json.Null); ("abort", Json.Null) ]
      )
  | R.Stuck msg ->
      ( 1,
        "stuck",
        [
          ("answer", Json.Null);
          ("error", Json.Str msg);
          ("abort", Json.Null);
        ] )
  | R.Aborted reason ->
      ( 1,
        "aborted",
        [
          ("answer", Json.Null);
          ("error", Json.Str (Res.abort_reason_message reason));
          ("abort", Res.abort_reason_to_json reason);
        ] )

let note_summary t (m : R.measurement) =
  match m.R.summary with
  | None -> ()
  | Some s ->
      Mutex.lock t.smutex;
      t.merged <- Tel.merge_summaries [ t.merged; s ];
      Mutex.unlock t.smutex

let outcome_counter_key (m : R.measurement) =
  match m.R.status with
  | R.Answer _ -> "responses.done"
  | R.Stuck _ -> "responses.stuck"
  | R.Aborted reason -> "responses.aborted." ^ Res.abort_reason_name reason

(* Parse errors are the client's fault (status 2), like the CLI's
   exit-2 contract for unreadable sources. *)
let parse_program source =
  match Expand.program_of_string source with
  | program -> Ok program
  | exception Reader.Parse_error e ->
      Error (Format.asprintf "parse error: %a" Reader.pp_error e)
  | exception Expand.Expand_error e ->
      Error (Format.asprintf "expand error: %a" Expand.pp_error e)

let eval_work t job =
  let policy = t.cfg.policy in
  let budget = Res.Budget.clamp ~limit:(policy_budget policy) job.j_budget in
  let opts = M.Run_opts.make ~budget ~measure:job.j_measure () in
  match job.j_work with
  | Protocol.Evaluate { program; n } -> (
      match parse_program program with
      | Error m -> Protocol.error_response ~id:job.j_id m
      | Ok program ->
          let m =
            R.run_once ~opts ~collect_telemetry:true ~config:job.j_config
              ~program ~n ()
          in
          note_summary t m;
          Tel.Counters.incr t.counters (outcome_counter_key m);
          let status, outcome, fields = status_of_measurement m in
          Protocol.response ~id:job.j_id ~status ~outcome
            ~fields:
              (("op", Json.Str "evaluate") :: (fields @ measurement_fields m))
            ())
  | Protocol.Census { program; n } -> (
      match parse_program program with
      | Error m -> Protocol.error_response ~id:job.j_id m
      | Ok program ->
          let census = Census.create () in
          let opts =
            M.Run_opts.make ~budget ~measure:job.j_measure ~provenance:census ()
          in
          let m =
            R.run_once ~opts ~collect_telemetry:true ~config:job.j_config
              ~program ~n ()
          in
          note_summary t m;
          Tel.Counters.incr t.counters (outcome_counter_key m);
          let status, outcome, fields = status_of_measurement m in
          let census_json =
            match Census.flat_census census ~peak:(R.peak_space m) with
            | Some c -> Prov.to_json c
            | None -> Json.Null
          in
          Protocol.response ~id:job.j_id ~status ~outcome
            ~fields:
              (("op", Json.Str "census")
              :: ("census", census_json)
              :: (fields @ measurement_fields m))
            ())
  | Protocol.Sweep { program; ns } -> (
      if List.length ns > policy.max_sweep_points then
        Protocol.error_response ~id:job.j_id
          (Printf.sprintf "sweep: at most %d points per request"
             policy.max_sweep_points)
      else
        match parse_program program with
        | Error m -> Protocol.error_response ~id:job.j_id m
        | Ok program ->
            (* serial within this worker: the pool is already ours, and
               nesting a map would deadlock it *)
            let points =
              R.sweep ~opts ~collect_telemetry:true ~config:job.j_config
                ~program ~ns ()
            in
            List.iter
              (fun m ->
                note_summary t m;
                Tel.Counters.incr t.counters (outcome_counter_key m))
              points;
            let all_answered = R.all_answered points in
            let point_json m =
              let status, outcome, fields = status_of_measurement m in
              Json.Obj
                (("n", Json.Int m.R.n)
                :: ("status", Json.Int status)
                :: ("outcome", Json.Str outcome)
                :: (fields @ measurement_fields m))
            in
            Protocol.response ~id:job.j_id
              ~status:(if all_answered then 0 else 1)
              ~outcome:(if all_answered then "done" else "degraded")
              ~fields:
                [
                  ("op", Json.Str "sweep");
                  ("points", Json.List (List.map point_json points));
                ]
              ())

let run_job t job =
  let response =
    (* Crashed is the supervisor's catch-all: no exception from a
       worker may take down the daemon or leak a connection without a
       response. *)
    try eval_work t job
    with e ->
      let reason = Res.Crashed (Printexc.to_string e) in
      Tel.Counters.incr t.counters "responses.crashed";
      Protocol.response ~id:job.j_id ~status:1 ~outcome:"aborted"
        ~fields:
          [
            ("answer", Json.Null);
            ("error", Json.Str (Res.abort_reason_message reason));
            ("abort", Res.abort_reason_to_json reason);
          ]
        ()
  in
  ignore (send t job.j_conn response);
  Mutex.lock job.j_conn.cmutex;
  job.j_conn.inflight <- job.j_conn.inflight - 1;
  Mutex.unlock job.j_conn.cmutex

(* ------------------------------------------------------------------ *)
(* Dispatcher: admission queue -> pool, without unbounded pool backlog *)

let dispatcher t =
  let max_outstanding = 2 * t.cfg.jobs in
  let rec loop () =
    match Admission.take t.queue with
    | None ->
        Mutex.lock t.smutex;
        t.dispatcher_done <- true;
        Mutex.unlock t.smutex
    | Some job ->
        Mutex.lock t.smutex;
        while t.inflight_jobs >= max_outstanding do
          Condition.wait t.slot_free t.smutex
        done;
        t.inflight_jobs <- t.inflight_jobs + 1;
        Mutex.unlock t.smutex;
        ignore
          (Pool.submit t.pool (fun () ->
               Fun.protect
                 ~finally:(fun () ->
                   Mutex.lock t.smutex;
                   t.inflight_jobs <- t.inflight_jobs - 1;
                   Condition.broadcast t.slot_free;
                   Mutex.unlock t.smutex)
                 (fun () -> run_job t job)));
        loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)

let stats_json t =
  Mutex.lock t.smutex;
  let merged = t.merged in
  let inflight = t.inflight_jobs in
  let open_conns =
    List.length (List.filter (fun c -> not c.closed) t.conns)
  in
  Mutex.unlock t.smutex;
  Json.Obj
    [
      ("uptime_s", Json.Float (t.cfg.now () -. t.started_at));
      ("jobs", Json.Int (Pool.jobs t.pool));
      ("queue_depth", Json.Int (Admission.depth t.queue));
      ( "queue_tenants",
        Json.Obj
          (List.map
             (fun (name, d) -> (name, Json.Int d))
             (Admission.tenant_depths t.queue)) );
      ("inflight", Json.Int inflight);
      ("connections_open", Json.Int open_conns);
      ("counters", Tel.Counters.to_json t.counters);
      ("telemetry", Tel.summary_to_json merged);
    ]

(* ------------------------------------------------------------------ *)
(* Per-connection reader                                               *)

let request_id_of json =
  match Json.member "id" json with Some id -> id | None -> Json.Null

let handle_request t conn json =
  Tel.Counters.incr t.counters "requests";
  match Protocol.request_of_json json with
  | Error msg ->
      Tel.Counters.incr t.counters "requests_bad";
      ignore (send t conn (Protocol.error_response ~id:(request_id_of json) msg))
  | Ok req -> (
      let tenant = sanitize_tenant req.Protocol.tenant in
      match (req.Protocol.probe, req.Protocol.work) with
      | Some `Health, _ ->
          ignore
            (send t conn
               (Protocol.response ~id:req.Protocol.id ~status:0 ~outcome:"ok"
                  ~fields:
                    [
                      ("queue_depth", Json.Int (Admission.depth t.queue));
                      ("stopping", Json.Bool (is_stopping t));
                    ]
                  ()))
      | Some `Stats, _ ->
          ignore
            (send t conn
               (Protocol.response ~id:req.Protocol.id ~status:0 ~outcome:"ok"
                  ~fields:[ ("stats", stats_json t) ]
                  ()))
      | None, Some work ->
          let job =
            {
              j_conn = conn;
              j_id = req.Protocol.id;
              j_tenant = tenant;
              j_work = work;
              j_config = req.Protocol.config;
              j_measure = req.Protocol.measure;
              j_budget = req.Protocol.budget;
            }
          in
          if is_stopping t then begin
            Tel.Counters.incr t.counters "rejected.shutting-down";
            ignore
              (send t conn
                 (Protocol.rejected_response ~id:job.j_id
                    ~reason:"shutting-down" ~retry_after_s:1.))
          end
          else begin
            Mutex.lock conn.cmutex;
            conn.inflight <- conn.inflight + 1;
            Mutex.unlock conn.cmutex;
            match Admission.offer t.queue ~now:(t.cfg.now ()) ~tenant job with
            | Ok () ->
                Tel.Counters.incr t.counters "admitted";
                Tel.Counters.incr t.counters
                  (Printf.sprintf "tenant.%s.admitted" tenant)
            | Error rej ->
                Mutex.lock conn.cmutex;
                conn.inflight <- conn.inflight - 1;
                Mutex.unlock conn.cmutex;
                let reason = Admission.reject_reason rej in
                Tel.Counters.incr t.counters ("rejected." ^ reason);
                Tel.Counters.incr t.counters
                  (Printf.sprintf "tenant.%s.rejected" tenant);
                ignore
                  (send t conn
                     (Protocol.rejected_response ~id:job.j_id ~reason
                        ~retry_after_s:(Admission.reject_retry_after_s rej)))
          end
      | None, None ->
          (* request_of_json never produces this shape *)
          Tel.Counters.incr t.counters "requests_bad";
          ignore
            (send t conn
               (Protocol.error_response ~id:req.Protocol.id "malformed request")))

(* Close the fd once every admitted request has answered (bounded
   wait: a worker holding the last response can lag the reader's
   exit). *)
let finish_conn t conn =
  let deadline = Unix.gettimeofday () +. t.cfg.drain_timeout_s in
  let rec wait () =
    Mutex.lock conn.cmutex;
    let busy = conn.inflight > 0 in
    Mutex.unlock conn.cmutex;
    if busy && Unix.gettimeofday () < deadline then begin
      Thread.delay 0.01;
      wait ()
    end
  in
  wait ();
  Mutex.lock conn.cmutex;
  conn.alive <- false;
  let was_closed = conn.closed in
  conn.closed <- true;
  Mutex.unlock conn.cmutex;
  if not was_closed then try Unix.close conn.fd with Unix.Unix_error _ -> ()

let conn_loop t conn =
  let rec loop () =
    match
      Protocol.read_frame ~max_frame:t.cfg.max_frame
        ~frame_timeout_s:t.cfg.frame_timeout_s
        ~give_up:(fun () -> is_stopping t)
        conn.fd
    with
    | Ok json ->
        handle_request t conn json;
        loop ()
    | Error (Protocol.Closed | Protocol.Idle_closed) -> ()
    | Error Protocol.Truncated ->
        Tel.Counters.incr t.counters "protocol_errors"
    | Error ((Protocol.Oversized _ | Protocol.Bad_json _ | Protocol.Timed_out) as e)
      ->
        (* typed protocol error, then drop the connection: the framing
           can no longer be trusted *)
        Tel.Counters.incr t.counters "protocol_errors";
        ignore (send t conn (Protocol.protocol_error_response e))
  in
  (try loop () with _ -> Tel.Counters.incr t.counters "reader_crashes");
  finish_conn t conn

(* ------------------------------------------------------------------ *)
(* Accept loop and lifecycle                                           *)

let run t =
  let dispatcher_thread = Thread.create dispatcher t in
  (* accept until shutdown *)
  let rec accept_loop () =
    if is_stopping t then ()
    else begin
      (match Unix.select [ t.listen_fd ] [] [] 0.1 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
          match Unix.accept t.listen_fd with
          | fd, _ ->
              let conn =
                {
                  fd;
                  wmutex = Mutex.create ();
                  cmutex = Mutex.create ();
                  alive = true;
                  closed = false;
                  inflight = 0;
                }
              in
              Tel.Counters.incr t.counters "connections";
              Mutex.lock t.smutex;
              t.conns <- conn :: t.conns;
              Mutex.unlock t.smutex;
              ignore (Thread.create (conn_loop t) conn)
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      accept_loop ()
    end
  in
  accept_loop ();
  (* -------- drain -------- *)
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (match t.ep with
  | Protocol.Unix_domain path -> (
      try Unix.unlink path with Unix.Unix_error _ -> ())
  | Protocol.Tcp _ -> ());
  (* stop admitting, let the dispatcher finish the backlog *)
  Admission.close t.queue;
  let deadline = t.cfg.now () +. t.cfg.drain_timeout_s in
  let check_drained () =
    Mutex.lock t.smutex;
    let d = t.dispatcher_done && t.inflight_jobs = 0 in
    Mutex.unlock t.smutex;
    d
  in
  let rec wait_drain () =
    if check_drained () then true
    else if t.cfg.now () >= deadline then false
    else begin
      Thread.delay 0.02;
      wait_drain ()
    end
  in
  let drained = wait_drain () in
  if drained then begin
    Thread.join dispatcher_thread;
    Pool.shutdown t.pool
  end;
  (* close whatever connections remain; their reader threads unblock
     on the closed fd and exit *)
  Mutex.lock t.smutex;
  let conns = t.conns in
  Mutex.unlock t.smutex;
  List.iter
    (fun conn ->
      Mutex.lock conn.cmutex;
      conn.alive <- false;
      let was_closed = conn.closed in
      conn.closed <- true;
      Mutex.unlock conn.cmutex;
      if not was_closed then
        try Unix.close conn.fd with Unix.Unix_error _ -> ())
    conns;
  if drained then Drained else Forced
