module Json = Tailspace_telemetry.Telemetry.Json
module Res = Tailspace_resilience.Resilience
module M = Tailspace_core.Machine

type report = {
  seed : int;
  clients : int;
  requests_per_client : int;
  poison_pct : int;
  wall_s : float;
  throughput_rps : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
  outcomes : (string * int) list;
  rejected_final : int;
  retries : int;
  resets : int;
  unanswered : int;
}

let report_to_json r =
  Json.Obj
    [
      ("tool", Json.Str "schemesim loadgen");
      ("seed", Json.Int r.seed);
      ("clients", Json.Int r.clients);
      ("requests_per_client", Json.Int r.requests_per_client);
      ("poison_pct", Json.Int r.poison_pct);
      ("wall_s", Json.Float r.wall_s);
      ("throughput_rps", Json.Float r.throughput_rps);
      ( "latency_ms",
        Json.Obj
          [
            ("p50", Json.Float r.p50_ms);
            ("p95", Json.Float r.p95_ms);
            ("p99", Json.Float r.p99_ms);
            ("max", Json.Float r.max_ms);
          ] );
      ( "outcomes",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) r.outcomes) );
      ("rejected_final", Json.Int r.rejected_final);
      ("retries", Json.Int r.retries);
      ("resets", Json.Int r.resets);
      ("unanswered", Json.Int r.unanswered);
    ]

(* ------------------------------------------------------------------ *)
(* Seeded workload mix                                                 *)

(* the same LCG as Resilience.Fault, so runs are reproducible from the
   report's seed alone *)
let lcg_next state =
  state := ((!state * 0x5DEECE66D) + 0xB) land 0xFFFFFFFFFFFF;
  !state

let rand_int state bound = lcg_next state mod bound

let healthy_countdown =
  {|
(define (loop n) (if (zero? n) 'done (loop (- n 1))))
loop
|}

let healthy_sum =
  {|
(define (sum n acc) (if (zero? n) acc (sum (- n 1) (+ acc n))))
(define (go n) (sum n 0))
go
|}

let healthy_even_odd =
  {|
(define (ev n) (if (zero? n) #t (od (- n 1))))
(define (od n) (if (zero? n) #f (ev (- n 1))))
ev
|}

let poison_spin =
  {|
(define (spin n) (spin (+ n 1)))
spin
|}

let poison_grow =
  {|
(define (grow n acc) (if (zero? n) (length acc) (grow (- n 1) (cons n acc))))
(define (go n) (grow n '()))
go
|}

let poison_flood =
  {|
(define (flood n) (if (zero? n) 'done (begin (display n) (flood (- n 1)))))
flood
|}

let poison_stuck = {|
(define (bad n) (car n))
bad
|}

let poison_garbage = "((define (oops"

(* one logical request: the JSON to send and the retry policy has the
   rest *)
type shot = { sh_label : string; sh_json : Json.t }

let request ~id ~tenant ~op ~program ~n ?ns ?budget () =
  let fields =
    [
      ("id", Json.Str id);
      ("op", Json.Str op);
      ("tenant", Json.Str tenant);
      ("program", Json.Str program);
    ]
    @ (match ns with
      | Some ns -> [ ("ns", Json.List (List.map (fun k -> Json.Int k) ns)) ]
      | None -> [ ("n", Json.Int n) ])
    @
    match budget with
    | Some b -> [ ("budget", Res.Budget.to_json b) ]
    | None -> []
  in
  Json.Obj fields

let pick_shot ~rng ~poison_pct ~tenant ~id =
  if rand_int rng 100 < poison_pct then
    (* poison: every abort reason plus an unparsable source *)
    match rand_int rng 6 with
    | 0 ->
        {
          sh_label = "poison-fuel";
          sh_json =
            request ~id ~tenant ~op:"evaluate" ~program:poison_spin ~n:0
              ~budget:(Res.Budget.make ~fuel:20_000 ()) ();
        }
    | 1 ->
        {
          sh_label = "poison-space";
          sh_json =
            request ~id ~tenant ~op:"evaluate" ~program:poison_grow ~n:200_000
              ~budget:(Res.Budget.make ~space_words:20_000 ~fuel:5_000_000 ())
              ();
        }
    | 2 ->
        {
          sh_label = "poison-deadline";
          sh_json =
            request ~id ~tenant ~op:"evaluate" ~program:poison_spin ~n:0
              ~budget:(Res.Budget.make ~timeout_s:0.05 ()) ();
        }
    | 3 ->
        {
          sh_label = "poison-output";
          sh_json =
            request ~id ~tenant ~op:"evaluate" ~program:poison_flood
              ~n:1_000_000
              ~budget:(Res.Budget.make ~output_bytes:512 ~fuel:5_000_000 ())
              ();
        }
    | 4 ->
        {
          sh_label = "poison-stuck";
          sh_json =
            request ~id ~tenant ~op:"evaluate" ~program:poison_stuck ~n:7
              ~budget:(Res.Budget.make ~fuel:10_000 ()) ();
        }
    | _ ->
        {
          sh_label = "poison-garbage";
          sh_json =
            request ~id ~tenant ~op:"evaluate" ~program:poison_garbage ~n:1
              ~budget:(Res.Budget.make ~fuel:10_000 ()) ();
        }
  else
    let budget = Res.Budget.make ~fuel:2_000_000 ~timeout_s:5. () in
    match rand_int rng 5 with
    | 0 ->
        {
          sh_label = "countdown";
          sh_json =
            request ~id ~tenant ~op:"evaluate" ~program:healthy_countdown
              ~n:(100 + rand_int rng 400)
              ~budget ();
        }
    | 1 ->
        {
          sh_label = "sum";
          sh_json =
            request ~id ~tenant ~op:"evaluate" ~program:healthy_sum
              ~n:(100 + rand_int rng 400)
              ~budget ();
        }
    | 2 ->
        {
          sh_label = "even-odd-sweep";
          sh_json =
            request ~id ~tenant ~op:"sweep" ~program:healthy_even_odd ~n:0
              ~ns:[ 10; 20; 30 ] ~budget ();
        }
    | 3 ->
        {
          sh_label = "census";
          sh_json =
            request ~id ~tenant ~op:"census" ~program:healthy_sum
              ~n:(50 + rand_int rng 100)
              ~budget ();
        }
    | _ ->
        {
          sh_label = "health";
          sh_json =
            Json.Obj
              [
                ("id", Json.Str id);
                ("op", Json.Str "health");
                ("tenant", Json.Str tenant);
              ];
        }

(* ------------------------------------------------------------------ *)
(* Clients                                                             *)

type client_tally = {
  mutable latencies_ms : float list;
  outcomes : (string, int) Hashtbl.t;
  mutable c_rejected_final : int;
  mutable c_retries : int;
  mutable c_resets : int;
  mutable c_unanswered : int;
}

let bump_n tbl key n =
  match Hashtbl.find_opt tbl key with
  | Some m -> Hashtbl.replace tbl key (m + n)
  | None -> Hashtbl.add tbl key n

let bump tbl key = bump_n tbl key 1

let outcome_key (reply : Protocol.reply) =
  match (reply.Protocol.r_outcome, reply.Protocol.r_abort_tag) with
  | "aborted", Some tag -> "aborted:" ^ tag
  | outcome, _ -> outcome

let client_loop ~endpoint ~requests ~poison_pct ~seed ~max_retries ~tenant
    ~index tally =
  let rng = ref ((seed + (index * 7919)) land 0xFFFFFFFFFFFF) in
  ignore (lcg_next rng);
  let fd = ref (Protocol.connect endpoint) in
  let reconnect () =
    (try Unix.close !fd with Unix.Unix_error _ -> ());
    fd := Protocol.connect endpoint
  in
  let exchange json =
    Protocol.write_frame !fd json;
    Protocol.read_frame ~frame_timeout_s:30. !fd
  in
  for i = 1 to requests do
    let id = Printf.sprintf "c%d-r%d" index i in
    let shot = pick_shot ~rng ~poison_pct ~tenant ~id in
    let backoff = Res.Backoff.make ~base_s:0.02 ~max_s:0.5 ~seed:(seed + i) () in
    let rec attempt retries_left =
      let t0 = Unix.gettimeofday () in
      match exchange shot.sh_json with
      | exception (Unix.Unix_error _ | Sys_error _) ->
          tally.c_resets <- tally.c_resets + 1;
          tally.c_unanswered <- tally.c_unanswered + 1;
          reconnect ()
      | Error _ ->
          tally.c_resets <- tally.c_resets + 1;
          tally.c_unanswered <- tally.c_unanswered + 1;
          reconnect ()
      | Ok json -> (
          match Protocol.reply_of_json json with
          | Error _ ->
              (* a frame that parses as JSON but not as a reply is still
                 an answer for accounting, just a malformed one *)
              bump tally.outcomes "malformed"
          | Ok reply
            when reply.Protocol.r_outcome = "rejected" && retries_left > 0 ->
              tally.c_retries <- tally.c_retries + 1;
              let wait =
                Float.max (Res.Backoff.next backoff)
                  (Option.value ~default:0. reply.Protocol.r_retry_after_s)
              in
              Thread.delay wait;
              attempt (retries_left - 1)
          | Ok reply ->
              let ms = (Unix.gettimeofday () -. t0) *. 1000. in
              tally.latencies_ms <- ms :: tally.latencies_ms;
              let key = outcome_key reply in
              bump tally.outcomes key;
              if key = "rejected" then
                tally.c_rejected_final <- tally.c_rejected_final + 1)
    in
    attempt max_retries
  done;
  try Unix.close !fd with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* The run                                                             *)

let percentile sorted p =
  match sorted with
  | [||] -> 0.
  | a ->
      let n = Array.length a in
      let idx =
        Float.to_int (Float.round (p /. 100. *. float_of_int (n - 1)))
      in
      a.(Int.max 0 (Int.min (n - 1) idx))

let run ?(clients = 4) ?(requests_per_client = 25) ?(poison_pct = 20)
    ?(seed = 1) ?(max_retries = 3) ?(tenants = 3) endpoint =
  let tallies =
    Array.init clients (fun _ ->
        {
          latencies_ms = [];
          outcomes = Hashtbl.create 16;
          c_rejected_final = 0;
          c_retries = 0;
          c_resets = 0;
          c_unanswered = 0;
        })
  in
  let t0 = Unix.gettimeofday () in
  let threads =
    List.init clients (fun index ->
        let tenant = Printf.sprintf "tenant-%d" (index mod Int.max 1 tenants) in
        Thread.create
          (fun () ->
            try
              client_loop ~endpoint ~requests:requests_per_client ~poison_pct
                ~seed ~max_retries ~tenant ~index tallies.(index)
            with _ ->
              (* a client crash loses its remaining requests; count them
                 as unanswered rather than dying silently *)
              let answered = List.length tallies.(index).latencies_ms in
              tallies.(index).c_unanswered <-
                tallies.(index).c_unanswered
                + Int.max 0 (requests_per_client - answered))
          ())
  in
  List.iter Thread.join threads;
  let wall_s = Float.max 1e-9 (Unix.gettimeofday () -. t0) in
  let latencies =
    Array.of_list (Array.to_list tallies |> List.concat_map (fun t -> t.latencies_ms))
  in
  Array.sort Float.compare latencies;
  let outcomes = Hashtbl.create 16 in
  Array.iter
    (fun t -> Hashtbl.iter (fun k v -> bump_n outcomes k v) t.outcomes)
    tallies;
  let sum f = Array.fold_left (fun acc t -> acc + f t) 0 tallies in
  let answered = Array.length latencies in
  {
    seed;
    clients;
    requests_per_client;
    poison_pct;
    wall_s;
    throughput_rps = float_of_int answered /. wall_s;
    p50_ms = percentile latencies 50.;
    p95_ms = percentile latencies 95.;
    p99_ms = percentile latencies 99.;
    max_ms = (if answered = 0 then 0. else latencies.(answered - 1));
    outcomes =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) outcomes []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b);
    rejected_final = sum (fun t -> t.c_rejected_final);
    retries = sum (fun t -> t.c_retries);
    resets = sum (fun t -> t.c_resets);
    unanswered = sum (fun t -> t.c_unanswered);
  }
