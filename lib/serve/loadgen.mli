(** Closed-loop load generator for the evaluation service.

    [clients] threads each connect once and issue
    [requests_per_client] requests back to back (closed loop: the next
    request waits for the previous reply). The workload mix is drawn
    from a seeded generator and includes, at [poison_pct] percent, the
    poison programs the daemon must survive: fuel burners, space
    blow-ups, deadline busters, output floods, stuck states, and
    unparsable sources. Rejected requests ([retry_after_s]) are retried
    with seeded exponential backoff up to [max_retries] times.

    The report is the acceptance surface for `schemesim loadgen`: every
    request must end in a typed response ([unanswered = 0]) and no
    connection may be reset by the server ([resets = 0]) for the run to
    count as clean. *)

type report = {
  seed : int;
  clients : int;
  requests_per_client : int;
  poison_pct : int;
  wall_s : float;
  throughput_rps : float;  (** answered requests per second *)
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
  outcomes : (string * int) list;
      (** histogram over the error taxonomy: ["done"], ["ok"],
          ["stuck"], ["aborted:<reason>"], ["error"], ["rejected"] —
          sorted by key *)
  rejected_final : int;  (** rejected even after retries *)
  retries : int;  (** re-sends triggered by rejections *)
  resets : int;  (** connections dropped mid-conversation *)
  unanswered : int;  (** requests that never got a typed response *)
}

val report_to_json : report -> Tailspace_telemetry.Telemetry.Json.t

val run :
  ?clients:int ->
  ?requests_per_client:int ->
  ?poison_pct:int ->
  ?seed:int ->
  ?max_retries:int ->
  ?tenants:int ->
  Protocol.endpoint ->
  report
(** Defaults: 4 clients, 25 requests each, 20% poison, seed 1, up to 3
    retries per rejection, 3 distinct tenant names. Latency percentiles
    are measured per answered request on the real clock. *)
