(** The evaluation service's wire protocol: length-prefixed JSON frames
    over a stream socket.

    A frame is a 4-byte big-endian payload length followed by that many
    bytes of JSON. The framing layer is written for a hostile peer —
    truncated frames, oversized length headers, garbage bytes, and
    slow-loris partial writes all surface as a typed {!read_error}, and
    never as an exception: the daemon turns each into a typed protocol
    error response or a clean close. *)

module Json := Tailspace_telemetry.Telemetry.Json
module M := Tailspace_core.Machine
module SM := Tailspace_core.Space_model
module Res := Tailspace_resilience.Resilience

(** {1 Endpoints} *)

type endpoint =
  | Tcp of string * int  (** host, port (0 = ephemeral) *)
  | Unix_domain of string  (** socket path *)

val endpoint_name : endpoint -> string

val listen : ?backlog:int -> endpoint -> Unix.file_descr
(** Bind and listen. TCP sets [SO_REUSEADDR]; a Unix-domain path is
    unlinked first. Raises [Unix.Unix_error] on failure. *)

val connect : endpoint -> Unix.file_descr
(** Client side of {!listen}. *)

val bound_port : Unix.file_descr -> int option
(** The actual port of a listening TCP socket ([Some] after binding
    port 0), [None] for Unix-domain sockets. *)

(** {1 Framing} *)

val default_max_frame : int
(** 8 MiB: no legitimate request or response comes close. *)

type read_error =
  | Closed  (** EOF at a frame boundary: the peer hung up cleanly *)
  | Idle_closed  (** the [give_up] poll fired while waiting for a frame *)
  | Truncated  (** EOF in the middle of a frame *)
  | Oversized of int  (** declared payload length above [max_frame] *)
  | Bad_json of string  (** complete frame, unparsable payload *)
  | Timed_out
      (** the frame did not complete within [frame_timeout_s] of its
          first byte — the slow-loris guard *)

val read_error_message : read_error -> string

val read_frame :
  ?max_frame:int ->
  ?frame_timeout_s:float ->
  ?give_up:(unit -> bool) ->
  Unix.file_descr ->
  (Json.t, read_error) result
(** Read one frame. While waiting for the first byte the [give_up]
    predicate is polled a few times a second (the server's drain
    signal); once a frame has started, its remaining bytes must arrive
    within [frame_timeout_s] (default 10s) measured on the real
    clock. *)

val write_frame : Unix.file_descr -> Json.t -> unit
(** Write one frame, looping over partial writes. Raises
    [Unix.Unix_error] (e.g. [EPIPE]) if the peer is gone; callers
    serialize writes per connection. *)

(** {1 Requests} *)

type work =
  | Evaluate of { program : string; n : int }
      (** run [(program n)] under §12's convention *)
  | Sweep of { program : string; ns : int list }
  | Census of { program : string; n : int }
      (** evaluate plus a per-site space census of the peak *)

type request = {
  id : Json.t;  (** echoed verbatim in the response; [Null] if absent *)
  tenant : string;  (** fair-queuing/quota key; default ["anonymous"] *)
  work : work option;  (** [None] for health/stats *)
  probe : [ `Health | `Stats ] option;
  config : M.Config.t;  (** variant/policy knobs the request selected *)
  measure : SM.t list;
      (** space models to measure, from the request's ["measure"]
          name list (normalized); default [[Flat]] *)
  budget : Res.Budget.t;  (** client ask — the server clamps it *)
}

val request_of_json : Json.t -> (request, string) result
(** Validates shape, op, variant/engine names, measure-model names, and
    budget fields. Unknown engines/variants/models and malformed fields
    are [Error] — the daemon answers these with a status-2 response.
    The vm-fast engine combined with any model beyond [Flat] is
    rejected (that tier compiles accounting out). *)

val request_to_json : request -> Json.t
(** Inverse (used by the load generator and tests). *)

(** {1 Responses}

    Every response carries the uniform status taxonomy mirroring the
    CLI exit codes: [0] the work completed ([done], [ok]); [1] the
    program failed in a structured way ([stuck], [aborted] with the
    abort-reason object); [2] the request itself was refused (parse or
    protocol errors, unknown ops, and admission rejections, which add
    [retry_after_s]). *)

val response :
  ?fields:(string * Json.t) list ->
  id:Json.t ->
  status:int ->
  outcome:string ->
  unit ->
  Json.t

val error_response : id:Json.t -> string -> Json.t
(** Status 2, outcome ["error"], with the message. *)

val protocol_error_response : read_error -> Json.t
(** Status 2, outcome ["protocol-error"] — sent (when the socket is
    still writable) before closing a connection whose framing broke. *)

val rejected_response :
  id:Json.t -> reason:string -> retry_after_s:float -> Json.t
(** Status 2, outcome ["rejected"], with the structured retry hint. *)

(** {1 Reading responses (client side)} *)

type reply = {
  r_status : int;
  r_outcome : string;
  r_answer : string option;
  r_error : string option;
  r_abort_tag : string option;  (** the abort-reason tag when aborted *)
  r_retry_after_s : float option;
  r_json : Json.t;  (** the whole response object *)
}

val reply_of_json : Json.t -> (reply, string) result
