(** Admission control for the evaluation service: a bounded queue with
    per-tenant fair queuing in front of the worker pool, and per-tenant
    token-bucket quotas.

    The contract is load shedding over unbounded latency: a request
    either enters the bounded queue or is rejected {e immediately} with
    a structured retry hint. Tenants drain round-robin, so one tenant
    flooding the queue cannot starve the others — its requests wait
    behind its own backlog, not everyone's.

    All time is passed in explicitly (seconds, from the caller's clock)
    so quota and fairness tests run on a fake clock without sleeping. *)

(** {1 Token buckets} *)

module Bucket : sig
  type t

  val create : rate:float -> burst:float -> now:float -> t
  (** [rate] tokens per second, up to [burst] banked. A non-positive
      [rate] disables the quota (every take succeeds). *)

  val try_take : t -> now:float -> (unit, float) result
  (** Take one token, refilling first. [Error retry_after_s] says when
      a token will next be available. *)

  val level : t -> now:float -> float
  (** Current token level (after refill), for stats. *)
end

(** {1 The fair bounded queue} *)

type reject =
  | Queue_full of { depth : int; capacity : int; retry_after_s : float }
  | Over_quota of { retry_after_s : float }
  | Closing  (** the server is draining; nothing new is admitted *)

val reject_reason : reject -> string
(** Short stable tag: ["queue-full"], ["over-quota"], ["shutting-down"]. *)

val reject_retry_after_s : reject -> float

type 'a t

val create :
  ?capacity:int ->
  ?tenant_rate:float ->
  ?tenant_burst:float ->
  ?shed_retry_s:float ->
  unit ->
  'a t
(** Defaults: capacity 256 queued requests total, 50 requests/s per
    tenant with a burst of 100, and a 0.25s retry hint when shedding on
    a full queue. *)

val offer : 'a t -> now:float -> tenant:string -> 'a -> (unit, reject) result
(** Non-blocking admission: charge the tenant's bucket, then enqueue
    onto the tenant's FIFO if the global bound allows. *)

val take : 'a t -> 'a option
(** Dequeue the next request, blocking while the queue is empty and
    open. Tenants with backlogs are served round-robin; within one
    tenant, FIFO. [None] once the queue is closed {e and} drained — the
    dispatcher's signal to exit after finishing the backlog. *)

val close : 'a t -> unit
(** Stop admitting ({!offer} returns [Closing]); {!take} keeps draining
    what was already admitted. Idempotent. *)

val depth : 'a t -> int
(** Requests currently queued (all tenants). *)

val tenant_depths : 'a t -> (string * int) list
(** Per-tenant backlog sizes, sorted by tenant, empty queues omitted. *)
