(* ------------------------------------------------------------------ *)
(* Token buckets                                                       *)

module Bucket = struct
  type t = {
    rate : float;
    burst : float;
    mutable tokens : float;
    mutable last : float;
  }

  let create ~rate ~burst ~now = { rate; burst; tokens = burst; last = now }

  let refill t ~now =
    if now > t.last then begin
      t.tokens <- Float.min t.burst (t.tokens +. ((now -. t.last) *. t.rate));
      t.last <- now
    end

  let try_take t ~now =
    if t.rate <= 0. then Ok ()
    else begin
      refill t ~now;
      if t.tokens >= 1. then begin
        t.tokens <- t.tokens -. 1.;
        Ok ()
      end
      else Error ((1. -. t.tokens) /. t.rate)
    end

  let level t ~now =
    refill t ~now;
    t.tokens
end

(* ------------------------------------------------------------------ *)
(* The fair bounded queue                                              *)

type reject =
  | Queue_full of { depth : int; capacity : int; retry_after_s : float }
  | Over_quota of { retry_after_s : float }
  | Closing

let reject_reason = function
  | Queue_full _ -> "queue-full"
  | Over_quota _ -> "over-quota"
  | Closing -> "shutting-down"

let reject_retry_after_s = function
  | Queue_full { retry_after_s; _ } | Over_quota { retry_after_s } ->
      retry_after_s
  | Closing -> 0.

type 'a tenant_q = { queue : 'a Queue.t; bucket : Bucket.t }

type 'a t = {
  mutex : Mutex.t;
  nonempty : Condition.t;
  capacity : int;
  tenant_rate : float;
  tenant_burst : float;
  shed_retry_s : float;
  tenants : (string, 'a tenant_q) Hashtbl.t;
  (* round-robin rotation: tenants with a nonempty queue, in service
     order; a tenant appears at most once *)
  rotation : string Queue.t;
  mutable total : int;
  mutable closed : bool;
}

let create ?(capacity = 256) ?(tenant_rate = 50.) ?(tenant_burst = 100.)
    ?(shed_retry_s = 0.25) () =
  {
    mutex = Mutex.create ();
    nonempty = Condition.create ();
    capacity;
    tenant_rate;
    tenant_burst;
    shed_retry_s;
    tenants = Hashtbl.create 16;
    rotation = Queue.create ();
    total = 0;
    closed = false;
  }

let locked t k =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) k

let tenant_q t ~now name =
  match Hashtbl.find_opt t.tenants name with
  | Some q -> q
  | None ->
      let q =
        {
          queue = Queue.create ();
          bucket = Bucket.create ~rate:t.tenant_rate ~burst:t.tenant_burst ~now;
        }
      in
      Hashtbl.add t.tenants name q;
      q

let offer t ~now ~tenant item =
  locked t (fun () ->
      if t.closed then Error Closing
      else
        let tq = tenant_q t ~now tenant in
        match Bucket.try_take tq.bucket ~now with
        | Error retry_after_s -> Error (Over_quota { retry_after_s })
        | Ok () ->
            if t.total >= t.capacity then
              Error
                (Queue_full
                   {
                     depth = t.total;
                     capacity = t.capacity;
                     retry_after_s = t.shed_retry_s;
                   })
            else begin
              if Queue.is_empty tq.queue then Queue.push tenant t.rotation;
              Queue.push item tq.queue;
              t.total <- t.total + 1;
              Condition.signal t.nonempty;
              Ok ()
            end)

let take t =
  locked t (fun () ->
      let rec wait () =
        if t.total > 0 then begin
          (* rotation invariant: every tenant with a nonempty queue is
             in the rotation exactly once, so the head exists *)
          let name = Queue.pop t.rotation in
          let tq = Hashtbl.find t.tenants name in
          let item = Queue.pop tq.queue in
          if not (Queue.is_empty tq.queue) then Queue.push name t.rotation;
          t.total <- t.total - 1;
          Some item
        end
        else if t.closed then None
        else begin
          Condition.wait t.nonempty t.mutex;
          wait ()
        end
      in
      wait ())

let close t =
  locked t (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty)

let depth t = locked t (fun () -> t.total)

let tenant_depths t =
  locked t (fun () ->
      Hashtbl.fold
        (fun name tq acc ->
          let d = Queue.length tq.queue in
          if d > 0 then (name, d) :: acc else acc)
        t.tenants []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b))
