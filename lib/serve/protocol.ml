module Json = Tailspace_telemetry.Telemetry.Json
module M = Tailspace_core.Machine
module SM = Tailspace_core.Space_model
module Res = Tailspace_resilience.Resilience

(* ------------------------------------------------------------------ *)
(* Endpoints                                                           *)

type endpoint = Tcp of string * int | Unix_domain of string

let endpoint_name = function
  | Tcp (host, port) -> Printf.sprintf "%s:%d" host port
  | Unix_domain path -> "unix:" ^ path

let sockaddr_of = function
  | Tcp (host, port) ->
      let addr =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          match Unix.gethostbyname host with
          | { Unix.h_addr_list = [||]; _ } -> raise Not_found
          | { Unix.h_addr_list; _ } -> h_addr_list.(0))
      in
      Unix.ADDR_INET (addr, port)
  | Unix_domain path -> Unix.ADDR_UNIX path

let listen ?(backlog = 64) endpoint =
  let domain =
    match endpoint with Tcp _ -> Unix.PF_INET | Unix_domain _ -> Unix.PF_UNIX
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (try
     (match endpoint with
     | Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
     | Unix_domain path -> ( try Unix.unlink path with Unix.Unix_error _ -> ()));
     Unix.bind fd (sockaddr_of endpoint);
     Unix.listen fd backlog
   with e ->
     Unix.close fd;
     raise e);
  fd

let connect endpoint =
  let domain =
    match endpoint with Tcp _ -> Unix.PF_INET | Unix_domain _ -> Unix.PF_UNIX
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (sockaddr_of endpoint)
   with e ->
     Unix.close fd;
     raise e);
  fd

let bound_port fd =
  match Unix.getsockname fd with
  | Unix.ADDR_INET (_, port) -> Some port
  | Unix.ADDR_UNIX _ -> None

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)

let default_max_frame = 8 * 1024 * 1024

type read_error =
  | Closed
  | Idle_closed
  | Truncated
  | Oversized of int
  | Bad_json of string
  | Timed_out

let read_error_message = function
  | Closed -> "connection closed"
  | Idle_closed -> "idle connection closed by server"
  | Truncated -> "truncated frame"
  | Oversized n -> Printf.sprintf "frame length %d exceeds the limit" n
  | Bad_json m -> "unparsable frame payload: " ^ m
  | Timed_out -> "frame did not complete in time"

(* The framing clock is always the real one: select timeouts have to
   line up with actual elapsed time, unlike the budget deadlines that
   tests drive through the injectable [Res.Clock]. *)
let real_now () = Unix.gettimeofday ()

type fill = Filled | Fill_error of read_error

(* Fill [buf] from [fd]. With [armed], the frame timeout counts from
   the first call (payload reads: the frame has already started);
   otherwise we idle in 100ms slices polling [give_up] until the first
   byte arrives, and only then arm the deadline — a connection may sit
   quietly between requests forever, but once a frame starts it must
   finish within [frame_timeout_s] (the slow-loris guard). *)
let read_exactly ~armed ~frame_timeout_s ~give_up fd buf =
  let len = Bytes.length buf in
  let deadline =
    ref (if armed then Some (real_now () +. frame_timeout_s) else None)
  in
  let got = ref 0 in
  let rec loop () =
    if !got >= len then Filled
    else begin
      let timeout =
        match !deadline with
        | None -> 0.1
        | Some d -> Float.max 0.001 (d -. real_now ())
      in
      match !deadline with
      | Some d when real_now () > d -> Fill_error Timed_out
      | _ -> (
          match Unix.select [ fd ] [] [] timeout with
          | [], _, _ ->
              if !deadline = None && give_up () then Fill_error Idle_closed
              else loop ()
          | _ :: _, _, _ -> (
              match Unix.read fd buf !got (len - !got) with
              | 0 -> Fill_error (if !got = 0 then Closed else Truncated)
              | k ->
                  if !deadline = None then
                    deadline := Some (real_now () +. frame_timeout_s);
                  got := !got + k;
                  loop ()
              | exception
                  Unix.Unix_error
                    ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
                  loop ()
              | exception Unix.Unix_error _ ->
                  Fill_error (if !got = 0 then Closed else Truncated)))
    end
  in
  loop ()

let read_frame ?(max_frame = default_max_frame) ?(frame_timeout_s = 10.)
    ?(give_up = fun () -> false) fd =
  let header = Bytes.create 4 in
  match read_exactly ~armed:false ~frame_timeout_s ~give_up fd header with
  | Fill_error e -> Error e
  | Filled -> (
      let len =
        (Char.code (Bytes.get header 0) lsl 24)
        lor (Char.code (Bytes.get header 1) lsl 16)
        lor (Char.code (Bytes.get header 2) lsl 8)
        lor Char.code (Bytes.get header 3)
      in
      if len <= 0 || len > max_frame then Error (Oversized len)
      else
        let payload = Bytes.create len in
        match
          read_exactly ~armed:true ~frame_timeout_s
            ~give_up:(fun () -> false)
            fd payload
        with
        | Fill_error Closed -> Error Truncated
        | Fill_error e -> Error e
        | Filled -> (
            match Json.of_string (Bytes.to_string payload) with
            | Ok j -> Ok j
            | Error m -> Error (Bad_json m)))

(* ------------------------------------------------------------------ *)

let write_frame fd json =
  let payload = Json.to_string json in
  let len = String.length payload in
  let msg = Bytes.create (4 + len) in
  Bytes.set msg 0 (Char.chr ((len lsr 24) land 0xFF));
  Bytes.set msg 1 (Char.chr ((len lsr 16) land 0xFF));
  Bytes.set msg 2 (Char.chr ((len lsr 8) land 0xFF));
  Bytes.set msg 3 (Char.chr (len land 0xFF));
  Bytes.blit_string payload 0 msg 4 len;
  let total = 4 + len in
  let written = ref 0 in
  while !written < total do
    written := !written + Unix.write fd msg !written (total - !written)
  done

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)

type work =
  | Evaluate of { program : string; n : int }
  | Sweep of { program : string; ns : int list }
  | Census of { program : string; n : int }

type request = {
  id : Json.t;
  tenant : string;
  work : work option;
  probe : [ `Health | `Stats ] option;
  config : M.Config.t;
  measure : SM.t list;
  budget : Res.Budget.t;
}

let request_of_json json =
  let ( let* ) = Result.bind in
  match json with
  | Json.Obj _ ->
      let member name = Json.member name json in
      let str_opt name =
        match member name with
        | Some (Json.Str s) -> Ok (Some s)
        | None | Some Json.Null -> Ok None
        | Some _ -> Error (Printf.sprintf "request: %S must be a string" name)
      in
      let int_opt name =
        match member name with
        | Some (Json.Int i) -> Ok (Some i)
        | None | Some Json.Null -> Ok None
        | Some _ -> Error (Printf.sprintf "request: %S must be an integer" name)
      in
      let* op =
        match member "op" with
        | Some (Json.Str s) -> Ok s
        | _ -> Error "request: missing \"op\""
      in
      let id = Option.value (member "id") ~default:Json.Null in
      let* tenant = str_opt "tenant" in
      let tenant = Option.value tenant ~default:"anonymous" in
      let* variant_s = str_opt "variant" in
      let* variant =
        match variant_s with
        | None -> Ok M.Tail
        | Some s -> (
            match M.variant_of_name s with
            | Some v -> Ok v
            | None -> Error (Printf.sprintf "request: unknown variant %S" s))
      in
      let* engine_s = str_opt "engine" in
      let* engine =
        match engine_s with
        | None -> Ok M.Stepper
        | Some s -> (
            match M.engine_of_name s with
            | Some e -> Ok e
            | None -> Error (Printf.sprintf "request: unknown engine %S" s))
      in
      let* () =
        if engine <> M.Stepper && variant <> M.Tail then
          Error "request: vm engines support only the tail variant"
        else Ok ()
      in
      let* stack_policy_s = str_opt "stack_policy" in
      let* stack_policy =
        match stack_policy_s with
        | None -> Ok M.Safe_deletion
        | Some s -> (
            match M.Config.stack_policy_of_name s with
            | Some p -> Ok p
            | None ->
                Error (Printf.sprintf "request: unknown stack_policy %S" s))
      in
      let* budget =
        match member "budget" with
        | None | Some Json.Null -> Ok Res.Budget.unlimited
        | Some b -> Res.Budget.of_json b
      in
      let* measure =
        match member "measure" with
        | None | Some Json.Null -> Ok [ SM.Flat ]
        | Some j -> (
            match SM.list_of_json j with
            | Ok ms -> Ok ms
            | Error e -> Error ("request: " ^ e))
      in
      let* () =
        if engine = M.Vm_fast && measure <> [ SM.Flat ] then
          Error "request: the vm-fast engine measures only the flat model"
        else Ok ()
      in
      let config =
        M.Config.make ~variant ~engine ~stack_policy ()
      in
      let program_req name =
        match member "program" with
        | Some (Json.Str s) -> Ok s
        | _ -> Error (Printf.sprintf "request: %S needs a \"program\" string" name)
      in
      let mk work =
        Ok
          { id; tenant; work = Some work; probe = None; config; measure; budget }
      in
      (match op with
      | "health" ->
          Ok
            {
              id;
              tenant;
              work = None;
              probe = Some `Health;
              config;
              measure;
              budget;
            }
      | "stats" ->
          Ok
            {
              id;
              tenant;
              work = None;
              probe = Some `Stats;
              config;
              measure;
              budget;
            }
      | "evaluate" ->
          let* program = program_req "evaluate" in
          let* n = int_opt "n" in
          mk (Evaluate { program; n = Option.value n ~default:10 })
      | "census" ->
          let* program = program_req "census" in
          let* () =
            if config.M.Config.engine = M.Vm_fast then
              Error "request: the vm-fast engine cannot carry a census"
            else Ok ()
          in
          let* n = int_opt "n" in
          mk (Census { program; n = Option.value n ~default:10 })
      | "sweep" ->
          let* program = program_req "sweep" in
          let* ns =
            match member "ns" with
            | Some (Json.List l) ->
                List.fold_left
                  (fun acc v ->
                    let* acc = acc in
                    match v with
                    | Json.Int i -> Ok (i :: acc)
                    | _ -> Error "request: \"ns\" must be a list of integers")
                  (Ok []) l
                |> Result.map List.rev
            | _ -> Error "request: \"sweep\" needs an \"ns\" integer list"
          in
          let* () = if ns = [] then Error "request: empty \"ns\"" else Ok () in
          mk (Sweep { program; ns })
      | other -> Error (Printf.sprintf "request: unknown op %S" other))
  | _ -> Error "request: expected a JSON object"

let request_to_json r =
  let base =
    [
      ("id", r.id);
      ("tenant", Json.Str r.tenant);
      ("variant", Json.Str (M.variant_name r.config.M.Config.variant));
      ("engine", Json.Str (M.engine_name r.config.M.Config.engine));
      ( "stack_policy",
        Json.Str (M.Config.stack_policy_name r.config.M.Config.stack_policy) );
    ]
    @ (match SM.normalize r.measure with
      | [ SM.Flat ] -> []
      | ms -> [ ("measure", SM.list_to_json ms) ])
    @
    if Res.Budget.is_unlimited r.budget then []
    else [ ("budget", Res.Budget.to_json r.budget) ]
  in
  match (r.probe, r.work) with
  | Some `Health, _ -> Json.Obj (("op", Json.Str "health") :: base)
  | Some `Stats, _ -> Json.Obj (("op", Json.Str "stats") :: base)
  | None, Some (Evaluate { program; n }) ->
      Json.Obj
        (("op", Json.Str "evaluate")
        :: ("program", Json.Str program)
        :: ("n", Json.Int n)
        :: base)
  | None, Some (Census { program; n }) ->
      Json.Obj
        (("op", Json.Str "census")
        :: ("program", Json.Str program)
        :: ("n", Json.Int n)
        :: base)
  | None, Some (Sweep { program; ns }) ->
      Json.Obj
        (("op", Json.Str "sweep")
        :: ("program", Json.Str program)
        :: ("ns", Json.List (List.map (fun n -> Json.Int n) ns))
        :: base)
  | None, None -> Json.Obj (("op", Json.Str "health") :: base)

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)

let response ?(fields = []) ~id ~status ~outcome () =
  Json.Obj
    ([
       ("id", id);
       ("status", Json.Int status);
       ("outcome", Json.Str outcome);
     ]
    @ fields)

let error_response ~id message =
  response ~id ~status:2 ~outcome:"error"
    ~fields:[ ("error", Json.Str message) ]
    ()

let protocol_error_response err =
  response ~id:Json.Null ~status:2 ~outcome:"protocol-error"
    ~fields:[ ("error", Json.Str (read_error_message err)) ]
    ()

let rejected_response ~id ~reason ~retry_after_s =
  response ~id ~status:2 ~outcome:"rejected"
    ~fields:
      [
        ("error", Json.Str reason);
        ("retry_after_s", Json.Float retry_after_s);
      ]
    ()

(* ------------------------------------------------------------------ *)
(* Replies (client side)                                               *)

type reply = {
  r_status : int;
  r_outcome : string;
  r_answer : string option;
  r_error : string option;
  r_abort_tag : string option;
  r_retry_after_s : float option;
  r_json : Json.t;
}

let reply_of_json json =
  let ( let* ) = Result.bind in
  let* r_status =
    match Json.member "status" json with
    | Some (Json.Int i) -> Ok i
    | _ -> Error "reply: missing \"status\""
  in
  let* r_outcome =
    match Json.member "outcome" json with
    | Some (Json.Str s) -> Ok s
    | _ -> Error "reply: missing \"outcome\""
  in
  let str name =
    match Json.member name json with Some (Json.Str s) -> Some s | _ -> None
  in
  let r_abort_tag =
    match Json.member "abort" json with
    | Some (Json.Obj _ as a) -> (
        match Json.member "reason" a with
        | Some (Json.Str s) -> Some s
        | _ -> None)
    | _ -> None
  in
  let r_retry_after_s =
    match Json.member "retry_after_s" json with
    | Some (Json.Float f) -> Some f
    | Some (Json.Int i) -> Some (float_of_int i)
    | _ -> None
  in
  Ok
    {
      r_status;
      r_outcome;
      r_answer = str "answer";
      r_error = str "error";
      r_abort_tag;
      r_retry_after_s;
      r_json = json;
    }
