(** The `schemesim serve` daemon: a fault-tolerant evaluation service
    over the length-prefixed JSON protocol.

    Architecture: one accept loop (the caller's thread, in {!run}), one
    reader thread per connection, one dispatcher thread draining the
    {!Admission} queue onto a {!Tailspace_parallel.Pool} of worker
    domains via non-blocking {!Tailspace_parallel.Pool.submit}. Every
    request runs under a {!Tailspace_resilience.Resilience.Budget}
    clamped by the server {!policy}, so the paper's own poison programs
    (Theorem 25 blow-ups, [I_stack] stuck states, fuel burners) come
    back as typed status-1 responses; an escaped exception on a worker
    becomes a [Crashed] abort response and never touches the daemon or
    its sibling requests.

    Lifecycle: {!shutdown} (or SIGTERM wired to it by the CLI) stops
    accepting, drains queued and in-flight requests up to
    [drain_timeout_s], then force-aborts whatever is left. *)

module Json := Tailspace_telemetry.Telemetry.Json

(** Server-side ceilings on what any single request may consume. The
    client's own budget is honored below these, never above
    ({!Tailspace_resilience.Resilience.Budget.clamp}). *)
type policy = {
  max_fuel : int;  (** default 5M steps *)
  max_timeout_s : float;  (** default 10s of wall clock per request *)
  max_space_words : int;  (** default 50M words of live space *)
  max_output_bytes : int;  (** default 1 MiB of program output *)
  max_sweep_points : int;  (** default 32 inputs per sweep request *)
}

val default_policy : policy

type config = {
  jobs : int;  (** worker domains (default [Pool.default_jobs ()]) *)
  queue_capacity : int;  (** admission queue bound (default 256) *)
  tenant_rate : float;  (** token-bucket refill, requests/s (default 50) *)
  tenant_burst : float;  (** token-bucket burst (default 100) *)
  max_frame : int;  (** request frame cap (default 1 MiB) *)
  frame_timeout_s : float;  (** slow-loris guard (default 10s) *)
  drain_timeout_s : float;  (** graceful-shutdown deadline (default 30s) *)
  policy : policy;
  now : unit -> float;
      (** the admission/drain clock (default
          {!Tailspace_resilience.Resilience.Clock.now}, hence
          fake-clock-testable) *)
}

val default_config : config

type t

val create : ?config:config -> Protocol.endpoint -> t
(** Bind and listen (raises [Unix.Unix_error] on failure — the CLI
    turns that into exit 2). Ignores [SIGPIPE] process-wide: a client
    hanging up mid-response must be a counted write failure, not a
    fatal signal. *)

val port : t -> int option
(** The bound TCP port (useful with port 0); [None] for Unix sockets. *)

val endpoint : t -> Protocol.endpoint

type outcome =
  | Drained  (** every admitted request finished within the deadline *)
  | Forced  (** the drain deadline passed with work still running *)

val run : t -> outcome
(** Serve until {!shutdown}, then drain and return. Runs the accept
    loop on the calling thread. *)

val shutdown : t -> unit
(** Begin graceful shutdown. Async-signal-safe (sets a flag the loops
    poll); idempotent. *)

val is_stopping : t -> bool

val stats_json : t -> Json.t
(** The health/stats surface: uptime, queue depth, in-flight count,
    open connections, the full counter group (global and per-tenant),
    and the merged telemetry summary of every measured run so far. *)
