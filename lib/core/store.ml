module Imap = Map.Make (Int)

(* Each cell remembers the flat space of its value so removals and
   overwrites can adjust the running total without recomputation. *)
type cell = { v : Types.value; sz : int }

type t = {
  cells : cell Imap.t;
  space : int;
  count : int;
  next : Types.loc;
  observe : (Types.value -> unit) option;
      (* allocation observer; survives the persistent updates so every
         store derived from an instrumented one reports its allocations
         (the telemetry layer attaches one per measured run) *)
  observe_loc : (Types.loc -> Types.value -> unit) option;
      (* like [observe] but also told the location being allocated;
         runs after every value observer (so a fault hook that raises
         abandons the allocation before this fires) — the provenance
         layer's site-tagging hook *)
}

let empty =
  {
    cells = Imap.empty;
    space = 0;
    count = 0;
    next = 0;
    observe = None;
    observe_loc = None;
  }

let with_observer t observe = { t with observe }

let add_observer t f =
  match t.observe with
  | None -> { t with observe = Some f }
  | Some g ->
      {
        t with
        observe =
          Some
            (fun v ->
              g v;
              f v);
      }

let add_loc_observer t f =
  match t.observe_loc with
  | None -> { t with observe_loc = Some f }
  | Some g ->
      {
        t with
        observe_loc =
          Some
            (fun l v ->
              g l v;
              f l v);
      }

let alloc t v =
  (match t.observe with Some f -> f v | None -> ());
  (match t.observe_loc with Some f -> f t.next v | None -> ());
  let sz = Types.value_space v in
  ( {
      t with
      cells = Imap.add t.next { v; sz } t.cells;
      space = t.space + 1 + sz;
      count = t.count + 1;
      next = t.next + 1;
    },
    t.next )

let alloc_many t vs =
  let t, rev_locs =
    List.fold_left
      (fun (t, locs) v ->
        let t, l = alloc t v in
        (t, l :: locs))
      (t, []) vs
  in
  (t, List.rev rev_locs)

let find_opt t l =
  match Imap.find_opt l t.cells with Some c -> Some c.v | None -> None

let mem t l = Imap.mem l t.cells

let set t l v =
  match Imap.find_opt l t.cells with
  | None -> invalid_arg "Store.set: unallocated location"
  | Some old ->
      let sz = Types.value_space v in
      {
        t with
        cells = Imap.add l { v; sz } t.cells;
        space = t.space - old.sz + sz;
      }

let remove_all t locs =
  List.fold_left
    (fun t l ->
      match Imap.find_opt l t.cells with
      | None -> t
      | Some c ->
          {
            t with
            cells = Imap.remove l t.cells;
            space = t.space - 1 - c.sz;
            count = t.count - 1;
          })
    t locs

let cardinal t = t.count
let space t = t.space
let iter f t = Imap.iter (fun l c -> f l c.v) t.cells
let fold f t init = Imap.fold (fun l c acc -> f l c.v acc) t.cells init
let next_loc t = t.next
