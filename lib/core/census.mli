(** Run-time census builder for the space-provenance profiler.

    A [Census.t] accompanies one measured run. The machine (either
    engine) feeds it through three hooks:

    - {!instrument} attaches a store location observer that tags every
      allocation with the current allocation site and phase
      ({!set_alloc_site}/{!set_phase}) and bumps an advisory per-site
      live-word table;
    - {!rescan} re-derives that table from the survivor set at each
      reclaiming collection (the observer sees allocations only);
    - {!stash_flat}/{!stash_linked}/{!stash_log} capture the exact
      configuration at every strict peak increase (called at points
      where the store has just been collected, so every cell is
      reachable).

    After the run, {!flat_census}, {!linked_census} and {!log_census}
    decompose the
    stashed peak configurations into per-site rows that sum {e exactly}
    to the telemetry peaks: the flat census telescopes the Figure 7 sum
    (store cells by allocation site, frames by pushing site, register
    environment, control, Halt) and additionally builds retained-by
    edges and collapsed flamegraph stacks from a first-retainer-wins
    BFS; the linked census mirrors {!Space.linked_config_space} with
    each deduplicated (identifier, location) binding charged to the
    site of the cell it names; the log census is the linked
    decomposition with every charge scaled by the stashed store's
    {!Space.pointer_bits} (bit-units).

    Site ids come from the annotation pass ({!Annot.site_id}), so they
    are stable across engines; [-1] rows are synthetic machine
    components distinguished by phase. *)

module Ast = Tailspace_ast.Ast
module Annot = Tailspace_analysis.Annot
module P = Tailspace_provenance.Provenance

type control = [ `Expr of Ast.expr | `Value of Types.value ]
type t

val create : unit -> t

val set_annot : t -> Annot.t -> unit
(** The annotation table whose site ids name allocation sites. Without
    one, every site resolves to [-1]. *)

val site_of_expr : t -> Ast.expr -> int
(** The site id of an expression ([-1] if unannotated). *)

val set_alloc_site : t -> site:int -> phase:P.phase option -> unit
(** Declare the provenance of upcoming allocations: the site id and an
    optional phase override. With [phase = None] the phase is inferred
    from the allocated value's kind. *)

val set_phase : t -> P.phase option -> unit
(** Change only the phase hint, keeping the current site. *)

val instrument : t -> Store.t -> Store.t
(** Attach the site-tagging allocation observer. *)

val rescan : t -> Store.t -> unit
(** Re-derive the advisory live table from a survivor store. *)

val live_rows : t -> (int * P.phase * int) list
(** Current advisory live words per (site, phase), sorted. *)

(** {1 Peak stashes} *)

val stash_flat :
  t -> control:control -> env:Types.Env.t -> cont:Types.cont -> store:Store.t -> unit

val stash_flat_final : t -> v:Types.value -> store:Store.t -> unit
(** The final-answer measurement (Definition 21): no environment, no
    [Halt] word in the flat model. *)

val stash_linked :
  t -> control:control -> env:Types.Env.t -> cont:Types.cont -> store:Store.t -> unit

val stash_log :
  t -> control:control -> env:Types.Env.t -> cont:Types.cont -> store:Store.t -> unit

(** {1 Census assembly} *)

val flat_census : t -> peak:int -> P.t option
(** Decompose the stashed flat-peak configuration. [None] if nothing
    was stashed. [Provenance.total] of the result equals [peak], and
    the flamegraph stacks partition the same total. *)

val linked_census : t -> peak:int -> P.t option
(** Decompose the stashed linked-peak configuration; sums to [peak]. *)

val log_census : t -> peak:int -> P.t option
(** Decompose the stashed log-peak configuration into bit-unit rows;
    sums to [peak]. *)
