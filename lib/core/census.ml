module Ast = Tailspace_ast.Ast
module Annot = Tailspace_analysis.Annot
module P = Tailspace_provenance.Provenance
module Env = Types.Env

(* The census builder: the run-time half of the provenance layer. A
   [Census.t] rides along one measured run (Machine.run or the
   instrumented VM tier — both thread it identically, which is what the
   oracle's census-equality check leans on). It is fed from three hooks:

   - a store location observer tagging every allocation with the
     current (site, phase) — the advisory live table is bumped here;
   - a rescan at every collection, re-deriving the live table from the
     survivor set (the observer cannot see removals);
   - a stash at every strict peak increase, keeping the exact peak
     configuration. Every peak update in the measured loop happens
     right after a collection, so a stashed store holds only reachable
     cells and the retainer walk below covers all of them.

   The exact censuses are then derived lazily from the stashes: the
   flat decomposition telescopes the Figure 7 sum (store cells by
   allocation site, continuation frames by pushing site, the register
   environment, the control value, Halt), and the linked decomposition
   mirrors the Figure 8 walk in [Space] with attribution. Both sum to
   their telemetry peaks exactly, by construction. *)

type control = [ `Expr of Ast.expr | `Value of Types.value ]

type stash =
  | Nothing
  | At_config of {
      control : control;
      env : Env.t;
      cont : Types.cont;
      store : Store.t;
    }
  | At_final of { v : Types.value; store : Store.t }
      (* the Done configuration: Definition 21's final measurement has
         no environment and no Halt word in the flat model *)

type t = {
  mutable annot : Annot.t option;
  site_of_loc : (Types.loc, int * P.phase) Hashtbl.t;
      (* locations are never reused (monotone allocator), so this map
         only grows; entries for dead locations are kept because the
         peak stashes may still name them *)
  live : (int * P.phase, int) Hashtbl.t;
  mutable current_site : int;
  mutable phase_hint : P.phase option;
  mutable flat_stash : stash;
  mutable linked_stash : stash;
  mutable log_stash : stash;
}

let create () =
  {
    annot = None;
    site_of_loc = Hashtbl.create 1024;
    live = Hashtbl.create 64;
    current_site = -1;
    phase_hint = None;
    flat_stash = Nothing;
    linked_stash = Nothing;
    log_stash = Nothing;
  }

let set_annot t a = t.annot <- Some a

let site_of_expr t e =
  match t.annot with
  | None -> -1
  | Some a -> ( match Annot.site_id a e with Some s -> s | None -> -1)

let set_alloc_site t ~site ~phase =
  t.current_site <- site;
  t.phase_hint <- phase

let set_phase t phase = t.phase_hint <- phase

let phase_of_value : Types.value -> P.phase = function
  | Pair _ -> P.P_pair
  | Vector _ -> P.P_vector
  | Closure _ -> P.P_closure
  | Escape _ -> P.P_escape
  | Str _ -> P.P_string
  | Int _ -> P.P_bignum
  | Bool _ | Sym _ | Char _ | Nil | Unspecified | Undefined | Primop _ ->
      P.P_atom

let bump tbl key dw =
  Hashtbl.replace tbl key
    ((match Hashtbl.find_opt tbl key with Some w -> w | None -> 0) + dw)

let on_alloc t l v =
  let phase =
    match t.phase_hint with Some p -> p | None -> phase_of_value v
  in
  let key = (t.current_site, phase) in
  Hashtbl.replace t.site_of_loc l key;
  bump t.live key (1 + Types.value_space v)

let instrument t store = Store.add_loc_observer store (on_alloc t)

let key_of_loc t l =
  match Hashtbl.find_opt t.site_of_loc l with
  | Some key -> key
  | None -> (-1, P.P_globals)

let rescan t store =
  Hashtbl.reset t.live;
  Store.iter
    (fun l v -> bump t.live (key_of_loc t l) (1 + Types.value_space v))
    store

let live_rows t =
  List.sort compare
    (Hashtbl.fold
       (fun (site, phase) w acc -> (site, phase, w) :: acc)
       t.live [])

let stash_flat t ~control ~env ~cont ~store =
  t.flat_stash <- At_config { control; env; cont; store }

let stash_flat_final t ~v ~store = t.flat_stash <- At_final { v; store }

let stash_linked t ~control ~env ~cont ~store =
  t.linked_stash <- At_config { control; env; cont; store }

let stash_log t ~control ~env ~cont ~store =
  t.log_stash <- At_config { control; env; cont; store }

(* ------------------------------------------------------------------ *)
(* Census assembly                                                     *)

let env_key = (-1, P.P_register_env)
let control_key = (-1, P.P_control)
let halt_key = (-1, P.P_halt)

let truncate_span s =
  if String.length s > 48 then String.sub s 0 45 ^ "..." else s

let labels_for t keys =
  match t.annot with
  | None -> []
  | Some a ->
      let seen = Hashtbl.create 32 in
      List.filter_map
        (fun (site, _) ->
          if site < 0 || Hashtbl.mem seen site then None
          else begin
            Hashtbl.add seen site ();
            match Annot.site_expr a site with
            | Some e -> Some (site, truncate_span (Ast.to_string e))
            | None -> None
          end)
        keys

type acc = {
  words : (int * P.phase, int) Hashtbl.t;
  cells : (int * P.phase, int) Hashtbl.t;
  retain : (int * P.phase, (int * P.phase, unit) Hashtbl.t) Hashtbl.t;
  stacks : ((int * P.phase) list, int) Hashtbl.t;
}

let make_acc () =
  {
    words = Hashtbl.create 64;
    cells = Hashtbl.create 64;
    retain = Hashtbl.create 64;
    stacks = Hashtbl.create 64;
  }

let note_retainer acc ~of_:key ~root =
  let set =
    match Hashtbl.find_opt acc.retain key with
    | Some s -> s
    | None ->
        let s = Hashtbl.create 4 in
        Hashtbl.add acc.retain key s;
        s
  in
  Hashtbl.replace set root ()

let finish t acc ~measure ~peak =
  let keys =
    List.sort_uniq compare
      (Hashtbl.fold (fun k _ ks -> k :: ks) acc.words []
      @ Hashtbl.fold (fun path _ ks -> path @ ks) acc.stacks [])
  in
  let rows =
    Hashtbl.fold
      (fun (site, phase) words rows ->
        {
          P.site;
          phase;
          words;
          cells =
            (match Hashtbl.find_opt acc.cells (site, phase) with
            | Some c -> c
            | None -> 0);
          retained_by =
            (match Hashtbl.find_opt acc.retain (site, phase) with
            | Some set ->
                List.sort compare (Hashtbl.fold (fun k () l -> k :: l) set [])
            | None -> []);
        }
        :: rows)
      acc.words []
  in
  let rows =
    (* biggest consumer first; deterministic tie-break on the key *)
    List.sort
      (fun (a : P.row) (b : P.row) ->
        match compare b.P.words a.P.words with
        | 0 -> compare (a.P.site, a.P.phase) (b.P.site, b.P.phase)
        | c -> c)
      rows
  in
  let stacks =
    List.sort
      (fun (a : P.stack) b ->
        match compare b.P.swords a.P.swords with
        | 0 -> compare a.P.path b.P.path
        | c -> c)
      (Hashtbl.fold
         (fun path swords l -> { P.path; swords } :: l)
         acc.stacks [])
  in
  { P.measure; peak; rows; stacks; labels = labels_for t keys }

(* ------------------------------------------------------------------ *)
(* Flat census: the Figure 7 sum, componentwise.                       *)

(* Per-frame flat words: the cached size minus the tail's — telescopes
   exactly to [cont_space cont]. *)
let flat_frames acc cont =
  let rec go (k : Types.cont) =
    match k with
    | Types.Halt ->
        bump acc.words halt_key 1;
        bump acc.stacks [ halt_key ] 1
    | Types.Select { next; size; site; _ }
    | Types.Assign { next; size; site; _ }
    | Types.Push { next; size; site; _ }
    | Types.Call { next; size; site; _ }
    | Types.Return { next; size; site; _ }
    | Types.Return_stack { next; size; site; _ } ->
        let self = size - Types.cont_space next in
        bump acc.words (site, P.P_frame) self;
        bump acc.stacks [ (site, P.P_frame) ] self;
        go next
  in
  go cont

(* The retainer walk: a first-retainer-wins BFS from the categorized
   roots over the store graph. Each reachable cell's words land on one
   collapsed stack (root first, consecutive duplicate sites merged,
   depth-capped), so the stack lines partition the store space. *)
let max_stack_depth = 12

let extend_chain chain key =
  match chain with
  | top :: _ when top = key -> chain
  | _ when List.length chain >= max_stack_depth -> chain
  | _ -> key :: chain

let walk_store t acc ~roots store =
  let visited : (Types.loc, unit) Hashtbl.t = Hashtbl.create 256 in
  let queue = Queue.create () in
  List.iter
    (fun (root, locs) ->
      List.iter (fun l -> Queue.add (l, root, [ root ]) queue) locs)
    roots;
  while not (Queue.is_empty queue) do
    let l, root, chain = Queue.pop queue in
    if not (Hashtbl.mem visited l) then begin
      Hashtbl.add visited l ();
      match Store.find_opt store l with
      | None -> ()
      | Some v ->
          let key = key_of_loc t l in
          let w = 1 + Types.value_space v in
          bump acc.words key w;
          bump acc.cells key 1;
          note_retainer acc ~of_:key ~root;
          let chain = extend_chain chain key in
          bump acc.stacks (List.rev chain) w;
          List.iter
            (fun l' -> Queue.add (l', root, chain) queue)
            (Types.value_locs v)
    end
  done;
  (* Post-collection stashes have no unreachable cells; anything left
     is surfaced rather than silently dropped so the census still sums
     to the peak. *)
  Store.iter
    (fun l v ->
      if not (Hashtbl.mem visited l) then begin
        let key = key_of_loc t l in
        let w = 1 + Types.value_space v in
        bump acc.words key w;
        bump acc.cells key 1;
        note_retainer acc ~of_:key ~root:(-1, P.P_unreachable);
        bump acc.stacks [ (-1, P.P_unreachable); key ] w
      end)
    store

(* The roots of a configuration, each labeled with the row that holds
   the pointer: the register environment, the control value, and every
   continuation frame (its saved environment, held values, and any
   I_stack deletion set). *)
let config_roots ~control ~env ~cont =
  let frame_roots =
    let rec go acc (k : Types.cont) =
      match k with
      | Types.Halt -> acc
      | Types.Select { env; next; site; _ }
      | Types.Assign { env; next; site; _ }
      | Types.Return { env; next; site; _ } ->
          go (((site, P.P_frame), Env.locations env) :: acc) next
      | Types.Push { evaluated; env; next; site; _ } ->
          let locs =
            Env.locations env
            @ List.concat_map (fun (_, v) -> Types.value_locs v) evaluated
          in
          go (((site, P.P_frame), locs) :: acc) next
      | Types.Call { vals; next; site; _ } ->
          go (((site, P.P_frame), List.concat_map Types.value_locs vals) :: acc)
            next
      | Types.Return_stack { dels; env; next; site; _ } ->
          go (((site, P.P_frame), dels @ Env.locations env) :: acc) next
    in
    List.rev (go [] cont)
  in
  let control_root =
    match control with
    | `Expr _ -> []
    | `Value v -> [ (control_key, Types.value_locs v) ]
  in
  ((env_key, Env.locations env) :: control_root) @ frame_roots

let flat_census t ~peak =
  match t.flat_stash with
  | Nothing -> None
  | At_final { v; store } ->
      let acc = make_acc () in
      bump acc.words control_key (Types.value_space v);
      bump acc.stacks [ control_key ] (Types.value_space v);
      walk_store t acc ~roots:[ (control_key, Types.value_locs v) ] store;
      Some (finish t acc ~measure:P.Flat ~peak)
  | At_config { control; env; cont; store } ->
      let acc = make_acc () in
      let rho = Env.cardinal env in
      if rho > 0 then begin
        bump acc.words env_key rho;
        bump acc.stacks [ env_key ] rho
      end;
      (match control with
      | `Expr _ -> ()
      | `Value v ->
          bump acc.words control_key (Types.value_space v);
          bump acc.stacks [ control_key ] (Types.value_space v));
      flat_frames acc cont;
      walk_store t acc ~roots:(config_roots ~control ~env ~cont) store;
      Some (finish t acc ~measure:P.Flat ~peak)

(* ------------------------------------------------------------------ *)
(* Linked census: the Figure 8 walk of [Space], with attribution. The
   global binding set is deduplicated exactly as there; each distinct
   (identifier, location) binding charges its one word to the site of
   the cell it names, which is traversal-order independent.

   The log census is the same decomposition with every charge scaled by
   the stashed store's pointer size — an integer factor, so the rows
   still sum exactly to [scale * linked units], which is precisely the
   log peak at the stashed configuration.                              *)

let linked_like_census t stash ~measure ~scale_of_store ~peak =
  match (stash : stash) with
  | Nothing | At_final _ -> None
  | At_config { control; env; cont; store } ->
      let b = scale_of_store store in
      let acc = make_acc () in
      (* cell counts are populations, not charges: never scaled *)
      let cell_bump key = bump acc.cells key 1 in
      let bump tbl key dw = bump tbl key (b * dw) in
      let bindings : (string * Types.loc, unit) Hashtbl.t =
        Hashtbl.create 64
      in
      let add_env env =
        Env.iter (fun x l -> Hashtbl.replace bindings (x, l) ()) env
      in
      let add_value key (v : Types.value) =
        match v with
        | Types.Closure (_, _, cenv) ->
            add_env cenv;
            bump acc.words key 1
        | Types.Escape (_, k) ->
            bump acc.words key 1;
            let rec frames (k : Types.cont) =
              match k with
              | Types.Halt -> bump acc.words halt_key 1
              | Types.Select { env; next; site; _ }
              | Types.Assign { env; next; site; _ }
              | Types.Return { env; next; site; _ }
              | Types.Return_stack { env; next; site; _ } ->
                  add_env env;
                  bump acc.words (site, P.P_frame) 1;
                  frames next
              | Types.Push { remaining; evaluated; env; next; site; _ } ->
                  add_env env;
                  bump acc.words (site, P.P_frame)
                    (1 + List.length remaining + List.length evaluated);
                  frames next
              | Types.Call { vals; next; site; _ } ->
                  bump acc.words (site, P.P_frame) (1 + List.length vals);
                  frames next
            in
            frames k
        | v -> bump acc.words key (Types.value_space v)
      in
      add_env env;
      (match control with
      | `Expr _ -> ()
      | `Value v -> add_value control_key v);
      (let rec frames (k : Types.cont) =
         match k with
         | Types.Halt -> bump acc.words halt_key 1
         | Types.Select { env; next; site; _ }
         | Types.Assign { env; next; site; _ }
         | Types.Return { env; next; site; _ }
         | Types.Return_stack { env; next; site; _ } ->
             add_env env;
             bump acc.words (site, P.P_frame) 1;
             frames next
         | Types.Push { remaining; evaluated; env; next; site; _ } ->
             add_env env;
             bump acc.words (site, P.P_frame)
               (1 + List.length remaining + List.length evaluated);
             frames next
         | Types.Call { vals; next; site; _ } ->
             bump acc.words (site, P.P_frame) (1 + List.length vals);
             frames next
       in
       frames cont);
      Store.iter
        (fun l v ->
          let key = key_of_loc t l in
          bump acc.words key 1;
          cell_bump key;
          add_value key v)
        store;
      Hashtbl.iter
        (fun (_, l) () -> bump acc.words (key_of_loc t l) 1)
        bindings;
      Some (finish t acc ~measure ~peak)

let linked_census t ~peak =
  linked_like_census t t.linked_stash ~measure:P.Linked
    ~scale_of_store:(fun _ -> 1)
    ~peak

let log_census t ~peak =
  linked_like_census t t.log_stash ~measure:P.Log
    ~scale_of_store:Space.pointer_bits ~peak
