module Bignum = Tailspace_bignum.Bignum
module Ast = Tailspace_ast.Ast
module Env = Env

type loc = Env.loc

type value =
  | Bool of bool
  | Int of Bignum.t
  | Sym of string
  | Str of string
  | Char of char
  | Nil
  | Unspecified
  | Undefined
  | Pair of loc * loc
  | Vector of loc array
  | Closure of loc * Ast.lambda * Env.t
  | Escape of loc * cont
  | Primop of string

and cont =
  | Halt
  | Select of {
      e1 : Ast.expr;
      e2 : Ast.expr;
      env : Env.t;
      next : cont;
      size : int;
      depth : int;
      site : int;
          (* provenance site of the expression that pushed the frame;
             -1 when provenance is off. Sites are bookkeeping, not
             space: they never contribute to [size]. *)
    }
  | Assign of {
      id : string;
      env : Env.t;
      next : cont;
      size : int;
      depth : int;
      site : int;
    }
  | Push of {
      pending : int;
      remaining : (int * Ast.expr) list;
      evaluated : (int * value) list;
      fv_rest : Ast.Iset.t list;
          (* precomputed I_sfs restriction sets, one per element of
             [remaining] (empty when unannotated or not Sfs); holds no
             locations and no space — it names variables the machine
             would otherwise recompute from [remaining] *)
      env : Env.t;
      next : cont;
      size : int;
      depth : int;
      site : int;
    }
  | Call of {
      vals : value list;
      next : cont;
      size : int;
      depth : int;
      site : int;
    }
  | Return of {
      env : Env.t;
      next : cont;
      size : int;
      depth : int;
      site : int;
    }
  | Return_stack of {
      dels : loc list;
      env : Env.t;
      next : cont;
      size : int;
      depth : int;
      site : int;
    }

let cont_space = function
  | Halt -> 1
  | Select { size; _ }
  | Assign { size; _ }
  | Push { size; _ }
  | Call { size; _ }
  | Return { size; _ }
  | Return_stack { size; _ } ->
      size

(* Frame count of a continuation, cached like [size] so per-step depth
   observation is O(1). *)
let cont_depth = function
  | Halt -> 0
  | Select { depth; _ }
  | Assign { depth; _ }
  | Push { depth; _ }
  | Call { depth; _ }
  | Return { depth; _ }
  | Return_stack { depth; _ } ->
      depth

let select ?(site = -1) ~e1 ~e2 ~env ~next () =
  Select
    {
      e1;
      e2;
      env;
      next;
      size = 1 + Env.cardinal env + cont_space next;
      depth = 1 + cont_depth next;
      site;
    }

let assign ?(site = -1) ~id ~env ~next () =
  Assign
    {
      id;
      env;
      next;
      size = 1 + Env.cardinal env + cont_space next;
      depth = 1 + cont_depth next;
      site;
    }

(* Figure 7: 1 + m + n + |Dom rho| + space(kappa). The expression being
   evaluated ([pending]) is in the accumulator, not in the frame, so [m]
   counts only [remaining]. *)
let push ?(fv_rest = []) ?(site = -1) ~pending ~remaining ~evaluated ~env
    ~next () =
  let m = List.length remaining and n = List.length evaluated in
  Push
    {
      pending;
      remaining;
      evaluated;
      fv_rest;
      env;
      next;
      size = 1 + m + n + Env.cardinal env + cont_space next;
      depth = 1 + cont_depth next;
      site;
    }

let call ?(site = -1) ~vals ~next () =
  Call
    {
      vals;
      next;
      size = 1 + List.length vals + cont_space next;
      depth = 1 + cont_depth next;
      site;
    }

let return_gc ?(site = -1) ~env ~next () =
  Return
    {
      env;
      next;
      size = 1 + Env.cardinal env + cont_space next;
      depth = 1 + cont_depth next;
      site;
    }

let return_stack ?(site = -1) ~dels ~env ~next () =
  Return_stack
    {
      dels;
      env;
      next;
      size = 1 + Env.cardinal env + cont_space next;
      depth = 1 + cont_depth next;
      site;
    }

let value_space = function
  | Bool _ | Sym _ | Char _ | Nil | Unspecified | Undefined | Primop _ -> 1
  | Int z -> 1 + Bignum.bit_length z
  | Str s -> 1 + String.length s
  | Pair _ -> 3
  | Vector locs -> 1 + Array.length locs
  | Closure (_, _, env) -> 1 + Env.cardinal env
  | Escape (_, k) -> 1 + cont_space k

let value_of_const (c : Ast.const) =
  match c with
  | Ast.C_bool b -> Bool b
  | Ast.C_int z -> Int z
  | Ast.C_sym s -> Sym s
  | Ast.C_str s -> Str s
  | Ast.C_char c -> Char c
  | Ast.C_nil -> Nil
  | Ast.C_unspecified -> Unspecified
  | Ast.C_undefined -> Undefined

let rec value_locs = function
  | Bool _ | Int _ | Sym _ | Str _ | Char _ | Nil | Unspecified | Undefined
  | Primop _ ->
      []
  | Pair (a, d) -> [ a; d ]
  | Vector locs -> Array.to_list locs
  | Closure (tag, _, env) -> tag :: Env.locations env
  | Escape (tag, k) -> tag :: cont_locs_acc [] k

and cont_locs_acc acc k =
  match k with
  | Halt -> acc
  | Select { env; next; _ } | Assign { env; next; _ } | Return { env; next; _ }
    ->
      cont_locs_acc (List.rev_append (Env.locations env) acc) next
  | Push { evaluated; env; next; _ } ->
      let acc = List.rev_append (Env.locations env) acc in
      let acc =
        List.fold_left
          (fun acc (_, v) -> List.rev_append (value_locs v) acc)
          acc evaluated
      in
      cont_locs_acc acc next
  | Call { vals; next; _ } ->
      let acc =
        List.fold_left (fun acc v -> List.rev_append (value_locs v) acc) acc vals
      in
      cont_locs_acc acc next
  | Return_stack { dels; env; next; _ } ->
      let acc = List.rev_append dels acc in
      cont_locs_acc (List.rev_append (Env.locations env) acc) next

let cont_locs k = cont_locs_acc [] k

let tag_of_value = function
  | Bool _ -> "boolean"
  | Int _ -> "number"
  | Sym _ -> "symbol"
  | Str _ -> "string"
  | Char _ -> "character"
  | Nil -> "empty list"
  | Unspecified -> "unspecified"
  | Undefined -> "undefined"
  | Pair _ -> "pair"
  | Vector _ -> "vector"
  | Closure _ -> "closure"
  | Escape _ -> "continuation"
  | Primop _ -> "primitive"
