(** The family of reference implementations (§§7-10) and the space
    consumption measurement of §12.

    A machine is a {!variant} plus policies resolving the semantics'
    nondeterminism (argument evaluation order [pi], the [I_stack]
    deletion set [A], the [random] seed). [run] executes a space-efficient
    computation (Definition 21): the garbage-collection rule is applied
    as required, and the reported peak is exactly
    [sup {space(C_i)}] over the computation — the lazy collection
    schedule never lets garbage inflate the peak (a collection runs
    whenever the tracked space would exceed the running peak).

    The space consumption of Definition 23 is [|P| + peak]; {!run}
    reports both parts. *)

type variant = Tail | Gc | Stack | Evlis | Free | Sfs

val all_variants : variant list
val variant_name : variant -> string
(** ["tail"], ["gc"], ["stack"], ["evlis"], ["free"], ["sfs"]. *)

val variant_of_name : string -> variant option

(** Argument evaluation order: the paper's nondeterministic permutation
    [pi], resolved by policy. *)
type perm_policy =
  | Left_to_right
  | Right_to_left
  | Seeded of int  (** a deterministic shuffle per call site *)

(** How [I_stack] chooses the deletion set [A] at each call.
    [Algol] deletes every location bound by the call and reports a
    dangling pointer (stuck) if the side condition fails — Algol-like
    stack allocation, which §8 notes determines [S_stack]. [Safe_deletion]
    deletes the maximal subset that satisfies the side condition. *)
type stack_policy = Algol | Safe_deletion

(** Ablation toggle (experiment E8): which environment [I_gc]/[I_stack]
    return frames capture. [Closure_env] (default) is the reading under
    which Theorem 25's first separation holds; [Register_env] is the
    literal [rho'] of the typeset rule, under which a tail call's frame
    pins the caller's locals and S_gc degenerates to S_stack's growth.
    See DESIGN.md, "Faithfulness notes". *)
type return_env = Closure_env | Register_env

(** Which execution tier runs the program. [Stepper] is the small-step
    reference interpreter (this module's [run]); [Vm] is the bytecode
    VM's instrumented mode (Tail variant only — bit-compatible peaks and
    step counts); [Vm_fast] is the bytecode VM with accounting compiled
    out (answers only). The tiers live in [Tailspace_vm.Vm]; the config
    field just names the choice so the harness can key caches on it. *)
type engine = Stepper | Vm | Vm_fast

val all_engines : engine list

val engine_name : engine -> string
(** ["stepper"], ["vm"], ["vm-fast"]. *)

val engine_of_name : string -> engine option

(** The full identity of a machine: every knob {!create_with} consumes,
    as one first-class, serializable record. Two machines built from
    equal configs behave identically, and [to_json] is a complete,
    canonical description — the harness derives sweep cache keys from
    it and the CLI prints it. *)
module Config : sig
  type t = {
    variant : variant;
    perm : perm_policy;
    stack_policy : stack_policy;
    return_env : return_env;
    evlis_drop_at_creation : bool;
        (** second E8 ablation toggle: when [false], [I_evlis] only
            drops the environment in the printed §9 push rules, so
            nullary calls retain it and the tail/evlis separation
            fails *)
    seed : int;  (** LCG seed for [random] and [Seeded] permutations *)
    annotate : bool;
        (** precompute the {!Tailspace_analysis.Annot} side table and
            serve the [I_free]/[I_sfs] free-variable sets from it;
            observables are identical either way (the differential
            oracle checks this), only per-step cost changes *)
    engine : engine;
        (** which execution tier the harness should run this config on;
            [create_with] itself always builds the stepper state (the VM
            reuses it for its globals and annotations) *)
  }

  val default : t
  (** [Tail], [Left_to_right], [Safe_deletion], [Closure_env], [true],
      seed 24054, annotations on, [Stepper] engine. *)

  val make :
    ?variant:variant ->
    ?perm:perm_policy ->
    ?stack_policy:stack_policy ->
    ?return_env:return_env ->
    ?evlis_drop_at_creation:bool ->
    ?seed:int ->
    ?annotate:bool ->
    ?engine:engine ->
    unit ->
    t
  (** {!default} with the given fields replaced. *)

  val perm_name : perm_policy -> string
  (** ["ltr"], ["rtl"], ["seeded:<seed>"]. *)

  val perm_of_name : string -> perm_policy option
  val stack_policy_name : stack_policy -> string
  val stack_policy_of_name : string -> stack_policy option
  val return_env_name : return_env -> string
  val return_env_of_name : string -> return_env option

  val to_json : t -> Tailspace_telemetry.Telemetry.Json.t
  val of_json : Tailspace_telemetry.Telemetry.Json.t -> (t, string) result
  (** Inverse of {!to_json}. *)
end

type t

val create_with : Config.t -> t
(** A machine with its initial environment and store ([rho_0]/[sigma_0],
    §12): primitives plus a Scheme-level prelude (list and vector
    utilities) evaluated under this machine's own variant. *)

val create :
  ?variant:variant ->
  ?perm:perm_policy ->
  ?stack_policy:stack_policy ->
  ?return_env:return_env ->
  ?evlis_drop_at_creation:bool ->
  ?seed:int ->
  unit ->
  t
[@@deprecated "use Machine.create_with (Machine.Config.make ... ())"]
(** Thin wrapper over {!create_with}: each argument defaults to its
    {!Config.default} field (annotations on). *)

val variant : t -> variant

val config : t -> Config.t
(** The configuration this machine was built with. *)

val annotations : t -> Tailspace_analysis.Annot.t option
(** The machine's annotation table ([None] when built with
    [annotate = false]); shared with engines that want the same
    precomputed facts. *)

val initial : t -> Types.Env.t * Store.t
(** The machine's [rho_0] and [sigma_0] (primitives + prelude), e.g. for
    alternative evaluators over the same value domain. *)

val prelude_source : string
(** The Scheme source of the prelude evaluated into [rho_0]/[sigma_0] —
    alternative engines with their own value domain (the fast VM tier)
    compile the same definitions so the observable library is
    identical. *)

type outcome =
  | Done of { value : Types.value; store : Store.t; answer : string }
      (** final configuration; [answer] per Definition 11 *)
  | Stuck of string
      (** no rule applies: program error, or an [I_stack] dangling
          pointer *)
  | Aborted of {
      reason : Tailspace_resilience.Resilience.abort_reason;
      steps : int;
      peak_space : int;
    }
      (** the resource governor stopped the run: fuel, space budget,
          deadline, output cap, or an injected fault. The old
          [Out_of_fuel] outcome is now
          [Aborted { reason = Out_of_fuel _; _ }]. *)

type result = {
  outcome : outcome;
  steps : int;
  peaks : (Space_model.t * int) list;
      (** [sup space(C_i)] under every requested model, in canonical
          model order, excluding the [|P|] term. [Flat] (Figure 7) is
          always present; [Linked] (Figure 8) and [Log] (pointer-size
          bits) appear when requested via [Run_opts.measure] *)
  program_size : int;  (** [|P|]: AST nodes of the expression run *)
  gc_runs : int;
  output : string;  (** whatever [display]/[write]/[newline] emitted *)
}

val peak_of : result -> Space_model.t -> int option
(** The measured peak under a model, [None] when not requested. *)

val peak_space : result -> int
(** The flat-model peak — always measured, so total. *)

val peak_linked : result -> int option
(** [peak_of r Linked]: the linked-model peak, when requested. *)

val peak_log : result -> int option
(** [peak_of r Log]: the log-model peak in bit-units, when requested. *)

val space_consumption : result -> int
(** [|P| + peak]: Definition 23's [S_X(P, D)] for the executed
    computation, in the flat model. *)

val alloc_kind_of_value :
  Types.value -> Tailspace_telemetry.Telemetry.alloc_kind
(** Telemetry classification of an allocated value (shared with the
    alternative engines so allocation counters are comparable). *)

(** Everything that parameterizes one measured run, as a record — the
    run-time mirror of {!Config}. *)
module Run_opts : sig
  type t = {
    fuel : int;  (** default 20 million steps *)
    budget : Tailspace_resilience.Resilience.Budget.t option;
        (** resource governor: any exceeded limit ends the run with
            [Aborted] — never an exception, never an unbounded loop. Its
            fuel field overrides [fuel]; the space budget bounds the
            configuration's live flat space (the machine collects before
            judging, so the collector's laziness is not charged against
            the program); the deadline is wall-clock from run start; the
            output cap bounds [display]/[write] bytes *)
    fault : Tailspace_resilience.Resilience.Fault.plan option;
        (** deterministic fault injection: collections forced at chosen
            steps (recorded with reason [Gc_forced]; under the [`Exact]
            policy they cannot change the measured peak), an allocation
            that fails ([Aborted (Injected_fault _)]), and a mid-run
            fuel drop *)
    measure : Space_model.t list;
        (** the space-accounting models to measure (normalized: sorted,
            deduplicated, always containing [Flat]). [Linked] or [Log]
            force a collection at every step (slower); [Flat] alone uses
            the lazy schedule governed by [gc_policy] *)
    gc_policy : [ `Exact | `Approximate ];
        (** [`Exact] (default) reports the true [sup space(C_i)];
            [`Approximate] lets tracked space overshoot the running peak
            by 12.5% (plus 64 words) before collecting, so the reported
            peak may underestimate the sup by that much — use it for
            large parameter sweeps where only the growth shape
            matters *)
    telemetry : Tailspace_telemetry.Telemetry.t option;
        (** observes the whole run: per-step counters and high-water
            marks, collection events with live/freed counts and trigger
            reason, an optional event stream and configuration sink, a
            bounded ring buffer of recent configurations (the trace to
            dump when a run gets {!Stuck}), and an optional
            space-over-time profile. A run without telemetry pays
            nothing beyond an [is-None] branch per step *)
    provenance : Census.t option;
        (** space-provenance census: tag every allocation with its
            allocation site, thread site ids through continuation
            frames, and stash the exact peak configurations so
            {!Census.flat_census}/{!Census.linked_census} can decompose
            the measured peaks per site afterwards. Requires a machine
            built with [annotate = true] ([Invalid_argument] otherwise);
            the linked and log stashes additionally require the
            corresponding model in [measure].
            Sites are bookkeeping — answers, steps, and peaks are
            unchanged (the differential oracle checks the censuses sum
            to the peaks exactly) *)
  }

  val default : t

  val make :
    ?fuel:int ->
    ?budget:Tailspace_resilience.Resilience.Budget.t ->
    ?fault:Tailspace_resilience.Resilience.Fault.plan ->
    ?measure:Space_model.t list ->
    ?gc_policy:[ `Exact | `Approximate ] ->
    ?telemetry:Tailspace_telemetry.Telemetry.t ->
    ?provenance:Census.t ->
    unit ->
    t
  (** {!default} with the given fields replaced. [measure] is
      normalized (see {!Space_model.normalize}). *)
end

val exec : ?opts:Run_opts.t -> t -> Tailspace_ast.Ast.expr -> result
(** Evaluate an expression from the initial configuration under
    [opts] (default {!Run_opts.default}). *)

val exec_program :
  ?opts:Run_opts.t ->
  t ->
  program:Tailspace_ast.Ast.expr ->
  input:Tailspace_ast.Ast.expr ->
  result
(** §12's convention: [program] evaluates to a procedure of one argument,
    which is applied to [input]; runs [(program input)]. *)

val exec_string : ?opts:Run_opts.t -> t -> string -> result
(** Parse and expand a whole program (see
    {!Tailspace_expander.Expand.program}) and run it. *)

val run :
  ?fuel:int ->
  ?budget:Tailspace_resilience.Resilience.Budget.t ->
  ?fault:Tailspace_resilience.Resilience.Fault.plan ->
  ?measure_linked:bool ->
  ?gc_policy:[ `Exact | `Approximate ] ->
  ?telemetry:Tailspace_telemetry.Telemetry.t ->
  ?provenance:Census.t ->
  ?on_step:(steps:int -> space:int -> unit) ->
  ?trace:(int -> string -> unit) ->
  t ->
  Tailspace_ast.Ast.expr ->
  result
[@@deprecated "use Machine.exec with Machine.Run_opts"]
(** Labelled-argument shim over {!exec}. [on_step] and [trace] are shims
    over the telemetry observation point: [on_step] receives the step
    index and the configuration's flat space after any collection
    (exactly a telemetry [Step] event), and [trace] receives the same
    one-line configuration description the telemetry ring buffer records
    (exactly what a telemetry [config_sink] receives). New code should
    pass [Run_opts.telemetry] instead; removal is noted in DESIGN.md. *)

val run_program :
  ?fuel:int ->
  ?budget:Tailspace_resilience.Resilience.Budget.t ->
  ?fault:Tailspace_resilience.Resilience.Fault.plan ->
  ?measure_linked:bool ->
  ?gc_policy:[ `Exact | `Approximate ] ->
  ?telemetry:Tailspace_telemetry.Telemetry.t ->
  ?on_step:(steps:int -> space:int -> unit) ->
  ?trace:(int -> string -> unit) ->
  t ->
  program:Tailspace_ast.Ast.expr ->
  input:Tailspace_ast.Ast.expr ->
  result
[@@deprecated "use Machine.exec_program with Machine.Run_opts"]
(** Labelled-argument shim over {!exec_program}. *)

val run_string :
  ?fuel:int ->
  ?budget:Tailspace_resilience.Resilience.Budget.t ->
  ?fault:Tailspace_resilience.Resilience.Fault.plan ->
  ?measure_linked:bool ->
  ?gc_policy:[ `Exact | `Approximate ] ->
  ?telemetry:Tailspace_telemetry.Telemetry.t ->
  ?on_step:(steps:int -> space:int -> unit) ->
  ?trace:(int -> string -> unit) ->
  t ->
  string ->
  result
[@@deprecated "use Machine.exec_string with Machine.Run_opts"]
(** Labelled-argument shim over {!exec_string}. *)

val eval_global : t -> Tailspace_ast.Ast.expr -> (Types.value * Store.t, string) Result.t
(** Evaluate under the initial environment without measurement
    (used by tests and the prelude loader). *)

val define_global : t -> string -> Tailspace_ast.Ast.expr -> (unit, string) Result.t
(** Evaluate and install a new global binding (top-level [define]
    semantics: the name is in scope during the evaluation, so recursive
    procedure definitions work). Mutates the machine's initial state. *)
