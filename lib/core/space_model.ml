module Json = Tailspace_telemetry.Telemetry.Json

type t = Flat | Linked | Log

let all = [ Flat; Linked; Log ]
let rank = function Flat -> 0 | Linked -> 1 | Log -> 2
let compare a b = Int.compare (rank a) (rank b)
let equal a b = rank a = rank b
let name = function Flat -> "flat" | Linked -> "linked" | Log -> "log"

let of_name = function
  | "flat" -> Some Flat
  | "linked" -> Some Linked
  | "log" -> Some Log
  | _ -> None

let unit_name = function Flat | Linked -> "words" | Log -> "bits"
let word_bits = 64
let to_bits model x = match model with Flat | Linked -> x * word_bits | Log -> x
let mem m ms = List.exists (equal m) ms

let normalize ms =
  List.filter (fun m -> mem m ms || equal m Flat) all

let names ms = String.concat "+" (List.map name (normalize ms))
let to_json m = Json.Str (name m)

let of_json = function
  | Json.Str s -> (
      match of_name s with
      | Some m -> Ok m
      | None -> Error (Printf.sprintf "space_model: unknown model %S" s))
  | _ -> Error "space_model: expected a string"

let list_to_json ms = Json.List (List.map to_json (normalize ms))

let list_of_json = function
  | Json.List l ->
      let rec go acc = function
        | [] -> Ok (normalize (List.rev acc))
        | j :: rest -> (
            match of_json j with
            | Ok m -> go (m :: acc) rest
            | Error _ as e -> e)
      in
      go [] l
  | _ -> Error "space_model: expected a list of model names"
