(** The space-accounting models.

    The paper gives two columns: flat [S_X] (Figure 7: every reachable
    location costs one word) and linked [U_X] (Figure 8, section 13:
    shared environment structure is deduplicated, so each distinct
    (identifier, location) binding costs one word globally). This
    module adds a third, pointer-size model [Log] after
    Accattoli-Dal Lago-Vanoni ("Reasonable Space for the Lambda-Calculus,
    Logarithmically"): a location is named by a pointer, and a pointer
    into a store of [k] cells needs only [ceil(log2 k)] bits - so every
    linked-model unit is charged [pointer_bits] bit-units instead of one
    word.

    Charge table (per live unit):

    {v
      model    unit   env binding        frame/closure word   store cell
      Flat     word   1 per reference    1                    1 + |value|
      Linked   word   1, deduplicated    1                    1 + |value|
      Log      bit    b, deduplicated    b                    b * (1 + |value|)
    v}

    where [b = max 1 (ceil(log2 |store|))] is the pointer size for the
    measured store. [Flat] and [Linked] are measured in words; [Log] is
    measured in bits. To compare across models, scale word counts by
    {!word_bits}. *)

type t = Flat | Linked | Log

val all : t list
(** All models, in canonical order: [[Flat; Linked; Log]]. *)

val compare : t -> t -> int
(** Canonical order: [Flat < Linked < Log]. *)

val equal : t -> t -> bool

val name : t -> string
(** ["flat"], ["linked"], ["log"]. *)

val of_name : string -> t option

val unit_name : t -> string
(** ["words"] for [Flat]/[Linked], ["bits"] for [Log]. *)

val word_bits : int
(** The word size used to compare word-denominated models against the
    bit-denominated [Log] model: 64. *)

val to_bits : t -> int -> int
(** [to_bits model x] scales a charge [x] in [model]'s native unit into
    bits: [x * word_bits] for the word models, [x] for [Log]. *)

val normalize : t list -> t list
(** Sort into canonical order, drop duplicates, and make sure [Flat] is
    present - flat accounting drives the lazy-GC measured loop, so it is
    always measured. [normalize [] = [Flat]]. *)

val mem : t -> t list -> bool

val names : t list -> string
(** Canonical [+]-separated key, e.g. ["flat+linked"] - stable across
    runs, used in cache keys. Normalizes first. *)

val to_json : t -> Tailspace_telemetry.Telemetry.Json.t

val of_json : Tailspace_telemetry.Telemetry.Json.t -> (t, string) result

val list_to_json : t list -> Tailspace_telemetry.Telemetry.Json.t
(** A JSON list of model names, in canonical order. *)

val list_of_json :
  Tailspace_telemetry.Telemetry.Json.t -> (t list, string) result
(** Accepts a JSON list of model-name strings; the result is
    normalized. *)
