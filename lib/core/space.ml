module Env = Types.Env

type acc = {
  bindings : (string * Types.loc, unit) Hashtbl.t;
      (* the global binding set: each (identifier, location) pair counts
         once per configuration *)
  mutable words : int; (* all non-binding space *)
}

let add_env acc env =
  Env.iter (fun x l -> Hashtbl.replace acc.bindings (x, l) ()) env

(* A value in the accumulator or in a store cell. Closures cost one word
   plus shared bindings; escapes cost one word plus their continuation
   (walked with per-frame overheads and shared bindings). Values held in
   push/call frames are *not* passed here: Figures 7 and 8 charge them
   exactly one word via the frame's [n] term, and counting more would
   break the pointwise bound U_X <= S_X of §13. *)
let rec add_value acc (v : Types.value) =
  match v with
  | Closure (_, _, env) ->
      add_env acc env;
      acc.words <- acc.words + 1
  | Escape (_, k) ->
      acc.words <- acc.words + 1;
      add_cont acc k
  | v -> acc.words <- acc.words + Types.value_space v

(* Frame overheads per Figure 8: each frame costs one word plus, for push
   and call frames, one word per held expression or value; saved
   environments contribute bindings only. *)
and add_cont acc (k : Types.cont) =
  match k with
  | Halt -> acc.words <- acc.words + 1
  | Select { env; next; _ } | Assign { env; next; _ } ->
      add_env acc env;
      acc.words <- acc.words + 1;
      add_cont acc next
  | Push { remaining; evaluated; env; next; _ } ->
      add_env acc env;
      acc.words <-
        acc.words + 1 + List.length remaining + List.length evaluated;
      add_cont acc next
  | Call { vals; next; _ } ->
      acc.words <- acc.words + 1 + List.length vals;
      add_cont acc next
  | Return { env; next; _ } | Return_stack { env; next; _ } ->
      add_env acc env;
      acc.words <- acc.words + 1;
      add_cont acc next

let linked_config_space ~control ~env ~cont ~store =
  let acc = { bindings = Hashtbl.create 64; words = 0 } in
  add_env acc env;
  (match control with `Expr _ -> () | `Value v -> add_value acc v);
  add_cont acc cont;
  Store.iter
    (fun _ v ->
      acc.words <- acc.words + 1;
      add_value acc v)
    store;
  acc.words + Hashtbl.length acc.bindings

(* ceil(log2 n) for n >= 1; 0 for n <= 1. *)
let ceil_log2 n =
  let rec go b p = if p >= n then b else go (b + 1) (p * 2) in
  if n <= 1 then 0 else go 0 1

let pointer_bits store = max 1 (ceil_log2 (Store.cardinal store))

let log_config_space ~control ~env ~cont ~store =
  pointer_bits store * linked_config_space ~control ~env ~cont ~store
