(** Environments: finite maps from identifiers to store locations
    ([rho : Identifier -> Location], Figure 4).

    Representation: a shared immutable {e base} (the initial global
    environment, identical — physically — across every environment in a
    configuration) plus an {e overlay} of bindings added since. The split
    is invisible to lookup semantics; it exists so the garbage collector
    and the [I_stack] occurs-check can trace the hundred-odd global
    bindings once per collection instead of once per frame. The flat
    space model's [|Dom rho|] is cached for O(1) access. *)

type loc = int

type t

val empty : t
val is_empty : t -> bool

val cardinal : t -> int
(** [|Dom rho|], O(1). *)

val find_opt : string -> t -> loc option
val mem : string -> t -> bool

val add : string -> loc -> t -> t
(** [add x a rho] is [rho[x -> a]] (shadows any base binding). *)

val add_list : (string * loc) list -> t -> t

val rebase : t -> t
(** Collapse every binding into the base. The machine calls this once,
    after loading the prelude, so that all run-time environments share
    one physical base. *)

val restrict : t -> Tailspace_ast.Ast.Iset.t -> t
(** [restrict rho xs] is [rho | (Dom rho ∩ xs)] — the operation the
    [I_free]/[I_sfs] rules apply. When [xs ⊇ Dom rho] the restriction is
    the identity and [rho] is returned physically unchanged (keeping its
    base/overlay split); otherwise the result is base-less. *)

val bindings : t -> (string * loc) list
(** Shadow-aware: one pair per identifier in [Dom rho]. *)

val locations : t -> loc list

val iter : (string -> loc -> unit) -> t -> unit
(** Shadow-aware iteration over [graph(rho)]. *)

val fold : (string -> loc -> 'a -> 'a) -> t -> 'a -> 'a

(** {1 Collector support} *)

val iter_overlay : (string -> loc -> unit) -> t -> unit
(** Only the overlay. May include bindings that shadow the base; the
    collector over-approximates by tracing both, which can pin a
    shadowed global cell — a bounded, documented overcount. *)

val has_base : t -> bool
val base_eq : t -> t -> bool
(** Physical identity of the bases; the collector's once-per-base
    dedup key. *)

val iter_base : (string -> loc -> unit) -> t -> unit
