module Ast = Tailspace_ast.Ast
module Expand = Tailspace_expander.Expand
module Reader = Tailspace_sexp.Reader
module Telemetry = Tailspace_telemetry.Telemetry
module Resilience = Tailspace_resilience.Resilience
module Annot = Tailspace_analysis.Annot
module Prov = Tailspace_provenance.Provenance
open Types

type variant = Tail | Gc | Stack | Evlis | Free | Sfs

let all_variants = [ Tail; Gc; Stack; Evlis; Free; Sfs ]

let variant_name = function
  | Tail -> "tail"
  | Gc -> "gc"
  | Stack -> "stack"
  | Evlis -> "evlis"
  | Free -> "free"
  | Sfs -> "sfs"

let variant_of_name = function
  | "tail" -> Some Tail
  | "gc" -> Some Gc
  | "stack" -> Some Stack
  | "evlis" -> Some Evlis
  | "free" -> Some Free
  | "sfs" -> Some Sfs
  | _ -> None

type perm_policy = Left_to_right | Right_to_left | Seeded of int
type stack_policy = Algol | Safe_deletion
type return_env = Closure_env | Register_env
type engine = Stepper | Vm | Vm_fast

let all_engines = [ Stepper; Vm; Vm_fast ]

let engine_name = function
  | Stepper -> "stepper"
  | Vm -> "vm"
  | Vm_fast -> "vm-fast"

let engine_of_name = function
  | "stepper" -> Some Stepper
  | "vm" -> Some Vm
  | "vm-fast" -> Some Vm_fast
  | _ -> None

module Config = struct
  module Json = Telemetry.Json

  type t = {
    variant : variant;
    perm : perm_policy;
    stack_policy : stack_policy;
    return_env : return_env;
    evlis_drop_at_creation : bool;
    seed : int;
    annotate : bool;
    engine : engine;
  }

  let default =
    {
      variant = Tail;
      perm = Left_to_right;
      stack_policy = Safe_deletion;
      return_env = Closure_env;
      evlis_drop_at_creation = true;
      seed = 24054;
      annotate = true;
      engine = Stepper;
    }

  let make ?(variant = default.variant) ?(perm = default.perm)
      ?(stack_policy = default.stack_policy) ?(return_env = default.return_env)
      ?(evlis_drop_at_creation = default.evlis_drop_at_creation)
      ?(seed = default.seed) ?(annotate = default.annotate)
      ?(engine = default.engine) () =
    { variant; perm; stack_policy; return_env; evlis_drop_at_creation; seed;
      annotate; engine }

  let perm_name = function
    | Left_to_right -> "ltr"
    | Right_to_left -> "rtl"
    | Seeded s -> "seeded:" ^ string_of_int s

  let perm_of_name s =
    match s with
    | "ltr" -> Some Left_to_right
    | "rtl" -> Some Right_to_left
    | _ -> (
        match String.index_opt s ':' with
        | Some i
          when String.sub s 0 i = "seeded" -> (
            match
              int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1))
            with
            | Some seed -> Some (Seeded seed)
            | None -> None)
        | _ -> None)

  let stack_policy_name = function
    | Algol -> "algol"
    | Safe_deletion -> "safe"

  let stack_policy_of_name = function
    | "algol" -> Some Algol
    | "safe" -> Some Safe_deletion
    | _ -> None

  let return_env_name = function
    | Closure_env -> "closure"
    | Register_env -> "register"

  let return_env_of_name = function
    | "closure" -> Some Closure_env
    | "register" -> Some Register_env
    | _ -> None

  let to_json t =
    Json.Obj
      [
        ("variant", Json.Str (variant_name t.variant));
        ("perm", Json.Str (perm_name t.perm));
        ("stack_policy", Json.Str (stack_policy_name t.stack_policy));
        ("return_env", Json.Str (return_env_name t.return_env));
        ("evlis_drop_at_creation", Json.Bool t.evlis_drop_at_creation);
        ("seed", Json.Int t.seed);
        ("annotate", Json.Bool t.annotate);
        ("engine", Json.Str (engine_name t.engine));
      ]

  let of_json json =
    let ( let* ) = Result.bind in
    let field name decode =
      match Json.member name json with
      | None -> Error (Printf.sprintf "config: missing field %S" name)
      | Some v -> (
          match decode v with
          | Some x -> Ok x
          | None -> Error (Printf.sprintf "config: bad field %S" name))
    in
    let str decode = function Json.Str s -> decode s | _ -> None in
    let bool = function Json.Bool b -> Some b | _ -> None in
    let int = function Json.Int i -> Some i | _ -> None in
    let* variant = field "variant" (str variant_of_name) in
    let* perm = field "perm" (str perm_of_name) in
    let* stack_policy = field "stack_policy" (str stack_policy_of_name) in
    let* return_env = field "return_env" (str return_env_of_name) in
    let* evlis_drop_at_creation = field "evlis_drop_at_creation" bool in
    let* seed = field "seed" int in
    let* annotate = field "annotate" bool in
    (* [engine] arrived after the first serialized configs; a missing
       field means the classic stepper. *)
    let* engine =
      match Json.member "engine" json with
      | None -> Ok Stepper
      | Some (Json.Str s) -> (
          match engine_of_name s with
          | Some e -> Ok e
          | None -> Error "config: bad field \"engine\"")
      | Some _ -> Error "config: bad field \"engine\""
    in
    Ok
      { variant; perm; stack_policy; return_env; evlis_drop_at_creation; seed;
        annotate; engine }
end

type t = {
  variant : variant;
  perm : perm_policy;
  stack_policy : stack_policy;
  return_env : return_env;
  evlis_drop_at_creation : bool;
  seed : int;
  engine : engine;
  annot : Annot.t option;
  mutable prov : Census.t option;
      (* census of the run in progress; installed by [run] when the
         caller asks for provenance, cleared otherwise *)
  mutable track_sites : bool;
      (* thread annotation site ids into continuation frames. On when
         provenance is on, and also when telemetry records
         configurations (so stuck traces can name the offending site)
         — never affects sizes, steps, or peaks *)
  ctx : Prim.ctx;
  mutable genv : Env.t;
  mutable gstore : Store.t;
}

let variant t = t.variant
let initial t = (t.genv, t.gstore)

let config t : Config.t =
  {
    variant = t.variant;
    perm = t.perm;
    stack_policy = t.stack_policy;
    return_env = t.return_env;
    evlis_drop_at_creation = t.evlis_drop_at_creation;
    seed = t.seed;
    annotate = Option.is_some t.annot;
    engine = t.engine;
  }

let annotations t = t.annot

type config = {
  control : [ `Expr of Ast.expr | `Value of value ];
  env : Env.t;
  cont : cont;
  store : Store.t;
}

type step_result =
  | Next of config
  | Final of value * Store.t
  | Stuck_state of string

(* ------------------------------------------------------------------ *)
(* Argument evaluation order: the permutation pi.                      *)

let eval_order t n =
  match t.perm with
  | Left_to_right -> List.init n (fun i -> i)
  | Right_to_left -> List.init n (fun i -> n - 1 - i)
  | Seeded _ ->
      (* Fisher-Yates driven by the machine's LCG, advanced per call
         site, so each call in a run gets its own order but the whole
         run is reproducible from the seed. *)
      let next_random bound =
        t.ctx.rng <- ((t.ctx.rng * 0x5DEECE66D) + 0xB) land 0xFFFFFFFFFFFF;
        t.ctx.rng mod bound
      in
      let a = Array.init n (fun i -> i) in
      for i = n - 1 downto 1 do
        let j = next_random (i + 1) in
        let tmp = a.(i) in
        a.(i) <- a.(j);
        a.(j) <- tmp
      done;
      Array.to_list a

(* ------------------------------------------------------------------ *)
(* Annotation lookups. Every dynamic free-variable computation below
   has a static twin in [Annot]; each helper falls back to the dynamic
   computation for nodes the pre-pass never saw, so the machine is
   total with or without annotations.                                  *)

let fv_lambda t e lam =
  match t.annot with
  | None -> Ast.free_vars_lambda lam
  | Some a -> (
      match Annot.free_vars a e with
      | Some fv -> fv
      | None -> Ast.free_vars_lambda lam)

let fv_branches t e e1 e2 =
  match t.annot with
  | None -> Ast.Iset.union (Ast.free_vars e1) (Ast.free_vars e2)
  | Some a -> (
      match Annot.find a e with
      | Some { Annot.branch = Some s; _ } -> s
      | _ -> Ast.Iset.union (Ast.free_vars e1) (Ast.free_vars e2))

(* The I_sfs push sets for a call: the restriction for the frame created
   now plus one set per later frame (threaded through the continuation
   as [fv_rest]). [None] means "recompute dynamically". *)
let fv_call t e rest_indices =
  match t.annot with
  | None -> None
  | Some a -> (
      match Annot.find a e with
      | Some { Annot.call = Some ci; _ } -> (
          match t.perm with
          | Left_to_right -> Some (ci.Annot.ltr_first, ci.Annot.ltr_rest)
          | Right_to_left -> Some (ci.Annot.rtl_first, ci.Annot.rtl_rest)
          | Seeded _ -> Some (Annot.seeded_sets ci rest_indices))
      | _ -> None)

(* Provenance site of an expression: a table lookup when sites are being
   tracked this run, [-1] (one branch) otherwise. *)
let site_of t e =
  if not t.track_sites then -1
  else
    match t.annot with
    | None -> -1
    | Some a -> ( match Annot.site_id a e with Some s -> s | None -> -1)

(* Declare the provenance of the allocations the current rule is about
   to perform. No-op (one branch) when provenance is off. *)
let note_alloc_site t ~site ~phase =
  match t.prov with
  | None -> ()
  | Some c -> Census.set_alloc_site c ~site ~phase

(* ------------------------------------------------------------------ *)
(* Reduction rules (configurations whose first component is an
   expression).                                                        *)

let step_expr t config e =
  let { env; cont; store; _ } = config in
  match (e : Ast.expr) with
  | Ast.Quote c -> Next { config with control = `Value (value_of_const c) }
  | Ast.Var i -> (
      match Env.find_opt i env with
      | None -> Stuck_state (Printf.sprintf "unbound variable: %s" i)
      | Some l -> (
          match Store.find_opt store l with
          | None ->
              Stuck_state
                (Printf.sprintf "%s: location deleted by stack allocation" i)
          | Some Undefined ->
              Stuck_state
                (Printf.sprintf "%s: letrec variable used before initialization" i)
          | Some v -> Next { config with control = `Value v }))
  | Ast.Lambda lam ->
      let captured =
        match t.variant with
        | Free | Sfs -> Env.restrict env (fv_lambda t e lam)
        | Tail | Gc | Stack | Evlis -> env
      in
      note_alloc_site t ~site:(site_of t e) ~phase:(Some Prov.P_closure);
      let store, tag = Store.alloc store Unspecified in
      Next { config with control = `Value (Closure (tag, lam, captured)); store }
  | Ast.If (e0, e1, e2) ->
      let saved =
        match t.variant with
        | Sfs -> Env.restrict env (fv_branches t e e1 e2)
        | Tail | Gc | Stack | Evlis | Free -> env
      in
      Next
        {
          config with
          control = `Expr e0;
          cont = select ~site:(site_of t e) ~e1 ~e2 ~env:saved ~next:cont ();
        }
  | Ast.Set (i, e0) ->
      let saved =
        match t.variant with
        | Sfs -> Env.restrict env (Ast.Iset.singleton i)
        | Tail | Gc | Stack | Evlis | Free -> env
      in
      Next
        {
          config with
          control = `Expr e0;
          cont = assign ~site:(site_of t e) ~id:i ~env:saved ~next:cont ();
        }
  | Ast.Call (f, args) -> (
      let exprs = Array.of_list (f :: args) in
      match eval_order t (Array.length exprs) with
      | [] -> assert false
      | i0 :: rest_indices ->
          let remaining = List.map (fun i -> (i, exprs.(i))) rest_indices in
          (* Evlis tail recursion: the environment need not survive the
             evaluation of the call's last subexpression (§9). For a
             single-subexpression call the operator is that last
             subexpression, so the frame is born empty — exactly what the
             I_sfs restriction to FV(no remaining exprs) = {} gives, and
             what Theorem 25's tail/evlis separator requires. *)
          let frame_env, fv_rest =
            match t.variant with
            | Sfs -> (
                match fv_call t e rest_indices with
                | Some (first, rest) -> (Env.restrict env first, rest)
                | None ->
                    ( Env.restrict env
                        (Ast.free_vars_of_list (List.map snd remaining)),
                      [] ))
            | Evlis ->
                ( (if remaining = [] && t.evlis_drop_at_creation then Env.empty
                   else env),
                  [] )
            | Tail | Gc | Stack | Free -> (env, [])
          in
          Next
            {
              config with
              control = `Expr exprs.(i0);
              cont =
                push ~fv_rest ~site:(site_of t e) ~pending:i0 ~remaining
                  ~evaluated:[] ~env:frame_env ~next:cont ();
            })

(* ------------------------------------------------------------------ *)
(* Procedure invocation (the call rules).                              *)

(* [site] is the provenance site of the call expression whose frame we
   just popped: argument ribs, rest lists, escape tags, primitive
   allocations, and any I_gc/I_stack return frame are all charged to the
   call site. *)
let rec invoke ?(site = -1) t config v0 vals next =
  let { store; _ } = config in
  match v0 with
  | Closure (_, lam, captured) -> (
      let np = List.length lam.params in
      let nv = List.length vals in
      let arity_ok =
        match lam.rest with None -> nv = np | Some _ -> nv >= np
      in
      if not arity_ok then
        Stuck_state
          (Printf.sprintf "arity: procedure expects %s%d arguments, got %d"
             (match lam.rest with None -> "" | Some _ -> "at least ")
             np nv)
      else
        let rec split k vs =
          if k = 0 then ([], vs)
          else
            match vs with
            | v :: rest ->
                let direct, extra = split (k - 1) rest in
                (v :: direct, extra)
            | [] -> assert false
        in
        let direct, extra = split np vals in
        note_alloc_site t ~site ~phase:(Some Prov.P_rib);
        let store, plocs = Store.alloc_many store direct in
        let store, rest_binding =
          match lam.rest with
          | None -> (store, [])
          | Some r ->
              note_alloc_site t ~site ~phase:None;
              let store, lst = Prim.values_to_list store extra in
              note_alloc_site t ~site ~phase:(Some Prov.P_rib);
              let store, rl = Store.alloc store lst in
              (store, [ (r, rl) ])
        in
        let callee_env =
          Env.add_list (List.combine lam.params plocs @ rest_binding) captured
        in
        (* I_gc and I_stack return frames capture the callee's closure
           environment (the saved static link), not the caller's dynamic
           register environment. The paper's return:(rho', kappa) is
           typographically ambiguous, but only this reading validates
           Theorem 25's first separation: with the caller's register env
           the frame for a tail call pins the caller's locals (the vector
           in the separator), making S_gc quadratic and erasing the
           S_stack/S_gc gap. See DESIGN.md, "Faithfulness notes". *)
        let frame_env =
          match t.return_env with
          | Closure_env -> captured
          | Register_env -> config.env
        in
        let cont' =
          match t.variant with
          | Tail | Evlis | Free | Sfs -> next
          | Gc -> return_gc ~site ~env:frame_env ~next ()
          | Stack ->
              let dels = plocs @ List.map snd rest_binding in
              return_stack ~site ~dels ~env:frame_env ~next ()
        in
        match () with
        | () ->
            Next
              { control = `Expr lam.body; env = callee_env; cont = cont'; store })
  | Escape (_, saved) -> (
      match vals with
      | [ v ] -> Next { config with control = `Value v; env = Env.empty; cont = saved }
      | _ ->
          Stuck_state
            (Printf.sprintf "continuation expects 1 value, got %d"
               (List.length vals)))
  | Primop "apply" -> (
      match vals with
      | f :: (_ :: _ as rest) -> (
          let middle, last =
            let r = List.rev rest in
            (List.rev (List.tl r), List.hd r)
          in
          match Prim.list_to_values store last with
          | Some flattened -> invoke ~site t config f (middle @ flattened) next
          | None -> Stuck_state "apply: last argument is not a proper list")
      | _ -> Stuck_state "apply: expected a procedure and an argument list")
  | Primop ("call-with-current-continuation" | "call/cc") -> (
      match vals with
      | [ f ] ->
          note_alloc_site t ~site ~phase:(Some Prov.P_escape);
          let store, tag = Store.alloc store Unspecified in
          let escape = Escape (tag, next) in
          invoke ~site t { config with store } f [ escape ] next
      | _ -> Stuck_state "call/cc: expected exactly 1 argument")
  | Primop name -> (
      match Prim.find name with
      | None -> Stuck_state (Printf.sprintf "unknown primitive: %s" name)
      | Some fn -> (
          note_alloc_site t ~site ~phase:None;
          match fn t.ctx store vals with
          | store, v -> Next { config with control = `Value v; cont = next; store }
          | exception Prim.Prim_error m -> Stuck_state m
          | exception Invalid_argument m -> Stuck_state m))
  | v ->
      Stuck_state
        (Printf.sprintf "attempt to call a non-procedure (%s)" (tag_of_value v))

(* ------------------------------------------------------------------ *)
(* The I_stack deletion rule.                                          *)

let delete_frame t config v dels frame_env next =
  let { store; _ } = config in
  let table_of locs =
    let h = Hashtbl.create (List.length locs) in
    List.iter (fun l -> Hashtbl.replace h l ()) locs;
    h
  in
  let hits dels =
    let retained = Store.remove_all store dels in
    Gc.occurs_in_retained ~candidates:(table_of dels)
      ~control_locs:(value_locs v) ~env:frame_env ~cont:next ~retained
  in
  match t.stack_policy with
  | Algol ->
      let h = hits dels in
      if Hashtbl.length h > 0 then
        Stuck_state
          "stack deallocation would create a dangling pointer (I_stack with \
           Algol policy)"
      else
        Next
          {
            control = `Value v;
            env = frame_env;
            cont = next;
            store = Store.remove_all store dels;
          }
  | Safe_deletion ->
      (* Shrink A to its largest safe subset: drop any location that
         still occurs in the retained configuration and retry. *)
      let rec shrink dels =
        if dels = [] then []
        else
          let h = hits dels in
          if Hashtbl.length h = 0 then dels
          else shrink (List.filter (fun l -> not (Hashtbl.mem h l)) dels)
      in
      let safe = shrink dels in
      Next
        {
          control = `Value v;
          env = frame_env;
          cont = next;
          store = Store.remove_all store safe;
        }

(* ------------------------------------------------------------------ *)
(* Continuation rules (configurations whose first component is a
   value).                                                             *)

let step_value t config v =
  let { cont; store; _ } = config in
  match cont with
  | Halt -> Final (v, store)
  | Select { e1; e2; env; next; _ } ->
      let branch = if v = Bool false then e2 else e1 in
      Next { config with control = `Expr branch; env; cont = next }
  | Assign { id; env; next; _ } -> (
      match Env.find_opt id env with
      | None -> Stuck_state (Printf.sprintf "set!: unbound variable %s" id)
      | Some l -> (
          match Store.mem store l with
          | false ->
              Stuck_state
                (Printf.sprintf "set! %s: location deleted by stack allocation" id)
          | true ->
              Next
                {
                  control = `Value Unspecified;
                  env;
                  cont = next;
                  store = Store.set store l v;
                }))
  | Push { pending; remaining; evaluated; fv_rest; env; next; site; _ } -> (
      let evaluated = (pending, v) :: evaluated in
      match remaining with
      | (j, e) :: rest ->
          let frame_env, fv_rest' =
            match t.variant with
            | Sfs -> (
                (* The precomputed sets line up with [remaining]: the
                   head is this frame's restriction, the tail travels on
                   for the frames after it. *)
                match fv_rest with
                | s :: srest -> (Env.restrict env s, srest)
                | [] ->
                    ( Env.restrict env
                        (Ast.free_vars_of_list (List.map snd rest)),
                      [] ))
            | Evlis -> ((if rest = [] then Env.empty else env), [])
            | Tail | Gc | Stack | Free -> (env, [])
          in
          Next
            {
              config with
              control = `Expr e;
              env;
              cont =
                push ~fv_rest:fv_rest' ~site ~pending:j ~remaining:rest
                  ~evaluated ~env:frame_env ~next ();
            }
      | [] -> (
          let in_order =
            List.sort (fun (i, _) (j, _) -> Int.compare i j) evaluated
          in
          match in_order with
          | (0, operator) :: operands ->
              Next
                {
                  config with
                  control = `Value operator;
                  env;
                  cont = call ~site ~vals:(List.map snd operands) ~next ();
                }
          | _ -> assert false))
  | Call { vals; next; site; _ } -> invoke ~site t config v vals next
  | Return { env; next; _ } ->
      Next { config with control = `Value v; env; cont = next }
  | Return_stack { dels; env; next; _ } -> delete_frame t config v dels env next

let step t config =
  match config.control with
  | `Expr e -> step_expr t config e
  | `Value v -> step_value t config v

(* ------------------------------------------------------------------ *)
(* Space measurement (Definition 23 via Definition 21).                *)

let flat_space config =
  let base =
    Env.cardinal config.env + cont_space config.cont + Store.space config.store
  in
  match config.control with
  | `Expr _ -> base
  | `Value v -> base + value_space v

let control_locs config =
  match config.control with `Expr _ -> [] | `Value v -> value_locs v

let collect config =
  let store, reclaimed =
    Gc.collect ~control_locs:(control_locs config) ~env:config.env
      ~cont:config.cont config.store
  in
  ({ config with store }, reclaimed)

(* ------------------------------------------------------------------ *)
(* Evaluation without measurement (prelude, tests).                    *)

let eval_in t ~env ~store expr =
  (* Recording is incremental on physical identity, so re-evaluating a
     program (or a fresh [Call] wrapper around one) only annotates the
     genuinely new nodes. *)
  (match t.annot with Some a -> Annot.record a expr | None -> ());
  let rec loop config fuel =
    if fuel <= 0 then Error "out of fuel"
    else
      match step t config with
      | Next c -> loop c (fuel - 1)
      | Final (v, store) -> Ok (v, store)
      | Stuck_state m -> Error m
  in
  loop { control = `Expr expr; env; cont = Halt; store } 50_000_000

let eval_global t expr = eval_in t ~env:t.genv ~store:t.gstore expr

let define_global t name expr =
  let store, l = Store.alloc t.gstore Undefined in
  let env = Env.add name l t.genv in
  match eval_in t ~env ~store expr with
  | Ok (v, store) ->
      t.genv <- env;
      t.gstore <- Store.set store l v;
      Ok ()
  | Error m -> Error m

(* ------------------------------------------------------------------ *)
(* Initial environment: primitives plus a Scheme-level prelude.        *)

let prelude_source =
  {scheme|
(define (length lst)
  (define (loop lst acc)
    (if (null? lst) acc (loop (cdr lst) (+ acc 1))))
  (loop lst 0))
(define (list-ref lst k)
  (if (zero? k) (car lst) (list-ref (cdr lst) (- k 1))))
(define (list-tail lst k)
  (if (zero? k) lst (list-tail (cdr lst) (- k 1))))
(define (append2 a b)
  (if (null? a) b (cons (car a) (append2 (cdr a) b))))
(define (append . ls)
  (if (null? ls)
      '()
      (if (null? (cdr ls))
          (car ls)
          (append2 (car ls) (apply append (cdr ls))))))
(define (reverse lst)
  (define (loop lst acc)
    (if (null? lst) acc (loop (cdr lst) (cons (car lst) acc))))
  (loop lst '()))
(define (map f lst)
  (if (null? lst) '() (cons (f (car lst)) (map f (cdr lst)))))
(define (for-each f lst)
  (if (null? lst)
      #!unspecified
      (begin (f (car lst)) (for-each f (cdr lst)))))
(define (filter keep? lst)
  (if (null? lst)
      '()
      (if (keep? (car lst))
          (cons (car lst) (filter keep? (cdr lst)))
          (filter keep? (cdr lst)))))
(define (fold-left f acc lst)
  (if (null? lst) acc (fold-left f (f acc (car lst)) (cdr lst))))
(define (fold-right f init lst)
  (if (null? lst) init (f (car lst) (fold-right f init (cdr lst)))))
(define (memq x lst)
  (if (null? lst) #f (if (eq? x (car lst)) lst (memq x (cdr lst)))))
(define (memv x lst)
  (if (null? lst) #f (if (eqv? x (car lst)) lst (memv x (cdr lst)))))
(define (member x lst)
  (if (null? lst) #f (if (equal? x (car lst)) lst (member x (cdr lst)))))
(define (assq x lst)
  (if (null? lst) #f (if (eq? x (car (car lst))) (car lst) (assq x (cdr lst)))))
(define (assv x lst)
  (if (null? lst) #f (if (eqv? x (car (car lst))) (car lst) (assv x (cdr lst)))))
(define (assoc x lst)
  (if (null? lst) #f (if (equal? x (car (car lst))) (car lst) (assoc x (cdr lst)))))
(define (list? x)
  (if (null? x) #t (if (pair? x) (list? (cdr x)) #f)))
(define (caar p) (car (car p)))
(define (cadr p) (car (cdr p)))
(define (cdar p) (cdr (car p)))
(define (cddr p) (cdr (cdr p)))
(define (caddr p) (car (cddr p)))
(define (cdddr p) (cdr (cddr p)))
(define (list->vector lst)
  (define (fill! v i l)
    (if (null? l) v (begin (vector-set! v i (car l)) (fill! v (+ i 1) (cdr l)))))
  (fill! (make-vector (length lst)) 0 lst))
(define (vector->list v)
  (define (loop i acc)
    (if (< i 0) acc (loop (- i 1) (cons (vector-ref v i) acc))))
  (loop (- (vector-length v) 1) '()))
(define (gcd2 a b) (if (zero? b) (abs a) (gcd2 b (modulo a b))))
(define (gcd . xs) (fold-left gcd2 0 xs))
(define (%make-promise thunk)
  (let ((done #f) (value #f))
    (lambda ()
      (if done
          value
          (begin (set! value (thunk))
                 (set! done #t)
                 value)))))
(define (force promise) (promise))
|scheme}

let create_with (cfg : Config.t) =
  let t =
    {
      variant = cfg.variant;
      perm = cfg.perm;
      stack_policy = cfg.stack_policy;
      return_env = cfg.return_env;
      evlis_drop_at_creation = cfg.evlis_drop_at_creation;
      seed = cfg.seed;
      engine = cfg.engine;
      annot = (if cfg.annotate then Some (Annot.create ()) else None);
      prov = None;
      track_sites = false;
      ctx = Prim.make_ctx ~seed:cfg.seed ();
      genv = Env.empty;
      gstore = Store.empty;
    }
  in
  let genv, gstore =
    List.fold_left
      (fun (env, store) (name, v) ->
        let store, l = Store.alloc store v in
        (Env.add name l env, store))
      (Env.empty, Store.empty)
      (Prim.initial_bindings ())
  in
  t.genv <- genv;
  t.gstore <- gstore;
  List.iter
    (fun form ->
      match Expand.top_level_define form with
      | Some (name, expr) -> (
          match define_global t name expr with
          | Ok () -> ()
          | Error m -> failwith (Printf.sprintf "prelude: %s: %s" name m))
      | None -> failwith "prelude: expected only definitions")
    (Reader.parse_all_exn prelude_source);
  (* Collapse the initial environment into a single shared base so the
     collector traces the globals once per collection (see Env). *)
  t.genv <- Env.rebase t.genv;
  t

let create ?variant ?perm ?stack_policy ?return_env ?evlis_drop_at_creation
    ?seed () =
  create_with
    (Config.make ?variant ?perm ?stack_policy ?return_env
       ?evlis_drop_at_creation ?seed ())

(* ------------------------------------------------------------------ *)
(* Measured runs.                                                      *)

type outcome =
  | Done of { value : Types.value; store : Store.t; answer : string }
  | Stuck of string
  | Aborted of {
      reason : Resilience.abort_reason;
      steps : int;
      peak_space : int;
    }

type result = {
  outcome : outcome;
  steps : int;
  peaks : (Space_model.t * int) list;
  program_size : int;
  gc_runs : int;
  output : string;
}

let peak_of r model =
  List.find_map
    (fun (m, p) -> if Space_model.equal m model then Some p else None)
    r.peaks

(* Flat is always measured (it drives the lazy-GC schedule), so the
   flat accessor is total. *)
let peak_space r = Option.value (peak_of r Space_model.Flat) ~default:0
let peak_linked r = peak_of r Space_model.Linked
let peak_log r = peak_of r Space_model.Log
let space_consumption r = r.program_size + peak_space r

(* A one-line description of a configuration, for tracing and for the
   telemetry ring buffer. With an annotation table the line names the
   provenance site of the redex — the expression being reduced, or for
   value configurations the expression that pushed the top frame — so a
   stuck-state dump points at source, not just at a frame depth. *)
let describe_config ?annot config =
  let span e =
    let s = Ast.to_string e in
    if String.length s > 48 then String.sub s 0 45 ^ "..." else s
  in
  let top_site = function
    | Halt -> -1
    | Select { site; _ }
    | Assign { site; _ }
    | Push { site; _ }
    | Call { site; _ }
    | Return { site; _ }
    | Return_stack { site; _ } -> site
  in
  let control =
    match config.control with
    | `Expr e -> (
        match annot with
        | Some a when Annot.site_id a e <> None ->
            Printf.sprintf "E@s%d %s" (Option.get (Annot.site_id a e)) (span e)
        | _ -> "E " ^ span e)
    | `Value v -> (
        let base = "V " ^ tag_of_value v in
        match annot with
        | None -> base
        | Some a -> (
            let site = top_site config.cont in
            if site < 0 then base
            else
              match Annot.site_expr a site with
              | Some e -> Printf.sprintf "%s @s%d %s" base site (span e)
              | None -> Printf.sprintf "%s @s%d" base site))
  in
  Printf.sprintf "%-50s |rho|=%-4d k-depth=%-4d space=%d" control
    (Env.cardinal config.env) (cont_depth config.cont) (flat_space config)

(* Classification of store allocations for the telemetry counters. *)
let alloc_kind_of_value : value -> Telemetry.alloc_kind = function
  | Bool _ | Sym _ | Char _ | Nil | Unspecified | Undefined | Primop _ ->
      Telemetry.K_atom
  | Int _ -> Telemetry.K_int
  | Str _ -> Telemetry.K_string
  | Pair _ -> Telemetry.K_pair
  | Vector _ -> Telemetry.K_vector
  | Closure _ -> Telemetry.K_closure
  | Escape _ -> Telemetry.K_escape

module Run_opts = struct
  type t = {
    fuel : int;
    budget : Resilience.Budget.t option;
    fault : Resilience.Fault.plan option;
    measure : Space_model.t list;
    gc_policy : [ `Exact | `Approximate ];
    telemetry : Telemetry.t option;
    provenance : Census.t option;
  }

  let default =
    {
      fuel = 20_000_000;
      budget = None;
      fault = None;
      measure = [ Space_model.Flat ];
      gc_policy = `Exact;
      telemetry = None;
      provenance = None;
    }

  let make ?(fuel = default.fuel) ?budget ?fault ?(measure = default.measure)
      ?(gc_policy = default.gc_policy) ?telemetry ?provenance () =
    {
      fuel;
      budget;
      fault;
      measure = Space_model.normalize measure;
      gc_policy;
      telemetry;
      provenance;
    }
end

let run_measured ?(fuel = 20_000_000) ?budget ?fault
    ?(measure = [ Space_model.Flat ])
    ?(gc_policy = `Exact) ?telemetry ?provenance ?on_step ?trace t expr =
  let measure_models = Space_model.normalize measure in
  let measure_linked = Space_model.mem Space_model.Linked measure_models in
  let measure_log = Space_model.mem Space_model.Log measure_models in
  (* The linked and log models are not tracked incrementally, so either
     one forces a collection before every observation. *)
  let measure_heavy = measure_linked || measure_log in
  (match t.annot with Some a -> Annot.record a expr | None -> ());
  Buffer.clear t.ctx.output;
  (match provenance with
  | None ->
      t.prov <- None;
      t.track_sites <- false
  | Some c ->
      (match t.annot with
      | None ->
          invalid_arg
            "Machine.run: provenance requires a machine built with annotate"
      | Some a -> Census.set_annot c a);
      t.prov <- Some c;
      t.track_sites <- true);
  let budget = Option.value budget ~default:Resilience.Budget.unlimited in
  let guard = Resilience.Guard.start ~default_fuel:fuel budget in
  let fault = Option.value fault ~default:Resilience.Fault.none in
  let faults = Resilience.Fault.start fault in
  let gc_runs = ref 0 in
  let peak = ref 0 in
  let peak_linked = ref 0 in
  let peak_log = ref 0 in
  (* The step the machine is currently at, for the allocation observer
     and the collection events. *)
  let cur_step = ref 0 in
  let record_gc reason store reclaimed =
    if reclaimed > 0 then begin
      incr gc_runs;
      (* the allocation observer only sees additions; re-derive the
         advisory per-site live table from the survivor set *)
      (match provenance with
      | Some c -> Census.rescan c store
      | None -> ());
      match telemetry with
      | Some tl ->
          Telemetry.record_gc tl ~step:!cur_step ~reason
            ~live:(Store.cardinal store) ~freed:reclaimed
      | None -> ()
    end
  in
  (* Peak updates that additionally stash the peak configuration for the
     census. Every call site is post-collection, so a stashed store is
     fully reachable from the stashed roots — the retainer walk in
     [Census] relies on this. *)
  let note_flat config =
    let s = flat_space config in
    if s > !peak then begin
      peak := s;
      match provenance with
      | Some c ->
          Census.stash_flat c ~control:config.control ~env:config.env
            ~cont:config.cont ~store:config.store
      | None -> ()
    end
  in
  (* Both heavy models share one dedup walk per observation: the log
     charge is the linked unit count scaled by the pointer size, but the
     two peaks are tracked independently — the pointer size grows with
     the store, so the log peak can land on a different step. *)
  let note_heavy config =
    let u =
      Space.linked_config_space ~control:config.control ~env:config.env
        ~cont:config.cont ~store:config.store
    in
    if measure_linked && u > !peak_linked then begin
      peak_linked := u;
      match provenance with
      | Some c ->
          Census.stash_linked c ~control:config.control ~env:config.env
            ~cont:config.cont ~store:config.store
      | None -> ()
    end;
    if measure_log then begin
      let s = Space.pointer_bits config.store * u in
      if s > !peak_log then begin
        peak_log := s;
        match provenance with
        | Some c ->
            Census.stash_log c ~control:config.control ~env:config.env
              ~cont:config.cont ~store:config.store
        | None -> ()
      end
    end
  in
  let measure config =
    if measure_heavy then begin
      (* The linked and log models are not tracked incrementally, so the
         store must be garbage collected before every observation. *)
      let config, reclaimed = collect config in
      record_gc Telemetry.Gc_linked config.store reclaimed;
      note_flat config;
      note_heavy config;
      config
    end
    else begin
      (* Lazy schedule: collect only when the tracked figure would raise
         the peak, so garbage never counts toward it. [`Exact] gives the
         true sup; [`Approximate] adds slack before collecting, trading
         a bounded underestimate (at most 12.5% plus 64 words) for far
         fewer collections on programs whose live space grows
         monotonically. *)
      let s = flat_space config in
      let threshold =
        match gc_policy with
        | `Exact -> !peak
        | `Approximate -> !peak + Stdlib.max 64 (!peak / 8)
      in
      if s <= threshold then config
      else begin
        let config, reclaimed = collect config in
        record_gc Telemetry.Gc_peak config.store reclaimed;
        note_flat config;
        config
      end
    end
  in
  (* The legacy [on_step]/[trace] callbacks are shims over telemetry:
     both feed from the single per-step observation point below. *)
  let want_config =
    Option.is_some trace
    ||
    match telemetry with
    | Some tl -> Telemetry.wants_config tl
    | None -> false
  in
  (* Configuration descriptions should name provenance sites even when
     no census was requested: site threading is free bookkeeping. *)
  if want_config && Option.is_some t.annot then t.track_sites <- true;
  let observe config steps =
    (match (telemetry, on_step) with
    | None, None -> ()
    | _ ->
        let space = flat_space config in
        (match telemetry with
        | Some tl ->
            Telemetry.record_step tl ~step:steps ~space
              ~cont_depth:(cont_depth config.cont)
              ~store_cells:(Store.cardinal config.store)
        | None -> ());
        (match on_step with Some f -> f ~steps ~space | None -> ()));
    if want_config then begin
      let description =
        describe_config
          ?annot:(if t.track_sites then t.annot else None)
          config
      in
      (match telemetry with
      | Some tl -> Telemetry.record_config tl ~step:steps description
      | None -> ());
      match trace with Some emit -> emit steps description | None -> ()
    end
  in
  let aborted reason steps =
    (Aborted { reason; steps; peak_space = !peak }, steps)
  in
  let rec loop config steps =
    cur_step := steps;
    (match Resilience.Fault.fuel_drop faults ~step:steps with
    | Some remaining -> Resilience.Guard.cap_fuel guard (steps + remaining)
    | None -> ());
    (* A forced collection models an adversarial GC schedule: under the
       [`Exact] policy it must not change the measured peak (the peak is
       the sup of live space, which collections only reveal), which is
       exactly what the differential oracle checks. *)
    let config =
      if Resilience.Fault.force_gc faults ~step:steps then begin
        let config, reclaimed = collect config in
        record_gc Telemetry.Gc_forced config.store reclaimed;
        config
      end
      else config
    in
    let config = measure config in
    observe config steps;
    let config, space_abort =
      match Resilience.Guard.space_budget guard with
      | Some b when flat_space config > b ->
          (* Over budget with garbage included: collect, then judge the
             live figure — the budget bounds the space the program needs,
             not the collector's laziness. *)
          let config, reclaimed = collect config in
          record_gc Telemetry.Gc_budget config.store reclaimed;
          let live = flat_space config in
          note_flat config;
          if live > b then
            (config, Some (Resilience.Space_exceeded { budget = b; live }))
          else (config, None)
      | _ -> (config, None)
    in
    match space_abort with
    | Some reason -> aborted reason steps
    | None ->
    match
      Resilience.Guard.check guard ~steps
        ~output_bytes:(Buffer.length t.ctx.output)
    with
    | Some reason -> aborted reason steps
    | None ->
      match step t config with
      | exception Resilience.Fault.Injected m ->
          aborted (Resilience.Injected_fault m) steps
      | Next c -> loop c (steps + 1)
      | Final (v, store) ->
          (* The final configuration (v, sigma): collect, then measure. *)
          let store, reclaimed =
            Gc.collect ~control_locs:(value_locs v) ~env:Env.empty ~cont:Halt
              store
          in
          record_gc Telemetry.Gc_final store reclaimed;
          (* Definition 21's final measurement has no environment and no
             Halt word in the flat model — a distinct stash shape. *)
          let s = value_space v + Store.space store in
          if s > !peak then begin
            peak := s;
            match provenance with
            | Some c -> Census.stash_flat_final c ~v ~store
            | None -> ()
          end;
          if measure_heavy then begin
            let u =
              Space.linked_config_space ~control:(`Value v) ~env:Env.empty
                ~cont:Halt ~store
            in
            (if measure_linked && u > !peak_linked then begin
               peak_linked := u;
               match provenance with
               | Some c ->
                   Census.stash_linked c ~control:(`Value v) ~env:Env.empty
                     ~cont:Halt ~store
               | None -> ()
             end);
            if measure_log then begin
              let sl = Space.pointer_bits store * u in
              if sl > !peak_log then begin
                peak_log := sl;
                match provenance with
                | Some c ->
                    Census.stash_log c ~control:(`Value v) ~env:Env.empty
                      ~cont:Halt ~store
                | None -> ()
              end
            end
          end;
          (Done { value = v; store; answer = Answer.to_string store v }, steps + 1)
      | Stuck_state m -> (Stuck m, steps)
  in
  let initial_store =
    let store =
      match telemetry with
      | None -> t.gstore
      | Some tl ->
          Store.with_observer t.gstore
            (Some
               (fun v ->
                 Telemetry.record_alloc tl ~step:!cur_step
                   ~kind:(alloc_kind_of_value v)
                   ~words:(1 + value_space v)))
    in
    let store =
      if Resilience.Fault.observes_alloc fault then
        Store.add_observer store (fun _ -> Resilience.Fault.on_alloc faults)
      else store
    in
    (* Provenance last: location observers already run after every value
       observer, so a raising fault hook aborts the allocation before it
       is tagged. *)
    match provenance with
    | Some c -> Census.instrument c store
    | None -> store
  in
  let initial =
    { control = `Expr expr; env = t.genv; cont = Halt; store = initial_store }
  in
  let outcome, steps = loop initial 0 in
  (match telemetry with
  | Some tl ->
      Telemetry.note_steps tl steps;
      Telemetry.note_peak tl !peak;
      if measure_linked then Telemetry.note_linked tl !peak_linked;
      if measure_log then Telemetry.note_log tl !peak_log;
      (match outcome with
      | Stuck m -> Telemetry.record_stuck tl ~step:steps ~message:m
      | Done _ | Aborted _ -> ())
  | None -> ());
  {
    outcome;
    steps;
    peaks =
      List.filter_map
        (fun m ->
          match (m : Space_model.t) with
          | Space_model.Flat -> Some (m, !peak)
          | Space_model.Linked -> Some (m, !peak_linked)
          | Space_model.Log -> Some (m, !peak_log))
        measure_models;
    program_size = Ast.size expr;
    gc_runs = !gc_runs;
    output = Buffer.contents t.ctx.output;
  }

(* The labelled-argument entry points below are the deprecated shims;
   [exec]/[exec_program]/[exec_string] with [Run_opts] are current. The
   boolean [measure_linked] knob maps onto the [Space_model] list. *)

let measure_of_linked measure_linked =
  if Option.value measure_linked ~default:false then
    [ Space_model.Flat; Space_model.Linked ]
  else [ Space_model.Flat ]

let run ?fuel ?budget ?fault ?measure_linked ?gc_policy ?telemetry ?provenance
    ?on_step ?trace t expr =
  run_measured ?fuel ?budget ?fault
    ~measure:(measure_of_linked measure_linked)
    ?gc_policy ?telemetry ?provenance ?on_step ?trace t expr

let run_program ?fuel ?budget ?fault ?measure_linked ?gc_policy ?telemetry
    ?on_step ?trace t ~program ~input =
  run ?fuel ?budget ?fault ?measure_linked ?gc_policy ?telemetry ?on_step
    ?trace t
    (Ast.Call (program, [ input ]))

let run_string ?fuel ?budget ?fault ?measure_linked ?gc_policy ?telemetry
    ?on_step ?trace t source =
  run ?fuel ?budget ?fault ?measure_linked ?gc_policy ?telemetry ?on_step
    ?trace t
    (Expand.program_of_string source)

let exec ?(opts = Run_opts.default) t expr =
  run_measured ~fuel:opts.fuel ?budget:opts.budget ?fault:opts.fault
    ~measure:opts.measure ~gc_policy:opts.gc_policy ?telemetry:opts.telemetry
    ?provenance:opts.provenance t expr

let exec_program ?opts t ~program ~input =
  exec ?opts t (Ast.Call (program, [ input ]))

let exec_string ?opts t source = exec ?opts t (Expand.program_of_string source)
