(** The linked-environment space model (Figure 8, §13).

    In the linked model each binding — a pair of an identifier and a
    location — is counted {e once per configuration}, no matter how many
    environments (the register, saved continuation environments, closure
    environments anywhere in the configuration or store) contain it;
    environments are shared rather than copied. Everything else is
    charged as in the flat model, except that closures cost 1 word plus
    their (shared) bindings and each continuation frame costs its
    non-environment overhead.

    This yields the [U_X] space consumption functions; Theorem 26 shows
    [O(U_tail)] and [O(U_evlis)] are incomparable with [O(S_free)] and
    [O(S_sfs)], which experiment E4 reproduces. *)

val linked_config_space :
  control:[ `Expr of Tailspace_ast.Ast.expr | `Value of Types.value ] ->
  env:Types.Env.t ->
  cont:Types.cont ->
  store:Store.t ->
  int
(** The linked space of a configuration. The store should be fully
    garbage collected first, since Definition 21 measures space-efficient
    computations only. *)

val ceil_log2 : int -> int
(** [ceil_log2 n] is the least [b] with [2^b >= n] ([0] for [n <= 1]). *)

val pointer_bits : Store.t -> int
(** The pointer size for the logarithmic model: a pointer into a store of
    [k] live cells needs [ceil(log2 k)] bits, clamped to at least 1. The
    store should be fully garbage collected first, like
    {!linked_config_space}. *)

val log_config_space :
  control:[ `Expr of Tailspace_ast.Ast.expr | `Value of Types.value ] ->
  env:Types.Env.t ->
  cont:Types.cont ->
  store:Store.t ->
  int
(** The logarithmic (pointer-size) space of a configuration, in
    bit-units: every linked-model word is charged {!pointer_bits} bits
    instead of one word, so
    [log_config_space c = pointer_bits store * linked_config_space c].
    This is the [Space_model.Log] measure. *)
