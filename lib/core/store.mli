(** The store [sigma : Location -> Value] (Figure 4), with the flat space
    total [space(sigma) = sum (1 + space(sigma(alpha)))] (Figure 7)
    maintained incrementally so that measuring a configuration at every
    machine step is O(1).

    The store is a persistent map: the garbage-collection rule and the
    [I_stack] deletion rule produce new stores without mutation, exactly
    like the small-step semantics. Locations are allocated from a
    monotone counter, which trivially satisfies the freshness side
    conditions ("alpha does not occur within L, rho, kappa, sigma"). *)

type t

val empty : t

val alloc : t -> Types.value -> t * Types.loc
(** Fresh location initialized to the given value. *)

val alloc_many : t -> Types.value list -> t * Types.loc list

val find_opt : t -> Types.loc -> Types.value option

val set : t -> Types.loc -> Types.value -> t
(** [sigma[alpha -> v]]; the space total is adjusted by the difference.
    @raise Invalid_argument if the location is not in the store. *)

val mem : t -> Types.loc -> bool

val remove_all : t -> Types.loc list -> t
(** Used by the [I_stack] deletion rule and by the collector's sweep. *)

val cardinal : t -> int
(** O(1): the count is maintained incrementally, like the space total,
    so telemetry can observe the store size at every step. *)

val space : t -> int  (** O(1). *)

val with_observer : t -> (Types.value -> unit) option -> t
(** Attach (or remove) an allocation observer: every subsequent [alloc]
    on this store, or on any store derived from it, calls the observer
    with the allocated value before installing it. Used by the telemetry
    layer to count allocations by kind; [None] (the default everywhere)
    costs one branch per allocation. *)

val add_observer : t -> (Types.value -> unit) -> t
(** Chain another observer after any existing one — the machine stacks
    the telemetry counter and a fault-injection allocation hook on the
    same run. An observer may raise (the fault hook does); the
    allocation is then abandoned before the store changes. *)

val add_loc_observer : t -> (Types.loc -> Types.value -> unit) -> t
(** Chain an observer that is additionally told the location being
    allocated. Location observers run after every value observer, so a
    raising fault hook abandons the allocation before any location is
    reported. Used by the provenance layer to tag each location with
    its allocation site. *)

val iter : (Types.loc -> Types.value -> unit) -> t -> unit
val fold : (Types.loc -> Types.value -> 'a -> 'a) -> t -> 'a -> 'a

val next_loc : t -> Types.loc
(** The next location the allocator will hand out (diagnostics only). *)
