(** Values and continuations of the reference machines (Figure 4), with
    the flat space model of Figure 7 built in.

    Every continuation node caches its own flat space so that measuring a
    configuration at every machine step costs O(1); the sizes are fixed at
    construction, which is sound because continuations are immutable. *)

module Bignum = Tailspace_bignum.Bignum
module Ast = Tailspace_ast.Ast
module Env : module type of Env

type loc = Env.loc

type value =
  | Bool of bool
  | Int of Bignum.t
  | Sym of string
  | Str of string  (** immutable; no store identity (documented deviation) *)
  | Char of char
  | Nil
  | Unspecified
  | Undefined
      (** content of a letrec-bound location before initialization;
          reading it through a variable reference is stuck (§7) *)
  | Pair of loc * loc  (** car and cdr cells live in the store *)
  | Vector of loc array
  | Closure of loc * Ast.lambda * Env.t
      (** [CLOSURE:(alpha, L, rho)]; [alpha] is the identity tag the
          lambda rule allocates (the "bug in the design of Scheme") *)
  | Escape of loc * cont  (** [ESCAPE:(alpha, kappa)], from [call/cc] *)
  | Primop of string  (** looked up in {!Prim}'s table by name *)

(** Continuations (Figure 4). [Push] carries original argument positions
    so that any evaluation permutation [pi] can reassemble
    [(v0, v1, ...)] in operator/operand order; the paper's
    [reverse(pi^-1(...))] bookkeeping is represented by the index
    pairs. *)
and cont =
  | Halt
  | Select of {
      e1 : Ast.expr;
      e2 : Ast.expr;
      env : Env.t;
      next : cont;
      size : int;
      depth : int;
      site : int;
          (** provenance site of the expression that pushed the frame
              ([-1] when provenance is off); bookkeeping only — sites
              never contribute to [size] *)
    }
  | Assign of {
      id : string;
      env : Env.t;
      next : cont;
      size : int;
      depth : int;
      site : int;
    }
  | Push of {
      pending : int;  (** original position of the expression being evaluated *)
      remaining : (int * Ast.expr) list;
      evaluated : (int * value) list;
      fv_rest : Ast.Iset.t list;
          (** precomputed [I_sfs] restriction sets, one per element of
              [remaining] ([[]] when unannotated or not Sfs). Pure
              bookkeeping: holds no locations and contributes no space —
              it only names the variables the machine would otherwise
              recompute from [remaining] at each pop. *)
      env : Env.t;
      next : cont;
      size : int;
      depth : int;
      site : int;
    }
  | Call of {
      vals : value list;
      next : cont;
      size : int;
      depth : int;
      site : int;
    }
      (** operands in operator/operand order; the operator is in the
          accumulator *)
  | Return of {
      env : Env.t;
      next : cont;
      size : int;
      depth : int;
      site : int;
    }
      (** [I_gc] *)
  | Return_stack of {
      dels : loc list;  (** the nondeterministically chosen set [A] *)
      env : Env.t;
      next : cont;
      size : int;
      depth : int;
      site : int;
    }  (** [I_stack] *)

(** {1 Smart constructors} (compute the cached flat size; [?site] is
    the provenance site of the pushing expression, default [-1]) *)

val select :
  ?site:int -> e1:Ast.expr -> e2:Ast.expr -> env:Env.t -> next:cont -> unit -> cont

val assign : ?site:int -> id:string -> env:Env.t -> next:cont -> unit -> cont

val push :
  ?fv_rest:Ast.Iset.t list ->
  ?site:int ->
  pending:int ->
  remaining:(int * Ast.expr) list ->
  evaluated:(int * value) list ->
  env:Env.t ->
  next:cont ->
  unit ->
  cont

val call : ?site:int -> vals:value list -> next:cont -> unit -> cont
val return_gc : ?site:int -> env:Env.t -> next:cont -> unit -> cont
val return_stack : ?site:int -> dels:loc list -> env:Env.t -> next:cont -> unit -> cont

(** {1 Flat space model (Figure 7)} *)

val cont_space : cont -> int
(** O(1): reads the cached size. *)

val cont_depth : cont -> int
(** O(1): number of frames above [Halt] (the cached depth). *)

val value_space : value -> int
(** [space(v)]: 1 for atoms, [1 + bitlength z] for integers,
    [1 + n] for vectors, [1 + |Dom rho|] for closures, [3] for pairs,
    [1 + length] for strings, [1 + space(kappa)] for escapes. *)

val value_of_const : Ast.const -> value
(** Constants denote themselves (first reduction rule). *)

(** {1 Structure} *)

val value_locs : value -> loc list
(** Locations occurring directly in a value (one level; not through the
    store). *)

val cont_locs : cont -> loc list
(** Locations occurring directly in a continuation: the codomains of its
    saved environments, locations of its held values, recursively through
    [next], plus any [Return_stack] deletion sets. *)

val tag_of_value : value -> string
(** Short constructor name for error messages ("pair", "closure", ...). *)
