module Bignum = Tailspace_bignum.Bignum
open Types

exception Prim_error of string

type ctx = { output : Buffer.t; mutable rng : int }

let make_ctx ?(seed = 0x5eed) () = { output = Buffer.create 64; rng = seed }

type fn = ctx -> Store.t -> value list -> Store.t * value

let err fmt = Format.kasprintf (fun s -> raise (Prim_error s)) fmt

let type_error name expected v =
  err "%s: expected %s, got %s" name expected (tag_of_value v)

(* ------------------------------------------------------------------ *)
(* Argument plumbing                                                   *)

let arity name n args =
  if List.length args <> n then
    err "%s: expected %d arguments, got %d" name n (List.length args)

let one name = function [ a ] -> a | args -> (arity name 1 args; assert false)

let two name = function
  | [ a; b ] -> (a, b)
  | args -> (arity name 2 args; assert false)

let three name = function
  | [ a; b; c ] -> (a, b, c)
  | args -> (arity name 3 args; assert false)

let want_int name = function Int z -> z | v -> type_error name "number" v

let want_small_int name v =
  match Bignum.to_int (want_int name v) with
  | Some n -> n
  | None -> err "%s: index too large" name

let want_pair name = function
  | Pair (a, d) -> (a, d)
  | v -> type_error name "pair" v

let want_vector name = function
  | Vector locs -> locs
  | v -> type_error name "vector" v

let want_string name = function Str s -> s | v -> type_error name "string" v
let want_char name = function Char c -> c | v -> type_error name "character" v
let bool b = Bool b

let deref name store l =
  match Store.find_opt store l with
  | Some v -> v
  | None -> err "%s: dangling location (deleted by stack allocation?)" name

(* ------------------------------------------------------------------ *)
(* Equivalence                                                         *)

let eqv a b =
  match (a, b) with
  | Bool x, Bool y -> x = y
  | Int x, Int y -> Bignum.equal x y
  | Sym x, Sym y -> String.equal x y
  | Str x, Str y -> String.equal x y
  | Char x, Char y -> x = y
  | Nil, Nil | Unspecified, Unspecified | Undefined, Undefined -> true
  | Pair (a1, d1), Pair (a2, d2) -> a1 = a2 && d1 = d2
  | Vector v1, Vector v2 -> v1 == v2 || v1 = v2
  | Closure (t1, _, _), Closure (t2, _, _) -> t1 = t2
  | Escape (t1, _), Escape (t2, _) -> t1 = t2
  | Primop x, Primop y -> String.equal x y
  | _, _ -> false

let equal_values store a b =
  (* Structural equality through the store; fuel guards against cyclic
     structures, on which R5RS allows equal? to diverge. *)
  let fuel = ref 1_000_000 in
  let rec go a b =
    decr fuel;
    if !fuel <= 0 then err "equal?: structure too deep (cyclic?)"
    else
      match (a, b) with
      | Pair (a1, d1), Pair (a2, d2) ->
          go (deref "equal?" store a1) (deref "equal?" store a2)
          && go (deref "equal?" store d1) (deref "equal?" store d2)
      | Vector l1, Vector l2 ->
          Array.length l1 = Array.length l2
          && (let rec elems i =
                i >= Array.length l1
                || go
                     (deref "equal?" store l1.(i))
                     (deref "equal?" store l2.(i))
                   && elems (i + 1)
              in
              elems 0)
      | a, b -> eqv a b
  in
  go a b

(* ------------------------------------------------------------------ *)
(* Lists                                                               *)

let list_to_values store v =
  let max_cells = Store.cardinal store + 1 in
  let rec go acc n v =
    if n > max_cells then None
    else
      match v with
      | Nil -> Some (List.rev acc)
      | Pair (a, d) -> (
          match (Store.find_opt store a, Store.find_opt store d) with
          | Some car, Some cdr -> go (car :: acc) (n + 1) cdr
          | _ -> None)
      | _ -> None
  in
  go [] 0 v

let values_to_list store vs =
  List.fold_right
    (fun v (store, tail) ->
      let store, d = Store.alloc store tail in
      let store, a = Store.alloc store v in
      (store, Pair (a, d)))
    vs (store, Nil)

(* ------------------------------------------------------------------ *)
(* Arithmetic                                                          *)

let fold_arith name init op ctx store args =
  ignore ctx;
  let z = List.fold_left (fun acc v -> op acc (want_int name v)) init args in
  (store, Int z)

let compare_chain name cmp _ctx store args =
  let rec chain = function
    | a :: (b :: _ as rest) ->
        cmp (want_int name a) (want_int name b) && chain rest
    | [ _ ] | [] -> true
  in
  if List.length args < 2 then err "%s: expected at least 2 arguments" name;
  (store, bool (chain args))

(* ------------------------------------------------------------------ *)
(* The table                                                           *)

let table : (string, fn) Hashtbl.t = Hashtbl.create 97

let define name fn = Hashtbl.replace table name fn

let () =
  (* numbers *)
  define "+" (fold_arith "+" Bignum.zero Bignum.add);
  define "*" (fold_arith "*" Bignum.one Bignum.mul);
  define "-" (fun _ store args ->
      match args with
      | [] -> err "-: expected at least 1 argument"
      | [ a ] -> (store, Int (Bignum.neg (want_int "-" a)))
      | a :: rest ->
          let z =
            List.fold_left
              (fun acc v -> Bignum.sub acc (want_int "-" v))
              (want_int "-" a) rest
          in
          (store, Int z));
  define "quotient" (fun _ store args ->
      let a, b = two "quotient" args in
      let b = want_int "quotient" b in
      if Bignum.is_zero b then err "quotient: division by zero";
      (store, Int (Bignum.quotient (want_int "quotient" a) b)));
  define "remainder" (fun _ store args ->
      let a, b = two "remainder" args in
      let b = want_int "remainder" b in
      if Bignum.is_zero b then err "remainder: division by zero";
      (store, Int (Bignum.remainder (want_int "remainder" a) b)));
  define "modulo" (fun _ store args ->
      let a, b = two "modulo" args in
      let b = want_int "modulo" b in
      if Bignum.is_zero b then err "modulo: division by zero";
      (store, Int (Bignum.modulo (want_int "modulo" a) b)));
  define "=" (compare_chain "=" (fun a b -> Bignum.compare a b = 0));
  define "<" (compare_chain "<" (fun a b -> Bignum.compare a b < 0));
  define ">" (compare_chain ">" (fun a b -> Bignum.compare a b > 0));
  define "<=" (compare_chain "<=" (fun a b -> Bignum.compare a b <= 0));
  define ">=" (compare_chain ">=" (fun a b -> Bignum.compare a b >= 0));
  define "zero?" (fun _ store args ->
      (store, bool (Bignum.is_zero (want_int "zero?" (one "zero?" args)))));
  define "positive?" (fun _ store args ->
      (store, bool (Bignum.sign (want_int "positive?" (one "positive?" args)) > 0)));
  define "negative?" (fun _ store args ->
      (store, bool (Bignum.sign (want_int "negative?" (one "negative?" args)) < 0)));
  define "even?" (fun _ store args ->
      let z = want_int "even?" (one "even?" args) in
      (store, bool (Bignum.is_even z)));
  define "odd?" (fun _ store args ->
      let z = want_int "odd?" (one "odd?" args) in
      (store, bool (not (Bignum.is_even z))));
  define "abs" (fun _ store args ->
      (store, Int (Bignum.abs (want_int "abs" (one "abs" args)))));
  define "min" (fun _ store args ->
      match args with
      | [] -> err "min: expected at least 1 argument"
      | a :: rest ->
          let z =
            List.fold_left
              (fun acc v -> Bignum.min acc (want_int "min" v))
              (want_int "min" a) rest
          in
          (store, Int z));
  define "max" (fun _ store args ->
      match args with
      | [] -> err "max: expected at least 1 argument"
      | a :: rest ->
          let z =
            List.fold_left
              (fun acc v -> Bignum.max acc (want_int "max" v))
              (want_int "max" a) rest
          in
          (store, Int z));
  define "expt" (fun _ store args ->
      let a, b = two "expt" args in
      let e = want_small_int "expt" b in
      if e < 0 then err "expt: negative exponent";
      (store, Int (Bignum.pow (want_int "expt" a) e)));
  define "number->string" (fun _ store args ->
      (store, Str (Bignum.to_string (want_int "number->string" (one "number->string" args)))));
  define "string->number" (fun _ store args ->
      let s = want_string "string->number" (one "string->number" args) in
      match Bignum.of_string s with
      | z -> (store, Int z)
      | exception Invalid_argument _ -> (store, bool false));
  define "random" (fun ctx store args ->
      let n = want_small_int "random" (one "random" args) in
      if n <= 0 then err "random: bound must be positive";
      (* Deterministic 48-bit LCG (same constants as POSIX drand48). *)
      ctx.rng <- ((ctx.rng * 0x5DEECE66D) + 0xB) land 0xFFFFFFFFFFFF;
      (store, Int (Bignum.of_int (ctx.rng mod n))));

  (* predicates *)
  define "eq?" (fun _ store args ->
      let a, b = two "eq?" args in
      (store, bool (eqv a b)));
  define "eqv?" (fun _ store args ->
      let a, b = two "eqv?" args in
      (store, bool (eqv a b)));
  define "equal?" (fun _ store args ->
      let a, b = two "equal?" args in
      (store, bool (equal_values store a b)));
  define "not" (fun _ store args ->
      (store, bool (one "not" args = Bool false)));
  let type_pred name p =
    define name (fun _ store args -> (store, bool (p (one name args))))
  in
  type_pred "pair?" (function Pair _ -> true | _ -> false);
  type_pred "null?" (function Nil -> true | _ -> false);
  type_pred "boolean?" (function Bool _ -> true | _ -> false);
  type_pred "symbol?" (function Sym _ -> true | _ -> false);
  type_pred "number?" (function Int _ -> true | _ -> false);
  type_pred "integer?" (function Int _ -> true | _ -> false);
  type_pred "string?" (function Str _ -> true | _ -> false);
  type_pred "char?" (function Char _ -> true | _ -> false);
  type_pred "vector?" (function Vector _ -> true | _ -> false);
  type_pred "procedure?" (function
    | Closure _ | Escape _ | Primop _ -> true
    | _ -> false);

  (* pairs and lists *)
  define "cons" (fun _ store args ->
      let a, d = two "cons" args in
      let store, la = Store.alloc store a in
      let store, ld = Store.alloc store d in
      (store, Pair (la, ld)));
  define "car" (fun _ store args ->
      let a, _ = want_pair "car" (one "car" args) in
      (store, deref "car" store a));
  define "cdr" (fun _ store args ->
      let _, d = want_pair "cdr" (one "cdr" args) in
      (store, deref "cdr" store d));
  define "set-car!" (fun _ store args ->
      let p, v = two "set-car!" args in
      let a, _ = want_pair "set-car!" p in
      (Store.set store a v, Unspecified));
  define "set-cdr!" (fun _ store args ->
      let p, v = two "set-cdr!" args in
      let _, d = want_pair "set-cdr!" p in
      (Store.set store d v, Unspecified));
  define "list" (fun _ store args -> values_to_list store args);

  (* vectors *)
  define "make-vector" (fun _ store args ->
      let n, fill =
        match args with
        | [ n ] -> (n, Unspecified)
        | [ n; fill ] -> (n, fill)
        | _ -> err "make-vector: expected 1 or 2 arguments"
      in
      let n = want_small_int "make-vector" n in
      if n < 0 then err "make-vector: negative length";
      let store, locs = Store.alloc_many store (List.init n (fun _ -> fill)) in
      (store, Vector (Array.of_list locs)));
  define "vector" (fun _ store args ->
      let store, locs = Store.alloc_many store args in
      (store, Vector (Array.of_list locs)));
  define "vector-length" (fun _ store args ->
      let locs = want_vector "vector-length" (one "vector-length" args) in
      (store, Int (Bignum.of_int (Array.length locs))));
  define "vector-ref" (fun _ store args ->
      let v, i = two "vector-ref" args in
      let locs = want_vector "vector-ref" v in
      let i = want_small_int "vector-ref" i in
      if i < 0 || i >= Array.length locs then err "vector-ref: index out of range";
      (store, deref "vector-ref" store locs.(i)));
  define "vector-set!" (fun _ store args ->
      let v, i, x = three "vector-set!" args in
      let locs = want_vector "vector-set!" v in
      let i = want_small_int "vector-set!" i in
      if i < 0 || i >= Array.length locs then err "vector-set!: index out of range";
      (Store.set store locs.(i) x, Unspecified));
  define "vector-fill!" (fun _ store args ->
      let v, x = two "vector-fill!" args in
      let locs = want_vector "vector-fill!" v in
      let store = Array.fold_left (fun st l -> Store.set st l x) store locs in
      (store, Unspecified));

  (* strings (immutable) *)
  define "string-length" (fun _ store args ->
      (store, Int (Bignum.of_int (String.length (want_string "string-length" (one "string-length" args))))));
  define "string-ref" (fun _ store args ->
      let s, i = two "string-ref" args in
      let s = want_string "string-ref" s in
      let i = want_small_int "string-ref" i in
      if i < 0 || i >= String.length s then err "string-ref: index out of range";
      (store, Char s.[i]));
  define "string-append" (fun _ store args ->
      (store, Str (String.concat "" (List.map (want_string "string-append") args))));
  define "substring" (fun _ store args ->
      let s, i, j = three "substring" args in
      let s = want_string "substring" s in
      let i = want_small_int "substring" i and j = want_small_int "substring" j in
      if i < 0 || j < i || j > String.length s then err "substring: bad range";
      (store, Str (String.sub s i (j - i))));
  define "string=?" (fun _ store args ->
      let a, b = two "string=?" args in
      (store, bool (String.equal (want_string "string=?" a) (want_string "string=?" b))));
  define "string<?" (fun _ store args ->
      let a, b = two "string<?" args in
      (store, bool (String.compare (want_string "string<?" a) (want_string "string<?" b) < 0)));
  define "string->symbol" (fun _ store args ->
      (store, Sym (want_string "string->symbol" (one "string->symbol" args))));
  define "symbol->string" (fun _ store args ->
      match one "symbol->string" args with
      | Sym s -> (store, Str s)
      | v -> type_error "symbol->string" "symbol" v);
  define "string->list" (fun _ store args ->
      let s = want_string "string->list" (one "string->list" args) in
      values_to_list store (List.init (String.length s) (fun i -> Char s.[i])));

  (* characters *)
  define "char->integer" (fun _ store args ->
      (store, Int (Bignum.of_int (Char.code (want_char "char->integer" (one "char->integer" args))))));
  define "integer->char" (fun _ store args ->
      let n = want_small_int "integer->char" (one "integer->char" args) in
      if n < 0 || n > 255 then err "integer->char: out of range";
      (store, Char (Char.chr n)));
  define "char=?" (fun _ store args ->
      let a, b = two "char=?" args in
      (store, bool (want_char "char=?" a = want_char "char=?" b)));
  define "char<?" (fun _ store args ->
      let a, b = two "char<?" args in
      (store, bool (want_char "char<?" a < want_char "char<?" b)));

  (* output *)
  define "display" (fun ctx store args ->
      Buffer.add_string ctx.output (Answer.display store (one "display" args));
      (store, Unspecified));
  define "write" (fun ctx store args ->
      Buffer.add_string ctx.output (Answer.write store (one "write" args));
      (store, Unspecified));
  define "newline" (fun ctx store args ->
      arity "newline" 0 args;
      Buffer.add_char ctx.output '\n';
      (store, Unspecified));

  (* errors *)
  define "error" (fun _ store args ->
      ignore store;
      let parts =
        List.map
          (function Str s -> s | v -> Answer.write store v)
          args
      in
      err "error: %s" (String.concat " " parts))

(* [apply] and [call/cc] are intercepted by the machine; they are in the
   table only so that [procedure?] and the initial environment see
   them. *)
let machine_level = [ "apply"; "call-with-current-continuation"; "call/cc" ]

let find name = Hashtbl.find_opt table name

let names () =
  machine_level @ Hashtbl.fold (fun name _ acc -> name :: acc) table []

let initial_bindings () =
  List.sort compare (names ()) |> List.map (fun name -> (name, Primop name))
