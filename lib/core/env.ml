module Smap = Map.Make (String)
module Iset = Tailspace_ast.Ast.Iset

type loc = int
type t = { base : loc Smap.t; over : loc Smap.t; size : int }

let empty = { base = Smap.empty; over = Smap.empty; size = 0 }
let is_empty t = t.size = 0
let cardinal t = t.size

let find_opt x t =
  match Smap.find_opt x t.over with
  | Some _ as hit -> hit
  | None -> Smap.find_opt x t.base

let mem x t = Smap.mem x t.over || Smap.mem x t.base

let add x a t =
  let bound = mem x t in
  { t with over = Smap.add x a t.over; size = t.size + (if bound then 0 else 1) }

let add_list bs t = List.fold_left (fun acc (x, a) -> add x a acc) t bs

let rebase t =
  let merged = Smap.union (fun _ over _base -> Some over) t.over t.base in
  { base = merged; over = Smap.empty; size = Smap.cardinal merged }

let restrict t xs =
  (* Fast path: when [xs] ⊇ Dom rho the restriction is the identity —
     common for top-level lambdas whose free variables are all
     primitives. Returning [t] unchanged keeps its base/overlay split,
     which is observationally equivalent (same domain, same locations,
     same cardinal) and lets later restrictions of the same env hit this
     path again. *)
  let subset m = Smap.for_all (fun x _ -> Iset.mem x xs) m in
  if subset t.over && subset t.base then t
  else
    let keep m acc =
      Smap.fold
        (fun x l acc ->
          if Iset.mem x xs && not (Smap.mem x acc) then Smap.add x l acc
          else acc)
        m acc
    in
    let over = keep t.base (keep t.over Smap.empty) in
    { base = Smap.empty; over; size = Smap.cardinal over }

let iter f t =
  Smap.iter f t.over;
  Smap.iter (fun x l -> if not (Smap.mem x t.over) then f x l) t.base

let fold f t init =
  let acc = Smap.fold f t.over init in
  Smap.fold (fun x l acc -> if Smap.mem x t.over then acc else f x l acc) t.base acc

let bindings t = fold (fun x l acc -> (x, l) :: acc) t []
let locations t = fold (fun _ l acc -> l :: acc) t []
let iter_overlay f t = Smap.iter f t.over
let has_base t = not (Smap.is_empty t.base)
let base_eq a b = a.base == b.base
let iter_base f t = Smap.iter f t.base
