module Bignum = Tailspace_bignum.Bignum
module Datum = Tailspace_sexp.Datum
module Iset = Set.Make (String)

type ident = string

type const =
  | C_bool of bool
  | C_int of Bignum.t
  | C_sym of string
  | C_str of string
  | C_char of char
  | C_nil
  | C_unspecified
  | C_undefined

type expr =
  | Quote of const
  | Var of ident
  | Lambda of lambda
  | If of expr * expr * expr
  | Set of ident * expr
  | Call of expr * expr list

and lambda = { params : ident list; rest : ident option; body : expr }

let lambda ?rest params body = Lambda { params; rest; body }

let equal_const a b =
  match (a, b) with
  | C_bool x, C_bool y -> x = y
  | C_int x, C_int y -> Bignum.equal x y
  | C_sym x, C_sym y -> String.equal x y
  | C_str x, C_str y -> String.equal x y
  | C_char x, C_char y -> x = y
  | C_nil, C_nil | C_unspecified, C_unspecified | C_undefined, C_undefined ->
      true
  | ( C_bool _ | C_int _ | C_sym _ | C_str _ | C_char _ | C_nil
    | C_unspecified | C_undefined ), _ ->
      false

let rec equal a b =
  match (a, b) with
  | Quote x, Quote y -> equal_const x y
  | Var x, Var y -> String.equal x y
  | Lambda x, Lambda y ->
      x.params = y.params && x.rest = y.rest && equal x.body y.body
  | If (a0, a1, a2), If (b0, b1, b2) -> equal a0 b0 && equal a1 b1 && equal a2 b2
  | Set (i, x), Set (j, y) -> String.equal i j && equal x y
  | Call (f, xs), Call (g, ys) ->
      equal f g && List.length xs = List.length ys && List.for_all2 equal xs ys
  | (Quote _ | Var _ | Lambda _ | If _ | Set _ | Call _), _ -> false

let rec size e =
  match e with
  | Quote _ | Var _ -> 1
  | Lambda { body; _ } -> 1 + size body
  | If (e0, e1, e2) -> 1 + size e0 + size e1 + size e2
  | Set (_, e0) -> 1 + size e0
  | Call (f, args) -> List.fold_left (fun acc e -> acc + size e) (1 + size f) args

(* Free variables, memoized on physical identity: expressions are
   immutable and shared, so a node's set never changes. [Hashtbl.hash] is
   depth-bounded (O(1)) and physical equality makes lookups exact. The
   memo is per-domain ([Domain.DLS]): pool workers each get their own
   table, so concurrent sweeps never race on a shared Hashtbl. *)
module Node_table = Hashtbl.Make (struct
  type t = expr

  let equal = ( == )
  let hash = Hashtbl.hash
end)

let fv_memo_key : Iset.t Node_table.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Node_table.create 256)

let rec fv memo e =
  match Node_table.find_opt memo e with
  | Some s -> s
  | None ->
      let s = compute_fv memo e in
      Node_table.add memo e s;
      s

and compute_fv memo e =
  match e with
  | Quote _ -> Iset.empty
  | Var i -> Iset.singleton i
  | Lambda l -> fv_lambda memo l
  | If (e0, e1, e2) -> Iset.union (fv memo e0) (Iset.union (fv memo e1) (fv memo e2))
  | Set (i, e0) -> Iset.add i (fv memo e0)
  | Call (f, args) ->
      List.fold_left (fun acc e -> Iset.union acc (fv memo e)) (fv memo f) args

and fv_lambda memo { params; rest; body } =
  let bound =
    match rest with Some r -> r :: params | None -> params
  in
  Iset.diff (fv memo body) (Iset.of_list bound)

let free_vars e = fv (Domain.DLS.get fv_memo_key) e
let free_vars_lambda l = fv_lambda (Domain.DLS.get fv_memo_key) l

let free_vars_of_list es =
  List.fold_left (fun acc e -> Iset.union acc (free_vars e)) Iset.empty es

let datum_of_const c =
  match c with
  | C_bool b -> Datum.Bool b
  | C_int z -> Datum.Int z
  | C_sym s -> Datum.Sym s
  | C_str s -> Datum.Str s
  | C_char c -> Datum.Char c
  | C_nil -> Datum.Nil
  | C_unspecified -> Datum.Sym "#!unspecified"
  | C_undefined -> Datum.Sym "#!undefined"

let rec to_datum e =
  match e with
  | Quote c -> Datum.list [ Datum.Sym "quote"; datum_of_const c ]
  | Var i -> Datum.Sym i
  | Lambda { params; rest; body } ->
      let formals =
        match rest with
        | None -> Datum.list (List.map Datum.sym params)
        | Some r ->
            List.fold_right
              (fun p acc -> Datum.Pair (Datum.Sym p, acc))
              params (Datum.Sym r)
      in
      Datum.list [ Datum.Sym "lambda"; formals; to_datum body ]
  | If (e0, e1, e2) ->
      Datum.list [ Datum.Sym "if"; to_datum e0; to_datum e1; to_datum e2 ]
  | Set (i, e0) -> Datum.list [ Datum.Sym "set!"; Datum.Sym i; to_datum e0 ]
  | Call (f, args) -> Datum.list (to_datum f :: List.map to_datum args)

let pp ppf e = Datum.pp ppf (to_datum e)
let to_string e = Datum.to_string (to_datum e)
