(** The measurement result cache: repeated [bench] invocations are
    incremental.

    A cache maps a {e content-hash key} — built by the caller from
    everything that determines a measurement (program source, machine
    variant, space model, policy flags, input N, budget) — to a JSON
    value. Entries live in memory for the lifetime of the cache and,
    when a directory is given, as one [<key>.json] file each on disk, so
    a later process sees them too.

    The cache is driver-side state: look entries up before dispatching
    work to a {!Pool} and store results after joining. It is not
    domain-safe and must only be touched from the submitting domain. *)

type t

val create : ?dir:string -> unit -> t
(** [create ~dir ()] persists entries under [dir] (created if missing);
    without [dir] the cache is memory-only. *)

val dir : t -> string option

val key : string list -> string
(** Content hash of the given parts (order-sensitive, separator-safe):
    the hex digest that names the entry. Callers include every input
    that could change the measurement. *)

val find : t -> string -> Tailspace_telemetry.Telemetry.Json.t option
(** Memory first, then disk. A missing, unreadable, or unparsable disk
    entry is a miss (the entry will simply be recomputed). Counts a hit
    or a miss. *)

val store : t -> string -> Tailspace_telemetry.Telemetry.Json.t -> unit
(** Insert in memory and, when persistent, write [dir/<key>.json]
    atomically (temp file + rename). Write failures degrade to
    memory-only silently: a broken cache must never fail a sweep. *)

val hits : t -> int

val misses : t -> int

val size : t -> int
(** In-memory entries. *)
