(* A fixed set of worker domains draining a shared queue. One mutex
   guards everything (the queue, the shutdown flag, each map's
   completion counter, and every handle's result slot); two conditions
   signal "work arrived" to workers and "a result landed" to waiters.
   Tasks are thunks that have already captured their result slot, so
   the pool itself is untyped. *)

type t = {
  mutex : Mutex.t;
  work_arrived : Condition.t;  (* workers wait here *)
  result_landed : Condition.t;  (* submitters and awaiters wait here *)
  queue : (unit -> unit) Queue.t;
  mutable shutting_down : bool;
  mutable domains : unit Domain.t array;
}

let default_jobs () = Stdlib.max 1 (Domain.recommended_domain_count () - 1)

let worker pool =
  let rec loop () =
    Mutex.lock pool.mutex;
    while Queue.is_empty pool.queue && not pool.shutting_down do
      Condition.wait pool.work_arrived pool.mutex
    done;
    if Queue.is_empty pool.queue then begin
      (* shutting down and drained *)
      Mutex.unlock pool.mutex
    end
    else begin
      let task = Queue.pop pool.queue in
      Mutex.unlock pool.mutex;
      task ();
      loop ()
    end
  in
  loop ()

let create ?jobs () =
  let jobs =
    Stdlib.max 1 (match jobs with Some j -> j | None -> default_jobs ())
  in
  let pool =
    {
      mutex = Mutex.create ();
      work_arrived = Condition.create ();
      result_landed = Condition.create ();
      queue = Queue.create ();
      shutting_down = false;
      domains = [||];
    }
  in
  pool.domains <-
    Array.init jobs (fun _ -> Domain.spawn (fun () -> worker pool));
  pool

let jobs pool = Array.length pool.domains

let shutdown pool =
  Mutex.lock pool.mutex;
  let already = pool.shutting_down in
  pool.shutting_down <- true;
  Condition.broadcast pool.work_arrived;
  Mutex.unlock pool.mutex;
  if not already then Array.iter Domain.join pool.domains

type 'b slot =
  | Empty
  | Ok_ of 'b
  | Err of exn * Printexc.raw_backtrace
  | Discarded  (* queued behind a failure in the same batch; never ran *)

let map_on pool f xs =
  let items = Array.of_list xs in
  let n = Array.length items in
  if n = 0 then []
  else begin
    let results = Array.make n Empty in
    let remaining = ref n in
    (* One flag per batch: the first failure flips it, and every thunk
       of the batch that has not started yet completes as [Discarded]
       instead of running — a poisoned batch cannot occupy the workers
       past its first error, and the workers themselves stay reusable
       for the next batch. *)
    let poisoned = ref false in
    Mutex.lock pool.mutex;
    if pool.shutting_down then begin
      Mutex.unlock pool.mutex;
      invalid_arg "Pool.map: pool is shut down"
    end;
    for i = 0 to n - 1 do
      Queue.push
        (fun () ->
          Mutex.lock pool.mutex;
          let skip = !poisoned in
          Mutex.unlock pool.mutex;
          let r =
            if skip then Discarded
            else
              match f items.(i) with
              | y -> Ok_ y
              | exception e -> Err (e, Printexc.get_raw_backtrace ())
          in
          Mutex.lock pool.mutex;
          (match r with Err _ -> poisoned := true | _ -> ());
          results.(i) <- r;
          decr remaining;
          if !remaining = 0 then Condition.broadcast pool.result_landed;
          Mutex.unlock pool.mutex)
        pool.queue
    done;
    Condition.broadcast pool.work_arrived;
    while !remaining > 0 do
      Condition.wait pool.result_landed pool.mutex
    done;
    Mutex.unlock pool.mutex;
    (* join in submission order; earliest failure wins *)
    Array.iter
      (function
        | Err (e, bt) -> Printexc.raise_with_backtrace e bt
        | Ok_ _ | Empty | Discarded -> ())
      results;
    List.init n (fun i ->
        match results.(i) with
        | Ok_ y -> y
        | Empty | Err _ | Discarded -> assert false)
  end

let map ?pool f xs =
  match pool with None -> List.map f xs | Some pool -> map_on pool f xs

(* ------------------------------------------------------------------ *)
(* Asynchronous handles                                                *)

type 'a handle = { h_pool : t; mutable h_slot : 'a slot }

let submit pool f =
  let h = { h_pool = pool; h_slot = Empty } in
  Mutex.lock pool.mutex;
  if pool.shutting_down then begin
    Mutex.unlock pool.mutex;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Queue.push
    (fun () ->
      let r =
        match f () with
        | y -> Ok_ y
        | exception e -> Err (e, Printexc.get_raw_backtrace ())
      in
      Mutex.lock pool.mutex;
      h.h_slot <- r;
      Condition.broadcast pool.result_landed;
      Mutex.unlock pool.mutex)
    pool.queue;
  Condition.signal pool.work_arrived;
  Mutex.unlock pool.mutex;
  h

let is_done h =
  Mutex.lock h.h_pool.mutex;
  let done_ = match h.h_slot with Empty -> false | _ -> true in
  Mutex.unlock h.h_pool.mutex;
  done_

let await h =
  Mutex.lock h.h_pool.mutex;
  while match h.h_slot with Empty -> true | _ -> false do
    Condition.wait h.h_pool.result_landed h.h_pool.mutex
  done;
  let r = h.h_slot in
  Mutex.unlock h.h_pool.mutex;
  match r with
  | Ok_ y -> y
  | Err (e, bt) -> Printexc.raise_with_backtrace e bt
  | Empty | Discarded -> assert false

let with_pool ?jobs f =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs <= 1 then f None
  else begin
    let pool = create ~jobs () in
    Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f (Some pool))
  end
