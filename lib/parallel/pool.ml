(* A fixed set of worker domains draining a shared queue. One mutex
   guards everything (the queue, the shutdown flag, and each map's
   completion counter); two conditions signal "work arrived" to workers
   and "a map finished" to submitters. Tasks are thunks that have
   already captured their result slot, so the pool itself is untyped. *)

type t = {
  mutex : Mutex.t;
  work_arrived : Condition.t;  (* workers wait here *)
  map_done : Condition.t;  (* submitters wait here *)
  queue : (unit -> unit) Queue.t;
  mutable shutting_down : bool;
  mutable domains : unit Domain.t array;
}

let default_jobs () = Stdlib.max 1 (Domain.recommended_domain_count () - 1)

let worker pool =
  let rec loop () =
    Mutex.lock pool.mutex;
    while Queue.is_empty pool.queue && not pool.shutting_down do
      Condition.wait pool.work_arrived pool.mutex
    done;
    if Queue.is_empty pool.queue then begin
      (* shutting down and drained *)
      Mutex.unlock pool.mutex
    end
    else begin
      let task = Queue.pop pool.queue in
      Mutex.unlock pool.mutex;
      task ();
      loop ()
    end
  in
  loop ()

let create ?jobs () =
  let jobs =
    Stdlib.max 1 (match jobs with Some j -> j | None -> default_jobs ())
  in
  let pool =
    {
      mutex = Mutex.create ();
      work_arrived = Condition.create ();
      map_done = Condition.create ();
      queue = Queue.create ();
      shutting_down = false;
      domains = [||];
    }
  in
  pool.domains <-
    Array.init jobs (fun _ -> Domain.spawn (fun () -> worker pool));
  pool

let jobs pool = Array.length pool.domains

let shutdown pool =
  Mutex.lock pool.mutex;
  let already = pool.shutting_down in
  pool.shutting_down <- true;
  Condition.broadcast pool.work_arrived;
  Mutex.unlock pool.mutex;
  if not already then Array.iter Domain.join pool.domains

type 'b slot = Empty | Ok_ of 'b | Err of exn * Printexc.raw_backtrace

let map_on pool f xs =
  let items = Array.of_list xs in
  let n = Array.length items in
  if n = 0 then []
  else begin
    let results = Array.make n Empty in
    let remaining = ref n in
    Mutex.lock pool.mutex;
    if pool.shutting_down then begin
      Mutex.unlock pool.mutex;
      invalid_arg "Pool.map: pool is shut down"
    end;
    for i = 0 to n - 1 do
      Queue.push
        (fun () ->
          let r =
            match f items.(i) with
            | y -> Ok_ y
            | exception e -> Err (e, Printexc.get_raw_backtrace ())
          in
          Mutex.lock pool.mutex;
          results.(i) <- r;
          decr remaining;
          if !remaining = 0 then Condition.broadcast pool.map_done;
          Mutex.unlock pool.mutex)
        pool.queue
    done;
    Condition.broadcast pool.work_arrived;
    while !remaining > 0 do
      Condition.wait pool.map_done pool.mutex
    done;
    Mutex.unlock pool.mutex;
    (* join in submission order; earliest failure wins *)
    Array.iter
      (function
        | Err (e, bt) -> Printexc.raise_with_backtrace e bt
        | Ok_ _ | Empty -> ())
      results;
    List.init n (fun i ->
        match results.(i) with
        | Ok_ y -> y
        | Empty | Err _ -> assert false)
  end

let map ?pool f xs =
  match pool with None -> List.map f xs | Some pool -> map_on pool f xs

let with_pool ?jobs f =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs <= 1 then f None
  else begin
    let pool = create ~jobs () in
    Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f (Some pool))
  end
