module Json = Tailspace_telemetry.Telemetry.Json

type t = {
  dir : string option;
  memory : (string, Json.t) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let create ?dir () =
  (match dir with
  | Some d when not (Sys.file_exists d) -> (
      try Sys.mkdir d 0o755 with Sys_error _ -> ())
  | _ -> ());
  { dir; memory = Hashtbl.create 64; hits = 0; misses = 0 }

let dir t = t.dir

(* Order-sensitive and unambiguous: each part is length-prefixed, so
   ["ab"; "c"] and ["a"; "bc"] hash differently. MD5 is fine here — the
   key only needs to be collision-resistant against accidents, and
   Digest is in the stdlib. *)
let key parts =
  let buf = Buffer.create 256 in
  List.iter
    (fun p ->
      Buffer.add_string buf (string_of_int (String.length p));
      Buffer.add_char buf ':';
      Buffer.add_string buf p)
    parts;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let path t k = Option.map (fun d -> Filename.concat d (k ^ ".json")) t.dir

let read_file p =
  let ic = open_in_bin p in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let find t k =
  match Hashtbl.find_opt t.memory k with
  | Some v ->
      t.hits <- t.hits + 1;
      Some v
  | None -> (
      let from_disk =
        match path t k with
        | Some p when Sys.file_exists p -> (
            match Json.of_string (read_file p) with
            | Ok v -> Some v
            | Error _ | (exception Sys_error _) -> None)
        | _ -> None
      in
      match from_disk with
      | Some v ->
          Hashtbl.replace t.memory k v;
          t.hits <- t.hits + 1;
          Some v
      | None ->
          t.misses <- t.misses + 1;
          None)

let store t k v =
  Hashtbl.replace t.memory k v;
  match path t k with
  | None -> ()
  | Some p -> (
      try
        let tmp = p ^ ".tmp" in
        let oc = open_out_bin tmp in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> output_string oc (Json.to_string v));
        Sys.rename tmp p
      with Sys_error _ -> ())

let hits t = t.hits
let misses t = t.misses
let size t = Hashtbl.length t.memory
