(** A Domain-based worker pool for parallel measurement sweeps.

    The reference machines are pure over a persistent store, so sweep
    points are embarrassingly parallel; the only shared mutable state is
    at the edges (telemetry handles, the result cache), which the
    harness keeps per-task. This pool is the one concurrency primitive
    in the system: a fixed set of worker domains draining a
    [Mutex]/[Condition] work queue.

    Determinism contract: {!map} returns results in submission order, so
    a parallel map is observationally identical to [List.map] whenever
    the task function is pure per item — which is what makes
    [--jobs N] tables byte-identical to [--jobs 1]. *)

type t

val default_jobs : unit -> int
(** [max 1 (Domain.recommended_domain_count () - 1)]: leave one core for
    the submitting domain. *)

val create : ?jobs:int -> unit -> t
(** Spawn [jobs] worker domains (default {!default_jobs}; clamped to at
    least 1). The pool must eventually be {!shutdown} (or use
    {!with_pool}). *)

val jobs : t -> int
(** The number of worker domains. *)

val map : ?pool:t -> ('a -> 'b) -> 'a list -> 'b list
(** [map ?pool f xs] applies [f] to every element, returning results in
    submission order. Without a [pool] this is exactly [List.map f xs]
    in the calling domain. With a pool, items are queued and the caller
    blocks until all complete. If any task raises, the batch is
    poisoned: items of the {e same batch} that have not started yet are
    discarded without running (in-flight items finish), and then the
    exception of the {e earliest} failed item (by submission index) is
    re-raised with its backtrace. The workers survive a poisoned batch
    and the pool stays usable for subsequent batches and submissions.

    Do not call [map] on the same pool from within one of its own tasks:
    the waiting task occupies a worker and the pool can deadlock. The
    harness only maps over leaf-level measurement tasks. *)

(** {1 Asynchronous submission}

    The evaluation service must keep accepting connections while
    requests run, so it cannot block in {!map}; it enqueues one task at
    a time and lets the completion land later. A handle is affine in
    practice: one dispatcher submits, one waiter awaits. *)

type 'a handle
(** The pending (or completed) result of one submitted task. *)

val submit : t -> (unit -> 'a) -> 'a handle
(** Enqueue one task without waiting. The caller bounds its own number
    of outstanding handles (the pool's queue is unbounded by design —
    admission control lives above it). Raises [Invalid_argument] if the
    pool is shut down. *)

val await : 'a handle -> 'a
(** Block until the task completes; returns its result or re-raises its
    exception with the original backtrace. *)

val is_done : 'a handle -> bool
(** Whether {!await} would return without blocking. *)

val shutdown : t -> unit
(** Finish the queued tasks, then join every worker domain. Idempotent. *)

val with_pool : ?jobs:int -> (t option -> 'a) -> 'a
(** [with_pool ~jobs f]: when [jobs <= 1] runs [f None] (serial path,
    no domains spawned); otherwise creates a pool, runs [f (Some pool)],
    and shuts the pool down even if [f] raises. [jobs] defaults to
    {!default_jobs}. *)
