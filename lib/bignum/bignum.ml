(* Sign-magnitude bignums over base-2^30 limbs, little-endian, behind a
   tagged fixnum fast path.

   Representation: [Fix n] carries a native int while the magnitude fits
   in [fix_bits] bits; [Big] carries sign-magnitude limbs. Invariants:
   [Big.mag] has no trailing (most-significant) zero limbs, is never
   empty (zero is always [Fix 0]), and [Big.sign] is [-1] or [1]. When
   fixnums are enabled (the default), every constructor canonicalizes
   through [make], so a [Big] never holds a fixnum-range magnitude and
   structural equality coincides with numeric equality.

   The fixnum toggle ([set_fixnums false]) exists so the differential
   oracle can force the all-limbs regime: every observer below (compare,
   to_string, bit_length, hash, arithmetic) is representation-agnostic,
   so a [Fix] and a [Big] holding the same number are indistinguishable
   to callers — which is exactly the paper's point that the space
   *charge* (1 + log2 z, via [bit_length]) is a function of the
   magnitude, never of the representation.

   Sub-quadratic algorithms: Karatsuba multiplication above a tuned limb
   threshold, Knuth Algorithm D (limb-at-a-time quotient estimation) for
   division, and divide-and-conquer decimal conversion splitting at a
   shared tree of 10^(9*2^k) powers. The schoolbook paths survive under
   [Internal] for differential tests and crossover benchmarks. *)

let limb_bits = 30
let base = 1 lsl limb_bits
let limb_mask = base - 1

(* Fixnum range: |n| <= fix_max = 2^61 - 1. One bit of headroom below
   the 63-bit native int means the sum of any two fixnums is exact in
   native arithmetic — overflow detection is a range test on the result,
   never a pre-check. *)
let fix_bits = 61
let fix_max = (1 lsl fix_bits) - 1

type t = Fix of int | Big of { sign : int; mag : int array }

let fixnums = ref true
let set_fixnums b = fixnums := b
let fixnums_enabled () = !fixnums
let is_fixnum = function Fix _ -> true | Big _ -> false

let zero = Fix 0

(* Bit length of a non-negative native int, by binary descent. *)
let num_bits_int n =
  let n = ref n and b = ref 0 in
  if !n lsr 32 <> 0 then begin b := !b + 32; n := !n lsr 32 end;
  if !n lsr 16 <> 0 then begin b := !b + 16; n := !n lsr 16 end;
  if !n lsr 8 <> 0 then begin b := !b + 8; n := !n lsr 8 end;
  if !n lsr 4 <> 0 then begin b := !b + 4; n := !n lsr 4 end;
  if !n lsr 2 <> 0 then begin b := !b + 2; n := !n lsr 2 end;
  if !n lsr 1 <> 0 then begin b := !b + 1; n := !n lsr 1 end;
  !b + !n

(* ------------------------------------------------------------------ *)
(* Magnitude (unsigned little-endian limb array) primitives            *)

let normalize_mag mag =
  let n = Array.length mag in
  let rec top i = if i >= 0 && mag.(i) = 0 then top (i - 1) else i in
  let hi = top (n - 1) in
  if hi < 0 then [||] else if hi = n - 1 then mag else Array.sub mag 0 (hi + 1)

let cmp_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)

(* |a| + |b| *)
let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let lr = (if la > lb then la else lb) + 1 in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let s =
      (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry
    in
    r.(i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  r

(* |a| - |b|, requires |a| >= |b| *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      r.(i) <- d + base;
      borrow := 1
    end
    else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  r

let sub_mag_norm a b = normalize_mag (sub_mag a b)

let bit_length_mag mag =
  let n = Array.length mag in
  if n = 0 then 0 else ((n - 1) * limb_bits) + num_bits_int mag.(n - 1)

let shift_left_mag mag k =
  if Array.length mag = 0 then mag
  else
    let limbs = k / limb_bits and bits = k mod limb_bits in
    let n = Array.length mag in
    let r = Array.make (n + limbs + 1) 0 in
    for i = 0 to n - 1 do
      let v = mag.(i) lsl bits in
      r.(i + limbs) <- r.(i + limbs) lor (v land limb_mask);
      r.(i + limbs + 1) <- v lsr limb_bits
    done;
    r

let shift_right_mag mag k =
  let limbs = k / limb_bits and bits = k mod limb_bits in
  let n = Array.length mag in
  if limbs >= n then [||]
  else begin
    let r = Array.make (n - limbs) 0 in
    for i = 0 to n - limbs - 1 do
      let lo = mag.(i + limbs) lsr bits in
      let hi =
        if bits > 0 && i + limbs + 1 < n then
          (mag.(i + limbs + 1) lsl (limb_bits - bits)) land limb_mask
        else 0
      in
      r.(i) <- lo lor hi
    done;
    r
  end

(* ------------------------------------------------------------------ *)
(* Multiplication: schoolbook below the threshold, Karatsuba above.    *)

(* Schoolbook. Limbs are < 2^30 so a limb product plus carries stays
   below 2^62, within native-int range. *)
let mul_mag_school a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let acc = r.(i + j) + (ai * b.(j)) + !carry in
        r.(i + j) <- acc land limb_mask;
        carry := acc lsr limb_bits
      done;
      r.(i + lb) <- r.(i + lb) + !carry
    done;
    normalize_mag r
  end

(* Crossover limb count below which schoolbook wins; the default is
   tuned by `schemesim bignumbench` (committed in BENCH_bignum.json,
   which locates the single-split crossover near 96 limbs on the CI
   hardware), mirroring the per-machine MUL_TOOM_THRESHOLD tables of
   GMP's gmp-mparam.h. *)
let karatsuba_threshold = ref 80

(* r[off..] += src, with carry propagation. The caller guarantees the
   running value fits in r (true for Karatsuba's recombination, whose
   partial sums are bounded by the final product). *)
let add_into r src off =
  let n = Array.length src in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s = r.(off + i) + src.(i) + !carry in
    r.(off + i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  let i = ref (off + n) in
  while !carry <> 0 do
    let s = r.(!i) + !carry in
    r.(!i) <- s land limb_mask;
    carry := s lsr limb_bits;
    incr i
  done

(* a1*B^k + a0, both normalized. *)
let split_mag x k =
  let lx = Array.length x in
  if lx <= k then (normalize_mag x, [||])
  else (normalize_mag (Array.sub x 0 k), Array.sub x k (lx - k))

let rec mul_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else if (if la < lb then la else lb) < !karatsuba_threshold then
    mul_mag_school a b
  else begin
    (* Karatsuba: a = a1*B^k + a0, b = b1*B^k + b0;
       a*b = z2*B^2k + (z1 - z0 - z2)*B^k + z0
       with z0 = a0*b0, z2 = a1*b1, z1 = (a0+a1)(b0+b1). *)
    let k = ((if la > lb then la else lb) + 1) / 2 in
    let a0, a1 = split_mag a k and b0, b1 = split_mag b k in
    let z0 = mul_mag a0 b0 in
    let z2 = mul_mag a1 b1 in
    let z1 =
      mul_mag (normalize_mag (add_mag a0 a1)) (normalize_mag (add_mag b0 b1))
    in
    (* mid = z1 - z0 - z2 >= 0, computed standalone so every add below
       is a partial sum of the true product and cannot carry past the
       la+lb limbs of the result. *)
    let mid = sub_mag_norm (sub_mag_norm z1 z0) z2 in
    let r = Array.make (la + lb) 0 in
    add_into r z0 0;
    if Array.length z2 > 0 then add_into r z2 (2 * k);
    add_into r mid k;
    normalize_mag r
  end

(* ------------------------------------------------------------------ *)
(* Small-operand helpers (single-limb multiplier/divisor), used by the
   decimal-conversion base cases.                                      *)

let mul_small_mag mag m =
  let n = Array.length mag in
  let r = Array.make (n + 2) 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let acc = (mag.(i) * m) + !carry in
    r.(i) <- acc land limb_mask;
    carry := acc lsr limb_bits
  done;
  let i = ref n in
  while !carry <> 0 do
    r.(!i) <- !carry land limb_mask;
    carry := !carry lsr limb_bits;
    incr i
  done;
  r

let add_small_mag mag m =
  let n = Array.length mag in
  let r = Array.make (n + 1) 0 in
  Array.blit mag 0 r 0 n;
  let carry = ref m in
  let i = ref 0 in
  while !carry <> 0 do
    let acc = r.(!i) + !carry in
    r.(!i) <- acc land limb_mask;
    carry := acc lsr limb_bits;
    incr i
  done;
  r

(* Divide magnitude by a small positive int; returns quotient mag and the
   int remainder. Limbs < 2^30 and divisors < 2^30 keep the intermediate
   [acc] below 2^60. *)
let divmod_small_mag mag m =
  let n = Array.length mag in
  let q = Array.make n 0 in
  let rem = ref 0 in
  for i = n - 1 downto 0 do
    let acc = (!rem lsl limb_bits) lor mag.(i) in
    q.(i) <- acc / m;
    rem := acc mod m
  done;
  (q, !rem)

(* ------------------------------------------------------------------ *)
(* Division                                                            *)

(* Shift-and-subtract, one bit at a time from the top: the seed
   implementation, kept as the differential reference for Algorithm D.
   O(bits(a) * limbs(a)). *)
let divmod_mag_school a b =
  let c = cmp_mag a b in
  if c < 0 then ([||], a)
  else begin
    let shift = bit_length_mag a - bit_length_mag b in
    let q = Array.make ((shift / limb_bits) + 1) 0 in
    let rem = ref a in
    for k = shift downto 0 do
      let d = normalize_mag (shift_left_mag b k) in
      if cmp_mag !rem d >= 0 then begin
        rem := normalize_mag (sub_mag !rem d);
        q.(k / limb_bits) <- q.(k / limb_bits) lor (1 lsl (k mod limb_bits))
      end
    done;
    (normalize_mag q, !rem)
  end

(* Knuth Algorithm D (TAOCP vol. 2, 4.3.1), limb-at-a-time: normalize so
   the divisor's top limb has its high bit set, estimate each quotient
   limb from the top two dividend limbs, correct the estimate with the
   second divisor limb (at most two decrements), multiply-subtract, and
   add back in the rare over-estimate case. Requires length b >= 2 and
   |a| >= |b|; all intermediates stay below 2^60 in 63-bit ints. *)
let divmod_mag_knuth a b =
  let n = Array.length b in
  let la = Array.length a in
  let shift = limb_bits - num_bits_int b.(n - 1) in
  let v = normalize_mag (shift_left_mag b shift) in
  let u = shift_left_mag a shift in
  (* u has la+1 limbs (the top one possibly zero — Algorithm D wants the
     extra limb); v still has n limbs, top limb >= base/2. *)
  let m = la - n in
  let q = Array.make (m + 1) 0 in
  let vtop = v.(n - 1) and vsec = v.(n - 2) in
  for j = m downto 0 do
    let num = (u.(j + n) lsl limb_bits) lor u.(j + n - 1) in
    let qhat = ref (num / vtop) and rhat = ref (num mod vtop) in
    let adjusting = ref true in
    while !adjusting do
      if
        !qhat >= base
        || !qhat * vsec > (!rhat lsl limb_bits) lor u.(j + n - 2)
      then begin
        decr qhat;
        rhat := !rhat + vtop;
        if !rhat >= base then adjusting := false
      end
      else adjusting := false
    done;
    (* multiply-subtract qhat*v from u[j .. j+n] *)
    let borrow = ref 0 in
    for i = 0 to n - 1 do
      let p = !qhat * v.(i) in
      let t = u.(i + j) - !borrow - (p land limb_mask) in
      u.(i + j) <- t land limb_mask;
      borrow := (p lsr limb_bits) - (t asr limb_bits)
    done;
    let t = u.(j + n) - !borrow in
    u.(j + n) <- t land limb_mask;
    if t < 0 then begin
      (* qhat was one too large: add v back; the final carry cancels the
         borrow that went negative above. *)
      decr qhat;
      let carry = ref 0 in
      for i = 0 to n - 1 do
        let s = u.(i + j) + v.(i) + !carry in
        u.(i + j) <- s land limb_mask;
        carry := s lsr limb_bits
      done;
      u.(j + n) <- (u.(j + n) + !carry) land limb_mask
    end;
    q.(j) <- !qhat
  done;
  let rem = shift_right_mag (normalize_mag (Array.sub u 0 n)) shift in
  (normalize_mag q, normalize_mag rem)

let divmod_mag a b =
  if cmp_mag a b < 0 then ([||], a)
  else if Array.length b = 1 then begin
    let q, r = divmod_small_mag a b.(0) in
    (normalize_mag q, if r = 0 then [||] else [| r |])
  end
  else divmod_mag_knuth a b

(* ------------------------------------------------------------------ *)
(* Canonicalization and conversions to/from native ints                *)

let fits_fix_mag mag =
  match Array.length mag with
  | 0 | 1 | 2 -> true
  | 3 -> (2 * limb_bits) + num_bits_int mag.(2) <= fix_bits
  | _ -> false

(* Caller guarantees the magnitude fits in a non-negative native int. *)
let int_of_mag mag =
  let v = ref 0 in
  for i = Array.length mag - 1 downto 0 do
    v := (!v lsl limb_bits) lor mag.(i)
  done;
  !v

(* |n| as a magnitude; peels limbs with negative arithmetic so min_int
   (which has no positive native counterpart) works too. *)
let mag_of_int_abs n =
  let rec limbs acc n =
    if n = 0 then acc else limbs ((-(n mod base)) :: acc) (n / base)
  in
  let l = limbs [] (if n < 0 then n else -n) in
  Array.of_list (List.rev l)

let make sign mag =
  let mag = normalize_mag mag in
  if Array.length mag = 0 then Fix 0
  else if !fixnums && fits_fix_mag mag then
    let v = int_of_mag mag in
    Fix (if sign < 0 then -v else v)
  else Big { sign = (if sign < 0 then -1 else 1); mag }

let of_int n =
  if n = 0 then Fix 0
  else if !fixnums && n >= -fix_max && n <= fix_max then Fix n
  else Big { sign = (if n < 0 then -1 else 1); mag = mag_of_int_abs n }

let one = of_int 1
let minus_one = of_int (-1)
let sign = function Fix n -> Stdlib.compare n 0 | Big b -> b.sign
let is_zero = function Fix 0 -> true | _ -> false
let mag_of = function Fix n -> mag_of_int_abs n | Big b -> b.mag

(* ------------------------------------------------------------------ *)
(* Comparison                                                          *)

let compare a b =
  match (a, b) with
  | Fix x, Fix y -> Stdlib.compare x y
  | _ ->
      let sa = sign a and sb = sign b in
      if sa <> sb then Stdlib.compare sa sb
      else if sa = 0 then 0
      else
        let c = cmp_mag (mag_of a) (mag_of b) in
        if sa >= 0 then c else -c

let equal a b = compare a b = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

(* ------------------------------------------------------------------ *)
(* Arithmetic                                                          *)

let neg = function
  | Fix n -> Fix (-n)
  | Big b -> Big { b with sign = -b.sign }

let abs a = if sign a < 0 then neg a else a

let add_general a b =
  if is_zero a then b
  else if is_zero b then a
  else
    let sa = sign a and sb = sign b in
    let ma = mag_of a and mb = mag_of b in
    if sa = sb then make sa (add_mag ma mb)
    else
      let c = cmp_mag ma mb in
      if c = 0 then Fix 0
      else if c > 0 then make sa (sub_mag ma mb)
      else make sb (sub_mag mb ma)

let add a b =
  match (a, b) with
  | Fix x, Fix y ->
      (* |x|,|y| <= 2^61 - 1, so the native sum cannot wrap. *)
      let s = x + y in
      if s >= -fix_max && s <= fix_max then Fix s
      else Big { sign = (if s < 0 then -1 else 1); mag = mag_of_int_abs s }
  | _ -> add_general a b

let sub a b =
  match (a, b) with
  | Fix x, Fix y ->
      let s = x - y in
      if s >= -fix_max && s <= fix_max then Fix s
      else Big { sign = (if s < 0 then -1 else 1); mag = mag_of_int_abs s }
  | _ -> add_general a (neg b)

let succ a = add a one
let pred a = sub a one

let mul_general a b =
  if is_zero a || is_zero b then Fix 0
  else make (sign a * sign b) (mul_mag (mag_of a) (mag_of b))

let mul a b =
  match (a, b) with
  | Fix 0, _ | _, Fix 0 -> Fix 0
  | Fix x, Fix y
    when num_bits_int (Stdlib.abs x) + num_bits_int (Stdlib.abs y) <= 62 ->
      (* bits(x) + bits(y) <= 62 bounds |x*y| < 2^62, exact in native. *)
      let p = x * y in
      if p >= -fix_max && p <= fix_max then Fix p
      else Big { sign = (if p < 0 then -1 else 1); mag = mag_of_int_abs p }
  | _ -> mul_general a b

let bit_length = function
  | Fix n -> num_bits_int (Stdlib.abs n)
  | Big b -> bit_length_mag b.mag

let shift_left a k =
  if k < 0 then invalid_arg "Bignum.shift_left"
  else if is_zero a || k = 0 then a
  else
    match a with
    | Fix n when num_bits_int (Stdlib.abs n) + k <= fix_bits -> Fix (n lsl k)
    | _ -> make (sign a) (shift_left_mag (mag_of a) k)

let shift_right a k =
  if k < 0 then invalid_arg "Bignum.shift_right"
  else if is_zero a || k = 0 then a
  else
    match a with
    | Fix n ->
        let m = Stdlib.abs n lsr k in
        Fix (if n < 0 then -m else m)
    | _ -> make (sign a) (shift_right_mag (mag_of a) k)

let divmod a b =
  if is_zero b then raise Division_by_zero
  else if is_zero a then (Fix 0, Fix 0)
  else
    match (a, b) with
    | Fix x, Fix y ->
        (* truncated division; |q| <= |x| and |r| < |y| stay in range *)
        (Fix (x / y), Fix (x mod y))
    | _ ->
        let qm, rm = divmod_mag (mag_of a) (mag_of b) in
        (make (sign a * sign b) qm, make (sign a) rm)

let quotient a b = fst (divmod a b)
let remainder a b = snd (divmod a b)

let modulo a b =
  let r = remainder a b in
  if is_zero r || sign r = sign b then r else add r b

let is_even = function
  | Fix n -> n land 1 = 0
  | Big b -> b.mag.(0) land 1 = 0

let pow base_v n =
  if n < 0 then invalid_arg "Bignum.pow"
  else
    let rec go acc b n =
      if n = 0 then acc
      else if n = 1 then mul acc b
        (* n = 1 used to fall through the squaring case: [go acc (mul b b)
           0] squared the largest intermediate of the whole call only to
           discard it. Returning here skips that dead final multiply. *)
      else go (if n land 1 = 1 then mul acc b else acc) (mul b b) (n lsr 1)
    in
    go one base_v n

(* ------------------------------------------------------------------ *)
(* Decimal conversion                                                  *)

let decimal_chunk = 1_000_000_000 (* largest power of 10 below 2^30 *)
let chunk_digits = 9

(* pow10.(k) = 10^k as a native int, k <= 18 (10^18 < 2^62). The integer
   table replaces the old [int_of_float (10. ** float k)] detour, so
   parsing never depends on float rounding. *)
let pow10 =
  let a = Array.make 19 1 in
  for i = 1 to 18 do
    a.(i) <- a.(i - 1) * 10
  done;
  a

(* tree.(k) = 10^(9 * 2^k) as a magnitude, extended by repeated squaring
   on demand. The atomic holds an immutable snapshot so concurrent
   measurement domains can extend it lock-free: losers of the CAS just
   re-read the (deterministic) winner's array. *)
let pow10_tree = Atomic.make [| [| decimal_chunk |] |]

let rec tree_level k =
  let t = Atomic.get pow10_tree in
  if k < Array.length t then t.(k)
  else begin
    let n = Array.length t in
    let t' = Array.make (k + 1) [||] in
    Array.blit t 0 t' 0 n;
    for i = n to k do
      t'.(i) <- mul_mag t'.(i - 1) t'.(i - 1)
    done;
    ignore (Atomic.compare_and_set pow10_tree t t');
    tree_level k
  end

(* Limb count below which [to_string] uses the classic chunk loop, and
   digit count below which [of_string] does; both are quadratic below
   and divide-and-conquer above. *)
let to_string_dc_threshold = ref 40
let of_string_dc_threshold = ref 512

(* Classic rendering: repeated division by 10^9, least-significant chunk
   first, then print most-significant first. Quadratic in limbs. *)
let chunk_loop_string mag =
  let buf = Buffer.create 16 in
  let rec chunks mag acc =
    if Array.length mag = 0 then acc
    else
      let q, r = divmod_small_mag mag decimal_chunk in
      chunks (normalize_mag q) (r :: acc)
  in
  (match chunks (normalize_mag mag) [] with
  | [] -> Buffer.add_char buf '0'
  | first :: rest ->
      Buffer.add_string buf (string_of_int first);
      List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%09d" c)) rest);
  Buffer.contents buf

(* Append the decimal digits of [mag], left-padded with zeros to [width]
   (0 = no padding). Splits at the largest tree power whose limb count
   is at most half the input's, so both halves shrink geometrically and
   the divisions run through Algorithm D / Karatsuba. *)
let rec dc_digits buf mag ~width =
  let lm = Array.length mag in
  if lm <= !to_string_dc_threshold then begin
    let s = chunk_loop_string mag in
    for _ = String.length s + 1 to width do
      Buffer.add_char buf '0'
    done;
    Buffer.add_string buf s
  end
  else begin
    let rec pick k =
      if Array.length (tree_level (k + 1)) <= (lm + 1) / 2 then pick (k + 1)
      else k
    in
    let k = pick 0 in
    let p = tree_level k in
    let hi, lo = divmod_mag mag p in
    let lo_digits = chunk_digits * (1 lsl k) in
    let hw = width - lo_digits in
    dc_digits buf hi ~width:(if hw > 0 then hw else 0);
    dc_digits buf lo ~width:lo_digits
  end

let to_string t =
  match t with
  | Fix n -> string_of_int n
  | Big { sign; mag } ->
      let buf = Buffer.create (4 * Array.length mag) in
      if sign < 0 then Buffer.add_char buf '-';
      dc_digits buf mag ~width:0;
      Buffer.contents buf

let to_string_classic t =
  match t with
  | Fix n -> string_of_int n
  | Big { sign; mag } ->
      let digits = chunk_loop_string mag in
      if sign < 0 then "-" ^ digits else digits

(* Classic parse of s.[lo..hi): fold 9-digit chunks left to right,
   scaling by the integer power table. Quadratic in the digit count.
   Digits are pre-validated by [of_string]. *)
let chunk_loop_parse s lo hi =
  let mag = ref [||] in
  let i = ref lo in
  while !i < hi do
    let cl = Stdlib.min chunk_digits (hi - !i) in
    let m = ref 0 in
    for j = !i to !i + cl - 1 do
      m := (!m * 10) + (Char.code s.[j] - Char.code '0')
    done;
    mag := add_small_mag (mul_small_mag !mag pow10.(cl)) !m;
    i := !i + cl
  done;
  normalize_mag !mag

(* Divide-and-conquer parse: split so the low part is exactly
   9 * 2^k digits (the tree power's width), recurse, and recombine with
   one Karatsuba multiply: high * 10^(9*2^k) + low. *)
let rec dc_parse s lo hi =
  let len = hi - lo in
  if len <= !of_string_dc_threshold then chunk_loop_parse s lo hi
  else begin
    let rec pick k =
      if chunk_digits * (1 lsl (k + 1)) < len then pick (k + 1) else k
    in
    let k = pick 0 in
    let split = hi - (chunk_digits * (1 lsl k)) in
    let hi_mag = dc_parse s lo split in
    let lo_mag = dc_parse s split hi in
    normalize_mag (add_mag (mul_mag hi_mag (tree_level k)) lo_mag)
  end

let parse_sign s len =
  if len = 0 then invalid_arg "Bignum.of_string: empty string";
  let sign, start =
    match s.[0] with '-' -> (-1, 1) | '+' -> (1, 1) | _ -> (1, 0)
  in
  if start >= len then invalid_arg "Bignum.of_string: no digits";
  for i = start to len - 1 do
    let c = s.[i] in
    if c < '0' || c > '9' then
      invalid_arg ("Bignum.of_string: bad digit " ^ String.make 1 c)
  done;
  (sign, start)

let of_string s =
  let len = String.length s in
  let sign, start = parse_sign s len in
  if len - start <= 18 then begin
    (* <= 18 digits is < 10^18 < 2^62: exact in a native int. *)
    let v = ref 0 in
    for i = start to len - 1 do
      v := (!v * 10) + (Char.code s.[i] - Char.code '0')
    done;
    of_int (if sign < 0 then - !v else !v)
  end
  else make sign (dc_parse s start len)

let of_string_classic s =
  let len = String.length s in
  let sign, start = parse_sign s len in
  make sign (chunk_loop_parse s start len)

(* ------------------------------------------------------------------ *)
(* Native-int extraction                                               *)

let to_int t =
  match t with
  | Fix n -> Some n
  | Big { sign; mag } ->
      let bl = bit_length_mag mag in
      if bl <= 62 then
        let v = int_of_mag mag in
        Some (if sign < 0 then -v else v)
      else if
        (* The one 63-bit magnitude that still fits: |min_int| = 2^62,
           i.e. limbs [|0; 0; 4|]. The old 62-bit guard rejected it, so
           [of_int min_int |> to_int] came back [None]. *)
        bl = 63 && sign < 0
        && Array.length mag = 3
        && mag.(0) = 0 && mag.(1) = 0 && mag.(2) = 4
      then Some Stdlib.min_int
      else None

let to_int_exn t =
  match to_int t with
  | Some n -> n
  | None -> failwith ("Bignum.to_int_exn: too large: " ^ to_string t)

let pp ppf t = Format.pp_print_string ppf (to_string t)

(* Representation-independent hash: fold every 30-bit limb of the
   magnitude (an FNV-style multiply-xor), then mix in the sign. The old
   [Hashtbl.hash] on the limb array sampled only a bounded prefix, so
   large magnitudes differing in high limbs all collided; and a [Fix]
   and a [Big] holding the same number must hash alike. *)
let hash t =
  let h = ref 0x811c9dc5 in
  let mix l = h := ((!h * 0x01000193) lxor l) land Stdlib.max_int in
  (match t with
  | Fix n ->
      let v = ref (Stdlib.abs n) in
      while !v <> 0 do
        mix (!v land limb_mask);
        v := !v lsr limb_bits
      done
  | Big b -> Array.iter mix b.mag);
  ((!h * 31) + sign t) land Stdlib.max_int

(* ------------------------------------------------------------------ *)
(* Internal surface for differential tests and crossover benchmarks    *)

module Internal = struct
  let karatsuba_threshold = karatsuba_threshold
  let to_string_dc_threshold = to_string_dc_threshold
  let of_string_dc_threshold = of_string_dc_threshold

  let mul_schoolbook a b =
    if is_zero a || is_zero b then Fix 0
    else make (sign a * sign b) (mul_mag_school (mag_of a) (mag_of b))

  let divmod_schoolbook a b =
    if is_zero b then raise Division_by_zero
    else if is_zero a then (Fix 0, Fix 0)
    else
      let qm, rm = divmod_mag_school (mag_of a) (mag_of b) in
      (make (sign a * sign b) qm, make (sign a) rm)

  let to_string_classic = to_string_classic
  let of_string_classic = of_string_classic
  let limbs t = Array.length (mag_of t)
end
