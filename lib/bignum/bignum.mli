(** Arbitrary-precision signed integers.

    The space model of Clinger's reference machines charges an exact
    integer [z] a cost of [1 + log2 z] machine words, and Scheme's exact
    arithmetic is unbounded, so the machines cannot be built on native
    [int]s: iterating [(f (- n 1))] from a large [n], or computing
    factorials in the corpus, must neither overflow nor misreport space.
    This module is a self-contained bignum implementation (sign-magnitude,
    base-2{^30} limbs, behind a tagged fixnum fast path) with exactly the
    operations the Scheme primitives need. Multiplication is Karatsuba
    above a tuned limb threshold, division is Knuth Algorithm D, and
    decimal conversion is divide-and-conquer over a power-of-10 tree; the
    schoolbook reference paths remain reachable through {!Internal} for
    differential testing and crossover benchmarking.

    All functions are pure; values are immutable and canonical (no
    negative zero, no leading zero limbs), so structural equality agrees
    with numeric equality. Every observer is representation-agnostic: a
    fixnum-tagged value and a limb-array value denoting the same integer
    are indistinguishable (equal, same hash, same rendering, same
    [bit_length]) — which is why toggling {!set_fixnums} can never change
    a machine's answers, step counts, or space charges. *)

type t

(** {1 Constants and conversions} *)

val zero : t
val one : t
val minus_one : t

val of_int : int -> t

val to_int : t -> int option
(** [to_int z] is [Some n] when [z] fits in a native [int]. *)

val to_int_exn : t -> int
(** @raise Failure when the value does not fit in a native [int]. *)

val of_string : string -> t
(** Parses an optional sign followed by decimal digits.
    @raise Invalid_argument on malformed input. *)

val to_string : t -> string
(** Decimal rendering, with a leading ['-'] for negative values. *)

val pp : Format.formatter -> t -> unit

(** {1 Predicates and comparisons} *)

val sign : t -> int
(** [-1], [0] or [1]. *)

val is_zero : t -> bool

val is_even : t -> bool
(** Parity straight off the low limb / low bit — no division. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val min : t -> t -> t
val max : t -> t -> t

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val succ : t -> t
val pred : t -> t

val divmod : t -> t -> t * t
(** [divmod a b] is truncated division: [(q, r)] with [a = q*b + r],
    [|r| < |b|], and [r] having the sign of [a] (or zero). This is
    Scheme's [quotient]/[remainder] pair.
    @raise Division_by_zero when [b] is zero. *)

val quotient : t -> t -> t
val remainder : t -> t -> t

val modulo : t -> t -> t
(** Scheme's [modulo]: the result has the sign of the divisor. *)

val pow : t -> int -> t
(** [pow base n] for [n >= 0].
    @raise Invalid_argument on a negative exponent. *)

(** {1 Bit-level} *)

val bit_length : t -> int
(** Number of bits in the magnitude; [bit_length zero = 0]. This is the
    quantity the space model uses: [space (NUM:z) = 1 + bit_length z]. *)

val shift_left : t -> int -> t
val shift_right : t -> int -> t
(** Arithmetic shift of the magnitude (both shifts operate on [abs] and
    reattach the sign; they are helpers for division and tests, not
    two's-complement shifts). *)

val hash : t -> int
(** Representation-independent: folds every limb of the magnitude (large
    values differing only in high limbs hash apart) and agrees between
    fixnum-tagged and limb-array values of the same integer. *)

(** {1 Fixnum fast path}

    While its magnitude fits in 61 bits, a value is carried as a tagged
    native [int] and add/sub/mul/divmod run in native arithmetic with an
    overflow range check — no limb allocation. The toggle only affects
    how new values are {e constructed}; mixed-representation values
    remain sound because every observer above is representation-agnostic.
    The space charge ([1 + bit_length]) is a function of magnitude alone,
    so the oracle checks answers, steps, and peaks are bit-identical with
    the fast path on and off. *)

val set_fixnums : bool -> unit
(** Enable/disable fixnum tagging for subsequently constructed values.
    Defaults to enabled. Intended for differential testing. *)

val fixnums_enabled : unit -> bool

val is_fixnum : t -> bool
(** Whether this particular value is carried as a tagged native int. *)

(** {1 Internal tuning and reference paths}

    Exposed for the differential test-suite and the crossover benchmark
    ([schemesim bignumbench]); not part of the stable API. *)

module Internal : sig
  val karatsuba_threshold : int ref
  (** Limb count at or above which multiplication splits (Karatsuba);
      default tuned by the committed [BENCH_bignum.json]. *)

  val to_string_dc_threshold : int ref
  (** Limb count above which [to_string] divides-and-conquers. *)

  val of_string_dc_threshold : int ref
  (** Digit count above which [of_string] divides-and-conquers. *)

  val mul_schoolbook : t -> t -> t
  (** O(n²) reference multiplication, threshold-independent. *)

  val divmod_schoolbook : t -> t -> t * t
  (** Bit-at-a-time reference division, same sign contract as
      {!divmod}. *)

  val to_string_classic : t -> string
  (** Quadratic 10⁹-chunk rendering, threshold-independent. *)

  val of_string_classic : string -> t
  (** Quadratic 10⁹-chunk parsing, threshold-independent. *)

  val limbs : t -> int
  (** Limb count of the magnitude (fixnums are counted as if expanded);
      used by the benchmark to size operands. *)
end
