module Json = Tailspace_telemetry.Telemetry.Json

(* A site is an expanded-AST node id handed out by the annotation pass
   (insertion-ordered, so two machines that expand the same program in
   the same order agree on every id). Synthetic words that no program
   expression allocated — the globals built before the run, the Halt
   frame, the register environment, the control-register value — carry
   the pseudo-site [-1] and are distinguished by phase alone. *)

type phase =
  | P_rib  (** store cells allocated as parameter bindings by a call *)
  | P_frame  (** continuation-frame words (select/assign/push/call/return) *)
  | P_pair
  | P_vector
  | P_closure
  | P_escape
  | P_string
  | P_bignum  (** exact-integer cells: 1 + bit-length words of limbs *)
  | P_atom
  | P_register_env  (** the |Dom rho| term of the control register *)
  | P_control  (** the value in the accumulator at the peak *)
  | P_halt
  | P_globals  (** cells allocated before the measured run began *)
  | P_unreachable  (** defensive: cells the retainer walk never reached *)

let all_phases =
  [
    P_rib; P_frame; P_pair; P_vector; P_closure; P_escape; P_string; P_bignum;
    P_atom; P_register_env; P_control; P_halt; P_globals; P_unreachable;
  ]

let phase_name = function
  | P_rib -> "rib"
  | P_frame -> "frame"
  | P_pair -> "pair"
  | P_vector -> "vector"
  | P_closure -> "closure"
  | P_escape -> "escape"
  | P_string -> "string"
  | P_bignum -> "bignum"
  | P_atom -> "atom"
  | P_register_env -> "register-env"
  | P_control -> "control"
  | P_halt -> "halt"
  | P_globals -> "globals"
  | P_unreachable -> "unreachable"

let phase_of_name s =
  List.find_opt (fun p -> String.equal (phase_name p) s) all_phases

type measure = Flat | Linked | Log

let measure_name = function Flat -> "flat" | Linked -> "linked" | Log -> "log"

type row = {
  site : int;
  phase : phase;
  words : int;
  cells : int;  (** store cells attributed here; 0 for synthetic rows *)
  retained_by : (int * phase) list;
      (** roots whose retainer walk first reached a cell of this row *)
}

(* One collapsed flamegraph stack: the retainer path from a root
   (frame/env/control) down to the attributed words, innermost last. *)
type stack = { path : (int * phase) list; swords : int }

type t = {
  measure : measure;
  peak : int;  (** the telemetry peak this census decomposes, exactly *)
  rows : row list;
  stacks : stack list;
  labels : (int * string) list;
      (** site id -> source span (truncated expression text). Labels
          are advisory: gensym'd identifiers can differ between two
          machines that agree on every structural field, so census
          comparisons strip them ({!strip_labels}). *)
}

let total c = List.fold_left (fun acc r -> acc + r.words) 0 c.rows

let label_of c site phase =
  if site < 0 then "<" ^ phase_name phase ^ ">"
  else
    match List.assoc_opt site c.labels with
    | Some l -> l
    | None -> Printf.sprintf "s%d" site

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)

let key_json (site, phase) =
  Json.Obj [ ("site", Json.Int site); ("phase", Json.Str (phase_name phase)) ]

let row_json ~with_labels c r =
  Json.Obj
    ([
       ("site", Json.Int r.site);
       ("phase", Json.Str (phase_name r.phase));
       ("words", Json.Int r.words);
       ("cells", Json.Int r.cells);
       ("retained_by", Json.List (List.map key_json r.retained_by));
     ]
    @
    if with_labels then [ ("label", Json.Str (label_of c r.site r.phase)) ]
    else [])

let to_json ?(with_labels = true) c =
  Json.Obj
    [
      ("measure", Json.Str (measure_name c.measure));
      ("peak", Json.Int c.peak);
      ("total", Json.Int (total c));
      ("rows", Json.List (List.map (row_json ~with_labels c) c.rows));
      ( "stacks",
        Json.List
          (List.map
             (fun s ->
               Json.Obj
                 [
                   ("path", Json.List (List.map key_json s.path));
                   ("words", Json.Int s.swords);
                 ])
             c.stacks) );
    ]

let strip_labels c = { c with labels = [] }

(* ------------------------------------------------------------------ *)
(* Flamegraph export: one collapsed stack per line, `a;b;c words`,
   ready for flamegraph.pl or speedscope. Frame labels flatten their
   separator characters so the collapsed syntax stays parseable.       *)

let flame_escape s =
  String.map (fun ch -> match ch with ';' | ' ' | '\n' -> '_' | c -> c) s

let flamegraph_lines c =
  List.map
    (fun s ->
      let labels =
        List.map (fun (site, ph) -> flame_escape (label_of c site ph)) s.path
      in
      Printf.sprintf "%s %d" (String.concat ";" labels) s.swords)
    c.stacks

(* ------------------------------------------------------------------ *)
(* Per-site deltas between two censuses of the same program (the
   --diff VARIANT_A VARIANT_B view): every (site, phase) key present
   in either census, with its word count under each.                   *)

type delta = {
  dsite : int;
  dphase : phase;
  words_a : int;
  words_b : int;
  dlabel : string;
}

let diff a b =
  let tbl = Hashtbl.create 64 in
  let note from_a r =
    let key = (r.site, r.phase) in
    let wa, wb =
      match Hashtbl.find_opt tbl key with Some (x, y) -> (x, y) | None -> (0, 0)
    in
    Hashtbl.replace tbl key
      (if from_a then (wa + r.words, wb) else (wa, wb + r.words))
  in
  List.iter (note true) a.rows;
  List.iter (note false) b.rows;
  let ds =
    Hashtbl.fold
      (fun (site, phase) (wa, wb) acc ->
        {
          dsite = site;
          dphase = phase;
          words_a = wa;
          words_b = wb;
          dlabel =
            (let la = label_of a site phase in
             if site >= 0 && not (List.mem_assoc site a.labels) then
               label_of b site phase
             else la);
        }
        :: acc)
      tbl []
  in
  (* Largest absolute delta first: the sites carrying an asymptotic gap
     surface at the top of the table. *)
  List.sort
    (fun x y ->
      match compare (abs (y.words_b - y.words_a)) (abs (x.words_b - x.words_a)) with
      | 0 -> compare (x.dsite, x.dphase) (y.dsite, y.dphase)
      | c -> c)
    ds

(* ------------------------------------------------------------------ *)
(* Humanized units for log lines: exact word counts are for tables and
   JSON; a regression-gate message wants "1.2M words (+8.3%)".         *)

let humanize_words w =
  let f = float_of_int (abs w) in
  let sign = if w < 0 then "-" else "" in
  if abs w < 10_000 then Printf.sprintf "%d words" w
  else if f < 1e6 then Printf.sprintf "%s%.1fk words" sign (f /. 1e3)
  else if f < 1e9 then Printf.sprintf "%s%.1fM words" sign (f /. 1e6)
  else Printf.sprintf "%s%.1fG words" sign (f /. 1e9)

let percent_delta ~from ~to_ =
  if from = 0 then (if to_ = 0 then 0.0 else infinity)
  else float_of_int (to_ - from) *. 100.0 /. float_of_int from
