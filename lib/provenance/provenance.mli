(** Space provenance: the pure data model of a heap census.

    A census decomposes a measured peak — flat [S_X] (Figure 7) or
    linked [U_X] (Figure 8) — into per-(site, phase) word counts that
    sum {e exactly} to the peak. Sites are expanded-AST node ids from
    the annotation pass ({!Tailspace_analysis.Annot.site_id});
    synthetic words that no program expression allocated carry the
    pseudo-site [-1] and are told apart by {!phase}. The machinery that
    {e builds} censuses lives in [Tailspace_core.Census]; this module
    only defines, serializes, renders, and compares them, so it can sit
    below the core value/store layer. *)

module Json = Tailspace_telemetry.Telemetry.Json

(** What kind of words a row counts: why a store cell was allocated
    (env rib, pair, closure, bignum limbs, ...) or which non-store
    component of the configuration the words belong to
    (continuation frame, register environment, control value, Halt,
    pre-run globals). *)
type phase =
  | P_rib
  | P_frame
  | P_pair
  | P_vector
  | P_closure
  | P_escape
  | P_string
  | P_bignum
  | P_atom
  | P_register_env
  | P_control
  | P_halt
  | P_globals
  | P_unreachable

val all_phases : phase list
val phase_name : phase -> string
val phase_of_name : string -> phase option

type measure = Flat | Linked | Log

val measure_name : measure -> string
(** ["flat"], ["linked"], ["log"]. [Log] rows are in bit-units (every
    linked charge scaled by the pointer size of the measured store). *)

type row = {
  site : int;
  phase : phase;
  words : int;
  cells : int;  (** store cells attributed to the row; 0 for synthetic rows *)
  retained_by : (int * phase) list;
      (** the roots (env / frame / control) whose retainer walk first
          reached a cell of this row *)
}

type stack = { path : (int * phase) list; swords : int }
(** A collapsed flamegraph stack: retainer path, root first. *)

type t = {
  measure : measure;
  peak : int;
  rows : row list;
  stacks : stack list;
  labels : (int * string) list;
      (** advisory site labels (truncated source text); censuses are
          compared with {!strip_labels} because gensym'd names can
          differ between machines that agree structurally *)
}

val total : t -> int
(** Sum of all row words; equal to [peak] by construction — the
    invariant the QCheck suite and the CI smoke step re-check. *)

val label_of : t -> int -> phase -> string
(** The display label of a (site, phase): the recorded source span,
    ["s<id>"] when unlabeled, or ["<phase>"] for synthetic rows. *)

val to_json : ?with_labels:bool -> t -> Json.t
val strip_labels : t -> t

val flamegraph_lines : t -> string list
(** Collapsed-stack lines ([site;site;... words]) for flamegraph.pl or
    speedscope; label characters that would break the syntax are
    flattened to [_]. Lines sum exactly to [peak]. *)

type delta = {
  dsite : int;
  dphase : phase;
  words_a : int;
  words_b : int;
  dlabel : string;
}

val diff : t -> t -> delta list
(** Per-(site, phase) word counts under two censuses of the same
    program, largest absolute delta first — the [--diff I_tail
    I_stack] view that surfaces where a variant parks its extra
    words. *)

val humanize_words : int -> string
(** ["482 words"], ["1.2k words"], ["3.4M words"]. *)

val percent_delta : from:int -> to_:int -> float
(** Relative growth in percent; [infinity] when growing from zero. *)
