module Datum = Tailspace_sexp.Datum
module Ast = Tailspace_ast.Ast
open Ast

type error = { message : string; form : Datum.t option }

let pp_error ppf e =
  match e.form with
  | None -> Format.fprintf ppf "expand error: %s" e.message
  | Some d -> Format.fprintf ppf "expand error: %s in %a" e.message Datum.pp d

exception Expand_error of error

let err ?form message = raise (Expand_error { message; form })

(* Atomic: machine creation expands the prelude, and parallel sweeps
   create machines on worker domains. Generated names need only be
   fresh, not sequential across domains. *)
let gensym_counter = Atomic.make 0
let reset_gensym () = Atomic.set gensym_counter 0

let gensym prefix =
  let n = Atomic.fetch_and_add gensym_counter 1 in
  Printf.sprintf "%%%s%d" prefix n

let unspecified = Quote C_unspecified

(* (begin e1 e2 ...) as the let-style encoding ((lambda (t) rest) e1).
   The paper's core syntax has no sequencing form; this encoding is the
   one under which the Theorem 25 separators behave as the paper says:
   the value of [e1] is passed through an argument-evaluation
   continuation, which is what retains (I_tail) or drops (I_evlis) the
   environment. *)
let rec seq exprs =
  match exprs with
  | [] -> unspecified
  | [ e ] -> e
  | e :: rest -> Call (lambda [ gensym "seq" ] (seq rest), [ e ])

let quote_const_of_atom d =
  match d with
  | Datum.Bool b -> Some (C_bool b)
  | Datum.Int z -> Some (C_int z)
  | Datum.Str s -> Some (C_str s)
  | Datum.Char c -> Some (C_char c)
  | Datum.Sym "#!unspecified" -> Some C_unspecified
  | Datum.Sym "#!undefined" -> Some C_undefined
  | Datum.Sym s -> Some (C_sym s)
  | Datum.Nil -> Some C_nil
  | Datum.Pair _ | Datum.Vector _ -> None

(* §12: compound constants are replaced by calls that allocate fresh
   structure at run time. *)
let rec expand_quote d =
  match d with
  | Datum.Pair (a, b) ->
      Call (Var "cons", [ expand_quote a; expand_quote b ])
  | Datum.Vector elts ->
      Call (Var "vector", List.map expand_quote (Array.to_list elts))
  | atom -> (
      match quote_const_of_atom atom with
      | Some c -> Quote c
      | None -> assert false)

let formals_of_datum d =
  let rec go acc d =
    match d with
    | Datum.Nil -> (List.rev acc, None)
    | Datum.Sym r -> (List.rev acc, Some r)
    | Datum.Pair (Datum.Sym p, rest) -> go (p :: acc) rest
    | _ -> err ~form:d "malformed formals"
  in
  go [] d

let dlist d ~what =
  match Datum.to_list d with
  | Some l -> l
  | None -> err ~form:d ("malformed " ^ what ^ ": expected a proper list")

(* Parse a [define] form into (name, rhs-datum-as-expression-thunk).
   Returns the name and a function producing the expanded right-hand
   side, so recursion through [expand] stays in one place. *)
let parse_define form rest =
  match rest with
  | [ Datum.Sym name ] -> (name, `Value (Datum.Sym "#!unspecified"))
  | [ Datum.Sym name; rhs ] -> (name, `Value rhs)
  | Datum.Pair (Datum.Sym name, formals) :: body when body <> [] ->
      (name, `Procedure (formals, body))
  | _ -> err ~form "malformed define"

let rec expand d =
  match d with
  | Datum.Bool _ | Datum.Int _ | Datum.Str _ | Datum.Char _ ->
      Quote (Option.get (quote_const_of_atom d))
  | Datum.Sym ("#!unspecified" | "#!undefined") ->
      (* self-evaluating: these denote values, not variables *)
      Quote (Option.get (quote_const_of_atom d))
  | Datum.Sym s -> Var s
  | Datum.Nil -> err ~form:d "empty application ()"
  | Datum.Vector _ -> err ~form:d "vector literals must be quoted"
  | Datum.Pair (Datum.Sym kw, rest) when is_keyword kw ->
      expand_keyword d kw rest
  | Datum.Pair _ ->
      let forms = dlist d ~what:"application" in
      (match List.map expand forms with
      | f :: args -> Call (f, args)
      | [] -> assert false)

and is_keyword = function
  | "quote" | "quasiquote" | "unquote" | "unquote-splicing" | "lambda" | "if"
  | "set!" | "begin" | "let" | "let*" | "letrec" | "letrec*" | "cond" | "case"
  | "and" | "or" | "when" | "unless" | "do" | "define" | "delay" ->
      true
  | _ -> false

and expand_keyword form kw rest_datum =
  let rest = dlist rest_datum ~what:kw in
  match (kw, rest) with
  | "quote", [ d ] -> expand_quote d
  | "quote", _ -> err ~form "quote takes exactly one datum"
  | "quasiquote", [ d ] -> expand_quasiquote d 1
  | "quasiquote", _ -> err ~form "quasiquote takes exactly one datum"
  | ("unquote" | "unquote-splicing"), _ ->
      err ~form "unquote outside quasiquote"
  | "lambda", formals :: body when body <> [] ->
      let params, rest_param = formals_of_datum formals in
      Lambda { params; rest = rest_param; body = expand_body form body }
  | "lambda", _ -> err ~form "malformed lambda"
  | "if", [ c; t ] -> If (expand c, expand t, unspecified)
  | "if", [ c; t; e ] -> If (expand c, expand t, expand e)
  | "if", _ -> err ~form "malformed if"
  | "set!", [ Datum.Sym x; e ] -> Set (x, expand e)
  | "set!", _ -> err ~form "malformed set!"
  | "begin", exprs -> seq (List.map expand exprs)
  | "let", Datum.Sym loop_name :: bindings :: body when body <> [] ->
      expand_named_let form loop_name bindings body
  | "let", bindings :: body when body <> [] ->
      let names, inits = expand_bindings form bindings in
      Call (lambda names (expand_body form body), inits)
  | "let", _ -> err ~form "malformed let"
  | "let*", bindings :: body when body <> [] ->
      let rec nest bs =
        match bs with
        | [] -> expand_body form body
        | (name, init) :: more -> Call (lambda [ name ] (nest more), [ init ])
      in
      let names, inits = expand_bindings form bindings in
      if names = [] then expand_body form body
      else nest (List.combine names inits)
  | "let*", _ -> err ~form "malformed let*"
  | ("letrec" | "letrec*"), bindings :: body when body <> [] ->
      let names, inits = expand_bindings form bindings in
      expand_letrec names inits (expand_body form body)
  | ("letrec" | "letrec*"), _ -> err ~form "malformed letrec"
  | "cond", clauses -> expand_cond form clauses
  | "case", key :: clauses -> expand_case form key clauses
  | "case", [] -> err ~form "malformed case"
  | "and", [] -> Quote (C_bool true)
  | "and", [ e ] -> expand e
  | "and", e :: more ->
      If (expand e, expand_keyword form "and" (Datum.list more), Quote (C_bool false))
  | "or", [] -> Quote (C_bool false)
  | "or", [ e ] -> expand e
  | "or", e :: more ->
      let t = gensym "or" in
      Call
        ( lambda [ t ]
            (If (Var t, Var t, expand_keyword form "or" (Datum.list more))),
          [ expand e ] )
  | "when", c :: body when body <> [] ->
      If (expand c, seq (List.map expand body), unspecified)
  | "when", _ -> err ~form "malformed when"
  | "unless", c :: body when body <> [] ->
      If (expand c, unspecified, seq (List.map expand body))
  | "unless", _ -> err ~form "malformed unless"
  | "do", spec :: test_clause :: commands -> expand_do form spec test_clause commands
  | "do", _ -> err ~form "malformed do"
  | "delay", [ e ] ->
      (* R5RS promises: a memoizing thunk built by the prelude's
         %make-promise; (force p) just invokes it *)
      Call (Var "%make-promise", [ lambda [] (expand e) ])
  | "delay", _ -> err ~form "delay takes exactly one expression"
  | "define", _ -> err ~form "define is only allowed at top level or at the head of a body"
  | _ -> err ~form ("malformed " ^ kw)

and expand_bindings form bindings =
  let bs = dlist bindings ~what:"bindings" in
  let parse b =
    match Datum.to_list b with
    | Some [ Datum.Sym name; init ] -> (name, expand init)
    | _ -> err ~form "malformed binding"
  in
  List.split (List.map parse bs)

(* letrec as ((lambda (x1 ... xn) (set! x1 e1) ... body) #!undefined ...):
   locations start out UNDEFINED, so a premature reference is stuck,
   matching the machine's variable-reference side condition. *)
and expand_letrec names inits body =
  if names = [] then body
  else
    let sets = List.map2 (fun n i -> Set (n, i)) names inits in
    Call
      ( lambda names (seq (sets @ [ body ])),
        List.map (fun _ -> Quote C_undefined) names )

and expand_named_let form loop_name bindings body =
  let names, inits = expand_bindings form bindings in
  let proc = lambda names (expand_body form body) in
  expand_letrec [ loop_name ] [ proc ] (Call (Var loop_name, inits))

and expand_cond form clauses =
  match clauses with
  | [] -> unspecified
  | clause :: more -> (
      match dlist clause ~what:"cond clause" with
      | [ Datum.Sym "else" ] -> err ~form "empty else clause"
      | Datum.Sym "else" :: body ->
          if more <> [] then err ~form "else must be the last cond clause";
          seq (List.map expand body)
      | [ test ] ->
          let t = gensym "cond" in
          Call
            ( lambda [ t ] (If (Var t, Var t, expand_cond form more)),
              [ expand test ] )
      | [ test; Datum.Sym "=>"; receiver ] ->
          let t = gensym "cond" in
          Call
            ( lambda [ t ]
                (If
                   ( Var t,
                     Call (expand receiver, [ Var t ]),
                     expand_cond form more )),
              [ expand test ] )
      | test :: body ->
          If (expand test, seq (List.map expand body), expand_cond form more)
      | [] -> err ~form "empty cond clause")

and expand_case form key clauses =
  let k = gensym "case" in
  let rec arms clauses =
    match clauses with
    | [] -> unspecified
    | clause :: more -> (
        match dlist clause ~what:"case clause" with
        | Datum.Sym "else" :: body when body <> [] ->
            if more <> [] then err ~form "else must be the last case clause";
            seq (List.map expand body)
        | datums :: body when body <> [] ->
            let ds = dlist datums ~what:"case datums" in
            If
              ( Call (Var "memv", [ Var k; expand_quote (Datum.list ds) ]),
                seq (List.map expand body),
                arms more )
        | _ -> err ~form "malformed case clause")
  in
  Call (lambda [ k ] (arms clauses), [ expand key ])

and expand_do form spec test_clause commands =
  let specs = dlist spec ~what:"do bindings" in
  let parse_spec s =
    match Datum.to_list s with
    | Some [ Datum.Sym v; init ] -> (v, expand init, Var v)
    | Some [ Datum.Sym v; init; step ] -> (v, expand init, expand step)
    | _ -> err ~form "malformed do binding"
  in
  let triples = List.map parse_spec specs in
  let vars = List.map (fun (v, _, _) -> v) triples in
  let inits = List.map (fun (_, i, _) -> i) triples in
  let steps = List.map (fun (_, _, s) -> s) triples in
  let test, result =
    match dlist test_clause ~what:"do test" with
    | test :: result -> (expand test, seq (List.map expand result))
    | [] -> err ~form "malformed do test clause"
  in
  let loop = gensym "do" in
  let body =
    If
      ( test,
        result,
        seq (List.map expand commands @ [ Call (Var loop, steps) ]) )
  in
  expand_letrec [ loop ] [ lambda vars body ] (Call (Var loop, inits))

and expand_quasiquote d depth =
  let qq d = expand_quasiquote d depth in
  match d with
  | Datum.Pair (Datum.Sym "unquote", Datum.Pair (e, Datum.Nil)) ->
      if depth = 1 then expand e
      else
        Call
          ( Var "list",
            [ Quote (C_sym "unquote"); expand_quasiquote e (depth - 1) ] )
  | Datum.Pair (Datum.Sym "quasiquote", Datum.Pair (e, Datum.Nil)) ->
      Call
        ( Var "list",
          [ Quote (C_sym "quasiquote"); expand_quasiquote e (depth + 1) ] )
  | Datum.Pair
      (Datum.Pair (Datum.Sym "unquote-splicing", Datum.Pair (e, Datum.Nil)), rest)
    when depth = 1 ->
      Call (Var "append", [ expand e; qq rest ])
  | Datum.Pair (a, rest) -> Call (Var "cons", [ qq a; qq rest ])
  | Datum.Vector elts ->
      Call (Var "vector", List.map qq (Array.to_list elts))
  | atom -> (
      match quote_const_of_atom atom with
      | Some c -> Quote c
      | None -> assert false)

(* A body is zero or more leading internal defines followed by at least
   one expression; the defines become a letrec* (R5RS §5.2.2). *)
and expand_body form body =
  let rec split defines forms =
    match forms with
    | Datum.Pair (Datum.Sym "define", rest) :: more ->
        let d = List.hd forms in
        let name, rhs = parse_define d (dlist rest ~what:"define") in
        split ((name, rhs) :: defines) more
    | _ -> (List.rev defines, forms)
  in
  let defines, exprs = split [] body in
  if exprs = [] then err ~form "body has no expression after its definitions";
  let expand_rhs = function
    | `Value d -> expand d
    | `Procedure (formals, pbody) ->
        let params, rest_param = formals_of_datum formals in
        Lambda { params; rest = rest_param; body = expand_body form pbody }
  in
  let names = List.map fst defines in
  let inits = List.map (fun (_, rhs) -> expand_rhs rhs) defines in
  expand_letrec names inits (seq (List.map expand exprs))

let expression = expand

let top_level_define d =
  match d with
  | Datum.Pair (Datum.Sym "define", rest) ->
      let name, rhs = parse_define d (dlist rest ~what:"define") in
      let expr =
        match rhs with
        | `Value v -> expand v
        | `Procedure (formals, pbody) ->
            let params, rest_param = formals_of_datum formals in
            Lambda { params; rest = rest_param; body = expand_body d pbody }
      in
      Some (name, expr)
  | _ -> None

let program forms =
  if forms = [] then err "empty program";
  let define_names =
    List.filter_map
      (function
        | Datum.Pair (Datum.Sym "define", Datum.Pair (Datum.Sym n, _)) -> Some n
        | Datum.Pair
            (Datum.Sym "define", Datum.Pair (Datum.Pair (Datum.Sym n, _), _)) ->
            Some n
        | _ -> None)
      forms
  in
  let body_forms =
    List.filter
      (function Datum.Pair (Datum.Sym "define", _) -> false | _ -> true)
      forms
  in
  let body =
    if body_forms <> [] then body_forms
    else
      match List.rev define_names with
      | last :: _ -> [ Datum.Sym last ]
      | [] -> err "program has no expression and no definitions"
  in
  let define_forms =
    List.filter
      (function Datum.Pair (Datum.Sym "define", _) -> true | _ -> false)
      forms
  in
  expand_body (Datum.list forms) (define_forms @ body)

let program_of_string s = program (Tailspace_sexp.Reader.parse_all_exn s)
let expression_of_string s = expand (Tailspace_sexp.Reader.parse_one_exn s)
