(** Structured tracing, metrics, and space profiling for the reference
    machines and engines.

    The paper's claims are measurements — peak space per configuration
    (Definition 23), GC behavior (§8), asymptotic growth (Theorems
    25/26) — so the instruments are part of the artifact. This module is
    a zero-dependency event/metrics library threaded through the core
    machines, the collector, both engines, the harness, and the CLI.

    A {!t} always collects cheap counters and high-water marks; event
    streaming ({!sink}), the configuration ring buffer, and the
    space-over-time {!Profile} are opt-in so that a telemetry-less run
    pays nothing and a counters-only run pays a few integer updates per
    step. *)

(** {1 JSON}

    A small self-contained JSON codec: the emitters must not pull in a
    dependency, and the test suite and CI smoke checks need to parse
    what they emit. *)

module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string
  (** Compact rendering; strings are escaped per RFC 8259. *)

  val of_string : string -> (t, string) result
  (** Strict parser for the subset {!to_string} emits (all of JSON
      except exponent-heavy float edge cases round-trip). *)

  val member : string -> t -> t option
  (** Field lookup in an [Obj]; [None] otherwise. *)
end

(** {1 Events} *)

(** What kind of value an allocation created. The classification is a
    telemetry-local enum so this library stays below [Tailspace_core];
    the machines map their value constructors onto it. *)
type alloc_kind =
  | K_atom  (** booleans, symbols, characters, nil, unspecified, ... *)
  | K_int
  | K_string
  | K_pair
  | K_vector
  | K_closure
  | K_escape  (** [call/cc] escape tags *)

val all_alloc_kinds : alloc_kind list
val alloc_kind_name : alloc_kind -> string
val alloc_kind_of_name : string -> alloc_kind option

(** Why a collection ran. *)
type gc_reason =
  | Gc_peak  (** tracked space exceeded the running peak (lazy schedule) *)
  | Gc_linked  (** pre-observation collection for the linked model *)
  | Gc_final  (** the final configuration's collection *)
  | Gc_forced  (** a fault-injection plan forced this collection *)
  | Gc_budget  (** tracked space crossed the run's space budget *)

val gc_reason_name : gc_reason -> string

type event =
  | Step of { step : int; space : int; cont_depth : int; store_cells : int }
      (** one machine transition, observed after any collection *)
  | Cont_push of { step : int; depth : int }
      (** continuation depth grew to [depth] *)
  | Cont_pop of { step : int; depth : int }
      (** continuation depth shrank to [depth] *)
  | Alloc of { step : int; kind : alloc_kind; words : int }
      (** a store allocation of [words] flat words (cell + contents) *)
  | Gc_run of { step : int; reason : gc_reason; live : int; freed : int }
      (** a collection that freed [freed] locations, leaving [live] *)
  | Stuck of { step : int; message : string }

val event_to_json : event -> Json.t

type sink = event -> unit
(** Event consumers. A sink sees every event of the categories above the
    moment it is recorded; it must not raise. *)

val fanout : sink list -> sink

val jsonl_sink : (string -> unit) -> sink
(** [jsonl_sink write] renders each event as one JSON line (no trailing
    newline; [write] adds its own framing). *)

(** {1 Space-over-time profiles} *)

module Profile : sig
  (** A bounded recorder of (step, space) samples. Sampling keeps every
      [stride]-th step; when [max_samples] is reached the recorder drops
      every other retained sample and doubles the stride, so memory is
      bounded on multi-million-step runs while the profile keeps full
      horizontal coverage. *)

  type t

  val create : ?stride:int -> ?max_samples:int -> unit -> t
  (** Defaults: [stride = 1], [max_samples = 65536]. *)

  val sample : t -> step:int -> space:int -> unit

  val stride : t -> int
  (** The current (possibly doubled) stride. *)

  val samples : t -> (int * int) list
  (** The retained (step, space) pairs, in step order. *)

  val to_csv : t -> string
  (** ["step,space\n" ^ one line per sample]. *)
end

(** {1 Telemetry} *)

type t

val create :
  ?sink:sink ->
  ?config_sink:(int -> string -> unit) ->
  ?ring:int ->
  ?profile:Profile.t ->
  unit ->
  t
(** [ring] is the capacity of the last-K-configurations buffer
    (default [0] = off). [config_sink] receives every (step,
    configuration description) pair the moment it is recorded — the
    streaming analogue of the ring buffer, and the replacement for the
    machines' deprecated [?trace] callback. *)

val has_sink : t -> bool

(** {2 Recording} (called by the machines; cheap) *)

val record_step :
  t -> step:int -> space:int -> cont_depth:int -> store_cells:int -> unit
(** Updates the step counter, peak space, store high-water mark, and the
    continuation-depth high-water mark; derives [Cont_push]/[Cont_pop]
    events from the depth delta; feeds the profile; emits [Step]. *)

val record_alloc : t -> step:int -> kind:alloc_kind -> words:int -> unit
val record_gc : t -> step:int -> reason:gc_reason -> live:int -> freed:int -> unit
val record_stuck : t -> step:int -> message:string -> unit

val wants_config : t -> bool
(** Whether {!record_config} would observe anything (ring enabled or a
    [config_sink] installed) — lets the machine skip rendering
    configuration descriptions otherwise. *)

val record_config : t -> step:int -> string -> unit
(** Feeds the [config_sink] (if any) and pushes a one-line configuration
    description into the ring buffer. *)

val note_steps : t -> int -> unit
(** Force the step counter (the machines call this once at the end so the
    summary agrees exactly with the result's step count). *)

val note_peak : t -> int -> unit
val note_linked : t -> int -> unit
val note_peak_linked : t -> int option
val note_log : t -> int -> unit
val note_peak_log : t -> int option

(** {2 Reading} *)

val steps : t -> int
val gc_runs : t -> int
val alloc_count : t -> alloc_kind -> int
val max_cont_depth : t -> int
val peak_space : t -> int

val ring_contents : t -> (int * string) list
(** The retained (step, configuration description) pairs, oldest first;
    at most [ring] of them. This is the trace dumped when a run gets
    stuck. *)

(** {1 Run summaries} *)

type summary = {
  steps : int;
  gc_runs : int;
  gc_freed : int;  (** total locations freed across all collections *)
  allocations : (alloc_kind * int) list;  (** nonzero kinds, fixed order *)
  alloc_words : int;
  max_cont_depth : int;
  cont_pushes : int;
  cont_pops : int;
  store_hwm : int;  (** store-size high-water mark, in cells *)
  peak_space : int;  (** flat model *)
  peak_linked : int option;  (** linked model, when measured *)
  peak_log : int option;  (** log model (bit-units), when measured *)
  stuck : string option;
}

val summary : t -> summary

val merge_summaries : summary list -> summary
(** Combine the summaries of independent runs (e.g. one per sweep point,
    each measured on its own worker) into a fleet view: counters
    ([steps], [gc_runs], [gc_freed], per-kind [allocations],
    [alloc_words], [cont_pushes], [cont_pops]) sum; high-water marks
    ([max_cont_depth], [store_hwm], [peak_space], [peak_linked],
    [peak_log]) take the maximum, with the optional peaks [None] only when unmeasured
    everywhere; [stuck] keeps the first [Some] in list order. The empty
    list merges to the all-zero summary. *)

val summary_to_json : summary -> Json.t
val summary_of_json : Json.t -> (summary, string) result
(** Inverse of {!summary_to_json}: [summary_of_json (summary_to_json s)]
    is [Ok s]. *)

(** {1 Named counter groups}

    A thread-safe bag of named integer counters and gauges — the
    evaluation service's stats surface (requests admitted/rejected per
    tenant, responses by outcome, queue depth). Kept here so the server
    counters render through the same JSON codec as everything else. *)

module Counters : sig
  type t

  val create : unit -> t

  val incr : ?by:int -> t -> string -> unit
  (** Add [by] (default 1) to the named counter, creating it at 0. *)

  val set : t -> string -> int -> unit
  (** Gauge-style overwrite (e.g. current queue depth). *)

  val get : t -> string -> int
  (** Current value; 0 for a counter never touched. *)

  val snapshot : t -> (string * int) list
  (** A consistent copy, sorted by name. *)

  val to_json : t -> Json.t
  (** [snapshot] as one JSON object. *)
end
