(* ------------------------------------------------------------------ *)
(* JSON                                                                *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  let escape buf s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s

  let to_string j =
    let buf = Buffer.create 256 in
    let rec emit = function
      | Null -> Buffer.add_string buf "null"
      | Bool true -> Buffer.add_string buf "true"
      | Bool false -> Buffer.add_string buf "false"
      | Int i -> Buffer.add_string buf (string_of_int i)
      | Float f ->
          if Float.is_integer f && Float.abs f < 1e15 then
            Buffer.add_string buf (Printf.sprintf "%.1f" f)
          else Buffer.add_string buf (Printf.sprintf "%.17g" f)
      | Str s ->
          Buffer.add_char buf '"';
          escape buf s;
          Buffer.add_char buf '"'
      | List items ->
          Buffer.add_char buf '[';
          List.iteri
            (fun i item ->
              if i > 0 then Buffer.add_char buf ',';
              emit item)
            items;
          Buffer.add_char buf ']'
      | Obj fields ->
          Buffer.add_char buf '{';
          List.iteri
            (fun i (k, v) ->
              if i > 0 then Buffer.add_char buf ',';
              Buffer.add_char buf '"';
              escape buf k;
              Buffer.add_string buf "\":";
              emit v)
            fields;
          Buffer.add_char buf '}'
    in
    emit j;
    Buffer.contents buf

  exception Parse of string

  let of_string s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Parse (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          advance ();
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected %C" c)
    in
    let literal word value =
      let l = String.length word in
      if !pos + l <= n && String.sub s !pos l = word then begin
        pos := !pos + l;
        value
      end
      else fail (Printf.sprintf "expected %s" word)
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> advance ()
        | Some '\\' -> (
            advance ();
            match peek () with
            | Some '"' -> Buffer.add_char buf '"'; advance (); go ()
            | Some '\\' -> Buffer.add_char buf '\\'; advance (); go ()
            | Some '/' -> Buffer.add_char buf '/'; advance (); go ()
            | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
            | Some 'r' -> Buffer.add_char buf '\r'; advance (); go ()
            | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
            | Some 'b' -> Buffer.add_char buf '\b'; advance (); go ()
            | Some 'f' -> Buffer.add_char buf '\012'; advance (); go ()
            | Some 'u' ->
                advance ();
                if !pos + 4 > n then fail "truncated \\u escape";
                let hex = String.sub s !pos 4 in
                pos := !pos + 4;
                let code =
                  match int_of_string_opt ("0x" ^ hex) with
                  | Some c -> c
                  | None -> fail "bad \\u escape"
                in
                (* decode as UTF-8; the emitter only produces escapes
                   below 0x20, but accept the BMP for robustness *)
                if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
                else begin
                  Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                  Buffer.add_char buf
                    (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end;
                go ()
            | _ -> fail "bad escape")
        | Some c ->
            Buffer.add_char buf c;
            advance ();
            go ()
      in
      go ();
      Buffer.contents buf
    in
    let parse_number () =
      let start = !pos in
      let is_num_char = function
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while (match peek () with Some c -> is_num_char c | None -> false) do
        advance ()
      done;
      let text = String.sub s start (!pos - start) in
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> fail "bad number")
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some 'n' -> literal "null" Null
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some '"' -> Str (parse_string ())
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then begin
            advance ();
            List []
          end
          else begin
            let rec items acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  items (v :: acc)
              | Some ']' ->
                  advance ();
                  List.rev (v :: acc)
              | _ -> fail "expected ',' or ']'"
            in
            List (items [])
          end
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then begin
            advance ();
            Obj []
          end
          else begin
            let field () =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              (k, v)
            in
            let rec fields acc =
              let kv = field () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  fields (kv :: acc)
              | Some '}' ->
                  advance ();
                  List.rev (kv :: acc)
              | _ -> fail "expected ',' or '}'"
            in
            Obj (fields [])
          end
      | Some ('-' | '0' .. '9') -> parse_number ()
      | Some c -> fail (Printf.sprintf "unexpected %C" c)
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then fail "trailing garbage";
      v
    with
    | v -> Ok v
    | exception Parse m -> Error m

  let member key = function
    | Obj fields -> List.assoc_opt key fields
    | _ -> None
end

(* ------------------------------------------------------------------ *)
(* Events                                                              *)

type alloc_kind =
  | K_atom
  | K_int
  | K_string
  | K_pair
  | K_vector
  | K_closure
  | K_escape

let all_alloc_kinds =
  [ K_atom; K_int; K_string; K_pair; K_vector; K_closure; K_escape ]

let kind_index = function
  | K_atom -> 0
  | K_int -> 1
  | K_string -> 2
  | K_pair -> 3
  | K_vector -> 4
  | K_closure -> 5
  | K_escape -> 6

let n_kinds = 7

let alloc_kind_name = function
  | K_atom -> "atom"
  | K_int -> "int"
  | K_string -> "string"
  | K_pair -> "pair"
  | K_vector -> "vector"
  | K_closure -> "closure"
  | K_escape -> "escape"

let alloc_kind_of_name = function
  | "atom" -> Some K_atom
  | "int" -> Some K_int
  | "string" -> Some K_string
  | "pair" -> Some K_pair
  | "vector" -> Some K_vector
  | "closure" -> Some K_closure
  | "escape" -> Some K_escape
  | _ -> None

type gc_reason = Gc_peak | Gc_linked | Gc_final | Gc_forced | Gc_budget

let gc_reason_name = function
  | Gc_peak -> "peak-exceeded"
  | Gc_linked -> "linked-measure"
  | Gc_final -> "final"
  | Gc_forced -> "fault-injected"
  | Gc_budget -> "space-budget"

type event =
  | Step of { step : int; space : int; cont_depth : int; store_cells : int }
  | Cont_push of { step : int; depth : int }
  | Cont_pop of { step : int; depth : int }
  | Alloc of { step : int; kind : alloc_kind; words : int }
  | Gc_run of { step : int; reason : gc_reason; live : int; freed : int }
  | Stuck of { step : int; message : string }

let event_to_json event : Json.t =
  match event with
  | Step { step; space; cont_depth; store_cells } ->
      Obj
        [
          ("ev", Str "step");
          ("step", Int step);
          ("space", Int space);
          ("cont_depth", Int cont_depth);
          ("store_cells", Int store_cells);
        ]
  | Cont_push { step; depth } ->
      Obj [ ("ev", Str "push"); ("step", Int step); ("depth", Int depth) ]
  | Cont_pop { step; depth } ->
      Obj [ ("ev", Str "pop"); ("step", Int step); ("depth", Int depth) ]
  | Alloc { step; kind; words } ->
      Obj
        [
          ("ev", Str "alloc");
          ("step", Int step);
          ("kind", Str (alloc_kind_name kind));
          ("words", Int words);
        ]
  | Gc_run { step; reason; live; freed } ->
      Obj
        [
          ("ev", Str "gc");
          ("step", Int step);
          ("reason", Str (gc_reason_name reason));
          ("live", Int live);
          ("freed", Int freed);
        ]
  | Stuck { step; message } ->
      Obj [ ("ev", Str "stuck"); ("step", Int step); ("message", Str message) ]

type sink = event -> unit

let fanout sinks event = List.iter (fun sink -> sink event) sinks
let jsonl_sink write event = write (Json.to_string (event_to_json event))

(* ------------------------------------------------------------------ *)
(* Profiles                                                            *)

module Profile = struct
  type t = {
    mutable stride : int;
    max_samples : int;
    mutable steps : int array;
    mutable spaces : int array;
    mutable len : int;
  }

  let create ?(stride = 1) ?(max_samples = 65536) () =
    let stride = Stdlib.max 1 stride in
    let max_samples = Stdlib.max 2 max_samples in
    let cap = Stdlib.min max_samples 1024 in
    {
      stride;
      max_samples;
      steps = Array.make cap 0;
      spaces = Array.make cap 0;
      len = 0;
    }

  let push p step space =
    if p.len = Array.length p.steps then begin
      let cap = Stdlib.min p.max_samples (2 * p.len) in
      let grow a = Array.init cap (fun i -> if i < p.len then a.(i) else 0) in
      p.steps <- grow p.steps;
      p.spaces <- grow p.spaces
    end;
    p.steps.(p.len) <- step;
    p.spaces.(p.len) <- space;
    p.len <- p.len + 1

  let compact p =
    (* Double the stride and retain exactly the samples aligned with the
       new stride (dropping duplicate steps), so [samples] satisfies
       step ≡ 0 (mod stride) however many compactions have run. Keeping
       "every other sample" instead would leave retained steps
       misaligned once strides and sampled steps drift apart. *)
    let stride = 2 * p.stride in
    let kept = ref 0 in
    for i = 0 to p.len - 1 do
      if
        p.steps.(i) mod stride = 0
        && (!kept = 0 || p.steps.(!kept - 1) <> p.steps.(i))
      then begin
        p.steps.(!kept) <- p.steps.(i);
        p.spaces.(!kept) <- p.spaces.(i);
        incr kept
      end
    done;
    p.len <- !kept;
    p.stride <- stride

  let sample p ~step ~space =
    if step mod p.stride = 0 then begin
      while p.len >= p.max_samples do
        compact p
      done;
      (* The compaction loop may have coarsened the stride past this
         step; the triggering sample is kept only if still aligned. *)
      if step mod p.stride = 0 then push p step space
    end

  let stride p = p.stride
  let samples p = List.init p.len (fun i -> (p.steps.(i), p.spaces.(i)))

  let to_csv p =
    let buf = Buffer.create (16 * (p.len + 1)) in
    Buffer.add_string buf "step,space\n";
    for i = 0 to p.len - 1 do
      Buffer.add_string buf (string_of_int p.steps.(i));
      Buffer.add_char buf ',';
      Buffer.add_string buf (string_of_int p.spaces.(i));
      Buffer.add_char buf '\n'
    done;
    Buffer.contents buf
end

(* ------------------------------------------------------------------ *)
(* Telemetry                                                           *)

type t = {
  mutable steps : int;
  mutable gc_runs : int;
  mutable gc_freed : int;
  allocs : int array;  (* count per kind *)
  mutable alloc_words : int;
  mutable last_depth : int;
  mutable max_cont_depth : int;
  mutable cont_pushes : int;
  mutable cont_pops : int;
  mutable store_hwm : int;
  mutable peak_space : int;
  mutable peak_linked : int;  (* -1 = unmeasured *)
  mutable peak_log : int;  (* -1 = unmeasured *)
  mutable stuck : string option;
  sink : sink option;
  config_sink : (int -> string -> unit) option;
  ring : (int * string) array;  (* capacity 0 = disabled *)
  mutable ring_len : int;
  mutable ring_pos : int;
  profile : Profile.t option;
}

let create ?sink ?config_sink ?(ring = 0) ?profile () =
  {
    steps = 0;
    gc_runs = 0;
    gc_freed = 0;
    allocs = Array.make n_kinds 0;
    alloc_words = 0;
    last_depth = 0;
    max_cont_depth = 0;
    cont_pushes = 0;
    cont_pops = 0;
    store_hwm = 0;
    peak_space = 0;
    peak_linked = -1;
    peak_log = -1;
    stuck = None;
    sink;
    config_sink;
    ring = Array.make (Stdlib.max 0 ring) (0, "");
    ring_len = 0;
    ring_pos = 0;
    profile;
  }

let has_sink t = Option.is_some t.sink
let emit t event = match t.sink with Some sink -> sink event | None -> ()

let record_step t ~step ~space ~cont_depth ~store_cells =
  if step > t.steps then t.steps <- step;
  if space > t.peak_space then t.peak_space <- space;
  if store_cells > t.store_hwm then t.store_hwm <- store_cells;
  if cont_depth > t.max_cont_depth then t.max_cont_depth <- cont_depth;
  let d0 = t.last_depth in
  if cont_depth <> d0 then begin
    if cont_depth > d0 then begin
      t.cont_pushes <- t.cont_pushes + (cont_depth - d0);
      emit t (Cont_push { step; depth = cont_depth })
    end
    else begin
      t.cont_pops <- t.cont_pops + (d0 - cont_depth);
      emit t (Cont_pop { step; depth = cont_depth })
    end;
    t.last_depth <- cont_depth
  end;
  (match t.profile with
  | Some p -> Profile.sample p ~step ~space
  | None -> ());
  emit t (Step { step; space; cont_depth; store_cells })

let record_alloc t ~step ~kind ~words =
  t.allocs.(kind_index kind) <- t.allocs.(kind_index kind) + 1;
  t.alloc_words <- t.alloc_words + words;
  emit t (Alloc { step; kind; words })

let record_gc t ~step ~reason ~live ~freed =
  t.gc_runs <- t.gc_runs + 1;
  t.gc_freed <- t.gc_freed + freed;
  emit t (Gc_run { step; reason; live; freed })

let record_stuck t ~step ~message =
  t.stuck <- Some message;
  emit t (Stuck { step; message })

let wants_config t =
  Array.length t.ring > 0 || Option.is_some t.config_sink

let record_config t ~step description =
  (match t.config_sink with Some f -> f step description | None -> ());
  let cap = Array.length t.ring in
  if cap > 0 then begin
    t.ring.(t.ring_pos) <- (step, description);
    t.ring_pos <- (t.ring_pos + 1) mod cap;
    if t.ring_len < cap then t.ring_len <- t.ring_len + 1
  end

let note_steps t steps = t.steps <- steps
let note_peak t space = if space > t.peak_space then t.peak_space <- space

let note_linked t space =
  if space > t.peak_linked then t.peak_linked <- space

let note_peak_linked t = if t.peak_linked < 0 then None else Some t.peak_linked
let note_log t space = if space > t.peak_log then t.peak_log <- space
let note_peak_log t = if t.peak_log < 0 then None else Some t.peak_log
let steps t = t.steps
let gc_runs t = t.gc_runs
let alloc_count t kind = t.allocs.(kind_index kind)
let max_cont_depth t = t.max_cont_depth
let peak_space t = t.peak_space

let ring_contents t =
  let cap = Array.length t.ring in
  List.init t.ring_len (fun i ->
      t.ring.((t.ring_pos - t.ring_len + i + (2 * cap)) mod cap))

(* ------------------------------------------------------------------ *)
(* Summaries                                                           *)

type summary = {
  steps : int;
  gc_runs : int;
  gc_freed : int;
  allocations : (alloc_kind * int) list;
  alloc_words : int;
  max_cont_depth : int;
  cont_pushes : int;
  cont_pops : int;
  store_hwm : int;
  peak_space : int;
  peak_linked : int option;
  peak_log : int option;
  stuck : string option;
}

let summary (t : t) : summary =
  {
    steps = t.steps;
    gc_runs = t.gc_runs;
    gc_freed = t.gc_freed;
    allocations =
      List.filter_map
        (fun kind ->
          let c = t.allocs.(kind_index kind) in
          if c > 0 then Some (kind, c) else None)
        all_alloc_kinds;
    alloc_words = t.alloc_words;
    max_cont_depth = t.max_cont_depth;
    cont_pushes = t.cont_pushes;
    cont_pops = t.cont_pops;
    store_hwm = t.store_hwm;
    peak_space = t.peak_space;
    peak_linked = note_peak_linked t;
    peak_log = note_peak_log t;
    stuck = t.stuck;
  }

let empty_summary : summary =
  {
    steps = 0;
    gc_runs = 0;
    gc_freed = 0;
    allocations = [];
    alloc_words = 0;
    max_cont_depth = 0;
    cont_pushes = 0;
    cont_pops = 0;
    store_hwm = 0;
    peak_space = 0;
    peak_linked = None;
    peak_log = None;
    stuck = None;
  }

let merge_summaries summaries =
  (* Fleet view over independent runs: counters add up, high-water marks
     take the worst run, [stuck] keeps the first failure. *)
  let counts = Array.make n_kinds 0 in
  let merge acc s =
    List.iter
      (fun (kind, c) ->
        let i = kind_index kind in
        counts.(i) <- counts.(i) + c)
      s.allocations;
    {
      steps = acc.steps + s.steps;
      gc_runs = acc.gc_runs + s.gc_runs;
      gc_freed = acc.gc_freed + s.gc_freed;
      allocations = [];
      alloc_words = acc.alloc_words + s.alloc_words;
      max_cont_depth = Stdlib.max acc.max_cont_depth s.max_cont_depth;
      cont_pushes = acc.cont_pushes + s.cont_pushes;
      cont_pops = acc.cont_pops + s.cont_pops;
      store_hwm = Stdlib.max acc.store_hwm s.store_hwm;
      peak_space = Stdlib.max acc.peak_space s.peak_space;
      peak_linked =
        (match (acc.peak_linked, s.peak_linked) with
        | Some a, Some b -> Some (Stdlib.max a b)
        | (Some _ as p), None | None, p -> p);
      peak_log =
        (match (acc.peak_log, s.peak_log) with
        | Some a, Some b -> Some (Stdlib.max a b)
        | (Some _ as p), None | None, p -> p);
      stuck = (match acc.stuck with Some _ -> acc.stuck | None -> s.stuck);
    }
  in
  let acc = List.fold_left merge empty_summary summaries in
  {
    acc with
    allocations =
      List.filter_map
        (fun kind ->
          let c = counts.(kind_index kind) in
          if c > 0 then Some (kind, c) else None)
        all_alloc_kinds;
  }

let summary_to_json (s : summary) : Json.t =
  Obj
    [
      ("steps", Int s.steps);
      ("gc_runs", Int s.gc_runs);
      ("gc_freed", Int s.gc_freed);
      ( "allocations",
        Obj
          (List.map
             (fun (kind, c) -> (alloc_kind_name kind, Json.Int c))
             s.allocations) );
      ("alloc_words", Int s.alloc_words);
      ("max_cont_depth", Int s.max_cont_depth);
      ("cont_pushes", Int s.cont_pushes);
      ("cont_pops", Int s.cont_pops);
      ("store_hwm", Int s.store_hwm);
      ("peak_space", Int s.peak_space);
      ( "peak_linked",
        match s.peak_linked with Some p -> Int p | None -> Null );
      ("peak_log", match s.peak_log with Some p -> Int p | None -> Null);
      ("stuck", match s.stuck with Some m -> Str m | None -> Null);
    ]

let summary_of_json json =
  let int_field name =
    match Json.member name json with
    | Some (Json.Int i) -> Ok i
    | _ -> Error (Printf.sprintf "summary: missing integer field %S" name)
  in
  let ( let* ) = Result.bind in
  let* steps = int_field "steps" in
  let* gc_runs = int_field "gc_runs" in
  let* gc_freed = int_field "gc_freed" in
  let* alloc_words = int_field "alloc_words" in
  let* max_cont_depth = int_field "max_cont_depth" in
  let* cont_pushes = int_field "cont_pushes" in
  let* cont_pops = int_field "cont_pops" in
  let* store_hwm = int_field "store_hwm" in
  let* peak_space = int_field "peak_space" in
  let* peak_linked =
    match Json.member "peak_linked" json with
    | Some Json.Null | None -> Ok None
    | Some (Json.Int i) -> Ok (Some i)
    | Some _ -> Error "summary: bad peak_linked"
  in
  let* peak_log =
    match Json.member "peak_log" json with
    | Some Json.Null | None -> Ok None
    | Some (Json.Int i) -> Ok (Some i)
    | Some _ -> Error "summary: bad peak_log"
  in
  let* stuck =
    match Json.member "stuck" json with
    | Some Json.Null | None -> Ok None
    | Some (Json.Str m) -> Ok (Some m)
    | Some _ -> Error "summary: bad stuck"
  in
  let* allocations =
    match Json.member "allocations" json with
    | Some (Json.Obj fields) ->
        List.fold_left
          (fun acc (name, v) ->
            let* acc = acc in
            match (alloc_kind_of_name name, v) with
            | Some kind, Json.Int c -> Ok ((kind, c) :: acc)
            | _ -> Error (Printf.sprintf "summary: bad allocation kind %S" name))
          (Ok []) fields
        |> Result.map List.rev
    | _ -> Error "summary: missing allocations"
  in
  Ok
    {
      steps;
      gc_runs;
      gc_freed;
      allocations;
      alloc_words;
      max_cont_depth;
      cont_pushes;
      cont_pops;
      store_hwm;
      peak_space;
      peak_linked;
      peak_log;
      stuck;
    }

(* ------------------------------------------------------------------ *)
(* Named counter groups                                                *)

module Counters = struct
  (* One mutex per group: the writers are the server's connection and
     worker threads, each touching a handful of counters per request,
     so contention is negligible next to an evaluation. *)
  type t = { mutex : Mutex.t; cells : (string, int ref) Hashtbl.t }

  let create () = { mutex = Mutex.create (); cells = Hashtbl.create 32 }

  let locked t k =
    Mutex.lock t.mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) k

  let cell t name =
    match Hashtbl.find_opt t.cells name with
    | Some r -> r
    | None ->
        let r = ref 0 in
        Hashtbl.add t.cells name r;
        r

  let incr ?(by = 1) t name =
    locked t (fun () ->
        let r = cell t name in
        r := !r + by)

  let set t name v = locked t (fun () -> cell t name := v)

  let get t name =
    locked t (fun () ->
        match Hashtbl.find_opt t.cells name with Some r -> !r | None -> 0)

  let snapshot t =
    locked t (fun () ->
        Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.cells []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b))

  let to_json t =
    Json.Obj (List.map (fun (name, v) -> (name, Json.Int v)) (snapshot t))
end
