type entry = {
  name : string;
  description : string;
  source : string;
  checks : (int * string) list;
  slow : bool;
}

let entry ?(slow = false) name description source checks =
  { name; description; source; checks; slow }

let all =
  [
    entry "countdown" "pure iterative loop expressed by syntactic recursion"
      {|
(define (loop n) (if (zero? n) 'done (loop (- n 1))))
loop
|}
      [ (0, "done"); (100, "done") ];
    entry "append" "non-tail list append: frames accumulate on the spine"
      {|
(define (app a b)
  (if (null? a) b (cons (car a) (app (cdr a) b))))
(define (iota n) (if (zero? n) '() (cons n (iota (- n 1)))))
(define (go n) (length (app (iota n) (iota n))))
go
|}
      [ (6, "12"); (20, "40") ];
    entry "fib-naive" "doubly recursive Fibonacci (non-tail)"
      {|
(define (fib n)
  (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))
fib
|}
      [ (10, "55"); (15, "610") ];
    entry "fib-iter" "accumulator-passing Fibonacci (all tail calls)"
      {|
(define (fib n)
  (define (go i a b) (if (= i n) a (go (+ i 1) b (+ a b))))
  (go 0 0 1))
fib
|}
      [ (10, "55"); (60, "1548008755920") ];
    entry "fact" "factorial, exercising bignum arithmetic"
      {|
(define (fact n) (if (zero? n) 1 (* n (fact (- n 1)))))
fact
|}
      [ (5, "120"); (25, "15511210043330985984000000") ];
    entry "ack" "Ackermann A(2, n): deep non-tail recursion" ~slow:true
      {|
(define (ack m n)
  (cond ((zero? m) (+ n 1))
        ((zero? n) (ack (- m 1) 1))
        (else (ack (- m 1) (ack m (- n 1))))))
(lambda (n) (ack 2 n))
|}
      [ (3, "9"); (6, "15") ];
    entry "tak" "Takeuchi function on (n, 2n/3, n/3)" ~slow:true
      {|
(define (tak x y z)
  (if (not (< y x))
      z
      (tak (tak (- x 1) y z)
           (tak (- y 1) z x)
           (tak (- z 1) x y))))
(lambda (n) (tak n (quotient (* 2 n) 3) (quotient n 3)))
|}
      [ (6, "3"); (9, "6") ];
    entry "even-odd" "mutual tail recursion across two procedures"
      {|
(define (even? n) (if (zero? n) #t (odd? (- n 1))))
(define (odd? n) (if (zero? n) #f (even? (- n 1))))
even?
|}
      [ (100, "#t"); (101, "#f") ];
    entry "sieve" "sieve of Eratosthenes over a vector; answer is pi(n)"
      {|
(define (sieve n)
  (let ((v (make-vector (+ n 1) #t)))
    (define (strike i step)
      (when (<= i n)
        (vector-set! v i #f)
        (strike (+ i step) step)))
    (define (scan i count)
      (cond ((> i n) count)
            ((vector-ref v i)
             (strike (* i i) i)
             (scan (+ i 1) (+ count 1)))
            (else (scan (+ i 1) count))))
    (if (< n 2) 0 (scan 2 0))))
sieve
|}
      [ (10, "4"); (100, "25") ];
    entry "quicksort" "quicksort over a pseudo-random list"
      {|
(define (make-list n seed)
  (if (zero? n)
      '()
      (let ((seed (modulo (+ (* seed 1103515245) 12345) 2147483648)))
        (cons (modulo seed 1000) (make-list (- n 1) seed)))))
(define (quicksort lst)
  (if (null? lst)
      '()
      (let ((pivot (car lst)) (rest (cdr lst)))
        (append
         (quicksort (filter (lambda (x) (< x pivot)) rest))
         (cons pivot
               (quicksort (filter (lambda (x) (not (< x pivot))) rest)))))))
(define (sorted? lst)
  (cond ((null? lst) #t)
        ((null? (cdr lst)) #t)
        ((<= (car lst) (cadr lst)) (sorted? (cdr lst)))
        (else #f)))
(lambda (n)
  (let ((s (quicksort (make-list n 42))))
    (if (sorted? s) (length s) 'unsorted)))
|}
      [ (0, "0"); (30, "30") ];
    entry "mergesort" "bottom-up merge sort on lists"
      {|
(define (make-list n seed)
  (if (zero? n)
      '()
      (let ((seed (modulo (+ (* seed 69069) 1) 1048576)))
        (cons (modulo seed 997) (make-list (- n 1) seed)))))
(define (merge a b)
  (cond ((null? a) b)
        ((null? b) a)
        ((<= (car a) (car b)) (cons (car a) (merge (cdr a) b)))
        (else (cons (car b) (merge a (cdr b))))))
(define (split lst)
  (if (or (null? lst) (null? (cdr lst)))
      (cons lst '())
      (let ((rest (split (cddr lst))))
        (cons (cons (car lst) (car rest))
              (cons (cadr lst) (cdr rest))))))
(define (mergesort lst)
  (if (or (null? lst) (null? (cdr lst)))
      lst
      (let ((halves (split lst)))
        (merge (mergesort (car halves)) (mergesort (cdr halves))))))
(define (sum lst) (fold-left + 0 lst))
(lambda (n)
  (let ((l (make-list n 7)))
    (- (sum (mergesort l)) (sum l))))
|}
      [ (0, "0"); (25, "0") ];
    entry "nqueens" "number of solutions to the n-queens problem" ~slow:true
      {|
(define (queens board-size)
  (define (attacks? qi qj newi newj)
    (or (= qi newi)
        (= qj newj)
        (= (abs (- qi newi)) (abs (- qj newj)))))
  (define (ok? row-of-queens col)
    (define (loop rest delta)
      (cond ((null? rest) #t)
            ((attacks? (car rest) delta col 0) #f)
            (else (loop (cdr rest) (+ delta 1)))))
    (loop row-of-queens 1))
  (define (solve col)
    (if (zero? col)
        (list '())
        (let ((rest (solve (- col 1))))
          (define (tryrow row acc)
            (if (> row board-size)
                acc
                (tryrow (+ row 1)
                        (fold-left
                         (lambda (a sol)
                           (if (ok? sol row) (cons (cons row sol) a) a))
                         acc rest))))
          (tryrow 1 '()))))
  (length (solve board-size)))
queens
|}
      [ (4, "2"); (6, "4") ];
    entry "hanoi" "towers of Hanoi move count via explicit recursion"
      {|
(define (hanoi n from to via)
  (if (zero? n)
      0
      (+ (hanoi (- n 1) from via to)
         1
         (hanoi (- n 1) via to from))))
(lambda (n) (hanoi n 'a 'b 'c))
|}
      [ (3, "7"); (10, "1023") ];
    entry "deriv" "symbolic differentiation over s-expressions"
      {|
(define (deriv exp var)
  (cond ((number? exp) 0)
        ((symbol? exp) (if (eq? exp var) 1 0))
        ((eq? (car exp) '+)
         (list '+ (deriv (cadr exp) var) (deriv (caddr exp) var)))
        ((eq? (car exp) '*)
         (list '+
               (list '* (cadr exp) (deriv (caddr exp) var))
               (list '* (deriv (cadr exp) var) (caddr exp))))
        (else (error "deriv: unknown operator"))))
(define (nest n)
  (if (zero? n) 'x (list '* 'x (nest (- n 1)))))
(define (size e)
  (if (pair? e) (+ (size (car e)) (size (cdr e))) 1))
(lambda (n) (size (deriv (nest n) 'x)))
|}
      [ (1, "10"); (4, "55") ];
    entry "cps-fib" "Fibonacci in full continuation-passing style"
      {|
(define (fib-cps n k)
  (if (< n 2)
      (k n)
      (fib-cps (- n 1)
               (lambda (a)
                 (fib-cps (- n 2)
                          (lambda (b) (k (+ a b))))))))
(lambda (n) (fib-cps n (lambda (x) x)))
|}
      [ (10, "55"); (15, "610") ];
    entry "cps-loop" "pure CPS iteration: no procedure ever returns"
      {|
(define (loop-cps i acc k)
  (if (zero? i)
      (k acc)
      (loop-cps (- i 1) (+ acc i) k)))
(lambda (n) (loop-cps n 0 (lambda (x) x)))
|}
      [ (10, "55"); (100, "5050") ];
    entry "find-leftmost" "the §4 example on a balanced tree; leaves are numbers"
      {|
(define (find-leftmost predicate? tree fail)
  (if (leaf? tree)
      (if (predicate? tree)
          tree
          (fail))
      (let ((continuation
             (lambda ()
               (find-leftmost predicate? (right-child tree) fail))))
        (find-leftmost predicate? (left-child tree) continuation))))
(define (leaf? t) (not (pair? t)))
(define (left-child t) (car t))
(define (right-child t) (cdr t))
(define (build depth label)
  (if (zero? depth)
      label
      (cons (build (- depth 1) (* 2 label))
            (build (- depth 1) (+ (* 2 label) 1)))))
(lambda (n)
  (find-leftmost
   (lambda (leaf) (> leaf n))
   (build 6 1)
   (lambda () 'not-found)))
|}
      [ (0, "64"); (1000, "not-found") ];
    entry "callcc-generator" "escape procedures via call/cc (product with early exit)"
      {|
(define (product lst)
  (call/cc
   (lambda (return)
     (define (go lst acc)
       (cond ((null? lst) acc)
             ((zero? (car lst)) (return 0))
             (else (go (cdr lst) (* acc (car lst))))))
     (go lst 1))))
(define (iota n) (if (zero? n) '() (cons n (iota (- n 1)))))
(lambda (n) (+ (product (iota n)) (product (list 1 2 0 3))))
|}
      [ (4, "24"); (6, "720") ];
    entry "state-machine" "dispatch table of mutually tail-calling states"
      {|
(define (run-fsm input)
  (define (state-a rest count)
    (cond ((null? rest) count)
          ((eq? (car rest) 'x) (state-b (cdr rest) count))
          (else (state-a (cdr rest) count))))
  (define (state-b rest count)
    (cond ((null? rest) count)
          ((eq? (car rest) 'y) (state-a (cdr rest) (+ count 1)))
          (else (state-b (cdr rest) count))))
  (state-a input 0))
(define (gen n)
  (if (zero? n) '() (cons (if (even? n) 'x 'y) (gen (- n 1)))))
(lambda (n) (run-fsm (gen n)))
|}
      [ (10, "5"); (101, "50") ];
    entry "church" "Church numerals: arithmetic with closures only"
      {|
(define zero (lambda (f) (lambda (x) x)))
(define (succ n) (lambda (f) (lambda (x) (f ((n f) x)))))
(define (plus a b) (lambda (f) (lambda (x) ((a f) ((b f) x)))))
(define (times a b) (lambda (f) (a (b f))))
(define (church->int n) ((n (lambda (k) (+ k 1))) 0))
(define (int->church k) (if (zero? k) zero (succ (int->church (- k 1)))))
(lambda (n)
  (church->int (plus (int->church n) (times (int->church n) (int->church 3)))))
|}
      [ (3, "12"); (7, "28") ];
    entry "meta-eval" "metacircular evaluator for a lambda+arith subset"
      {|
(define (lookup x env)
  (cond ((null? env) (error "unbound"))
        ((eq? x (caar env)) (cdar env))
        (else (lookup x (cdr env)))))
(define (evl e env)
  (cond ((number? e) e)
        ((symbol? e) (lookup e env))
        ((eq? (car e) 'lambda)
         (list 'closure (cadr e) (caddr e) env))
        ((eq? (car e) 'if)
         (if (zero? (evl (cadr e) env))
             (evl (cadddr e) env)
             (evl (caddr e) env)))
        ((eq? (car e) '+) (+ (evl (cadr e) env) (evl (caddr e) env)))
        ((eq? (car e) '-) (- (evl (cadr e) env) (evl (caddr e) env)))
        ((eq? (car e) '*) (* (evl (cadr e) env) (evl (caddr e) env)))
        (else
         (let ((f (evl (car e) env)) (a (evl (cadr e) env)))
           (evl (caddr f) (cons (cons (car (cadr f)) a) (cadddr f)))))))
(define (cadddr x) (car (cdddr x)))
(lambda (n)
  (evl (list (list 'lambda (list 'f)
                   (list (list 'f 'f) n))
             (list 'lambda (list 'self)
                   (list 'lambda (list 'k)
                         (list 'if 'k
                               (list '* 'k (list (list 'self 'self) (list '- 'k 1)))
                               1))))
       '()))
|}
      [ (5, "120"); (8, "40320") ];
    entry "vector-reverse" "in-place vector reversal with do loops"
      {|
(define (reverse! v)
  (do ((i 0 (+ i 1))
       (j (- (vector-length v) 1) (- j 1)))
      ((>= i j) v)
    (let ((tmp (vector-ref v i)))
      (vector-set! v i (vector-ref v j))
      (vector-set! v j tmp))))
(define (fill n)
  (let ((v (make-vector n 0)))
    (do ((i 0 (+ i 1))) ((= i n) v) (vector-set! v i i))))
(define (checksum v)
  (do ((i 0 (+ i 1)) (acc 0 (+ (* 10 acc) (vector-ref v i))))
      ((= i (vector-length v)) acc)))
(lambda (n) (checksum (reverse! (fill n))))
|}
      [ (4, "3210"); (6, "543210") ];
    entry "string-words" "string scanning and symbol interning"
      {|
(define (count-spaces s)
  (define len (string-length s))
  (define (go i acc)
    (if (= i len)
        acc
        (go (+ i 1) (if (char=? (string-ref s i) #\space) (+ acc 1) acc))))
  (go 0 0))
(define (repeat s n) (if (zero? n) "" (string-append s (repeat s (- n 1)))))
(lambda (n) (count-spaces (repeat "ab cd " n)))
|}
      [ (1, "2"); (5, "10") ];
    entry "assoc-db" "association-list database with updates"
      {|
(define (insert db k v) (cons (cons k v) db))
(define (bump db k)
  (let ((hit (assv k db)))
    (if hit
        (insert db k (+ 1 (cdr hit)))
        (insert db k 1))))
(define (build n db)
  (if (zero? n) db (build (- n 1) (bump db (modulo n 7)))))
(lambda (n)
  (let ((db (build n '())))
    (fold-left + 0 (map cdr (map (lambda (k) (or (assv k db) (cons k 0)))
                                 '(0 1 2 3 4 5 6))))))
|}
      [ (0, "0"); (21, "21") ];
    entry "streams" "lazy streams via delay/force: n-th prime by trial division"
      {|
(define (stream-cons-hd hd tl-promise) (cons hd tl-promise))
(define (stream-hd s) (car s))
(define (stream-tl s) (force (cdr s)))
(define (integers-from k)
  (stream-cons-hd k (delay (integers-from (+ k 1)))))
(define (stream-filter keep? s)
  (if (keep? (stream-hd s))
      (stream-cons-hd (stream-hd s) (delay (stream-filter keep? (stream-tl s))))
      (stream-filter keep? (stream-tl s))))
(define (divides? a b) (zero? (modulo b a)))
(define (prime? k)
  (define (try d)
    (cond ((> (* d d) k) #t)
          ((divides? d k) #f)
          (else (try (+ d 1)))))
  (and (> k 1) (try 2)))
(define (stream-ref s k)
  (if (zero? k) (stream-hd s) (stream-ref (stream-tl s) (- k 1))))
(lambda (n) (stream-ref (stream-filter prime? (integers-from 2)) n))
|}
      [ (0, "2"); (10, "31") ];
    entry "y-combinator" "anonymous recursion through the applicative-order Y"
      {|
(define (Y f)
  ((lambda (x) (f (lambda (v) ((x x) v))))
   (lambda (x) (f (lambda (v) ((x x) v))))))
(define fact
  (Y (lambda (self)
       (lambda (n) (if (zero? n) 1 (* n (self (- n 1))))))))
fact
|}
      [ (5, "120"); (10, "3628800") ];
    entry "bst" "binary search tree: insert then in-order fold"
      {|
(define (node k l r) (vector k l r))
(define (key t) (vector-ref t 0))
(define (lhs t) (vector-ref t 1))
(define (rhs t) (vector-ref t 2))
(define (insert t k)
  (cond ((null? t) (node k '() '()))
        ((< k (key t)) (node (key t) (insert (lhs t) k) (rhs t)))
        ((> k (key t)) (node (key t) (lhs t) (insert (rhs t) k)))
        (else t)))
(define (in-order t acc)
  (if (null? t)
      acc
      (in-order (lhs t) (cons (key t) (in-order (rhs t) acc)))))
(define (build i t)
  (if (zero? i) t (build (- i 1) (insert t (modulo (* i 17) 101)))))
(lambda (n)
  (let ((keys (in-order (build n '()) '())))
    (if (null? keys) 0 (+ (* 1000 (length keys)) (car keys)))))
|}
      [ (0, "0"); (12, "12001") ];
    entry "queue" "amortized functional queue (two-list representation)"
      {|
(define (queue-empty) (cons '() '()))
(define (queue-push q x) (cons (car q) (cons x (cdr q))))
(define (queue-pop q)
  (if (null? (car q))
      (let ((front (reverse (cdr q))))
        (cons (car front) (cons (cdr front) '())))
      (cons (car (car q)) (cons (cdr (car q)) (cdr q)))))
(define (drain q acc)
  (if (and (null? (car q)) (null? (cdr q)))
      acc
      (let ((popped (queue-pop q)))
        (drain (cdr popped) (+ (* 10 acc) (car popped))))))
(lambda (n)
  (define (fill q i) (if (> i n) q (fill (queue-push q i) (+ i 1))))
  (drain (fill (queue-empty) 1) 0))
|}
      [ (3, "123"); (5, "12345") ];
    entry "matrix" "vector-of-vector matrix product checksum"
      {|
(define (make-matrix n f)
  (define (fill-row i)
    (let ((row (make-vector n 0)))
      (define (go j)
        (if (= j n) row (begin (vector-set! row j (f i j)) (go (+ j 1)))))
      (go 0)))
  (let ((m (make-vector n 0)))
    (define (go i)
      (if (= i n) m (begin (vector-set! m i (fill-row i)) (go (+ i 1)))))
    (go 0)))
(define (mat-ref m i j) (vector-ref (vector-ref m i) j))
(define (product n a b)
  (make-matrix n
    (lambda (i j)
      (define (dot k acc)
        (if (= k n) acc (dot (+ k 1) (+ acc (* (mat-ref a i k) (mat-ref b k j))))))
      (dot 0 0))))
(define (checksum n m)
  (define (go i j acc)
    (cond ((= i n) acc)
          ((= j n) (go (+ i 1) 0 acc))
          (else (go i (+ j 1) (+ acc (mat-ref m i j))))))
  (go 0 0 0))
(lambda (n)
  (let ((a (make-matrix n (lambda (i j) (+ i j))))
        (b (make-matrix n (lambda (i j) (if (= i j) 1 0)))))
    (checksum n (product n a b))))
|}
      [ (2, "4"); (4, "48") ];
    entry "tokenizer" "character-level tokenizer and expression evaluator"
      {|
(define (digit? c) (and (char<? #\0 c) (char<? c #\:)))
(define (digit-val c) (- (char->integer c) (char->integer #\0)))
(define (tokenize s)
  (define len (string-length s))
  (define (go i num in-num acc)
    (if (= i len)
        (reverse (if in-num (cons num acc) acc))
        (let ((c (string-ref s i)))
          (cond ((or (digit? c) (char=? c #\0))
                 (go (+ i 1) (+ (* 10 num) (digit-val c)) #t acc))
                ((char=? c #\space)
                 (go (+ i 1) 0 #f (if in-num (cons num acc) acc)))
                (else
                 (go (+ i 1) 0 #f
                     (cons c (if in-num (cons num acc) acc))))))))
  (go 0 0 #f '()))
(define (eval-tokens tokens)
  (define (go tokens acc op)
    (cond ((null? tokens) acc)
          ((number? (car tokens))
           (go (cdr tokens)
               (if (char=? op #\+) (+ acc (car tokens)) (- acc (car tokens)))
               op))
          (else (go (cdr tokens) acc (car tokens)))))
  (go tokens 0 #\+))
(define (repeat s n) (if (zero? n) "" (string-append s (repeat s (- n 1)))))
(lambda (n) (eval-tokens (tokenize (repeat "12 + 3 - 4 " n))))
|}
      [ (1, "11"); (5, "-41") ];
    entry "church-pairs" "data structures from closures alone"
      {|
(define (kons a b) (lambda (sel) (sel a b)))
(define (kar p) (p (lambda (a b) a)))
(define (kdr p) (p (lambda (a b) b)))
(define (klist n) (if (zero? n) #f (kons n (klist (- n 1)))))
(define (ksum l acc) (if l (ksum (kdr l) (+ acc (kar l))) acc))
(lambda (n) (ksum (klist n) 0))
|}
      [ (4, "10"); (100, "5050") ];
    entry "mutual-ack" "deep mutual recursion with accumulators"
      {|
(define (up n acc) (if (zero? n) acc (down (- n 1) (+ acc 2))))
(define (down n acc) (if (zero? n) acc (up (- n 1) (- acc 1))))
(lambda (n) (up n 0))
|}
      [ (10, "5"); (101, "52") ];
  ]

let find name = List.find_opt (fun e -> String.equal e.name name) all
let names () = List.map (fun e -> e.name) all

let cache : (string, Tailspace_ast.Ast.expr) Hashtbl.t = Hashtbl.create 31

let program e =
  match Hashtbl.find_opt cache e.name with
  | Some p -> p
  | None ->
      let p = Tailspace_expander.Expand.program_of_string e.source in
      Hashtbl.add cache e.name p;
      p
