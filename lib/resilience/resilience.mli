(** Resource governance and deterministic fault injection for the
    reference machines, the alternative engines, and the harness.

    The paper's separating programs (Theorem 25) are built to blow up
    space, and the [I_stack] semantics gets stuck by design, so every
    measurement run must be bounded and every way a run can end must be
    a structured outcome rather than an exception or an unbounded loop.
    This module supplies the three pieces the rest of the system threads
    through:

    - {!Budget}: a bundle of limits (step fuel, flat-space words, a
      wall-clock deadline, an output-byte cap) enforced at the machines'
      per-step observation point;
    - {!abort_reason}: the failure taxonomy — the old [Out_of_fuel]
      outcome is one case of it;
    - {!Fault}: seeded, deterministic fault plans (force a collection at
      chosen steps, fail the Nth allocation, drop fuel mid-run) used by
      the differential oracle to re-check Corollary 20 under adversarial
      GC schedules.

    The library sits below [Tailspace_core] and depends only on the
    telemetry JSON codec and the Unix clock. *)

module Json := Tailspace_telemetry.Telemetry.Json

(** {1 The failure taxonomy} *)

type abort_reason =
  | Out_of_fuel of { limit : int }
      (** the step budget ran out (the pre-existing fuel counter) *)
  | Space_exceeded of { budget : int; live : int }
      (** the configuration's flat space stayed above the budget even
          after a full collection *)
  | Deadline_exceeded of { timeout_s : float }
      (** the wall-clock deadline passed *)
  | Output_exceeded of { cap : int; written : int }
      (** [display]/[write] produced more bytes than allowed *)
  | Injected_fault of string
      (** a {!Fault} plan fired (e.g. the Nth allocation failed) *)
  | Crashed of string
      (** the supervisor caught an unexpected exception — never raised
          by the machines themselves *)

val abort_reason_name : abort_reason -> string
(** Stable short tag: ["out-of-fuel"], ["space-budget"], ["deadline"],
    ["output-cap"], ["injected-fault"], ["crashed"]. *)

val abort_reason_of_name : string -> abort_reason option
(** Inverse of {!abort_reason_name} on the tag alone (payload fields are
    zeroed) — enough for JSON consumers that switch on the tag. *)

val abort_reason_message : abort_reason -> string
(** One-line human description including the payload. *)

val abort_reason_to_json : abort_reason -> Json.t
(** [{"reason": <tag>, ...payload fields}] *)

val abort_reason_of_json : Json.t -> (abort_reason, string) result
(** Full inverse of {!abort_reason_to_json}, payload included —
    [abort_reason_of_json (abort_reason_to_json r)] is [Ok r]. Used by
    the measurement cache to rehydrate aborted sweep points. *)

(** {1 Wall clock} *)

module Clock : sig
  (** The one clock everything in the system reads: {!Guard} deadlines,
      the server's drain timer and token buckets, bench wall-clocks.
      The source is injectable so time-dependent tests advance a fake
      clock instead of sleeping. *)

  val now : unit -> float
  (** Seconds from the current source (default [Unix.gettimeofday]). *)

  val set : (unit -> float) -> unit
  (** Install a clock source. Install fakes before spawning anything
      that reads the clock concurrently. *)

  val reset : unit -> unit
  (** Back to the real wall clock. *)

  val with_source : (unit -> float) -> (unit -> 'a) -> 'a
  (** [with_source fake k] runs [k] with [fake] installed, restoring
      the previous source even if [k] raises. *)
end

(** {1 Budgets} *)

module Budget : sig
  (** A bundle of limits for one run. [None] fields are unlimited; the
      machines treat a missing [fuel] as their historical 20M-step
      default. *)
  type t = {
    fuel : int option;  (** maximum machine steps *)
    space_words : int option;
        (** maximum flat space (Definition 21 words) the live
            configuration may occupy *)
    timeout_s : float option;  (** wall-clock seconds from run start *)
    output_bytes : int option;  (** cap on bytes written by the program *)
  }

  val unlimited : t

  val make :
    ?fuel:int ->
    ?space_words:int ->
    ?timeout_s:float ->
    ?output_bytes:int ->
    unit ->
    t

  val is_unlimited : t -> bool

  val to_json : t -> Json.t

  val of_json : Json.t -> (t, string) result
  (** Inverse of {!to_json}; absent or [null] fields stay unlimited.
      Used by the evaluation service to parse client budgets. *)

  val clamp : limit:t -> t -> t
  (** [clamp ~limit client]: the pointwise minimum of the two budgets
      ([None] is unlimited and never wins against a set limit). The
      server applies its policy budget as [limit], so a client may
      always ask for less than the policy allows, never more. *)
end

(** {1 Retry backoff}

    Capped exponential backoff with seeded jitter, for clients that
    must retry a structured [retry-after] rejection without
    synchronizing into thundering herds. Deterministic per seed — the
    load generator's retry schedule is reproducible. *)

module Backoff : sig
  type t

  val make :
    ?base_s:float ->
    ?factor:float ->
    ?max_s:float ->
    ?seed:int ->
    unit ->
    t
  (** Defaults: base 0.05s, factor 2, cap 5s. *)

  val next : t -> float
  (** The next delay: [base * factor^attempt] jittered into
      [50%, 100%) of itself, capped at [max_s]; advances the attempt
      counter and the jitter state. *)

  val attempt : t -> int
  (** Attempts consumed so far. *)

  val reset : t -> unit
  (** Back to attempt 0 (the jitter state keeps advancing). *)
end

(** {1 Enforcement}

    A {!Guard.t} is the per-run mutable state derived from a budget: the
    effective fuel limit (which fault plans may lower mid-run), the
    absolute deadline, and a throttle so the clock is read every few
    hundred checks rather than every step. *)

module Guard : sig
  type t

  val start : ?default_fuel:int -> Budget.t -> t
  (** Begin enforcement now: the deadline is [now + timeout_s]. The
      effective fuel limit is [budget.fuel], else [default_fuel], else
      unlimited. *)

  val fuel_limit : t -> int
  (** The current effective step limit ([max_int] when unlimited). *)

  val cap_fuel : t -> int -> unit
  (** Lower (never raise) the effective fuel limit — the fuel-drop
      fault. *)

  val space_budget : t -> int option

  val check : t -> steps:int -> output_bytes:int -> abort_reason option
  (** Fuel, deadline and output-cap check for the observation point.
      Space is checked by the caller (the machine collects first and
      judges the live figure, see {!Budget.t.space_words}). The deadline
      is consulted on the first call and then every 256 calls. *)
end

(** {1 Deterministic fault injection} *)

module Fault : sig
  (** A plan is immutable and reusable; {!start} derives the per-run
      cursor (allocation counter, seeded-schedule state). All plans are
      deterministic: the seeded GC schedule is an LCG advanced once per
      step, so a (seed, program) pair always yields the same run. *)
  type plan

  val none : plan
  val is_none : plan -> bool

  val make :
    ?label:string ->
    ?gc_at:int list ->
    ?gc_every:int ->
    ?gc_seed:int ->
    ?fail_alloc:int ->
    ?fuel_drop:int * int ->
    unit ->
    plan
  (** [gc_at] forces a collection before the listed steps; [gc_every k]
      before steps [k], [2k], … (exactly [n] collections per [k*n]
      steps — step 0 never fires); [gc_seed] drives a pseudorandom schedule
      forcing a collection on roughly one step in eight; [fail_alloc n]
      makes the [n]-th store allocation (1-based) raise {!Injected};
      [fuel_drop (s, k)] caps the remaining fuel to [k] more steps once
      step [s] is reached. *)

  val label : plan -> string
  val to_json : plan -> Json.t

  exception Injected of string
  (** Raised by the allocation hook; the machines catch it at the step
      boundary and turn it into [Aborted (Injected_fault _)]. It never
      escapes a [run]. *)

  type cursor

  val start : plan -> cursor

  val force_gc : cursor -> step:int -> bool
  (** Must be called exactly once per step (it advances the seeded
      schedule). *)

  val fuel_drop : cursor -> step:int -> int option
  (** [Some remaining] exactly once, when the drop step is reached. *)

  val observes_alloc : plan -> bool

  val on_alloc : cursor -> unit
  (** Count one allocation; raises {!Injected} on the fated one. *)
end
