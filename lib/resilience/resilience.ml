module Json = Tailspace_telemetry.Telemetry.Json

(* ------------------------------------------------------------------ *)
(* The failure taxonomy                                                *)

type abort_reason =
  | Out_of_fuel of { limit : int }
  | Space_exceeded of { budget : int; live : int }
  | Deadline_exceeded of { timeout_s : float }
  | Output_exceeded of { cap : int; written : int }
  | Injected_fault of string
  | Crashed of string

let abort_reason_name = function
  | Out_of_fuel _ -> "out-of-fuel"
  | Space_exceeded _ -> "space-budget"
  | Deadline_exceeded _ -> "deadline"
  | Output_exceeded _ -> "output-cap"
  | Injected_fault _ -> "injected-fault"
  | Crashed _ -> "crashed"

let abort_reason_of_name = function
  | "out-of-fuel" -> Some (Out_of_fuel { limit = 0 })
  | "space-budget" -> Some (Space_exceeded { budget = 0; live = 0 })
  | "deadline" -> Some (Deadline_exceeded { timeout_s = 0. })
  | "output-cap" -> Some (Output_exceeded { cap = 0; written = 0 })
  | "injected-fault" -> Some (Injected_fault "")
  | "crashed" -> Some (Crashed "")
  | _ -> None

let abort_reason_message = function
  | Out_of_fuel { limit } -> Printf.sprintf "out of fuel (limit %d steps)" limit
  | Space_exceeded { budget; live } ->
      Printf.sprintf "space budget exceeded (%d live words > %d budgeted)" live
        budget
  | Deadline_exceeded { timeout_s } ->
      Printf.sprintf "deadline exceeded (%.3gs timeout)" timeout_s
  | Output_exceeded { cap; written } ->
      Printf.sprintf "output cap exceeded (%d bytes written, cap %d)" written
        cap
  | Injected_fault m -> Printf.sprintf "injected fault: %s" m
  | Crashed m -> Printf.sprintf "crashed: %s" m

let abort_reason_to_json reason : Json.t =
  let tag = ("reason", Json.Str (abort_reason_name reason)) in
  match reason with
  | Out_of_fuel { limit } -> Obj [ tag; ("limit", Int limit) ]
  | Space_exceeded { budget; live } ->
      Obj [ tag; ("budget", Int budget); ("live", Int live) ]
  | Deadline_exceeded { timeout_s } ->
      Obj [ tag; ("timeout_s", Float timeout_s) ]
  | Output_exceeded { cap; written } ->
      Obj [ tag; ("cap", Int cap); ("written", Int written) ]
  | Injected_fault m -> Obj [ tag; ("fault", Str m) ]
  | Crashed m -> Obj [ tag; ("exception", Str m) ]

let abort_reason_of_json json =
  let int_field name =
    match Json.member name json with
    | Some (Json.Int i) -> Ok i
    | _ -> Error (Printf.sprintf "abort_reason: missing integer field %S" name)
  in
  let float_field name =
    match Json.member name json with
    | Some (Json.Float f) -> Ok f
    | Some (Json.Int i) -> Ok (float_of_int i)
    | _ -> Error (Printf.sprintf "abort_reason: missing float field %S" name)
  in
  let str_field name =
    match Json.member name json with
    | Some (Json.Str s) -> Ok s
    | _ -> Error (Printf.sprintf "abort_reason: missing string field %S" name)
  in
  let ( let* ) = Result.bind in
  let* tag = str_field "reason" in
  match tag with
  | "out-of-fuel" ->
      let* limit = int_field "limit" in
      Ok (Out_of_fuel { limit })
  | "space-budget" ->
      let* budget = int_field "budget" in
      let* live = int_field "live" in
      Ok (Space_exceeded { budget; live })
  | "deadline" ->
      let* timeout_s = float_field "timeout_s" in
      Ok (Deadline_exceeded { timeout_s })
  | "output-cap" ->
      let* cap = int_field "cap" in
      let* written = int_field "written" in
      Ok (Output_exceeded { cap; written })
  | "injected-fault" ->
      let* m = str_field "fault" in
      Ok (Injected_fault m)
  | "crashed" ->
      let* m = str_field "exception" in
      Ok (Crashed m)
  | other -> Error (Printf.sprintf "abort_reason: unknown tag %S" other)

(* ------------------------------------------------------------------ *)
(* Wall clock                                                          *)

module Clock = struct
  let real () = Unix.gettimeofday ()

  (* The source is a plain ref: tests install a fake clock before
     spawning any machinery that reads it, so the benign race on the
     cell itself never matters in practice. *)
  let source = ref real
  let now () = !source ()
  let set f = source := f
  let reset () = source := real

  let with_source f k =
    let saved = !source in
    source := f;
    Fun.protect ~finally:(fun () -> source := saved) k
end

(* ------------------------------------------------------------------ *)
(* Budgets                                                             *)

module Budget = struct
  type t = {
    fuel : int option;
    space_words : int option;
    timeout_s : float option;
    output_bytes : int option;
  }

  let unlimited =
    { fuel = None; space_words = None; timeout_s = None; output_bytes = None }

  let make ?fuel ?space_words ?timeout_s ?output_bytes () =
    { fuel; space_words; timeout_s; output_bytes }

  let is_unlimited t = t = unlimited

  let to_json t : Json.t =
    let opt name = function
      | Some i -> [ (name, Json.Int i) ]
      | None -> []
    in
    Obj
      (opt "fuel" t.fuel @ opt "space_words" t.space_words
      @ (match t.timeout_s with
        | Some s -> [ ("timeout_s", Json.Float s) ]
        | None -> [])
      @ opt "output_bytes" t.output_bytes)

  let of_json json =
    match json with
    | Json.Obj fields ->
        let bad = ref None in
        let int_opt name =
          match List.assoc_opt name fields with
          | None | Some Json.Null -> None
          | Some (Json.Int i) -> Some i
          | Some _ ->
              bad := Some (Printf.sprintf "budget: %S must be an integer" name);
              None
        in
        let float_opt name =
          match List.assoc_opt name fields with
          | None | Some Json.Null -> None
          | Some (Json.Float f) -> Some f
          | Some (Json.Int i) -> Some (float_of_int i)
          | Some _ ->
              bad := Some (Printf.sprintf "budget: %S must be a number" name);
              None
        in
        let t =
          {
            fuel = int_opt "fuel";
            space_words = int_opt "space_words";
            timeout_s = float_opt "timeout_s";
            output_bytes = int_opt "output_bytes";
          }
        in
        (match !bad with None -> Ok t | Some m -> Error m)
    | _ -> Error "budget: expected an object"

  let clamp ~limit t =
    let min_opt a b =
      match (a, b) with
      | None, x | x, None -> x
      | Some a, Some b -> Some (Stdlib.min a b)
    in
    {
      fuel = min_opt limit.fuel t.fuel;
      space_words = min_opt limit.space_words t.space_words;
      timeout_s = min_opt limit.timeout_s t.timeout_s;
      output_bytes = min_opt limit.output_bytes t.output_bytes;
    }
end

(* ------------------------------------------------------------------ *)
(* Enforcement                                                         *)

module Guard = struct
  type t = {
    mutable fuel_limit : int;
    space_words : int option;
    timeout_s : float option;
    deadline : float option;
    output_bytes : int option;
    mutable checks : int;  (* throttles the clock reads *)
  }

  let start ?default_fuel (budget : Budget.t) =
    let fuel_limit =
      match (budget.fuel, default_fuel) with
      | Some f, _ -> f
      | None, Some f -> f
      | None, None -> max_int
    in
    {
      fuel_limit;
      space_words = budget.space_words;
      timeout_s = budget.timeout_s;
      deadline = Option.map (fun s -> Clock.now () +. s) budget.timeout_s;
      output_bytes = budget.output_bytes;
      checks = 0;
    }

  let fuel_limit t = t.fuel_limit
  let cap_fuel t limit = if limit < t.fuel_limit then t.fuel_limit <- limit
  let space_budget t = t.space_words

  let check t ~steps ~output_bytes =
    if steps >= t.fuel_limit then Some (Out_of_fuel { limit = t.fuel_limit })
    else
      let over_deadline =
        match t.deadline with
        | None -> false
        | Some d ->
            let probe = t.checks land 255 = 0 in
            t.checks <- t.checks + 1;
            probe && Clock.now () > d
      in
      if over_deadline then
        Some
          (Deadline_exceeded
             { timeout_s = Option.value t.timeout_s ~default:0. })
      else
        match t.output_bytes with
        | Some cap when output_bytes > cap ->
            Some (Output_exceeded { cap; written = output_bytes })
        | _ -> None
end

(* ------------------------------------------------------------------ *)
(* Seeded retry backoff                                                *)

module Backoff = struct
  type t = {
    base_s : float;
    factor : float;
    max_s : float;
    mutable attempt : int;
    mutable rng : int;
  }

  let mask = 0xFFFFFFFFFFFF

  let make ?(base_s = 0.05) ?(factor = 2.0) ?(max_s = 5.0) ?(seed = 1) () =
    let rng = if seed land mask = 0 then 0x5DEECE66D else seed land mask in
    { base_s; factor; max_s; attempt = 0; rng }

  let next t =
    let raw = t.base_s *. (t.factor ** float_of_int t.attempt) in
    t.attempt <- t.attempt + 1;
    (* same LCG as the fault layer; jitter in [0.5, 1.0) of the raw
       delay so synchronized clients decorrelate without ever retrying
       immediately *)
    t.rng <- ((t.rng * 0x5DEECE66D) + 0xB) land mask;
    let unit = float_of_int ((t.rng lsr 16) land 0xFFFF) /. 65536.0 in
    Float.min t.max_s (raw *. (0.5 +. (unit /. 2.)))

  let attempt t = t.attempt
  let reset t = t.attempt <- 0
end

(* ------------------------------------------------------------------ *)
(* Deterministic fault injection                                       *)

module Fault = struct
  type plan = {
    label : string;
    gc_at : int list;
    gc_every : int option;
    gc_seed : int option;
    fail_alloc : int option;
    fuel_drop : (int * int) option;
  }

  let none =
    {
      label = "none";
      gc_at = [];
      gc_every = None;
      gc_seed = None;
      fail_alloc = None;
      fuel_drop = None;
    }

  let is_none p = { p with label = none.label } = none

  let derive_label p =
    let parts =
      (if p.gc_at = [] then []
       else [ Printf.sprintf "gc-at-%d-steps" (List.length p.gc_at) ])
      @ (match p.gc_every with
        | Some k -> [ Printf.sprintf "gc-every-%d" k ]
        | None -> [])
      @ (match p.gc_seed with
        | Some s -> [ Printf.sprintf "gc-seeded-%d" s ]
        | None -> [])
      @ (match p.fail_alloc with
        | Some n -> [ Printf.sprintf "fail-alloc-%d" n ]
        | None -> [])
      @
      match p.fuel_drop with
      | Some (s, k) -> [ Printf.sprintf "fuel-drop-%d@%d" k s ]
      | None -> []
    in
    match parts with [] -> "none" | _ -> String.concat "+" parts

  let make ?label ?(gc_at = []) ?gc_every ?gc_seed ?fail_alloc ?fuel_drop () =
    let p =
      { label = ""; gc_at; gc_every; gc_seed; fail_alloc; fuel_drop }
    in
    let label = match label with Some l -> l | None -> derive_label p in
    { p with label }

  let label p = p.label

  let to_json p : Json.t =
    Obj
      ([ ("label", Json.Str p.label) ]
      @ (if p.gc_at = [] then []
         else
           [ ("gc_at", Json.List (List.map (fun s -> Json.Int s) p.gc_at)) ])
      @ (match p.gc_every with
        | Some k -> [ ("gc_every", Json.Int k) ]
        | None -> [])
      @ (match p.gc_seed with
        | Some s -> [ ("gc_seed", Json.Int s) ]
        | None -> [])
      @ (match p.fail_alloc with
        | Some n -> [ ("fail_alloc", Json.Int n) ]
        | None -> [])
      @
      match p.fuel_drop with
      | Some (s, k) ->
          [ ("fuel_drop_step", Json.Int s); ("fuel_drop_remaining", Json.Int k) ]
      | None -> [])

  exception Injected of string

  type cursor = {
    plan : plan;
    gc_steps : (int, unit) Hashtbl.t;
    mutable rng : int;
    mutable allocs : int;
    mutable fuel_dropped : bool;
  }

  let start plan =
    let gc_steps = Hashtbl.create (List.length plan.gc_at) in
    List.iter (fun s -> Hashtbl.replace gc_steps s ()) plan.gc_at;
    {
      plan;
      gc_steps;
      (* The LCG state must start nonzero so an unseeded or zero-seeded
         cursor still walks the full sequence rather than degenerating. *)
      rng =
        (match plan.gc_seed with
        | Some s when s land 0xFFFFFFFFFFFF <> 0 -> s land 0xFFFFFFFFFFFF
        | Some _ | None -> 0x5DEECE66D);
      allocs = 0;
      fuel_dropped = false;
    }

  let force_gc c ~step =
    let explicit = Hashtbl.mem c.gc_steps step in
    let periodic =
      (* Fire at steps k, 2k, … — not step 0, which would make the plan
         collect k+1 times per k·n steps. *)
      match c.plan.gc_every with
      | Some k when k > 0 -> step > 0 && step mod k = 0
      | _ -> false
    in
    let seeded =
      match c.plan.gc_seed with
      | Some _ ->
          c.rng <- ((c.rng * 0x5DEECE66D) + 0xB) land 0xFFFFFFFFFFFF;
          (c.rng lsr 16) land 7 = 0
      | None -> false
    in
    explicit || periodic || seeded

  let fuel_drop c ~step =
    match c.plan.fuel_drop with
    | Some (s, remaining) when (not c.fuel_dropped) && step >= s ->
        c.fuel_dropped <- true;
        Some remaining
    | _ -> None

  let observes_alloc p = p.fail_alloc <> None

  let on_alloc c =
    c.allocs <- c.allocs + 1;
    match c.plan.fail_alloc with
    | Some n when c.allocs = n ->
        raise (Injected (Printf.sprintf "allocation %d failed" n))
    | _ -> ()
end
