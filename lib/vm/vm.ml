module Ast = Tailspace_ast.Ast
module Bignum = Tailspace_bignum.Bignum
module Datum = Tailspace_sexp.Datum
module Reader = Tailspace_sexp.Reader
module Expand = Tailspace_expander.Expand
module Machine = Tailspace_core.Machine
module Types = Tailspace_core.Types
module Env = Tailspace_core.Env
module Store = Tailspace_core.Store
module Prim = Tailspace_core.Prim
module Gc = Tailspace_core.Gc
module Space = Tailspace_core.Space
module Space_model = Tailspace_core.Space_model
module Answer = Tailspace_core.Answer
module Annot = Tailspace_analysis.Annot
module Telemetry = Tailspace_telemetry.Telemetry
module Resilience = Tailspace_resilience.Resilience
module Census = Tailspace_core.Census
module Prov = Tailspace_provenance.Provenance

type outcome =
  | Done of string
  | Stuck of string
  | Aborted of Resilience.abort_reason

type result = {
  outcome : outcome;
  steps : int;
  peaks : (Space_model.t * int) list;
  program_size : int;
  gc_runs : int;
  output : string;
}

let peak_of r model =
  List.find_map
    (fun (m, p) -> if Space_model.equal m model then Some p else None)
    r.peaks

let peak_space r = Option.value (peak_of r Space_model.Flat) ~default:0
let peak_linked r = peak_of r Space_model.Linked
let peak_log r = peak_of r Space_model.Log

(* ================================================================== *)
(* The fast tier: flat bytecode over an untracked value domain.        *)
(* ================================================================== *)

type instr =
  | Const of int
  | Local of int * int
  | Global of int
  | SetLocal of int * int
  | SetGlobal of int
  | MkClosure of int
  | JumpIfFalse of int
  | Jump of int
  | Call of int
  | TailCall of int
  | Return
  | Halt

(* The fast value domain. Mutation is direct (pair cells, vector and
   rib slots), identity is physical, and nothing carries a space
   figure: the paper's accounting lives entirely in the instrumented
   tier. [FUnbound] marks a global slot the compiler created for a name
   no definition ever filled. *)
type fvalue =
  | FBool of bool
  | FInt of Bignum.t
  | FSym of string
  | FStr of string
  | FChar of char
  | FNil
  | FUnspec
  | FUndef
  | FUnbound
  | FPair of pcell
  | FVec of fvalue array
  | FClos of fclosure
  | FPrim of string
  | FCont of snapshot

and pcell = { mutable car : fvalue; mutable cdr : fvalue }

(* Lexical environments are chains of ribs; [rnil] is its own parent so
   depth walks need no option test (a correct compiler never walks past
   the outermost rib). *)
and rib = { slots : fvalue array; up : rib }

and fclosure = { tmpl : int; cenv : rib }

(* A first-class continuation: copies of both stacks plus the capture
   environment. [k_ret >= 0] resumes at that pc; [k_ret = -1] performs a
   frame return (the capture happened in tail position). *)
and snapshot = {
  k_stack : fvalue array;
  k_fpc : int array;
  k_fenv : rib array;
  k_env : rib;
  k_ret : int;
}

let rec rnil = { slots = [||]; up = rnil }

type template = {
  mutable entry : int;
  nparams : int;
  variadic : bool;
  tname : string;
}

type world = {
  mutable code : instr array;
  mutable meta : string array;  (** per-pc note (names, constants) *)
  mutable clen : int;
  mutable pool : fvalue array;
  mutable plen : int;
  gslots : (string, int) Hashtbl.t;
  mutable gnames : string array;
  mutable gvals : fvalue array;
  mutable glen : int;
  mutable tmpls : template array;
  mutable tlen : int;
}

exception Fstuck of string
exception Fabort of Resilience.abort_reason

let err fmt = Format.kasprintf (fun s -> raise (Fstuck s)) fmt

let ftag = function
  | FBool _ -> "boolean"
  | FInt _ -> "number"
  | FSym _ -> "symbol"
  | FStr _ -> "string"
  | FChar _ -> "character"
  | FNil -> "empty list"
  | FUnspec -> "unspecified"
  | FUndef | FUnbound -> "undefined"
  | FPair _ -> "pair"
  | FVec _ -> "vector"
  | FClos _ -> "closure"
  | FCont _ -> "continuation"
  | FPrim _ -> "primitive"

(* ------------------------------------------------------------------ *)
(* Rendering (the same conventions as [Answer], store-free).           *)

type style = Display | Write

let render ~style ~fuel v =
  let buf = Buffer.create 64 in
  let budget = ref fuel in
  let out s =
    if !budget > 0 then begin
      decr budget;
      Buffer.add_string buf s
    end
  in
  let rec emit v =
    if !budget > 0 then
      match v with
      | FBool true -> out "#t"
      | FBool false -> out "#f"
      | FInt z -> out (Bignum.to_string z)
      | FSym s -> out s
      | FStr s -> (
          match style with
          | Display -> out s
          | Write -> out (Format.asprintf "%a" Datum.pp (Datum.Str s)))
      | FChar c -> (
          match style with
          | Display -> out (String.make 1 c)
          | Write -> out (Format.asprintf "%a" Datum.pp (Datum.Char c)))
      | FNil -> out "()"
      | FUnspec -> out "#!unspecified"
      | FUndef | FUnbound -> out "#!undefined"
      | FClos _ | FCont _ | FPrim _ -> out "#<PROC>"
      | FVec elems ->
          out "#(";
          Array.iteri
            (fun i v ->
              if i > 0 then out " ";
              emit v)
            elems;
          out ")"
      | FPair p ->
          out "(";
          emit p.car;
          emit_tail p.cdr;
          out ")"
  and emit_tail v =
    if !budget > 0 then
      match v with
      | FNil -> ()
      | FPair p ->
          out " ";
          emit p.car;
          emit_tail p.cdr
      | v ->
          out " . ";
          emit v
  in
  emit v;
  if !budget <= 0 then Buffer.add_string buf "...";
  Buffer.contents buf

let fwrite v = render ~style:Write ~fuel:10_000 v
let fdisplay v = render ~style:Display ~fuel:10_000 v

(* ------------------------------------------------------------------ *)
(* Primitives over the fast domain: the same table as [Prim], same
   error messages, physical identity where the stepper compares store
   locations.                                                          *)

type fstate = { out : Buffer.t; mutable rng : int }

let type_error name expected v =
  err "%s: expected %s, got %s" name expected (ftag v)

let arity name n args =
  if List.length args <> n then
    err "%s: expected %d arguments, got %d" name n (List.length args)

let one name = function [ a ] -> a | args -> (arity name 1 args; assert false)

let two name = function
  | [ a; b ] -> (a, b)
  | args -> (arity name 2 args; assert false)

let three name = function
  | [ a; b; c ] -> (a, b, c)
  | args -> (arity name 3 args; assert false)

let want_int name = function FInt z -> z | v -> type_error name "number" v

let want_small_int name v =
  match Bignum.to_int (want_int name v) with
  | Some n -> n
  | None -> err "%s: index too large" name

let want_pair name = function FPair p -> p | v -> type_error name "pair" v
let want_vector name = function FVec a -> a | v -> type_error name "vector" v
let want_string name = function FStr s -> s | v -> type_error name "string" v
let want_char name = function FChar c -> c | v -> type_error name "character" v
let fbool b = FBool b

let feqv a b =
  match (a, b) with
  | FBool x, FBool y -> x = y
  | FInt x, FInt y -> Bignum.equal x y
  | FSym x, FSym y -> String.equal x y
  | FStr x, FStr y -> String.equal x y
  | FChar x, FChar y -> x = y
  | FNil, FNil | FUnspec, FUnspec | FUndef, FUndef -> true
  | FPair p, FPair q -> p == q
  | FVec x, FVec y -> x == y
  | FClos c, FClos d -> c == d
  | FCont k, FCont l -> k == l
  | FPrim x, FPrim y -> String.equal x y
  | _, _ -> false

let fequal a b =
  let fuel = ref 1_000_000 in
  let rec go a b =
    decr fuel;
    if !fuel <= 0 then err "equal?: structure too deep (cyclic?)"
    else
      match (a, b) with
      | FPair p, FPair q -> go p.car q.car && go p.cdr q.cdr
      | FVec l1, FVec l2 ->
          Array.length l1 = Array.length l2
          && (let rec elems i =
                i >= Array.length l1 || (go l1.(i) l2.(i) && elems (i + 1))
              in
              elems 0)
      | a, b -> feqv a b
  in
  go a b

let flist_to_values v =
  (* Guards against cycles built with [set-cdr!], as the stepper's
     store-cardinal bound does. *)
  let rec go acc n v =
    if n > 10_000_000 then None
    else
      match v with
      | FNil -> Some (List.rev acc)
      | FPair p -> go (p.car :: acc) (n + 1) p.cdr
      | _ -> None
  in
  go [] 0 v

let fvalues_to_list vs =
  List.fold_right (fun v tail -> FPair { car = v; cdr = tail }) vs FNil

let ftable : (string, fstate -> fvalue list -> fvalue) Hashtbl.t =
  Hashtbl.create 97

let fdefine name fn = Hashtbl.replace ftable name fn

let fold_arith name init op _st args =
  FInt (List.fold_left (fun acc v -> op acc (want_int name v)) init args)

let compare_chain name cmp _st args =
  let rec chain = function
    | a :: (b :: _ as rest) ->
        cmp (want_int name a) (want_int name b) && chain rest
    | [ _ ] | [] -> true
  in
  if List.length args < 2 then err "%s: expected at least 2 arguments" name;
  fbool (chain args)

let () =
  (* numbers *)
  fdefine "+" (fold_arith "+" Bignum.zero Bignum.add);
  fdefine "*" (fold_arith "*" Bignum.one Bignum.mul);
  fdefine "-" (fun _ args ->
      match args with
      | [] -> err "-: expected at least 1 argument"
      | [ a ] -> FInt (Bignum.neg (want_int "-" a))
      | a :: rest ->
          FInt
            (List.fold_left
               (fun acc v -> Bignum.sub acc (want_int "-" v))
               (want_int "-" a) rest));
  fdefine "quotient" (fun _ args ->
      let a, b = two "quotient" args in
      let b = want_int "quotient" b in
      if Bignum.is_zero b then err "quotient: division by zero";
      FInt (Bignum.quotient (want_int "quotient" a) b));
  fdefine "remainder" (fun _ args ->
      let a, b = two "remainder" args in
      let b = want_int "remainder" b in
      if Bignum.is_zero b then err "remainder: division by zero";
      FInt (Bignum.remainder (want_int "remainder" a) b));
  fdefine "modulo" (fun _ args ->
      let a, b = two "modulo" args in
      let b = want_int "modulo" b in
      if Bignum.is_zero b then err "modulo: division by zero";
      FInt (Bignum.modulo (want_int "modulo" a) b));
  fdefine "=" (compare_chain "=" (fun a b -> Bignum.compare a b = 0));
  fdefine "<" (compare_chain "<" (fun a b -> Bignum.compare a b < 0));
  fdefine ">" (compare_chain ">" (fun a b -> Bignum.compare a b > 0));
  fdefine "<=" (compare_chain "<=" (fun a b -> Bignum.compare a b <= 0));
  fdefine ">=" (compare_chain ">=" (fun a b -> Bignum.compare a b >= 0));
  fdefine "zero?" (fun _ args ->
      fbool (Bignum.is_zero (want_int "zero?" (one "zero?" args))));
  fdefine "positive?" (fun _ args ->
      fbool (Bignum.sign (want_int "positive?" (one "positive?" args)) > 0));
  fdefine "negative?" (fun _ args ->
      fbool (Bignum.sign (want_int "negative?" (one "negative?" args)) < 0));
  fdefine "even?" (fun _ args ->
      let z = want_int "even?" (one "even?" args) in
      fbool (Bignum.is_even z));
  fdefine "odd?" (fun _ args ->
      let z = want_int "odd?" (one "odd?" args) in
      fbool (not (Bignum.is_even z)));
  fdefine "abs" (fun _ args -> FInt (Bignum.abs (want_int "abs" (one "abs" args))));
  fdefine "min" (fun _ args ->
      match args with
      | [] -> err "min: expected at least 1 argument"
      | a :: rest ->
          FInt
            (List.fold_left
               (fun acc v -> Bignum.min acc (want_int "min" v))
               (want_int "min" a) rest));
  fdefine "max" (fun _ args ->
      match args with
      | [] -> err "max: expected at least 1 argument"
      | a :: rest ->
          FInt
            (List.fold_left
               (fun acc v -> Bignum.max acc (want_int "max" v))
               (want_int "max" a) rest));
  fdefine "expt" (fun _ args ->
      let a, b = two "expt" args in
      let e = want_small_int "expt" b in
      if e < 0 then err "expt: negative exponent";
      FInt (Bignum.pow (want_int "expt" a) e));
  fdefine "number->string" (fun _ args ->
      FStr (Bignum.to_string (want_int "number->string" (one "number->string" args))));
  fdefine "string->number" (fun _ args ->
      let s = want_string "string->number" (one "string->number" args) in
      match Bignum.of_string s with
      | z -> FInt z
      | exception Invalid_argument _ -> fbool false);
  fdefine "random" (fun st args ->
      let n = want_small_int "random" (one "random" args) in
      if n <= 0 then err "random: bound must be positive";
      (* The same 48-bit LCG as [Prim], so seeded runs agree with the
         steppers under left-to-right evaluation. *)
      st.rng <- ((st.rng * 0x5DEECE66D) + 0xB) land 0xFFFFFFFFFFFF;
      FInt (Bignum.of_int (st.rng mod n)));

  (* predicates *)
  fdefine "eq?" (fun _ args ->
      let a, b = two "eq?" args in
      fbool (feqv a b));
  fdefine "eqv?" (fun _ args ->
      let a, b = two "eqv?" args in
      fbool (feqv a b));
  fdefine "equal?" (fun _ args ->
      let a, b = two "equal?" args in
      fbool (fequal a b));
  fdefine "not" (fun _ args ->
      fbool (match one "not" args with FBool false -> true | _ -> false));
  let type_pred name p = fdefine name (fun _ args -> fbool (p (one name args))) in
  type_pred "pair?" (function FPair _ -> true | _ -> false);
  type_pred "null?" (function FNil -> true | _ -> false);
  type_pred "boolean?" (function FBool _ -> true | _ -> false);
  type_pred "symbol?" (function FSym _ -> true | _ -> false);
  type_pred "number?" (function FInt _ -> true | _ -> false);
  type_pred "integer?" (function FInt _ -> true | _ -> false);
  type_pred "string?" (function FStr _ -> true | _ -> false);
  type_pred "char?" (function FChar _ -> true | _ -> false);
  type_pred "vector?" (function FVec _ -> true | _ -> false);
  type_pred "procedure?" (function
    | FClos _ | FCont _ | FPrim _ -> true
    | _ -> false);

  (* pairs and lists *)
  fdefine "cons" (fun _ args ->
      let a, d = two "cons" args in
      FPair { car = a; cdr = d });
  fdefine "car" (fun _ args -> (want_pair "car" (one "car" args)).car);
  fdefine "cdr" (fun _ args -> (want_pair "cdr" (one "cdr" args)).cdr);
  fdefine "set-car!" (fun _ args ->
      let p, v = two "set-car!" args in
      (want_pair "set-car!" p).car <- v;
      FUnspec);
  fdefine "set-cdr!" (fun _ args ->
      let p, v = two "set-cdr!" args in
      (want_pair "set-cdr!" p).cdr <- v;
      FUnspec);
  fdefine "list" (fun _ args -> fvalues_to_list args);

  (* vectors *)
  fdefine "make-vector" (fun _ args ->
      let n, fill =
        match args with
        | [ n ] -> (n, FUnspec)
        | [ n; fill ] -> (n, fill)
        | _ -> err "make-vector: expected 1 or 2 arguments"
      in
      let n = want_small_int "make-vector" n in
      if n < 0 then err "make-vector: negative length";
      FVec (Array.make n fill));
  fdefine "vector" (fun _ args -> FVec (Array.of_list args));
  fdefine "vector-length" (fun _ args ->
      FInt
        (Bignum.of_int
           (Array.length (want_vector "vector-length" (one "vector-length" args)))));
  fdefine "vector-ref" (fun _ args ->
      let v, i = two "vector-ref" args in
      let a = want_vector "vector-ref" v in
      let i = want_small_int "vector-ref" i in
      if i < 0 || i >= Array.length a then err "vector-ref: index out of range";
      a.(i));
  fdefine "vector-set!" (fun _ args ->
      let v, i, x = three "vector-set!" args in
      let a = want_vector "vector-set!" v in
      let i = want_small_int "vector-set!" i in
      if i < 0 || i >= Array.length a then err "vector-set!: index out of range";
      a.(i) <- x;
      FUnspec);
  fdefine "vector-fill!" (fun _ args ->
      let v, x = two "vector-fill!" args in
      Array.fill (want_vector "vector-fill!" v) 0
        (Array.length (want_vector "vector-fill!" v))
        x;
      FUnspec);

  (* strings (immutable) *)
  fdefine "string-length" (fun _ args ->
      FInt
        (Bignum.of_int
           (String.length (want_string "string-length" (one "string-length" args)))));
  fdefine "string-ref" (fun _ args ->
      let s, i = two "string-ref" args in
      let s = want_string "string-ref" s in
      let i = want_small_int "string-ref" i in
      if i < 0 || i >= String.length s then err "string-ref: index out of range";
      FChar s.[i]);
  fdefine "string-append" (fun _ args ->
      FStr (String.concat "" (List.map (want_string "string-append") args)));
  fdefine "substring" (fun _ args ->
      let s, i, j = three "substring" args in
      let s = want_string "substring" s in
      let i = want_small_int "substring" i
      and j = want_small_int "substring" j in
      if i < 0 || j < i || j > String.length s then err "substring: bad range";
      FStr (String.sub s i (j - i)));
  fdefine "string=?" (fun _ args ->
      let a, b = two "string=?" args in
      fbool (String.equal (want_string "string=?" a) (want_string "string=?" b)));
  fdefine "string<?" (fun _ args ->
      let a, b = two "string<?" args in
      fbool
        (String.compare (want_string "string<?" a) (want_string "string<?" b) < 0));
  fdefine "string->symbol" (fun _ args ->
      FSym (want_string "string->symbol" (one "string->symbol" args)));
  fdefine "symbol->string" (fun _ args ->
      match one "symbol->string" args with
      | FSym s -> FStr s
      | v -> type_error "symbol->string" "symbol" v);
  fdefine "string->list" (fun _ args ->
      let s = want_string "string->list" (one "string->list" args) in
      fvalues_to_list (List.init (String.length s) (fun i -> FChar s.[i])));

  (* characters *)
  fdefine "char->integer" (fun _ args ->
      FInt
        (Bignum.of_int
           (Char.code (want_char "char->integer" (one "char->integer" args)))));
  fdefine "integer->char" (fun _ args ->
      let n = want_small_int "integer->char" (one "integer->char" args) in
      if n < 0 || n > 255 then err "integer->char: out of range";
      FChar (Char.chr n));
  fdefine "char=?" (fun _ args ->
      let a, b = two "char=?" args in
      fbool (want_char "char=?" a = want_char "char=?" b));
  fdefine "char<?" (fun _ args ->
      let a, b = two "char<?" args in
      fbool (want_char "char<?" a < want_char "char<?" b));

  (* output *)
  fdefine "display" (fun st args ->
      Buffer.add_string st.out (fdisplay (one "display" args));
      FUnspec);
  fdefine "write" (fun st args ->
      Buffer.add_string st.out (fwrite (one "write" args));
      FUnspec);
  fdefine "newline" (fun st args ->
      arity "newline" 0 args;
      Buffer.add_char st.out '\n';
      FUnspec);

  (* errors *)
  fdefine "error" (fun _ args ->
      let parts = List.map (function FStr s -> s | v -> fwrite v) args in
      err "error: %s" (String.concat " " parts))

(* ------------------------------------------------------------------ *)
(* The compiler: expanded AST -> flat instruction array.               *)

let fvalue_of_const : Ast.const -> fvalue = function
  | Ast.C_bool b -> FBool b
  | Ast.C_int z -> FInt z
  | Ast.C_sym s -> FSym s
  | Ast.C_str s -> FStr s
  | Ast.C_char c -> FChar c
  | Ast.C_nil -> FNil
  | Ast.C_unspecified -> FUnspec
  | Ast.C_undefined -> FUndef

let new_world () =
  {
    code = Array.make 512 Halt;
    meta = Array.make 512 "";
    clen = 0;
    pool = Array.make 64 FNil;
    plen = 0;
    gslots = Hashtbl.create 97;
    gnames = Array.make 128 "";
    gvals = Array.make 128 FUnbound;
    glen = 0;
    tmpls = Array.make 32 { entry = 0; nparams = 0; variadic = false; tname = "" };
    tlen = 0;
  }

let grow_to a len dummy =
  if len < Array.length a then a
  else begin
    let b = Array.make (max (2 * Array.length a) (len + 1)) dummy in
    Array.blit a 0 b 0 (Array.length a);
    b
  end

let emit w ?(note = "") i =
  w.code <- grow_to w.code w.clen Halt;
  w.meta <- grow_to w.meta w.clen "";
  let pc = w.clen in
  w.code.(pc) <- i;
  w.meta.(pc) <- note;
  w.clen <- pc + 1;
  pc

let patch w pc i = w.code.(pc) <- i

let add_const w v =
  w.pool <- grow_to w.pool w.plen FNil;
  let i = w.plen in
  w.pool.(i) <- v;
  w.plen <- i + 1;
  i

let gslot w name =
  match Hashtbl.find_opt w.gslots name with
  | Some i -> i
  | None ->
      w.gnames <- grow_to w.gnames w.glen "";
      w.gvals <- grow_to w.gvals w.glen FUnbound;
      let i = w.glen in
      w.gnames.(i) <- name;
      w.gvals.(i) <- FUnbound;
      w.glen <- i + 1;
      Hashtbl.add w.gslots name i;
      i

let add_template w t =
  w.tmpls <- grow_to w.tmpls w.tlen t;
  let i = w.tlen in
  w.tmpls.(i) <- t;
  w.tlen <- i + 1;
  i

let const_note c = Ast.to_string (Ast.Quote c)

(* Compile one closed unit into [w]; returns its entry pc. Templates
   created by the unit are queued and compiled after its [Halt], so the
   unit's own stream stays contiguous (every template body ends in
   [Return] or [TailCall] — there is no fallthrough). *)
let compile_unit ?annot w expr =
  (match annot with Some a -> Annot.record a expr | None -> ());
  (* The tail/non-tail decision comes from the PR 5 annotation table
     when available; nodes marked [Both] (physically shared across
     positions) or never recorded fall back to the structural answer,
     which emits identical code (golden-tested). *)
  let resolve_tail e structural =
    match annot with
    | None -> structural
    | Some a -> (
        match Annot.tail_status a e with
        | Some Annot.Tail -> true
        | Some Annot.Nontail -> false
        | Some Annot.Both | None -> structural)
  in
  let index_of x names =
    let rec go i = function
      | [] -> None
      | n :: rest -> if String.equal n x then Some i else go (i + 1) rest
    in
    go 0 names
  in
  let resolve cenv x =
    let rec frames d = function
      | [] -> None
      | names :: rest -> (
          match index_of x names with
          | Some i -> Some (d, i)
          | None -> frames (d + 1) rest)
    in
    frames 0 cenv
  in
  let pending = Queue.create () in
  let rec comp ~tail ~name e cenv =
    let tail = resolve_tail e tail in
    match (e : Ast.expr) with
    | Ast.Quote c ->
        ignore (emit w ~note:(const_note c) (Const (add_const w (fvalue_of_const c))));
        if tail then ignore (emit w Return)
    | Ast.Var x ->
        (match resolve cenv x with
        | Some (d, i) -> ignore (emit w ~note:x (Local (d, i)))
        | None -> ignore (emit w ~note:x (Global (gslot w x))));
        if tail then ignore (emit w Return)
    | Ast.Lambda l ->
        let names =
          match l.rest with Some r -> l.params @ [ r ] | None -> l.params
        in
        let t =
          {
            entry = -1;
            nparams = List.length l.params;
            variadic = Option.is_some l.rest;
            tname = name;
          }
        in
        let idx = add_template w t in
        Queue.add (idx, l.Ast.body, names :: cenv) pending;
        ignore (emit w ~note:name (MkClosure idx));
        if tail then ignore (emit w Return)
    | Ast.Set (x, e0) ->
        comp ~tail:false ~name:x e0 cenv;
        (match resolve cenv x with
        | Some (d, i) -> ignore (emit w ~note:x (SetLocal (d, i)))
        | None -> ignore (emit w ~note:x (SetGlobal (gslot w x))));
        if tail then ignore (emit w Return)
    | Ast.If (e0, e1, e2) ->
        comp ~tail:false ~name:"" e0 cenv;
        let jf = emit w (JumpIfFalse (-1)) in
        if tail then begin
          comp ~tail:true ~name e1 cenv;
          patch w jf (JumpIfFalse w.clen);
          comp ~tail:true ~name e2 cenv
        end
        else begin
          comp ~tail:false ~name e1 cenv;
          let j = emit w (Jump (-1)) in
          patch w jf (JumpIfFalse w.clen);
          comp ~tail:false ~name e2 cenv;
          patch w j (Jump w.clen)
        end
    | Ast.Call (f, args) ->
        comp ~tail:false ~name:"" f cenv;
        List.iter (fun a -> comp ~tail:false ~name:"" a cenv) args;
        let n = List.length args in
        ignore (emit w (if tail then TailCall n else Call n))
  in
  let entry = w.clen in
  comp ~tail:false ~name:"" expr [];
  ignore (emit w Halt);
  let rec drain () =
    match Queue.take_opt pending with
    | None -> ()
    | Some (idx, body, cenv) ->
        w.tmpls.(idx).entry <- w.clen;
        comp ~tail:true ~name:w.tmpls.(idx).tname body cenv;
        drain ()
  in
  drain ();
  entry

(* ------------------------------------------------------------------ *)
(* The dispatch loop.                                                  *)

type rstate = {
  mutable stack : fvalue array;
  mutable sp : int;
  mutable fpc : int array;
  mutable fenv : rib array;
  mutable fp : int;
  mutable env : rib;
  mutable pc : int;
  mutable steps : int;
  fst : fstate;
}

let new_rstate ~seed =
  {
    stack = Array.make 256 FUnspec;
    sp = 0;
    fpc = Array.make 64 0;
    fenv = Array.make 64 rnil;
    fp = 0;
    env = rnil;
    pc = 0;
    steps = 0;
    fst = { out = Buffer.create 64; rng = seed };
  }

let run_unit w st ~guard ~entry =
  st.pc <- entry;
  st.env <- rnil;
  let push v =
    if st.sp >= Array.length st.stack then
      st.stack <- grow_to st.stack st.sp FUnspec;
    st.stack.(st.sp) <- v;
    st.sp <- st.sp + 1
  in
  let push_frame ret_pc ret_env =
    if st.fp >= Array.length st.fpc then begin
      st.fpc <- grow_to st.fpc st.fp 0;
      st.fenv <- grow_to st.fenv st.fp rnil
    end;
    st.fpc.(st.fp) <- ret_pc;
    st.fenv.(st.fp) <- ret_env;
    st.fp <- st.fp + 1
  in
  let pop_frame () =
    st.fp <- st.fp - 1;
    st.pc <- st.fpc.(st.fp);
    st.env <- st.fenv.(st.fp)
  in
  let rec rib_at r d = if d = 0 then r else rib_at r.up (d - 1) in
  (* Pop [n] argument values plus the operator below them; return the
     arguments in order. *)
  let pop_args n =
    let base = st.sp - n in
    let rec build i acc =
      if i < base then acc else build (i - 1) (st.stack.(i) :: acc)
    in
    let args = build (st.sp - 1) [] in
    st.sp <- base - 1;
    args
  in
  let capture ~tail =
    FCont
      {
        k_stack = Array.sub st.stack 0 st.sp;
        k_fpc = Array.sub st.fpc 0 st.fp;
        k_fenv = Array.sub st.fenv 0 st.fp;
        k_env = st.env;
        k_ret = (if tail then -1 else st.pc + 1);
      }
  in
  let enter_closure ~tail c slots =
    if not tail then push_frame (st.pc + 1) st.env;
    st.env <- { slots; up = c.cenv };
    st.pc <- w.tmpls.(c.tmpl).entry
  in
  let slots_of_list t args n =
    let np = t.nparams in
    if (if t.variadic then n < np else n <> np) then
      err "arity: procedure expects %s%d arguments, got %d"
        (if t.variadic then "at least " else "")
        np n;
    let size = np + if t.variadic then 1 else 0 in
    let slots = Array.make (max size 1) FUnspec in
    let rec fill i = function
      | args when i >= np ->
          if t.variadic then slots.(np) <- fvalues_to_list args
      | a :: rest ->
          slots.(i) <- a;
          fill (i + 1) rest
      | [] -> ()
    in
    fill 0 args;
    slots
  in
  let restore_cont k v =
    let n = Array.length k.k_stack in
    st.stack <- Array.make (max 256 (2 * n)) FUnspec;
    Array.blit k.k_stack 0 st.stack 0 n;
    st.sp <- n;
    let fn = Array.length k.k_fpc in
    st.fpc <- Array.make (max 64 (2 * fn)) 0;
    st.fenv <- Array.make (max 64 (2 * fn)) rnil;
    Array.blit k.k_fpc 0 st.fpc 0 fn;
    Array.blit k.k_fenv 0 st.fenv 0 fn;
    st.fp <- fn;
    st.env <- k.k_env;
    push v;
    if k.k_ret >= 0 then st.pc <- k.k_ret
    else begin
      (* Captured in tail position: resuming means returning from the
         frame that was current at capture time. *)
      let v = st.stack.(st.sp - 1) in
      st.sp <- st.sp - 1;
      pop_frame ();
      push v
    end
  in
  let rec invoke_list ~tail f args =
    match f with
    | FClos c ->
        let t = w.tmpls.(c.tmpl) in
        let slots = slots_of_list t args (List.length args) in
        enter_closure ~tail c slots
    | FPrim name -> invoke_prim ~tail name args
    | FCont k -> (
        match args with
        | [ v ] -> restore_cont k v
        | _ -> err "continuation expects 1 value, got %d" (List.length args))
    | v -> err "attempt to call a non-procedure (%s)" (ftag v)
  and invoke_prim ~tail name args =
    match name with
    | "apply" -> (
        match args with
        | f :: (_ :: _ as rest) -> (
            let middle, last =
              let r = List.rev rest in
              (List.rev (List.tl r), List.hd r)
            in
            match flist_to_values last with
            | Some flattened -> invoke_list ~tail f (middle @ flattened)
            | None -> err "apply: last argument is not a proper list")
        | _ -> err "apply: expected a procedure and an argument list")
    | "call-with-current-continuation" | "call/cc" -> (
        match args with
        | [ f ] -> invoke_list ~tail f [ capture ~tail ]
        | _ -> err "call/cc: expected exactly 1 argument")
    | _ -> (
        match Hashtbl.find_opt ftable name with
        | None -> err "unknown primitive: %s" name
        | Some fn ->
            let v = fn st.fst args in
            if tail then begin
              pop_frame ();
              push v
            end
            else begin
              push v;
              st.pc <- st.pc + 1
            end)
  in
  let code = w.code in
  let limit = ref (Resilience.Guard.fuel_limit guard) in
  let running = ref true in
  while !running do
    st.steps <- st.steps + 1;
    if st.steps land 255 = 0 || st.steps >= !limit then begin
      (match
         Resilience.Guard.check guard ~steps:st.steps
           ~output_bytes:(Buffer.length st.fst.out)
       with
      | Some reason -> raise (Fabort reason)
      | None -> ());
      limit := Resilience.Guard.fuel_limit guard
    end;
    match code.(st.pc) with
    | Const i ->
        push w.pool.(i);
        st.pc <- st.pc + 1
    | Local (d, i) -> (
        match (rib_at st.env d).slots.(i) with
        | FUndef ->
            err "%s: letrec variable used before initialization" w.meta.(st.pc)
        | v ->
            push v;
            st.pc <- st.pc + 1)
    | Global i -> (
        match w.gvals.(i) with
        | FUnbound -> err "unbound variable: %s" w.gnames.(i)
        | FUndef ->
            err "%s: letrec variable used before initialization" w.gnames.(i)
        | v ->
            push v;
            st.pc <- st.pc + 1)
    | SetLocal (d, i) ->
        st.sp <- st.sp - 1;
        (rib_at st.env d).slots.(i) <- st.stack.(st.sp);
        push FUnspec;
        st.pc <- st.pc + 1
    | SetGlobal i ->
        if w.gvals.(i) == FUnbound then
          err "set!: unbound variable %s" w.gnames.(i);
        st.sp <- st.sp - 1;
        w.gvals.(i) <- st.stack.(st.sp);
        push FUnspec;
        st.pc <- st.pc + 1
    | MkClosure ti ->
        push (FClos { tmpl = ti; cenv = st.env });
        st.pc <- st.pc + 1
    | JumpIfFalse target -> (
        st.sp <- st.sp - 1;
        match st.stack.(st.sp) with
        | FBool false -> st.pc <- target
        | _ -> st.pc <- st.pc + 1)
    | Jump target -> st.pc <- target
    | Call n | TailCall n -> (
        let tail = match code.(st.pc) with TailCall _ -> true | _ -> false in
        match st.stack.(st.sp - n - 1) with
        | FClos c ->
            (* The hot path: arguments move straight from the value
               stack into the callee's rib; a tail call pushes no frame,
               so the callee runs in — reuses — the caller's frame. *)
            let t = w.tmpls.(c.tmpl) in
            let np = t.nparams in
            if (if t.variadic then n < np else n <> np) then
              err "arity: procedure expects %s%d arguments, got %d"
                (if t.variadic then "at least " else "")
                np n;
            let size = np + if t.variadic then 1 else 0 in
            let slots = Array.make (max size 1) FUnspec in
            let base = st.sp - n in
            for i = 0 to np - 1 do
              slots.(i) <- st.stack.(base + i)
            done;
            if t.variadic then begin
              let rest = ref FNil in
              for i = n - 1 downto np do
                rest := FPair { car = st.stack.(base + i); cdr = !rest }
              done;
              slots.(np) <- !rest
            end;
            st.sp <- base - 1;
            enter_closure ~tail c slots
        | FPrim name -> invoke_prim ~tail name (pop_args n)
        | FCont k -> (
            match pop_args n with
            | [ v ] -> restore_cont k v
            | args -> err "continuation expects 1 value, got %d" (List.length args))
        | v -> err "attempt to call a non-procedure (%s)" (ftag v))
    | Return ->
        let v = st.stack.(st.sp - 1) in
        st.sp <- st.sp - 1;
        pop_frame ();
        push v
    | Halt -> running := false
  done;
  st.sp <- st.sp - 1;
  st.stack.(st.sp)

(* ------------------------------------------------------------------ *)
(* Worlds: primitives + the shared prelude, compiled and evaluated.    *)

let prelude_defs =
  lazy
    (Reader.parse_all_exn Machine.prelude_source
    |> List.map (fun form ->
           match Expand.top_level_define form with
           | Some (name, expr) -> (name, expr)
           | None -> failwith "vm: prelude: expected only definitions"))

let unlimited_guard () =
  Resilience.Guard.start ~default_fuel:50_000_000 Resilience.Budget.unlimited

(* A fresh world per run: globals are mutable (top-level [set!]), so
   sharing one across parallel measurement domains would race. Building
   one is a single pass over the prelude (~60 small definitions). *)
let fresh_world ?annot () =
  let w = new_world () in
  List.iter
    (fun name ->
      let i = gslot w name in
      w.gvals.(i) <- FPrim name)
    (List.sort compare (Prim.names ()));
  let st = new_rstate ~seed:0 in
  let guard = unlimited_guard () in
  List.iter
    (fun (name, expr) ->
      (* The slot exists before the body runs, so self- and forward
         references resolve to it (filled by later definitions). *)
      let slot = gslot w name in
      let entry = compile_unit ?annot w expr in
      match run_unit w st ~guard ~entry with
      | v -> w.gvals.(slot) <- v
      | exception Fstuck m -> failwith (Printf.sprintf "vm: prelude: %s: %s" name m))
    (Lazy.force prelude_defs);
  w

type compiled = {
  w : world;
  entry : int;
  main_lo : int;
  main_hi : int;  (** end of the whole main unit incl. its templates *)
  tmpl_lo : int;
  psize : int;
}

let compile ?annot expr =
  let w = fresh_world ?annot () in
  let tmpl_lo = w.tlen in
  let main_lo = w.clen in
  let entry = compile_unit ?annot w expr in
  { w; entry; main_lo; main_hi = w.clen; tmpl_lo; psize = Ast.size expr }

let rebase_instr c = function
  | JumpIfFalse t -> JumpIfFalse (t - c.main_lo)
  | Jump t -> Jump (t - c.main_lo)
  | MkClosure i -> MkClosure (i - c.tmpl_lo)
  | i -> i

let main_code c =
  Array.init (c.main_hi - c.main_lo) (fun i ->
      rebase_instr c c.w.code.(c.main_lo + i))

let disassemble c =
  let b = Buffer.create 256 in
  let line pc s note =
    Buffer.add_string b
      (if note = "" then Printf.sprintf "%4d  %s\n" pc s
       else Printf.sprintf "%4d  %-18s ; %s\n" pc s note)
  in
  (* Template entry points inside the main unit, for section headers. *)
  let headers = Hashtbl.create 8 in
  for i = c.tmpl_lo to c.w.tlen - 1 do
    let t = c.w.tmpls.(i) in
    Hashtbl.replace headers t.entry
      (Printf.sprintf "template T%d (%s%s/%d%s):" (i - c.tmpl_lo)
         (if t.tname = "" then "lambda" else t.tname)
         ""
         t.nparams
         (if t.variadic then "+" else ""))
  done;
  Buffer.add_string b "main:\n";
  for pc = c.main_lo to c.main_hi - 1 do
    (match Hashtbl.find_opt headers pc with
    | Some h ->
        Buffer.add_string b h;
        Buffer.add_char b '\n'
    | None -> ());
    let rel = pc - c.main_lo in
    let note = c.w.meta.(pc) in
    match rebase_instr c c.w.code.(pc) with
    | Const i -> line rel (Printf.sprintf "CONST %s" (fwrite c.w.pool.(i))) ""
    | Local (d, i) -> line rel (Printf.sprintf "LOCAL %d.%d" d i) note
    | Global _ -> line rel (Printf.sprintf "GLOBAL %s" note) ""
    | SetLocal (d, i) -> line rel (Printf.sprintf "SETLOCAL %d.%d" d i) note
    | SetGlobal _ -> line rel (Printf.sprintf "SETGLOBAL %s" note) ""
    | MkClosure i -> line rel (Printf.sprintf "CLOSURE T%d" i) note
    | JumpIfFalse t -> line rel (Printf.sprintf "JUMPIFFALSE %d" t) ""
    | Jump t -> line rel (Printf.sprintf "JUMP %d" t) ""
    | Call n -> line rel (Printf.sprintf "CALL %d" n) ""
    | TailCall n -> line rel (Printf.sprintf "TAILCALL %d" n) ""
    | Return -> line rel "RETURN" ""
    | Halt -> line rel "HALT" ""
  done;
  Buffer.contents b

let fast_result ~outcome ~steps ~psize ~output =
  {
    outcome;
    steps;
    peaks = [ (Space_model.Flat, 0) ];
    program_size = psize;
    gc_runs = 0;
    output;
  }

let run_fast_with ~fuel ~budget ~seed c =
  let guard = Resilience.Guard.start ~default_fuel:fuel budget in
  let st = new_rstate ~seed in
  let outcome =
    match run_unit c.w st ~guard ~entry:c.entry with
    | v -> Done (fwrite v)
    | exception Fstuck m -> Stuck m
    | exception Invalid_argument m -> Stuck m
    | exception Fabort reason -> Aborted reason
  in
  fast_result ~outcome ~steps:st.steps ~psize:c.psize
    ~output:(Buffer.contents st.fst.out)

let run_fast ?(fuel = 20_000_000) ?budget c =
  let budget = Option.value budget ~default:Resilience.Budget.unlimited in
  run_fast_with ~fuel ~budget ~seed:Machine.Config.default.Machine.Config.seed c

(* ================================================================== *)
(* The instrumented tier: tree-threaded [I_tail] transitions over the  *)
(* real cost domain, bit-compatible with [Machine.run].                *)
(* ================================================================== *)

module Measured = struct
  open Types

  (* Per-node compile-time statics, memoized on physical node identity
     (the same discipline as [Annot]): the constant's value for [Quote]
     nodes, the operand array and fixed-order evaluation spine for
     [Call] nodes. Seeded permutations shuffle per visit, as the
     stepper does. *)
  module Pt = struct
    type t = Ast.expr

    let equal = ( == )
    let hash = Hashtbl.hash
  end

  module Ptbl = Hashtbl.Make (Pt)

  type call_static = {
    exprs : Ast.expr array;
    first : int;
    remaining : (int * Ast.expr) list;
  }

  type iconfig = {
    control : [ `Expr of Ast.expr | `Value of value ];
    env : Env.t;
    cont : cont;
    store : Store.t;
  }

  type istep =
    | INext of iconfig
    | IFinal of value * Store.t
    | IStuck of string

  type mstate = {
    cfg : Machine.Config.t;
    ctx : Prim.ctx;
    quotes : value Ptbl.t;
    calls : call_static Ptbl.t;
    annot : Annot.t option;
        (* the stepper machine's table, so site ids are assigned by the
           same insertion order as [Machine.run]'s — the bit-compatible
           peaks then imply configuration-identical censuses *)
    prov : Census.t option;
    track_sites : bool;
  }

  let site_of m e =
    if not m.track_sites then -1
    else
      match m.annot with
      | None -> -1
      | Some a -> ( match Annot.site_id a e with Some s -> s | None -> -1)

  let note_alloc_site m ~site ~phase =
    match m.prov with
    | None -> ()
    | Some c -> Census.set_alloc_site c ~site ~phase

  let call_static m e f args =
    match Ptbl.find_opt m.calls e with
    | Some cs -> cs
    | None ->
        let exprs = Array.of_list (f :: args) in
        let n = Array.length exprs in
        let order =
          match m.cfg.Machine.Config.perm with
          | Machine.Right_to_left -> List.init n (fun i -> n - 1 - i)
          | Machine.Left_to_right | Machine.Seeded _ -> List.init n (fun i -> i)
        in
        let first, rest =
          match order with i0 :: rest -> (i0, rest) | [] -> assert false
        in
        let cs =
          { exprs; first; remaining = List.map (fun i -> (i, exprs.(i))) rest }
        in
        Ptbl.add m.calls e cs;
        cs

  (* Fisher-Yates over the machine's LCG — the same draws, in the same
     order, as the stepper's [eval_order]. *)
  let seeded_order m n =
    let next_random bound =
      m.ctx.Prim.rng <- ((m.ctx.Prim.rng * 0x5DEECE66D) + 0xB) land 0xFFFFFFFFFFFF;
      m.ctx.Prim.rng mod bound
    in
    let a = Array.init n (fun i -> i) in
    for i = n - 1 downto 1 do
      let j = next_random (i + 1) in
      let tmp = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- tmp
    done;
    Array.to_list a

  let step_expr m config e =
    let { env; cont; store; _ } = config in
    match (e : Ast.expr) with
    | Ast.Quote c ->
        let v =
          match Ptbl.find_opt m.quotes e with
          | Some v -> v
          | None ->
              let v = value_of_const c in
              Ptbl.add m.quotes e v;
              v
        in
        INext { config with control = `Value v }
    | Ast.Var i -> (
        match Env.find_opt i env with
        | None -> IStuck (Printf.sprintf "unbound variable: %s" i)
        | Some l -> (
            match Store.find_opt store l with
            | None ->
                IStuck
                  (Printf.sprintf "%s: location deleted by stack allocation" i)
            | Some Undefined ->
                IStuck
                  (Printf.sprintf "%s: letrec variable used before initialization"
                     i)
            | Some v -> INext { config with control = `Value v }))
    | Ast.Lambda lam ->
        (* I_tail captures the full environment. *)
        note_alloc_site m ~site:(site_of m e) ~phase:(Some Prov.P_closure);
        let store, tag = Store.alloc store Unspecified in
        INext { config with control = `Value (Closure (tag, lam, env)); store }
    | Ast.If (e0, e1, e2) ->
        INext
          {
            config with
            control = `Expr e0;
            cont = select ~site:(site_of m e) ~e1 ~e2 ~env ~next:cont ();
          }
    | Ast.Set (i, e0) ->
        INext
          {
            config with
            control = `Expr e0;
            cont = assign ~site:(site_of m e) ~id:i ~env ~next:cont ();
          }
    | Ast.Call (f, args) ->
        let cs = call_static m e f args in
        let first, remaining =
          match m.cfg.Machine.Config.perm with
          | Machine.Left_to_right | Machine.Right_to_left ->
              (cs.first, cs.remaining)
          | Machine.Seeded _ -> (
              match seeded_order m (Array.length cs.exprs) with
              | i0 :: rest ->
                  (i0, List.map (fun i -> (i, cs.exprs.(i))) rest)
              | [] -> assert false)
        in
        INext
          {
            config with
            control = `Expr cs.exprs.(first);
            cont =
              push ~fv_rest:[] ~site:(site_of m e) ~pending:first ~remaining
                ~evaluated:[] ~env ~next:cont ();
          }

  let rec invoke ?(site = -1) m config v0 vals next =
    let { store; _ } = config in
    match v0 with
    | Closure (_, lam, captured) ->
        let np = List.length lam.Ast.params in
        let nv = List.length vals in
        let arity_ok =
          match lam.Ast.rest with None -> nv = np | Some _ -> nv >= np
        in
        if not arity_ok then
          IStuck
            (Printf.sprintf "arity: procedure expects %s%d arguments, got %d"
               (match lam.Ast.rest with None -> "" | Some _ -> "at least ")
               np nv)
        else begin
          let rec split k vs =
            if k = 0 then ([], vs)
            else
              match vs with
              | v :: rest ->
                  let direct, extra = split (k - 1) rest in
                  (v :: direct, extra)
              | [] -> assert false
          in
          let direct, extra = split np vals in
          note_alloc_site m ~site ~phase:(Some Prov.P_rib);
          let store, plocs = Store.alloc_many store direct in
          let store, rest_binding =
            match lam.Ast.rest with
            | None -> (store, [])
            | Some r ->
                note_alloc_site m ~site ~phase:None;
                let store, lst = Prim.values_to_list store extra in
                note_alloc_site m ~site ~phase:(Some Prov.P_rib);
                let store, rl = Store.alloc store lst in
                (store, [ (r, rl) ])
          in
          let callee_env =
            Env.add_list
              (List.combine lam.Ast.params plocs @ rest_binding)
              captured
          in
          (* I_tail creates no return frame: the continuation for the
             body is [next] itself — the tail call reuses it. *)
          INext
            { control = `Expr lam.Ast.body; env = callee_env; cont = next; store }
        end
    | Escape (_, saved) -> (
        match vals with
        | [ v ] ->
            INext { config with control = `Value v; env = Env.empty; cont = saved }
        | _ ->
            IStuck
              (Printf.sprintf "continuation expects 1 value, got %d"
                 (List.length vals)))
    | Primop "apply" -> (
        match vals with
        | f :: (_ :: _ as rest) -> (
            let middle, last =
              let r = List.rev rest in
              (List.rev (List.tl r), List.hd r)
            in
            match Prim.list_to_values store last with
            | Some flattened ->
                invoke ~site m config f (middle @ flattened) next
            | None -> IStuck "apply: last argument is not a proper list")
        | _ -> IStuck "apply: expected a procedure and an argument list")
    | Primop ("call-with-current-continuation" | "call/cc") -> (
        match vals with
        | [ f ] ->
            note_alloc_site m ~site ~phase:(Some Prov.P_escape);
            let store, tag = Store.alloc store Unspecified in
            let escape = Escape (tag, next) in
            invoke ~site m { config with store } f [ escape ] next
        | _ -> IStuck "call/cc: expected exactly 1 argument")
    | Primop name -> (
        match Prim.find name with
        | None -> IStuck (Printf.sprintf "unknown primitive: %s" name)
        | Some fn -> (
            note_alloc_site m ~site ~phase:None;
            match fn m.ctx store vals with
            | store, v ->
                INext { config with control = `Value v; cont = next; store }
            | exception Prim.Prim_error msg -> IStuck msg
            | exception Invalid_argument msg -> IStuck msg))
    | v ->
        IStuck
          (Printf.sprintf "attempt to call a non-procedure (%s)" (tag_of_value v))

  let step_value m config v =
    let { cont; store; _ } = config in
    match cont with
    | Halt -> IFinal (v, store)
    | Select { e1; e2; env; next; _ } ->
        let branch = if v = Bool false then e2 else e1 in
        INext { config with control = `Expr branch; env; cont = next }
    | Assign { id; env; next; _ } -> (
        match Env.find_opt id env with
        | None -> IStuck (Printf.sprintf "set!: unbound variable %s" id)
        | Some l -> (
            match Store.mem store l with
            | false ->
                IStuck
                  (Printf.sprintf "set! %s: location deleted by stack allocation"
                     id)
            | true ->
                INext
                  {
                    control = `Value Unspecified;
                    env;
                    cont = next;
                    store = Store.set store l v;
                  }))
    | Push { pending; remaining; evaluated; env; next; site; _ } -> (
        let evaluated = (pending, v) :: evaluated in
        match remaining with
        | (j, e) :: rest ->
            INext
              {
                config with
                control = `Expr e;
                env;
                cont =
                  push ~fv_rest:[] ~site ~pending:j ~remaining:rest ~evaluated
                    ~env ~next ();
              }
        | [] -> (
            let in_order =
              List.sort (fun (i, _) (j, _) -> Int.compare i j) evaluated
            in
            match in_order with
            | (0, operator) :: operands ->
                INext
                  {
                    config with
                    control = `Value operator;
                    env;
                    cont = call ~site ~vals:(List.map snd operands) ~next ();
                  }
            | _ -> assert false))
    | Call { vals; next; site; _ } -> invoke ~site m config v vals next
    | Return _ | Return_stack _ ->
        (* Only I_gc/I_stack build these frames; the tier is Tail-only. *)
        IStuck "vm: unexpected return frame (not an I_tail continuation)"

  let step m config =
    match config.control with
    | `Expr e -> step_expr m config e
    | `Value v -> step_value m config v

  let flat_space config =
    let base =
      Env.cardinal config.env + cont_space config.cont + Store.space config.store
    in
    match config.control with
    | `Expr _ -> base
    | `Value v -> base + value_space v

  let control_locs config =
    match config.control with `Expr _ -> [] | `Value v -> value_locs v

  let collect config =
    let store, reclaimed =
      Gc.collect ~control_locs:(control_locs config) ~env:config.env
        ~cont:config.cont config.store
    in
    ({ config with store }, reclaimed)

  let alloc_kind_of_value : value -> Telemetry.alloc_kind = function
    | Bool _ | Sym _ | Char _ | Nil | Unspecified | Undefined | Primop _ ->
        Telemetry.K_atom
    | Int _ -> Telemetry.K_int
    | Str _ -> Telemetry.K_string
    | Pair _ -> Telemetry.K_pair
    | Vector _ -> Telemetry.K_vector
    | Closure _ -> Telemetry.K_closure
    | Escape _ -> Telemetry.K_escape

  (* A faithful transcription of [Machine.run]'s measured loop (minus
     the deprecated [on_step]/[trace] shims), driving the specialized
     transitions above: the same lazy collection schedule, the same
     governor and fault observation points, the same final-configuration
     measurement — so steps, peaks, GC runs, telemetry events, and
     abort points are bit-identical to the Tail stepper's. *)
  let exec (cfg : Machine.Config.t) ~(opts : Machine.Run_opts.t) ~program ~input
      =
    let machine = Machine.create_with { cfg with Machine.Config.engine = Stepper } in
    let genv, gstore = Machine.initial machine in
    let expr = Ast.Call (program, [ input ]) in
    (* Record into the stepper machine's own table: its insertion order
       (prelude first, then this program) matches what [Machine.run]
       would produce, so site ids agree across engines. *)
    let annot = Machine.annotations machine in
    (match annot with Some a -> Annot.record a expr | None -> ());
    let provenance = opts.Machine.Run_opts.provenance in
    (match provenance with
    | None -> ()
    | Some c -> (
        match annot with
        | None ->
            invalid_arg "Vm: provenance requires a config with annotate = true"
        | Some a -> Census.set_annot c a));
    let m =
      {
        cfg;
        ctx = Prim.make_ctx ~seed:cfg.Machine.Config.seed ();
        quotes = Ptbl.create 64;
        calls = Ptbl.create 64;
        annot;
        prov = provenance;
        track_sites = Option.is_some provenance && Option.is_some annot;
      }
    in
    let fuel = opts.Machine.Run_opts.fuel in
    let measure_models =
      Space_model.normalize opts.Machine.Run_opts.measure
    in
    let measure_linked = Space_model.mem Space_model.Linked measure_models in
    let measure_log = Space_model.mem Space_model.Log measure_models in
    let measure_heavy = measure_linked || measure_log in
    let gc_policy = opts.Machine.Run_opts.gc_policy in
    let telemetry = opts.Machine.Run_opts.telemetry in
    Buffer.clear m.ctx.Prim.output;
    let budget =
      Option.value opts.Machine.Run_opts.budget
        ~default:Resilience.Budget.unlimited
    in
    let guard = Resilience.Guard.start ~default_fuel:fuel budget in
    let fault =
      Option.value opts.Machine.Run_opts.fault ~default:Resilience.Fault.none
    in
    let faults = Resilience.Fault.start fault in
    let gc_runs = ref 0 in
    let peak = ref 0 in
    let peak_linked = ref 0 in
    let peak_log = ref 0 in
    let cur_step = ref 0 in
    let record_gc reason store reclaimed =
      if reclaimed > 0 then begin
        incr gc_runs;
        (match provenance with
        | Some c -> Census.rescan c store
        | None -> ());
        match telemetry with
        | Some tl ->
            Telemetry.record_gc tl ~step:!cur_step ~reason
              ~live:(Store.cardinal store) ~freed:reclaimed
        | None -> ()
      end
    in
    let note_flat config =
      let s = flat_space config in
      if s > !peak then begin
        peak := s;
        match provenance with
        | Some c ->
            Census.stash_flat c ~control:config.control ~env:config.env
              ~cont:config.cont ~store:config.store
        | None -> ()
      end
    in
    let note_heavy config =
      let u =
        Space.linked_config_space ~control:config.control ~env:config.env
          ~cont:config.cont ~store:config.store
      in
      if measure_linked && u > !peak_linked then begin
        peak_linked := u;
        match provenance with
        | Some c ->
            Census.stash_linked c ~control:config.control ~env:config.env
              ~cont:config.cont ~store:config.store
        | None -> ()
      end;
      if measure_log then begin
        let s = Space.pointer_bits config.store * u in
        if s > !peak_log then begin
          peak_log := s;
          match provenance with
          | Some c ->
              Census.stash_log c ~control:config.control ~env:config.env
                ~cont:config.cont ~store:config.store
          | None -> ()
        end
      end
    in
    let measure config =
      if measure_heavy then begin
        let config, reclaimed = collect config in
        record_gc Telemetry.Gc_linked config.store reclaimed;
        note_flat config;
        note_heavy config;
        config
      end
      else begin
        let s = flat_space config in
        let threshold =
          match gc_policy with
          | `Exact -> !peak
          | `Approximate -> !peak + Stdlib.max 64 (!peak / 8)
        in
        if s <= threshold then config
        else begin
          let config, reclaimed = collect config in
          record_gc Telemetry.Gc_peak config.store reclaimed;
          note_flat config;
          config
        end
      end
    in
    let observe config steps =
      match telemetry with
      | None -> ()
      | Some tl ->
          Telemetry.record_step tl ~step:steps ~space:(flat_space config)
            ~cont_depth:(cont_depth config.cont)
            ~store_cells:(Store.cardinal config.store)
    in
    let aborted reason steps =
      ((Aborted reason : outcome), steps, None, None)
    in
    let rec loop config steps =
      cur_step := steps;
      (match Resilience.Fault.fuel_drop faults ~step:steps with
      | Some remaining -> Resilience.Guard.cap_fuel guard (steps + remaining)
      | None -> ());
      let config =
        if Resilience.Fault.force_gc faults ~step:steps then begin
          let config, reclaimed = collect config in
          record_gc Telemetry.Gc_forced config.store reclaimed;
          config
        end
        else config
      in
      let config = measure config in
      observe config steps;
      let config, space_abort =
        match Resilience.Guard.space_budget guard with
        | Some b when flat_space config > b ->
            let config, reclaimed = collect config in
            record_gc Telemetry.Gc_budget config.store reclaimed;
            let live = flat_space config in
            note_flat config;
            if live > b then
              (config, Some (Resilience.Space_exceeded { budget = b; live }))
            else (config, None)
        | _ -> (config, None)
      in
      match space_abort with
      | Some reason -> aborted reason steps
      | None -> (
          match
            Resilience.Guard.check guard ~steps
              ~output_bytes:(Buffer.length m.ctx.Prim.output)
          with
          | Some reason -> aborted reason steps
          | None -> (
              match step m config with
              | exception Resilience.Fault.Injected msg ->
                  aborted (Resilience.Injected_fault msg) steps
              | INext c -> loop c (steps + 1)
              | IFinal (v, store) ->
                  let store, reclaimed =
                    Gc.collect ~control_locs:(value_locs v) ~env:Env.empty
                      ~cont:Halt store
                  in
                  record_gc Telemetry.Gc_final store reclaimed;
                  let s = value_space v + Store.space store in
                  if s > !peak then begin
                    peak := s;
                    match provenance with
                    | Some c -> Census.stash_flat_final c ~v ~store
                    | None -> ()
                  end;
                  if measure_heavy then begin
                    let u =
                      Space.linked_config_space ~control:(`Value v)
                        ~env:Env.empty ~cont:Halt ~store
                    in
                    (if measure_linked && u > !peak_linked then begin
                       peak_linked := u;
                       match provenance with
                       | Some c ->
                           Census.stash_linked c ~control:(`Value v)
                             ~env:Env.empty ~cont:Halt ~store
                       | None -> ()
                     end);
                    if measure_log then begin
                      let sl = Space.pointer_bits store * u in
                      if sl > !peak_log then begin
                        peak_log := sl;
                        match provenance with
                        | Some c ->
                            Census.stash_log c ~control:(`Value v)
                              ~env:Env.empty ~cont:Halt ~store
                        | None -> ()
                      end
                    end
                  end;
                  ( Done (Answer.to_string store v),
                    steps + 1,
                    Some v,
                    Some store )
              | IStuck msg -> ((Stuck msg : outcome), steps, None, None)))
    in
    let initial_store =
      let store =
        match telemetry with
        | None -> gstore
        | Some tl ->
            Store.with_observer gstore
              (Some
                 (fun v ->
                   Telemetry.record_alloc tl ~step:!cur_step
                     ~kind:(alloc_kind_of_value v)
                     ~words:(1 + value_space v)))
      in
      let store =
        if Resilience.Fault.observes_alloc fault then
          Store.add_observer store (fun _ -> Resilience.Fault.on_alloc faults)
        else store
      in
      match provenance with
      | Some c -> Census.instrument c store
      | None -> store
    in
    let initial =
      { control = `Expr expr; env = genv; cont = Halt; store = initial_store }
    in
    let outcome, steps, _, _ = loop initial 0 in
    (match telemetry with
    | Some tl ->
        Telemetry.note_steps tl steps;
        Telemetry.note_peak tl !peak;
        if measure_linked then Telemetry.note_linked tl !peak_linked;
        if measure_log then Telemetry.note_log tl !peak_log;
        (match outcome with
        | Stuck msg -> Telemetry.record_stuck tl ~step:steps ~message:msg
        | Done _ | Aborted _ -> ())
    | None -> ());
    {
      outcome;
      steps;
      peaks =
        List.filter_map
          (fun model ->
            match (model : Space_model.t) with
            | Space_model.Flat -> Some (model, !peak)
            | Space_model.Linked -> Some (model, !peak_linked)
            | Space_model.Log -> Some (model, !peak_log))
          measure_models;
      program_size = Ast.size expr;
      gc_runs = !gc_runs;
      output = Buffer.contents m.ctx.Prim.output;
    }
end

(* ================================================================== *)
(* Dispatch                                                            *)
(* ================================================================== *)

let exec_program ?(opts = Machine.Run_opts.default) (cfg : Machine.Config.t)
    ~program ~input =
  match cfg.Machine.Config.engine with
  | Machine.Stepper | Machine.Vm ->
      if cfg.Machine.Config.variant <> Machine.Tail then
        invalid_arg "Vm: the instrumented VM tier supports only the Tail variant";
      Measured.exec cfg ~opts ~program ~input
  | Machine.Vm_fast ->
      if cfg.Machine.Config.variant <> Machine.Tail then
        invalid_arg "Vm: the fast VM tier supports only the Tail variant";
      if cfg.Machine.Config.perm <> Machine.Left_to_right then
        invalid_arg "Vm: the fast VM tier evaluates left-to-right only";
      (match Space_model.normalize opts.Machine.Run_opts.measure with
      | [ Space_model.Flat ] -> ()
      | _ ->
          invalid_arg
            "Vm: linked- and log-space measurement requires the instrumented \
             tier");
      if Option.is_some opts.Machine.Run_opts.provenance then
        invalid_arg "Vm: the provenance census requires the instrumented tier";
      (match opts.Machine.Run_opts.fault with
      | Some f when not (Resilience.Fault.is_none f) ->
          invalid_arg "Vm: fault injection requires the instrumented tier"
      | _ -> ());
      let annot =
        if cfg.Machine.Config.annotate then Some (Annot.create ()) else None
      in
      let c = compile ?annot (Ast.Call (program, [ input ])) in
      let budget =
        Option.value opts.Machine.Run_opts.budget
          ~default:Resilience.Budget.unlimited
      in
      let r =
        run_fast_with ~fuel:opts.Machine.Run_opts.fuel ~budget
          ~seed:cfg.Machine.Config.seed c
      in
      (match opts.Machine.Run_opts.telemetry with
      | Some tl ->
          Telemetry.note_steps tl r.steps;
          Telemetry.note_peak tl 0;
          (match r.outcome with
          | Stuck msg -> Telemetry.record_stuck tl ~step:r.steps ~message:msg
          | Done _ | Aborted _ -> ())
      | None -> ());
      r
